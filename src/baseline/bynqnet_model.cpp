#include "baseline/bynqnet_model.h"

#include <cmath>

#include "nn/activations.h"
#include "nn/linear.h"
#include "train/trainer.h"
#include "util/check.h"
#include "util/summary.h"

namespace bnn::baseline {

BynqNet::BynqNet(int in_features, int num_classes, const BynqnetConfig& config)
    : config_(config),
      model_([&] {
        util::Rng rng(config.seed);
        return nn::make_mlp3(rng, in_features, config.hidden, num_classes,
                             nn::MlpActivation::quadratic, /*with_mcd_sites=*/false);
      }()) {
  // Damp the He initialization: x^2 activations square the scale per layer.
  for (nn::Param* param : model_.net().params())
    param->value.scale_(static_cast<float>(config.init_damping));
}

void BynqNet::fit(const data::Dataset& train_set, int epochs, double learning_rate) {
  train::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 32;
  config.learning_rate = learning_rate;
  train::fit(model_, train_set, config);
}

std::vector<BynqNet::LinearParams> BynqNet::linears() const {
  std::vector<LinearParams> out;
  nn::Network& net = model_.net();
  for (nn::Network::NodeId id : net.find_nodes(nn::LayerKind::linear)) {
    auto* linear = static_cast<nn::Linear*>(net.layer(id));
    LinearParams entry;
    entry.weight = &linear->weight().value;
    entry.bias = linear->has_bias() ? &linear->bias().value : nullptr;
    out.push_back(entry);
  }
  util::ensure(out.size() == 3, "bynqnet: expected a three-layer MLP");
  return out;
}

MomentOutput BynqNet::propagate_moments(const nn::Tensor& images) const {
  util::require(images.dim() == 4, "bynqnet: expects NCHW images");
  const int batch = images.size(0);
  const int in_features = images.size(1) * images.size(2) * images.size(3);
  const std::vector<LinearParams> layers = linears();

  // Per-sample working vectors: activation mean and variance.
  std::vector<double> mean(static_cast<std::size_t>(in_features));
  std::vector<double> variance(static_cast<std::size_t>(in_features));
  const int classes = layers.back().weight->size(0);
  MomentOutput output;
  output.mean = nn::Tensor({batch, classes});
  output.variance = nn::Tensor({batch, classes});

  for (int n = 0; n < batch; ++n) {
    mean.assign(static_cast<std::size_t>(in_features), 0.0);
    variance.assign(static_cast<std::size_t>(in_features), 0.0);
    for (int i = 0; i < in_features; ++i)
      mean[static_cast<std::size_t>(i)] =
          images[static_cast<std::int64_t>(n) * in_features + i];

    for (std::size_t l = 0; l < layers.size(); ++l) {
      const nn::Tensor& w = *layers[l].weight;
      const int out_f = w.size(0);
      const int in_f = w.size(1);
      util::ensure(static_cast<std::size_t>(in_f) == mean.size(),
                   "bynqnet: layer width bookkeeping broken");
      std::vector<double> out_mean(static_cast<std::size_t>(out_f));
      std::vector<double> out_var(static_cast<std::size_t>(out_f));
      for (int j = 0; j < out_f; ++j) {
        double m = layers[l].bias != nullptr ? (*layers[l].bias)[j] : 0.0;
        double v = 0.0;
        for (int i = 0; i < in_f; ++i) {
          const double mu = w.v2(j, i);
          const double sd = sigma(mu);
          const double mi = mean[static_cast<std::size_t>(i)];
          const double vi = variance[static_cast<std::size_t>(i)];
          m += mu * mi;
          v += mu * mu * vi + sd * sd * (mi * mi + vi);
        }
        out_mean[static_cast<std::size_t>(j)] = m;
        out_var[static_cast<std::size_t>(j)] = v;
      }
      if (l + 1 < layers.size()) {
        // Quadratic activation moments under the Gaussian assumption.
        for (int j = 0; j < out_f; ++j) {
          const double m = out_mean[static_cast<std::size_t>(j)];
          const double v = out_var[static_cast<std::size_t>(j)];
          out_mean[static_cast<std::size_t>(j)] = m * m + v;
          out_var[static_cast<std::size_t>(j)] = 2.0 * v * v + 4.0 * m * m * v;
        }
      }
      mean = std::move(out_mean);
      variance = std::move(out_var);
    }
    for (int k = 0; k < classes; ++k) {
      output.mean.v2(n, k) = static_cast<float>(mean[static_cast<std::size_t>(k)]);
      output.variance.v2(n, k) = static_cast<float>(variance[static_cast<std::size_t>(k)]);
    }
  }
  return output;
}

nn::Tensor BynqNet::predictive(const nn::Tensor& images, int output_samples,
                               util::Rng& rng) const {
  util::require(output_samples >= 1, "bynqnet: need at least one output sample");
  const MomentOutput moments = propagate_moments(images);
  const int batch = moments.mean.size(0);
  const int classes = moments.mean.size(1);

  nn::Tensor probs({batch, classes});
  nn::Tensor logits({1, classes});
  for (int n = 0; n < batch; ++n) {
    nn::Tensor accumulated({1, classes});
    for (int s = 0; s < output_samples; ++s) {
      for (int k = 0; k < classes; ++k) {
        const double sd = std::sqrt(std::max(0.0f, moments.variance.v2(n, k)));
        logits.v2(0, k) = static_cast<float>(rng.normal(moments.mean.v2(n, k), sd));
      }
      accumulated.add_(nn::softmax_rows(logits));
    }
    accumulated.scale_(1.0f / static_cast<float>(output_samples));
    for (int k = 0; k < classes; ++k) probs.v2(n, k) = accumulated.v2(0, k);
  }
  return probs;
}

MomentOutput BynqNet::monte_carlo_moments(const nn::Tensor& images, int num_samples,
                                          util::Rng& rng) const {
  util::require(num_samples >= 2, "bynqnet: need at least two samples for variance");
  nn::Network& net = model_.net();
  net.set_training(false);
  const std::vector<nn::Param*> params = net.params();
  std::vector<nn::Tensor> means;
  for (nn::Param* param : params) means.push_back(param->value);

  const int batch = images.size(0);
  const int classes = model_.num_classes();
  std::vector<util::MeanStd> stats(static_cast<std::size_t>(batch) * classes);
  for (int s = 0; s < num_samples; ++s) {
    for (std::size_t p = 0; p < params.size(); ++p) {
      // Only weight matrices are stochastic; biases are deterministic to
      // match the moment algebra (bias rows enter the mean only).
      if (params[p]->value.dim() != 2) continue;
      for (std::int64_t i = 0; i < means[p].numel(); ++i)
        params[p]->value[i] = static_cast<float>(
            rng.normal(means[p][i], sigma(means[p][i])));
    }
    const nn::Tensor logits = net.forward(images);
    for (int n = 0; n < batch; ++n)
      for (int k = 0; k < classes; ++k)
        stats[static_cast<std::size_t>(n) * classes + k].add(logits.v2(n, k));
  }
  for (std::size_t p = 0; p < params.size(); ++p) params[p]->value = means[p];

  MomentOutput output;
  output.mean = nn::Tensor({batch, classes});
  output.variance = nn::Tensor({batch, classes});
  for (int n = 0; n < batch; ++n)
    for (int k = 0; k < classes; ++k) {
      const util::MeanStd& stat = stats[static_cast<std::size_t>(n) * classes + k];
      output.mean.v2(n, k) = static_cast<float>(stat.mean());
      output.variance.v2(n, k) = static_cast<float>(stat.stddev() * stat.stddev());
    }
  return output;
}

std::int64_t BynqNet::macs_per_image() const {
  return model_.net().total_macs({1, model_.input_shape()[0], 1, 1});
}

}  // namespace bnn::baseline
