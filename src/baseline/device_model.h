// Analytic latency models for the paper's CPU / GPU baselines (Table I and
// Table III columns).
//
// Substitution note (DESIGN.md): we have neither an i9-9900K nor an RTX
// 2080 SUPER; the paper uses them only as latency denominators. The model
// charges each layer its arithmetic at a sustained batch-1 throughput plus
// a per-layer framework dispatch overhead, and each Monte Carlo sample a
// loop overhead. Both baselines use the software intermediate-layer caching
// of Azevedo et al. [5] (prefix once, suffix per sample), which is what the
// paper's Table III numbers imply: the {L=1, S=100} CPU/GPU latencies are
// overhead-dominated rather than 100x a full forward pass.
//
// The throughput/overhead constants are calibrated so the three paper
// networks land in the neighbourhood of the published latencies; the shape
// of the comparison (FPGA < GPU < CPU at batch 1, gap growing with S) is
// the reproduction target, not the absolute numbers.
#ifndef BNN_BASELINE_DEVICE_MODEL_H
#define BNN_BASELINE_DEVICE_MODEL_H

#include <string>

#include "nn/netdesc.h"

namespace bnn::baseline {

struct DeviceModel {
  std::string name;
  double effective_gops = 1.0;        // sustained batch-1 arithmetic rate
  double per_layer_overhead_ms = 0.0; // op dispatch cost
  double per_sample_overhead_ms = 0.0;
};

// Intel Core i9-9900K running the PyTorch fp32 path.
DeviceModel cpu_i9_9900k();
// NVIDIA RTX 2080 SUPER; the paper estimates its 8-bit latency as fp32/4.
DeviceModel gpu_rtx2080_super();

// Latency of S-sample inference of a partial BNN (last `bayes_layers`
// sites Bayesian) on the device, with software IC (prefix once).
double device_latency_ms(const nn::NetworkDesc& desc, const DeviceModel& device,
                         int bayes_layers, int num_samples);

}  // namespace bnn::baseline

#endif  // BNN_BASELINE_DEVICE_MODEL_H
