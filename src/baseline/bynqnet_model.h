// Functional BYNQNet-style baseline (extension).
//
// BYNQNet [Awano & Hashimoto, DATE'20] avoids Monte Carlo sampling
// altogether: with quadratic activations, the mean and variance of every
// activation can be propagated through the network in closed form
// (polynomial operations only), and the output distribution carries the
// uncertainty. The paper under reproduction only quotes BYNQNet's published
// throughput; this module implements the algorithm so the baseline
// comparison is functional:
//
//   linear    : m' = W m + b,
//               v'_j = sum_i( mu_ji^2 v_i + sigma_ji^2 (m_i^2 + v_i) )
//   quadratic : m' = m^2 + v,   v' = 2 v^2 + 4 m^2 v   (Gaussian moments)
//
// Posterior means are SGD-trained; stddevs use the same scaled-magnitude
// heuristic as the VIBNN baseline. The moment algebra is validated against
// Monte Carlo weight sampling in the test suite.
#ifndef BNN_BASELINE_BYNQNET_MODEL_H
#define BNN_BASELINE_BYNQNET_MODEL_H

#include <vector>

#include "data/dataset.h"
#include "nn/models.h"
#include "util/rng.h"

namespace bnn::baseline {

struct BynqnetConfig {
  int hidden = 64;
  double sigma_scale = 0.05;
  double sigma_floor = 1e-3;
  std::uint64_t seed = 1;
  // Optional damping of the He initialization (1.0 = none). Quadratic
  // activations are sensitive to the pre-activation scale; empirically the
  // undamped He init trains best on the synthetic tasks, while damping
  // below ~0.7 collapses the network towards zero logits.
  double init_damping = 1.0;
};

struct MomentOutput {
  nn::Tensor mean;      // (N, K) logit means
  nn::Tensor variance;  // (N, K) logit variances
};

class BynqNet {
 public:
  BynqNet(int in_features, int num_classes, const BynqnetConfig& config);

  // Trains the posterior means.
  void fit(const data::Dataset& train_set, int epochs = 8, double learning_rate = 0.05);

  // Closed-form moment propagation — NO Monte Carlo sampling, the whole
  // point of the BYNQNet design.
  MomentOutput propagate_moments(const nn::Tensor& images) const;

  // Predictive distribution: the output Gaussian is sampled host-side
  // (cheap, output-layer only) and softmax-averaged.
  nn::Tensor predictive(const nn::Tensor& images, int output_samples, util::Rng& rng) const;

  // Monte Carlo ground truth for the moment algebra: sample weights,
  // forward deterministically, estimate logit mean/variance. Test oracle.
  MomentOutput monte_carlo_moments(const nn::Tensor& images, int num_samples,
                                   util::Rng& rng) const;

  std::int64_t macs_per_image() const;
  nn::Model& model() { return model_; }

 private:
  struct LinearParams {
    const nn::Tensor* weight = nullptr;  // (out, in) means
    const nn::Tensor* bias = nullptr;    // (out)
  };
  std::vector<LinearParams> linears() const;
  double sigma(double mu) const {
    return config_.sigma_scale * (mu < 0 ? -mu : mu) + config_.sigma_floor;
  }

  BynqnetConfig config_;
  mutable nn::Model model_;
};

}  // namespace bnn::baseline

#endif  // BNN_BASELINE_BYNQNET_MODEL_H
