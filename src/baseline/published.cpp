#include "baseline/published.h"

namespace bnn::baseline {

AcceleratorRow vibnn() {
  return {"VIBNN", "Cyclone V 5CGTFD9E5F35C7", 212.95, 342, 6.11, 59.6,
          "3-layer FC BNN (Gaussian weights)"};
}

AcceleratorRow bynqnet() {
  return {"BYNQNet", "Zynq XC7Z020", 200.0, 220, 2.76, 24.22,
          "3-layer FC BNN (quadratic activations)"};
}

AcceleratorRow our_accelerator(double throughput_gops, int dsps_used) {
  return {"Ours (simulated)", "Arria 10 SX660", 225.0, dsps_used, 45.0, throughput_gops,
          "ResNet-101, MCD on every layer"};
}

}  // namespace bnn::baseline
