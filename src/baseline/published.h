// Published numbers of the BNN accelerators the paper compares against in
// Table IV (VIBNN, DAC'18 / ASPLOS'18; BYNQNet, DATE'20), plus the derived
// efficiency metrics. The paper compares against these reported figures —
// both comparators only support three-layer fully-connected BNNs — so this
// module encodes the rows as data and computes the derived columns.
#ifndef BNN_BASELINE_PUBLISHED_H
#define BNN_BASELINE_PUBLISHED_H

#include <string>

namespace bnn::baseline {

struct AcceleratorRow {
  std::string name;
  std::string fpga;
  double clock_mhz = 0.0;
  int dsps = 0;              // as reported in the paper's Table IV
  double power_w = 0.0;
  double throughput_gops = 0.0;
  std::string workload;

  double energy_efficiency() const { return throughput_gops / power_w; }
  double compute_efficiency() const {
    return throughput_gops / static_cast<double>(dsps);
  }
};

// VIBNN [Cai et al.]: Cyclone V, three-layer FC BNN with Gaussian RNG.
AcceleratorRow vibnn();
// BYNQNet [Awano & Hashimoto]: Zynq XC7Z020, quadratic-activation BNN.
AcceleratorRow bynqnet();
// Our accelerator's row: throughput measured by the simulator (ResNet-101,
// MCD on every layer), 45 W board power, DSPs actually mapped.
AcceleratorRow our_accelerator(double throughput_gops, int dsps_used);

}  // namespace bnn::baseline

#endif  // BNN_BASELINE_PUBLISHED_H
