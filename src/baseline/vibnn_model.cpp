#include "baseline/vibnn_model.h"

#include <cmath>

#include "nn/activations.h"
#include "train/trainer.h"
#include "util/check.h"

namespace bnn::baseline {

VibnnBnn::VibnnBnn(int in_features, int num_classes, const VibnnConfig& config)
    : config_(config),
      model_([&] {
        util::Rng rng(config.seed);
        return nn::make_mlp3(rng, in_features, config.hidden, num_classes,
                             nn::MlpActivation::relu, /*with_mcd_sites=*/false);
      }()) {
  util::require(config.sigma_scale >= 0.0 && config.sigma_floor >= 0.0,
                "vibnn: sigma parameters must be non-negative");
  capture_means();
}

void VibnnBnn::capture_means() {
  means_.clear();
  for (nn::Param* param : model_.net().params()) means_.push_back(param->value);
}

void VibnnBnn::restore_means() {
  const std::vector<nn::Param*> params = model_.net().params();
  util::ensure(params.size() == means_.size(), "vibnn: mean bookkeeping out of sync");
  for (std::size_t i = 0; i < params.size(); ++i) params[i]->value = means_[i];
}

void VibnnBnn::fit(const data::Dataset& train_set, int epochs, double learning_rate) {
  train::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 32;
  config.learning_rate = learning_rate;
  train::fit(model_, train_set, config);
  capture_means();
}

nn::Tensor VibnnBnn::mean_predict(const nn::Tensor& images) {
  restore_means();
  model_.net().set_training(false);
  return nn::softmax_rows(model_.net().forward(images));
}

nn::Tensor VibnnBnn::mc_predict(const nn::Tensor& images, int num_samples,
                                core::GaussianSampler& sampler) {
  util::require(num_samples >= 1, "vibnn: need at least one sample");
  model_.net().set_training(false);

  nn::Tensor probs;
  const std::vector<nn::Param*> params = model_.net().params();
  for (int s = 0; s < num_samples; ++s) {
    // w = mu + sigma(mu) * z, one fresh z per weight per sample — exactly
    // the traffic VIBNN's Gaussian RNG banks must sustain.
    for (std::size_t p = 0; p < params.size(); ++p) {
      const nn::Tensor& mu = means_[p];
      nn::Tensor& value = params[p]->value;
      for (std::int64_t i = 0; i < mu.numel(); ++i) {
        const double sigma =
            config_.sigma_scale * std::fabs(mu[i]) + config_.sigma_floor;
        value[i] = static_cast<float>(sampler.next(mu[i], sigma));
      }
    }
    nn::Tensor sample_probs = nn::softmax_rows(model_.net().forward(images));
    if (probs.empty())
      probs = std::move(sample_probs);
    else
      probs.add_(sample_probs);
  }
  probs.scale_(1.0f / static_cast<float>(num_samples));
  restore_means();
  return probs;
}

std::int64_t VibnnBnn::macs_per_image() const {
  return model_.net().total_macs({1, model_.input_shape()[0], 1, 1});
}

int VibnnBnn::num_weights() const {
  int count = 0;
  for (const nn::Tensor& mu : means_) count += static_cast<int>(mu.numel());
  return count;
}

}  // namespace bnn::baseline
