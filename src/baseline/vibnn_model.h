// Functional VIBNN-style baseline (extension).
//
// VIBNN [Cai et al., ASPLOS'18] accelerates three-layer fully-connected
// BNNs whose weights carry Gaussian posteriors, sampling weights in
// hardware with Gaussian RNGs. The paper under reproduction only quotes
// VIBNN's published throughput; this module implements the baseline
// algorithm itself so the comparison in bench/ablation_baselines has a
// functional substrate:
//
//   - posterior means come from ordinary SGD training of the MLP,
//   - posterior stddevs use the common scaled-magnitude heuristic
//     sigma = sigma_scale * |mu| + sigma_floor,
//   - Monte Carlo inference redraws every weight from N(mu, sigma^2) per
//     sample, using the hardware-style CLT Gaussian sampler
//     (core/gaussian_sampler.h).
#ifndef BNN_BASELINE_VIBNN_MODEL_H
#define BNN_BASELINE_VIBNN_MODEL_H

#include <memory>

#include "core/gaussian_sampler.h"
#include "data/dataset.h"
#include "nn/models.h"

namespace bnn::baseline {

struct VibnnConfig {
  int hidden = 128;
  double sigma_scale = 0.05;
  double sigma_floor = 1e-3;
  std::uint64_t seed = 1;
};

class VibnnBnn {
 public:
  VibnnBnn(int in_features, int num_classes, const VibnnConfig& config);

  // Trains the posterior means as a standard MLP.
  void fit(const data::Dataset& train_set, int epochs = 4, double learning_rate = 0.05);

  // Monte Carlo predictive distribution (N, K): weights are redrawn from
  // their Gaussian posterior for every sample via the CLT sampler.
  nn::Tensor mc_predict(const nn::Tensor& images, int num_samples,
                        core::GaussianSampler& sampler);

  // Deterministic (posterior-mean) prediction.
  nn::Tensor mean_predict(const nn::Tensor& images);

  // MACs of one forward pass (for throughput accounting).
  std::int64_t macs_per_image() const;

  int num_weights() const;
  nn::Model& model() { return model_; }

 private:
  VibnnConfig config_;
  nn::Model model_;
  // Posterior means, captured after fit(); the model's live weights are
  // scratch space during sampling.
  std::vector<nn::Tensor> means_;

  void capture_means();
  void restore_means();
};

}  // namespace bnn::baseline

#endif  // BNN_BASELINE_VIBNN_MODEL_H
