#include "baseline/device_model.h"

#include "util/check.h"

namespace bnn::baseline {

DeviceModel cpu_i9_9900k() {
  // ~40 GOP/s sustained on batch-1 convolutions, ~80 us per op dispatch.
  return {"Intel i9-9900K (CPU)", 40.0, 0.080, 0.020};
}

DeviceModel gpu_rtx2080_super() {
  // Batch-1 small-kernel effective rate with the paper's fp32/4 8-bit
  // estimate; ~40 us per kernel launch.
  return {"RTX 2080 SUPER (GPU)", 160.0, 0.040, 0.015};
}

namespace {

double pass_latency_ms(const nn::NetworkDesc& desc, const DeviceModel& device, int first_layer,
                       int last_layer) {
  double total = 0.0;
  for (int i = first_layer; i <= last_layer; ++i) {
    const nn::HwLayer& layer = desc.layers[static_cast<std::size_t>(i)];
    const double ops = static_cast<double>(layer.macs()) * 2.0;
    total += ops / (device.effective_gops * 1e9) * 1e3 + device.per_layer_overhead_ms;
  }
  return total;
}

}  // namespace

double device_latency_ms(const nn::NetworkDesc& desc, const DeviceModel& device,
                         int bayes_layers, int num_samples) {
  util::require(num_samples >= 1, "device_latency_ms: need at least one sample");
  const int last = desc.num_layers() - 1;
  if (bayes_layers == 0) return pass_latency_ms(desc, device, 0, last);

  const int cut = desc.cut_layer_for(bayes_layers);
  const double prefix = pass_latency_ms(desc, device, 0, cut);
  const double suffix =
      cut == last ? 0.0 : pass_latency_ms(desc, device, cut + 1, last);
  return prefix + num_samples * (suffix + device.per_sample_overhead_ms);
}

}  // namespace bnn::baseline
