#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bnn::metrics {

namespace {

void check_probs(const nn::Tensor& probs) {
  util::require(probs.dim() == 2 && probs.size(0) > 0 && probs.size(1) > 1,
                "metrics expect a non-empty (N, K) probability tensor");
}

}  // namespace

std::vector<int> argmax_rows(const nn::Tensor& probs) {
  check_probs(probs);
  std::vector<int> out(static_cast<std::size_t>(probs.size(0)));
  for (int n = 0; n < probs.size(0); ++n) {
    int best = 0;
    for (int k = 1; k < probs.size(1); ++k)
      if (probs.v2(n, k) > probs.v2(n, best)) best = k;
    out[static_cast<std::size_t>(n)] = best;
  }
  return out;
}

double accuracy(const nn::Tensor& probs, const std::vector<int>& labels) {
  check_probs(probs);
  util::require(static_cast<int>(labels.size()) == probs.size(0),
                "accuracy: label count mismatch");
  const std::vector<int> predictions = argmax_rows(probs);
  int correct = 0;
  for (std::size_t n = 0; n < labels.size(); ++n)
    if (predictions[n] == labels[n]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double average_predictive_entropy(const nn::Tensor& probs) {
  check_probs(probs);
  double total = 0.0;
  for (int n = 0; n < probs.size(0); ++n) {
    double entropy = 0.0;
    for (int k = 0; k < probs.size(1); ++k) {
      const double p = probs.v2(n, k);
      if (p > 0.0) entropy -= p * std::log(p);
    }
    total += entropy;
  }
  return total / static_cast<double>(probs.size(0));
}

std::vector<CalibrationBin> reliability_diagram(const nn::Tensor& probs,
                                                const std::vector<int>& labels, int num_bins) {
  check_probs(probs);
  util::require(static_cast<int>(labels.size()) == probs.size(0),
                "reliability_diagram: label count mismatch");
  util::require(num_bins >= 1, "reliability_diagram: need at least one bin");

  std::vector<CalibrationBin> bins(static_cast<std::size_t>(num_bins));
  for (int b = 0; b < num_bins; ++b) {
    bins[static_cast<std::size_t>(b)].confidence_lo = static_cast<double>(b) / num_bins;
    bins[static_cast<std::size_t>(b)].confidence_hi = static_cast<double>(b + 1) / num_bins;
  }
  const std::vector<int> predictions = argmax_rows(probs);
  for (int n = 0; n < probs.size(0); ++n) {
    const double confidence = probs.v2(n, predictions[static_cast<std::size_t>(n)]);
    int b = static_cast<int>(confidence * num_bins);
    b = std::clamp(b, 0, num_bins - 1);  // confidence == 1.0 lands in the top bin
    CalibrationBin& bin = bins[static_cast<std::size_t>(b)];
    ++bin.count;
    bin.mean_confidence += confidence;
    bin.accuracy += predictions[static_cast<std::size_t>(n)] == labels[static_cast<std::size_t>(n)]
                        ? 1.0
                        : 0.0;
  }
  for (CalibrationBin& bin : bins) {
    if (bin.count == 0) continue;
    bin.mean_confidence /= bin.count;
    bin.accuracy /= bin.count;
  }
  return bins;
}

double expected_calibration_error(const nn::Tensor& probs, const std::vector<int>& labels,
                                  int num_bins) {
  const std::vector<CalibrationBin> bins = reliability_diagram(probs, labels, num_bins);
  const double total = static_cast<double>(probs.size(0));
  double ece = 0.0;
  for (const CalibrationBin& bin : bins) {
    if (bin.count == 0) continue;
    ece += (bin.count / total) * std::fabs(bin.accuracy - bin.mean_confidence);
  }
  return ece;
}

std::vector<double> confidence_histogram(const nn::Tensor& probs, int num_bins) {
  check_probs(probs);
  util::require(num_bins >= 1, "confidence_histogram: need at least one bin");
  const double lo = 1.0 / probs.size(1);
  const double width = (1.0 - lo) / num_bins;
  std::vector<double> histogram(static_cast<std::size_t>(num_bins), 0.0);
  const std::vector<int> predictions = argmax_rows(probs);
  for (int n = 0; n < probs.size(0); ++n) {
    const double confidence = probs.v2(n, predictions[static_cast<std::size_t>(n)]);
    int b = static_cast<int>((confidence - lo) / width);
    b = std::clamp(b, 0, num_bins - 1);
    histogram[static_cast<std::size_t>(b)] += 1.0;
  }
  for (double& v : histogram) v /= probs.size(0);
  return histogram;
}

double mean_confidence(const nn::Tensor& probs) {
  check_probs(probs);
  const std::vector<int> predictions = argmax_rows(probs);
  double total = 0.0;
  for (int n = 0; n < probs.size(0); ++n)
    total += probs.v2(n, predictions[static_cast<std::size_t>(n)]);
  return total / probs.size(0);
}

}  // namespace bnn::metrics
