// Algorithmic evaluation metrics from the paper's Section V:
//   - top-1 accuracy,
//   - average predictive entropy (aPE, in nats) for uncertainty quality,
//   - expected calibration error (ECE, 10 bins) for confidence quality,
//   - confidence histograms (Fig. 1).
// All operate on predictive probability tensors of shape (N, K).
#ifndef BNN_METRICS_METRICS_H
#define BNN_METRICS_METRICS_H

#include <vector>

#include "nn/tensor.h"

namespace bnn::metrics {

// Index of the most probable class per row.
std::vector<int> argmax_rows(const nn::Tensor& probs);

// Fraction of rows whose argmax equals the label.
double accuracy(const nn::Tensor& probs, const std::vector<int>& labels);

// aPE = 1/E * sum_e [ -sum_k p(y_k|x_e) log p(y_k|x_e) ], in nats.
// Maximized (ln K) by uniform predictions, 0 for one-hot predictions.
double average_predictive_entropy(const nn::Tensor& probs);

// Expected calibration error over equal-width confidence bins:
// sum_b (|B_b|/N) * |acc(B_b) - conf(B_b)|. Confidence is the max
// probability; empty bins contribute nothing. Returned as a fraction
// (multiply by 100 for the paper's percent).
double expected_calibration_error(const nn::Tensor& probs, const std::vector<int>& labels,
                                  int num_bins = 10);

struct CalibrationBin {
  double confidence_lo = 0.0;
  double confidence_hi = 0.0;
  int count = 0;
  double mean_confidence = 0.0;
  double accuracy = 0.0;
};

// Per-bin reliability diagram data backing expected_calibration_error.
std::vector<CalibrationBin> reliability_diagram(const nn::Tensor& probs,
                                                const std::vector<int>& labels,
                                                int num_bins = 10);

// Normalized histogram (sums to 1) of per-row max-probability confidence
// over [1/K, 1], the quantity plotted in Fig. 1.
std::vector<double> confidence_histogram(const nn::Tensor& probs, int num_bins = 16);

// Mean of per-row maximum probability.
double mean_confidence(const nn::Tensor& probs);

}  // namespace bnn::metrics

#endif  // BNN_METRICS_METRICS_H
