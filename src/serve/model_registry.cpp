#include "serve/model_registry.h"

#include <stdexcept>
#include <utility>

#include "serve/trace.h"
#include "util/check.h"

namespace bnn::serve {

ModelRegistry::ModelRegistry(RegistryConfig config) : config_(config) {}

ModelRegistry::Entry& ModelRegistry::entry_for(const std::string& name) {
  for (std::size_t i = 0; i < order_.size(); ++i)
    if (order_[i] == name) return entries_[i];
  throw std::invalid_argument("model registry: unknown model '" + name + "'");
}

const ModelRegistry::Entry& ModelRegistry::entry_for(const std::string& name) const {
  for (std::size_t i = 0; i < order_.size(); ++i)
    if (order_[i] == name) return entries_[i];
  throw std::invalid_argument("model registry: unknown model '" + name + "'");
}

std::uint64_t ModelRegistry::resident_bytes_locked() const {
  std::uint64_t total = 0;
  for (const Entry& entry : entries_)
    if (entry.plan != nullptr) total += entry.current->weight_bytes;
  return total;
}

void ModelRegistry::enforce_budget_locked(const Entry* keep) {
  if (config_.residency_budget_bytes == 0) return;
  while (resident_bytes_locked() > config_.residency_budget_bytes) {
    Entry* victim = nullptr;
    for (Entry& entry : entries_) {
      if (entry.plan == nullptr || &entry == keep) continue;
      if (victim == nullptr || entry.last_use < victim->last_use) victim = &entry;
    }
    if (victim == nullptr) return;  // only `keep` is hot — it stays
    victim->plan = nullptr;
    ++stats_.evictions;
  }
}

std::shared_ptr<const ModelVersion> ModelRegistry::publish(const std::string& name,
                                                           quant::QuantNetwork network,
                                                           ModelConfig config) {
  quant::annotate_weight_tiers(network);
  if (config.pack_binarizable_weights) quant::pack_binarizable_weights(network);
  return publish(name, std::make_shared<const quant::QuantNetwork>(std::move(network)),
                 config);
}

std::shared_ptr<const ModelVersion> ModelRegistry::publish(
    const std::string& name, std::shared_ptr<const quant::QuantNetwork> network,
    ModelConfig config) {
  util::require(network != nullptr, "model registry: null network");
  util::require(!network->layers.empty(), "model registry: empty network");

  // Everything expensive — plan build, fingerprint — happens before the
  // mutex; the flip below is a pointer swap.
  auto plan = std::make_shared<const quant::NetworkExecPlan>(
      quant::build_network_exec_plan(*network));
  const std::uint64_t fingerprint = network_fingerprint(*network);
  const std::uint64_t weight_bytes = network->resident_weight_bytes();

  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = nullptr;
  std::uint64_t version = 1;
  ModelKey key = 0;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (order_[i] == name) {
      entry = &entries_[i];
      key = static_cast<ModelKey>(i);
      version = entry->current->version + 1;
      ++stats_.swaps;
      break;
    }
  }
  if (entry == nullptr) {
    key = static_cast<ModelKey>(entries_.size());
    order_.push_back(name);
    entries_.emplace_back();
    entry = &entries_.back();
    ++stats_.models;
  }

  auto snapshot = std::make_shared<ModelVersion>();
  snapshot->name = name;
  snapshot->version = version;
  snapshot->key = key;
  snapshot->workload_id = config.workload_id;
  snapshot->network = std::move(network);
  snapshot->fingerprint = fingerprint;
  snapshot->weight_bytes = weight_bytes;

  entry->current = std::move(snapshot);
  entry->plan = std::move(plan);  // publishing makes (or keeps) the tenant hot
  entry->model_config = config;
  entry->last_use = ++tick_;
  enforce_budget_locked(entry);
  return entry->current;
}

ModelRegistry::Bound ModelRegistry::resolve(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_for(name);
  Bound bound;
  if (entry.plan == nullptr) {
    // Cold tenant: stream the weights back in (modelled — the plan rebuild
    // is a pure function of the immutable network, so responses are
    // bit-identical to a never-evicted serve) and charge this resolve.
    entry.plan = std::make_shared<const quant::NetworkExecPlan>(
        quant::build_network_exec_plan(*entry.current->network));
    ++stats_.reloads;
    bound.cold_start = true;
  }
  entry.last_use = ++tick_;
  bound.version = entry.current;
  bound.plan = entry.plan;
  enforce_budget_locked(&entry);
  return bound;
}

bool ModelRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& existing : order_)
    if (existing == name) return true;
  return false;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

bool ModelRegistry::hot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_for(name).plan != nullptr;
}

std::shared_ptr<const ModelVersion> ModelRegistry::current(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_for(name).current;
}

ModelConfig ModelRegistry::model_config(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_for(name).model_config;
}

RegistryStats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistryStats stats = stats_;
  stats.resident_bytes = resident_bytes_locked();
  stats.hot_models = 0;
  for (const Entry& entry : entries_)
    if (entry.plan != nullptr) ++stats.hot_models;
  return stats;
}

}  // namespace bnn::serve
