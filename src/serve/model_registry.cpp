#include "serve/model_registry.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "serve/trace.h"
#include "util/check.h"

namespace bnn::serve {

namespace {

/// Bound::source implementation: on-demand segments over one version's
/// table. prefetch is a synchronous dedup'd build — the overlap it models
/// (layer k+1's DDR burst behind layer k's compute) is charged by
/// CostModel::streamed_reload_ms; the build itself just has to be done by
/// the time segment(k+1) is consumed, which acquire guarantees.
class TenantPlanSource final : public quant::PlanSource {
 public:
  explicit TenantPlanSource(std::shared_ptr<SegmentTable> table)
      : table_(std::move(table)) {}
  int num_layers() const override { return table_->num_layers(); }
  quant::PlanSegment segment(int index) override { return table_->acquire(index); }
  void prefetch(int index) override { (void)table_->acquire(index); }

 private:
  std::shared_ptr<SegmentTable> table_;
};

}  // namespace

SegmentTable::SegmentTable(std::shared_ptr<const quant::QuantNetwork> network,
                           std::shared_ptr<std::atomic<std::uint64_t>> clock,
                           std::shared_ptr<std::atomic<std::uint64_t>> builds)
    : network_(std::move(network)), clock_(std::move(clock)), builds_(std::move(builds)) {
  util::require(network_ != nullptr, "segment table: null network");
  slots_.resize(network_->layers.size());
}

quant::PlanSegment SegmentTable::acquire(int index) {
  util::require(index >= 0 && index < num_layers(), "segment table: index out of range");
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  std::shared_future<quant::PlanSegment> pending;
  std::promise<quant::PlanSegment> promise;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (slot.segment != nullptr) {
      slot.last_use = ++*clock_;
      return slot.segment;
    }
    if (slot.building.valid()) {
      pending = slot.building;  // someone else is building — wait, don't redo
    } else {
      slot.building = promise.get_future().share();
    }
  }
  if (pending.valid()) return pending.get();

  // This caller won the build. build_plan_segment is a pure function of the
  // immutable network, so the rebuilt segment is bit-identical to the one
  // that was evicted (and to the publish-time build).
  quant::PlanSegment built;
  try {
    built = quant::build_plan_segment(network_->layers[static_cast<std::size_t>(index)]);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slot.building = {};
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  ++*builds_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slot.segment = built;
    slot.last_use = ++*clock_;
    slot.building = {};
  }
  promise.set_value(built);
  return built;
}

void SegmentTable::install(int index, quant::PlanSegment segment) {
  util::require(index >= 0 && index < num_layers(), "segment table: index out of range");
  util::require(segment != nullptr, "segment table: null segment");
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  slot.segment = std::move(segment);
  slot.last_use = ++*clock_;
}

bool SegmentTable::evict(int index) {
  util::require(index >= 0 && index < num_layers(), "segment table: index out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  if (slot.segment == nullptr) return false;
  slot.segment = nullptr;
  return true;
}

int SegmentTable::coldest(std::uint64_t* stamp_out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int index = -1;
  std::uint64_t stamp = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (slot.segment == nullptr) continue;
    if (index < 0 || slot.last_use < stamp) {
      index = static_cast<int>(i);
      stamp = slot.last_use;
    }
  }
  if (stamp_out != nullptr) *stamp_out = stamp;
  return index;
}

void SegmentTable::touch_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Slot& slot : slots_)
    if (slot.segment != nullptr) slot.last_use = ++*clock_;
}

bool SegmentTable::fully_resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& slot : slots_)
    if (slot.segment == nullptr) return false;
  return true;
}

std::uint64_t SegmentTable::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const Slot& slot : slots_)
    if (slot.segment != nullptr) total += slot.segment->weight_bytes;
  return total;
}

int SegmentTable::resident_segments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int count = 0;
  for (const Slot& slot : slots_)
    if (slot.segment != nullptr) ++count;
  return count;
}

std::vector<int> SegmentTable::missing_indices() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> missing;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].segment == nullptr) missing.push_back(static_cast<int>(i));
  return missing;
}

ModelRegistry::ModelRegistry(RegistryConfig config) : config_(config) {}

ModelRegistry::Entry& ModelRegistry::entry_for(const std::string& name) {
  for (std::size_t i = 0; i < order_.size(); ++i)
    if (order_[i] == name) return entries_[i];
  throw std::invalid_argument("model registry: unknown model '" + name + "'");
}

const ModelRegistry::Entry& ModelRegistry::entry_for(const std::string& name) const {
  for (std::size_t i = 0; i < order_.size(); ++i)
    if (order_[i] == name) return entries_[i];
  throw std::invalid_argument("model registry: unknown model '" + name + "'");
}

std::uint64_t ModelRegistry::resident_bytes_locked() const {
  std::uint64_t total = 0;
  for (const Entry& entry : entries_)
    if (entry.table != nullptr) total += entry.table->resident_bytes();
  return total;
}

void ModelRegistry::enforce_budget_locked(const Entry* keep) {
  if (config_.residency_budget_bytes == 0) return;
  while (resident_bytes_locked() > config_.residency_budget_bytes) {
    // Globally coldest resident segment across every tenant (except
    // `keep`): a warm tenant sheds its coldest LAYERS before a hot tenant
    // sheds anything — residency is a continuum, not a binary.
    Entry* victim = nullptr;
    int victim_index = -1;
    std::uint64_t victim_stamp = 0;
    for (Entry& entry : entries_) {
      if (&entry == keep || entry.table == nullptr) continue;
      std::uint64_t stamp = 0;
      const int index = entry.table->coldest(&stamp);
      if (index < 0) continue;
      if (victim == nullptr || stamp < victim_stamp) {
        victim = &entry;
        victim_index = index;
        victim_stamp = stamp;
      }
    }
    if (victim == nullptr) return;  // only `keep` holds residency — it stays
    const bool was_full = victim->table->fully_resident();
    if (!victim->table->evict(victim_index)) return;
    victim->plan = nullptr;  // cached assembly no longer reflects the table
    ++stats_.segment_evictions;
    if (was_full) ++stats_.evictions;
  }
}

std::shared_ptr<const quant::NetworkExecPlan> ModelRegistry::assembled_plan_locked(
    Entry& entry) {
  if (entry.plan != nullptr) return entry.plan;
  auto plan = std::make_shared<quant::NetworkExecPlan>();
  plan->layers.reserve(static_cast<std::size_t>(entry.table->num_layers()));
  for (int i = 0; i < entry.table->num_layers(); ++i)
    plan->layers.push_back(entry.table->acquire(i));
  entry.plan = std::move(plan);
  return entry.plan;
}

std::shared_ptr<const ModelVersion> ModelRegistry::publish(const std::string& name,
                                                           quant::QuantNetwork network,
                                                           ModelConfig config) {
  quant::annotate_weight_tiers(network);
  if (config.pack_binarizable_weights) quant::pack_binarizable_weights(network);
  return publish(name, std::make_shared<const quant::QuantNetwork>(std::move(network)),
                 config);
}

std::shared_ptr<const ModelVersion> ModelRegistry::publish(
    const std::string& name, std::shared_ptr<const quant::QuantNetwork> network,
    ModelConfig config) {
  util::require(network != nullptr, "model registry: null network");
  util::require(!network->layers.empty(), "model registry: empty network");

  // Everything expensive — segment builds, fingerprint — happens before the
  // mutex; the flip below is a pointer swap.
  auto plan = std::make_shared<const quant::NetworkExecPlan>(
      quant::build_network_exec_plan(*network));
  const std::uint64_t fingerprint = network_fingerprint(*network);
  const std::uint64_t weight_bytes = network->resident_weight_bytes();
  std::vector<std::uint64_t> segment_bytes;
  segment_bytes.reserve(plan->layers.size());
  for (const quant::PlanSegment& segment : plan->layers)
    segment_bytes.push_back(segment->weight_bytes);
  auto table = std::make_shared<SegmentTable>(network, segment_clock_, segment_builds_);
  for (int i = 0; i < plan->num_layers(); ++i)
    table->install(i, plan->layers[static_cast<std::size_t>(i)]);
  *segment_builds_ += static_cast<std::uint64_t>(plan->layers.size());

  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = nullptr;
  std::uint64_t version = 1;
  ModelKey key = 0;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (order_[i] == name) {
      entry = &entries_[i];
      key = static_cast<ModelKey>(i);
      version = entry->current->version + 1;
      ++stats_.swaps;
      break;
    }
  }
  if (entry == nullptr) {
    key = static_cast<ModelKey>(entries_.size());
    order_.push_back(name);
    entries_.emplace_back();
    entry = &entries_.back();
    ++stats_.models;
  }

  auto snapshot = std::make_shared<ModelVersion>();
  snapshot->name = name;
  snapshot->version = version;
  snapshot->key = key;
  snapshot->workload_id = config.workload_id;
  snapshot->network = std::move(network);
  snapshot->fingerprint = fingerprint;
  snapshot->weight_bytes = weight_bytes;
  snapshot->segment_bytes = std::move(segment_bytes);

  entry->current = std::move(snapshot);
  entry->table = std::move(table);  // publishing makes (or keeps) the tenant resident
  entry->plan = std::move(plan);
  entry->model_config = config;
  entry->last_use = ++tick_;
  enforce_budget_locked(entry);
  return entry->current;
}

ModelRegistry::Bound ModelRegistry::resolve(const std::string& name) {
  std::shared_ptr<SegmentTable> table;
  Bound bound;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = entry_for(name);
    entry.last_use = ++tick_;
    bound.version = entry.current;
    table = entry.table;
    bound.missing = table->missing_indices();
    if (bound.missing.empty()) {
      // Warm: hand out the cached whole-plan assembly and refresh every
      // segment's LRU stamp — a warm tenant's layers are the HOTTEST.
      bound.plan = assembled_plan_locked(entry);
      table->touch_all();
      enforce_budget_locked(&entry);
    } else {
      // Segments missing: this resolve pays the (modelled) DDR reload.
      ++stats_.reloads;
      bound.cold_start = true;
    }
  }
  bound.source = std::make_shared<TenantPlanSource>(table);
  if (!bound.cold_start) return bound;

  if (!config_.stream_cold_plans) {
    // Materialize every missing segment before returning. Builds run
    // OUTSIDE the registry mutex and are deduplicated per slot, so N
    // replicas resolving one cold tenant concurrently build each segment
    // exactly once while other tenants keep resolving.
    for (const int index : bound.missing) (void)table->acquire(index);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_for(name);
  if (entry.table == table) {
    if (!config_.stream_cold_plans) bound.plan = assembled_plan_locked(entry);
    enforce_budget_locked(&entry);
  } else {
    // Hot-swapped mid-resolve: assemble from the snapshot table so the
    // caller still gets the version it resolved.
    if (!config_.stream_cold_plans) {
      auto plan = std::make_shared<quant::NetworkExecPlan>();
      plan->layers.reserve(static_cast<std::size_t>(table->num_layers()));
      for (int i = 0; i < table->num_layers(); ++i) plan->layers.push_back(table->acquire(i));
      bound.plan = std::move(plan);
    }
    enforce_budget_locked(nullptr);
  }
  return bound;
}

bool ModelRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& existing : order_)
    if (existing == name) return true;
  return false;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

bool ModelRegistry::hot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry& entry = entry_for(name);
  return entry.table != nullptr && entry.table->fully_resident();
}

std::shared_ptr<const ModelVersion> ModelRegistry::current(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_for(name).current;
}

ModelConfig ModelRegistry::model_config(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_for(name).model_config;
}

int ModelRegistry::evict_segments(const std::string& name, int keep_first) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_for(name);
  const bool was_full = entry.table->fully_resident();
  int dropped = 0;
  for (int i = std::max(keep_first, 0); i < entry.table->num_layers(); ++i)
    if (entry.table->evict(i)) ++dropped;
  if (dropped > 0) {
    entry.plan = nullptr;
    stats_.segment_evictions += static_cast<std::uint64_t>(dropped);
    if (was_full) ++stats_.evictions;
  }
  return dropped;
}

RegistryStats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistryStats stats = stats_;
  stats.resident_bytes = resident_bytes_locked();
  stats.hot_models = 0;
  stats.resident_segments = 0;
  for (const Entry& entry : entries_) {
    if (entry.table == nullptr) continue;
    if (entry.table->fully_resident()) ++stats.hot_models;
    stats.resident_segments += static_cast<std::uint64_t>(entry.table->resident_segments());
  }
  stats.segment_builds = segment_builds_->load();
  return stats;
}

}  // namespace bnn::serve
