// Trace replay: re-serve a recorded request trace under an arbitrary
// serving configuration and hard-fail on checksum divergence.
//
// replay_trace stands up a fresh serve::Server around a copy of the given
// accelerator (replica/thread/dispatch knobs from ReplayConfig), re-submits
// every served/downgraded record at its recorded stream id — downgraded
// records as never-escalating routed requests, the transform the bit-
// identity invariant guarantees is equivalent — and compares each replayed
// Response's FNV-1a checksum against the recorded golden value. It then
// re-evaluates the recorded adaptive admission log through the pure
// adaptive_admission function, decision by decision. A trace recorded at
// R=1/threads=1 must therefore replay clean at ANY R × threads × dispatch
// mode; any divergence names the exact request.
#ifndef BNN_SERVE_REPLAY_H
#define BNN_SERVE_REPLAY_H

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.h"
#include "serve/trace.h"

namespace bnn::serve {

/// Serving configuration to replay under. Defaults differ from the usual
/// recording configuration on purpose (cost-aware dispatch, as fast as
/// possible): a replay is a cross-configuration check, not a re-run.
struct ReplayConfig {
  int num_replicas = 1;
  int num_threads = 1;
  int max_batch = 8;
  DispatchMode dispatch_mode = DispatchMode::cost_aware;
  /// false: pace submissions to the recorded arrival_us offsets (original
  /// timing); true: submit back-to-back.
  bool as_fast_as_possible = true;
  /// Require the accelerator's network fingerprint and sampler seed to
  /// match the trace header before submitting anything — a replay against
  /// the wrong weights fails fast with one clear error instead of
  /// reporting every checksum as divergent. Disable only for tests that
  /// hand-build fixtures without recording metadata.
  bool verify_fingerprint = true;
};

/// One checksum mismatch: the replayed Response of record `seq` hashed to
/// `actual` instead of the recorded `expected`.
struct ReplayDivergence {
  std::uint64_t seq = 0;
  std::uint64_t stream_id = 0;
  std::uint64_t expected = 0;
  std::uint64_t actual = 0;
};

struct ReplayReport {
  std::uint64_t replayed = 0;  ///< records re-submitted (served + downgraded)
  std::uint64_t matched = 0;   ///< replayed records whose checksum matched
  std::uint64_t skipped = 0;   ///< rejected/failed records (nothing to check)
  std::vector<ReplayDivergence> divergences;
  std::uint64_t admission_records = 0;  ///< recorded adaptive decisions checked
  /// Recorded decisions where adaptive_admission(inputs) != recorded action
  /// (would indicate the admission rule changed since the recording).
  std::uint64_t admission_mismatches = 0;

  bool ok() const { return divergences.empty() && admission_mismatches == 0; }
};

/// Re-serves `trace` on a fresh Server built around a copy of
/// `accelerator`. Throws std::runtime_error when verify_fingerprint is on
/// and the accelerator does not match the trace header (fingerprint or
/// sampler seed); std::invalid_argument on malformed records or on a
/// MULTI-model trace (more than one model-table entry — replay those
/// through the registry overload below).
ReplayReport replay_trace(const Trace& trace, const core::Accelerator& accelerator,
                          const ReplayConfig& config = {});

/// Multi-model replay: re-serves `trace` on a fresh Server over `registry`,
/// routing every record to the registry tenant its model-table entry names
/// (so a trace recorded against a 3-tenant server replays against 3
/// tenants). With verify_fingerprint on, every referenced tenant must be
/// published and its CURRENT version's fingerprint must match the table
/// entry — per-model, so one stale tenant fails fast by name. Throws
/// std::invalid_argument when the table lists two versions of one model
/// key: a trace spanning a mid-run hot-swap pins two weight sets per name
/// and is not replayable against a single registry state.
ReplayReport replay_trace(const Trace& trace, std::shared_ptr<ModelRegistry> registry,
                          const core::AcceleratorConfig& accel_config,
                          const ReplayConfig& config = {});

/// Human-readable one-line summary ("replayed 48, matched 48, ...").
std::string replay_summary(const ReplayReport& report);

/// Result of diffing two recorded traces record-by-record (by position:
/// record i of A against record i of B — both sides of an A/B comparison
/// should be recorded from the same stimulus sequence).
struct TraceDiff {
  bool meta_matches = true;  ///< sampler seed, reuse flag, model table agree
  std::uint64_t compared = 0;     ///< record pairs examined
  std::uint64_t equal = 0;        ///< pairs with identical outcome + checksum
  std::uint64_t extra_a = 0;      ///< unpaired trailing records of A
  std::uint64_t extra_b = 0;      ///< unpaired trailing records of B
  /// seq of the first divergent pair (record count of the shorter trace
  /// when one is a prefix of the other); ~0 when the traces match.
  std::uint64_t first_divergent_seq = ~std::uint64_t{0};
  /// What diverged there ("checksum", "outcome", ...); empty when equal.
  std::string first_divergence;

  bool identical() const {
    return meta_matches && compared == equal && extra_a == 0 && extra_b == 0;
  }
};

/// Compares two recorded traces: metadata, then record-by-record outcome +
/// golden checksum, naming the first divergent seq. Pure function of the
/// two traces — no serving involved.
TraceDiff diff_traces(const Trace& a, const Trace& b);

/// Human-readable one-line summary of a diff.
std::string diff_summary(const TraceDiff& diff);

}  // namespace bnn::serve

#endif  // BNN_SERVE_REPLAY_H
