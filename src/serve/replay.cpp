#include "serve/replay.h"

#include <future>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>

#include "util/check.h"

namespace bnn::serve {

namespace {

/// The replay transform for one record: served records go back exactly as
/// recorded; downgraded records are re-submitted as never-escalating routed
/// requests — the screening-pass-only request the bit-identity invariant
/// documents as equivalent to a shed-downgraded response.
Request request_for(const TraceRecord& record) {
  Request request;
  request.image = nn::Tensor::from_values(
      {1, record.image_c, record.image_h, record.image_w}, record.image);
  request.options = record.options;
  request.stream_id = record.stream_id;
  if (record.outcome == TraceOutcome::downgraded) {
    request.options.use_uncertainty_router = true;
    request.options.entropy_threshold_nats = std::numeric_limits<double>::infinity();
  }
  return request;
}

}  // namespace

ReplayReport replay_trace(const Trace& trace, const core::Accelerator& accelerator,
                          const ReplayConfig& config) {
  util::require(config.num_replicas >= 1, "replay: num_replicas must be >= 1");
  util::require(config.max_batch >= 1, "replay: max_batch must be >= 1");

  if (config.verify_fingerprint) {
    const std::uint64_t fingerprint = network_fingerprint(accelerator.network());
    if (trace.meta.network_fingerprint != 0 &&
        fingerprint != trace.meta.network_fingerprint) {
      std::ostringstream message;
      message << "replay: network fingerprint mismatch: trace was recorded against "
              << std::hex << trace.meta.network_fingerprint
              << " but the supplied accelerator serves " << fingerprint
              << " — wrong weights, every checksum would diverge";
      throw std::runtime_error(message.str());
    }
    if (accelerator.config().sampler_seed != trace.meta.sampler_seed) {
      throw std::runtime_error(
          "replay: sampler_seed mismatch: trace was recorded with seed " +
          std::to_string(trace.meta.sampler_seed) + " but the accelerator uses " +
          std::to_string(accelerator.config().sampler_seed) +
          " — mask streams would differ");
    }
  }

  ServerConfig server_config;
  server_config.max_batch = config.max_batch;
  server_config.num_threads = config.num_threads;
  server_config.num_replicas = config.num_replicas;
  server_config.dispatch_mode = config.dispatch_mode;
  server_config.overload_policy = OverloadPolicy::block;  // replay sheds nothing
  server_config.max_queue_depth = 0;
  server_config.reuse_screening_samples = trace.meta.reuse_screening_samples;

  ReplayReport report;
  struct InFlight {
    const TraceRecord* record;
    std::future<Response> future;
  };
  std::vector<InFlight> in_flight;
  in_flight.reserve(trace.records.size());

  {
    Server server(accelerator, server_config);
    const auto start = std::chrono::steady_clock::now();
    for (const TraceRecord& record : trace.records) {
      if (record.outcome == TraceOutcome::rejected ||
          record.outcome == TraceOutcome::failed) {
        ++report.skipped;
        continue;
      }
      if (!config.as_fast_as_possible) {
        const auto due = start + std::chrono::microseconds(record.arrival_us);
        std::this_thread::sleep_until(due);
      }
      in_flight.push_back(InFlight{&record, server.submit(request_for(record))});
    }
    // Leaving the scope drains the queue; collect below once all batches
    // have a chance to land (futures block individually anyway).
    for (InFlight& flight : in_flight) {
      const TraceRecord& record = *flight.record;
      const Response response = flight.future.get();
      const std::uint64_t actual = response_checksum(response);
      ++report.replayed;
      if (actual == record.checksum) {
        ++report.matched;
      } else {
        report.divergences.push_back(
            ReplayDivergence{record.seq, record.stream_id, record.checksum, actual});
      }
    }
  }

  for (const AdmissionRecord& record : trace.admission) {
    ++report.admission_records;
    if (adaptive_admission(record.inputs) != record.action) ++report.admission_mismatches;
  }
  return report;
}

std::string replay_summary(const ReplayReport& report) {
  std::ostringstream out;
  out << "replayed " << report.replayed << ", matched " << report.matched
      << ", skipped " << report.skipped << ", divergent " << report.divergences.size()
      << "; admission " << report.admission_records << " checked, "
      << report.admission_mismatches << " mismatched";
  return out.str();
}

}  // namespace bnn::serve
