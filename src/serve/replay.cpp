#include "serve/replay.h"

#include <future>
#include <limits>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "util/check.h"

namespace bnn::serve {

namespace {

/// The replay transform for one record: served records go back exactly as
/// recorded; downgraded records are re-submitted as never-escalating routed
/// requests — the screening-pass-only request the bit-identity invariant
/// documents as equivalent to a shed-downgraded response. `model` routes
/// the record to its registry tenant (empty = the server's default).
Request request_for(const TraceRecord& record, const std::string& model) {
  Request request;
  request.image = nn::Tensor::from_values(
      {1, record.image_c, record.image_h, record.image_w}, record.image);
  request.options = record.options;
  request.model = model;
  request.stream_id = record.stream_id;
  if (record.outcome == TraceOutcome::downgraded) {
    request.options.use_uncertainty_router = true;
    request.options.entropy_threshold_nats = std::numeric_limits<double>::infinity();
  }
  return request;
}

/// The model table keyed for record lookup; throws on a table that lists
/// two versions of one key (a mid-swap trace pins two weight sets per
/// name — not replayable against a single registry state).
std::map<std::uint32_t, const TraceModelInfo*> models_by_key(const Trace& trace) {
  std::map<std::uint32_t, const TraceModelInfo*> by_key;
  for (const TraceModelInfo& info : trace.meta.models) {
    const auto [it, inserted] = by_key.emplace(info.model_key, &info);
    if (!inserted && it->second->model_version != info.model_version)
      throw std::invalid_argument(
          "replay: trace spans a hot-swap (model key " +
          std::to_string(info.model_key) + " appears as versions " +
          std::to_string(it->second->model_version) + " and " +
          std::to_string(info.model_version) +
          ") — record the post-swap traffic separately to replay it");
  }
  return by_key;
}

/// The shared submit/collect loop: re-serves every served/downgraded
/// record on `server`, routing record r to model_for(r), and checks the
/// golden checksums plus the recorded admission decisions.
ReplayReport run_replay(Server& server, const Trace& trace, const ReplayConfig& config,
                        const std::map<std::uint32_t, const TraceModelInfo*>& by_key,
                        bool route_models) {
  ReplayReport report;
  struct InFlight {
    const TraceRecord* record;
    std::future<Response> future;
  };
  std::vector<InFlight> in_flight;
  in_flight.reserve(trace.records.size());

  const auto start = std::chrono::steady_clock::now();
  for (const TraceRecord& record : trace.records) {
    if (record.outcome == TraceOutcome::rejected ||
        record.outcome == TraceOutcome::failed) {
      ++report.skipped;
      continue;
    }
    std::string model;
    if (route_models) {
      const auto hit = by_key.find(record.model_key);
      if (hit == by_key.end())
        throw std::invalid_argument("replay: record " + std::to_string(record.seq) +
                                    " references model key " +
                                    std::to_string(record.model_key) +
                                    " absent from the trace model table");
      model = hit->second->name;
    }
    if (!config.as_fast_as_possible) {
      const auto due = start + std::chrono::microseconds(record.arrival_us);
      std::this_thread::sleep_until(due);
    }
    in_flight.push_back(InFlight{&record, server.submit(request_for(record, model))});
  }
  for (InFlight& flight : in_flight) {
    const TraceRecord& record = *flight.record;
    const Response response = flight.future.get();
    const std::uint64_t actual = response_checksum(response);
    ++report.replayed;
    if (actual == record.checksum) {
      ++report.matched;
    } else {
      report.divergences.push_back(
          ReplayDivergence{record.seq, record.stream_id, record.checksum, actual});
    }
  }

  for (const AdmissionRecord& record : trace.admission) {
    ++report.admission_records;
    if (adaptive_admission(record.inputs) != record.action) ++report.admission_mismatches;
  }
  return report;
}

ServerConfig replay_server_config(const Trace& trace, const ReplayConfig& config) {
  ServerConfig server_config;
  server_config.max_batch = config.max_batch;
  server_config.num_threads = config.num_threads;
  server_config.num_replicas = config.num_replicas;
  server_config.dispatch_mode = config.dispatch_mode;
  server_config.overload_policy = OverloadPolicy::block;  // replay sheds nothing
  server_config.max_queue_depth = 0;
  server_config.reuse_screening_samples = trace.meta.reuse_screening_samples;
  return server_config;
}

}  // namespace

ReplayReport replay_trace(const Trace& trace, const core::Accelerator& accelerator,
                          const ReplayConfig& config) {
  util::require(config.num_replicas >= 1, "replay: num_replicas must be >= 1");
  util::require(config.max_batch >= 1, "replay: max_batch must be >= 1");
  if (trace.meta.models.size() > 1)
    throw std::invalid_argument(
        "replay: trace references " + std::to_string(trace.meta.models.size()) +
        " models — replay it through the ModelRegistry overload");

  if (config.verify_fingerprint) {
    const std::uint64_t fingerprint = network_fingerprint(accelerator.network());
    if (trace.meta.network_fingerprint != 0 &&
        fingerprint != trace.meta.network_fingerprint) {
      std::ostringstream message;
      message << "replay: network fingerprint mismatch: trace was recorded against "
              << std::hex << trace.meta.network_fingerprint
              << " but the supplied accelerator serves " << fingerprint
              << " — wrong weights, every checksum would diverge";
      throw std::runtime_error(message.str());
    }
    if (accelerator.config().sampler_seed != trace.meta.sampler_seed) {
      throw std::runtime_error(
          "replay: sampler_seed mismatch: trace was recorded with seed " +
          std::to_string(trace.meta.sampler_seed) + " but the accelerator uses " +
          std::to_string(accelerator.config().sampler_seed) +
          " — mask streams would differ");
    }
  }

  const auto by_key = models_by_key(trace);
  Server server(accelerator, replay_server_config(trace, config));
  // Single-model: every record routes to the server's default tenant; the
  // model table is informational only.
  return run_replay(server, trace, config, by_key, /*route_models=*/false);
}

ReplayReport replay_trace(const Trace& trace, std::shared_ptr<ModelRegistry> registry,
                          const core::AcceleratorConfig& accel_config,
                          const ReplayConfig& config) {
  util::require(registry != nullptr, "replay: null model registry");
  util::require(config.num_replicas >= 1, "replay: num_replicas must be >= 1");
  util::require(config.max_batch >= 1, "replay: max_batch must be >= 1");

  const auto by_key = models_by_key(trace);
  util::require(!by_key.empty(), "replay: trace has an empty model table");

  if (config.verify_fingerprint) {
    if (accel_config.sampler_seed != trace.meta.sampler_seed) {
      throw std::runtime_error(
          "replay: sampler_seed mismatch: trace was recorded with seed " +
          std::to_string(trace.meta.sampler_seed) + " but the configuration uses " +
          std::to_string(accel_config.sampler_seed) + " — mask streams would differ");
    }
    // Per-model fingerprints: one stale or missing tenant fails fast BY
    // NAME instead of as a wall of divergent checksums.
    for (const auto& [key, info] : by_key) {
      if (!registry->has(info->name))
        throw std::runtime_error("replay: trace references model '" + info->name +
                                 "' (key " + std::to_string(key) +
                                 ") which is not published in the registry");
      const std::uint64_t fingerprint = registry->current(info->name)->fingerprint;
      if (info->fingerprint != 0 && fingerprint != info->fingerprint) {
        std::ostringstream message;
        message << "replay: fingerprint mismatch for model '" << info->name
                << "': trace was recorded against " << std::hex << info->fingerprint
                << " but the registry currently serves " << fingerprint
                << " — wrong weights, every checksum of this tenant would diverge";
        throw std::runtime_error(message.str());
      }
    }
  }

  ServerConfig server_config = replay_server_config(trace, config);
  // The server needs SOME valid default tenant; route every record
  // explicitly by its table name, so any referenced tenant works.
  server_config.default_model = by_key.begin()->second->name;
  Server server(std::move(registry), accel_config, server_config);
  return run_replay(server, trace, config, by_key, /*route_models=*/true);
}

std::string replay_summary(const ReplayReport& report) {
  std::ostringstream out;
  out << "replayed " << report.replayed << ", matched " << report.matched
      << ", skipped " << report.skipped << ", divergent " << report.divergences.size()
      << "; admission " << report.admission_records << " checked, "
      << report.admission_mismatches << " mismatched";
  return out.str();
}

TraceDiff diff_traces(const Trace& a, const Trace& b) {
  TraceDiff diff;
  // Meta: the knobs that change functional output, plus the model tables
  // (order-insensitive would be overkill — recorders emit them in
  // first-reference order, which an A/B pair shares).
  diff.meta_matches = a.meta.sampler_seed == b.meta.sampler_seed &&
                      a.meta.reuse_screening_samples == b.meta.reuse_screening_samples &&
                      a.meta.models.size() == b.meta.models.size();
  if (diff.meta_matches) {
    for (std::size_t i = 0; i < a.meta.models.size(); ++i) {
      const TraceModelInfo& ma = a.meta.models[i];
      const TraceModelInfo& mb = b.meta.models[i];
      if (ma.model_key != mb.model_key || ma.model_version != mb.model_version ||
          ma.fingerprint != mb.fingerprint || ma.name != mb.name) {
        diff.meta_matches = false;
        break;
      }
    }
  }

  const std::size_t common = std::min(a.records.size(), b.records.size());
  const auto note_divergence = [&](std::uint64_t seq, const char* what) {
    if (diff.first_divergent_seq != ~std::uint64_t{0}) return;
    diff.first_divergent_seq = seq;
    diff.first_divergence = what;
  };
  for (std::size_t i = 0; i < common; ++i) {
    const TraceRecord& ra = a.records[i];
    const TraceRecord& rb = b.records[i];
    ++diff.compared;
    if (ra.outcome != rb.outcome) {
      note_divergence(ra.seq, "outcome");
    } else if (ra.model_key != rb.model_key || ra.model_version != rb.model_version) {
      note_divergence(ra.seq, "model");
    } else if (ra.stream_id != rb.stream_id) {
      note_divergence(ra.seq, "stream id");
    } else if (ra.checksum != rb.checksum) {
      note_divergence(ra.seq, "checksum");
    } else {
      ++diff.equal;
    }
  }
  diff.extra_a = static_cast<std::uint64_t>(a.records.size() - common);
  diff.extra_b = static_cast<std::uint64_t>(b.records.size() - common);
  if (diff.extra_a != 0 || diff.extra_b != 0)
    note_divergence(static_cast<std::uint64_t>(common), "record count");
  return diff;
}

std::string diff_summary(const TraceDiff& diff) {
  std::ostringstream out;
  if (diff.identical()) {
    out << "traces identical: " << diff.compared << " records, checksums equal";
    return out.str();
  }
  out << "traces differ: " << diff.equal << "/" << diff.compared << " records equal";
  if (!diff.meta_matches) out << ", metadata differs";
  if (diff.extra_a != 0) out << ", A has " << diff.extra_a << " extra records";
  if (diff.extra_b != 0) out << ", B has " << diff.extra_b << " extra records";
  if (diff.first_divergent_seq != ~std::uint64_t{0})
    out << "; first divergence at seq " << diff.first_divergent_seq << " ("
        << diff.first_divergence << ")";
  return out.str();
}

}  // namespace bnn::serve
