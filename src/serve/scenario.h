// Scenario generator: deterministic serving workloads as data.
//
// A scenario is a list of ScenarioEvents — arrival offset, request options,
// stream id, image index — generated purely from a ScenarioSpec (no RNG:
// the patterns are index-driven, so the same spec always yields the same
// stimulus stream). bench/serve_throughput, bench/scenario_gen, and the
// replay tests all consume the SAME generator, so open-loop arrival
// generation has exactly one implementation (previously serve_throughput
// hand-rolled its two-phase overload loop).
//
// Kinds:
//   uniform              every request {S, L=2}, optionally routed — the
//                        coalescing-sweep wave.
//   mixed_shapes         two-shape flat/square wave with 1-in-4 heavy
//                        {4S, all-L} requests — the LPT dispatch wave.
//   two_phase_overload   closed-loop warm phase (fills the latency window
//                        with healthy service times), then an open-loop
//                        flood at a fixed arrival gap — the overload wave,
//                        3/4 routed with an always-escalate threshold.
//   diurnal              arrival gap modulated by a sinusoidal load curve
//                        (peaks arrive faster than troughs), alternating
//                        routed/direct traffic.
//   burst                quiet gaps separating bursts that arrive
//                        back-to-back — queue-depth stress.
//   adversarial_escalate every request routed with an always-escalate
//                        threshold: the worst case for screening routing
//                        (every request pays screening + full S).
#ifndef BNN_SERVE_SCENARIO_H
#define BNN_SERVE_SCENARIO_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/server.h"

namespace bnn::serve {

enum class ScenarioKind {
  uniform,
  mixed_shapes,
  two_phase_overload,
  diurnal,
  burst,
  adversarial_escalate,
};

/// Display name ("burst", "mixed_shapes", ...).
const char* scenario_kind_name(ScenarioKind kind);
/// Inverse of scenario_kind_name; throws std::invalid_argument on an
/// unknown name.
ScenarioKind scenario_kind_from_name(const std::string& name);
/// Every kind, in declaration order (tools iterating "all").
const std::vector<ScenarioKind>& all_scenario_kinds();

struct ScenarioSpec {
  ScenarioKind kind = ScenarioKind::uniform;
  int num_requests = 48;
  /// S of a full-quality request (heavy mixed-shape requests use 4x this).
  int num_samples = 8;
  int screening_samples = 2;
  /// Router flag for kinds where routing is optional (uniform, diurnal
  /// light traffic, mixed_shapes light traffic). Overload / adversarial
  /// traffic routes by its own pattern regardless.
  bool routed = false;
  /// Escalation threshold of optionally-routed traffic (nats).
  double entropy_threshold_nats = 1.2;
  /// Base open-loop inter-arrival gap (two_phase_overload flood, diurnal
  /// mean). 0 = everything arrives at once.
  double arrival_gap_ms = 0.0;
  /// two_phase_overload: closed-loop warm requests; -1 = num_requests / 4
  /// (at least 1), the historical serve_throughput split.
  int warm_requests = -1;
  /// burst: requests per burst / quiet time between bursts.
  int burst_size = 8;
  double burst_quiet_ms = 2.0;
  /// diurnal: full sine periods over the scenario and the relative
  /// amplitude of the gap modulation (0 = flat, must stay < 1).
  int diurnal_periods = 2;
  double diurnal_amplitude = 0.9;
  /// Tenants to spread the stimulus over: event r targets model index
  /// r % num_models (round-robin, so every tenant sees every traffic
  /// pattern position). 1 = the single-model scenarios of old.
  int num_models = 1;
};

/// One generated arrival.
struct ScenarioEvent {
  /// Arrival offset from scenario start (open-loop events).
  double arrival_ms = 0.0;
  /// Submit-and-wait instead of open-loop (the warm phase of
  /// two_phase_overload paces itself on service completions).
  bool closed_loop_warm = false;
  /// Which stimulus image to attach (callers typically index a dataset
  /// modulo its size).
  int image_index = 0;
  /// mixed_shapes: 0 = flat (F,1,1) view, 1 = square (1,H,W) view of the
  /// same image. Always 0 for other kinds.
  int shape_variant = 0;
  /// Which tenant this event targets (< ScenarioSpec::num_models); callers
  /// map it to a registry model name. Always 0 for single-model specs.
  int model_index = 0;
  std::uint64_t stream_id = 0;  ///< pinned to the event index
  RequestOptions options;
};

/// Generates the deterministic event list for `spec`. Throws
/// std::invalid_argument on nonsensical specs (num_requests < 1,
/// amplitude >= 1, ...).
std::vector<ScenarioEvent> generate_scenario(const ScenarioSpec& spec);

/// Maps an event to its stimulus image, (C, H, W) or (1, C, H, W).
using ScenarioImageFn = std::function<nn::Tensor(const ScenarioEvent&)>;

/// Drives `server` with a generated scenario: closed-loop warm events are
/// submitted and awaited one at a time; open-loop events are submitted at
/// their arrival offsets (or back-to-back when `as_fast_as_possible`).
/// Returns one slot per event — nullopt marks a backpressure/shedding
/// rejection (QueueFullError).
std::vector<std::optional<Response>> play_scenario(Server& server,
                                                   const std::vector<ScenarioEvent>& events,
                                                   const ScenarioImageFn& image_for,
                                                   bool as_fast_as_possible = false);

/// Multi-tenant overload: each event's request is additionally routed to
/// `model_names[event.model_index]` (an empty vector or name falls back to
/// the server's default model). Event model indices must stay within the
/// vector; rejections — including per-tenant quota rejections — leave the
/// slot nullopt exactly like the single-model overload.
std::vector<std::optional<Response>> play_scenario(Server& server,
                                                   const std::vector<ScenarioEvent>& events,
                                                   const std::vector<std::string>& model_names,
                                                   const ScenarioImageFn& image_for,
                                                   bool as_fast_as_possible = false);

}  // namespace bnn::serve

#endif  // BNN_SERVE_SCENARIO_H
