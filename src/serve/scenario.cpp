#include "serve/scenario.h"

#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <utility>

#include "util/check.h"

namespace bnn::serve {

const char* scenario_kind_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::uniform: return "uniform";
    case ScenarioKind::mixed_shapes: return "mixed_shapes";
    case ScenarioKind::two_phase_overload: return "two_phase_overload";
    case ScenarioKind::diurnal: return "diurnal";
    case ScenarioKind::burst: return "burst";
    case ScenarioKind::adversarial_escalate: return "adversarial_escalate";
  }
  return "?";
}

ScenarioKind scenario_kind_from_name(const std::string& name) {
  for (const ScenarioKind kind : all_scenario_kinds())
    if (name == scenario_kind_name(kind)) return kind;
  throw std::invalid_argument("scenario: unknown kind '" + name + "'");
}

const std::vector<ScenarioKind>& all_scenario_kinds() {
  static const std::vector<ScenarioKind> kinds = {
      ScenarioKind::uniform,       ScenarioKind::mixed_shapes,
      ScenarioKind::two_phase_overload, ScenarioKind::diurnal,
      ScenarioKind::burst,         ScenarioKind::adversarial_escalate,
  };
  return kinds;
}

std::vector<ScenarioEvent> generate_scenario(const ScenarioSpec& spec) {
  util::require(spec.num_requests >= 1, "scenario: num_requests must be >= 1");
  util::require(spec.num_samples >= 1, "scenario: num_samples must be >= 1");
  util::require(spec.screening_samples >= 1,
                "scenario: screening_samples must be >= 1");
  util::require(spec.arrival_gap_ms >= 0.0, "scenario: arrival_gap_ms must be >= 0");
  util::require(spec.burst_size >= 1, "scenario: burst_size must be >= 1");
  util::require(spec.diurnal_amplitude >= 0.0 && spec.diurnal_amplitude < 1.0,
                "scenario: diurnal_amplitude must be in [0, 1)");
  util::require(spec.diurnal_periods >= 1, "scenario: diurnal_periods must be >= 1");
  util::require(spec.num_models >= 1, "scenario: num_models must be >= 1");

  std::vector<ScenarioEvent> events;
  events.reserve(static_cast<std::size_t>(spec.num_requests));

  // The historical serve_throughput warm/flood split.
  const int warm = spec.warm_requests >= 0 ? spec.warm_requests
                                           : std::max(1, spec.num_requests / 4);

  double clock_ms = 0.0;
  for (int r = 0; r < spec.num_requests; ++r) {
    ScenarioEvent event;
    event.image_index = r;
    event.model_index = r % spec.num_models;
    event.stream_id = static_cast<std::uint64_t>(r);
    event.options.num_samples = spec.num_samples;
    event.options.screening_samples = spec.screening_samples;

    switch (spec.kind) {
      case ScenarioKind::uniform:
        event.options.bayes_layers = 2;
        event.options.use_uncertainty_router = spec.routed;
        event.options.entropy_threshold_nats = spec.entropy_threshold_nats;
        event.arrival_ms = clock_ms;
        clock_ms += spec.arrival_gap_ms;
        break;

      case ScenarioKind::mixed_shapes: {
        // Two-shape flat/square wave, 1-in-4 heavy {4S, all-L}, the rest
        // light {S=2, L=1} — the mixed S/L traffic the LPT dispatcher
        // targets (formerly serve_throughput's "mixed" workload).
        event.shape_variant = r % 2;
        const bool heavy = r % 4 == 3;
        event.options.num_samples = heavy ? 4 * spec.num_samples : 2;
        event.options.bayes_layers = heavy ? -1 : 1;
        if (!heavy && spec.routed) {
          event.options.use_uncertainty_router = true;
          event.options.entropy_threshold_nats = spec.entropy_threshold_nats;
        }
        event.arrival_ms = clock_ms;
        clock_ms += spec.arrival_gap_ms;
        break;
      }

      case ScenarioKind::two_phase_overload:
        // Closed-loop warm phase, then an open-loop flood at a fixed gap;
        // 3/4 routed with an always-escalate threshold (the requests
        // adaptive shedding can downgrade instead of rejecting). This is
        // serve_throughput's hand-rolled two-phase loop, extracted.
        event.options.bayes_layers = 2;
        event.options.use_uncertainty_router = r % 4 != 0;
        event.options.entropy_threshold_nats = -1.0;
        if (r < warm) {
          event.closed_loop_warm = true;
        } else {
          event.arrival_ms = clock_ms;
          clock_ms += spec.arrival_gap_ms;
        }
        break;

      case ScenarioKind::diurnal: {
        // Sinusoidal load curve: the inter-arrival gap shrinks by
        // `amplitude` at the peak and stretches at the trough, completing
        // `periods` cycles over the scenario. Odd requests are routed.
        event.options.bayes_layers = 2;
        event.options.use_uncertainty_router = r % 2 == 1;
        event.options.entropy_threshold_nats = spec.entropy_threshold_nats;
        event.arrival_ms = clock_ms;
        const double phase = 2.0 * 3.14159265358979323846 * spec.diurnal_periods *
                             static_cast<double>(r) / spec.num_requests;
        clock_ms += spec.arrival_gap_ms * (1.0 - spec.diurnal_amplitude * std::sin(phase));
        break;
      }

      case ScenarioKind::burst:
        // burst_size arrivals back-to-back, then a quiet gap.
        event.options.bayes_layers = 2;
        event.options.use_uncertainty_router = spec.routed;
        event.options.entropy_threshold_nats = spec.entropy_threshold_nats;
        event.arrival_ms = clock_ms;
        if ((r + 1) % spec.burst_size == 0) clock_ms += spec.burst_quiet_ms;
        break;

      case ScenarioKind::adversarial_escalate:
        // Every request routed and every screening pass escalates: the
        // router's worst case (all traffic pays screening + full S).
        event.options.bayes_layers = -1;
        event.options.use_uncertainty_router = true;
        event.options.entropy_threshold_nats = -1.0;
        event.arrival_ms = clock_ms;
        clock_ms += spec.arrival_gap_ms;
        break;
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<std::optional<Response>> play_scenario(
    Server& server, const std::vector<ScenarioEvent>& events,
    const ScenarioImageFn& image_for, bool as_fast_as_possible) {
  return play_scenario(server, events, {}, image_for, as_fast_as_possible);
}

std::vector<std::optional<Response>> play_scenario(
    Server& server, const std::vector<ScenarioEvent>& events,
    const std::vector<std::string>& model_names, const ScenarioImageFn& image_for,
    bool as_fast_as_possible) {
  for (const ScenarioEvent& event : events)
    util::require(model_names.empty() ||
                      static_cast<std::size_t>(event.model_index) < model_names.size(),
                  "scenario: event model_index out of range for model_names");
  std::vector<std::optional<Response>> responses(events.size());
  std::vector<std::future<Response>> futures(events.size());
  std::vector<bool> resolved(events.size(), true);  // flipped false on submit

  const auto resolve = [&](std::size_t i) {
    if (resolved[i]) return;
    resolved[i] = true;
    try {
      responses[i] = futures[i].get();
    } catch (const QueueFullError&) {
      // rejected by backpressure/shedding — the slot stays nullopt
    }
  };

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ScenarioEvent& event = events[i];
    Request request;
    request.image = image_for(event);
    request.options = event.options;
    if (!model_names.empty())
      request.model = model_names[static_cast<std::size_t>(event.model_index)];
    request.stream_id = event.stream_id;
    if (!as_fast_as_possible && !event.closed_loop_warm && event.arrival_ms > 0.0) {
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(
                      static_cast<std::int64_t>(event.arrival_ms * 1000.0)));
    }
    futures[i] = server.submit(std::move(request));
    resolved[i] = false;
    if (event.closed_loop_warm) resolve(i);
  }
  for (std::size_t i = 0; i < events.size(); ++i) resolve(i);
  return responses;
}

}  // namespace bnn::serve
