#include "serve/cost_model.h"

#include "core/accelerator.h"
#include "serve/server.h"
#include "util/check.h"

namespace bnn::serve {

CostModel::CostModel(nn::NetworkDesc desc, core::PerfConfig config,
                     bool use_intermediate_caching)
    : desc_(std::move(desc)),
      config_(config),
      use_intermediate_caching_(use_intermediate_caching),
      num_sites_(desc_.num_sites()) {}

std::unique_ptr<CostModel> CostModel::for_accelerator(const core::Accelerator& accelerator) {
  const core::AcceleratorConfig& config = accelerator.config();
  return std::make_unique<CostModel>(accelerator.network().describe(),
                                     core::PerfConfig{config.nne, config.ddr},
                                     config.use_intermediate_caching);
}

int CostModel::resolve_layers(int bayes_layers) const {
  return bayes_layers < 0 ? num_sites_ : bayes_layers;
}

double CostModel::modelled_ms(int bayes_layers, int num_samples) const {
  const auto key = std::make_pair(resolve_layers(bayes_layers), num_samples);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto hit = cache_.find(key);
  if (hit != cache_.end()) return hit->second;
  const double ms =
      core::estimate_mc(desc_, config_, key.first, key.second, use_intermediate_caching_)
          .latency_ms;
  cache_.emplace(key, ms);
  return ms;
}

double CostModel::first_pass_ms(const RequestOptions& options) const {
  const int samples = options.use_uncertainty_router ? options.screening_samples
                                                     : options.num_samples;
  return modelled_ms(options.bayes_layers, samples);
}

double CostModel::admission_ms(const RequestOptions& options) const {
  double ms = first_pass_ms(options);
  if (options.use_uncertainty_router) {
    // Escalation-reuse servers rerun only the samples the screening pass
    // did not already draw (when there are any); classic servers recompute
    // the full S from scratch.
    const int second_pass =
        escalation_reuse_ ? options.num_samples - options.screening_samples
                          : options.num_samples;
    if (second_pass > 0) ms += modelled_ms(options.bayes_layers, second_pass);
  }
  return ms;
}

double CostModel::downgraded_ms(const RequestOptions& options) const {
  return first_pass_ms(options);
}

}  // namespace bnn::serve
