#include "serve/cost_model.h"

#include <algorithm>

#include "core/accelerator.h"
#include "serve/server.h"
#include "util/check.h"

namespace bnn::serve {

CostModel::CostModel(core::PerfConfig config, bool use_intermediate_caching)
    : config_(config), use_intermediate_caching_(use_intermediate_caching) {}

CostModel::CostModel(nn::NetworkDesc desc, core::PerfConfig config,
                     bool use_intermediate_caching)
    : CostModel(config, use_intermediate_caching) {
  bind_model(0, std::move(desc), 0);
}

std::unique_ptr<CostModel> CostModel::for_accelerator(const core::Accelerator& accelerator) {
  const core::AcceleratorConfig& config = accelerator.config();
  auto model = std::make_unique<CostModel>(core::PerfConfig{config.nne, config.ddr},
                                           config.use_intermediate_caching);
  model->bind_model(0, accelerator.network().describe(),
                    accelerator.network().resident_weight_bytes());
  return model;
}

void CostModel::bind_model(ModelKey key, nn::NetworkDesc desc, std::uint64_t weight_bytes,
                           const void* tag, std::vector<std::uint64_t> segment_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() <= key) entries_.resize(static_cast<std::size_t>(key) + 1);
  auto entry = std::make_unique<Entry>();
  entry->num_sites = desc.num_sites();
  entry->desc = std::move(desc);
  entry->weight_bytes = weight_bytes;
  entry->segment_bytes = std::move(segment_bytes);
  entry->tag = tag;
  // A swap keeps the tenant's calibration override: the scale corrects for
  // simulator-vs-model skew of the HOST, not of one weight set.
  if (entries_[key] != nullptr) entry->calibration = entries_[key]->calibration;
  entries_[key] = std::move(entry);
}

const void* CostModel::bound_tag(ModelKey key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (key >= entries_.size() || entries_[key] == nullptr) return nullptr;
  return entries_[key]->tag;
}

bool CostModel::has_model(ModelKey key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return key < entries_.size() && entries_[key] != nullptr;
}

CostModel::Entry& CostModel::entry_locked(ModelKey key) const {
  util::require(key < entries_.size() && entries_[key] != nullptr,
                "cost model: unbound model key");
  return *entries_[key];
}

double CostModel::modelled_ms_locked(Entry& entry, int bayes_layers, int num_samples) const {
  const int layers = bayes_layers < 0 ? entry.num_sites : bayes_layers;
  const auto key = std::make_pair(layers, num_samples);
  const auto hit = entry.cache.find(key);
  if (hit != entry.cache.end()) return hit->second;
  const double ms =
      core::estimate_mc(entry.desc, config_, layers, num_samples, use_intermediate_caching_)
          .latency_ms;
  entry.cache.emplace(key, ms);
  return ms;
}

double CostModel::modelled_ms(ModelKey key, int bayes_layers, int num_samples) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return modelled_ms_locked(entry_locked(key), bayes_layers, num_samples);
}

double CostModel::first_pass_ms(ModelKey key, const RequestOptions& options) const {
  const int samples = options.use_uncertainty_router ? options.screening_samples
                                                     : options.num_samples;
  return modelled_ms(key, options.bayes_layers, samples);
}

double CostModel::admission_ms(ModelKey key, const RequestOptions& options) const {
  double ms = first_pass_ms(key, options);
  if (options.use_uncertainty_router) {
    // Escalation-reuse servers rerun only the samples the screening pass
    // did not already draw (when there are any); classic servers recompute
    // the full S from scratch.
    const int second_pass =
        escalation_reuse_ ? options.num_samples - options.screening_samples
                          : options.num_samples;
    if (second_pass > 0) ms += modelled_ms(key, options.bayes_layers, second_pass);
  }
  return ms;
}

double CostModel::downgraded_ms(ModelKey key, const RequestOptions& options) const {
  return first_pass_ms(key, options);
}

double CostModel::cold_reload_ms(ModelKey key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry& entry = entry_locked(key);
  const double cycles = config_.ddr.transfer_cycles(
      static_cast<std::int64_t>(entry.weight_bytes), config_.nne.clock_mhz);
  // cycles / (MHz * 1e6) seconds -> * 1e3 ms.
  return cycles / (config_.nne.clock_mhz * 1e3);
}

double CostModel::streamed_reload_ms(ModelKey key, const std::vector<int>& missing) const {
  if (missing.empty()) return 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_locked(key);
  const int num_layers = static_cast<int>(entry.segment_bytes.size());
  if (num_layers == 0) {
    // No per-layer payload info bound: flat whole-plan price.
    const double cycles = config_.ddr.transfer_cycles(
        static_cast<std::int64_t>(entry.weight_bytes), config_.nne.clock_mhz);
    return cycles / (config_.nne.clock_mhz * 1e3);
  }
  if (entry.layer_cycles.empty()) {
    // The deterministic pass's per-layer durations — the compute windows a
    // double-buffered prefetch hides transfers behind. Cached per bind.
    const core::RunStats pass = core::estimate_pass(
        entry.desc, config_, 0, static_cast<int>(entry.desc.layers.size()) - 1,
        /*input_from_chip=*/false, /*keep_last_on_chip=*/false);
    entry.layer_cycles.reserve(pass.per_layer.size());
    for (const core::LayerTiming& timing : pass.per_layer)
      entry.layer_cycles.push_back(timing.cycles);
  }
  double stall_cycles = 0.0;
  for (const int index : missing) {
    util::require(index >= 0 && index < num_layers,
                  "cost model: missing segment index out of range");
    const double transfer = config_.ddr.transfer_cycles(
        static_cast<std::int64_t>(entry.segment_bytes[static_cast<std::size_t>(index)]),
        config_.nne.clock_mhz);
    if (index == 0) {
      // Nothing computes ahead of layer 0 — its reload charges in full.
      stall_cycles += transfer;
    } else {
      // Layer index's burst rides behind layer index-1's compute; only the
      // non-overlapped remainder stalls the pipeline.
      const double window =
          entry.layer_cycles[static_cast<std::size_t>(index) - 1];
      stall_cycles += std::max(0.0, transfer - window);
    }
  }
  return stall_cycles / (config_.nne.clock_mhz * 1e3);
}

void CostModel::set_model_calibration(ModelKey key, core::PerfCalibration calibration) {
  std::lock_guard<std::mutex> lock(mutex_);
  entry_locked(key).calibration = calibration;
}

double CostModel::wall_ms(ModelKey key, double modelled) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (key < entries_.size() && entries_[key] != nullptr &&
      entries_[key]->calibration.has_value())
    return modelled * entries_[key]->calibration->wall_ms_per_modelled_ms;
  return modelled * calibration_.wall_ms_per_modelled_ms;
}

int CostModel::num_sites(ModelKey key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_locked(key).num_sites;
}

}  // namespace bnn::serve
