#include "serve/trace.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "quant/qnetwork.h"
#include "util/check.h"

namespace bnn::serve {

namespace {

// ---- little-endian byte I/O -------------------------------------------------
// Values are encoded byte-by-byte so a trace file carries identical bits on
// every host; fread/fwrite of whole structs would bake in padding and
// endianness.

void put_u8(std::FILE* file, std::uint8_t value) {
  if (std::fputc(value, file) == EOF)
    throw std::runtime_error("trace: write failed: " + std::string(std::strerror(errno)));
}

void put_u32(std::FILE* file, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) put_u8(file, static_cast<std::uint8_t>(value >> (8 * i)));
}

void put_u64(std::FILE* file, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) put_u8(file, static_cast<std::uint8_t>(value >> (8 * i)));
}

void put_i32(std::FILE* file, std::int32_t value) {
  put_u32(file, static_cast<std::uint32_t>(value));
}

void put_f32(std::FILE* file, float value) {
  put_u32(file, std::bit_cast<std::uint32_t>(value));
}

void put_f64(std::FILE* file, double value) {
  put_u64(file, std::bit_cast<std::uint64_t>(value));
}

std::uint8_t get_u8(std::FILE* file, const char* what) {
  const int c = std::fgetc(file);
  if (c == EOF)
    throw TraceFormatError(std::string("trace: truncated file (while reading ") + what +
                           ")");
  return static_cast<std::uint8_t>(c);
}

std::uint32_t get_u32(std::FILE* file, const char* what) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(get_u8(file, what)) << (8 * i);
  return value;
}

std::uint64_t get_u64(std::FILE* file, const char* what) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(get_u8(file, what)) << (8 * i);
  return value;
}

std::int32_t get_i32(std::FILE* file, const char* what) {
  return static_cast<std::int32_t>(get_u32(file, what));
}

float get_f32(std::FILE* file, const char* what) {
  return std::bit_cast<float>(get_u32(file, what));
}

double get_f64(std::FILE* file, const char* what) {
  return std::bit_cast<double>(get_u64(file, what));
}

// ---- section writers/readers ------------------------------------------------

// magic(8) version(4) flags(4) workload(4) sampler_seed(8) fingerprint(8)
// record_count(8) admission_count(8) model_count(4); the three counts sit
// at a fixed offset so finalize can patch them in place.
constexpr long kCountsOffset = 8 + 4 + 4 + 4 + 8 + 8;

constexpr std::uint32_t kFlagReuseScreeningSamples = 1u << 0;

void write_header(std::FILE* file, const TraceMeta& meta, std::uint64_t record_count,
                  std::uint64_t admission_count, std::uint32_t model_count) {
  put_u64(file, kTraceMagic);
  put_u32(file, kTraceVersion);
  std::uint32_t flags = 0;
  if (meta.reuse_screening_samples) flags |= kFlagReuseScreeningSamples;
  put_u32(file, flags);
  put_u32(file, meta.workload_id);
  put_u64(file, meta.sampler_seed);
  put_u64(file, meta.network_fingerprint);
  put_u64(file, record_count);
  put_u64(file, admission_count);
  put_u32(file, model_count);
}

void write_record(std::FILE* file, const TraceRecord& record) {
  util::ensure(static_cast<std::int64_t>(record.image.size()) ==
                   static_cast<std::int64_t>(record.image_c) * record.image_h *
                       record.image_w,
               "trace: record image payload does not match its (C, H, W)");
  put_u64(file, record.seq);
  put_u64(file, record.arrival_us);
  put_u64(file, record.stream_id);
  put_u32(file, record.model_key);
  put_u64(file, record.model_version);
  put_i32(file, record.options.num_samples);
  put_i32(file, record.options.bayes_layers);
  put_i32(file, record.options.screening_samples);
  put_i32(file, record.options.sample_offset);
  put_u8(file, record.options.use_uncertainty_router ? 1 : 0);
  put_f64(file, record.options.entropy_threshold_nats);
  put_u32(file, static_cast<std::uint32_t>(record.image_c));
  put_u32(file, static_cast<std::uint32_t>(record.image_h));
  put_u32(file, static_cast<std::uint32_t>(record.image_w));
  for (const float value : record.image) put_f32(file, value);
  put_u8(file, static_cast<std::uint8_t>(record.outcome));
  put_u8(file, record.escalated ? 1 : 0);
  put_i32(file, record.samples_used);
  put_i32(file, record.predicted_class);
  put_u64(file, record.checksum);
}

void write_admission(std::FILE* file, const AdmissionRecord& record) {
  put_u64(file, record.submit_seq);
  put_u8(file, record.inputs.queue_full ? 1 : 0);
  put_u8(file, record.inputs.downgrade_eligible ? 1 : 0);
  put_u8(file, static_cast<std::uint8_t>(record.action));
  put_f64(file, record.inputs.p99_ms);
  put_f64(file, record.inputs.latency_target_ms);
  put_f64(file, record.inputs.backlog_ms);
  put_f64(file, record.inputs.request_ms);
}

void write_model_info(std::FILE* file, const TraceModelInfo& info) {
  put_u32(file, info.model_key);
  put_u32(file, info.workload_id);
  put_u64(file, info.model_version);
  put_u64(file, info.fingerprint);
  put_u32(file, static_cast<std::uint32_t>(info.name.size()));
  for (const char c : info.name) put_u8(file, static_cast<std::uint8_t>(c));
}

TraceModelInfo read_model_info(std::FILE* file) {
  TraceModelInfo info;
  info.model_key = get_u32(file, "model table key");
  info.workload_id = get_u32(file, "model table workload");
  info.model_version = get_u64(file, "model table version");
  info.fingerprint = get_u64(file, "model table fingerprint");
  const std::uint32_t len = get_u32(file, "model table name length");
  constexpr std::uint32_t kMaxNameLen = 1u << 12;
  if (len > kMaxNameLen)
    throw TraceFormatError("trace: corrupted model table (absurd name length)");
  info.name.resize(len);
  for (char& c : info.name)
    c = static_cast<char>(get_u8(file, "model table name"));
  return info;
}

TraceRecord read_record(std::FILE* file, std::uint32_t version) {
  TraceRecord record;
  record.seq = get_u64(file, "record seq");
  record.arrival_us = get_u64(file, "record arrival");
  record.stream_id = get_u64(file, "record stream id");
  if (version >= 2) {
    record.model_key = get_u32(file, "record model key");
    record.model_version = get_u64(file, "record model version");
  }
  record.options.num_samples = get_i32(file, "record num_samples");
  record.options.bayes_layers = get_i32(file, "record bayes_layers");
  record.options.screening_samples = get_i32(file, "record screening_samples");
  record.options.sample_offset = get_i32(file, "record sample_offset");
  record.options.use_uncertainty_router = get_u8(file, "record router flag") != 0;
  record.options.entropy_threshold_nats = get_f64(file, "record entropy threshold");
  const std::uint32_t c = get_u32(file, "record image C");
  const std::uint32_t h = get_u32(file, "record image H");
  const std::uint32_t w = get_u32(file, "record image W");
  // Dimension sanity bounds the allocation below: a corrupted length field
  // must produce a format error, not a multi-gigabyte bad_alloc.
  constexpr std::uint32_t kMaxDim = 1u << 16;
  constexpr std::uint64_t kMaxElems = 1ull << 26;
  if (c == 0 || h == 0 || w == 0 || c > kMaxDim || h > kMaxDim || w > kMaxDim ||
      static_cast<std::uint64_t>(c) * h * w > kMaxElems) {
    throw TraceFormatError("trace: corrupted record (image dimensions out of range)");
  }
  record.image_c = static_cast<int>(c);
  record.image_h = static_cast<int>(h);
  record.image_w = static_cast<int>(w);
  record.image.resize(static_cast<std::size_t>(c) * h * w);
  for (float& value : record.image) value = get_f32(file, "record image payload");
  const std::uint8_t outcome = get_u8(file, "record outcome");
  if (outcome > static_cast<std::uint8_t>(TraceOutcome::failed))
    throw TraceFormatError("trace: corrupted record (unknown outcome)");
  record.outcome = static_cast<TraceOutcome>(outcome);
  record.escalated = get_u8(file, "record escalated flag") != 0;
  record.samples_used = get_i32(file, "record samples_used");
  record.predicted_class = get_i32(file, "record predicted_class");
  record.checksum = get_u64(file, "record checksum");
  return record;
}

AdmissionRecord read_admission(std::FILE* file) {
  AdmissionRecord record;
  record.submit_seq = get_u64(file, "admission seq");
  record.inputs.queue_full = get_u8(file, "admission queue_full") != 0;
  record.inputs.downgrade_eligible = get_u8(file, "admission eligibility") != 0;
  const std::uint8_t action = get_u8(file, "admission action");
  if (action > static_cast<std::uint8_t>(AdmissionAction::reject))
    throw TraceFormatError("trace: corrupted admission record (unknown action)");
  record.action = static_cast<AdmissionAction>(action);
  record.inputs.p99_ms = get_f64(file, "admission p99");
  record.inputs.latency_target_ms = get_f64(file, "admission target");
  record.inputs.backlog_ms = get_f64(file, "admission backlog");
  record.inputs.request_ms = get_f64(file, "admission request cost");
  return record;
}

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

// ---- checksums --------------------------------------------------------------

std::uint64_t response_checksum(const Response& response) {
  Fnv1a64 hash;
  hash.u32(static_cast<std::uint32_t>(response.probs.dim()));
  for (int axis = 0; axis < response.probs.dim(); ++axis)
    hash.u32(static_cast<std::uint32_t>(response.probs.size(axis)));
  for (std::int64_t i = 0; i < response.probs.numel(); ++i)
    hash.f32(response.probs.data()[i]);
  hash.i32(response.predicted_class);
  hash.f64(response.entropy_nats);
  hash.byte(response.escalated ? 1 : 0);
  hash.i32(response.samples_used);
  hash.i32(response.bayes_layers);
  hash.f64(response.stats.total_cycles);
  hash.f64(response.stats.latency_ms);
  hash.i64(response.stats.macs);
  hash.i64(response.stats.ddr_bytes);
  hash.i64(response.stats.mask_bits);
  // stream_id and shed_downgraded are deliberately NOT hashed — see trace.h.
  return hash.digest();
}

std::uint64_t network_fingerprint(const quant::QuantNetwork& network) {
  Fnv1a64 hash;
  hash.i32(network.num_classes);
  hash.i32(network.num_sites);
  hash.f64(network.dropout_p);
  hash.i32(network.dropout_keep.mult);
  hash.i32(network.dropout_keep.shift);
  hash.f32(network.input.scale);
  hash.i32(network.input.zero_point);
  hash.u32(static_cast<std::uint32_t>(network.layers.size()));
  for (const quant::QLayer& layer : network.layers) {
    const nn::HwLayer& geom = layer.geom;
    hash.i32(geom.op == nn::HwLayer::Op::conv ? 0 : 1);
    hash.i32(geom.in_c);
    hash.i32(geom.in_h);
    hash.i32(geom.in_w);
    hash.i32(geom.out_c);
    hash.i32(geom.kernel);
    hash.i32(geom.stride);
    hash.i32(geom.pad);
    hash.i32(geom.pool_kernel);
    hash.i32(geom.pool_stride);
    hash.byte(geom.pool_is_global ? 1 : 0);
    hash.byte(geom.pool_is_max ? 1 : 0);
    hash.byte(geom.has_relu ? 1 : 0);
    hash.byte(geom.has_bn ? 1 : 0);
    hash.byte(geom.has_shortcut ? 1 : 0);
    hash.byte(geom.is_bayes_site ? 1 : 0);
    hash.i32(layer.input_source);
    hash.i32(layer.shortcut_source);
    hash.f32(layer.in.scale);
    hash.i32(layer.in.zero_point);
    hash.f32(layer.out.scale);
    hash.i32(layer.out.zero_point);
    // Weight bytes are hashed in materialized row-major form so packed and
    // unpacked storage of the same weights share one fingerprint (and
    // unpacked nets keep the exact digest of the pre-packing format:
    // rows are contiguous, so this is the same byte stream).
    const std::size_t row_terms = static_cast<std::size_t>(geom.in_c) *
                                  geom.kernel * geom.kernel;
    if (!layer.weights_packed) {
      hash.u64(layer.weights.size());
      hash.bytes(layer.weights.data(), layer.weights.size());
    } else {
      hash.u64(static_cast<std::uint64_t>(geom.out_c) * row_terms);
      std::vector<std::int8_t> wrow(row_terms);
      for (int f = 0; f < geom.out_c; ++f) {
        layer.materialize_weight_row(f, wrow.data());
        hash.bytes(wrow.data(), row_terms);
      }
    }
    for (const float scale : layer.weight_scales) hash.f32(scale);
    for (const std::int32_t bias : layer.bias) hash.i32(bias);
    for (const quant::FixedMultiplier& requant : layer.requant) {
      hash.i32(requant.mult);
      hash.i32(requant.shift);
    }
    for (const std::int32_t post : layer.post_add) hash.i32(post);
    hash.i32(layer.shortcut_rescale.mult);
    hash.i32(layer.shortcut_rescale.shift);
  }
  return hash.digest();
}

// ---- whole-trace I/O --------------------------------------------------------

void write_trace(const std::string& path, const Trace& trace) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr)
    throw std::runtime_error("trace: cannot open '" + path +
                             "' for writing: " + std::strerror(errno));
  // An empty model table gets the same single-model entry read_trace would
  // synthesize, so write -> read -> write is byte-stable.
  std::vector<TraceModelInfo> models = trace.meta.models;
  if (models.empty()) {
    TraceModelInfo info;
    info.model_key = 0;
    info.model_version = 1;
    info.workload_id = trace.meta.workload_id;
    info.fingerprint = trace.meta.network_fingerprint;
    models.push_back(std::move(info));
  }
  write_header(file.get(), trace.meta, trace.records.size(), trace.admission.size(),
               static_cast<std::uint32_t>(models.size()));
  for (const TraceRecord& record : trace.records) write_record(file.get(), record);
  for (const AdmissionRecord& record : trace.admission)
    write_admission(file.get(), record);
  for (const TraceModelInfo& info : models) write_model_info(file.get(), info);
  if (std::fflush(file.get()) != 0)
    throw std::runtime_error("trace: flush of '" + path +
                             "' failed: " + std::strerror(errno));
}

Trace read_trace(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr)
    throw std::runtime_error("trace: cannot open '" + path +
                             "' for reading: " + std::strerror(errno));

  if (get_u64(file.get(), "magic") != kTraceMagic)
    throw TraceFormatError("trace: '" + path + "' is not a BNTRACE file (bad magic)");
  const std::uint32_t version = get_u32(file.get(), "version");
  if (version < kTraceMinVersion || version > kTraceVersion)
    throw TraceFormatError("trace: version mismatch in '" + path + "': file v" +
                           std::to_string(version) + ", reader v" +
                           std::to_string(kTraceVersion));

  Trace trace;
  const std::uint32_t flags = get_u32(file.get(), "flags");
  trace.meta.reuse_screening_samples = (flags & kFlagReuseScreeningSamples) != 0;
  trace.meta.workload_id = get_u32(file.get(), "workload id");
  trace.meta.sampler_seed = get_u64(file.get(), "sampler seed");
  trace.meta.network_fingerprint = get_u64(file.get(), "network fingerprint");
  const std::uint64_t record_count = get_u64(file.get(), "record count");
  const std::uint64_t admission_count = get_u64(file.get(), "admission count");
  const std::uint64_t model_count =
      version >= 2 ? get_u32(file.get(), "model count") : 0;
  constexpr std::uint64_t kMaxRecords = 1ull << 24;
  if (record_count > kMaxRecords || admission_count > kMaxRecords ||
      model_count > kMaxRecords)
    throw TraceFormatError("trace: corrupted header (absurd record count)");

  trace.records.reserve(static_cast<std::size_t>(record_count));
  for (std::uint64_t i = 0; i < record_count; ++i)
    trace.records.push_back(read_record(file.get(), version));
  trace.admission.reserve(static_cast<std::size_t>(admission_count));
  for (std::uint64_t i = 0; i < admission_count; ++i)
    trace.admission.push_back(read_admission(file.get()));
  for (std::uint64_t i = 0; i < model_count; ++i)
    trace.meta.models.push_back(read_model_info(file.get()));
  if (trace.meta.models.empty()) {
    // v1 files (and empty v2 headers) are single-model by construction:
    // synthesize the table entry every record implicitly references.
    TraceModelInfo info;
    info.model_key = 0;
    info.model_version = 1;
    info.workload_id = trace.meta.workload_id;
    info.fingerprint = trace.meta.network_fingerprint;
    trace.meta.models.push_back(std::move(info));
  }

  if (std::fgetc(file.get()) != EOF)
    throw TraceFormatError("trace: trailing bytes after the admission trailer in '" +
                           path + "'");
  return trace;
}

// ---- TraceRecorder ----------------------------------------------------------

std::string TraceRecorder::segment_path(int index) const {
  if (max_bytes_ == 0) return path_;
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".%03d", index);
  return path_ + suffix;
}

void TraceRecorder::open_segment_locked() {
  segment_path_ = segment_path(segment_index_);
  file_ = std::fopen(segment_path_.c_str(), "wb");
  if (file_ == nullptr)
    throw std::runtime_error("trace: cannot open '" + segment_path_ +
                             "' for recording: " + std::strerror(errno));
  // Counts are zero until finalize/rotation patches them; a reader of an
  // unfinalized file sees a valid-but-empty trace instead of garbage —
  // which requires the header to actually be on disk, not in the stdio
  // buffer.
  write_header(file_, meta_, 0, 0, 0);
  if (std::fflush(file_) != 0)
    throw std::runtime_error("trace: flush of '" + segment_path_ +
                             "' failed: " + std::strerror(errno));
  segment_written_ = 0;
}

TraceRecorder::TraceRecorder(std::string path, TraceMeta meta, std::uint64_t max_bytes)
    : path_(std::move(path)),
      meta_(meta),
      max_bytes_(max_bytes),
      start_(std::chrono::steady_clock::now()) {
  models_ = meta_.models;
  open_segment_locked();  // no lock needed: no concurrent access yet
}

TraceRecorder::~TraceRecorder() {
  try {
    finalize();
  } catch (...) {
    // Destructor must not throw; a failed final write leaves a truncated
    // file that read_trace rejects loudly.
  }
}

std::uint64_t TraceRecorder::arrival_now_us() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - start_)
                                        .count());
}

std::uint64_t TraceRecorder::begin(TraceRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  util::ensure(!finalized_, "trace: begin() after finalize()");
  record.seq = next_seq_++;
  record.arrival_us = arrival_now_us();
  slots_.push_back(Slot{std::move(record), false});
  return slots_.back().record.seq;
}

void TraceRecorder::complete(std::uint64_t seq, TraceOutcome outcome,
                             const Response* response) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finalized_ || seq < base_seq_) return;
  const std::uint64_t index = seq - base_seq_;
  if (index >= slots_.size()) return;
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  if (slot.completed) return;  // first completion sticks
  slot.record.outcome = outcome;
  if (response != nullptr) {
    slot.record.escalated = response->escalated;
    slot.record.samples_used = response->samples_used;
    slot.record.predicted_class = response->predicted_class;
    slot.record.checksum = response_checksum(*response);
  }
  slot.completed = true;
}

void TraceRecorder::record_admission(const AdmissionRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finalized_) return;
  admission_.push_back(record);
}

void TraceRecorder::ensure_model(const TraceModelInfo& info) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finalized_) return;
  for (const TraceModelInfo& existing : models_)
    if (existing.model_key == info.model_key &&
        existing.model_version == info.model_version)
      return;
  models_.push_back(info);
}

void TraceRecorder::close_segment_locked() {
  // The segment's trailer: the admission decisions no earlier segment took,
  // plus the FULL cumulative model table (cheap, and it makes every record
  // key in the segment resolvable without any other segment).
  const std::size_t admission_here = admission_.size() - admission_flushed_;
  for (std::size_t i = admission_flushed_; i < admission_.size(); ++i)
    write_admission(file_, admission_[i]);
  admission_flushed_ = admission_.size();
  for (const TraceModelInfo& info : models_) write_model_info(file_, info);
  // Patch the header counts now that the segment's totals are known.
  if (std::fseek(file_, kCountsOffset, SEEK_SET) == 0) {
    put_u64(file_, segment_written_);
    put_u64(file_, admission_here);
    put_u32(file_, static_cast<std::uint32_t>(models_.size()));
  }
}

void TraceRecorder::roll_segment_locked() {
  close_segment_locked();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0)
    throw std::runtime_error("trace: closing '" + segment_path_ +
                             "' failed: " + std::strerror(errno));
  ++segment_index_;
  open_segment_locked();
}

void TraceRecorder::flush_locked() {
  bool wrote = false;
  while (!slots_.empty() && slots_.front().completed) {
    write_record(file_, slots_.front().record);
    slots_.pop_front();
    ++base_seq_;
    ++written_;
    ++segment_written_;
    wrote = true;
    // Size-based rotation: once the current segment reaches the threshold,
    // close it out as a complete trace and continue in the next file. The
    // check runs after each record, so every segment holds at least one.
    if (max_bytes_ > 0) {
      const long size = std::ftell(file_);
      if (size >= 0 && static_cast<std::uint64_t>(size) >= max_bytes_) {
        roll_segment_locked();
        wrote = false;  // the fresh segment's header is already flushed
      }
    }
  }
  // Push the records out of the stdio buffer so a crash (or a concurrent
  // reader) loses at most the still-pending suffix.
  if (wrote && std::fflush(file_) != 0)
    throw std::runtime_error("trace: flush of '" + segment_path_ +
                             "' failed: " + std::strerror(errno));
}

void TraceRecorder::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finalized_) return;
  flush_locked();
}

void TraceRecorder::finalize() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finalized_) return;
  // Defensive: a request whose promise vanished without completion (should
  // be unreachable — the server drains before finalize) is journaled as
  // failed rather than stalling the flush forever.
  for (Slot& slot : slots_) {
    if (!slot.completed) {
      slot.record.outcome = TraceOutcome::failed;
      slot.completed = true;
    }
  }
  flush_locked();
  close_segment_locked();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  finalized_ = true;
  if (rc != 0)
    throw std::runtime_error("trace: closing '" + segment_path_ +
                             "' failed: " + std::strerror(errno));
}

std::uint64_t TraceRecorder::begun() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

int TraceRecorder::segments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segment_index_ + 1;
}

}  // namespace bnn::serve
