#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "metrics/metrics.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace bnn::serve {

namespace {

// `samples` must be non-empty and sorted ascending.
double percentile_sorted(const std::vector<double>& samples, double pct) {
  const double rank = (pct / 100.0) * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

}  // namespace

double latency_percentile(std::vector<double> samples, double pct) {
  util::require(!samples.empty(), "serve: percentile of an empty sample set");
  util::require(pct >= 0.0 && pct <= 100.0, "serve: percentile must be in [0, 100]");
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, pct);
}

Server::Server(core::Accelerator accelerator, ServerConfig config)
    : accelerator_(std::move(accelerator)), config_(config) {
  util::require(config_.max_batch >= 1, "serve: max_batch must be >= 1");
  accelerator_.set_thread_pool(config_.pool);
  accelerator_.set_num_threads(config_.num_threads);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  // Claim the dispatcher under the lock so concurrent shutdown() calls
  // (e.g. explicit shutdown racing the destructor) never double-join.
  std::thread claimed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    claimed.swap(dispatcher_);
  }
  queue_ready_.notify_all();
  if (claimed.joinable()) claimed.join();
}

std::future<Response> Server::submit(Request request) {
  const RequestOptions& options = request.options;
  util::require(options.num_samples >= 1, "serve: num_samples must be >= 1");
  util::require(options.screening_samples >= 1, "serve: screening_samples must be >= 1");
  util::require(options.bayes_layers >= -1 &&
                    options.bayes_layers <= accelerator_.network().num_sites,
                "serve: bayes_layers out of range (-1 = all sites)");
  util::require(request.image.dim() == 3 ||
                    (request.image.dim() == 4 && request.image.size(0) == 1),
                "serve: request image must be (C,H,W) or (1,C,H,W)");
  const nn::HwLayer& first = accelerator_.network().layers.front().geom;
  if (first.op == nn::HwLayer::Op::conv) {
    // A conv input has real geometry: an element-count check alone would
    // silently accept transposed/HWC layouts and serve garbage.
    util::require(request.image.size(-3) == first.in_c &&
                      request.image.size(-2) == first.in_h &&
                      request.image.size(-1) == first.in_w,
                  "serve: image (C,H,W) does not match the network input geometry");
  } else {
    // Linear-first networks flatten the input; only the count is meaningful.
    util::require(request.image.numel() == first.in_elems(),
                  "serve: image element count does not match the network input");
  }

  Pending pending;
  pending.submitted = std::chrono::steady_clock::now();
  pending.image = request.image.dim() == 3
                      ? request.image.reshaped({1, request.image.size(0),
                                                request.image.size(1),
                                                request.image.size(2)})
                      : std::move(request.image);
  pending.options = options;
  std::future<Response> future = pending.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("serve: server is shut down");
    // Submission-order ticket; a caller-pinned stream id skips the default
    // but still consumes a ticket so later defaults stay order-stable.
    pending.stream_id = request.stream_id.value_or(next_ticket_);
    ++next_ticket_;
    queue_.push_back(std::move(pending));
  }
  queue_ready_.notify_one();
  return future;
}

Response Server::infer(Request request) { return submit(std::move(request)).get(); }

ServerStats Server::stats() const {
  ServerStats stats;
  std::vector<double> window;
  {
    // Only the copies happen under the lock; the sort runs after release
    // so a polling monitor cannot stall submit() or the dispatcher.
    std::lock_guard<std::mutex> lock(mutex_);
    stats = stats_;
    window = latency_window_;
  }
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    stats.latency_p50_ms = percentile_sorted(window, 50.0);
    stats.latency_p95_ms = percentile_sorted(window, 95.0);
    stats.latency_p99_ms = percentile_sorted(window, 99.0);
  }
  return stats;
}

void Server::dispatch_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      // Linger briefly for a fuller batch — the flattened pair loop works
      // best when a batch carries many (image, sample) lanes.
      if (static_cast<int>(queue_.size()) < config_.max_batch && !stopping_) {
        queue_ready_.wait_for(lock, config_.batch_linger, [this] {
          return stopping_ || static_cast<int>(queue_.size()) >= config_.max_batch;
        });
      }
      // Per-shape batch group: coalesce the oldest request with every
      // queued request of the same image shape (up to max_batch); other
      // shapes stay queued and form their own batch on the next loop
      // iteration. The accelerator pass therefore always sees one
      // homogeneous (N, C, H, W) tensor, and a mixed-shape wave can never
      // fault the dispatcher.
      const std::vector<int> shape = queue_.front().image.shape();
      batch.reserve(static_cast<std::size_t>(
          std::min<int>(config_.max_batch, static_cast<int>(queue_.size()))));
      for (auto it = queue_.begin();
           it != queue_.end() && static_cast<int>(batch.size()) < config_.max_batch;) {
        if (it->image.shape() == shape) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    serve_batch(std::move(batch));
  }
}

void Server::serve_batch(std::vector<Pending> batch) {
  // Defensive backstop (structurally unreachable after per-shape batch
  // grouping in dispatch_loop): a request whose shape differs from the
  // batch head fails alone with set_exception; its neighbours and the
  // dispatcher itself are untouched. The historical behaviour — a
  // util::require on this thread — failed the entire batch for one bad
  // request.
  const std::vector<int> shape = batch.front().image.shape();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].image.shape() == shape) {
      if (keep != i) batch[keep] = std::move(batch[i]);
      ++keep;
    } else {
      batch[i].promise.set_exception(std::make_exception_ptr(
          std::invalid_argument("serve: image shape differs from its batch group")));
    }
  }
  batch.resize(keep);

  const int count = static_cast<int>(batch.size());
  const int num_sites = accelerator_.network().num_sites;
  const auto resolve_layers = [num_sites](const RequestOptions& options) {
    return options.bayes_layers < 0 ? num_sites : options.bayes_layers;
  };

  try {
    // Pass 1: full quality for direct requests, the cheap screening S for
    // routed ones — one coalesced accelerator batch either way.
    nn::Tensor images({count, batch.front().image.size(1), batch.front().image.size(2),
                       batch.front().image.size(3)});
    std::vector<core::Accelerator::ImageRequest> pass(static_cast<std::size_t>(count));
    for (int n = 0; n < count; ++n) {
      const Pending& pending = batch[static_cast<std::size_t>(n)];
      std::copy(pending.image.data(), pending.image.data() + pending.image.numel(),
                images.data() + static_cast<std::int64_t>(n) * pending.image.numel());
      pass[static_cast<std::size_t>(n)] = core::Accelerator::ImageRequest{
          resolve_layers(pending.options),
          pending.options.use_uncertainty_router ? pending.options.screening_samples
                                                 : pending.options.num_samples,
          pending.stream_id};
    }
    core::Accelerator::BatchPrediction first =
        accelerator_.predict_batch(images, pass);

    // Route: responses for settled requests, an escalation list for inputs
    // whose screening entropy crossed the threshold (Opt-Uncertainty).
    std::vector<Response> responses(static_cast<std::size_t>(count));
    std::vector<int> escalate;
    std::uint64_t screened = 0;
    for (int n = 0; n < count; ++n) {
      const Pending& pending = batch[static_cast<std::size_t>(n)];
      Response& response = responses[static_cast<std::size_t>(n)];
      response.probs = first.probs.batch_row(n);
      response.entropy_nats = metrics::average_predictive_entropy(response.probs);
      response.bayes_layers = pass[static_cast<std::size_t>(n)].bayes_layers;
      response.samples_used = pass[static_cast<std::size_t>(n)].num_samples;
      response.stream_id = pending.stream_id;
      response.stats = first.stats[static_cast<std::size_t>(n)];
      if (pending.options.use_uncertainty_router) {
        ++screened;
        if (response.entropy_nats > pending.options.entropy_threshold_nats) {
          escalate.push_back(n);
          continue;
        }
      }
      response.predicted_class = metrics::argmax_rows(response.probs).front();
    }

    // Pass 2: full S for the escalated subset, same stream ids — the
    // response is bit-identical to a direct full-S request, the screening
    // samples are simply recomputed (they are the same deterministic lanes).
    std::uint64_t extra_batches = 0;
    if (!escalate.empty()) {
      extra_batches = 1;
      const int promoted = static_cast<int>(escalate.size());
      nn::Tensor subset(
          {promoted, images.size(1), images.size(2), images.size(3)});
      std::vector<core::Accelerator::ImageRequest> full(
          static_cast<std::size_t>(promoted));
      const std::int64_t elems = images.numel() / count;
      for (int i = 0; i < promoted; ++i) {
        const Pending& pending = batch[static_cast<std::size_t>(escalate[i])];
        std::copy(pending.image.data(), pending.image.data() + elems,
                  subset.data() + static_cast<std::int64_t>(i) * elems);
        full[static_cast<std::size_t>(i)] = core::Accelerator::ImageRequest{
            resolve_layers(pending.options), pending.options.num_samples,
            pending.stream_id};
      }
      core::Accelerator::BatchPrediction second =
          accelerator_.predict_batch(subset, full);
      for (int i = 0; i < promoted; ++i) {
        Response& response = responses[static_cast<std::size_t>(escalate[i])];
        response.probs = second.probs.batch_row(i);
        response.entropy_nats = metrics::average_predictive_entropy(response.probs);
        response.predicted_class = metrics::argmax_rows(response.probs).front();
        response.escalated = true;
        response.bayes_layers = full[static_cast<std::size_t>(i)].bayes_layers;
        response.samples_used = full[static_cast<std::size_t>(i)].num_samples;
        response.stats = second.stats[static_cast<std::size_t>(i)];
      }
    }

    // Counters land before any promise resolves, so a client that just got
    // its response reads stats() consistent with it. Latencies cover
    // submit() to response-ready and enter a fixed ring so the percentile
    // window tracks recent traffic at bounded memory.
    const auto completed = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.requests += static_cast<std::uint64_t>(count);
      stats_.batches += 1 + extra_batches;
      stats_.screened += screened;
      stats_.escalations += static_cast<std::uint64_t>(escalate.size());
      for (const Pending& pending : batch) {
        const double ms =
            std::chrono::duration<double, std::milli>(completed - pending.submitted).count();
        if (latency_window_.size() < kLatencyWindow) {
          latency_window_.push_back(ms);
        } else {
          latency_window_[latency_next_] = ms;
          latency_next_ = (latency_next_ + 1) % kLatencyWindow;
        }
      }
    }
    for (int n = 0; n < count; ++n)
      batch[static_cast<std::size_t>(n)].promise.set_value(
          std::move(responses[static_cast<std::size_t>(n)]));
  } catch (...) {
    for (Pending& pending : batch) {
      try {
        pending.promise.set_exception(std::current_exception());
      } catch (const std::future_error&) {
        // promise already satisfied before the failure — nothing to do
      }
    }
  }
}

}  // namespace bnn::serve
