#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "metrics/metrics.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace bnn::serve {

namespace {

// `samples` must be non-empty and sorted ascending.
double percentile_sorted(const std::vector<double>& samples, double pct) {
  const double rank = (pct / 100.0) * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

}  // namespace

double latency_percentile(std::vector<double> samples, double pct) {
  util::require(!samples.empty(), "serve: percentile of an empty sample set");
  util::require(pct >= 0.0 && pct <= 100.0, "serve: percentile must be in [0, 100]");
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, pct);
}

Server::Server(core::Accelerator accelerator, ServerConfig config) : config_(config) {
  util::require(config_.max_batch >= 1, "serve: max_batch must be >= 1");
  util::require(config_.num_replicas >= 1, "serve: num_replicas must be >= 1");
  util::require(config_.max_queue_depth >= 0,
                "serve: max_queue_depth must be >= 0 (0 = unbounded)");

  // Partition the worker-lane budget: each replica's pair loop gets an
  // equal slice of the pool (at least one lane), so R replicas divide the
  // hardware between them instead of stacking R full-width jobs. With a
  // caller-supplied pool the default budget is that pool's actual size,
  // not the hardware concurrency.
  const int budget = config_.num_threads == 0 && config_.pool != nullptr
                         ? config_.pool->size()
                         : runtime::resolve_thread_count(config_.num_threads);
  const int per_replica = std::max(1, budget / config_.num_replicas);
  accelerator.set_thread_pool(config_.pool);
  accelerator.set_num_threads(per_replica);

  replicas_.reserve(static_cast<std::size_t>(config_.num_replicas));
  replicas_.push_back(std::make_unique<Replica>(std::move(accelerator)));
  for (int r = 1; r < config_.num_replicas; ++r) {
    // Copying shares the quantized network read-only (shared_ptr inside
    // core::Accelerator) — replicas cost a config struct, not the weights.
    replicas_.push_back(std::make_unique<Replica>(
        core::Accelerator(replicas_.front()->accelerator)));
  }
  try {
    for (auto& replica : replicas_) {
      Replica* r = replica.get();
      r->thread = std::thread([this, r] { replica_loop(*r); });
    }
  } catch (...) {
    // A later std::thread ctor can throw (e.g. std::system_error at the
    // process thread limit); join the replicas already running before the
    // unwinding destroys the state they reference — a joinable thread
    // member reaching ~thread() would std::terminate.
    shutdown();
    throw;
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  // Claim the worker threads under the lock so concurrent shutdown() calls
  // (e.g. explicit shutdown racing the destructor) never double-join.
  std::vector<std::thread> claimed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (auto& replica : replicas_)
      if (replica->thread.joinable()) claimed.push_back(std::move(replica->thread));
  }
  queue_ready_.notify_all();
  queue_space_.notify_all();  // release submitters blocked on a full queue
  for (std::thread& thread : claimed) thread.join();
}

std::future<Response> Server::submit(Request request) {
  const RequestOptions& options = request.options;
  util::require(options.num_samples >= 1, "serve: num_samples must be >= 1");
  util::require(options.screening_samples >= 1, "serve: screening_samples must be >= 1");
  util::require(options.bayes_layers >= -1 &&
                    options.bayes_layers <= accelerator().network().num_sites,
                "serve: bayes_layers out of range (-1 = all sites)");
  util::require(request.image.dim() == 3 ||
                    (request.image.dim() == 4 && request.image.size(0) == 1),
                "serve: request image must be (C,H,W) or (1,C,H,W)");
  const nn::HwLayer& first = accelerator().network().layers.front().geom;
  if (first.op == nn::HwLayer::Op::conv) {
    // A conv input has real geometry: an element-count check alone would
    // silently accept transposed/HWC layouts and serve garbage.
    util::require(request.image.size(-3) == first.in_c &&
                      request.image.size(-2) == first.in_h &&
                      request.image.size(-1) == first.in_w,
                  "serve: image (C,H,W) does not match the network input geometry");
  } else {
    // Linear-first networks flatten the input; only the count is meaningful.
    util::require(request.image.numel() == first.in_elems(),
                  "serve: image element count does not match the network input");
  }

  Pending pending;
  pending.submitted = std::chrono::steady_clock::now();
  pending.image = request.image.dim() == 3
                      ? request.image.reshaped({1, request.image.size(0),
                                                request.image.size(1),
                                                request.image.size(2)})
                      : std::move(request.image);
  pending.options = options;
  std::future<Response> future = pending.promise.get_future();

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("serve: server is shut down");
    if (config_.max_queue_depth > 0 &&
        queue_.size() >= static_cast<std::size_t>(config_.max_queue_depth)) {
      if (config_.overload_policy == OverloadPolicy::fail_fast) {
        // The request never enters the queue and consumes no ticket, so a
        // rejection cannot shift later requests' default stream ids.
        ++stats_.submitted;
        ++stats_.rejected;
        pending.promise.set_exception(std::make_exception_ptr(QueueFullError(
            "serve: queue full (max_queue_depth=" +
            std::to_string(config_.max_queue_depth) + "), request rejected")));
        return future;
      }
      // OverloadPolicy::block: wait for a replica to pull a batch group.
      queue_space_.wait(lock, [this] {
        return stopping_ ||
               queue_.size() < static_cast<std::size_t>(config_.max_queue_depth);
      });
      if (stopping_) throw std::runtime_error("serve: server shut down while blocked");
    }
    ++stats_.submitted;
    // Submission-order ticket; a caller-pinned stream id skips the default
    // but still consumes a ticket so later defaults stay order-stable.
    pending.stream_id = request.stream_id.value_or(next_ticket_);
    ++next_ticket_;
    queue_.push_back(std::move(pending));
    stats_.peak_queue_depth =
        std::max<std::uint64_t>(stats_.peak_queue_depth, queue_.size());
  }
  // notify_all, not notify_one: with R replicas on one condition variable,
  // a single notify can be absorbed by a replica sitting in its
  // batch-linger wait (predicate still false) while a genuinely idle
  // replica sleeps on. R is small, so waking them all is cheap.
  queue_ready_.notify_all();
  return future;
}

Response Server::infer(Request request) { return submit(std::move(request)).get(); }

ServerStats Server::stats() const {
  ServerStats stats;
  std::vector<double> window;
  {
    // Only the copies happen under the lock; the sort runs after release
    // so a polling monitor cannot stall submit() or the replicas.
    std::lock_guard<std::mutex> lock(mutex_);
    stats = stats_;
    window = latency_window_;
  }
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    stats.latency_p50_ms = percentile_sorted(window, 50.0);
    stats.latency_p95_ms = percentile_sorted(window, 95.0);
    stats.latency_p99_ms = percentile_sorted(window, 99.0);
  }
  return stats;
}

void Server::replica_loop(Replica& replica) {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      // Linger briefly for a fuller batch — the flattened pair loop works
      // best when a batch carries many (image, sample) lanes. A bounded
      // queue can never hold more than max_queue_depth requests, so cap
      // the linger target there or the wait would always run out its
      // timeout when max_queue_depth < max_batch.
      const int linger_target =
          config_.max_queue_depth > 0
              ? std::min(config_.max_batch, config_.max_queue_depth)
              : config_.max_batch;
      if (static_cast<int>(queue_.size()) < linger_target && !stopping_) {
        queue_ready_.wait_for(lock, config_.batch_linger, [this, linger_target] {
          return stopping_ || static_cast<int>(queue_.size()) >= linger_target;
        });
      }
      // The linger releases the lock, so a concurrently idle replica may
      // have drained the queue in the meantime.
      if (queue_.empty()) continue;
      // Per-shape batch group: coalesce the oldest request with every
      // queued request of the same image shape (up to max_batch); other
      // shapes stay queued and form their own group for the next idle
      // replica. The accelerator pass therefore always sees one
      // homogeneous (N, C, H, W) tensor, and a mixed-shape wave can never
      // fault a replica worker.
      const std::vector<int> shape = queue_.front().image.shape();
      batch.reserve(static_cast<std::size_t>(
          std::min<int>(config_.max_batch, static_cast<int>(queue_.size()))));
      for (auto it = queue_.begin();
           it != queue_.end() && static_cast<int>(batch.size()) < config_.max_batch;) {
        if (it->image.shape() == shape) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    queue_space_.notify_all();  // backpressured submitters may proceed
    serve_batch(replica.accelerator, std::move(batch));
  }
}

void Server::serve_batch(core::Accelerator& accelerator, std::vector<Pending> batch) {
  // Defensive backstop (structurally unreachable after per-shape batch
  // grouping in replica_loop): a request whose shape differs from the
  // batch head fails alone with set_exception; its neighbours and the
  // replica worker itself are untouched. The historical behaviour — a
  // util::require on this thread — failed the entire batch for one bad
  // request.
  const std::vector<int> shape = batch.front().image.shape();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].image.shape() == shape) {
      if (keep != i) batch[keep] = std::move(batch[i]);
      ++keep;
    } else {
      batch[i].promise.set_exception(std::make_exception_ptr(
          std::invalid_argument("serve: image shape differs from its batch group")));
    }
  }
  batch.resize(keep);

  const int count = static_cast<int>(batch.size());
  const int num_sites = accelerator.network().num_sites;
  const auto resolve_layers = [num_sites](const RequestOptions& options) {
    return options.bayes_layers < 0 ? num_sites : options.bayes_layers;
  };

  try {
    // Pass 1: full quality for direct requests, the cheap screening S for
    // routed ones — one coalesced accelerator batch either way.
    nn::Tensor images({count, batch.front().image.size(1), batch.front().image.size(2),
                       batch.front().image.size(3)});
    std::vector<core::Accelerator::ImageRequest> pass(static_cast<std::size_t>(count));
    for (int n = 0; n < count; ++n) {
      const Pending& pending = batch[static_cast<std::size_t>(n)];
      std::copy(pending.image.data(), pending.image.data() + pending.image.numel(),
                images.data() + static_cast<std::int64_t>(n) * pending.image.numel());
      pass[static_cast<std::size_t>(n)] = core::Accelerator::ImageRequest{
          resolve_layers(pending.options),
          pending.options.use_uncertainty_router ? pending.options.screening_samples
                                                 : pending.options.num_samples,
          pending.stream_id};
    }
    core::Accelerator::BatchPrediction first = accelerator.predict_batch(images, pass);

    // Route: responses for settled requests, an escalation list for inputs
    // whose screening entropy crossed the threshold (Opt-Uncertainty).
    std::vector<Response> responses(static_cast<std::size_t>(count));
    std::vector<int> escalate;
    std::uint64_t screened = 0;
    for (int n = 0; n < count; ++n) {
      const Pending& pending = batch[static_cast<std::size_t>(n)];
      Response& response = responses[static_cast<std::size_t>(n)];
      response.probs = first.probs.batch_row(n);
      response.entropy_nats = metrics::average_predictive_entropy(response.probs);
      response.bayes_layers = pass[static_cast<std::size_t>(n)].bayes_layers;
      response.samples_used = pass[static_cast<std::size_t>(n)].num_samples;
      response.stream_id = pending.stream_id;
      response.stats = first.stats[static_cast<std::size_t>(n)];
      if (pending.options.use_uncertainty_router) {
        ++screened;
        if (response.entropy_nats > pending.options.entropy_threshold_nats) {
          escalate.push_back(n);
          continue;
        }
      }
      response.predicted_class = metrics::argmax_rows(response.probs).front();
    }

    // Pass 2: full S for the escalated subset, same stream ids — the
    // response is bit-identical to a direct full-S request, the screening
    // samples are simply recomputed (they are the same deterministic lanes).
    std::uint64_t extra_batches = 0;
    if (!escalate.empty()) {
      extra_batches = 1;
      const int promoted = static_cast<int>(escalate.size());
      nn::Tensor subset(
          {promoted, images.size(1), images.size(2), images.size(3)});
      std::vector<core::Accelerator::ImageRequest> full(
          static_cast<std::size_t>(promoted));
      const std::int64_t elems = images.numel() / count;
      for (int i = 0; i < promoted; ++i) {
        const Pending& pending = batch[static_cast<std::size_t>(escalate[i])];
        std::copy(pending.image.data(), pending.image.data() + elems,
                  subset.data() + static_cast<std::int64_t>(i) * elems);
        full[static_cast<std::size_t>(i)] = core::Accelerator::ImageRequest{
            resolve_layers(pending.options), pending.options.num_samples,
            pending.stream_id};
      }
      core::Accelerator::BatchPrediction second = accelerator.predict_batch(subset, full);
      for (int i = 0; i < promoted; ++i) {
        Response& response = responses[static_cast<std::size_t>(escalate[i])];
        response.probs = second.probs.batch_row(i);
        response.entropy_nats = metrics::average_predictive_entropy(response.probs);
        response.predicted_class = metrics::argmax_rows(response.probs).front();
        response.escalated = true;
        response.bayes_layers = full[static_cast<std::size_t>(i)].bayes_layers;
        response.samples_used = full[static_cast<std::size_t>(i)].num_samples;
        response.stats = second.stats[static_cast<std::size_t>(i)];
      }
    }

    // Counters land before any promise resolves, so a client that just got
    // its response reads stats() consistent with it. Latencies cover
    // submit() to response-ready and enter a fixed ring so the percentile
    // window tracks recent traffic at bounded memory.
    const auto completed = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.requests += static_cast<std::uint64_t>(count);
      stats_.batches += 1 + extra_batches;
      stats_.screened += screened;
      stats_.escalations += static_cast<std::uint64_t>(escalate.size());
      for (const Pending& pending : batch) {
        const double ms =
            std::chrono::duration<double, std::milli>(completed - pending.submitted).count();
        if (latency_window_.size() < kLatencyWindow) {
          latency_window_.push_back(ms);
        } else {
          latency_window_[latency_next_] = ms;
          latency_next_ = (latency_next_ + 1) % kLatencyWindow;
        }
      }
    }
    for (int n = 0; n < count; ++n)
      batch[static_cast<std::size_t>(n)].promise.set_value(
          std::move(responses[static_cast<std::size_t>(n)]));
  } catch (...) {
    for (Pending& pending : batch) {
      try {
        pending.promise.set_exception(std::current_exception());
      } catch (const std::future_error&) {
        // promise already satisfied before the failure — nothing to do
      }
    }
  }
}

}  // namespace bnn::serve
