#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "metrics/metrics.h"
#include "runtime/thread_pool.h"
#include "serve/trace.h"
#include "util/check.h"

namespace bnn::serve {

namespace {

// `samples` must be non-empty and sorted ascending.
double percentile_sorted(const std::vector<double>& samples, double pct) {
  const double rank = (pct / 100.0) * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

}  // namespace

double latency_percentile(std::vector<double> samples, double pct) {
  util::require(!samples.empty(), "serve: percentile of an empty sample set");
  // Note: NaN pct fails both comparisons and is rejected here too.
  util::require(pct >= 0.0 && pct <= 100.0, "serve: percentile must be in [0, 100]");
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, pct);
}

AdmissionAction adaptive_admission(const AdmissionInputs& inputs) {
  if (inputs.queue_full) return AdmissionAction::reject;
  if (!(inputs.p99_ms > inputs.latency_target_ms)) return AdmissionAction::admit;
  if (inputs.downgrade_eligible) return AdmissionAction::downgrade;
  if (inputs.backlog_ms + inputs.request_ms <= inputs.latency_target_ms)
    return AdmissionAction::admit;
  return AdmissionAction::reject;
}

Server::Server(core::Accelerator accelerator, ServerConfig config)
    : config_(std::move(config)),
      registry_(std::make_shared<ModelRegistry>()),
      accel_config_(accelerator.config()) {
  // Single-model compatibility shim: the accelerator's network becomes the
  // internal registry's only tenant. The network handle is shared const
  // (already annotated by the Accelerator constructor) and is published
  // as-is — no in-place repacking of weights another holder may be using.
  ModelConfig model_config;
  model_config.workload_id = config_.trace_workload_id;
  registry_->publish(config_.default_model, accelerator.shared_network(), model_config);
  anchor_ = std::make_unique<core::Accelerator>(std::move(accelerator));
  init();
}

Server::Server(std::shared_ptr<ModelRegistry> registry, core::AcceleratorConfig accel_config,
               ServerConfig config)
    : config_(std::move(config)),
      registry_(std::move(registry)),
      accel_config_(accel_config) {
  util::require(registry_ != nullptr, "serve: null model registry");
  util::require(registry_->has(config_.default_model),
                "serve: default_model is not published in the registry");
  const ModelRegistry::Bound bound = registry_->resolve(config_.default_model);
  anchor_ = bound.plan != nullptr
                ? std::make_unique<core::Accelerator>(bound.version->network, bound.plan,
                                                      accel_config_)
                : std::make_unique<core::Accelerator>(bound.version->network, bound.source,
                                                      accel_config_);
  init();
}

void Server::init() {
  util::require(config_.max_batch >= 1, "serve: max_batch must be >= 1");
  util::require(config_.num_replicas >= 1, "serve: num_replicas must be >= 1");
  util::require(config_.max_queue_depth >= 0,
                "serve: max_queue_depth must be >= 0 (0 = unbounded)");
  util::require(config_.admission_log_capacity >= 0,
                "serve: admission_log_capacity must be >= 0 (0 = disabled)");
  const bool adaptive = config_.overload_policy == OverloadPolicy::adaptive;
  util::require(!adaptive || config_.latency_target_ms > 0.0,
                "serve: OverloadPolicy::adaptive requires latency_target_ms > 0");

  const std::shared_ptr<const ModelVersion> def = registry_->current(config_.default_model);

  // The dispatch/shedding oracle: the paper's performance model over the
  // shared NNE/DDR configuration. Tenants bind their network descriptions
  // lazily at submit; the default model binds here so the calibration
  // anchor below has an entry to price.
  if (config_.dispatch_mode == DispatchMode::cost_aware || adaptive) {
    cost_model_ = std::make_unique<CostModel>(
        core::PerfConfig{accel_config_.nne, accel_config_.ddr},
        accel_config_.use_intermediate_caching);
    // The admission bound must price the escalation pass the server will
    // actually run: reuse reruns only the new samples.
    cost_model_->set_escalation_reuse(config_.reuse_screening_samples);
    cost_model_->bind_model(def->key, def->network->describe(), def->weight_bytes,
                            def.get(), def->segment_bytes);
  }

  // Partition the worker-lane budget: each replica's pair loop gets an
  // equal slice of the pool (at least one lane), so R replicas divide the
  // hardware between them instead of stacking R full-width jobs. With a
  // caller-supplied pool the default budget is that pool's actual size,
  // not the hardware concurrency. Every (replica, model) bind is created
  // from accel_config_, so the slice applies to all tenants alike.
  const int budget = config_.num_threads == 0 && config_.pool != nullptr
                         ? config_.pool->size()
                         : runtime::resolve_thread_count(config_.num_threads);
  const int per_replica = std::max(1, budget / config_.num_replicas);
  accel_config_.pool = config_.pool;
  accel_config_.num_threads = per_replica;
  anchor_->set_thread_pool(config_.pool);
  anchor_->set_num_threads(per_replica);

  // Calibrate the cost model once against a measured anchor pass BEFORE
  // any replica starts: the adaptive policy compares modelled cost against
  // a wall-clock latency target, so modelled milliseconds must be mapped
  // onto this host's wall clock. One warmup + one measured pass over a
  // zero image at {L = num_sites, S = 2} on the default model. The scale
  // is fixed afterwards — shedding decisions stay a pure function of
  // (queue contents, stats window); other tenants inherit the global
  // scale unless a per-model calibration is installed.
  if (adaptive && config_.calibrate_cost_model) {
    const quant::QuantNetwork& net = anchor_->network();
    const nn::HwLayer& first = net.layers.front().geom;
    nn::Tensor probe(first.op == nn::HwLayer::Op::conv
                         ? std::vector<int>{1, first.in_c, first.in_h, first.in_w}
                         : std::vector<int>{1, static_cast<int>(first.in_elems()), 1, 1});
    const std::vector<core::Accelerator::ImageRequest> anchor{
        {net.num_sites, 2, /*stream_id=*/0}};
    (void)anchor_->predict_batch(probe, anchor);  // warmup (pool spin-up etc.)
    const auto started = std::chrono::steady_clock::now();
    (void)anchor_->predict_batch(probe, anchor);
    const double measured_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - started)
                                   .count();
    const double modelled = cost_model_->modelled_ms(def->key, net.num_sites, 2);
    if (std::isfinite(measured_ms) && measured_ms > 0.0 && modelled > 0.0)
      cost_model_->set_calibration(core::calibrate_perf(measured_ms, modelled));
  }

  if (config_.admission_log_capacity > 0)
    admission_log_.reserve(static_cast<std::size_t>(config_.admission_log_capacity));

  // Request-trace journal (see serve/trace.h): the header pins everything a
  // replayer must match — the default model's fingerprint, the sampler
  // seed, and the escalation-reuse mode — before the first record lands.
  // Further tenants enter the model table as their records arrive.
  if (!config_.trace_path.empty()) {
    TraceMeta meta;
    meta.workload_id =
        config_.trace_workload_id != 0 ? config_.trace_workload_id : def->workload_id;
    meta.sampler_seed = accel_config_.sampler_seed;
    meta.network_fingerprint = def->fingerprint;
    meta.reuse_screening_samples = config_.reuse_screening_samples;
    TraceModelInfo info;
    info.model_key = def->key;
    info.model_version = def->version;
    info.workload_id = def->workload_id;
    info.fingerprint = def->fingerprint;
    info.name = def->name;
    meta.models.push_back(std::move(info));
    recorder_ = std::make_unique<TraceRecorder>(config_.trace_path, meta,
                                                config_.trace_max_bytes);
  }

  replicas_.reserve(static_cast<std::size_t>(config_.num_replicas));
  for (int r = 0; r < config_.num_replicas; ++r)
    replicas_.push_back(std::make_unique<Replica>());
  try {
    for (auto& replica : replicas_) {
      Replica* r = replica.get();
      r->thread = std::thread([this, r] { replica_loop(*r); });
    }
  } catch (...) {
    // A later std::thread ctor can throw (e.g. std::system_error at the
    // process thread limit); join the replicas already running before the
    // unwinding destroys the state they reference — a joinable thread
    // member reaching ~thread() would std::terminate.
    shutdown();
    throw;
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  // Claim the worker threads under the lock so concurrent shutdown() calls
  // (e.g. explicit shutdown racing the destructor) never double-join.
  std::vector<std::thread> claimed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (auto& replica : replicas_)
      if (replica->thread.joinable()) claimed.push_back(std::move(replica->thread));
  }
  queue_ready_.notify_all();
  queue_space_.notify_all();  // release submitters blocked on a full queue
  for (std::thread& thread : claimed) thread.join();
  // The workers have drained the queue: every begun record is completed, so
  // finalizing here writes the full journal and patches the header counts.
  if (recorder_) recorder_->finalize();
}

double Server::window_p99_locked() const {
  if (latency_window_.empty()) return 0.0;
  if (sorted_version_ != window_version_) {
    sorted_window_ = latency_window_;
    std::sort(sorted_window_.begin(), sorted_window_.end());
    sorted_version_ = window_version_;
  }
  return percentile_sorted(sorted_window_, 99.0);
}

double Server::queue_backlog_ms_locked() const {
  // Summed on demand (no incremental running total): exact, drift-free,
  // and O(queue) only on adaptive submissions while overloaded. Queued
  // admission costs are already calibrated wall milliseconds (per tenant),
  // so the backlog is a plain sum.
  double backlog = 0.0;
  for (const Pending& pending : queue_) backlog += pending.admission_ms;
  return backlog;
}

void Server::record_admission_locked(const AdmissionInputs& inputs,
                                     AdmissionAction action) {
  if (config_.admission_log_capacity <= 0) return;
  AdmissionRecord record;
  record.submit_seq = stats_.submitted;  // pre-increment submission sequence
  record.inputs = inputs;
  record.action = action;
  const std::size_t capacity = static_cast<std::size_t>(config_.admission_log_capacity);
  if (admission_log_.size() < capacity) {
    admission_log_.push_back(record);
  } else {
    admission_log_[admission_next_] = record;
    admission_next_ = (admission_next_ + 1) % capacity;
  }
}

std::vector<AdmissionRecord> Server::admission_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AdmissionRecord> log;
  log.reserve(admission_log_.size());
  // Unwrap the ring: oldest first.
  for (std::size_t i = 0; i < admission_log_.size(); ++i)
    log.push_back(admission_log_[(admission_next_ + i) % admission_log_.size()]);
  return log;
}

ModelServeStats& Server::model_stats_locked(const ModelVersion& version) {
  for (ModelServeStats& row : model_stats_) {
    if (row.key == version.key) {
      if (version.version > row.version) row.version = version.version;
      return row;
    }
  }
  ModelServeStats row;
  row.name = version.name;
  row.key = version.key;
  row.version = version.version;
  model_stats_.push_back(std::move(row));
  return model_stats_.back();
}

std::vector<ModelServeStats> Server::model_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_stats_;
}

std::future<Response> Server::submit(Request request) {
  const RequestOptions& options = request.options;
  util::require(options.num_samples >= 1, "serve: num_samples must be >= 1");
  util::require(options.screening_samples >= 1, "serve: screening_samples must be >= 1");
  util::require(options.sample_offset >= 0, "serve: sample_offset must be >= 0");

  // Resolve the tenant FIRST: the returned snapshot fixes which weights
  // serve this request (registry publish is the hot-swap linearization
  // point), and all shape validation below is against the resolved
  // network. Unknown names throw std::invalid_argument from the registry.
  const std::string& model_name =
      request.model.empty() ? config_.default_model : request.model;
  ModelRegistry::Bound bound = registry_->resolve(model_name);
  const ModelConfig model_config = registry_->model_config(model_name);
  const quant::QuantNetwork& net = *bound.version->network;

  util::require(options.bayes_layers >= -1 && options.bayes_layers <= net.num_sites,
                "serve: bayes_layers out of range (-1 = all sites)");
  util::require(request.image.dim() == 3 ||
                    (request.image.dim() == 4 && request.image.size(0) == 1),
                "serve: request image must be (C,H,W) or (1,C,H,W)");
  const nn::HwLayer& first = net.layers.front().geom;
  if (first.op == nn::HwLayer::Op::conv) {
    // A conv input has real geometry: an element-count check alone would
    // silently accept transposed/HWC layouts and serve garbage.
    util::require(request.image.size(-3) == first.in_c &&
                      request.image.size(-2) == first.in_h &&
                      request.image.size(-1) == first.in_w,
                  "serve: image (C,H,W) does not match the network input geometry");
  } else {
    // Linear-first networks flatten the input; only the count is meaningful.
    util::require(request.image.numel() == first.in_elems(),
                  "serve: image element count does not match the network input");
  }

  Pending pending;
  pending.submitted = std::chrono::steady_clock::now();
  pending.image = request.image.dim() == 3
                      ? request.image.reshaped({1, request.image.size(0),
                                                request.image.size(1),
                                                request.image.size(2)})
                      : std::move(request.image);
  pending.options = options;
  pending.bound = std::move(bound);
  const ModelKey key = pending.bound.version->key;
  if (cost_model_) {
    // Modelled costs are computed OUTSIDE the queue lock (the cost model
    // has its own) — pure functions of (tenant, options), so precomputing
    // them here keeps the admission decision itself O(queue). The tenant's
    // description binds lazily, re-binding only when the version snapshot
    // changed (hot-swap); a cold resolve charges the modelled DDR weight
    // reload on top of both the dispatch and the admission cost. Stored
    // values are CALIBRATED wall milliseconds so they compare across
    // tenants with different calibration scales.
    if (cost_model_->bound_tag(key) !=
        static_cast<const void*>(pending.bound.version.get()))
      cost_model_->bind_model(key, net.describe(), pending.bound.version->weight_bytes,
                              pending.bound.version.get(),
                              pending.bound.version->segment_bytes);
    pending.first_pass_ms =
        cost_model_->wall_ms(key, cost_model_->first_pass_ms(key, options));
    pending.admission_ms =
        cost_model_->wall_ms(key, cost_model_->admission_ms(key, options));
    if (pending.bound.cold_start) {
      // Charge only the NON-OVERLAPPED remainder of reloading the segments
      // this resolve actually found missing: double-buffered prefetch hides
      // each layer's burst behind the previous layer's compute, so a
      // partially-resident tenant prices in far below a flat whole-plan
      // reload (streamed_reload_ms <= cold_reload_ms always).
      const double reload = cost_model_->wall_ms(
          key, cost_model_->streamed_reload_ms(key, pending.bound.missing));
      pending.first_pass_ms += reload;
      pending.admission_ms += reload;
    }
  }
  std::future<Response> future = pending.promise.get_future();

  // The journal slot is prepared OUTSIDE the queue lock (the image copy is
  // the expensive part); only the O(1) begin() happens under it, so tracing
  // adds no meaningful hold time to the submission path.
  TraceRecord trace_record;
  if (recorder_) {
    trace_record.options = pending.options;
    trace_record.model_key = key;
    trace_record.model_version = pending.bound.version->version;
    trace_record.image_c = pending.image.size(1);
    trace_record.image_h = pending.image.size(2);
    trace_record.image_w = pending.image.size(3);
    trace_record.image.assign(pending.image.data(),
                              pending.image.data() + pending.image.numel());
    TraceModelInfo info;
    info.model_key = key;
    info.model_version = pending.bound.version->version;
    info.workload_id = pending.bound.version->workload_id;
    info.fingerprint = pending.bound.version->fingerprint;
    info.name = pending.bound.version->name;
    recorder_->ensure_model(info);
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) throw ShutdownError("serve: server is shut down");
    const auto journal_rejection = [&] {
      if (recorder_) {
        // A rejection consumes no stream ticket; journal the id the
        // request WOULD have served under (pinned or the current ticket).
        trace_record.stream_id = request.stream_id.value_or(next_ticket_);
        recorder_->complete(recorder_->begin(std::move(trace_record)),
                            TraceOutcome::rejected, nullptr);
      }
    };
    const auto reject_with = [&](const char* reason) {
      ++stats_.submitted;
      ++stats_.rejected;
      ModelServeStats& row = model_stats_locked(*pending.bound.version);
      ++row.submitted;
      ++row.rejected;
      journal_rejection();
      pending.promise.set_exception(std::make_exception_ptr(QueueFullError(reason)));
    };
    // Per-tenant quota, ahead of every overload policy: a tenant over its
    // share is rejected, never blocked, so one tenant's burst cannot
    // capture submitter threads or the whole queue.
    const std::uint64_t tenant_queued =
        key < queued_by_key_.size() ? queued_by_key_[key] : 0;
    if (model_config.max_queued > 0 &&
        tenant_queued >= static_cast<std::uint64_t>(model_config.max_queued)) {
      ++stats_.submitted;
      ++stats_.rejected;
      ++stats_.quota_rejected;
      ModelServeStats& row = model_stats_locked(*pending.bound.version);
      ++row.submitted;
      ++row.rejected;
      ++row.quota_rejected;
      journal_rejection();
      pending.promise.set_exception(std::make_exception_ptr(
          QuotaExceededError("serve: tenant queue quota exceeded (max_queued)")));
      return future;
    }
    const bool queue_full =
        config_.max_queue_depth > 0 &&
        queue_.size() >= static_cast<std::size_t>(config_.max_queue_depth);
    switch (config_.overload_policy) {
      case OverloadPolicy::fail_fast:
        if (queue_full) {
          // The request never enters the queue and consumes no ticket, so a
          // rejection cannot shift later requests' default stream ids.
          reject_with("serve: queue full, request rejected (fail_fast)");
          return future;
        }
        break;
      case OverloadPolicy::block:
        if (queue_full) {
          // Wait for a replica to pull a batch group. A submitter woken by
          // shutdown() fails deterministically and NEVER enqueues after
          // the dispatcher stopped (checked before any push below).
          queue_space_.wait(lock, [this] {
            return stopping_ ||
                   queue_.size() < static_cast<std::size_t>(config_.max_queue_depth);
          });
          if (stopping_) throw ShutdownError("serve: server shut down while blocked");
        }
        break;
      case OverloadPolicy::adaptive: {
        AdmissionInputs inputs;
        inputs.queue_full = queue_full;
        inputs.p99_ms = window_p99_locked();
        inputs.latency_target_ms = config_.latency_target_ms;
        inputs.downgrade_eligible = options.use_uncertainty_router;
        // Backlog/request costs only matter past the overload gate; skip
        // the queue walk when the window is within target.
        if (!inputs.queue_full && inputs.p99_ms > inputs.latency_target_ms) {
          inputs.backlog_ms = queue_backlog_ms_locked();
          inputs.request_ms = pending.admission_ms;  // already calibrated
        }
        const AdmissionAction action = adaptive_admission(inputs);
        record_admission_locked(inputs, action);
        // The trace trailer keeps EVERY decision (the in-memory log is a
        // bounded ring) so a replay can re-derive the whole sequence.
        if (recorder_)
          recorder_->record_admission(AdmissionRecord{stats_.submitted, inputs, action});
        if (action == AdmissionAction::reject) {
          ++stats_.shed_rejected;
          reject_with(inputs.queue_full
                          ? "serve: queue full, request rejected (adaptive)"
                          : "serve: latency target exceeded, request shed by "
                            "predicted cost (adaptive)");
          return future;
        }
        if (action == AdmissionAction::downgrade) {
          pending.shed_downgrade = true;
          // The queue backlog must reflect what will actually run: a
          // downgraded request never escalates, so its modelled cost drops
          // to the screening pass — otherwise every queued downgrade would
          // inflate backlog_ms by its never-to-run escalation pass and
          // over-shed later arrivals.
          pending.admission_ms =
              cost_model_->wall_ms(key, cost_model_->downgraded_ms(key, options));
        }
        break;
      }
    }
    ++stats_.submitted;
    {
      ModelServeStats& row = model_stats_locked(*pending.bound.version);
      ++row.submitted;
      if (pending.bound.cold_start) {
        ++row.cold_starts;
        ++stats_.cold_starts;
      }
    }
    // Submission-order ticket; a caller-pinned stream id skips the default
    // but still consumes a ticket so later defaults stay order-stable. The
    // ticket itself also feeds the dispatcher's aging term.
    pending.ticket = next_ticket_;
    pending.stream_id = request.stream_id.value_or(next_ticket_);
    ++next_ticket_;
    if (recorder_) {
      trace_record.stream_id = pending.stream_id;
      pending.trace_seq = recorder_->begin(std::move(trace_record));
      pending.traced = true;
    }
    if (queued_by_key_.size() <= key)
      queued_by_key_.resize(static_cast<std::size_t>(key) + 1, 0);
    ++queued_by_key_[key];
    queue_.push_back(std::move(pending));
    stats_.peak_queue_depth =
        std::max<std::uint64_t>(stats_.peak_queue_depth, queue_.size());
  }
  // notify_all, not notify_one: with R replicas on one condition variable,
  // a single notify can be absorbed by a replica sitting in its
  // batch-linger wait (predicate still false) while a genuinely idle
  // replica sleeps on. R is small, so waking them all is cheap.
  queue_ready_.notify_all();
  return future;
}

Response Server::infer(Request request) { return submit(std::move(request)).get(); }

ServerStats Server::stats() const {
  ServerStats stats;
  std::vector<double> window;
  {
    // One mutex hold snapshots the counters AND the latency ring together,
    // so a poller never sees counters from one instant paired with a
    // window from another; the sort runs after release so a polling
    // monitor cannot stall submit() or the replicas.
    std::lock_guard<std::mutex> lock(mutex_);
    stats = stats_;
    window = latency_window_;
  }
  stats.latency_window_count = static_cast<std::uint64_t>(window.size());
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    stats.latency_p50_ms = percentile_sorted(window, 50.0);
    stats.latency_p95_ms = percentile_sorted(window, 95.0);
    stats.latency_p99_ms = percentile_sorted(window, 99.0);
  }
  return stats;
}

void Server::replica_loop(Replica& replica) {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      // Linger briefly for a fuller batch — the flattened pair loop works
      // best when a batch carries many (image, sample) lanes. A bounded
      // queue can never hold more than max_queue_depth requests, so cap
      // the linger target there or the wait would always run out its
      // timeout when max_queue_depth < max_batch.
      const int linger_target =
          config_.max_queue_depth > 0
              ? std::min(config_.max_batch, config_.max_queue_depth)
              : config_.max_batch;
      if (static_cast<int>(queue_.size()) < linger_target && !stopping_) {
        queue_ready_.wait_for(lock, config_.batch_linger, [this, linger_target] {
          return stopping_ || static_cast<int>(queue_.size()) >= linger_target;
        });
      }
      // The linger releases the lock, so a concurrently idle replica may
      // have drained the queue in the meantime.
      if (queue_.empty()) continue;
      // Pick this pull's batch group — a (model version, image shape)
      // pair: an accelerator pass runs one model over one homogeneous
      // shape, and version-pointer identity keeps pre- and post-hot-swap
      // requests of the same tenant in separate groups. FIFO coalesces
      // around the oldest request. Cost-aware ranks every queued group
      // (the first max_batch queued requests of each distinct group) by
      // its summed modelled first-pass cost — calibrated wall ms, cold
      // reloads included, so costs compare across tenants — and takes the
      // costliest: idle replicas run longest-processing-time-first,
      // balancing modelled load across replicas; ties keep the oldest
      // group, and within a group requests always leave in queue order.
      // Selection only decides WHERE and WHEN a request runs — responses
      // are pure functions of (model version, request, stream id), so
      // both modes serve bit-identical responses.
      const ModelVersion* version = queue_.front().bound.version.get();
      std::vector<int> shape = queue_.front().image.shape();
      if (config_.dispatch_mode == DispatchMode::cost_aware && cost_model_) {
        std::vector<const ModelVersion*> group_version;  // first-occurrence order
        std::vector<const std::vector<int>*> group_shape;
        std::vector<double> group_cost;
        std::vector<int> group_count;
        std::vector<std::uint64_t> group_oldest;  // oldest member's ticket
        for (const Pending& pending : queue_) {
          const ModelVersion* v = pending.bound.version.get();
          const std::vector<int>& s = pending.image.shape();
          std::size_t g = 0;
          while (g < group_version.size() &&
                 !(group_version[g] == v && *group_shape[g] == s))
            ++g;
          if (g == group_version.size()) {
            group_version.push_back(v);
            group_shape.push_back(&pending.image.shape());
            group_cost.push_back(0.0);
            group_count.push_back(0);
            // Queue order is admission order, so the group's first queued
            // member carries its oldest ticket.
            group_oldest.push_back(pending.ticket);
          }
          if (group_count[g] < config_.max_batch) {
            group_cost[g] += pending.first_pass_ms;
            ++group_count[g];
          }
        }
        // Anti-starvation aging: a group's score grows with every ticket
        // issued since its oldest member was admitted, so a cheap group
        // passed over by costlier traffic is eventually the maximum —
        // continuously, with no hard bypass cliff. Deterministic in the
        // (queue contents, next_ticket_) state; no wall clock involved.
        const auto score = [&](std::size_t g) {
          return group_cost[g] +
                 config_.aging_weight *
                     static_cast<double>(next_ticket_ - group_oldest[g]);
        };
        std::size_t best = 0;
        for (std::size_t g = 1; g < group_version.size(); ++g)
          if (score(g) > score(best)) best = g;  // ties keep oldest
        version = group_version[best];
        shape = *group_shape[best];
      }
      batch.reserve(static_cast<std::size_t>(
          std::min<int>(config_.max_batch, static_cast<int>(queue_.size()))));
      for (auto it = queue_.begin();
           it != queue_.end() && static_cast<int>(batch.size()) < config_.max_batch;) {
        if (it->bound.version.get() == version && it->image.shape() == shape) {
          const ModelKey key = it->bound.version->key;
          if (key < queued_by_key_.size() && queued_by_key_[key] > 0)
            --queued_by_key_[key];
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    queue_space_.notify_all();  // backpressured submitters may proceed
    serve_batch(replica, std::move(batch));
    // Journal I/O runs on the replica thread between batches — submitters
    // never pay for the disk write.
    if (recorder_) recorder_->flush();
  }
}

void Server::append_latency_locked(double ms) {
  if (latency_window_.size() < kLatencyWindow) {
    latency_window_.push_back(ms);
  } else {
    latency_window_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
  ++window_version_;  // invalidates the lazily-sorted p99 copy
}

core::Accelerator& Server::bind_replica(Replica& replica,
                                        const ModelRegistry::Bound& bound) {
  for (Bind& bind : replica.binds) {
    if (bind.version == bound.version) {
      bind.last_use = ++replica.bind_tick;
      return *bind.accelerator;
    }
  }
  if (replica.binds.size() >= kReplicaBindCache) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < replica.binds.size(); ++i)
      if (replica.binds[i].last_use < replica.binds[victim].last_use) victim = i;
    replica.binds.erase(replica.binds.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  // The bind holds the request's OWN plan handle: even if the registry
  // evicted this tenant right after the batch was pulled, the plan (or
  // segment table) the requests resolved stays alive, and a later
  // re-resolve's rebuilt segments are pure functions of the same immutable
  // weights — bit-identical. A streamed cold resolve has no materialized
  // plan yet; its accelerator consumes segments on demand through the
  // bound source, prefetching layer k+1 while layer k computes.
  Bind bind;
  bind.version = bound.version;
  bind.accelerator =
      bound.plan != nullptr
          ? std::make_unique<core::Accelerator>(bound.version->network, bound.plan,
                                                accel_config_)
          : std::make_unique<core::Accelerator>(bound.version->network, bound.source,
                                                accel_config_);
  bind.last_use = ++replica.bind_tick;
  replica.binds.push_back(std::move(bind));
  return *replica.binds.back().accelerator;
}

void Server::serve_batch(Replica& replica, std::vector<Pending> batch) {
  // Defensive backstop (structurally unreachable after per-(model, shape)
  // batch grouping in replica_loop): a request whose shape or model
  // differs from the batch head fails alone with set_exception; its
  // neighbours and the replica worker itself are untouched.
  const std::vector<int> shape = batch.front().image.shape();
  const ModelVersion* head_version = batch.front().bound.version.get();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].image.shape() == shape && batch[i].bound.version.get() == head_version) {
      if (keep != i) batch[keep] = std::move(batch[i]);
      ++keep;
    } else {
      if (batch[i].traced)
        recorder_->complete(batch[i].trace_seq, TraceOutcome::failed, nullptr);
      batch[i].promise.set_exception(std::make_exception_ptr(
          std::invalid_argument("serve: request differs from its batch group")));
    }
  }
  batch.resize(keep);

  core::Accelerator& accelerator = bind_replica(replica, batch.front().bound);
  const int count = static_cast<int>(batch.size());
  const int num_sites = batch.front().bound.version->network->num_sites;
  const auto resolve_layers = [num_sites](const RequestOptions& options) {
    return options.bayes_layers < 0 ? num_sites : options.bayes_layers;
  };

  try {
    // Pass 1: full quality for direct requests, the cheap screening S for
    // routed ones — one coalesced accelerator batch either way. A
    // shed-downgraded request IS a routed request here; the downgrade only
    // suppresses its escalation below.
    nn::Tensor images({count, batch.front().image.size(1), batch.front().image.size(2),
                       batch.front().image.size(3)});
    std::vector<core::Accelerator::ImageRequest> pass(static_cast<std::size_t>(count));
    for (int n = 0; n < count; ++n) {
      const Pending& pending = batch[static_cast<std::size_t>(n)];
      std::copy(pending.image.data(), pending.image.data() + pending.image.numel(),
                images.data() + static_cast<std::int64_t>(n) * pending.image.numel());
      pass[static_cast<std::size_t>(n)] = core::Accelerator::ImageRequest{
          resolve_layers(pending.options),
          pending.options.use_uncertainty_router ? pending.options.screening_samples
                                                 : pending.options.num_samples,
          pending.stream_id, pending.options.sample_offset};
    }
    core::Accelerator::BatchPrediction first = accelerator.predict_batch(images, pass);

    // Route: responses for settled requests, an escalation list for inputs
    // whose screening entropy crossed the threshold (Opt-Uncertainty). A
    // shed-downgraded request never escalates — its response is the
    // screening pass verbatim, which is exactly what a direct
    // never-escalating routed request with the same stream id would get
    // (bit-identity of the downgrade).
    std::vector<Response> responses(static_cast<std::size_t>(count));
    std::vector<int> escalate;
    std::uint64_t screened = 0;
    std::uint64_t downgraded = 0;
    for (int n = 0; n < count; ++n) {
      const Pending& pending = batch[static_cast<std::size_t>(n)];
      Response& response = responses[static_cast<std::size_t>(n)];
      response.probs = first.probs.batch_row(n);
      response.entropy_nats = metrics::average_predictive_entropy(response.probs);
      response.bayes_layers = pass[static_cast<std::size_t>(n)].bayes_layers;
      response.samples_used = pass[static_cast<std::size_t>(n)].num_samples;
      response.stream_id = pending.stream_id;
      response.model_key = pending.bound.version->key;
      response.model_version = pending.bound.version->version;
      response.cold_start = pending.bound.cold_start;
      response.stats = first.stats[static_cast<std::size_t>(n)];
      if (pending.options.use_uncertainty_router) {
        ++screened;
        if (pending.shed_downgrade) {
          response.shed_downgraded = true;
          ++downgraded;
        } else if (response.entropy_nats > pending.options.entropy_threshold_nats) {
          escalate.push_back(n);
          continue;
        }
      }
      response.predicted_class = metrics::argmax_rows(response.probs).front();
    }

    // Pass 2: the escalated subset, same stream ids. Classic mode reruns
    // the full S from scratch — the response is bit-identical to a direct
    // full-S request (the screening samples are the same deterministic
    // lanes, simply recomputed). With reuse_screening_samples on, a
    // promoted request whose full S exceeds its screening S instead reruns
    // ONLY the new samples (sample_offset = screening S picks up exactly
    // where the screening window stopped) and the two window averages are
    // merged by sample count — deterministic, but a different float
    // reduction order than the direct full-S pass (see ServerConfig).
    std::uint64_t extra_batches = 0;
    if (!escalate.empty()) {
      extra_batches = 1;
      const int promoted = static_cast<int>(escalate.size());
      nn::Tensor subset(
          {promoted, images.size(1), images.size(2), images.size(3)});
      std::vector<core::Accelerator::ImageRequest> full(
          static_cast<std::size_t>(promoted));
      const std::int64_t elems = images.numel() / count;
      for (int i = 0; i < promoted; ++i) {
        const Pending& pending = batch[static_cast<std::size_t>(escalate[i])];
        std::copy(pending.image.data(), pending.image.data() + elems,
                  subset.data() + static_cast<std::int64_t>(i) * elems);
        const int screen = pass[static_cast<std::size_t>(escalate[i])].num_samples;
        const bool reuse =
            config_.reuse_screening_samples && pending.options.num_samples > screen;
        // The request's own window offset composes with the reuse offset:
        // the escalation pass continues where the screening window stopped
        // INSIDE the caller-chosen window.
        full[static_cast<std::size_t>(i)] = core::Accelerator::ImageRequest{
            resolve_layers(pending.options),
            reuse ? pending.options.num_samples - screen : pending.options.num_samples,
            pending.stream_id,
            pending.options.sample_offset + (reuse ? screen : 0)};
      }
      core::Accelerator::BatchPrediction second = accelerator.predict_batch(subset, full);
      for (int i = 0; i < promoted; ++i) {
        Response& response = responses[static_cast<std::size_t>(escalate[i])];
        const core::Accelerator::ImageRequest& request =
            full[static_cast<std::size_t>(i)];
        const Pending& pending = batch[static_cast<std::size_t>(escalate[i])];
        const int screen = pass[static_cast<std::size_t>(escalate[i])].num_samples;
        const bool reused =
            config_.reuse_screening_samples && pending.options.num_samples > screen;
        if (reused) {
          // Merge the screening average (already in response.probs) with
          // the new-sample average, weighted by window size, and charge the
          // request the modelled cost of BOTH passes it consumed.
          const int total = pending.options.num_samples;
          const float screen_weight =
              static_cast<float>(screen) / static_cast<float>(total);
          const float second_weight =
              static_cast<float>(request.num_samples) / static_cast<float>(total);
          const nn::Tensor second_row = second.probs.batch_row(i);
          for (std::int64_t k = 0; k < response.probs.numel(); ++k) {
            response.probs.data()[k] = response.probs.data()[k] * screen_weight +
                                       second_row.data()[k] * second_weight;
          }
          const core::RunStats& extra = second.stats[static_cast<std::size_t>(i)];
          response.stats.total_cycles += extra.total_cycles;
          response.stats.latency_ms += extra.latency_ms;
          response.stats.macs += extra.macs;
          response.stats.ddr_bytes += extra.ddr_bytes;
          response.stats.mask_bits += extra.mask_bits;
        } else {
          response.probs = second.probs.batch_row(i);
          response.stats = second.stats[static_cast<std::size_t>(i)];
        }
        response.entropy_nats = metrics::average_predictive_entropy(response.probs);
        response.predicted_class = metrics::argmax_rows(response.probs).front();
        response.escalated = true;
        response.bayes_layers = request.bayes_layers;
        response.samples_used = pending.options.num_samples;
      }
    }

    // Counters land before any promise resolves, so a client that just got
    // its response reads stats() consistent with it. Latencies cover
    // submit() to response-ready and enter a fixed ring so the percentile
    // window tracks recent traffic at bounded memory.
    const auto completed = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.requests += static_cast<std::uint64_t>(count);
      stats_.batches += 1 + extra_batches;
      stats_.screened += screened;
      stats_.escalations += static_cast<std::uint64_t>(escalate.size());
      stats_.shed_downgraded += downgraded;
      for (const Pending& pending : batch) {
        ++model_stats_locked(*pending.bound.version).served;
        append_latency_locked(std::chrono::duration<double, std::milli>(
                                  completed - pending.submitted)
                                  .count());
      }
    }
    // Journal outcomes BEFORE resolving promises: once a client holds its
    // response, its trace record is already completed (the dispatcher may
    // flush it at any time after).
    if (recorder_) {
      for (int n = 0; n < count; ++n) {
        const Pending& pending = batch[static_cast<std::size_t>(n)];
        if (!pending.traced) continue;
        const Response& response = responses[static_cast<std::size_t>(n)];
        recorder_->complete(pending.trace_seq,
                            response.shed_downgraded ? TraceOutcome::downgraded
                                                     : TraceOutcome::served,
                            &response);
      }
    }
    for (int n = 0; n < count; ++n)
      batch[static_cast<std::size_t>(n)].promise.set_value(
          std::move(responses[static_cast<std::size_t>(n)]));
  } catch (...) {
    for (Pending& pending : batch) {
      // complete() is idempotent, so a record journaled as served above
      // keeps its outcome even if a later promise resolution threw.
      if (pending.traced)
        recorder_->complete(pending.trace_seq, TraceOutcome::failed, nullptr);
      try {
        pending.promise.set_exception(std::current_exception());
      } catch (const std::future_error&) {
        // promise already satisfied before the failure — nothing to do
      }
    }
  }
}

}  // namespace bnn::serve
