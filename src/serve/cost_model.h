// Serving cost oracle: the paper's performance model re-used as the
// dispatcher's estimate of what a request will cost.
//
// The headline result of the source paper (Fan et al., DAC 2021) is a
// cycle model — layer_cycles = max(compute, memory) + fill, composed over
// the IC schedule by core::estimate_mc — accurate enough to drive
// design-space exploration. serve::CostModel wraps exactly that model as a
// per-request latency estimate keyed by the request's {L, S} knobs: the
// dispatcher ranks queued batch groups by modelled cost
// (longest-processing-time-first across replicas), and the adaptive
// overload policy sheds load by predicted cost against a wall-clock
// latency target.
//
// Modelled milliseconds are accelerator-clock milliseconds; a single
// calibration scale (core::PerfCalibration) maps them onto measured wall
// milliseconds of the software simulator that actually serves the request.
// Relative costs — all the LPT dispatcher needs — are calibration-free;
// only the adaptive policy's comparison against `latency_target_ms` needs
// the calibrated scale (serve::Server measures one anchor pass at startup).
//
// Determinism: modelled costs are a pure function of (network description,
// NNE/DDR config, L, S) and the calibration scale is fixed after startup,
// so every decision derived from CostModel is reproducible given the same
// queue contents and stats window.
#ifndef BNN_SERVE_COST_MODEL_H
#define BNN_SERVE_COST_MODEL_H

#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "core/perf_model.h"
#include "nn/netdesc.h"

namespace bnn::core {
class Accelerator;
}

namespace bnn::serve {

struct RequestOptions;

class CostModel {
 public:
  CostModel(nn::NetworkDesc desc, core::PerfConfig config, bool use_intermediate_caching);

  // Builds the model for the network/config an accelerator serves (the
  // same estimate_mc inputs as Accelerator::estimate). Heap-allocated
  // because the internal cache mutex pins the object in place.
  static std::unique_ptr<CostModel> for_accelerator(const core::Accelerator& accelerator);

  // Modelled milliseconds of one image's MC inference at {L, S} — cached
  // per (L, S) pair; thread-safe.
  double modelled_ms(int bayes_layers, int num_samples) const;

  // Modelled cost of the FIRST accelerator pass a request triggers: the
  // screening pass for routed requests, the full-S pass otherwise. This is
  // the dispatcher's group-ranking unit (the escalation second pass is not
  // known at dispatch time).
  double first_pass_ms(const RequestOptions& options) const;

  // Worst-case modelled total: first pass plus the escalation pass for
  // routed requests. The adaptive policy's admission unit — overload
  // decisions assume a routed request may escalate. With escalation reuse
  // enabled (ServerConfig::reuse_screening_samples) the second pass runs
  // only the num_samples - screening_samples NEW samples, and the admission
  // bound tightens accordingly.
  double admission_ms(const RequestOptions& options) const;

  // Mirrors ServerConfig::reuse_screening_samples into admission_ms. Set
  // once at startup, before concurrent readers exist.
  void set_escalation_reuse(bool reuse) { escalation_reuse_ = reuse; }

  // Modelled cost after a shedding downgrade: screening pass only for
  // routed requests (the downgrade's saving), the full pass otherwise.
  double downgraded_ms(const RequestOptions& options) const;

  // Calibration scale onto measured wall milliseconds (default identity).
  // Set once at startup, before concurrent readers exist.
  void set_calibration(core::PerfCalibration calibration) { calibration_ = calibration; }
  const core::PerfCalibration& calibration() const { return calibration_; }

  // Modelled milliseconds mapped onto the calibrated wall clock.
  double wall_ms(double modelled) const {
    return modelled * calibration_.wall_ms_per_modelled_ms;
  }

  int num_sites() const { return num_sites_; }

 private:
  int resolve_layers(int bayes_layers) const;

  nn::NetworkDesc desc_;
  core::PerfConfig config_;
  bool use_intermediate_caching_;
  bool escalation_reuse_ = false;
  int num_sites_;
  core::PerfCalibration calibration_;
  mutable std::mutex mutex_;
  mutable std::map<std::pair<int, int>, double> cache_;
};

}  // namespace bnn::serve

#endif  // BNN_SERVE_COST_MODEL_H
