// Serving cost oracle: the paper's performance model re-used as the
// dispatcher's estimate of what a request will cost.
//
// The headline result of the source paper (Fan et al., DAC 2021) is a
// cycle model — layer_cycles = max(compute, memory) + fill, composed over
// the IC schedule by core::estimate_mc — accurate enough to drive
// design-space exploration. serve::CostModel wraps exactly that model as a
// per-request latency estimate keyed by the request's {L, S} knobs: the
// dispatcher ranks queued batch groups by modelled cost
// (longest-processing-time-first across replicas), and the adaptive
// overload policy sheds load by predicted cost against a wall-clock
// latency target.
//
// Multi-tenancy: the model is KEYED PER MODEL (serve::ModelKey). Each bound
// tenant carries its own NetworkDesc, (L, S) cache, weight footprint, and
// optional calibration override; bind_model() replaces an entry on hot-swap
// (the `tag` lets callers detect staleness by version-pointer identity).
// cold_reload_ms() prices streaming an evicted tenant's weights back from
// DDR (core::DdrModel at the accelerator clock), which is how dispatch and
// admission learn that a cold model is costlier than a hot one. The legacy
// single-model methods delegate to key 0.
//
// Modelled milliseconds are accelerator-clock milliseconds; a calibration
// scale (core::PerfCalibration) maps them onto measured wall milliseconds
// of the software simulator that actually serves the request. Relative
// costs — all the LPT dispatcher needs — are calibration-free; only the
// adaptive policy's comparison against `latency_target_ms` needs the
// calibrated scale (serve::Server measures one anchor pass at startup).
//
// Determinism: modelled costs are a pure function of (network description,
// NNE/DDR config, L, S) and the calibration scales are fixed after startup,
// so every decision derived from CostModel is reproducible given the same
// queue contents and stats window.
#ifndef BNN_SERVE_COST_MODEL_H
#define BNN_SERVE_COST_MODEL_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/perf_model.h"
#include "nn/netdesc.h"

namespace bnn::core {
class Accelerator;
}

namespace bnn::serve {

struct RequestOptions;
using ModelKey = std::uint32_t;

class CostModel {
 public:
  // Empty multi-tenant model: bind tenants with bind_model().
  CostModel(core::PerfConfig config, bool use_intermediate_caching);

  // Legacy single-model form: binds `desc` as key 0.
  CostModel(nn::NetworkDesc desc, core::PerfConfig config, bool use_intermediate_caching);

  // Builds the model for the network/config an accelerator serves (the
  // same estimate_mc inputs as Accelerator::estimate), bound as key 0.
  // Heap-allocated because the internal cache mutex pins the object.
  static std::unique_ptr<CostModel> for_accelerator(const core::Accelerator& accelerator);

  // Registers (or on hot-swap replaces) tenant `key`: its description, its
  // resident weight footprint (the DDR reload payload), and an opaque
  // identity tag (typically the ModelVersion pointer) readable back via
  // bound_tag. `segment_bytes` carries the per-layer weight footprint
  // (ModelVersion::segment_bytes) that streamed_reload_ms prices; empty
  // degrades that method to the flat cold_reload_ms. Replacing clears the
  // (L, S) cache. Thread-safe.
  void bind_model(ModelKey key, nn::NetworkDesc desc, std::uint64_t weight_bytes,
                  const void* tag = nullptr, std::vector<std::uint64_t> segment_bytes = {});
  // Tag of the bound entry; nullptr when `key` is unbound (or bound tagless).
  const void* bound_tag(ModelKey key) const;
  bool has_model(ModelKey key) const;

  // Modelled milliseconds of one image's MC inference at {L, S} on tenant
  // `key` — cached per (L, S) pair; thread-safe.
  double modelled_ms(ModelKey key, int bayes_layers, int num_samples) const;
  double modelled_ms(int bayes_layers, int num_samples) const {
    return modelled_ms(0, bayes_layers, num_samples);
  }

  // Modelled cost of the FIRST accelerator pass a request triggers: the
  // screening pass for routed requests, the full-S pass otherwise. This is
  // the dispatcher's group-ranking unit (the escalation second pass is not
  // known at dispatch time).
  double first_pass_ms(ModelKey key, const RequestOptions& options) const;
  double first_pass_ms(const RequestOptions& options) const {
    return first_pass_ms(0, options);
  }

  // Worst-case modelled total: first pass plus the escalation pass for
  // routed requests. The adaptive policy's admission unit — overload
  // decisions assume a routed request may escalate. With escalation reuse
  // enabled (ServerConfig::reuse_screening_samples) the second pass runs
  // only the num_samples - screening_samples NEW samples, and the admission
  // bound tightens accordingly.
  double admission_ms(ModelKey key, const RequestOptions& options) const;
  double admission_ms(const RequestOptions& options) const { return admission_ms(0, options); }

  // Mirrors ServerConfig::reuse_screening_samples into admission_ms. Set
  // once at startup, before concurrent readers exist.
  void set_escalation_reuse(bool reuse) { escalation_reuse_ = reuse; }

  // Modelled cost after a shedding downgrade: screening pass only for
  // routed requests (the downgrade's saving), the full pass otherwise.
  double downgraded_ms(ModelKey key, const RequestOptions& options) const;
  double downgraded_ms(const RequestOptions& options) const {
    return downgraded_ms(0, options);
  }

  // Modelled milliseconds of streaming tenant `key`'s weights back from DDR
  // after an eviction (core::DdrModel transfer at the NNE clock). Charged
  // on top of the first pass / admission cost of the request whose resolve
  // paid the reload. This is the WHOLE-PLAN price: every segment's transfer
  // serializes ahead of the first pass.
  double cold_reload_ms(ModelKey key) const;

  // Modelled milliseconds the first pass actually STALLS for when only
  // `missing` segments (ascending layer indices) reload, double-buffered
  // behind compute: layer i's transfer overlaps layer i-1's compute, so
  // each missing segment past the first resident prefix charges only
  // max(0, transfer_cycles(i) - compute_cycles(i-1)) — the non-overlapped
  // remainder. A missing FIRST layer has nothing to hide behind and charges
  // in full. Always <= cold_reload_ms for the full missing set; equals it
  // when compute can hide nothing. Requires segment_bytes at bind;
  // falls back to cold_reload_ms when absent.
  double streamed_reload_ms(ModelKey key, const std::vector<int>& missing) const;

  // Global calibration scale onto measured wall milliseconds (default
  // identity). Set once at startup, before concurrent readers exist.
  void set_calibration(core::PerfCalibration calibration) { calibration_ = calibration; }
  const core::PerfCalibration& calibration() const { return calibration_; }

  // Per-tenant calibration override (a tenant whose measured/modelled ratio
  // differs from the anchor's). Thread-safe.
  void set_model_calibration(ModelKey key, core::PerfCalibration calibration);

  // Modelled milliseconds mapped onto the calibrated wall clock — the
  // tenant's override when set, the global scale otherwise.
  double wall_ms(ModelKey key, double modelled) const;
  double wall_ms(double modelled) const {
    return modelled * calibration_.wall_ms_per_modelled_ms;
  }

  int num_sites(ModelKey key) const;
  int num_sites() const { return num_sites(0); }

 private:
  struct Entry {
    nn::NetworkDesc desc;
    int num_sites = 0;
    std::uint64_t weight_bytes = 0;
    std::vector<std::uint64_t> segment_bytes;  // per-layer reload payloads
    // Per-layer deterministic (L=0) pass cycles — the compute a prefetch
    // can hide behind. Filled lazily on first streamed_reload_ms call.
    std::vector<double> layer_cycles;
    const void* tag = nullptr;
    std::optional<core::PerfCalibration> calibration;
    std::map<std::pair<int, int>, double> cache;
  };

  Entry& entry_locked(ModelKey key) const;
  double modelled_ms_locked(Entry& entry, int bayes_layers, int num_samples) const;

  core::PerfConfig config_;
  bool use_intermediate_caching_;
  bool escalation_reuse_ = false;
  core::PerfCalibration calibration_;
  mutable std::mutex mutex_;
  // unique_ptr so entries stay put as tenants bind (indexed by ModelKey).
  mutable std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace bnn::serve

#endif  // BNN_SERVE_COST_MODEL_H
