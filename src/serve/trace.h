// Fleet-scale record/replay: the versioned binary request-trace format and
// the in-server TraceRecorder.
//
// The repo's core invariant — a Response is a pure function of (weights,
// image, options, stream id) for ANY thread count, replica count, dispatch
// mode, and kernel tier — is promoted here from hand-written unit fixtures
// to a fleet-level regression gate: every request a serve::Server handles
// can be journaled to a trace file together with a golden FNV-1a checksum
// of its Response, and serve::replay_trace (replay.h) re-submits the trace
// under ANY serving configuration and hard-fails on the first divergent
// checksum. This mirrors how FPGA-accelerator work validates against fixed
// stimulus streams (Fan et al., DAC 2021): a recorded trace is a permanent
// cross-configuration regression asset.
//
// Format (version 2, all integers little-endian, written byte-by-byte so
// the file is identical on every host):
//
//   header  : magic u64 ("BNTRACE1"), version u32, flags u32 (bit 0 =
//             reuse_screening_samples of the recording server), workload id
//             u32 (fixture hint for standalone replay tools; the DEFAULT
//             model's workload in a multi-model trace), sampler seed
//             u64, network fingerprint u64 (FNV-1a over the default model's
//             quantized weights), record count u64, admission-record count
//             u64, model-table count u32. The three counts are patched in
//             by TraceRecorder::finalize.
//   record  : seq u64 (submission order), arrival us u64 (offset from
//             recorder construction), stream id u64, model key u32 + model
//             version u64 (which registry tenant served it), the full
//             RequestOptions (S, L, screening S, sample offset, router
//             flag, entropy threshold as f64 bits), the image ((C, H, W)
//             u32 each + C*H*W f32 bit patterns — traces are self-contained
//             stimulus streams), the outcome (served / downgraded /
//             rejected / failed), escalated flag, samples used, predicted
//             class, and the golden Response checksum (0 when no response
//             was produced).
//   trailer : the recorded AdmissionRecords (adaptive policy decisions),
//             each {submit seq u64, queue_full u8, downgrade_eligible u8,
//             action u8, p99 / target / backlog / request cost as f64 bits},
//             then the model table: one {key u32, workload id u32, version
//             u64, fingerprint u64, name length u32 + bytes} per distinct
//             (model key, model version) the records reference.
//
// Version 1 files (single-model, no model fields) still read: the reader
// synthesizes a one-entry model table from the header's workload id and
// fingerprint, and every record maps to it.
//
// Checksum coverage: response_checksum hashes the probability row (shape +
// exact float bits), predicted class, entropy, escalated flag, samples
// used, resolved L, and the modelled RunStats. It deliberately EXCLUDES
// stream_id (implicit in the record) and shed_downgraded: a downgraded
// response is bit-identical to the screening pass of a direct
// never-escalating request at the same stream id, and the replayer uses
// exactly that transform to re-serve downgraded records, so the checksum
// must not distinguish the two.
#ifndef BNN_SERVE_TRACE_H
#define BNN_SERVE_TRACE_H

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/server.h"

namespace bnn::quant {
struct QuantNetwork;
}

namespace bnn::serve {

/// "BNTRACE1" as a little-endian u64.
inline constexpr std::uint64_t kTraceMagic = 0x3145434152544E42ull;
inline constexpr std::uint32_t kTraceVersion = 2;
/// Oldest version read_trace still accepts (single-model records).
inline constexpr std::uint32_t kTraceMinVersion = 1;

/// Malformed trace file: wrong magic, unsupported version, truncation, or
/// an out-of-range field. Distinct from I/O failures (std::runtime_error
/// with an errno message) so tests can pin the corruption paths.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What happened to a recorded request.
enum class TraceOutcome : std::uint8_t {
  served = 0,      ///< full-quality response (escalated or not)
  downgraded = 1,  ///< adaptive shedding answered from the screening pass
  rejected = 2,    ///< backpressure / shedding rejection (no response)
  failed = 3,      ///< the request's promise received an exception
};

/// One model-table entry: a (registry key, version) the records reference.
struct TraceModelInfo {
  std::uint32_t model_key = 0;
  std::uint64_t model_version = 1;
  /// Fixture hint for standalone tools (bench/serve_fixture.h ids).
  std::uint32_t workload_id = 0;
  /// network_fingerprint of this tenant's weights.
  std::uint64_t fingerprint = 0;
  /// Registry name ("" = the recording server's default model).
  std::string name;
};

/// Recording-time facts a replayer needs to reproduce the responses.
struct TraceMeta {
  /// Which weights fixture the trace was recorded against — an opaque id
  /// for standalone tools (bench/serve_fixture.h names 1 = tiny CNN 12x12,
  /// 2 = MLP-49); 0 means "caller supplies the accelerator".
  std::uint32_t workload_id = 0;
  /// AcceleratorConfig::sampler_seed of the recording server. The only
  /// accelerator knob that changes functional output (tiling, kernel tier,
  /// and thread counts are all bit-identical), so the replayer must match it.
  std::uint64_t sampler_seed = 1;
  /// FNV-1a fingerprint of the quantized network (network_fingerprint).
  std::uint64_t network_fingerprint = 0;
  /// ServerConfig::reuse_screening_samples of the recording server —
  /// escalated responses depend on it, so the replayer mirrors it.
  bool reuse_screening_samples = false;
  /// The distinct (model key, model version) tenants the records reference.
  /// Always at least one entry after read_trace (v1 files synthesize a
  /// single entry from the header fields).
  std::vector<TraceModelInfo> models;
};

/// One journaled request: the stimulus (image + options + stream id +
/// arrival time) and the golden outcome.
struct TraceRecord {
  std::uint64_t seq = 0;         ///< submission order, 0-based
  std::uint64_t arrival_us = 0;  ///< microseconds since recorder construction
  std::uint64_t stream_id = 0;
  std::uint32_t model_key = 0;      ///< registry tenant (0 = default model)
  std::uint64_t model_version = 1;  ///< tenant version that served it
  RequestOptions options;
  int image_c = 0, image_h = 0, image_w = 0;
  std::vector<float> image;  ///< C*H*W floats, exact bits
  TraceOutcome outcome = TraceOutcome::served;
  bool escalated = false;
  int samples_used = 0;
  int predicted_class = -1;
  std::uint64_t checksum = 0;  ///< response_checksum; 0 for rejected/failed
};

/// A whole trace in memory.
struct Trace {
  TraceMeta meta;
  std::vector<TraceRecord> records;
  std::vector<AdmissionRecord> admission;  ///< adaptive decisions, oldest first
};

/// Incremental 64-bit FNV-1a over explicitly little-endian value encodings
/// (hashes VALUES, not host memory, so digests are endian-portable).
struct Fnv1a64 {
  std::uint64_t state = 0xcbf29ce484222325ull;

  void byte(std::uint8_t value) {
    state ^= value;
    state *= 0x100000001b3ull;
  }
  void bytes(const void* data, std::size_t count) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < count; ++i) byte(p[i]);
  }
  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) byte(static_cast<std::uint8_t>(value >> (8 * i)));
  }
  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(value >> (8 * i)));
  }
  void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void f32(float value) { u32(std::bit_cast<std::uint32_t>(value)); }
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

  std::uint64_t digest() const { return state; }
};

/// The golden checksum of one Response (see the coverage note above).
std::uint64_t response_checksum(const Response& response);

/// FNV-1a fingerprint of the quantized network a trace was recorded
/// against: weights, scales, biases, requantization constants, and layer
/// geometry. Two networks with the same fingerprint serve the same
/// responses; a replay against different weights fails fast instead of
/// reporting every checksum as divergent.
std::uint64_t network_fingerprint(const quant::QuantNetwork& network);

/// Writes a whole in-memory trace (header + records + admission trailer).
/// Throws std::runtime_error when the file cannot be opened/written.
void write_trace(const std::string& path, const Trace& trace);

/// Reads and validates a trace file. Throws TraceFormatError on a bad
/// magic, an unsupported version, truncation, trailing bytes, or an
/// out-of-range field; std::runtime_error when the file cannot be opened.
Trace read_trace(const std::string& path);

/// The in-server journal: submit() begins a record (cheap O(1) slot push —
/// the image copy happens before the server queue lock), the worker that
/// produced a Response completes it, and the dispatcher flushes the
/// contiguous completed prefix to disk between batches (records therefore
/// land in submission order even though batches complete out of order).
/// finalize() — run by Server::shutdown — drains the ring, appends the
/// admission trailer, and patches the header counts.
///
/// Thread-safety: all methods lock the recorder's own mutex (never the
/// server's), so begin/complete are safe from any thread and flush never
/// blocks submitters for the duration of the file I/O it replaces.
/// Rotation: constructed with max_bytes > 0 the recorder journals into
/// size-bounded SEGMENT files named `<path>.000`, `<path>.001`, ... instead
/// of one unbounded file. Whenever a flush pushes the current segment past
/// max_bytes, the segment is closed out as a complete, independently valid
/// trace — its own header (counts patched), the admission decisions
/// recorded since the previous roll, and the FULL cumulative model table,
/// so every record key in the segment resolves without any other segment —
/// and the next segment opens. Record seq numbers and the arrival clock
/// continue across segments, so concatenated segments reconstruct the
/// unrotated journal; each segment alone read_traces and replays cleanly.
class TraceRecorder {
 public:
  /// Opens `path` (or `path.000` when max_bytes > 0) and writes the header
  /// (counts zero until finalize/rotation patches them). Throws
  /// std::runtime_error when the file cannot be created.
  TraceRecorder(std::string path, TraceMeta meta, std::uint64_t max_bytes = 0);
  ~TraceRecorder();  ///< finalizes if finalize() was not called explicitly

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since construction (the record arrival clock).
  std::uint64_t arrival_now_us() const;

  /// Journals a submission: `record` carries stream_id/options/image
  /// (pre-filled by the caller, typically outside any hot lock); the
  /// recorder assigns seq and arrival_us. Returns the seq.
  std::uint64_t begin(TraceRecord record);

  /// Completes record `seq`. `response` may be nullptr (rejected/failed);
  /// otherwise outcome metadata and the golden checksum are captured from
  /// it. Idempotent: only the first completion of a seq sticks.
  void complete(std::uint64_t seq, TraceOutcome outcome, const Response* response);

  /// Appends one adaptive admission decision to the trailer.
  void record_admission(const AdmissionRecord& record);

  /// Registers a (model key, model version) in the model table (written at
  /// finalize). Idempotent per (key, version); safe from any thread.
  void ensure_model(const TraceModelInfo& info);

  /// Writes the contiguous completed prefix of the ring to disk.
  void flush();

  /// Flushes everything (never-completed slots are journaled as `failed`),
  /// writes the admission trailer, patches the header counts, and closes
  /// the file. Idempotent.
  void finalize();

  /// Records begun so far (tests / tools).
  std::uint64_t begun() const;

  /// Segment files completed or in progress (1 while unrotated).
  int segments() const;

 private:
  struct Slot {
    TraceRecord record;
    bool completed = false;
  };

  void flush_locked();
  // Closes the current segment as a complete trace (trailer + patched
  // counts) and opens the next one. Rotation mode only.
  void roll_segment_locked();
  // Writes the current segment's trailer and patches its header counts.
  void close_segment_locked();
  void open_segment_locked();
  std::string segment_path(int index) const;

  std::string path_;
  TraceMeta meta_;
  std::uint64_t max_bytes_ = 0;  // 0 = no rotation
  std::FILE* file_ = nullptr;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mutex_;
  std::deque<Slot> slots_;      // slots_[i] holds seq base_seq_ + i
  std::uint64_t base_seq_ = 0;  // seq of slots_.front()
  std::uint64_t next_seq_ = 0;
  std::uint64_t written_ = 0;   // records written, all segments
  std::vector<AdmissionRecord> admission_;
  std::vector<TraceModelInfo> models_;
  bool finalized_ = false;
  // Rotation state: the open segment's path/index, how many records it
  // holds, and how many admission records earlier segments already took.
  std::string segment_path_;
  int segment_index_ = 0;
  std::uint64_t segment_written_ = 0;
  std::size_t admission_flushed_ = 0;
};

}  // namespace bnn::serve

#endif  // BNN_SERVE_TRACE_H
