// Multi-tenant model registry: the named, versioned model table behind a
// serve::Server — breaks the one-model-per-server assumption.
//
// Each tenant ("model name") maps to an immutable ModelVersion snapshot: a
// shared_ptr-const QuantNetwork plus the prebuilt NetworkExecPlan every
// replica binds lazily. publish() registers a new tenant or HOT-SWAPS an
// existing one: quantization/annotation/packing happen before the registry
// mutex is taken, the flip itself is one pointer swap, and in-flight
// requests keep their old ModelVersion handle alive through shared_ptr, so
// they complete on the old weights bit-identically while every submit that
// starts after publish() returns resolves the new version — the swap is a
// linearization point because submit() resolves under the same mutex.
//
// Residency: weights on a real board live in DDR and only a budget's worth
// stays resident (streamed/double-buffered burst loads, as in the
// FPGA-accelerator survey literature). The registry models that with
// RegistryConfig::residency_budget_bytes: when the hot set exceeds it, the
// least-recently-used tenants drop their exec plan and go COLD. A cold
// tenant still serves — resolve() rebuilds the plan (a pure function of the
// weights, so responses are bit-identical across eviction states) — but the
// resolve is flagged cold_start so the serving layer charges the DDR reload
// through core::DdrModel into its CostModel: dispatch and admission know a
// cold model is costlier than a hot one.
#ifndef BNN_SERVE_MODEL_REGISTRY_H
#define BNN_SERVE_MODEL_REGISTRY_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "quant/qnetwork.h"
#include "quant/qplan.h"

namespace bnn::serve {

/// Dense per-tenant slot id, stable for the registry's lifetime (survives
/// hot-swaps; version changes, key does not). Keys index cost-model entries
/// and per-tenant counters cheaply.
using ModelKey = std::uint32_t;

/// Immutable snapshot of one published model version. Requests hold one via
/// shared_ptr for their whole flight, which is what makes hot-swap draining
/// safe: the old weights outlive the flip for exactly as long as someone
/// still computes on them.
struct ModelVersion {
  std::string name;
  std::uint64_t version = 1;  ///< monotonic per tenant, starts at 1
  ModelKey key = 0;
  std::uint32_t workload_id = 0;  ///< trace/fixture hint (serve_fixture ids)
  std::shared_ptr<const quant::QuantNetwork> network;
  std::uint64_t fingerprint = 0;    ///< serve::network_fingerprint
  std::uint64_t weight_bytes = 0;   ///< resident weight footprint
};

/// Per-tenant knobs fixed at publish time.
struct ModelConfig {
  /// Fixture hint stamped into traces (bench/serve_fixture.h ids; 0 = none).
  std::uint32_t workload_id = 0;
  /// Per-tenant quota: max requests of this model queued in the server at
  /// once (0 = unlimited). Excess submits are rejected with
  /// QuotaExceededError and counted in ServerStats::quota_rejected.
  int max_queued = 0;
  /// Convert binarizable layers to packed mask storage at publish (~8x
  /// smaller resident footprint, bit-identical responses).
  bool pack_binarizable_weights = true;
};

struct RegistryConfig {
  /// Hot-set weight budget in bytes; tenants beyond it evict to cold
  /// (plan dropped, reload charged on next use). 0 = unlimited.
  std::uint64_t residency_budget_bytes = 0;
};

struct RegistryStats {
  std::uint64_t models = 0;
  std::uint64_t hot_models = 0;
  std::uint64_t resident_bytes = 0;  ///< weight bytes of the hot set
  std::uint64_t evictions = 0;       ///< hot -> cold transitions
  std::uint64_t reloads = 0;         ///< cold -> hot transitions at resolve
  std::uint64_t swaps = 0;           ///< hot-swaps of an existing tenant
};

/// Thread-safe table of named, versioned quantized models. See the header
/// comment for swap and residency semantics.
class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryConfig config = {});

  /// What a request (or a replica bind) holds while in flight.
  struct Bound {
    std::shared_ptr<const ModelVersion> version;
    std::shared_ptr<const quant::NetworkExecPlan> plan;
    /// True when THIS resolve paid a cold reload (the request it admits
    /// should carry the DDR reload cost).
    bool cold_start = false;
  };

  /// Registers `name`, or hot-swaps it when already present (version + 1).
  /// Annotates weight tiers and (per `config.pack_binarizable_weights`)
  /// packs binarizable layers before publishing; the published network is
  /// immutable afterwards. Returns the new version snapshot.
  std::shared_ptr<const ModelVersion> publish(const std::string& name,
                                              quant::QuantNetwork network,
                                              ModelConfig config = {});

  /// Same, for an already-wrapped immutable network (no copy, no repack —
  /// the caller finished preparing it; annotate/pack before wrapping).
  std::shared_ptr<const ModelVersion> publish(
      const std::string& name, std::shared_ptr<const quant::QuantNetwork> network,
      ModelConfig config = {});

  /// Resolves `name` to its current version + exec plan, reloading it when
  /// cold (Bound::cold_start reports that) and bumping its LRU stamp.
  /// Throws std::invalid_argument for an unknown name.
  Bound resolve(const std::string& name);

  bool has(const std::string& name) const;
  /// Tenant names in registration order.
  std::vector<std::string> names() const;
  /// True when the tenant's plan is resident (not evicted). Throws
  /// std::invalid_argument for an unknown name.
  bool hot(const std::string& name) const;
  /// Current version snapshot (no LRU bump, no reload). Throws
  /// std::invalid_argument for an unknown name.
  std::shared_ptr<const ModelVersion> current(const std::string& name) const;
  /// The publish-time per-tenant config. Throws on unknown name.
  ModelConfig model_config(const std::string& name) const;

  RegistryStats stats() const;
  const RegistryConfig& config() const { return config_; }

 private:
  struct Entry {
    std::shared_ptr<const ModelVersion> current;
    std::shared_ptr<const quant::NetworkExecPlan> plan;  // null = cold
    ModelConfig model_config;
    std::uint64_t last_use = 0;  // LRU stamp (resolve ticks)
  };

  Entry& entry_for(const std::string& name);
  const Entry& entry_for(const std::string& name) const;
  // Drops LRU plans until the hot set fits the budget; `keep` is never
  // evicted (the entry just published or resolved).
  void enforce_budget_locked(const Entry* keep);
  std::uint64_t resident_bytes_locked() const;

  RegistryConfig config_;
  mutable std::mutex mutex_;
  std::vector<std::string> order_;  // registration order of names
  std::vector<Entry> entries_;      // indexed by ModelKey
  std::uint64_t tick_ = 0;
  RegistryStats stats_;
};

}  // namespace bnn::serve

#endif  // BNN_SERVE_MODEL_REGISTRY_H
