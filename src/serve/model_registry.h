// Multi-tenant model registry: the named, versioned model table behind a
// serve::Server — breaks the one-model-per-server assumption.
//
// Each tenant ("model name") maps to an immutable ModelVersion snapshot: a
// shared_ptr-const QuantNetwork plus a table of per-layer exec-plan
// SEGMENTS every replica binds lazily. publish() registers a new tenant or
// HOT-SWAPS an existing one: quantization/annotation/packing happen before
// the registry mutex is taken, the flip itself is one pointer swap, and
// in-flight requests keep their old ModelVersion handle (and its segment
// table) alive through shared_ptr, so they complete on the old weights
// bit-identically while every submit that starts after publish() returns
// resolves the new version — the swap is a linearization point because
// submit() resolves under the same mutex.
//
// Residency state machine (per tenant):
//
//     RESIDENT  --evict coldest segment-->  PARTIAL  --evict all-->  COLD
//        ^                                     |  ^                    |
//        +------- resolve/acquire builds ------+  +---- acquire -------+
//
// Weights on a real board live in DDR and only a budget's worth stays on
// chip (streamed/double-buffered burst loads, as in the FPGA-accelerator
// survey literature). The registry models that at LAYER granularity:
// RegistryConfig::residency_budget_bytes is enforced in segment bytes, and
// when the resident set exceeds it the GLOBALLY coldest segments (LRU by a
// registry-wide clock) drop first — a warm tenant sheds its coldest layers
// before a hot tenant sheds anything. A partially-resident tenant still
// serves: resolve() rebuilds exactly the missing segments (each a pure
// function of the immutable network, so responses are bit-identical across
// every residency state), flags the resolve cold_start, and reports WHICH
// segments were missing so the serving layer can charge the non-overlapped
// DDR reload remainder (CostModel::streamed_reload_ms) instead of a flat
// whole-plan reload. With RegistryConfig::stream_cold_plans set, resolve()
// returns immediately with a streaming PlanSource instead of materializing
// the whole plan first: the accelerator then resolves segment k on first
// use and prefetches segment k+1 while layer k computes (the double-buffer
// overlap), so a cold tenant's first response does not wait for full
// residency.
#ifndef BNN_SERVE_MODEL_REGISTRY_H
#define BNN_SERVE_MODEL_REGISTRY_H

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "quant/qnetwork.h"
#include "quant/qplan.h"

namespace bnn::serve {

/// Dense per-tenant slot id, stable for the registry's lifetime (survives
/// hot-swaps; version changes, key does not). Keys index cost-model entries
/// and per-tenant counters cheaply.
using ModelKey = std::uint32_t;

/// Immutable snapshot of one published model version. Requests hold one via
/// shared_ptr for their whole flight, which is what makes hot-swap draining
/// safe: the old weights outlive the flip for exactly as long as someone
/// still computes on them.
struct ModelVersion {
  std::string name;
  std::uint64_t version = 1;  ///< monotonic per tenant, starts at 1
  ModelKey key = 0;
  std::uint32_t workload_id = 0;  ///< trace/fixture hint (serve_fixture ids)
  std::shared_ptr<const quant::QuantNetwork> network;
  std::uint64_t fingerprint = 0;    ///< serve::network_fingerprint
  std::uint64_t weight_bytes = 0;   ///< resident weight footprint (all layers)
  /// Per-layer resident weight bytes — the segment-granular residency and
  /// reload-cost currency (sums to weight_bytes).
  std::vector<std::uint64_t> segment_bytes;
};

/// Per-tenant knobs fixed at publish time.
struct ModelConfig {
  /// Fixture hint stamped into traces (bench/serve_fixture.h ids; 0 = none).
  std::uint32_t workload_id = 0;
  /// Per-tenant quota: max requests of this model queued in the server at
  /// once (0 = unlimited). Excess submits are rejected with
  /// QuotaExceededError and counted in ServerStats::quota_rejected.
  int max_queued = 0;
  /// Convert binarizable layers to packed mask storage at publish (~8x
  /// smaller resident footprint, bit-identical responses).
  bool pack_binarizable_weights = true;
};

struct RegistryConfig {
  /// Resident-segment weight budget in bytes; past it the globally coldest
  /// segments evict (reload charged on next use). 0 = unlimited.
  std::uint64_t residency_budget_bytes = 0;
  /// When true, resolve() of a not-fully-resident tenant returns
  /// immediately with a streaming Bound::source (plan left null) instead of
  /// materializing every missing segment up front — the accelerator streams
  /// segments layer by layer with prefetch overlap. When false (default),
  /// resolve() materializes all missing segments before returning, so
  /// Bound::plan is always usable.
  bool stream_cold_plans = false;
};

struct RegistryStats {
  std::uint64_t models = 0;
  std::uint64_t hot_models = 0;         ///< fully-resident tenants
  std::uint64_t resident_bytes = 0;     ///< weight bytes of resident segments
  std::uint64_t resident_segments = 0;  ///< resident segment count
  std::uint64_t evictions = 0;   ///< fully-resident -> partial/cold transitions
  std::uint64_t reloads = 0;     ///< resolves that found segments missing
  std::uint64_t swaps = 0;       ///< hot-swaps of an existing tenant
  std::uint64_t segment_evictions = 0;  ///< individual segments dropped
  std::uint64_t segment_builds = 0;     ///< individual segments built (publish + reload)
};

/// Per-tenant-version segment table: the residency ground truth. Slot i
/// holds layer i's PlanSegment when resident (null when evicted) plus an
/// LRU stamp from the registry-wide clock. acquire() is the single build
/// path and is EXACTLY-ONCE under concurrency: the first caller to find a
/// slot empty installs an in-flight marker and builds outside the table
/// lock; concurrent callers for the same slot block on the shared future
/// instead of building again. Tables are immutable in shape (one slot per
/// layer, network fixed) and shared: Bounds, PlanSources, and the registry
/// all hold them via shared_ptr, so eviction of a segment never invalidates
/// a segment handle someone already acquired.
class SegmentTable {
 public:
  SegmentTable(std::shared_ptr<const quant::QuantNetwork> network,
               std::shared_ptr<std::atomic<std::uint64_t>> clock,
               std::shared_ptr<std::atomic<std::uint64_t>> builds);

  int num_layers() const { return static_cast<int>(slots_.size()); }
  const std::shared_ptr<const quant::QuantNetwork>& network() const { return network_; }

  /// Layer `index`'s segment, building it if evicted (exactly once across
  /// concurrent callers) and bumping its LRU stamp. Never returns null.
  quant::PlanSegment acquire(int index);

  /// Installs an already-built segment (publish installs the whole-plan
  /// build this way, without counting a rebuild).
  void install(int index, quant::PlanSegment segment);

  /// Drops layer `index`'s segment; returns true when a resident segment
  /// was actually dropped (false for an already-empty slot).
  bool evict(int index);

  /// Coldest resident slot, or -1 when nothing is resident. `stamp_out`
  /// receives its LRU stamp (for cross-table comparison).
  int coldest(std::uint64_t* stamp_out) const;

  /// Refreshes every resident slot's LRU stamp (a warm resolve touches the
  /// whole tenant).
  void touch_all();

  bool fully_resident() const;
  std::uint64_t resident_bytes() const;
  int resident_segments() const;
  /// Indices of currently evicted slots, ascending.
  std::vector<int> missing_indices() const;

 private:
  struct Slot {
    quant::PlanSegment segment;  // null = evicted
    std::shared_future<quant::PlanSegment> building;  // valid = build in flight
    std::uint64_t last_use = 0;
  };

  std::shared_ptr<const quant::QuantNetwork> network_;
  std::shared_ptr<std::atomic<std::uint64_t>> clock_;   // registry-wide LRU clock
  std::shared_ptr<std::atomic<std::uint64_t>> builds_;  // registry-wide build counter
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
};

/// Thread-safe table of named, versioned quantized models. See the header
/// comment for swap and residency semantics.
class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryConfig config = {});

  /// What a request (or a replica bind) holds while in flight.
  struct Bound {
    std::shared_ptr<const ModelVersion> version;
    /// The fully-materialized plan. Null only in streaming mode
    /// (RegistryConfig::stream_cold_plans) when this resolve found segments
    /// missing — consume `source` instead.
    std::shared_ptr<const quant::NetworkExecPlan> plan;
    /// On-demand segment source over this version's table (always set).
    /// The streamed-bind path feeds it to the accelerator's PlanSource
    /// ctor; segment(k) blocks until layer k is resident.
    std::shared_ptr<quant::PlanSource> source;
    /// True when THIS resolve found segments missing (the request it admits
    /// should carry the DDR reload cost).
    bool cold_start = false;
    /// The segment indices missing at resolve time (empty when warm) — what
    /// CostModel::streamed_reload_ms prices.
    std::vector<int> missing;
  };

  /// Registers `name`, or hot-swaps it when already present (version + 1).
  /// Annotates weight tiers and (per `config.pack_binarizable_weights`)
  /// packs binarizable layers before publishing; the published network is
  /// immutable afterwards. Returns the new version snapshot.
  std::shared_ptr<const ModelVersion> publish(const std::string& name,
                                              quant::QuantNetwork network,
                                              ModelConfig config = {});

  /// Same, for an already-wrapped immutable network (no copy, no repack —
  /// the caller finished preparing it; annotate/pack before wrapping).
  std::shared_ptr<const ModelVersion> publish(
      const std::string& name, std::shared_ptr<const quant::QuantNetwork> network,
      ModelConfig config = {});

  /// Resolves `name` to its current version + exec plan, rebuilding missing
  /// segments (Bound::cold_start / Bound::missing report that) and bumping
  /// its LRU stamps. Segment builds run OUTSIDE the registry mutex and are
  /// deduplicated per slot, so concurrent resolves of one cold tenant build
  /// its segment set exactly once. Throws std::invalid_argument for an
  /// unknown name.
  Bound resolve(const std::string& name);

  bool has(const std::string& name) const;
  /// Tenant names in registration order.
  std::vector<std::string> names() const;
  /// True when every segment of the tenant's current version is resident.
  /// Throws std::invalid_argument for an unknown name.
  bool hot(const std::string& name) const;
  /// Current version snapshot (no LRU bump, no reload). Throws
  /// std::invalid_argument for an unknown name.
  std::shared_ptr<const ModelVersion> current(const std::string& name) const;
  /// The publish-time per-tenant config. Throws on unknown name.
  ModelConfig model_config(const std::string& name) const;

  /// Force-evicts the tenant's segments with layer index >= keep_first —
  /// the test/bench hook for pinning a specific partial-residency state.
  /// Returns the number of segments dropped. Throws on unknown name.
  int evict_segments(const std::string& name, int keep_first = 0);

  RegistryStats stats() const;
  const RegistryConfig& config() const { return config_; }

 private:
  struct Entry {
    std::shared_ptr<const ModelVersion> current;
    std::shared_ptr<SegmentTable> table;  // residency ground truth
    // Cached whole-plan assembly over `table` (pointer-stable for replica
    // bind caches). Non-null only while it reflects a fully-resident table;
    // any eviction invalidates it.
    std::shared_ptr<const quant::NetworkExecPlan> plan;
    ModelConfig model_config;
    std::uint64_t last_use = 0;  // LRU stamp (resolve ticks)
  };

  Entry& entry_for(const std::string& name);
  const Entry& entry_for(const std::string& name) const;
  // Drops globally-coldest segments until the resident set fits the budget;
  // `keep` is never evicted (the entry just published or resolved).
  void enforce_budget_locked(const Entry* keep);
  std::uint64_t resident_bytes_locked() const;
  // Assembles (and caches) the whole plan of a fully-resident entry.
  std::shared_ptr<const quant::NetworkExecPlan> assembled_plan_locked(Entry& entry);

  RegistryConfig config_;
  mutable std::mutex mutex_;
  std::vector<std::string> order_;  // registration order of names
  std::vector<Entry> entries_;      // indexed by ModelKey
  std::uint64_t tick_ = 0;
  RegistryStats stats_;
  // Registry-wide segment LRU clock and build counter, shared into every
  // SegmentTable so stamps compare across tenants and builds aggregate even
  // for tables a hot-swap already replaced.
  std::shared_ptr<std::atomic<std::uint64_t>> segment_clock_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  std::shared_ptr<std::atomic<std::uint64_t>> segment_builds_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
};

}  // namespace bnn::serve

#endif  // BNN_SERVE_MODEL_REGISTRY_H
