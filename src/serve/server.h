// Request-level serving front end over the accelerator simulator.
//
// The paper frames the accelerator as a high-throughput service for streams
// of Monte Carlo inference requests (cf. VIBNN's request streams and the
// ROADMAP north star). serve::Server is that front end in software: clients
// submit single-image Requests with per-request knobs for S (MC samples)
// and L (Bayesian depth); R replica workers (`ServerConfig::num_replicas`)
// pull per-shape batch groups off one coalescing queue and run each group
// through their own core::Accelerator — the software analogue of FPGA BNN
// designs replicating processing engines to hide sampling and MC latency.
// Replicas share the quantized network read-only (one copy of the weights)
// and slice the shared runtime::ThreadPool between them, so each group's
// flattened (image, sample) pair loop fills its share of the pool lanes.
//
// Backpressure: `max_queue_depth` bounds the coalescing queue. When it is
// full, submit() either blocks the caller until a replica frees space
// (OverloadPolicy::block) or resolves the returned future immediately with
// a QueueFullError (OverloadPolicy::fail_fast) — the server degrades
// predictably under overload instead of queueing without bound.
//
// The uncertainty-threshold router implements the paper's Opt-Uncertainty
// serving mode: a cheap screening pass with few samples first; only inputs
// whose predictive entropy crosses the threshold are escalated to the full
// sample count. Low-uncertainty traffic therefore pays screening-pass
// latency only.
//
// Determinism: every request gets a stream id (a submission-order ticket,
// or a caller-chosen id), and the accelerator's sampler lanes are seeded
// per (stream id, sample). A request's response is therefore a pure
// function of (network weights, image, its options, its stream id) — the
// same no matter how the dispatcher batched it, WHICH REPLICA ran it, how
// many worker threads ran, or what other traffic was in flight. An
// escalated response is bit-identical to what a direct full-S request
// would have returned.
#ifndef BNN_SERVE_SERVER_H
#define BNN_SERVE_SERVER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/accelerator.h"
#include "nn/tensor.h"

namespace bnn::serve {

/// Per-request inference knobs: the paper's {L, S} made request-level.
struct RequestOptions {
  /// S: Monte Carlo samples for the full-quality answer.
  int num_samples = 10;
  /// L: number of trailing Bayesian sites; -1 means every site (full BNN).
  int bayes_layers = -1;
  /// Route through the Opt-Uncertainty screening pass (see Server docs).
  bool use_uncertainty_router = false;
  /// Samples of the cheap screening pass (paper Opt-Uncertainty low-S).
  int screening_samples = 3;
  /// Escalate to the full num_samples when the screening pass's predictive
  /// entropy (nats) exceeds this. <= 0 escalates everything; >= ln(K)
  /// effectively nothing.
  double entropy_threshold_nats = 0.5;
};

/// One inference request: a single image plus its knobs.
struct Request {
  nn::Tensor image;  ///< (C, H, W) or (1, C, H, W) float image
  RequestOptions options;
  /// Sampler stream family for this request. Defaults to a submission-order
  /// ticket; fix it explicitly to make a request's masks independent of
  /// when it was submitted (e.g. for replay / A-B comparisons).
  std::optional<std::uint64_t> stream_id;
};

/// The served prediction plus routing metadata.
struct Response {
  nn::Tensor probs;  ///< (1, K) averaged predictive distribution
  int predicted_class = -1;
  double entropy_nats = 0.0;  ///< predictive entropy of `probs`
  bool escalated = false;     ///< router promoted this input to full S
  int samples_used = 0;       ///< S of the pass that produced `probs`
  int bayes_layers = 0;       ///< resolved L
  std::uint64_t stream_id = 0;
  core::RunStats stats;  ///< modelled hardware cost of the producing pass
};

/// What submit() does when the queue already holds `max_queue_depth`
/// requests.
enum class OverloadPolicy {
  /// Block the submitting thread until a replica frees queue space (or the
  /// server shuts down, which throws std::runtime_error to the submitter).
  block,
  /// Resolve the returned future immediately with QueueFullError; the
  /// request never enters the queue and consumes no stream-id ticket.
  fail_fast,
};

/// The distinct error a fail-fast rejection carries: clients can tell "the
/// server is overloaded, retry later" apart from malformed-request
/// (std::invalid_argument) and shutdown (plain std::runtime_error) failures.
class QueueFullError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ServerConfig {
  /// Most requests coalesced into one accelerator batch group.
  int max_batch = 8;
  /// How long an idle replica lingers for more requests after the first.
  std::chrono::microseconds batch_linger{200};
  /// Total worker-lane budget across all replicas (0 = hardware
  /// concurrency). Each replica's flattened pair loop is capped to
  /// max(1, budget / num_replicas) lanes of the shared pool, so R replicas
  /// partition the pool instead of oversubscribing it. Purely a scheduling
  /// knob; responses are bit-identical for every value.
  int num_threads = 0;
  /// Executor shared by every replica (non-owning; must outlive the
  /// server). nullptr selects the process-wide runtime::shared_pool().
  runtime::ThreadPool* pool = nullptr;
  /// R: accelerator replicas serving the queue concurrently. Replicas
  /// share the quantized network read-only; responses are bit-identical
  /// for every replica count (sampler lanes depend only on stream ids).
  int num_replicas = 1;
  /// Queue bound for backpressure; 0 = unbounded (no admission control).
  int max_queue_depth = 0;
  /// What submit() does when the queue is full (see OverloadPolicy).
  OverloadPolicy overload_policy = OverloadPolicy::block;
};

/// Aggregate serving counters (monotonic since construction) plus latency
/// percentiles over a sliding window of recently served requests.
/// Invariant (once the queue is drained): requests + rejected == submitted.
struct ServerStats {
  std::uint64_t submitted = 0;    ///< valid submissions (accepted + rejected)
  std::uint64_t requests = 0;     ///< responses produced
  std::uint64_t rejected = 0;     ///< fail-fast backpressure rejections
  std::uint64_t batches = 0;      ///< accelerator passes issued
  std::uint64_t screened = 0;     ///< requests that took the screening pass
  std::uint64_t escalations = 0;  ///< screened requests promoted to full S
  /// High-water mark of the coalescing queue length; never exceeds
  /// max_queue_depth when that bound is set.
  std::uint64_t peak_queue_depth = 0;
  /// End-to-end request latency (submit() to response ready, wall clock,
  /// milliseconds) over the last `Server::kLatencyWindow` served requests;
  /// 0 until the first response.
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
};

/// Percentile with linear interpolation between closest ranks: pct in
/// [0, 100], pct=50 of {1,2,3,4} is 2.5. Sorts a copy; the input need not
/// be ordered. Throws std::invalid_argument on an empty sample set or an
/// out-of-range pct.
double latency_percentile(std::vector<double> samples, double pct);

/// Batched-serving front end over R replica accelerators. Thread-safe: any
/// number of client threads may submit concurrently; each replica worker
/// thread owns its accelerator. The destructor drains every accepted
/// request before returning.
///
/// Batches are grouped per image shape: a replica only coalesces queued
/// requests whose (C, H, W) matches the oldest waiting request and leaves
/// the rest queued (for itself on its next pull, or for a concurrently
/// idle replica), so heterogeneous traffic (possible when the network's
/// first layer is linear, which constrains only the element count) splits
/// into homogeneous accelerator passes instead of faulting — and a shape
/// problem can only ever fail its own request, never a batch neighbour or
/// a replica worker.
class Server {
 public:
  /// Takes ownership of the accelerator and replicates it
  /// `config.num_replicas` times (replicas share the quantized network);
  /// `config.pool`/`config.num_threads` override the accelerator's own
  /// executor knobs.
  explicit Server(core::Accelerator accelerator, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues a request; the future resolves when its batch completes.
  /// Throws std::invalid_argument on malformed options or image shape, and
  /// std::runtime_error after shutdown() has been called (including to
  /// submitters blocked on a full queue when shutdown arrives). Under
  /// fail-fast overload the returned future holds a QueueFullError instead
  /// of a value.
  std::future<Response> submit(Request request);

  /// Synchronous convenience: submit + wait.
  Response infer(Request request);

  /// Stops accepting new requests, serves everything already queued,
  /// releases submitters blocked on a full queue, and joins the replica
  /// workers. Idempotent; also run by the destructor.
  void shutdown();

  ServerStats stats() const;

  /// Replica 0's accelerator (all replicas share its network and config).
  const core::Accelerator& accelerator() const { return replicas_.front()->accelerator; }

  /// Latency-percentile window size (served requests retained for the
  /// ServerStats percentiles).
  static constexpr std::size_t kLatencyWindow = 1024;

 private:
  struct Pending {
    nn::Tensor image;  // (1, C, H, W)
    RequestOptions options;
    std::uint64_t stream_id = 0;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  /// One accelerator replica and the worker thread driving it.
  struct Replica {
    explicit Replica(core::Accelerator accel) : accelerator(std::move(accel)) {}
    core::Accelerator accelerator;
    std::thread thread;
  };

  void replica_loop(Replica& replica);
  void serve_batch(core::Accelerator& accelerator, std::vector<Pending> batch);

  ServerConfig config_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  mutable std::mutex mutex_;
  std::condition_variable queue_ready_;  // replicas wait for work
  std::condition_variable queue_space_;  // blocked submitters wait for room
  std::deque<Pending> queue_;
  std::uint64_t next_ticket_ = 0;
  bool stopping_ = false;
  ServerStats stats_;
  std::vector<double> latency_window_;  // ring buffer, capacity kLatencyWindow
  std::size_t latency_next_ = 0;
};

}  // namespace bnn::serve

#endif  // BNN_SERVE_SERVER_H
