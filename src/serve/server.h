// Request-level serving front end over the accelerator simulator.
//
// The paper frames the accelerator as a high-throughput service for streams
// of Monte Carlo inference requests (cf. VIBNN's request streams and the
// ROADMAP north star). serve::Server is that front end in software: clients
// submit single-image Requests with per-request knobs for S (MC samples)
// and L (Bayesian depth); R replica workers (`ServerConfig::num_replicas`)
// pull per-(model, shape) batch groups off one coalescing queue and run
// each group through a core::Accelerator bound to that group's model — the
// software analogue of FPGA BNN designs replicating processing engines to
// hide sampling and MC latency. Replicas share each quantized network
// read-only (one copy of the weights per model) and slice the shared
// runtime::ThreadPool between them, so each group's flattened
// (image, sample) pair loop fills its share of the pool lanes.
//
// Multi-tenancy: the server fronts a serve::ModelRegistry — a table of
// named, versioned quantized models. Request::model names the tenant
// (empty = ServerConfig::default_model); submit() resolves the name to an
// immutable ModelVersion snapshot, so a hot-swap (ModelRegistry::publish)
// never affects requests already admitted: in-flight work completes on the
// weights it resolved, bit-identically, while every later submit sees the
// new version. Replicas bind an accelerator per (replica, model version)
// lazily and cache a bounded LRU set of binds; a tenant whose exec-plan
// segments the registry's residency budget partially evicted still serves,
// but its resolve pays the non-overlapped remainder of the modelled DDR
// segment reloads (CostModel::streamed_reload_ms — layer k+1's burst hides
// behind layer k's compute) which inflates the request's
// dispatch/admission cost and is counted in ServerStats::cold_starts. Per-tenant quotas (ModelConfig::max_queued)
// bound how much of the queue one tenant may occupy; quota rejections
// throw QuotaExceededError and count in ServerStats::quota_rejected.
//
// Dispatch: by default the dispatcher is COST-AWARE — a serve::CostModel
// (the paper's own performance model re-used as a serving oracle) estimates
// each queued per-(model, shape) batch group's modelled latency from its
// requests' {L, S} knobs (per-tenant model descriptions, calibrated onto
// the wall clock so costs are cross-model comparable, cold reloads
// included), and an idle replica pulls the COSTLIEST group first
// (longest-processing-time-first across replicas). LPT balances modelled
// load between replicas and cuts tail latency under mixed cheap/expensive
// traffic; `DispatchMode::fifo` restores the greedy oldest-first pull.
// Routing only changes WHICH replica serves a group and WHEN — never what
// any request's response is (see Determinism below).
//
// Backpressure: `max_queue_depth` bounds the coalescing queue. When it is
// full, submit() either blocks the caller until a replica frees space
// (OverloadPolicy::block) or resolves the returned future immediately with
// a QueueFullError (OverloadPolicy::fail_fast). OverloadPolicy::adaptive
// instead sheds load by PREDICTED COST when the served-latency p99 drifts
// past `latency_target_ms`: eligible (router-enabled) requests are
// downgraded to screening-only first, and only requests whose modelled cost
// no longer fits the latency budget are rejected — the server degrades by
// shedding the costliest work instead of everything that arrives late.
//
// The uncertainty-threshold router implements the paper's Opt-Uncertainty
// serving mode: a cheap screening pass with few samples first; only inputs
// whose predictive entropy crosses the threshold are escalated to the full
// sample count. Low-uncertainty traffic therefore pays screening-pass
// latency only.
//
// Determinism: every request gets a stream id (a submission-order ticket,
// or a caller-chosen id), and the accelerator's sampler lanes are seeded
// per (stream id, sample). A request's response is therefore a pure
// function of (model version's weights, image, its options, its stream id,
// its shed-downgrade flag) — the same no matter how the dispatcher batched
// it, WHICH REPLICA ran it, WHICH DISPATCH MODE picked it, how many worker
// threads ran, whether its model was EVICTED AND RELOADED in between
// (plan rebuild is a pure function of the immutable weights), what other
// TENANTS were hot-swapped mid-flight, or what other traffic was in
// flight. An escalated response is bit-identical to what a direct full-S
// request would have returned; a shed-downgraded response is bit-identical
// to the screening pass a direct never-escalating request would have
// returned. Exception: with ServerConfig::reuse_screening_samples on, an
// escalated response merges the screening average with a second pass over
// only the NEW samples — still a pure function of the same inputs (the
// merged windows consume exactly the mask streams a direct full-S request
// would), but the float reduction order differs, so it is deterministic
// without being bit-identical to the direct full-S result. Across overload
// policies only ADMISSION decisions (reject / downgrade) may differ, and
// each adaptive decision is a pure function of its recorded inputs
// (adaptive_admission + AdmissionRecord), reproducible by a
// single-threaded replay.
#ifndef BNN_SERVE_SERVER_H
#define BNN_SERVE_SERVER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.h"
#include "nn/tensor.h"
#include "serve/cost_model.h"
#include "serve/model_registry.h"

namespace bnn::serve {

class TraceRecorder;  // serve/trace.h — journal behind ServerConfig::trace_path

/// Per-request inference knobs: the paper's {L, S} made request-level.
struct RequestOptions {
  /// S: Monte Carlo samples for the full-quality answer.
  int num_samples = 10;
  /// L: number of trailing Bayesian sites; -1 means every site (full BNN).
  int bayes_layers = -1;
  /// Route through the Opt-Uncertainty screening pass (see Server docs).
  bool use_uncertainty_router = false;
  /// Samples of the cheap screening pass (paper Opt-Uncertainty low-S).
  int screening_samples = 3;
  /// Escalate to the full num_samples when the screening pass's predictive
  /// entropy (nats) exceeds this. <= 0 escalates everything; >= ln(K)
  /// effectively nothing.
  double entropy_threshold_nats = 0.5;
  /// First sample index of this request's sampler-lane range (see
  /// core::Accelerator::ImageRequest::sample_offset): sample s draws from
  /// stream (stream_id, sample_offset + s). Lets a caller split one logical
  /// S-sample prediction across requests with non-overlapping windows; the
  /// router's escalation pass adds its own reuse offset ON TOP of this.
  /// Must be >= 0.
  int sample_offset = 0;
};

/// One inference request: a single image plus its knobs.
struct Request {
  nn::Tensor image;  ///< (C, H, W) or (1, C, H, W) float image
  RequestOptions options;
  /// Registry name of the model to serve this request (empty =
  /// ServerConfig::default_model). Resolved to an immutable version
  /// snapshot at submit — a concurrent hot-swap never retargets an
  /// admitted request. Unknown names throw std::invalid_argument.
  std::string model;
  /// Sampler stream family for this request. Defaults to a submission-order
  /// ticket; fix it explicitly to make a request's masks independent of
  /// when it was submitted (e.g. for replay / A-B comparisons).
  std::optional<std::uint64_t> stream_id;
};

/// The served prediction plus routing metadata.
struct Response {
  nn::Tensor probs;  ///< (1, K) averaged predictive distribution
  int predicted_class = -1;
  double entropy_nats = 0.0;  ///< predictive entropy of `probs`
  bool escalated = false;     ///< router promoted this input to full S
  /// Adaptive shedding answered this routed request from the screening
  /// pass regardless of its entropy (bit-identical to that pass).
  bool shed_downgraded = false;
  int samples_used = 0;  ///< S of the pass that produced `probs`
  int bayes_layers = 0;  ///< resolved L
  std::uint64_t stream_id = 0;
  /// Which registry tenant/version served this request (key 0 / version 1
  /// under the legacy single-model constructor).
  ModelKey model_key = 0;
  std::uint64_t model_version = 1;
  /// This request's resolve found its model evicted and paid the modelled
  /// DDR reload (the response itself is bit-identical either way).
  bool cold_start = false;
  core::RunStats stats;  ///< modelled hardware cost of the producing pass
};

/// What submit() does when the server is overloaded.
enum class OverloadPolicy {
  /// Block the submitting thread on a full queue until a replica frees
  /// space (or the server shuts down, which throws ShutdownError to the
  /// submitter).
  block,
  /// On a full queue, resolve the returned future immediately with
  /// QueueFullError; the request never enters the queue and consumes no
  /// stream-id ticket.
  fail_fast,
  /// Latency-target shedding (requires ServerConfig::latency_target_ms
  /// > 0): while the served p99 exceeds the target, routed requests are
  /// admitted DOWNGRADED to screening-only, and non-routed requests are
  /// rejected with QueueFullError unless their modelled cost still fits
  /// the latency budget on top of the queue's modelled backlog. A full
  /// queue (max_queue_depth) still rejects outright. Decisions are a pure
  /// function of (queue contents, stats window, request) — see
  /// adaptive_admission.
  adaptive,
};

/// How an idle replica picks its next per-(model, shape) batch group.
enum class DispatchMode {
  /// Greedy FIFO: coalesce around the oldest queued request.
  fifo,
  /// Longest-processing-time-first: coalesce the per-(model, shape) group
  /// with the highest modelled cost (serve::CostModel over each request's
  /// first accelerator pass, calibrated wall milliseconds so costs are
  /// cross-model comparable, cold reloads included). Ties fall back to the
  /// oldest group. Default.
  cost_aware,
};

/// The distinct error a backpressure rejection carries: clients can tell
/// "the server is overloaded, retry later" apart from malformed-request
/// (std::invalid_argument) and shutdown (ShutdownError) failures. Thrown
/// into the future by fail_fast and by adaptive shedding.
class QueueFullError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A per-tenant quota rejection (ModelConfig::max_queued): THIS tenant has
/// its share of the queue, not the whole server. Derives from
/// QueueFullError so generic overload handling keeps working; counted in
/// ServerStats::quota_rejected. Applied under every overload policy — a
/// quota'd tenant is rejected, never blocked, so one tenant's burst cannot
/// capture submitter threads.
class QuotaExceededError : public QueueFullError {
 public:
  using QueueFullError::QueueFullError;
};

/// The distinct error shutdown delivers to submitters: thrown by submit()
/// after shutdown() and to submitters blocked on a full queue when
/// shutdown arrives — a woken submitter NEVER enqueues after the
/// dispatcher stopped. Derives from std::runtime_error, so pre-existing
/// catch sites keep working.
class ShutdownError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ServerConfig {
  /// Most requests coalesced into one accelerator batch group.
  int max_batch = 8;
  /// How long an idle replica lingers for more requests after the first.
  std::chrono::microseconds batch_linger{200};
  /// Total worker-lane budget across all replicas (0 = hardware
  /// concurrency). Each replica's flattened pair loop is capped to
  /// max(1, budget / num_replicas) lanes of the shared pool, so R replicas
  /// partition the pool instead of oversubscribing it. Purely a scheduling
  /// knob; responses are bit-identical for every value.
  int num_threads = 0;
  /// Executor shared by every replica (non-owning; must outlive the
  /// server). nullptr selects the process-wide runtime::shared_pool().
  runtime::ThreadPool* pool = nullptr;
  /// R: accelerator replicas serving the queue concurrently. Replicas
  /// share each quantized network read-only; responses are bit-identical
  /// for every replica count (sampler lanes depend only on stream ids).
  int num_replicas = 1;
  /// Queue bound for backpressure; 0 = unbounded (no fixed admission
  /// bound; adaptive shedding still applies under ::adaptive).
  int max_queue_depth = 0;
  /// What submit() does under overload (see OverloadPolicy).
  OverloadPolicy overload_policy = OverloadPolicy::block;
  /// Group-selection strategy of idle replicas (see DispatchMode).
  /// Scheduling only — responses are bit-identical in both modes.
  DispatchMode dispatch_mode = DispatchMode::cost_aware;
  /// Cost-aware anti-starvation aging: each queued group's LPT score is its
  /// summed modelled first-pass cost PLUS aging_weight * (tickets issued
  /// since the group's oldest request was admitted). A cheap group's score
  /// therefore grows continuously with the traffic that passes it, so it
  /// is eventually picked no matter how costly the competition — the
  /// continuous replacement of the old hard "force the head after 4
  /// bypasses" guard. Units: calibrated wall milliseconds per ticket of
  /// age. Deterministic (ticket counts, no wall clock); scheduling only —
  /// responses are bit-identical for every value. 0 disables aging.
  double aging_weight = 0.01;
  /// Wall-clock p99 target (milliseconds) for OverloadPolicy::adaptive;
  /// must be > 0 under that policy, ignored otherwise.
  double latency_target_ms = 0.0;
  /// Under ::adaptive, measure one accelerator pass at construction and
  /// scale the cost model's modelled milliseconds onto the measured wall
  /// clock (core::PerfCalibration). Disable for tests that want modelled
  /// milliseconds compared against the target as-is.
  bool calibrate_cost_model = true;
  /// Ring capacity of the adaptive admission-decision log (0 = disabled).
  /// Tests and replay harnesses read it via Server::admission_log().
  int admission_log_capacity = 0;
  /// Escalation reuse: when a routed request escalates, rerun only the
  /// num_samples - screening_samples NEW samples (via
  /// core::Accelerator::ImageRequest::sample_offset) and merge the two
  /// sample-window averages, instead of recomputing the full S from
  /// scratch. Cuts the escalation pass's cost by the screening fraction and
  /// tightens the adaptive policy's admission bound to match
  /// (CostModel::admission_ms). The merged response is deterministic (same
  /// mask streams as a direct full-S request) but NOT bit-identical to one:
  /// each window is averaged before merging, so the float summation order
  /// differs. Default off to preserve the strict escalation bit-identity
  /// documented above.
  bool reuse_screening_samples = false;
  /// Registry name served when Request::model is empty. Must name a
  /// published model of the registry handed to the multi-tenant
  /// constructor; the legacy single-model constructor publishes its
  /// accelerator's network under exactly this name.
  std::string default_model;
  /// When non-empty, journal every submission to this trace file (see
  /// serve/trace.h): stimulus + golden response checksum per request, plus
  /// the adaptive admission log and the model table of every tenant the
  /// records reference. The recorder's ring is flushed by the replica
  /// workers between batches and finalized by shutdown(). Throws from the
  /// constructor when the file cannot be created.
  std::string trace_path;
  /// Workload id stamped into the trace header — names the weights fixture
  /// for standalone replay tools (see TraceMeta::workload_id). 0 falls
  /// back to the default model's ModelConfig::workload_id.
  std::uint32_t trace_workload_id = 0;
  /// Trace rotation threshold: when > 0 the recorder rolls to a new segment
  /// file (`<trace_path>.000`, `.001`, ...) whenever the current segment
  /// reaches this many bytes. Every segment is an independently valid,
  /// independently replayable trace (own header, own model table, own
  /// trailer). 0 writes one unrotated file at trace_path.
  std::uint64_t trace_max_bytes = 0;
};

/// Aggregate serving counters (monotonic since construction) plus latency
/// percentiles over a sliding window of recently served requests.
/// Invariants (once the queue is drained): requests + rejected ==
/// submitted; shed_downgraded <= requests; shed_rejected + quota_rejected
/// <= rejected — equivalently (requests - shed_downgraded) +
/// shed_downgraded + rejected == submitted (full-quality +
/// downgraded-then-served + rejected).
struct ServerStats {
  std::uint64_t submitted = 0;    ///< valid submissions (accepted + rejected)
  std::uint64_t requests = 0;     ///< responses produced
  std::uint64_t rejected = 0;     ///< backpressure rejections (all policies)
  std::uint64_t batches = 0;      ///< accelerator passes issued
  std::uint64_t screened = 0;     ///< requests that took the screening pass
  std::uint64_t escalations = 0;  ///< screened requests promoted to full S
  /// Served screening-only because adaptive shedding downgraded them.
  std::uint64_t shed_downgraded = 0;
  /// Rejections decided by adaptive shedding (subset of `rejected`).
  std::uint64_t shed_rejected = 0;
  /// Rejections by a tenant's ModelConfig::max_queued quota (subset of
  /// `rejected`, disjoint from shed_rejected).
  std::uint64_t quota_rejected = 0;
  /// Admissions whose registry resolve reloaded an evicted model (the
  /// modelled DDR reload was charged to their dispatch/admission cost).
  std::uint64_t cold_starts = 0;
  /// High-water mark of the coalescing queue length; never exceeds
  /// max_queue_depth when that bound is set.
  std::uint64_t peak_queue_depth = 0;
  /// How many served-request samples back the percentiles below (at most
  /// Server::kLatencyWindow).
  std::uint64_t latency_window_count = 0;
  /// End-to-end request latency (submit() to response ready, wall clock,
  /// milliseconds) over the last `Server::kLatencyWindow` served requests;
  /// 0 until the first response.
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
};

/// Per-tenant serving counters (Server::model_stats). A tenant appears
/// once it has been submitted to; `version` tracks the latest version any
/// of its submissions resolved.
struct ModelServeStats {
  std::string name;
  ModelKey key = 0;
  std::uint64_t version = 0;
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;        ///< all rejections of this tenant
  std::uint64_t quota_rejected = 0;  ///< subset of `rejected`
  std::uint64_t cold_starts = 0;
};

/// Percentile with linear interpolation between closest ranks: pct in
/// [0, 100], pct=50 of {1,2,3,4} is 2.5. Sorts a copy; the input need not
/// be ordered. A single sample is every percentile of itself. Throws
/// std::invalid_argument on an empty sample set or an out-of-range (or
/// NaN) pct.
double latency_percentile(std::vector<double> samples, double pct);

/// What the adaptive policy decided for one submission.
enum class AdmissionAction { admit, downgrade, reject };

/// Everything an adaptive admission decision depends on. Snapshotting
/// these makes each decision a pure function — see adaptive_admission —
/// and hence replayable single-threadedly.
struct AdmissionInputs {
  bool queue_full = false;        ///< fixed max_queue_depth bound hit
  double p99_ms = 0.0;            ///< served-latency p99 over the stats window
  double latency_target_ms = 0.0; ///< configured target
  double backlog_ms = 0.0;        ///< calibrated modelled cost of the queue
  double request_ms = 0.0;        ///< calibrated worst-case cost of this request
  bool downgrade_eligible = false;///< routed and therefore screenable
};

/// The deterministic adaptive shedding rule (pure function):
///   1. full queue                         -> reject (hard bound),
///   2. p99 <= target (not overloaded)     -> admit,
///   3. eligible (router on)               -> downgrade to screening-only,
///   4. backlog + request fits the target  -> admit (cheap enough),
///   5. otherwise                          -> reject (the costly are shed).
AdmissionAction adaptive_admission(const AdmissionInputs& inputs);

/// One logged adaptive decision (submission order).
struct AdmissionRecord {
  std::uint64_t submit_seq = 0;  ///< value of ServerStats::submitted when decided
  AdmissionInputs inputs;
  AdmissionAction action = AdmissionAction::admit;
};

/// Batched-serving front end over R replica accelerators and a (possibly
/// shared) model registry. Thread-safe: any number of client threads may
/// submit concurrently; each replica worker thread owns its accelerator
/// binds. The destructor drains every accepted request before returning.
///
/// Batches are grouped per (model version, image shape): a replica only
/// coalesces queued requests whose model snapshot AND (C, H, W) match the
/// chosen group head and leaves the rest queued (for itself on its next
/// pull, or for a concurrently idle replica), so heterogeneous traffic
/// splits into homogeneous accelerator passes instead of faulting — and a
/// shape problem can only ever fail its own request, never a batch
/// neighbour or a replica worker. Version-pointer grouping also means a
/// hot-swap splits old-version and new-version requests into separate
/// batches automatically.
class Server {
 public:
  /// Legacy single-model form: takes ownership of the accelerator,
  /// publishes its network into an internal one-entry registry under
  /// `config.default_model` (normally ""), and serves it replicated
  /// `config.num_replicas` times; `config.pool`/`config.num_threads`
  /// override the accelerator's own executor knobs. Under
  /// OverloadPolicy::adaptive, `config.latency_target_ms` must be
  /// positive, and (unless calibrate_cost_model is off) one measured
  /// accelerator pass anchors the cost model's wall-clock scale before the
  /// replicas start.
  explicit Server(core::Accelerator accelerator, ServerConfig config = {});

  /// Multi-tenant form: serves every model of `registry` (which may keep
  /// gaining tenants and hot-swaps while the server runs — publish() is
  /// the linearization point for in-flight vs. new submissions).
  /// `accel_config` is the shared accelerator configuration every
  /// (replica, model) bind uses: sampler seed, NNE/DDR geometry, kernel
  /// tier. `config.default_model` must already be published.
  Server(std::shared_ptr<ModelRegistry> registry, core::AcceleratorConfig accel_config,
         ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues a request; the future resolves when its batch completes.
  /// Throws std::invalid_argument on malformed options, an unknown model
  /// name, or an image shape that does not match the resolved model; and
  /// ShutdownError after shutdown() has been called (including to
  /// submitters blocked on a full queue when shutdown arrives — a woken
  /// submitter never enqueues). Under fail_fast or adaptive overload the
  /// returned future holds a QueueFullError instead of a value; a tenant
  /// over its ModelConfig::max_queued quota gets QuotaExceededError under
  /// every policy.
  std::future<Response> submit(Request request);

  /// Synchronous convenience: submit + wait.
  Response infer(Request request);

  /// Stops accepting new requests, serves everything already queued,
  /// releases submitters blocked on a full queue, and joins the replica
  /// workers. Idempotent; also run by the destructor.
  void shutdown();

  ServerStats stats() const;

  /// Per-tenant counters, one entry per model that has been submitted to,
  /// in first-submission order.
  std::vector<ModelServeStats> model_stats() const;

  /// The registry this server resolves models against (never null; the
  /// legacy constructor's internal registry for single-model servers).
  const std::shared_ptr<ModelRegistry>& registry() const { return registry_; }

  /// The dispatcher's cost oracle; nullptr when neither cost-aware
  /// dispatch nor adaptive shedding is configured.
  const CostModel* cost_model() const { return cost_model_.get(); }

  /// The logged adaptive admission decisions, oldest first (at most
  /// `admission_log_capacity` retained). Empty unless the adaptive policy
  /// and a positive capacity are configured.
  std::vector<AdmissionRecord> admission_log() const;

  /// An accelerator bound to the default model's version at construction
  /// (replica binds share its network and config). Retained for
  /// single-model callers; under hot-swaps it keeps the construction-time
  /// snapshot.
  const core::Accelerator& accelerator() const { return *anchor_; }

  /// Latency-percentile window size (served requests retained for the
  /// ServerStats percentiles).
  static constexpr std::size_t kLatencyWindow = 1024;

  /// Accelerator binds a replica keeps alive at once (per-replica LRU
  /// cache over model versions; a bind is a config struct + shared
  /// pointers — the weights and plans live in the registry).
  static constexpr std::size_t kReplicaBindCache = 8;

 private:
  struct Pending {
    nn::Tensor image;  // (1, C, H, W)
    RequestOptions options;
    ModelRegistry::Bound bound;      // resolved model snapshot (immutable)
    std::uint64_t stream_id = 0;
    std::uint64_t ticket = 0;        // submission-order ticket (aging term)
    bool shed_downgrade = false;     // adaptive: answer from the screening pass
    double first_pass_ms = 0.0;      // calibrated dispatch cost (group ranking)
    double admission_ms = 0.0;       // calibrated worst-case cost (backlog)
    std::uint64_t trace_seq = 0;     // recorder slot, valid iff traced
    bool traced = false;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  /// One cached (model version -> accelerator) bind of a replica.
  struct Bind {
    std::shared_ptr<const ModelVersion> version;
    std::unique_ptr<core::Accelerator> accelerator;
    std::uint64_t last_use = 0;
  };

  /// One replica worker thread and its accelerator-bind cache. The cache
  /// is only touched by the owning worker thread.
  struct Replica {
    std::vector<Bind> binds;
    std::uint64_t bind_tick = 0;
    std::thread thread;
  };

  void init();
  void replica_loop(Replica& replica);
  /// The replica's accelerator for this model version, binding (and LRU
  /// evicting) as needed. Worker-thread only.
  core::Accelerator& bind_replica(Replica& replica, const ModelRegistry::Bound& bound);
  void serve_batch(Replica& replica, std::vector<Pending> batch);
  // Latency p99 over the current window; requires mutex_ held. Re-sorts
  // only when the window changed since the last call.
  double window_p99_locked() const;
  // Calibrated modelled backlog of the queue; requires mutex_ held.
  double queue_backlog_ms_locked() const;
  void record_admission_locked(const AdmissionInputs& inputs, AdmissionAction action);
  void append_latency_locked(double ms);
  // The per-tenant counter row for this version's tenant, growing the
  // table as tenants first appear; requires mutex_ held.
  ModelServeStats& model_stats_locked(const ModelVersion& version);

  ServerConfig config_;
  std::shared_ptr<ModelRegistry> registry_;
  core::AcceleratorConfig accel_config_;  // pool/threads resolved per replica
  std::unique_ptr<core::Accelerator> anchor_;  // default model, construction-time
  std::unique_ptr<CostModel> cost_model_;  // set iff cost-aware or adaptive
  std::unique_ptr<TraceRecorder> recorder_;  // set iff trace_path configured
  std::vector<std::unique_ptr<Replica>> replicas_;

  mutable std::mutex mutex_;
  std::condition_variable queue_ready_;  // replicas wait for work
  std::condition_variable queue_space_;  // blocked submitters wait for room
  std::deque<Pending> queue_;
  /// Queued requests per tenant key (quota accounting), indexed by
  /// ModelKey; grows as tenants appear.
  std::vector<std::uint64_t> queued_by_key_;
  /// Per-tenant counters, in first-submission order.
  std::vector<ModelServeStats> model_stats_;
  std::uint64_t next_ticket_ = 0;
  bool stopping_ = false;
  ServerStats stats_;
  std::vector<double> latency_window_;  // ring buffer, capacity kLatencyWindow
  std::size_t latency_next_ = 0;
  std::uint64_t window_version_ = 0;  // bumped per append (p99 cache key)
  mutable std::vector<double> sorted_window_;  // lazily re-sorted copy
  mutable std::uint64_t sorted_version_ = ~std::uint64_t{0};
  std::vector<AdmissionRecord> admission_log_;  // ring, capacity from config
  std::size_t admission_next_ = 0;
};

}  // namespace bnn::serve

#endif  // BNN_SERVE_SERVER_H
