// Minimal blocking thread pool for the Monte Carlo sampling hot path.
//
// The pool owns `size() - 1` worker threads; the caller of `parallel_for`
// participates as a worker on its own job, so a pool of size 1 never spawns
// a thread and runs the body inline (the sequential path). Work is handed
// out as single indices from an atomic cursor — MC samples are coarse
// enough that per-index dispatch overhead is negligible, and it
// load-balances the uneven per-sample costs of partial-Bayesian replay.
//
// Multiple jobs may be IN FLIGHT AT ONCE: concurrent `parallel_for` callers
// (e.g. several serving replicas sharing the process-wide pool) each run
// their own job, and idle workers join whichever active job still has
// helper slots (oldest first). `max_workers` therefore partitions the pool:
// R replicas each submitting with max_workers = size()/R slice the workers
// between them instead of serializing behind one another.
//
// Determinism contract: the pool makes no ordering promises, so callers
// that need bit-identical results across thread counts must (a) give every
// index its own independent random stream and (b) write results into
// per-index slots, reducing them in a fixed order afterwards. Both MC
// predictive runners (bayes::mc_predict, core::Accelerator::predict) follow
// this pattern.
#ifndef BNN_RUNTIME_THREAD_POOL_H
#define BNN_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bnn::runtime {

/// Resolves a thread-count knob: 0 means "auto" (hardware concurrency),
/// any positive value is taken literally. Throws on negative values.
int resolve_thread_count(int requested);

/// Blocking fork-join pool. A pool is reusable across any number of
/// `parallel_for` jobs; constructing one is cheap but not free (it spawns
/// OS threads), so serving loops should reuse one pool — their own, or the
/// process-wide `shared_pool()` — instead of building one per call.
///
/// Thread-safety: `parallel_for` may be called from multiple threads
/// concurrently; the jobs run CONCURRENTLY, sharing the worker threads
/// (each job bounded by its own `max_workers` cap). It must NOT be called
/// from inside a running body (no nesting) — except for calls that take
/// the inline sequential path (`max_workers == 1`, `count <= 1`, or a
/// pool of size 1), which never touch the pool's scheduling state.
class ThreadPool {
 public:
  /// `num_threads` follows the resolve_thread_count convention (0 = auto).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread of parallel_for.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, count), blocking until all indices
  /// have finished. Indices are claimed dynamically; every index runs
  /// exactly once. If any invocation throws, the remaining indices still
  /// run and the first exception is rethrown to the caller.
  ///
  /// `max_workers` caps how many workers (including the caller) touch this
  /// job: 0 means "all of them", 1 runs the job inline on the calling
  /// thread. The cap only changes scheduling, never results — callers
  /// honouring the determinism contract above get bit-identical output for
  /// every cap. This is how a shared, hardware-sized pool serves callers
  /// that ask for fewer threads (num_threads knobs), and how concurrent
  /// callers slice the pool between them (worker partitioning).
  void parallel_for(std::int64_t count, const std::function<void(std::int64_t)>& body,
                    int max_workers = 0);

 private:
  struct Job {
    const std::function<void(std::int64_t)>* body = nullptr;
    std::int64_t count = 0;
    std::atomic<std::int64_t> cursor{0};
    std::atomic<std::int64_t> done{0};
    std::atomic<int> helper_slots{0};  // how many non-caller workers may join
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  void worker_loop();
  void chew(const std::shared_ptr<Job>& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::vector<std::shared_ptr<Job>> active_;  // in-flight jobs, guarded by mutex_
  std::uint64_t generation_ = 0;              // bumped per new job, guarded by mutex_
  bool stop_ = false;                         // guarded by mutex_
};

/// Process-wide shared pool, sized to the hardware concurrency, created on
/// first use and alive until process exit. This is the default executor of
/// the Monte Carlo runners and the serving layer: reusing it across calls
/// avoids the thread spawn/join cost that per-call pools pay, which
/// dominates for serving workloads issuing many small-S requests.
/// Callers wanting fewer lanes pass `max_workers` to parallel_for instead
/// of building a smaller pool; concurrent callers (serving replicas) share
/// the workers, each within its own cap.
ThreadPool& shared_pool();

}  // namespace bnn::runtime

#endif  // BNN_RUNTIME_THREAD_POOL_H
