#include "runtime/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace bnn::runtime {

int resolve_thread_count(int requested) {
  util::require(requested >= 0, "thread pool: thread count must be >= 0 (0 = auto)");
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int resolved = resolve_thread_count(num_threads);
  workers_.reserve(static_cast<std::size_t>(resolved - 1));
  for (int i = 0; i < resolved - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::chew(const std::shared_ptr<Job>& job) {
  for (;;) {
    const std::int64_t index = job->cursor.fetch_add(1, std::memory_order_relaxed);
    if (index >= job->count) return;
    try {
      (*job->body)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->error_mutex);
      if (!job->error) job->error = std::current_exception();
    }
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == job->count) {
      std::lock_guard<std::mutex> lock(mutex_);
      job_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this, seen] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    // Scan the active jobs (oldest first) and help every one we can claim
    // a slot on. Helpers must hold one of a job's slots; a declined slot
    // leaves that job to its cap's worth of workers — that is how a capped
    // job (`max_workers`) shares a pool with concurrent submitters. After
    // chewing, rescan: the job list may have changed in the meantime.
    for (bool worked = true; worked;) {
      worked = false;
      for (std::size_t i = 0; i < active_.size(); ++i) {
        const std::shared_ptr<Job> job = active_[i];
        if (job->helper_slots.fetch_sub(1, std::memory_order_acq_rel) > 0) {
          lock.unlock();
          chew(job);
          lock.lock();
          worked = true;
          break;  // active_ may have changed while unlocked
        }
        job->helper_slots.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void ThreadPool::parallel_for(std::int64_t count,
                              const std::function<void(std::int64_t)>& body,
                              int max_workers) {
  util::require(max_workers >= 0, "thread pool: max_workers must be >= 0 (0 = all)");
  if (count <= 0) return;

  const int cap = max_workers == 0 ? size() : std::min(max_workers, size());

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->count = count;
  // Never wake more helpers than there are indices beyond the caller's first.
  job->helper_slots.store(static_cast<int>(std::min<std::int64_t>(cap - 1, count - 1)),
                          std::memory_order_relaxed);

  if (workers_.empty() || count == 1 || cap == 1) {
    chew(job);  // inline sequential path, no synchronization (nestable)
  } else {
    // Concurrent submitters run concurrently: each job joins the active
    // list and idle workers split themselves across the listed jobs by
    // claiming helper slots. The caller works its own job unconditionally.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      active_.push_back(job);
      ++generation_;
    }
    work_ready_.notify_all();
    chew(job);
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&job] {
      return job->done.load(std::memory_order_acquire) == job->count;
    });
    active_.erase(std::find(active_.begin(), active_.end(), job));
  }

  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& shared_pool() {
  static ThreadPool pool(0);  // hardware-sized; joined at process exit
  return pool;
}

}  // namespace bnn::runtime
