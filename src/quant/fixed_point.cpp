#include "quant/fixed_point.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace bnn::quant {

FixedMultiplier quantize_multiplier(double value) {
  util::require(std::isfinite(value), "quantize_multiplier: value must be finite");
  if (value == 0.0) return {0, 0};
  int shift = 0;
  const double fraction = std::frexp(value, &shift);  // value = fraction * 2^shift
  auto q_fixed = static_cast<std::int64_t>(std::llround(fraction * (1ll << 31)));
  util::ensure(std::llabs(q_fixed) <= (1ll << 31), "quantize_multiplier: bad frexp result");
  if (q_fixed == (1ll << 31)) {
    q_fixed /= 2;
    ++shift;
  }
  if (q_fixed == -(1ll << 31)) {
    q_fixed /= 2;
    ++shift;
  }
  util::require(shift <= 30 && shift >= -31,
                "quantize_multiplier: magnitude out of representable range");
  return {static_cast<std::int32_t>(q_fixed), shift};
}

double multiplier_value(FixedMultiplier m) {
  return static_cast<double>(m.mult) * std::ldexp(1.0, m.shift - 31);
}

std::int32_t saturating_rounding_doubling_high_mul(std::int32_t a, std::int32_t b) {
  const bool overflow =
      a == b && a == std::numeric_limits<std::int32_t>::min();
  const std::int64_t ab = static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b);
  const std::int32_t nudge = ab >= 0 ? (1 << 30) : (1 - (1 << 30));
  const auto high = static_cast<std::int32_t>((ab + nudge) / (1ll << 31));
  return overflow ? std::numeric_limits<std::int32_t>::max() : high;
}

std::int32_t rounding_divide_by_pot(std::int32_t x, int exponent) {
  util::require(exponent >= 0 && exponent <= 31, "rounding_divide_by_pot: bad exponent");
  if (exponent == 0) return x;
  const std::int32_t mask = static_cast<std::int32_t>((1ll << exponent) - 1);
  const std::int32_t remainder = x & mask;
  const std::int32_t threshold = (mask >> 1) + (x < 0 ? 1 : 0);
  return (x >> exponent) + (remainder > threshold ? 1 : 0);
}

std::int32_t fixed_multiply(std::int32_t x, FixedMultiplier m) {
  const int left_shift = m.shift > 0 ? m.shift : 0;
  const int right_shift = m.shift > 0 ? 0 : -m.shift;
  const std::int32_t shifted = static_cast<std::int32_t>(
      static_cast<std::int64_t>(x) * (1ll << left_shift));
  return rounding_divide_by_pot(saturating_rounding_doubling_high_mul(shifted, m.mult),
                                right_shift);
}

std::int8_t saturate_int8(std::int32_t x) {
  if (x < -128) return -128;
  if (x > 127) return 127;
  return static_cast<std::int8_t>(x);
}

std::int32_t rounded_div(std::int64_t numerator, std::int64_t denominator) {
  util::require(denominator > 0, "rounded_div: denominator must be positive");
  if (numerator >= 0)
    return static_cast<std::int32_t>((numerator + denominator / 2) / denominator);
  return static_cast<std::int32_t>(-((-numerator + denominator / 2) / denominator));
}

}  // namespace bnn::quant
