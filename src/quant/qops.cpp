#include "quant/qops.h"

#include <algorithm>
#include <limits>

#include "nn/activations.h"
#include "nn/bitpack_kernels.h"
#include "nn/gemm_kernels.h"
#include "util/check.h"

namespace bnn::quant {

namespace {

using nn::kernels::Tier;

// Resolves the tier CAP against what this (layer, input) pair supports:
// Tier::bitpack demotes to Tier::int8 unless the weights are binarizable AND
// the activations are two-valued. On success fills lo/hi.
Tier resolve_tier(Tier tier, const LayerExecPlan& plan, const QTensor& input, std::int8_t* lo,
                  std::int8_t* hi) {
  if (tier != Tier::bitpack) return tier;
  if (!plan.weights_binarizable || !two_valued_activations(input, lo, hi)) return Tier::int8;
  return Tier::bitpack;
}

// PE + FU/BN + FU/SC + FU/ReLU for one layer, before pooling: returns the
// int8 map of conv_out_h x conv_out_w positions. All three tiers produce the
// same int32 accumulator values (int32 accumulation is exact and associative;
// the packed closed form is exact by the qplan.h identity), hence identical
// int8 bits after the FU stages.
QTensor compute_pre_pool(const QLayer& layer, const LayerExecPlan& plan, Tier tier,
                         const QTensor& input, const QTensor* shortcut) {
  const nn::HwLayer& g = layer.geom;
  const std::int32_t zp_in = layer.in.zero_point;
  const std::int32_t zp_out = layer.out.zero_point;
  const int terms = plan.terms;

  std::int8_t lo = 0, hi = 0;
  tier = resolve_tier(tier, plan, input, &lo, &hi);
  const std::int32_t base = static_cast<std::int32_t>(lo) - zp_in;
  const std::int32_t delta = static_cast<std::int32_t>(hi) - lo;

  // Packed-weight layers have no byte rows; the int8/scalar tiers and conv
  // border windows need them, so reconstruct (exactly) when required. This
  // is the reference executor — the allocation is acceptable here.
  std::vector<std::int8_t> wrows;
  const std::int8_t* wmatrix = layer.weights.data();
  if (layer.weights_packed &&
      (tier != Tier::bitpack || g.op == nn::HwLayer::Op::conv)) {
    wrows.resize(static_cast<std::size_t>(g.out_c) * terms);
    for (int f = 0; f < g.out_c; ++f)
      layer.materialize_weight_row(f, wrows.data() + static_cast<std::size_t>(f) * terms);
    wmatrix = wrows.data();
  }
  const auto weight_row = [&](int f) {
    return wmatrix + static_cast<std::size_t>(f) * terms;
  };

  QTensor pre({g.out_c, g.conv_out_h, g.conv_out_w}, layer.out);
  if (g.op == nn::HwLayer::Op::linear) {
    util::require(input.numel() == g.in_c, "qops: linear input size mismatch");
    std::vector<std::uint64_t> xbits;
    std::int32_t x_pop = 0;
    if (tier == Tier::bitpack) {
      xbits.resize(static_cast<std::size_t>(plan.words));
      x_pop = nn::kernels::pack_eq_bits(input.data.data(), terms, hi, xbits.data());
    }
    for (int f = 0; f < g.out_c; ++f) {
      std::int32_t acc = layer.bias[static_cast<std::size_t>(f)];
      if (tier == Tier::bitpack) {
        acc += packed_row_dot(plan, f, xbits.data(), x_pop, base, delta);
      } else if (tier == Tier::int8) {
        // int32 accumulation is exact, so the vectorized dot kernel matches
        // the plain per-term loop bit-for-bit.
        acc += nn::kernels::dot_i8_zp(input.data.data(), weight_row(f), terms, zp_in);
      } else {
        const std::int8_t* w = weight_row(f);
        for (int t = 0; t < terms; ++t)
          acc += (static_cast<std::int32_t>(input.data[static_cast<std::size_t>(t)]) - zp_in) *
                 static_cast<std::int32_t>(w[t]);
      }
      std::int32_t q = fixed_multiply(acc, layer.requant[static_cast<std::size_t>(f)]) +
                       layer.post_add[static_cast<std::size_t>(f)] + zp_out;
      if (g.has_relu) q = std::max(q, zp_out);
      pre.data[static_cast<std::size_t>(f)] = saturate_int8(q);
    }
    return pre;
  }

  util::require(input.channels() == g.in_c && input.height() == g.in_h &&
                    input.width() == g.in_w,
                "qops: conv input shape mismatch");
  if (g.has_shortcut) {
    util::require(shortcut != nullptr, "qops: missing shortcut operand");
    util::require(shortcut->channels() == g.out_c &&
                      shortcut->height() == g.conv_out_h &&
                      shortcut->width() == g.conv_out_w,
                  "qops: shortcut operand shape mismatch");
  }

  // Hoisted conv index math (built once per layer in the LayerExecPlan,
  // shared with core/nne.cpp): term t addresses input channel t/(k*k) at
  // kernel offset (term_dh[t], term_dw[t]); term_off[t] is the flat input
  // offset of term t relative to the window's top-left element, valid
  // wherever the window is in bounds. int32 accumulation is exact, so the
  // gather kernel matches the historical per-position (c, kh, kw) loop
  // bit-for-bit (pinned by tests/test_quant.cpp on strided/padded shapes).
  const std::int8_t* in_data = input.data.data();
  const std::int32_t* term_dh = plan.term_dh.data();
  const std::int32_t* term_dw = plan.term_dw.data();
  const std::int32_t* term_off = plan.term_off.data();

  const std::int32_t zp_sc =
      g.has_shortcut ? shortcut->params.zero_point : 0;

  // Border window: padding terms contribute zero; every term bound-checked.
  // Shared verbatim by all tiers (the packed path never packs borders), so
  // border bits agree across tiers by construction.
  const auto border_dot = [&](const std::int8_t* w, int ih0, int iw0) {
    std::int32_t acc = 0;
    for (int t = 0; t < terms; ++t) {
      const int ih = ih0 + term_dh[static_cast<std::size_t>(t)];
      const int iw = iw0 + term_dw[static_cast<std::size_t>(t)];
      if (ih < 0 || ih >= g.in_h || iw < 0 || iw >= g.in_w) continue;
      acc += (static_cast<std::int32_t>(
                  in_data[term_off[static_cast<std::size_t>(t)] +
                          static_cast<std::ptrdiff_t>(ih0) * g.in_w + iw0]) -
              zp_in) *
             static_cast<std::int32_t>(w[t]);
    }
    return acc;
  };

  // FU chain epilogue for one retiring accumulator.
  const auto fu_store = [&](int f, int oh, int ow, std::int32_t acc) {
    std::int32_t q = fixed_multiply(acc, layer.requant[static_cast<std::size_t>(f)]) +
                     layer.post_add[static_cast<std::size_t>(f)] + zp_out;
    if (g.has_shortcut)
      q += fixed_multiply(static_cast<std::int32_t>(shortcut->at(f, oh, ow)) - zp_sc,
                          layer.shortcut_rescale);
    if (g.has_relu) q = std::max(q, zp_out);
    pre.at(f, oh, ow) = saturate_int8(q);
  };

  if (tier == Tier::bitpack) {
    // Position-outer so each interior window is packed ONCE and amortized
    // over all out_c filter rows. Each output element is written exactly
    // once, so the loop-order change from the f-outer tiers is observationally
    // identical.
    std::vector<std::uint64_t> xbits(static_cast<std::size_t>(plan.words));
    for (int oh = 0; oh < g.conv_out_h; ++oh) {
      for (int ow = 0; ow < g.conv_out_w; ++ow) {
        const int ih0 = oh * g.stride - g.pad;
        const int iw0 = ow * g.stride - g.pad;
        const bool interior =
            ih0 >= 0 && iw0 >= 0 && ih0 + g.kernel <= g.in_h && iw0 + g.kernel <= g.in_w;
        std::int32_t x_pop = 0;
        if (interior)
          x_pop = nn::kernels::pack_eq_bits_gather(
              in_data + static_cast<std::size_t>(ih0) * g.in_w + iw0, term_off, terms, hi,
              xbits.data());
        for (int f = 0; f < g.out_c; ++f) {
          std::int32_t acc = layer.bias[static_cast<std::size_t>(f)];
          acc += interior ? packed_row_dot(plan, f, xbits.data(), x_pop, base, delta)
                          : border_dot(weight_row(f), ih0, iw0);
          fu_store(f, oh, ow, acc);
        }
      }
    }
    return pre;
  }

  for (int f = 0; f < g.out_c; ++f) {
    const std::int8_t* w = weight_row(f);
    for (int oh = 0; oh < g.conv_out_h; ++oh) {
      for (int ow = 0; ow < g.conv_out_w; ++ow) {
        const int ih0 = oh * g.stride - g.pad;
        const int iw0 = ow * g.stride - g.pad;
        std::int32_t acc = layer.bias[static_cast<std::size_t>(f)];
        if (tier == Tier::int8 && ih0 >= 0 && iw0 >= 0 && ih0 + g.kernel <= g.in_h &&
            iw0 + g.kernel <= g.in_w) {
          // Interior window: every term in bounds, gather through the
          // precomputed offset table. The scalar tier takes the checked
          // border loop for every window instead.
          acc += nn::kernels::dot_i8_zp_gather(
              in_data + static_cast<std::size_t>(ih0) * g.in_w + iw0,
              term_off, w, terms, zp_in);
        } else {
          acc += border_dot(w, ih0, iw0);
        }
        fu_store(f, oh, ow, acc);
      }
    }
  }
  return pre;
}

// FU/Pool stage: int8-domain max or (rounded) average pooling.
QTensor apply_pool(const QLayer& layer, QTensor pre) {
  const nn::HwLayer& g = layer.geom;
  if (g.pool_kernel == 0 && !g.pool_is_global) return pre;

  QTensor out({g.out_c, g.out_h, g.out_w}, layer.out);
  if (g.pool_is_global) {
    const std::int64_t area = static_cast<std::int64_t>(g.conv_out_h) * g.conv_out_w;
    for (int f = 0; f < g.out_c; ++f) {
      std::int64_t sum = 0;
      for (int h = 0; h < g.conv_out_h; ++h)
        for (int w = 0; w < g.conv_out_w; ++w) sum += pre.at(f, h, w);
      out.at(f, 0, 0) = saturate_int8(rounded_div(sum, area));
    }
    return out;
  }

  for (int f = 0; f < g.out_c; ++f) {
    for (int oh = 0; oh < g.out_h; ++oh) {
      for (int ow = 0; ow < g.out_w; ++ow) {
        if (g.pool_is_max) {
          std::int8_t best = std::numeric_limits<std::int8_t>::min();
          for (int kh = 0; kh < g.pool_kernel; ++kh)
            for (int kw = 0; kw < g.pool_kernel; ++kw)
              best = std::max(best,
                              pre.at(f, oh * g.pool_stride + kh, ow * g.pool_stride + kw));
          out.at(f, oh, ow) = best;
        } else {
          std::int64_t sum = 0;
          for (int kh = 0; kh < g.pool_kernel; ++kh)
            for (int kw = 0; kw < g.pool_kernel; ++kw)
              sum += pre.at(f, oh * g.pool_stride + kh, ow * g.pool_stride + kw);
          out.at(f, oh, ow) = saturate_int8(
              rounded_div(sum, static_cast<std::int64_t>(g.pool_kernel) * g.pool_kernel));
        }
      }
    }
  }
  return out;
}

// DU stage: one drop bit per output filter in ascending order.
void apply_dropout(const QLayer& layer, QTensor& out, nn::MaskSource& masks,
                   FixedMultiplier dropout_keep) {
  const std::int32_t zp = layer.out.zero_point;
  const int plane = out.height() * out.width();
  for (int f = 0; f < out.channels(); ++f) {
    const bool drop = masks.next_drop();
    std::int8_t* row = out.data.data() + static_cast<std::size_t>(f) * plane;
    if (drop) {
      std::fill(row, row + plane, saturate_int8(zp));
    } else {
      for (int i = 0; i < plane; ++i)
        row[i] = saturate_int8(
            fixed_multiply(static_cast<std::int32_t>(row[i]) - zp, dropout_keep) + zp);
    }
  }
}

// ref_forward with a prebuilt network plan (the public wrapper builds one;
// ref_mc_predict builds one per call and reuses it across samples).
std::vector<QTensor> forward_with_plan(const QuantNetwork& net, const NetworkExecPlan& plan,
                                       Tier tier, const QTensor& image, int bayes_layers,
                                       nn::MaskSource* masks) {
  util::require(bayes_layers >= 0 && bayes_layers <= net.num_sites,
                "ref_forward: bayes_layers out of range");
  const int first_active_site = net.num_sites - bayes_layers;
  std::vector<QTensor> outputs;
  outputs.reserve(net.layers.size());
  for (std::size_t l = 0; l < net.layers.size(); ++l) {
    const QLayer& layer = net.layers[l];
    const QTensor& input =
        layer.input_source < 0 ? image
                               : outputs[static_cast<std::size_t>(layer.input_source)];
    const QTensor* shortcut =
        layer.geom.has_shortcut
            ? &outputs[static_cast<std::size_t>(layer.shortcut_source)]
            : nullptr;
    const bool active =
        layer.geom.is_bayes_site && layer.geom.site_index >= first_active_site;
    outputs.push_back(ref_run_layer(layer, plan.layer(static_cast<int>(l)), tier, input,
                                    shortcut, active, masks, net.dropout_keep));
  }
  return outputs;
}

}  // namespace

QTensor ref_run_layer(const QLayer& layer, const LayerExecPlan& plan, nn::kernels::Tier tier,
                      const QTensor& input, const QTensor* shortcut, bool site_active,
                      nn::MaskSource* masks, FixedMultiplier dropout_keep) {
  QTensor out = apply_pool(layer, compute_pre_pool(layer, plan, tier, input, shortcut));
  if (site_active) {
    util::require(masks != nullptr, "qops: active site requires a mask source");
    apply_dropout(layer, out, *masks, dropout_keep);
  }
  return out;
}

QTensor ref_run_layer(const QLayer& layer, const QTensor& input, const QTensor* shortcut,
                      bool site_active, nn::MaskSource* masks, FixedMultiplier dropout_keep) {
  return ref_run_layer(layer, build_layer_exec_plan(layer), Tier::int8, input, shortcut,
                       site_active, masks, dropout_keep);
}

std::vector<QTensor> ref_forward(const QuantNetwork& net, const QTensor& image,
                                 int bayes_layers, nn::MaskSource* masks) {
  return forward_with_plan(net, build_network_exec_plan(net), Tier::int8, image, bayes_layers,
                           masks);
}

nn::Tensor ref_logits(const QuantNetwork& net, const QTensor& final_output) {
  util::require(final_output.numel() == net.num_classes, "ref_logits: wrong output size");
  nn::Tensor logits({1, net.num_classes});
  for (int k = 0; k < net.num_classes; ++k)
    logits.v2(0, k) = final_output.params.scale *
                      static_cast<float>(final_output.data[static_cast<std::size_t>(k)] -
                                         final_output.params.zero_point);
  return logits;
}

nn::Tensor ref_mc_predict(const QuantNetwork& net, const nn::Tensor& images, int bayes_layers,
                          int num_samples, nn::MaskSource& masks,
                          bool use_intermediate_caching) {
  // Legacy single-stream form: every (image, sample) forwards to the one
  // shared source, preserving the original sequential consumption order.
  struct Borrowed final : nn::MaskSource {
    explicit Borrowed(nn::MaskSource& inner) : inner_(inner) {}
    bool next_drop() override { return inner_.next_drop(); }
    nn::MaskSource& inner_;
  };
  return ref_mc_predict(
      net, images, bayes_layers, num_samples,
      [&masks](int, int) { return std::make_unique<Borrowed>(masks); },
      use_intermediate_caching);
}

nn::Tensor ref_mc_predict(const QuantNetwork& net, const nn::Tensor& images, int bayes_layers,
                          int num_samples, const MaskStreamFactory& streams,
                          bool use_intermediate_caching) {
  util::require(images.dim() == 4, "ref_mc_predict expects NCHW images");
  util::require(num_samples >= 1, "ref_mc_predict: need at least one sample");
  const int batch = images.size(0);
  nn::Tensor probs({batch, net.num_classes});

  const int cut = net.cut_layer_for(bayes_layers);
  const int first_active_site = net.num_sites - bayes_layers;
  // One plan for the whole batch: the per-layer index tables and weight
  // masks are input-independent.
  const NetworkExecPlan plan = build_network_exec_plan(net);

  for (int n = 0; n < batch; ++n) {
    const QTensor image = quantize_image(images, n, net.input);
    nn::Tensor accumulated({1, net.num_classes});
    if (bayes_layers == 0) {
      const std::vector<QTensor> outputs =
          forward_with_plan(net, plan, Tier::int8, image, 0, nullptr);
      accumulated = nn::softmax_rows(ref_logits(net, outputs.back()));
    } else if (!use_intermediate_caching) {
      for (int s = 0; s < num_samples; ++s) {
        const std::unique_ptr<nn::MaskSource> lane = streams(n, s);
        const std::vector<QTensor> outputs =
            forward_with_plan(net, plan, Tier::int8, image, bayes_layers, lane.get());
        accumulated.add_(nn::softmax_rows(ref_logits(net, outputs.back())));
      }
      accumulated.scale_(1.0f / static_cast<float>(num_samples));
    } else {
      // Prefix once: run layers [0, cut] without the cut layer's dropout —
      // its pre-DU output is the on-chip cached boundary.
      std::vector<QTensor> outputs;
      outputs.reserve(net.layers.size());
      for (int l = 0; l <= cut; ++l) {
        const QLayer& layer = net.layers[static_cast<std::size_t>(l)];
        const QTensor& input =
            layer.input_source < 0
                ? image
                : outputs[static_cast<std::size_t>(layer.input_source)];
        const QTensor* shortcut =
            layer.geom.has_shortcut
                ? &outputs[static_cast<std::size_t>(layer.shortcut_source)]
                : nullptr;
        outputs.push_back(ref_run_layer(layer, plan.layer(l), Tier::int8, input, shortcut,
                                        /*site_active=*/false, nullptr, net.dropout_keep));
      }
      const QTensor boundary = outputs.back();  // pre-DU cache

      for (int s = 0; s < num_samples; ++s) {
        const std::unique_ptr<nn::MaskSource> lane = streams(n, s);
        outputs.resize(static_cast<std::size_t>(cut + 1));
        // Fresh mask on the cached boundary (the DU re-reads the cache).
        outputs[static_cast<std::size_t>(cut)] = boundary;
        {
          const QLayer& cut_layer = net.layers[static_cast<std::size_t>(cut)];
          util::ensure(cut_layer.geom.is_bayes_site &&
                           cut_layer.geom.site_index >= first_active_site,
                       "ref_mc_predict: cut layer must carry the first active site");
          QTensor& masked = outputs[static_cast<std::size_t>(cut)];
          const std::int32_t zp = cut_layer.out.zero_point;
          const int plane = masked.height() * masked.width();
          for (int f = 0; f < masked.channels(); ++f) {
            const bool drop = lane->next_drop();
            std::int8_t* row = masked.data.data() + static_cast<std::size_t>(f) * plane;
            if (drop) {
              std::fill(row, row + plane, saturate_int8(zp));
            } else {
              for (int i = 0; i < plane; ++i)
                row[i] = saturate_int8(
                    fixed_multiply(static_cast<std::int32_t>(row[i]) - zp, net.dropout_keep) +
                    zp);
            }
          }
        }
        for (int l = cut + 1; l < net.num_layers(); ++l) {
          const QLayer& layer = net.layers[static_cast<std::size_t>(l)];
          const QTensor& input =
              layer.input_source < 0
                  ? image
                  : outputs[static_cast<std::size_t>(layer.input_source)];
          const QTensor* shortcut =
              layer.geom.has_shortcut
                  ? &outputs[static_cast<std::size_t>(layer.shortcut_source)]
                  : nullptr;
          const bool active =
              layer.geom.is_bayes_site && layer.geom.site_index >= first_active_site;
          outputs.push_back(ref_run_layer(layer, plan.layer(l), Tier::int8, input, shortcut,
                                          active, lane.get(), net.dropout_keep));
        }
        accumulated.add_(nn::softmax_rows(ref_logits(net, outputs.back())));
      }
      accumulated.scale_(1.0f / static_cast<float>(num_samples));
    }
    for (int k = 0; k < net.num_classes; ++k) probs.v2(n, k) = accumulated.v2(0, k);
  }
  return probs;
}

}  // namespace bnn::quant
