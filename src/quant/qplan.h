// Layer execution plans: the precomputed, weight-derived state the kernel
// tiers dispatch on. Built once per QuantNetwork (the accelerator does it in
// its constructor; the reference executor per call) and shared read-only by
// every lane, so the per-call index-table rebuilds that used to live inside
// core/nne.cpp and quant/qops.cpp happen exactly once.
//
// The bitpack tier's arithmetic identity (see docs/ARCHITECTURE.md for the
// full argument): a layer is WEIGHTS-BINARIZABLE when every weight row is
// drawn from {-W_f, 0, +W_f} for one per-row magnitude W_f and the term
// count is small enough that the closed form below cannot overflow int32.
// When, additionally, a pass's activations take at most two distinct values
// {lo, hi} (runtime check — true for sign-like feature maps), the NNE
// channel dot collapses to popcounts. With
//   base  = lo - zero_point,   delta = hi - lo,
//   xb[t] = (x[t] == hi),      pb/mb = popcount(xb & plus/minus mask),
//   Pp/Pm = popcount(plus/minus mask),
// every (x[t] - zp) equals base + delta*xb[t], so the int32 dot is EXACTLY
//   W_f * (base*(Pp - Pm) + delta*(pb - mb)).
// Zero-free rows ("pure binary") need only one XOR+popcount per word:
// mb = x_pop - pb and popcount(xb ^ plus) = x_pop + Pp - 2*pb give
// pb - mb = Pp - popcount(xb ^ plus). Tail bits past `terms` are zero in
// both operands, so no masking is needed.
//
// Everything here is integer arithmetic — the packed path produces the SAME
// int32 accumulator value as kernels::dot_i8_zp, hence the same bits through
// requantization. Tiers are caps, not demands: callers fall back to the int8
// tier whenever either condition fails.
#ifndef BNN_QUANT_QPLAN_H
#define BNN_QUANT_QPLAN_H

#include <cstdint>
#include <memory>
#include <vector>

#include "quant/qnetwork.h"
#include "quant/qtensor.h"

namespace bnn::quant {

// |base| <= 255 and delta <= 255, so W*(base*(Pp-Pm) + delta*(pb-mb)) is
// bounded by 128 * 255 * 2 * terms; terms <= 32768 keeps that under 2^31.
inline constexpr int kMaxBinarizableTerms = 32768;

struct LayerExecPlan {
  int terms = 0;  // in_c * kernel * kernel
  int words = 0;  // bit_words(terms); 0 for non-binarizable layers

  // Resident weight bytes of the QLayer this plan was built from — the
  // residency currency a segment-granular registry budget is charged in.
  std::uint64_t weight_bytes = 0;

  // Hoisted conv index math (empty for linear layers): term t addresses
  // input channel t/(k*k) at kernel offset (term_dh[t], term_dw[t]);
  // term_off[t] is the flat input offset relative to the window's top-left
  // element, valid wherever the window is in bounds.
  std::vector<std::int32_t> term_dh, term_dw, term_off;

  // Binarizable-weight annotation (populated only when true).
  bool weights_binarizable = false;
  bool pure_binary = false;               // no zero weights anywhere -> XOR path
  std::vector<std::int32_t> magnitude;    // per-row W_f (0 for all-zero rows)
  std::vector<std::int32_t> plus_count;   // per-row popcount of the +W mask
  std::vector<std::int32_t> minus_count;  // per-row popcount of the -W mask
  std::vector<std::uint64_t> plus_bits;   // [out_c][words] packed +W masks
  std::vector<std::uint64_t> minus_bits;  // [out_c][words] packed -W masks

  const std::uint64_t* plus_row(int f) const {
    return plus_bits.data() + static_cast<std::size_t>(f) * words;
  }
  const std::uint64_t* minus_row(int f) const {
    return minus_bits.data() + static_cast<std::size_t>(f) * words;
  }
};

// One independently buildable, independently evictable unit of exec-plan
// state. Segments are immutable once built (build_layer_exec_plan is a pure
// function of the QLayer constants), so any number of plans, providers, and
// in-flight requests may share one.
using PlanSegment = std::shared_ptr<const LayerExecPlan>;

struct NetworkExecPlan {
  std::vector<PlanSegment> layers;

  int num_layers() const { return static_cast<int>(layers.size()); }
  const LayerExecPlan& layer(int i) const {
    return *layers[static_cast<std::size_t>(i)];
  }
  // Sum of per-segment weight bytes (null segments count zero).
  std::uint64_t weight_bytes() const {
    std::uint64_t total = 0;
    for (const PlanSegment& segment : layers)
      if (segment != nullptr) total += segment->weight_bytes;
    return total;
  }
};

// Resolves exec-plan segments on demand — the interface through which the
// accelerator consumes a partially-resident plan. segment(i) blocks until
// segment i is available (building it if needed) and MUST return the same
// bits a whole-plan build would: segments are pure functions of the network
// constants, so consumers stay bit-identical across residency states.
// prefetch(i) is the double-buffer hook: a hint that segment i is needed
// next, letting an implementation start (or model) layer i's weight reload
// while layer i-1 computes. The default is a no-op.
class PlanSource {
 public:
  virtual ~PlanSource() = default;
  virtual int num_layers() const = 0;
  virtual PlanSegment segment(int index) = 0;
  virtual void prefetch(int index) { (void)index; }
};

// Trivial PlanSource over a fully-resident plan (everything already built).
class ResidentPlanSource final : public PlanSource {
 public:
  explicit ResidentPlanSource(std::shared_ptr<const NetworkExecPlan> plan)
      : plan_(std::move(plan)) {}
  int num_layers() const override { return plan_->num_layers(); }
  PlanSegment segment(int index) override {
    return plan_->layers[static_cast<std::size_t>(index)];
  }

 private:
  std::shared_ptr<const NetworkExecPlan> plan_;
};

LayerExecPlan build_layer_exec_plan(const QLayer& layer);
// The shared-ownership form: builds layer's plan on the heap, ready to be
// installed into any number of NetworkExecPlans or segment tables.
PlanSegment build_plan_segment(const QLayer& layer);
NetworkExecPlan build_network_exec_plan(const QuantNetwork& net);

// The static weight-side test described above (shared per-row magnitude,
// term bound). Pure weight property — independent of any input. Layers
// already carrying packed storage pass by construction.
bool layer_weights_binarizable(const QLayer& layer);

// Converts every binarizable layer to packed storage: builds the plus/minus
// masks, moves them into the QLayer, and drops the int8 byte rows (~8x
// resident shrink). Bit-preserving — materialize_weight_row reconstructs the
// exact rows, and plans built from packed layers are identical to plans
// built from the byte rows they replaced. Idempotent; returns the number of
// layers (newly) packed. Call after annotate_weight_tiers.
int pack_binarizable_weights(QuantNetwork& net);

// Stamps layer.geom.weights_binarizable on every layer so the flag flows
// through describe() into the performance/cost models. quantize_model calls
// this; hand-assembled networks (tests) may call it directly.
void annotate_weight_tiers(QuantNetwork& net);

// Runtime activation-side test: true when the payload takes at most two
// distinct values, returned as lo <= hi (lo == hi for constant tensors).
bool two_valued_activations(const QTensor& x, std::int8_t* lo, std::int8_t* hi);

// The packed inner product over the FULL term range of row f. `xbits` packs
// (x[t] == hi) with zero tail bits; `x_pop` is its popcount; base/delta as
// above. Exactly equal to kernels::dot_i8_zp(x, weight_row(f), terms, zp).
std::int32_t packed_row_dot(const LayerExecPlan& plan, int f, const std::uint64_t* xbits,
                            std::int32_t x_pop, std::int32_t base, std::int32_t delta);

}  // namespace bnn::quant

#endif  // BNN_QUANT_QPLAN_H
