#include "quant/qtensor.h"

#include <algorithm>
#include <cmath>

#include "quant/fixed_point.h"
#include "util/check.h"

namespace bnn::quant {

QuantParams choose_activation_params(float range_min, float range_max) {
  util::require(range_min <= range_max, "choose_activation_params: inverted range");
  // The representable range must include 0 so zero maps exactly.
  range_min = std::min(range_min, 0.0f);
  range_max = std::max(range_max, 0.0f);
  if (range_max == range_min) return {1.0f, 0};

  const float scale = (range_max - range_min) / 255.0f;
  const float zp_real = -128.0f - range_min / scale;
  const auto zero_point =
      static_cast<std::int32_t>(std::lround(std::clamp(zp_real, -128.0f, 127.0f)));
  return {scale, zero_point};
}

float choose_weight_scale(const float* weights, std::int64_t count) {
  util::require(count > 0, "choose_weight_scale: empty slice");
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < count; ++i) max_abs = std::max(max_abs, std::fabs(weights[i]));
  if (max_abs == 0.0f) return 1.0f;
  return max_abs / 127.0f;
}

QTensor::QTensor(std::vector<int> shape_in, QuantParams params_in) {
  shape = std::move(shape_in);
  params = params_in;
  std::int64_t n = 1;
  for (int s : shape) {
    util::require(s > 0, "qtensor: shape entries must be positive");
    n *= s;
  }
  data.assign(static_cast<std::size_t>(n),
              static_cast<std::int8_t>(saturate_int8(params.zero_point)));
}

bool QTensor::reset(const std::vector<int>& shape_in, QuantParams params_in) {
  shape = shape_in;
  params = params_in;
  std::int64_t n = 1;
  for (int s : shape) {
    util::require(s > 0, "qtensor: shape entries must be positive");
    n *= s;
  }
  const bool grew = static_cast<std::size_t>(n) > data.capacity();
  data.resize(static_cast<std::size_t>(n));
  return grew;
}

QTensor quantize_image(const nn::Tensor& image, int n, QuantParams params) {
  util::require(image.dim() == 3 || image.dim() == 4, "quantize_image: expects CHW or NCHW");
  const int offset = image.dim() == 4 ? 1 : 0;
  const int c = image.size(offset + 0);
  const int h = image.size(offset + 1);
  const int w = image.size(offset + 2);
  if (image.dim() == 3) util::require(n == 0, "quantize_image: n must be 0 for CHW input");

  QTensor q({c, h, w}, params);
  const std::int64_t plane = static_cast<std::int64_t>(c) * h * w;
  const float* src = image.data() + (image.dim() == 4 ? static_cast<std::int64_t>(n) * plane : 0);
  const float inv_scale = 1.0f / params.scale;
  for (std::int64_t i = 0; i < plane; ++i) {
    const auto rounded = static_cast<std::int32_t>(std::lround(src[i] * inv_scale)) +
                         params.zero_point;
    q.data[static_cast<std::size_t>(i)] = saturate_int8(rounded);
  }
  return q;
}

nn::Tensor dequantize(const QTensor& q) {
  util::require(!q.shape.empty(), "dequantize: empty tensor");
  nn::Tensor out(q.shape);
  for (std::int64_t i = 0; i < q.numel(); ++i)
    out[i] = q.params.scale *
             static_cast<float>(q.data[static_cast<std::size_t>(i)] - q.params.zero_point);
  return out;
}

}  // namespace bnn::quant
