// Reference integer executor for QuantNetwork — the functional
// SPECIFICATION of the accelerator. Plain nested loops, no tiling: the
// simulated NNE (src/core/nne.h) must reproduce these int8 outputs
// bit-exactly for every layer and network (enforced by tests).
//
// Per-layer pipeline (matching the NNE stages):
//   PE   : int32 accumulation of (q_in - zp_in) * w over C*K*K, plus bias
//   FU/BN: per-channel fixed-point requantization + post-add (+ zp_out)
//   FU/SC: rescaled shortcut operand added in output units
//   FU/ReLU, FU/Pool
//   DU   : filter-wise Bernoulli mask; dropped -> zp_out, kept -> x/(1-p)
#ifndef BNN_QUANT_QOPS_H
#define BNN_QUANT_QOPS_H

#include <functional>
#include <memory>
#include <vector>

#include "nn/dropout.h"
#include "nn/gemm_kernels.h"
#include "quant/qnetwork.h"
#include "quant/qplan.h"
#include "quant/qtensor.h"

namespace bnn::quant {

// Executes one layer. `shortcut` must be non-null iff geom.has_shortcut.
// When `site_active` is true one drop decision per output filter is drawn
// from `masks` (which must then be non-null), in ascending filter order.
QTensor ref_run_layer(const QLayer& layer, const QTensor& input, const QTensor* shortcut,
                      bool site_active, nn::MaskSource* masks, FixedMultiplier dropout_keep);

// Tier-explicit form: `plan` must be build_layer_exec_plan(layer). The tier
// is a CAP (see nn/gemm_kernels.h): Tier::bitpack falls back to Tier::int8
// unless the layer's weights are binarizable and this input is two-valued,
// so outputs are bit-identical across tiers unconditionally (enforced by
// tests/test_bitpack.cpp). The convenience overload above is equivalent to
// Tier::int8 with a freshly built plan.
QTensor ref_run_layer(const QLayer& layer, const LayerExecPlan& plan, nn::kernels::Tier tier,
                      const QTensor& input, const QTensor* shortcut, bool site_active,
                      nn::MaskSource* masks, FixedMultiplier dropout_keep);

// Executes the whole network (last `bayes_layers` sites active) and returns
// every layer's stored (post-DU) output. `masks` may be null when
// bayes_layers == 0.
std::vector<QTensor> ref_forward(const QuantNetwork& net, const QTensor& image,
                                 int bayes_layers, nn::MaskSource* masks);

// Dequantized logits (1, K) from the final layer's output.
nn::Tensor ref_logits(const QuantNetwork& net, const QTensor& final_output);

// Monte Carlo predictive distribution over a batch of float images
// (N, C, H, W) -> (N, K): quantizes each image, runs `num_samples`
// stochastic passes and averages host-side softmax outputs. With
// `use_intermediate_caching` the deterministic prefix (layers up to the IC
// cut) runs once per image and only the Bayesian suffix is recomputed per
// sample — the integer-domain analogue of the paper's IC.
nn::Tensor ref_mc_predict(const QuantNetwork& net, const nn::Tensor& images, int bayes_layers,
                          int num_samples, nn::MaskSource& masks,
                          bool use_intermediate_caching = true);

// Builds the mask stream that one (image, sample) pair consumes. The
// factory form mirrors the accelerator's parallel runtime, which gives
// every Monte Carlo sample its own decorrelated sampler lane (see
// core::Accelerator::sample_stream_seed) instead of threading one shared
// stream through all samples.
using MaskStreamFactory =
    std::function<std::unique_ptr<nn::MaskSource>(int image, int sample)>;

// As above, but each (image, sample) draws from its own stream. With a
// factory that reproduces the accelerator's per-sample seeds this is the
// bit-exact reference for Accelerator::predict at any thread count.
nn::Tensor ref_mc_predict(const QuantNetwork& net, const nn::Tensor& images, int bayes_layers,
                          int num_samples, const MaskStreamFactory& streams,
                          bool use_intermediate_caching = true);

}  // namespace bnn::quant

#endif  // BNN_QUANT_QOPS_H
