#include "quant/qnetwork.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "quant/qplan.h"
#include "util/check.h"

namespace bnn::quant {

void QLayer::materialize_weight_row(int f, std::int8_t* dst) const {
  const int terms = geom.in_c * geom.kernel * geom.kernel;
  if (!weights_packed) {
    const std::int8_t* src = weight_row(f);
    std::copy(src, src + terms, dst);
    return;
  }
  const std::int32_t mag = packed_magnitude[static_cast<std::size_t>(f)];
  const std::uint64_t* plus =
      packed_plus.data() + static_cast<std::size_t>(f) * packed_words;
  const std::uint64_t* minus =
      packed_minus.data() + static_cast<std::size_t>(f) * packed_words;
  for (int t = 0; t < terms; ++t) {
    const int word = t / 64;
    const std::uint64_t bit = std::uint64_t{1} << (t % 64);
    // +W with W == 128 is unreachable (not representable in int8), so the
    // casts below cannot overflow.
    std::int32_t v = 0;
    if ((plus[word] & bit) != 0)
      v = mag;
    else if ((minus[word] & bit) != 0)
      v = -mag;
    dst[t] = static_cast<std::int8_t>(v);
  }
}

std::size_t QLayer::resident_weight_bytes() const {
  return weights.size() * sizeof(std::int8_t) +
         packed_magnitude.size() * sizeof(std::int32_t) +
         (packed_plus.size() + packed_minus.size()) * sizeof(std::uint64_t);
}

std::size_t QuantNetwork::resident_weight_bytes() const {
  std::size_t total = 0;
  for (const QLayer& layer : layers) total += layer.resident_weight_bytes();
  return total;
}

int QuantNetwork::cut_layer_for(int bayes_layers) const {
  util::require(bayes_layers >= 0 && bayes_layers <= num_sites,
                "cut_layer_for: bayes_layers out of range");
  if (bayes_layers == 0) return num_layers() - 1;
  const int first_active_site = num_sites - bayes_layers;
  for (int i = 0; i < num_layers(); ++i) {
    const nn::HwLayer& geom = layers[static_cast<std::size_t>(i)].geom;
    if (geom.is_bayes_site && geom.site_index == first_active_site) return i;
  }
  util::ensure(false, "cut_layer_for: site bookkeeping inconsistent");
  return -1;
}

nn::NetworkDesc QuantNetwork::describe() const {
  nn::NetworkDesc desc;
  desc.name = name;
  desc.num_classes = num_classes;
  if (!layers.empty()) {
    const nn::HwLayer& first = layers.front().geom;
    desc.input_shape = {first.in_c, first.in_h, first.in_w};
  }
  for (const QLayer& layer : layers) desc.layers.push_back(layer.geom);
  return desc;
}

namespace {

// Float-network source references for one hardware layer, gathered by the
// same traversal describe_network performs.
struct LayerRefs {
  const nn::Conv2d* conv = nullptr;
  const nn::Linear* linear = nullptr;
  const nn::BatchNorm2d* bn = nullptr;
  nn::Network::NodeId anchor = -1;  // node whose activation is the pre-DU output
  int input_source = -1;            // producing layer of this layer's input
  int shortcut_source = -1;
};

std::vector<LayerRefs> collect_layer_refs(const nn::Network& net) {
  std::vector<LayerRefs> refs;
  // Maps attached nodes to the hardware layer they belong to.
  std::vector<int> node_to_layer(static_cast<std::size_t>(net.num_nodes()), -1);

  for (nn::Network::NodeId id = 1; id < net.num_nodes(); ++id) {
    const nn::Layer* layer = net.layer(id);
    const int current = static_cast<int>(refs.size()) - 1;
    switch (layer->kind()) {
      case nn::LayerKind::conv2d: {
        LayerRefs entry;
        entry.conv = static_cast<const nn::Conv2d*>(layer);
        entry.anchor = id;
        entry.input_source =
            node_to_layer[static_cast<std::size_t>(net.inputs_of(id)[0])];
        refs.push_back(entry);
        node_to_layer[static_cast<std::size_t>(id)] = static_cast<int>(refs.size()) - 1;
        break;
      }
      case nn::LayerKind::linear: {
        LayerRefs entry;
        entry.linear = static_cast<const nn::Linear*>(layer);
        entry.anchor = id;
        entry.input_source =
            node_to_layer[static_cast<std::size_t>(net.inputs_of(id)[0])];
        refs.push_back(entry);
        node_to_layer[static_cast<std::size_t>(id)] = static_cast<int>(refs.size()) - 1;
        break;
      }
      case nn::LayerKind::batch_norm:
        util::ensure(current >= 0, "quantize: BN before any conv/linear");
        refs[static_cast<std::size_t>(current)].bn =
            static_cast<const nn::BatchNorm2d*>(layer);
        refs[static_cast<std::size_t>(current)].anchor = id;
        node_to_layer[static_cast<std::size_t>(id)] = current;
        break;
      case nn::LayerKind::relu:
      case nn::LayerKind::max_pool:
      case nn::LayerKind::avg_pool:
      case nn::LayerKind::global_avg_pool:
        util::ensure(current >= 0, "quantize: FU node before any conv/linear");
        refs[static_cast<std::size_t>(current)].anchor = id;
        node_to_layer[static_cast<std::size_t>(id)] = current;
        break;
      case nn::LayerKind::quadratic:
        util::require(false,
                      "quantize: quadratic activations are a BYNQNet-baseline feature and "
                      "have no int8 FU mapping in this accelerator");
        break;
      case nn::LayerKind::add: {
        util::ensure(current >= 0, "quantize: add before any conv/linear");
        LayerRefs& entry = refs[static_cast<std::size_t>(current)];
        // The operand coming from outside the current layer's chain is the
        // shortcut; the other one is the main path.
        for (nn::Network::NodeId input : net.inputs_of(id)) {
          const int source = node_to_layer[static_cast<std::size_t>(input)];
          if (source != current) entry.shortcut_source = source;
        }
        util::ensure(entry.shortcut_source >= 0,
                     "quantize: shortcut operand must come from an earlier layer");
        entry.anchor = id;
        node_to_layer[static_cast<std::size_t>(id)] = current;
        break;
      }
      case nn::LayerKind::mc_dropout:
      case nn::LayerKind::flatten:
      case nn::LayerKind::softmax:
        // Part of the current layer's stream, but not a new range anchor:
        // ranges are observed pre-dropout, and flatten/softmax do not alter
        // the stored feature map (softmax runs on the host).
        if (current >= 0) node_to_layer[static_cast<std::size_t>(id)] = current;
        break;
    }
  }
  return refs;
}

struct Range {
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  void observe(float v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
};

}  // namespace

QuantNetwork quantize_model(nn::Model& model, const data::Dataset& calibration,
                            const CalibrationOptions& options) {
  util::require(calibration.size() > 0, "quantize_model: empty calibration set");
  util::require(options.max_images >= 1, "quantize_model: need at least one image");

  nn::Network& net = model.net();
  const nn::NetworkDesc desc = model.describe();
  const std::vector<LayerRefs> refs = collect_layer_refs(net);
  util::ensure(static_cast<int>(refs.size()) == desc.num_layers(),
               "quantize_model: traversal mismatch with describe_network");

  // --- Calibration: observe input and per-layer output ranges with the
  // float network in deterministic evaluation mode.
  const int saved_bayes = model.bayesian_layers();
  model.set_bayesian_last(0);
  net.set_training(false);

  Range input_range;
  std::vector<Range> out_ranges(refs.size());
  const int images = std::min(options.max_images, calibration.size());
  for (int start = 0; start < images; start += 8) {
    const data::Batch batch = calibration.batch(start, std::min(8, images - start));
    for (std::int64_t i = 0; i < batch.images.numel(); ++i) input_range.observe(batch.images[i]);
    (void)net.forward(batch.images);
    for (std::size_t l = 0; l < refs.size(); ++l) {
      const nn::Tensor& activation = net.activation(refs[l].anchor);
      for (std::int64_t i = 0; i < activation.numel(); ++i)
        out_ranges[l].observe(activation[i]);
    }
  }
  model.set_bayesian_last(saved_bayes);

  // --- Assemble the integer network.
  QuantNetwork qnet;
  qnet.name = model.name();
  qnet.num_classes = model.num_classes();
  qnet.num_sites = desc.num_sites();
  qnet.dropout_p = model.dropout_p();
  qnet.dropout_keep = quantize_multiplier(1.0 / (1.0 - model.dropout_p()));
  qnet.input = choose_activation_params(input_range.lo, input_range.hi);

  for (std::size_t l = 0; l < refs.size(); ++l) {
    const LayerRefs& ref = refs[l];
    QLayer qlayer;
    qlayer.geom = desc.layers[l];
    qlayer.input_source = ref.input_source;
    qlayer.shortcut_source = ref.shortcut_source;
    util::ensure(ref.input_source < static_cast<int>(l),
                 "quantize_model: layer input must come from an earlier layer");
    qlayer.in = ref.input_source < 0
                    ? qnet.input
                    : qnet.layers[static_cast<std::size_t>(ref.input_source)].out;
    qlayer.out = choose_activation_params(out_ranges[l].lo, out_ranges[l].hi);

    const int out_c = qlayer.geom.out_c;
    const std::int64_t row =
        static_cast<std::int64_t>(qlayer.geom.in_c) * qlayer.geom.kernel * qlayer.geom.kernel;
    const float* w_src = ref.conv != nullptr ? ref.conv->weight().value.data()
                                             : ref.linear->weight().value.data();
    qlayer.weights.resize(static_cast<std::size_t>(out_c) * row);
    qlayer.weight_scales.resize(static_cast<std::size_t>(out_c));
    for (int f = 0; f < out_c; ++f) {
      const float* w_row = w_src + static_cast<std::int64_t>(f) * row;
      const float w_scale = choose_weight_scale(w_row, row);
      qlayer.weight_scales[static_cast<std::size_t>(f)] = w_scale;
      for (std::int64_t i = 0; i < row; ++i) {
        const auto q = static_cast<std::int32_t>(std::lround(w_row[i] / w_scale));
        qlayer.weights[static_cast<std::size_t>(f) * row + static_cast<std::size_t>(i)] =
            saturate_int8(q);
      }
    }

    // BN inference affine (identity when the layer has no BN).
    std::vector<float> bn_scale(static_cast<std::size_t>(out_c), 1.0f);
    std::vector<float> bn_shift(static_cast<std::size_t>(out_c), 0.0f);
    if (ref.bn != nullptr) ref.bn->inference_affine(bn_scale, bn_shift);

    const bool has_bias = ref.conv != nullptr ? ref.conv->has_bias() : ref.linear->has_bias();
    const float* bias_src = nullptr;
    if (has_bias)
      bias_src = ref.conv != nullptr ? ref.conv->bias().value.data()
                                     : ref.linear->bias().value.data();

    qlayer.bias.resize(static_cast<std::size_t>(out_c));
    qlayer.requant.resize(static_cast<std::size_t>(out_c));
    qlayer.post_add.resize(static_cast<std::size_t>(out_c));
    for (int f = 0; f < out_c; ++f) {
      const double acc_scale = static_cast<double>(qlayer.in.scale) *
                               qlayer.weight_scales[static_cast<std::size_t>(f)];
      qlayer.bias[static_cast<std::size_t>(f)] =
          has_bias ? static_cast<std::int32_t>(std::llround(bias_src[f] / acc_scale)) : 0;
      qlayer.requant[static_cast<std::size_t>(f)] = quantize_multiplier(
          static_cast<double>(bn_scale[static_cast<std::size_t>(f)]) * acc_scale /
          qlayer.out.scale);
      qlayer.post_add[static_cast<std::size_t>(f)] = static_cast<std::int32_t>(
          std::llround(bn_shift[static_cast<std::size_t>(f)] / qlayer.out.scale));
    }

    if (qlayer.geom.has_shortcut) {
      util::ensure(qlayer.shortcut_source >= 0, "quantize_model: missing shortcut source");
      const QuantParams source_out =
          qnet.layers[static_cast<std::size_t>(qlayer.shortcut_source)].out;
      qlayer.shortcut_rescale =
          quantize_multiplier(static_cast<double>(source_out.scale) / qlayer.out.scale);
    }

    qnet.layers.push_back(std::move(qlayer));
  }
  // Stamp the static kernel-tier annotation so describe() (and through it
  // the performance and serving cost models) sees which layers admit the
  // packed binary/ternary tier.
  annotate_weight_tiers(qnet);
  return qnet;
}

}  // namespace bnn::quant
