// Quantized activation tensor: int8 payload plus affine quantization
// parameters (real = scale * (q - zero_point)). Batch-free {C, H, W} layout
// — the accelerator processes one image at a time, as in the paper's
// batch-1 evaluation.
#ifndef BNN_QUANT_QTENSOR_H
#define BNN_QUANT_QTENSOR_H

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "util/check.h"  // C++20 guard: defaulted operator== below needs it

namespace bnn::quant {

struct QuantParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;

  bool operator==(const QuantParams&) const = default;
};

// Asymmetric int8 parameters covering [range_min, range_max] (widened to
// always include 0 so that zero_point is exact, per Jacob et al.).
QuantParams choose_activation_params(float range_min, float range_max);

// Symmetric scale for a weight slice: max|w| mapped to 127.
float choose_weight_scale(const float* weights, std::int64_t count);

struct QTensor {
  std::vector<int> shape;  // {C, H, W} (or {F, 1, 1} for vectors)
  std::vector<std::int8_t> data;
  QuantParams params;

  QTensor() = default;
  QTensor(std::vector<int> shape_in, QuantParams params_in);

  // Re-shapes in place, reusing the data buffer's capacity (the accelerator's
  // per-lane arena calls this every sample). Unlike the constructor the
  // payload is NOT zero-point-filled — callers must overwrite every element.
  // Returns true when the buffer had to grow (an allocation happened).
  bool reset(const std::vector<int>& shape_in, QuantParams params_in);

  std::int64_t numel() const { return static_cast<std::int64_t>(data.size()); }
  int channels() const { return shape.empty() ? 0 : shape[0]; }
  int height() const { return shape.size() > 1 ? shape[1] : 1; }
  int width() const { return shape.size() > 2 ? shape[2] : 1; }

  std::int8_t at(int c, int h, int w) const {
    return data[(static_cast<std::size_t>(c) * height() + h) * width() + w];
  }
  std::int8_t& at(int c, int h, int w) {
    return data[(static_cast<std::size_t>(c) * height() + h) * width() + w];
  }

  // Real-valued view of one element.
  float real(int c, int h, int w) const {
    return params.scale * static_cast<float>(at(c, h, w) - params.zero_point);
  }
};

// Quantizes one image (C, H, W) of a float tensor (3-D, or 4-D with n
// selecting the sample) under the given parameters.
QTensor quantize_image(const nn::Tensor& image, int n, QuantParams params);

// Dequantizes to a float tensor of the same {C, H, W} shape.
nn::Tensor dequantize(const QTensor& q);

}  // namespace bnn::quant

#endif  // BNN_QUANT_QTENSOR_H
