// Quantized network: the integer-only form of a trained float Model that the
// accelerator executes. Post-training 8-bit linear quantization in the style
// the paper cites (Jacob et al.):
//
//   - activations: per-tensor asymmetric int8, ranges from calibration,
//   - weights: per-output-channel symmetric int8,
//   - biases: int32 in the accumulator scale (s_in * s_w),
//   - BatchNorm: folded into the per-channel requantization multiplier and
//     an int32 post-add, executed by the Functional Unit's BN stage,
//   - shortcut addition: per-tensor rescale of the residual operand,
//   - MC Dropout: zero -> zero_point, survivors scaled by the fixed-point
//     1/(1-p) multiplier in the Dropout Unit.
//
// The FU stage order implemented throughout is BN -> SC -> ReLU -> Pool ->
// DU (the SC-before-ReLU placement is what ResNet semantics require; see
// DESIGN.md for the note on the paper's Fig. 2 ordering).
#ifndef BNN_QUANT_QNETWORK_H
#define BNN_QUANT_QNETWORK_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/models.h"
#include "nn/netdesc.h"
#include "quant/fixed_point.h"
#include "quant/qtensor.h"

namespace bnn::quant {

struct QLayer {
  nn::HwLayer geom;  // geometry + FU/DU flags (shared with the perf model)

  // Index of the QLayer whose stored output this layer consumes; -1 means
  // the quantized network input. Usually the previous layer, but ResNet
  // projection convolutions consume the block input from further back.
  int input_source = -1;

  // Index of the QLayer whose stored output is this layer's shortcut
  // operand; -1 when has_shortcut is false.
  int shortcut_source = -1;

  QuantParams in;
  QuantParams out;

  // Row-major [out_c][in_c * k * k] weights; per-output-channel scales.
  // Empty when `weights_packed` — binarizable layers can drop the byte rows
  // and keep only the packed masks below (~8x smaller resident footprint).
  std::vector<std::int8_t> weights;
  std::vector<float> weight_scales;

  // Packed storage for binarizable layers (every row drawn from
  // {-W_f, 0, +W_f}): per-row magnitude plus [out_c][packed_words] +W / -W
  // bit masks, exactly the representation the bitpack kernel tier consumes.
  // Populated by quant::pack_binarizable_weights; rows are reconstructed
  // losslessly by materialize_weight_row (a +W_f bit with W_f == 128 cannot
  // occur, since +128 is not representable in int8).
  bool weights_packed = false;
  int packed_words = 0;  // bit_words(in_c * k * k)
  std::vector<std::int32_t> packed_magnitude;  // per-row W_f
  std::vector<std::uint64_t> packed_plus;      // [out_c][packed_words]
  std::vector<std::uint64_t> packed_minus;     // [out_c][packed_words]
  // Accumulator-domain bias (conv/linear bias; zero-filled when absent).
  std::vector<std::int32_t> bias;
  // Per-channel requantization: accumulator -> output int8 units, including
  // the BN gamma/running-var factor.
  std::vector<FixedMultiplier> requant;
  // Per-channel post-add in output units (BN beta term).
  std::vector<std::int32_t> post_add;
  // Rescale for the shortcut operand (source units -> output units).
  FixedMultiplier shortcut_rescale;

  // Direct row access — only valid while the byte rows are resident
  // (!weights_packed). Packed layers must materialize instead.
  const std::int8_t* weight_row(int f) const {
    return weights.data() +
           static_cast<std::size_t>(f) * geom.in_c * geom.kernel * geom.kernel;
  }

  // Writes row f (in_c * k * k int8 terms) into `dst`, decoding the packed
  // masks when weights_packed. Exact for both representations.
  void materialize_weight_row(int f, std::int8_t* dst) const;

  // Bytes this layer's weight storage actually occupies (byte rows or
  // packed masks + magnitudes) — the registry's residency currency.
  std::size_t resident_weight_bytes() const;
};

struct QuantNetwork {
  std::string name;
  QuantParams input;
  std::vector<QLayer> layers;
  int num_classes = 0;
  int num_sites = 0;
  double dropout_p = 0.25;
  FixedMultiplier dropout_keep;  // fixed-point 1/(1-p)

  int num_layers() const { return static_cast<int>(layers.size()); }

  // Hardware layer index carrying the first active site when the last
  // `bayes_layers` sites are Bayesian (the IC cut; see NetworkDesc).
  int cut_layer_for(int bayes_layers) const;

  // Reassembled geometric description (feeds the performance and resource
  // models so they see exactly what will be executed).
  nn::NetworkDesc describe() const;

  // Total resident weight bytes across layers (see
  // QLayer::resident_weight_bytes) — what a registry residency budget and
  // the DDR reload cost are charged against.
  std::size_t resident_weight_bytes() const;
};

struct CalibrationOptions {
  int max_images = 64;  // images drawn from the front of the calibration set
};

// Builds the integer network from a trained float model: runs the
// calibration images through the float network in deterministic mode to
// observe activation ranges at every hardware-layer output, then quantizes
// weights/biases and folds BN into the requantization constants.
QuantNetwork quantize_model(nn::Model& model, const data::Dataset& calibration,
                            const CalibrationOptions& options = {});

}  // namespace bnn::quant

#endif  // BNN_QUANT_QNETWORK_H
