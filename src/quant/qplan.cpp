#include "quant/qplan.h"

#include <cstdlib>

#include "nn/bitpack_kernels.h"
#include "util/check.h"

namespace bnn::quant {

namespace {

// Per-row magnitude: every nonzero weight must be +W or -W for one W > 0.
// Returns W (0 for an all-zero row), or -1 when the row is not binarizable.
// W == 128 is reachable only through -128 entries (minus-only rows), since
// +128 is not representable in int8.
std::int32_t row_magnitude(const std::int8_t* w, int terms) {
  std::int32_t mag = 0;
  for (int t = 0; t < terms; ++t) {
    if (w[t] == 0) continue;
    const std::int32_t a = std::abs(static_cast<std::int32_t>(w[t]));
    if (mag == 0)
      mag = a;
    else if (a != mag)
      return -1;
  }
  return mag;
}

}  // namespace

bool layer_weights_binarizable(const QLayer& layer) {
  const nn::HwLayer& g = layer.geom;
  const int terms = g.in_c * g.kernel * g.kernel;
  if (terms <= 0 || terms > kMaxBinarizableTerms) return false;
  if (layer.weights_packed) return true;  // packing proved it already
  for (int f = 0; f < g.out_c; ++f)
    if (row_magnitude(layer.weight_row(f), terms) < 0) return false;
  return true;
}

int pack_binarizable_weights(QuantNetwork& net) {
  int packed = 0;
  for (QLayer& layer : net.layers) {
    if (layer.weights_packed || !layer_weights_binarizable(layer)) continue;
    // Build the masks once from the byte rows, then drop the rows.
    LayerExecPlan plan = build_layer_exec_plan(layer);
    layer.packed_words = plan.words;
    layer.packed_magnitude = std::move(plan.magnitude);
    layer.packed_plus = std::move(plan.plus_bits);
    layer.packed_minus = std::move(plan.minus_bits);
    layer.weights_packed = true;
    layer.weights.clear();
    layer.weights.shrink_to_fit();
    layer.geom.weights_binarizable = true;
    ++packed;
  }
  return packed;
}

void annotate_weight_tiers(QuantNetwork& net) {
  for (QLayer& layer : net.layers)
    layer.geom.weights_binarizable = layer_weights_binarizable(layer);
}

LayerExecPlan build_layer_exec_plan(const QLayer& layer) {
  const nn::HwLayer& g = layer.geom;
  LayerExecPlan plan;
  plan.terms = g.in_c * g.kernel * g.kernel;
  plan.weight_bytes = layer.resident_weight_bytes();

  if (g.op == nn::HwLayer::Op::conv) {
    plan.term_dh.resize(static_cast<std::size_t>(plan.terms));
    plan.term_dw.resize(static_cast<std::size_t>(plan.terms));
    plan.term_off.resize(static_cast<std::size_t>(plan.terms));
    const int kk2 = g.kernel * g.kernel;
    for (int t = 0; t < plan.terms; ++t) {
      const int ch = t / kk2;
      const int rem = t % kk2;
      const int dh = rem / g.kernel;
      const int dw = rem % g.kernel;
      plan.term_dh[static_cast<std::size_t>(t)] = dh;
      plan.term_dw[static_cast<std::size_t>(t)] = dw;
      plan.term_off[static_cast<std::size_t>(t)] = (ch * g.in_h + dh) * g.in_w + dw;
    }
  }

  plan.weights_binarizable = layer_weights_binarizable(layer);
  if (!plan.weights_binarizable) return plan;

  if (layer.weights_packed) {
    // Packed layers already store exactly the plan's mask representation;
    // copy it and rederive the per-row popcounts.
    plan.words = layer.packed_words;
    plan.magnitude = layer.packed_magnitude;
    plan.plus_bits = layer.packed_plus;
    plan.minus_bits = layer.packed_minus;
    plan.plus_count.resize(static_cast<std::size_t>(g.out_c));
    plan.minus_count.resize(static_cast<std::size_t>(g.out_c));
    plan.pure_binary = true;
    for (int f = 0; f < g.out_c; ++f) {
      const std::int32_t pp = nn::kernels::popcount_words(plan.plus_row(f), plan.words);
      const std::int32_t pm = nn::kernels::popcount_words(plan.minus_row(f), plan.words);
      plan.plus_count[static_cast<std::size_t>(f)] = pp;
      plan.minus_count[static_cast<std::size_t>(f)] = pm;
      if (plan.magnitude[static_cast<std::size_t>(f)] == 0 || pp + pm != plan.terms)
        plan.pure_binary = false;
    }
    return plan;
  }

  plan.words = nn::kernels::bit_words(plan.terms);
  plan.magnitude.resize(static_cast<std::size_t>(g.out_c));
  plan.plus_count.resize(static_cast<std::size_t>(g.out_c));
  plan.minus_count.resize(static_cast<std::size_t>(g.out_c));
  plan.plus_bits.assign(static_cast<std::size_t>(g.out_c) * plan.words, 0);
  plan.minus_bits.assign(static_cast<std::size_t>(g.out_c) * plan.words, 0);
  plan.pure_binary = true;
  for (int f = 0; f < g.out_c; ++f) {
    const std::int8_t* w = layer.weight_row(f);
    const std::int32_t mag = row_magnitude(w, plan.terms);
    util::ensure(mag >= 0, "qplan: row stopped being binarizable");
    plan.magnitude[static_cast<std::size_t>(f)] = mag;
    std::uint64_t* plus = plan.plus_bits.data() + static_cast<std::size_t>(f) * plan.words;
    std::uint64_t* minus = plan.minus_bits.data() + static_cast<std::size_t>(f) * plan.words;
    std::int32_t pp = 0, pm = 0;
    for (int t = 0; t < plan.terms; ++t) {
      const std::int32_t v = w[t];
      if (v == 0) {
        plan.pure_binary = false;
        continue;
      }
      const int word = t / nn::kernels::kBitWordBits;
      const std::uint64_t bit = std::uint64_t{1} << (t % nn::kernels::kBitWordBits);
      if (v > 0) {
        plus[word] |= bit;
        ++pp;
      } else {
        minus[word] |= bit;
        ++pm;
      }
    }
    if (mag == 0) plan.pure_binary = false;  // all-zero row
    plan.plus_count[static_cast<std::size_t>(f)] = pp;
    plan.minus_count[static_cast<std::size_t>(f)] = pm;
  }
  return plan;
}

PlanSegment build_plan_segment(const QLayer& layer) {
  return std::make_shared<const LayerExecPlan>(build_layer_exec_plan(layer));
}

NetworkExecPlan build_network_exec_plan(const QuantNetwork& net) {
  NetworkExecPlan plan;
  plan.layers.reserve(net.layers.size());
  for (const QLayer& layer : net.layers) plan.layers.push_back(build_plan_segment(layer));
  return plan;
}

bool two_valued_activations(const QTensor& x, std::int8_t* lo, std::int8_t* hi) {
  util::require(!x.data.empty(), "two_valued_activations: empty tensor");
  std::int8_t a = x.data[0];
  std::int8_t b = a;
  for (const std::int8_t v : x.data) {
    if (v == a || v == b) continue;
    if (a == b) {
      b = v;
      continue;
    }
    return false;  // third distinct value
  }
  *lo = a < b ? a : b;
  *hi = a < b ? b : a;
  return true;
}

std::int32_t packed_row_dot(const LayerExecPlan& plan, int f, const std::uint64_t* xbits,
                            std::int32_t x_pop, std::int32_t base, std::int32_t delta) {
  const std::int32_t mag = plan.magnitude[static_cast<std::size_t>(f)];
  if (mag == 0) return 0;  // all-zero row contributes nothing
  const std::int32_t pp = plan.plus_count[static_cast<std::size_t>(f)];
  const std::int32_t pm = plan.minus_count[static_cast<std::size_t>(f)];
  std::int32_t pb_minus_mb;
  if (plan.pure_binary) {
    // One fused pass: disagreements D = popcount(xb ^ plus) satisfy
    // pb - mb = Pp - D (derivation in the header). x_pop is not needed on
    // this path but keeps the two branches call-compatible.
    (void)x_pop;
    const std::int32_t d = nn::kernels::popcount_xor(xbits, plan.plus_row(f), plan.words);
    pb_minus_mb = pp - d;
  } else {
    std::int32_t pb = 0, mb = 0;
    nn::kernels::popcount_and2(xbits, plan.plus_row(f), plan.minus_row(f), plan.words, &pb,
                               &mb);
    pb_minus_mb = pb - mb;
  }
  return mag * (base * (pp - pm) + delta * pb_minus_mb);
}

}  // namespace bnn::quant
