// Fixed-point arithmetic primitives for 8-bit linear quantization, following
// the integer-only inference scheme of Jacob et al. (CVPR 2018) that the
// paper applies to its trained models. The exact rounding semantics here are
// the specification both the reference integer executor (qops) and the
// simulated NNE datapath implement, which is what makes the "accelerator
// output == reference output" tests bit-exact.
#ifndef BNN_QUANT_FIXED_POINT_H
#define BNN_QUANT_FIXED_POINT_H

#include <cstdint>

namespace bnn::quant {

// Real multiplier m encoded as mult * 2^(shift - 31) with mult a Q31 value
// whose magnitude lies in [2^30, 2^31) (or 0 for m == 0).
struct FixedMultiplier {
  std::int32_t mult = 0;
  int shift = 0;
};

// Encodes an arbitrary finite real multiplier (sign allowed).
FixedMultiplier quantize_multiplier(double value);

// Decodes back to double (for diagnostics / error-bound tests).
double multiplier_value(FixedMultiplier m);

// Rounding doubling high multiply: (a*b*2) >> 32 with round-to-nearest and
// INT32_MIN*INT32_MIN saturation — gemmlowp/TFLite semantics.
std::int32_t saturating_rounding_doubling_high_mul(std::int32_t a, std::int32_t b);

// x / 2^exponent with round-to-nearest (ties away from zero on the positive
// side, gemmlowp semantics); exponent >= 0.
std::int32_t rounding_divide_by_pot(std::int32_t x, int exponent);

// y = x * m (rounded), the requantization workhorse.
std::int32_t fixed_multiply(std::int32_t x, FixedMultiplier m);

// Clamp to the int8 range.
std::int8_t saturate_int8(std::int32_t x);

// Integer division with round-half-away-from-zero (used by average pooling).
std::int32_t rounded_div(std::int64_t numerator, std::int64_t denominator);

}  // namespace bnn::quant

#endif  // BNN_QUANT_FIXED_POINT_H
