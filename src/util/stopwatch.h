// Wall-clock stopwatch for coarse host-side timing (training loops,
// example programs). Benchmarks use google-benchmark's timers instead.
#ifndef BNN_UTIL_STOPWATCH_H
#define BNN_UTIL_STOPWATCH_H

#include <chrono>

namespace bnn::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace bnn::util

#endif  // BNN_UTIL_STOPWATCH_H
