#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace bnn::util {

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::to_string() const {
  // Column widths over header + all rows.
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const Row& row : rows_)
    if (!row.separator) widen(row.cells);

  std::ostringstream out;
  if (!title_.empty()) out << title_ << '\n';

  auto emit = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << '+';
    for (std::size_t width : widths) out << std::string(width + 2, '-') << '+';
    out << '\n';
  };

  emit_rule();
  if (!header_.empty()) {
    emit(header_);
    emit_rule();
  }
  for (const Row& row : rows_) {
    if (row.separator)
      emit_rule();
    else
      emit(row.cells);
  }
  emit_rule();
  return out.str();
}

std::string fixed(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

std::string mean_std(double mean, double stddev, int digits) {
  return fixed(mean, digits) + " +/- " + fixed(stddev, digits);
}

}  // namespace bnn::util
