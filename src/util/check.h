// Precondition / invariant checking helpers.
//
// `require` guards public-API preconditions (throws std::invalid_argument);
// `ensure` guards internal invariants and postconditions (throws
// std::logic_error). Both are plain functions so call sites stay
// expression-friendly and macro-free.
#ifndef BNN_UTIL_CHECK_H
#define BNN_UTIL_CHECK_H

#include <stdexcept>
#include <string>

namespace bnn::util {

// Throw std::invalid_argument with `what` unless `condition` holds.
inline void require(bool condition, const std::string& what) {
  if (!condition) throw std::invalid_argument(what);
}

// Throw std::logic_error with `what` unless `condition` holds.
inline void ensure(bool condition, const std::string& what) {
  if (!condition) throw std::logic_error(what);
}

}  // namespace bnn::util

#endif  // BNN_UTIL_CHECK_H
