// Precondition / invariant checking helpers.
//
// `require` guards public-API preconditions (throws std::invalid_argument);
// `ensure` guards internal invariants and postconditions (throws
// std::logic_error). Both are plain functions so call sites stay
// expression-friendly and macro-free.
#ifndef BNN_UTIL_CHECK_H
#define BNN_UTIL_CHECK_H

// The codebase requires C++20 (defaulted operator== in quant/qtensor.h,
// CTAD and ranged constructs elsewhere). Without this guard a C++17 build
// dies in a confusing cascade of comparison-operator errors; fail here with
// one readable diagnostic instead.
#if (defined(_MSVC_LANG) ? _MSVC_LANG : __cplusplus) < 202002L
#error "This project requires C++20: compile with -std=c++20 (or /std:c++20)."
#endif

#include <stdexcept>
#include <string>

namespace bnn::util {

// Throw std::invalid_argument with `what` unless `condition` holds.
inline void require(bool condition, const std::string& what) {
  if (!condition) throw std::invalid_argument(what);
}

// Throw std::logic_error with `what` unless `condition` holds.
inline void ensure(bool condition, const std::string& what) {
  if (!condition) throw std::logic_error(what);
}

}  // namespace bnn::util

#endif  // BNN_UTIL_CHECK_H
