// Plain-text table formatting used by the benchmark harnesses to print
// paper-style tables (Table I-IV) with aligned columns.
#ifndef BNN_UTIL_TABLE_H
#define BNN_UTIL_TABLE_H

#include <string>
#include <vector>

namespace bnn::util {

class TextTable {
 public:
  // `title` is printed above the table; pass "" for none.
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void add_separator();

  // Render with single-space-padded columns and '|' separators.
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

// Format a double with `digits` digits after the decimal point.
std::string fixed(double value, int digits);

// Format as "mean ± std" with `digits` digits.
std::string mean_std(double mean, double stddev, int digits);

}  // namespace bnn::util

#endif  // BNN_UTIL_TABLE_H
