// Running mean / standard deviation accumulator (Welford), used to report
// the paper's "mean ± std over 5 repeats" rows.
#ifndef BNN_UTIL_SUMMARY_H
#define BNN_UTIL_SUMMARY_H

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace bnn::util {

class MeanStd {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }

  // Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  // m2_ can drift epsilon-negative through float cancellation when all
  // samples are equal; clamp before the square root.
  double stddev() const {
    if (n_ < 2) return 0.0;
    return std::sqrt(std::max(0.0, m2_) / static_cast<double>(n_ - 1));
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace bnn::util

#endif  // BNN_UTIL_SUMMARY_H
