// Deterministic random number generation.
//
// Every stochastic component in this repository takes an explicit Rng (or a
// seed) so that experiments are reproducible run-to-run; there is no global
// generator. `fork` derives an independent stream, used to give each
// dataset / layer / repeat its own deterministic randomness.
#ifndef BNN_UTIL_RNG_H
#define BNN_UTIL_RNG_H

#include <cstdint>
#include <random>

namespace bnn::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed), seed_(seed) {}

  // Uniform real in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  // Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Standard normal scaled to N(mean, stddev^2).
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Bernoulli draw: true with probability p.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  // Raw 64-bit draw.
  std::uint64_t next_u64() { return engine_(); }

  // Derive an independent deterministic stream. Mixing the parent seed with
  // the stream id through splitmix64 keeps sibling streams decorrelated.
  Rng fork(std::uint64_t stream_id) const {
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ull * (stream_id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z = z ^ (z >> 31);
    return Rng(z);
  }

  std::uint64_t seed() const { return seed_; }
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace bnn::util

#endif  // BNN_UTIL_RNG_H
