#include "train/sgd.h"

#include "util/check.h"

namespace bnn::train {

Sgd::Sgd(double learning_rate, double momentum, double weight_decay)
    : learning_rate_(learning_rate), momentum_(momentum), weight_decay_(weight_decay) {
  util::require(learning_rate > 0.0, "sgd: learning rate must be positive");
  util::require(momentum >= 0.0 && momentum < 1.0, "sgd: momentum must be in [0, 1)");
  util::require(weight_decay >= 0.0, "sgd: weight decay must be non-negative");
}

void Sgd::step(const std::vector<nn::Param*>& params) {
  for (nn::Param* param : params) {
    if (param->grad.empty()) continue;  // parameter untouched by this batch
    util::ensure(param->grad.same_shape(param->value), "sgd: grad/value shape mismatch");
    nn::Tensor& velocity = velocity_[param];
    if (!velocity.same_shape(param->value)) velocity = nn::Tensor(param->value.shape());
    const float lr = static_cast<float>(learning_rate_);
    const float mu = static_cast<float>(momentum_);
    const float wd = static_cast<float>(weight_decay_);
    for (std::int64_t i = 0; i < param->value.numel(); ++i) {
      const float g = param->grad[i] + wd * param->value[i];
      velocity[i] = mu * velocity[i] + g;
      param->value[i] -= lr * velocity[i];
    }
  }
}

}  // namespace bnn::train
