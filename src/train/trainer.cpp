#include "train/trainer.h"

#include <cstdio>

#include "train/loss.h"
#include "train/sgd.h"
#include "util/check.h"

namespace bnn::train {

std::vector<EpochStats> fit(nn::Model& model, const data::Dataset& train_set,
                            const TrainConfig& config) {
  util::require(train_set.size() > 0, "fit: empty training set");
  util::require(config.epochs >= 1 && config.batch_size >= 1, "fit: bad config");

  nn::Network& net = model.net();
  net.set_training(true);
  Sgd optimizer(config.learning_rate, config.momentum, config.weight_decay);
  util::Rng rng(config.seed);

  data::Dataset shuffled = train_set.subset(0, train_set.size());
  std::vector<EpochStats> history;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    shuffled.shuffle(rng);
    double loss_sum = 0.0;
    int batches = 0;
    int correct = 0;
    for (int start = 0; start < shuffled.size(); start += config.batch_size) {
      const data::Batch batch = shuffled.batch(start, config.batch_size);
      net.zero_grad();
      const nn::Tensor logits = net.forward(batch.images);
      const LossResult loss = softmax_cross_entropy(logits, batch.labels);
      net.backward(loss.grad);
      optimizer.step(net.params());

      loss_sum += loss.loss;
      ++batches;
      for (int n = 0; n < logits.size(0); ++n) {
        int best = 0;
        for (int k = 1; k < logits.size(1); ++k)
          if (logits.v2(n, k) > logits.v2(n, best)) best = k;
        if (best == batch.labels[static_cast<std::size_t>(n)]) ++correct;
      }
    }
    EpochStats stats;
    stats.mean_loss = loss_sum / static_cast<double>(batches);
    stats.train_accuracy = static_cast<double>(correct) / shuffled.size();
    history.push_back(stats);
    if (config.verbose)
      std::printf("epoch %d: loss %.4f train-acc %.3f\n", epoch + 1, stats.mean_loss,
                  stats.train_accuracy);
    optimizer.set_learning_rate(optimizer.learning_rate() * config.lr_decay);
  }
  net.set_training(false);
  return history;
}

double evaluate_accuracy(nn::Model& model, const data::Dataset& test_set, int batch_size) {
  util::require(test_set.size() > 0, "evaluate_accuracy: empty test set");
  nn::Network& net = model.net();
  net.set_training(false);
  int correct = 0;
  for (int start = 0; start < test_set.size(); start += batch_size) {
    const data::Batch batch = test_set.batch(start, batch_size);
    const nn::Tensor logits = net.forward(batch.images);
    for (int n = 0; n < logits.size(0); ++n) {
      int best = 0;
      for (int k = 1; k < logits.size(1); ++k)
        if (logits.v2(n, k) > logits.v2(n, best)) best = k;
      if (best == batch.labels[static_cast<std::size_t>(n)]) ++correct;
    }
  }
  return static_cast<double>(correct) / test_set.size();
}

}  // namespace bnn::train
