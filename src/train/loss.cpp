#include "train/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bnn::train {

LossResult softmax_cross_entropy(const nn::Tensor& logits, const std::vector<int>& labels) {
  util::require(logits.dim() == 2, "softmax_cross_entropy expects (N, K) logits");
  const int batch = logits.size(0);
  const int classes = logits.size(1);
  util::require(static_cast<int>(labels.size()) == batch,
                "softmax_cross_entropy: label count mismatch");

  LossResult result;
  result.grad = nn::Tensor(logits.shape());
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int n = 0; n < batch; ++n) {
    const int label = labels[static_cast<std::size_t>(n)];
    util::require(label >= 0 && label < classes, "softmax_cross_entropy: label out of range");
    const float* row = logits.data() + logits.index2(n, 0);
    float* grad_row = result.grad.data() + result.grad.index2(n, 0);

    const float row_max = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (int k = 0; k < classes; ++k) denom += std::exp(static_cast<double>(row[k] - row_max));
    const double log_denom = std::log(denom);
    total += -(static_cast<double>(row[label] - row_max) - log_denom);
    for (int k = 0; k < classes; ++k) {
      const double p = std::exp(static_cast<double>(row[k] - row_max)) / denom;
      grad_row[k] = (static_cast<float>(p) - (k == label ? 1.0f : 0.0f)) * inv_batch;
    }
  }
  result.loss = total / static_cast<double>(batch);
  return result;
}

}  // namespace bnn::train
