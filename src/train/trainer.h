// Minibatch training loop for the float reference networks. This is the
// substrate replacing the paper's PyTorch training setup: partial-BNN models
// are trained with their active MCD sites dropping filters exactly as they
// will at inference time.
#ifndef BNN_TRAIN_TRAINER_H
#define BNN_TRAIN_TRAINER_H

#include <vector>

#include "data/dataset.h"
#include "nn/models.h"

namespace bnn::train {

struct TrainConfig {
  int epochs = 3;
  int batch_size = 32;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  // Learning rate is multiplied by lr_decay at each epoch boundary.
  double lr_decay = 0.7;
  std::uint64_t seed = 42;
  bool verbose = false;
};

struct EpochStats {
  double mean_loss = 0.0;
  double train_accuracy = 0.0;
};

// Trains in place; returns per-epoch statistics.
std::vector<EpochStats> fit(nn::Model& model, const data::Dataset& train_set,
                            const TrainConfig& config);

// Deterministic (dropout-free prefix aside) top-1 accuracy of the current
// weights on a dataset; runs in evaluation mode with active MCD sites left
// as configured (pass a point network for clean accuracy).
double evaluate_accuracy(nn::Model& model, const data::Dataset& test_set, int batch_size = 64);

}  // namespace bnn::train

#endif  // BNN_TRAIN_TRAINER_H
