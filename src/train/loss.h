// Fused softmax + cross-entropy loss (mean reduction over the batch).
#ifndef BNN_TRAIN_LOSS_H
#define BNN_TRAIN_LOSS_H

#include <vector>

#include "nn/tensor.h"

namespace bnn::train {

struct LossResult {
  double loss = 0.0;   // mean negative log-likelihood
  nn::Tensor grad;     // d loss / d logits, shape (N, K)
};

// `logits` is (N, K); labels holds N class indices.
LossResult softmax_cross_entropy(const nn::Tensor& logits, const std::vector<int>& labels);

}  // namespace bnn::train

#endif  // BNN_TRAIN_LOSS_H
