// Stochastic gradient descent with classical momentum and decoupled-from-
// nothing (standard L2) weight decay.
#ifndef BNN_TRAIN_SGD_H
#define BNN_TRAIN_SGD_H

#include <unordered_map>
#include <vector>

#include "nn/layer.h"

namespace bnn::train {

class Sgd {
 public:
  Sgd(double learning_rate, double momentum = 0.9, double weight_decay = 0.0);

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

  // Applies one update to every parameter; gradients are left untouched
  // (call Network::zero_grad() before the next backward pass).
  void step(const std::vector<nn::Param*>& params);

 private:
  double learning_rate_;
  double momentum_;
  double weight_decay_;
  std::unordered_map<nn::Param*, nn::Tensor> velocity_;
};

}  // namespace bnn::train

#endif  // BNN_TRAIN_SGD_H
