#include "bayes/predictive.h"

#include <algorithm>
#include <cmath>

#include "nn/activations.h"
#include "util/check.h"

namespace bnn::bayes {

nn::Tensor mc_predict(nn::Model& model, const nn::Tensor& images,
                      const PredictiveOptions& options) {
  util::require(options.num_samples >= 1, "mc_predict: need at least one sample");
  util::require(images.dim() == 4, "mc_predict expects NCHW images");

  nn::Network& net = model.net();
  net.set_training(false);

  // Deterministic model: one pass is exact.
  if (model.bayesian_layers() == 0) return nn::softmax_rows(net.forward(images));

  nn::Tensor probs = nn::softmax_rows(net.forward(images));
  const nn::Network::NodeId cut = model.first_active_site();
  for (int s = 1; s < options.num_samples; ++s) {
    const nn::Tensor logits =
        options.use_intermediate_caching ? net.replay_from(cut) : net.forward(images);
    probs.add_(nn::softmax_rows(logits));
  }
  probs.scale_(1.0f / static_cast<float>(options.num_samples));
  return probs;
}

const std::vector<int>& paper_sample_grid() {
  static const std::vector<int> grid{3, 4, 5, 6, 7, 8, 9, 10, 20, 50, 100};
  return grid;
}

std::vector<int> paper_bayes_grid(int num_sites) {
  util::require(num_sites >= 1, "paper_bayes_grid: need at least one site");
  auto portion = [num_sites](double fraction) {
    const int value = static_cast<int>(std::lround(fraction * num_sites));
    return std::clamp(value, 1, num_sites);
  };
  std::vector<int> grid{1, portion(1.0 / 3.0), portion(0.5), portion(2.0 / 3.0), num_sites};
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

}  // namespace bnn::bayes
