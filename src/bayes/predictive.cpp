#include "bayes/predictive.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/dropout.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace bnn::bayes {

nn::Tensor mc_predict(nn::Model& model, const nn::Tensor& images,
                      const PredictiveOptions& options) {
  util::require(options.num_samples >= 1, "mc_predict: need at least one sample");
  util::require(images.dim() == 4, "mc_predict expects NCHW images");

  nn::Network& net = model.net();
  net.set_training(false);

  // Deterministic model: one pass is exact.
  if (model.bayesian_layers() == 0) return nn::softmax_rows(net.forward(images));

  const int bayes_layers = model.bayesian_layers();
  const nn::Network::NodeId cut = model.first_active_site();
  const nn::Network::NodeId replay_start = options.use_intermediate_caching ? cut : 1;

  // Deterministic prefix, computed once and shared read-only by every
  // sample — the paper's IC cache. Only nodes before the replay start are
  // computed (all sites there are inactive by construction of the cut).
  net.prepare_replay(images, replay_start);

  // Stream roots of the active sites, gathered up front so workers never
  // touch the (non-thread-safe) Model accessors.
  struct ActiveSite {
    nn::Network::NodeId node;
    std::uint64_t seed;
    double p;
  };
  std::vector<ActiveSite> active_sites;
  const int first_active = model.num_sites() - bayes_layers;
  for (int i = first_active; i < model.num_sites(); ++i) {
    nn::McDropout& site = model.site(i);
    util::require(!site.has_external_mask_source(),
                  "mc_predict: active site has an external mask source; the parallel "
                  "runner derives per-sample streams from the site seed "
                  "(Model::reseed_sites) and would silently ignore it");
    active_sites.push_back({model.site_nodes()[static_cast<std::size_t>(i)],
                            site.seed(), site.p()});
  }

  const int num_samples = options.num_samples;
  std::vector<nn::Tensor> sample_probs(static_cast<std::size_t>(num_samples));
  runtime::ThreadPool pool(
      std::min(runtime::resolve_thread_count(options.num_threads), num_samples));
  pool.parallel_for(num_samples, [&](std::int64_t s) {
    // Independent per-(site, sample) streams: sample s is computable with
    // no knowledge of which thread ran the other samples.
    std::vector<std::unique_ptr<nn::RngMaskSource>> sources;
    std::vector<nn::MaskSource*> site_masks(static_cast<std::size_t>(net.num_nodes()),
                                            nullptr);
    for (const ActiveSite& site : active_sites) {
      sources.push_back(std::make_unique<nn::RngMaskSource>(
          site.p, util::Rng(site.seed).fork(static_cast<std::uint64_t>(s))));
      site_masks[static_cast<std::size_t>(site.node)] = sources.back().get();
    }
    sample_probs[static_cast<std::size_t>(s)] =
        nn::softmax_rows(net.replay_suffix(replay_start, site_masks));
  });

  // Fixed-order reduction: bit-identical for every thread count.
  nn::Tensor probs = std::move(sample_probs.front());
  for (int s = 1; s < num_samples; ++s)
    probs.add_(sample_probs[static_cast<std::size_t>(s)]);
  probs.scale_(1.0f / static_cast<float>(num_samples));
  return probs;
}

const std::vector<int>& paper_sample_grid() {
  static const std::vector<int> grid{3, 4, 5, 6, 7, 8, 9, 10, 20, 50, 100};
  return grid;
}

std::vector<int> paper_bayes_grid(int num_sites) {
  util::require(num_sites >= 1, "paper_bayes_grid: need at least one site");
  auto portion = [num_sites](double fraction) {
    const int value = static_cast<int>(std::lround(fraction * num_sites));
    return std::clamp(value, 1, num_sites);
  };
  std::vector<int> grid{1, portion(1.0 / 3.0), portion(0.5), portion(2.0 / 3.0), num_sites};
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

}  // namespace bnn::bayes
