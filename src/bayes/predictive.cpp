#include "bayes/predictive.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/dropout.h"
#include "runtime/thread_pool.h"
#include "util/check.h"

namespace bnn::bayes {

nn::Tensor mc_predict(nn::Model& model, const nn::Tensor& images,
                      const PredictiveOptions& options) {
  util::require(options.num_samples >= 1, "mc_predict: need at least one sample");
  util::require(images.dim() == 4, "mc_predict expects NCHW images");

  nn::Network& net = model.net();
  net.set_training(false);

  // Deterministic model: one pass is exact.
  if (model.bayesian_layers() == 0) return nn::softmax_rows(net.forward(images));

  const int bayes_layers = model.bayesian_layers();
  const nn::Network::NodeId cut = model.first_active_site();
  const nn::Network::NodeId replay_start = options.use_intermediate_caching ? cut : 1;

  // Deterministic prefix, computed once and shared read-only by every
  // sample — the paper's IC cache. Only nodes before the replay start are
  // computed (all sites there are inactive by construction of the cut).
  net.prepare_replay(images, replay_start);

  // Stream roots of the active sites, gathered up front so workers never
  // touch the (non-thread-safe) Model accessors.
  struct ActiveSite {
    nn::Network::NodeId node;
    std::uint64_t seed;
    double p;
  };
  std::vector<ActiveSite> active_sites;
  const int first_active = model.num_sites() - bayes_layers;
  for (int i = first_active; i < model.num_sites(); ++i) {
    nn::McDropout& site = model.site(i);
    util::require(!site.has_external_mask_source(),
                  "mc_predict: active site has an external mask source; the parallel "
                  "runner derives per-sample streams from the site seed "
                  "(Model::reseed_sites) and would silently ignore it");
    active_sites.push_back({model.site_nodes()[static_cast<std::size_t>(i)],
                            site.seed(), site.p()});
  }

  // Flattened (image, sample) pair space: one parallel_for over N×S lanes,
  // so a small-S / large-N batch still fills every pool lane. Each pair
  // replays only its own image's suffix against the shared batch prefix.
  const int batch = images.size(0);
  const int num_samples = options.num_samples;
  const std::int64_t total_pairs =
      static_cast<std::int64_t>(batch) * static_cast<std::int64_t>(num_samples);
  std::vector<nn::Tensor> pair_probs(static_cast<std::size_t>(total_pairs));

  // Shared per-image slice caches: an image's prefix rows are cut once by
  // whichever of its S lanes arrives first, not once per sample.
  std::vector<nn::Network::ReplayRowCache> row_caches;
  row_caches.reserve(static_cast<std::size_t>(batch));
  for (int n = 0; n < batch; ++n) row_caches.emplace_back(net.num_nodes());

  runtime::ThreadPool& pool = options.pool ? *options.pool : runtime::shared_pool();
  pool.parallel_for(
      total_pairs,
      [&](std::int64_t pair) {
        const int n = static_cast<int>(pair / num_samples);
        const int s = static_cast<int>(pair % num_samples);
        // Per-worker reusable scratch (thread_local = pool-lane keyed): the
        // replay arena's node buffers, the mask sources, and the site-mask
        // pointer table all stop churning the allocator after each worker's
        // first pair — the fix for the per-sample scratch allocations of
        // deep suffixes (VGG-11/ResNet-18 at L = N). Pool workers run pair
        // bodies one at a time, never nested, so a thread_local is owned by
        // exactly one pair at any moment.
        struct PairScratch {
          nn::Network::ReplayArena arena;
          std::vector<nn::RngMaskSource> sources;
          std::vector<nn::MaskSource*> site_masks;
        };
        thread_local PairScratch scratch;
        // Independent per-(site, image, sample) streams: a pair is
        // computable with no knowledge of which thread ran the others, and
        // image n's masks depend only on its stream id, not on the batch.
        scratch.sources.clear();
        scratch.sources.reserve(active_sites.size());  // no realloc: pointers below stay valid
        scratch.site_masks.assign(static_cast<std::size_t>(net.num_nodes()), nullptr);
        for (const ActiveSite& site : active_sites) {
          scratch.sources.emplace_back(
              site.p, util::Rng(site.seed)
                          .fork(options.image_stream_base + static_cast<std::uint64_t>(n))
                          .fork(static_cast<std::uint64_t>(s)));
          scratch.site_masks[static_cast<std::size_t>(site.node)] = &scratch.sources.back();
        }
        nn::softmax_rows_into(
            net.replay_suffix_row(replay_start, scratch.site_masks, n,
                                  &row_caches[static_cast<std::size_t>(n)], &scratch.arena),
            pair_probs[static_cast<std::size_t>(pair)]);
      },
      runtime::resolve_thread_count(options.num_threads));

  // Fixed-order reduction per image: bit-identical for every thread count.
  nn::Tensor probs({batch, model.num_classes()});
  for (int n = 0; n < batch; ++n) {
    const std::size_t offset = static_cast<std::size_t>(n) * num_samples;
    nn::Tensor accumulated = std::move(pair_probs[offset]);
    for (int s = 1; s < num_samples; ++s)
      accumulated.add_(pair_probs[offset + static_cast<std::size_t>(s)]);
    accumulated.scale_(1.0f / static_cast<float>(num_samples));
    for (int k = 0; k < model.num_classes(); ++k) probs.v2(n, k) = accumulated.v2(0, k);
  }
  return probs;
}

const std::vector<int>& paper_sample_grid() {
  static const std::vector<int> grid{3, 4, 5, 6, 7, 8, 9, 10, 20, 50, 100};
  return grid;
}

std::vector<int> paper_bayes_grid(int num_sites) {
  util::require(num_sites >= 1, "paper_bayes_grid: need at least one site");
  auto portion = [num_sites](double fraction) {
    const int value = static_cast<int>(std::lround(fraction * num_sites));
    return std::clamp(value, 1, num_sites);
  };
  std::vector<int> grid{1, portion(1.0 / 3.0), portion(0.5), portion(2.0 / 3.0), num_sites};
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

}  // namespace bnn::bayes
