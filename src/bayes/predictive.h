// Monte Carlo predictive inference for partial BNNs (Section II-B/II-C).
//
// The predictive distribution is approximated with S stochastic forward
// passes: p(y|x) ~= 1/S * sum_s softmax(f(x; M_s)) with fresh filter-wise
// Bernoulli masks M_s at every active MCD site. When the model is partially
// Bayesian (last L sites active) the runner exploits the software analogue
// of the paper's intermediate-layer caching: the deterministic prefix runs
// once, and only the suffix from the first active site is replayed per
// sample — the exact computation the hardware IC schedule performs.
#ifndef BNN_BAYES_PREDICTIVE_H
#define BNN_BAYES_PREDICTIVE_H

#include <cstdint>

#include "nn/models.h"
#include "nn/tensor.h"

namespace bnn::runtime {
class ThreadPool;
}

namespace bnn::bayes {

struct PredictiveOptions {
  int num_samples = 10;
  /// Reuse the cached deterministic prefix (intermediate-layer caching).
  /// Turning this off recomputes all layers every sample; the result is
  /// distributionally identical, only slower — mirroring the hardware's
  /// "w/o IC" mode.
  bool use_intermediate_caching = true;
  /// Worker-lane cap for the flattened (image, sample) pair loop (0 =
  /// hardware concurrency). The result is bit-identical for every thread
  /// count: pair (n, s) at site i always draws from the independent stream
  /// Rng(site_seed_i).fork(image_stream_base + n).fork(s), and per-sample
  /// softmax outputs are reduced per image in ascending sample order.
  int num_threads = 1;
  /// Stream-family id of batch row 0; row n uses image_stream_base + n.
  /// Because masks are drawn per (site, image-stream, sample), a batched
  /// call with the default base equals the concatenation of single-image
  /// calls made with base = n — prediction is independent of how images
  /// are batched. A serving layer passes each request's stable id here.
  std::uint64_t image_stream_base = 0;
  /// Executor for the pair loop (non-owning; must outlive the call).
  /// nullptr selects the process-wide runtime::shared_pool(); num_threads
  /// still caps how many of its lanes this call uses.
  runtime::ThreadPool* pool = nullptr;
};

/// Averaged predictive probabilities, shape (N, num_classes). The model's
/// Bayesian configuration (active sites, p) must be set beforehand; a model
/// with no active site degenerates to a single deterministic pass.
///
/// The result is a pure function of (weights, images, site seeds, options):
/// masks come from per-(site, image, sample) streams derived from the
/// sites' seeds (set with Model::reseed_sites), never from the sites' live
/// RNG state, so repeated calls agree and the flattened N×S pair loop
/// parallelizes without any cross-pair ordering dependence.
nn::Tensor mc_predict(nn::Model& model, const nn::Tensor& images,
                      const PredictiveOptions& options);

/// The paper's Monte Carlo sample counts grid (Section V-A).
const std::vector<int>& paper_sample_grid();

/// The paper's Bayesian-portion grid L = {1, N/3, N/2, 2N/3, N} resolved
/// against a model's site count (deduplicated, ascending).
std::vector<int> paper_bayes_grid(int num_sites);

}  // namespace bnn::bayes

#endif  // BNN_BAYES_PREDICTIVE_H
