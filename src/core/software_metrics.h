// MetricsProvider backed by software evaluation of the float model — the
// "algorithm optimization" arm of Fig. 5: accuracy and ECE on the test set,
// aPE on Gaussian noise matched to the training data (Section V-A).
#ifndef BNN_CORE_SOFTWARE_METRICS_H
#define BNN_CORE_SOFTWARE_METRICS_H

#include <cstdint>
#include <map>
#include <utility>

#include "core/dse.h"
#include "data/dataset.h"
#include "nn/models.h"

namespace bnn::core {

class SoftwareMetricsProvider final : public MetricsProvider {
 public:
  // References must outlive the provider. `seed` decorrelates the MC mask
  // streams across (L, S) evaluations deterministically. `num_threads`
  // caps the worker lanes of each evaluation's flattened (image, sample)
  // pair loop (0 = every shared-pool lane) — this is what makes the DSE's
  // {L} x {S} paper-grid sweeps run through the thread pool instead of
  // sequentially. Purely a scheduling knob: mc_predict is bit-identical
  // for every thread count, so the MetricPoints (and hence the DSE's
  // choices) do not depend on it.
  SoftwareMetricsProvider(nn::Model& model, const data::Dataset& test_set,
                          const data::Dataset& noise_set, std::uint64_t seed = 1,
                          int num_threads = 0);

  MetricPoint evaluate(int bayes_layers, int num_samples) override;

  // Measured wall time of the last non-cached evaluate() call (both
  // mc_predict passes), milliseconds; 0 before the first. This is the
  // calibration hook for the performance model: one measured evaluation
  // against the corresponding modelled latency anchors a
  // core::PerfCalibration / serve::CostModel scale (see calibrate_perf).
  double last_evaluation_wall_ms() const { return last_wall_ms_; }

  // Cumulative measured wall milliseconds across all non-cached
  // evaluations (cache hits cost ~0 and are excluded).
  double total_evaluation_wall_ms() const { return total_wall_ms_; }

 private:
  nn::Model& model_;
  const data::Dataset& test_set_;
  const data::Dataset& noise_set_;
  std::uint64_t seed_;
  int num_threads_;
  double last_wall_ms_ = 0.0;
  double total_wall_ms_ = 0.0;
  std::map<std::pair<int, int>, MetricPoint> cache_;
};

}  // namespace bnn::core

#endif  // BNN_CORE_SOFTWARE_METRICS_H
