#include "core/dse.h"

#include <algorithm>

#include "bayes/predictive.h"
#include "util/check.h"

namespace bnn::core {

std::string opt_mode_name(OptMode mode) {
  switch (mode) {
    case OptMode::latency: return "Opt-Latency";
    case OptMode::accuracy: return "Opt-Accuracy";
    case OptMode::uncertainty: return "Opt-Uncertainty";
    case OptMode::confidence: return "Opt-Confidence";
  }
  return "unknown";
}

const Candidate& DseResult::best() const {
  util::require(best_index >= 0 && best_index < static_cast<int>(candidates.size()),
                "dse: no feasible candidate");
  return candidates[static_cast<std::size_t>(best_index)];
}

NneConfig optimize_hardware(const nn::NetworkDesc& desc, const FpgaDevice& device,
                            double clock_mhz, int sampler_fifo_depth, int num_lfsrs) {
  NneConfig best;
  bool found = false;
  double best_latency = 0.0;
  std::int64_t best_alms = 0;

  for (int pc : pc_domain()) {
    for (int pf : pf_domain()) {
      for (int pv : pv_domain()) {
        NneConfig config;
        config.pc = pc;
        config.pf = pf;
        config.pv = pv;
        config.clock_mhz = clock_mhz;
        const ResourceUsage usage =
            estimate_resources(config, desc, device, sampler_fifo_depth, num_lfsrs);
        if (!fits(usage, device)) continue;

        // Modelled single-pass latency on the workload (compute only; the
        // memory side is identical across configs of equal parallelism).
        double cycles = 0.0;
        for (const nn::HwLayer& layer : desc.layers)
          cycles += static_cast<double>(estimate_layer_cycles(layer, config));

        const bool better =
            !found ||
            config.macs_per_cycle() > best.macs_per_cycle() ||
            (config.macs_per_cycle() == best.macs_per_cycle() && cycles < best_latency) ||
            (config.macs_per_cycle() == best.macs_per_cycle() && cycles == best_latency &&
             usage.alms_used < best_alms);
        if (better) {
          best = config;
          best_latency = cycles;
          best_alms = usage.alms_used;
          found = true;
        }
      }
    }
  }
  util::require(found, "optimize_hardware: no configuration fits the device");
  return best;
}

bool candidate_better(const Candidate& a, const Candidate& b, OptMode mode) {
  switch (mode) {
    case OptMode::latency: return a.latency_ms < b.latency_ms;
    case OptMode::accuracy: return a.metrics.accuracy > b.metrics.accuracy;
    case OptMode::uncertainty: return a.metrics.ape > b.metrics.ape;
    case OptMode::confidence: return a.metrics.ece < b.metrics.ece;
  }
  return false;
}

DseResult run_dse(const nn::NetworkDesc& desc, MetricsProvider& metrics,
                  const DseOptions& options) {
  DseResult result;
  result.hardware = optimize_hardware(desc, options.device, options.clock_mhz,
                                      options.sampler_fifo_depth, options.num_lfsrs);
  result.resources = estimate_resources(result.hardware, desc, options.device,
                                        options.sampler_fifo_depth, options.num_lfsrs);

  const std::vector<int> bayes_grid =
      options.bayes_grid.empty() ? bayes::paper_bayes_grid(desc.num_sites())
                                 : options.bayes_grid;
  const std::vector<int> sample_grid =
      options.sample_grid.empty() ? bayes::paper_sample_grid() : options.sample_grid;

  const PerfConfig perf{result.hardware, options.ddr};
  for (int bayes_layers : bayes_grid) {
    for (int num_samples : sample_grid) {
      Candidate candidate;
      candidate.bayes_layers = bayes_layers;
      candidate.num_samples = num_samples;
      candidate.latency_ms = estimate_mc(desc, perf, bayes_layers, num_samples,
                                         options.use_intermediate_caching)
                                 .latency_ms;
      candidate.metrics = metrics.evaluate(bayes_layers, num_samples);

      const Requirements& req = options.requirements;
      candidate.feasible =
          (!req.max_latency_ms || candidate.latency_ms <= *req.max_latency_ms) &&
          (!req.min_accuracy || candidate.metrics.accuracy >= *req.min_accuracy) &&
          (!req.min_ape || candidate.metrics.ape >= *req.min_ape) &&
          (!req.max_ece || candidate.metrics.ece <= *req.max_ece);

      if (candidate.feasible &&
          (result.best_index < 0 ||
           candidate_better(candidate,
                            result.candidates[static_cast<std::size_t>(result.best_index)],
                            options.mode)))
        result.best_index = static_cast<int>(result.candidates.size());
      result.candidates.push_back(candidate);
    }
  }
  return result;
}

}  // namespace bnn::core
