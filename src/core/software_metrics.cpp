#include "core/software_metrics.h"

#include <chrono>

#include "bayes/predictive.h"
#include "metrics/metrics.h"

namespace bnn::core {

SoftwareMetricsProvider::SoftwareMetricsProvider(nn::Model& model,
                                                 const data::Dataset& test_set,
                                                 const data::Dataset& noise_set,
                                                 std::uint64_t seed, int num_threads)
    : model_(model),
      test_set_(test_set),
      noise_set_(noise_set),
      seed_(seed),
      num_threads_(num_threads) {}

MetricPoint SoftwareMetricsProvider::evaluate(int bayes_layers, int num_samples) {
  const auto key = std::make_pair(bayes_layers, num_samples);
  const auto hit = cache_.find(key);
  if (hit != cache_.end()) return hit->second;

  model_.set_bayesian_last(bayes_layers);
  model_.reseed_sites(seed_ + 1000003ull * static_cast<std::uint64_t>(bayes_layers) +
                      static_cast<std::uint64_t>(num_samples));

  bayes::PredictiveOptions options;
  options.num_samples = num_samples;
  // Fan each evaluation's (image, sample) pairs across the shared pool —
  // bit-identical to the sequential path for every thread count.
  options.num_threads = num_threads_;

  MetricPoint point;
  const auto started = std::chrono::steady_clock::now();
  const nn::Tensor test_probs = bayes::mc_predict(model_, test_set_.images(), options);
  point.accuracy = metrics::accuracy(test_probs, test_set_.labels());
  point.ece = metrics::expected_calibration_error(test_probs, test_set_.labels());
  const nn::Tensor noise_probs = bayes::mc_predict(model_, noise_set_.images(), options);
  point.ape = metrics::average_predictive_entropy(noise_probs);
  last_wall_ms_ = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - started)
                      .count();
  total_wall_ms_ += last_wall_ms_;

  cache_.emplace(key, point);
  return point;
}

}  // namespace bnn::core
