// Hardware-style Gaussian random number generator (extension).
//
// The paper's main comparator, VIBNN [Cai et al.], accelerates BNNs whose
// weights are Gaussian posteriors and therefore needs a Gaussian RNG in
// hardware. The classic FPGA-friendly construction is central-limit
// summation: add K independent uniform samples (here: W-bit words shifted
// out of maximal-length LFSRs) and normalize. This module provides that
// sampler so the VIBNN baseline (src/baseline/vibnn_model.h) can be
// implemented functionally instead of merely quoting its published numbers.
//
// With K uniform W-bit words U_i ~ Uniform{0..2^W-1}:
//   sum = sum_i U_i,  mean = K*(2^W-1)/2,  var = K*(2^W^2-1)/12 ~ K*2^2W/12
//   z   = (sum - mean) / sqrt(var)   approximately N(0,1) for K >= 8.
#ifndef BNN_CORE_GAUSSIAN_SAMPLER_H
#define BNN_CORE_GAUSSIAN_SAMPLER_H

#include <cstdint>
#include <vector>

#include "core/lfsr.h"

namespace bnn::core {

struct GaussianSamplerConfig {
  int clt_terms = 12;        // K: uniforms summed per output sample
  int uniform_bits = 16;     // W: bits per uniform word
  std::uint64_t seed = 1;
};

class GaussianSampler {
 public:
  explicit GaussianSampler(const GaussianSamplerConfig& config);

  // One approximately-standard-normal sample. Costs K*W LFSR steps, which
  // is what the hardware pays in cycles (W bits per uniform, K uniforms).
  double next();

  // Convenience: z * stddev + mean.
  double next(double mean, double stddev) { return next() * stddev + mean; }

  int clt_terms() const { return config_.clt_terms; }
  int uniform_bits() const { return config_.uniform_bits; }
  std::uint64_t samples_produced() const { return samples_; }
  // LFSR cycles consumed so far (the hardware cost model).
  std::uint64_t lfsr_steps() const { return steps_; }

 private:
  std::uint64_t next_uniform();

  GaussianSamplerConfig config_;
  std::vector<Lfsr> lfsrs_;  // one per CLT term, stepped W bits per sample
  double mean_;
  double inv_std_;
  std::uint64_t samples_ = 0;
  std::uint64_t steps_ = 0;
  int which_ = 0;
};

}  // namespace bnn::core

#endif  // BNN_CORE_GAUSSIAN_SAMPLER_H
