// Hardware Bernoulli sampler (paper Fig. 3).
//
// An AND-tree over k independent 128-bit LFSRs produces one drop bit per
// cycle with P(drop) = 2^-k (k = 1 gives the paper's single-LFSR p = 0.5
// case; k = 2 with the extra AND gate gives p = 0.25). A serial-in
// parallel-out (SIPO) register assembles PF bits into one Dropout-Unit mask
// word, and a FIFO decouples mask production from the NNE's consumption
// rate.
//
// The class is both a cycle-level component (step_cycle / pop_word, used by
// the timing model and the occupancy tests) and a functional MaskSource
// (next_drop), so the simulated accelerator and the integer reference
// executor can consume the exact same mask stream.
#ifndef BNN_CORE_BERNOULLI_SAMPLER_H
#define BNN_CORE_BERNOULLI_SAMPLER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "core/lfsr.h"
#include "nn/dropout.h"

namespace bnn::core {

struct BernoulliSamplerConfig {
  double p = 0.25;          // drop probability; must be 2^-k, k in [1, 8]
  int pf = 64;              // mask word width (filter parallelism)
  int fifo_depth = 16;      // FIFO capacity in PF-bit words
  std::uint64_t seed = 1;   // seeds all LFSRs (decorrelated per register)
};

class BernoulliSampler final : public nn::MaskSource {
 public:
  explicit BernoulliSampler(const BernoulliSamplerConfig& config);

  // Rewinds the sampler to the freshly-constructed state under a new seed:
  // re-derives every LFSR's registers exactly as the constructor does and
  // clears the SIPO/FIFO/statistics. Bit-identical to constructing a new
  // sampler with the same config and `seed` (pinned by tests), but
  // allocation-free — the accelerator's lane arena reuses one sampler
  // across Monte Carlo samples. p/pf/fifo_depth are unchanged.
  void reseed(std::uint64_t seed);

  // --- functional interface -------------------------------------------
  // One raw drop decision (advances every LFSR one step).
  bool next_drop() override;

  // --- cycle-level interface ------------------------------------------
  // Advances one clock: produces one bit into the SIPO unless the FIFO is
  // full and the SIPO already holds a complete word (a stall cycle).
  void step_cycle();
  // Pops the oldest PF-bit mask word; false when the FIFO is empty.
  bool pop_word(std::vector<std::uint8_t>& word);
  int fifo_occupancy() const { return static_cast<int>(fifo_.size()); }

  // --- configuration / statistics -------------------------------------
  int num_lfsrs() const { return static_cast<int>(lfsrs_.size()); }
  double p() const { return config_.p; }
  int pf() const { return config_.pf; }
  int fifo_depth() const { return config_.fifo_depth; }
  std::uint64_t bits_produced() const { return bits_produced_; }
  std::uint64_t words_pushed() const { return words_pushed_; }
  std::uint64_t stall_cycles() const { return stall_cycles_; }

 private:
  int raw_drop_bit();

  BernoulliSamplerConfig config_;
  std::vector<Lfsr> lfsrs_;
  std::vector<std::uint8_t> sipo_;
  int sipo_fill_ = 0;
  std::deque<std::vector<std::uint8_t>> fifo_;
  std::uint64_t bits_produced_ = 0;
  std::uint64_t words_pushed_ = 0;
  std::uint64_t stall_cycles_ = 0;
};

// Number of LFSRs (AND-tree inputs) required for a drop probability of
// 2^-k; throws unless p is an exact power of two in [2^-8, 0.5].
int lfsrs_for_probability(double p);

}  // namespace bnn::core

#endif  // BNN_CORE_BERNOULLI_SAMPLER_H
