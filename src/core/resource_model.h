// FPGA resource model (paper Section IV-B, reproduced in Table II).
//
// Paper formulas:
//   DSP        = PC*PF*PV / 2            (two int8 multipliers per DSP)
//   MEM_fifo   = D * PF * DW             (Bernoulli sampler FIFO)
//   MEM_in     = max_i(Ci*Hi*Wi) * DW    (input buffer)
//   MEM_weight = max_i(Ci*Ki*Ki) * PF * DW (weight buffer: PF filters)
//
// Mapping those requirements onto a device involves effects the paper
// reports but does not model (Table II shows 1473 of 1518 DSPs used for a
// PC=PF=64, PV=1 design that nominally needs 2048): when the DSP demand
// exceeds the device, synthesis spills multipliers into ALM logic. The
// constants in MappingCalibration capture that spill and the logic cost of
// the PE adder trees / FU chain / sampler; they are calibrated so the
// paper's configuration on the Arria 10 SX660 lands near the published
// utilization row, and they are surfaced explicitly so the benches can
// print model-vs-paper honestly.
#ifndef BNN_CORE_RESOURCE_MODEL_H
#define BNN_CORE_RESOURCE_MODEL_H

#include <string>

#include "core/nne.h"
#include "nn/netdesc.h"

namespace bnn::core {

struct FpgaDevice {
  std::string name;
  std::int64_t alms = 0;
  std::int64_t registers = 0;
  int dsps = 0;
  int m20k_blocks = 0;
  int m20k_bits_per_block = 20480;
};

// The paper's target and the two comparison devices of Table IV.
FpgaDevice arria10_sx660();
FpgaDevice cyclone_v_sx();   // VIBNN's 5CGTFD9E5F35C7
FpgaDevice zynq_xc7z020();   // BYNQNet's PYNQ-Z1 (DSP48 count only)

struct MappingCalibration {
  double dsp_usable_fraction = 0.97;   // synthesis rarely packs 100% of DSPs
  double alms_per_multiplier = 42.0;   // PE glue + adder-tree share
  double alms_per_soft_multiplier = 60.0;  // int8 multiplier in ALM logic
  double alms_per_pf_lane = 400.0;     // FU chain (BN/SC/ReLU/Pool/DU) per PU
  double alms_per_lfsr = 200.0;
  double base_alms = 20000.0;          // controller, AXI, misc
  double registers_per_alm = 2.9;
  double buffer_replication = 2.0;     // double buffering of in/out/weight
  double bram_packing_efficiency = 0.85;
  int controller_m20k = 24;
};

struct ResourceUsage {
  std::int64_t multipliers = 0;
  int dsps_required = 0;  // paper formula
  int dsps_used = 0;      // after capping at the device
  std::int64_t soft_multipliers = 0;

  std::int64_t mem_bits_input = 0;
  std::int64_t mem_bits_output = 0;
  std::int64_t mem_bits_weight = 0;
  std::int64_t mem_bits_ic_cache = 0;
  std::int64_t mem_bits_fifo = 0;
  std::int64_t mem_bits_total = 0;
  int m20k_used = 0;

  std::int64_t alms_used = 0;
  std::int64_t registers_used = 0;
};

// Sizes the accelerator for a workload (buffers must hold the largest layer
// of `desc`) on `device`.
ResourceUsage estimate_resources(const NneConfig& config, const nn::NetworkDesc& desc,
                                 const FpgaDevice& device, int sampler_fifo_depth,
                                 int num_lfsrs, const MappingCalibration& cal = {});

// True when the mapped design fits the device (ALMs, registers, M20K; DSP
// overflow is legal — it spills to ALMs and is already priced there).
bool fits(const ResourceUsage& usage, const FpgaDevice& device);

}  // namespace bnn::core

#endif  // BNN_CORE_RESOURCE_MODEL_H
