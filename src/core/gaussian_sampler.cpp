#include "core/gaussian_sampler.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace bnn::core {

GaussianSampler::GaussianSampler(const GaussianSamplerConfig& config) : config_(config) {
  util::require(config.clt_terms >= 4 && config.clt_terms <= 64,
                "gaussian sampler: clt_terms must be in [4, 64]");
  util::require(config.uniform_bits >= 4 && config.uniform_bits <= 32,
                "gaussian sampler: uniform_bits must be in [4, 32]");

  util::Rng seeder(config.seed);
  for (int i = 0; i < config.clt_terms; ++i) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    while (lo == 0 && hi == 0) {
      lo = seeder.next_u64();
      hi = seeder.next_u64();
    }
    lfsrs_.push_back(make_lfsr128(lo, hi));
  }

  const double max_word = std::pow(2.0, config.uniform_bits) - 1.0;
  mean_ = config.clt_terms * max_word / 2.0;
  // Var of a discrete uniform on {0..M} is ((M+1)^2 - 1) / 12.
  const double word_var = ((max_word + 1.0) * (max_word + 1.0) - 1.0) / 12.0;
  inv_std_ = 1.0 / std::sqrt(config.clt_terms * word_var);
}

std::uint64_t GaussianSampler::next_uniform() {
  Lfsr& lfsr = lfsrs_[static_cast<std::size_t>(which_)];
  which_ = (which_ + 1) % config_.clt_terms;
  std::uint64_t word = 0;
  for (int b = 0; b < config_.uniform_bits; ++b) {
    word = (word << 1) | static_cast<std::uint64_t>(lfsr.step());
    ++steps_;
  }
  return word;
}

double GaussianSampler::next() {
  double sum = 0.0;
  for (int i = 0; i < config_.clt_terms; ++i)
    sum += static_cast<double>(next_uniform());
  ++samples_;
  return (sum - mean_) * inv_std_;
}

}  // namespace bnn::core
