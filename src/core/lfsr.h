// Bit-accurate Fibonacci linear-feedback shift registers.
//
// The paper's Bernoulli sampler (Fig. 3) is built from 128-bit 4-tap LFSRs;
// at 160 MHz a maximal-length 128-bit sequence takes ~1500 years to repeat
// [Andraka & Phelps 1998]. This module models the register chain exactly:
// one step per clock cycle, one pseudo-random bit out.
#ifndef BNN_CORE_LFSR_H
#define BNN_CORE_LFSR_H

#include <cstdint>
#include <vector>

namespace bnn::core {

// Fibonacci LFSR of up to 128 bits with XOR feedback. Tap positions use the
// conventional 1-based numbering (tap `width` is the output register); the
// highest tap must equal `width`. The all-zero state is forbidden (XOR
// feedback would lock up), matching real hardware seeding constraints.
class Lfsr {
 public:
  Lfsr(int width, std::vector<int> taps, std::uint64_t seed_lo,
       std::uint64_t seed_hi = 0);

  // Advances one clock; returns the output bit (the bit shifted out of the
  // last register).
  int step();

  // Reloads the register chain from a new seed — exactly the constructor's
  // seeding (width masking, all-zero state forbidden) without rebuilding the
  // tap list. Lets the accelerator's per-lane sampler be reused across
  // samples instead of reconstructed.
  void reseed(std::uint64_t seed_lo, std::uint64_t seed_hi = 0);

  int width() const { return width_; }
  const std::vector<int>& taps() const { return taps_; }
  std::uint64_t state_lo() const { return state_lo_; }
  std::uint64_t state_hi() const { return state_hi_; }

 private:
  int bit(int position_1based) const;

  int width_;
  std::vector<int> taps_;
  std::uint64_t state_lo_;
  std::uint64_t state_hi_;
};

// The paper's configuration: 128-bit, 4 taps. Taps {128, 126, 101, 99}
// generate a maximal-length (2^128 - 1) sequence (XAPP052 table).
Lfsr make_lfsr128(std::uint64_t seed_lo, std::uint64_t seed_hi = 0x9E3779B97F4A7C15ull);

// Maximal-length tap sets for small widths (used by period tests).
std::vector<int> maximal_taps(int width);

}  // namespace bnn::core

#endif  // BNN_CORE_LFSR_H
