#include "core/resource_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bnn::core {

FpgaDevice arria10_sx660() {
  return {"Intel Arria 10 SX660", 427200, 1708800, 1518, 2713, 20480};
}

FpgaDevice cyclone_v_sx() {
  // 5CGTFD9E5F35C7 (VIBNN's board): 113,560 ALMs, 342 DSP blocks, 1220 M10K.
  return {"Intel Cyclone V GT", 113560, 454240, 342, 1220, 10240};
}

FpgaDevice zynq_xc7z020() {
  // XC7Z020: 53,200 LUTs / 106,400 FFs / 220 DSP48E1 / 140 BRAM36.
  return {"Xilinx Zynq XC7Z020", 53200, 106400, 220, 140, 36864};
}

ResourceUsage estimate_resources(const NneConfig& config, const nn::NetworkDesc& desc,
                                 const FpgaDevice& device, int sampler_fifo_depth,
                                 int num_lfsrs, const MappingCalibration& cal) {
  util::require(sampler_fifo_depth >= 1, "estimate_resources: fifo depth must be positive");
  util::require(num_lfsrs >= 1, "estimate_resources: need at least one LFSR");

  ResourceUsage usage;
  usage.multipliers = config.macs_per_cycle();
  usage.dsps_required = static_cast<int>((usage.multipliers + 1) / 2);
  const int usable =
      static_cast<int>(std::lround(device.dsps * cal.dsp_usable_fraction));
  usage.dsps_used = std::min(usage.dsps_required, usable);
  usage.soft_multipliers =
      usage.multipliers - static_cast<std::int64_t>(usage.dsps_used) * 2;
  if (usage.soft_multipliers < 0) usage.soft_multipliers = 0;

  const int dw = config.data_width_bits;
  // Paper formulas, scaled by replication (double buffering).
  usage.mem_bits_input = static_cast<std::int64_t>(
      static_cast<double>(desc.max_input_elems() * dw) * cal.buffer_replication);
  std::int64_t max_out_elems = 0;
  std::int64_t max_site_out_elems = 0;
  for (const nn::HwLayer& layer : desc.layers) {
    max_out_elems = std::max(max_out_elems, layer.out_elems());
    if (layer.is_bayes_site)
      max_site_out_elems = std::max(max_site_out_elems, layer.out_elems());
  }
  usage.mem_bits_output = static_cast<std::int64_t>(
      static_cast<double>(max_out_elems * dw) * cal.buffer_replication);
  usage.mem_bits_weight = static_cast<std::int64_t>(
      static_cast<double>(desc.max_filter_weight_elems() * config.pf * dw) *
      cal.buffer_replication);
  // Intermediate-layer cache: holds the largest Bayesian boundary once.
  usage.mem_bits_ic_cache = max_site_out_elems * dw;
  usage.mem_bits_fifo =
      static_cast<std::int64_t>(sampler_fifo_depth) * config.pf * dw;
  usage.mem_bits_total = usage.mem_bits_input + usage.mem_bits_output +
                         usage.mem_bits_weight + usage.mem_bits_ic_cache +
                         usage.mem_bits_fifo;
  usage.m20k_used =
      static_cast<int>(std::ceil(static_cast<double>(usage.mem_bits_total) /
                                 (device.m20k_bits_per_block * cal.bram_packing_efficiency))) +
      cal.controller_m20k;

  usage.alms_used = static_cast<std::int64_t>(
      cal.base_alms + cal.alms_per_multiplier * static_cast<double>(usage.multipliers) +
      cal.alms_per_soft_multiplier * static_cast<double>(usage.soft_multipliers) +
      cal.alms_per_pf_lane * config.pf + cal.alms_per_lfsr * num_lfsrs);
  usage.registers_used =
      static_cast<std::int64_t>(cal.registers_per_alm * static_cast<double>(usage.alms_used));
  return usage;
}

bool fits(const ResourceUsage& usage, const FpgaDevice& device) {
  return usage.alms_used <= device.alms && usage.registers_used <= device.registers &&
         usage.m20k_used <= device.m20k_blocks;
}

}  // namespace bnn::core
