// Off-chip memory transfer model.
//
// The board carries 1 GB DDR4 SDRAM; the accelerator streams layer inputs,
// weights and outputs through it (Fig. 2). The model charges bytes at an
// effective bandwidth plus a fixed per-transfer setup cost, expressed in
// accelerator clock cycles so it composes with the NNE cycle counts.
#ifndef BNN_CORE_DDR_H
#define BNN_CORE_DDR_H

#include <cstdint>

namespace bnn::core {

struct DdrModel {
  // Effective (post-efficiency) bandwidth. DDR4-2133 x64 peaks at ~17 GB/s;
  // streaming efficiency of ~75% gives the 12.8 GB/s default.
  double effective_gbytes_per_s = 12.8;
  // Burst setup / address latency charged once per transfer.
  double setup_cycles = 100.0;

  // Cycles at `clock_mhz` to move `bytes` (0 bytes costs nothing).
  double transfer_cycles(std::int64_t bytes, double clock_mhz) const {
    if (bytes <= 0) return 0.0;
    const double seconds = static_cast<double>(bytes) / (effective_gbytes_per_s * 1e9);
    return seconds * clock_mhz * 1e6 + setup_cycles;
  }
};

}  // namespace bnn::core

#endif  // BNN_CORE_DDR_H
