// End-to-end performance model: composes the NNE cycle model (nne.h) with
// the DDR transfer model (ddr.h) over the layer-by-layer schedule, with and
// without intermediate-layer caching (paper Section III-C).
//
// Conventions (see DESIGN.md §5):
//   - per layer: compute and memory are double-buffered and overlap, so
//     layer_cycles = max(compute, memory) + pipeline fill;
//   - memory traffic = input map + weights (+ per-channel parameters) +
//     shortcut operand + output map, all 8-bit;
//   - without IC the full network runs S times;
//   - with IC layers [0, cut] run once, the cut boundary stays on-chip
//     (no DDR store, and the first suffix layer's input read is free), and
//     layers (cut, N) run S times.
#ifndef BNN_CORE_PERF_MODEL_H
#define BNN_CORE_PERF_MODEL_H

#include <string>
#include <vector>

#include "core/ddr.h"
#include "core/nne.h"
#include "nn/netdesc.h"

namespace bnn::core {

struct PerfConfig {
  NneConfig nne;
  DdrModel ddr;
};

struct LayerTiming {
  std::string label;
  std::int64_t macs = 0;
  double compute_cycles = 0.0;  // PE cycles + pipeline fill
  double memory_cycles = 0.0;
  double cycles = 0.0;  // max(compute, memory)
  std::int64_t ddr_read_bytes = 0;
  std::int64_t ddr_write_bytes = 0;
};

struct RunStats {
  double total_cycles = 0.0;
  double latency_ms = 0.0;
  std::int64_t macs = 0;
  std::int64_t ddr_bytes = 0;
  std::int64_t mask_bits = 0;
  std::vector<LayerTiming> per_layer;  // single-pass detail (empty for MC runs)

  double throughput_gops() const {
    if (latency_ms <= 0.0) return 0.0;
    return static_cast<double>(macs) * 2.0 / (latency_ms * 1e6);
  }
};

// One pass over layers [first_layer, last_layer].
//   input_from_chip : the first layer reads its input from on-chip memory
//                     (the IC boundary) instead of DDR.
//   keep_last_on_chip: the last layer's output is not stored to DDR (it is
//                     the IC boundary being cached).
RunStats estimate_pass(const nn::NetworkDesc& desc, const PerfConfig& config, int first_layer,
                       int last_layer, bool input_from_chip, bool keep_last_on_chip);

// Full Monte Carlo inference: S samples of a partial BNN with the last
// `bayes_layers` of the network's sites active.
RunStats estimate_mc(const nn::NetworkDesc& desc, const PerfConfig& config, int bayes_layers,
                     int num_samples, bool use_intermediate_caching);

// Mask bits one sample consumes (sum of out_c over active site layers).
std::int64_t mask_bits_per_sample(const nn::NetworkDesc& desc, int bayes_layers);

// Wall-clock calibration of the model: a single scale factor mapping the
// model's `latency_ms` (modelled accelerator milliseconds) onto measured
// milliseconds of whatever actually executes the workload (the software
// simulator here). One measured (wall, modelled) pair fixes it — the
// model's RELATIVE layer/S/L structure is what the paper validates, so one
// anchor point is enough to use it as a serving cost oracle
// (serve::CostModel) against wall-clock latency targets.
struct PerfCalibration {
  double wall_ms_per_modelled_ms = 1.0;
};

// Builds a calibration from one measurement. Both inputs must be positive
// and finite (throws std::invalid_argument otherwise).
PerfCalibration calibrate_perf(double measured_wall_ms, double modelled_ms);

// Modelled latency mapped onto the calibrated wall clock.
double calibrated_wall_ms(const RunStats& stats, const PerfCalibration& calibration);

}  // namespace bnn::core

#endif  // BNN_CORE_PERF_MODEL_H
