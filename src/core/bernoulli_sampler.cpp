#include "core/bernoulli_sampler.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace bnn::core {

int lfsrs_for_probability(double p) {
  util::require(p > 0.0 && p < 1.0, "bernoulli sampler: p must be in (0, 1)");
  const double k_real = -std::log2(p);
  const int k = static_cast<int>(std::lround(k_real));
  util::require(k >= 1 && k <= 8 && std::fabs(k_real - k) < 1e-9,
                "bernoulli sampler: p must be 2^-k with k in [1, 8] "
                "(AND-tree of k single-bit LFSRs)");
  return k;
}

BernoulliSampler::BernoulliSampler(const BernoulliSamplerConfig& config) : config_(config) {
  util::require(config.pf >= 1, "bernoulli sampler: pf must be positive");
  util::require(config.fifo_depth >= 1, "bernoulli sampler: fifo_depth must be positive");
  const int k = lfsrs_for_probability(config.p);
  lfsrs_.reserve(static_cast<std::size_t>(k));
  // Decorrelate the k register chains with independent non-zero seeds.
  util::Rng seeder(config.seed);
  for (int i = 0; i < k; ++i) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    while (lo == 0 && hi == 0) {
      lo = seeder.next_u64();
      hi = seeder.next_u64();
    }
    lfsrs_.push_back(make_lfsr128(lo, hi));
  }
  sipo_.assign(static_cast<std::size_t>(config.pf), 0);
}

void BernoulliSampler::reseed(std::uint64_t seed) {
  config_.seed = seed;
  // Same derivation as the constructor: one shared Rng, skipping all-zero
  // draws, in LFSR order — so the register contents match a fresh sampler's.
  util::Rng seeder(seed);
  for (Lfsr& lfsr : lfsrs_) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    while (lo == 0 && hi == 0) {
      lo = seeder.next_u64();
      hi = seeder.next_u64();
    }
    lfsr.reseed(lo, hi);
  }
  std::fill(sipo_.begin(), sipo_.end(), static_cast<std::uint8_t>(0));
  sipo_fill_ = 0;
  fifo_.clear();
  bits_produced_ = 0;
  words_pushed_ = 0;
  stall_cycles_ = 0;
}

int BernoulliSampler::raw_drop_bit() {
  int bit = 1;
  for (Lfsr& lfsr : lfsrs_) bit &= lfsr.step();
  ++bits_produced_;
  return bit;
}

bool BernoulliSampler::next_drop() { return raw_drop_bit() != 0; }

void BernoulliSampler::step_cycle() {
  if (sipo_fill_ == config_.pf) {
    // A full word is waiting; push to the FIFO or stall.
    if (static_cast<int>(fifo_.size()) >= config_.fifo_depth) {
      ++stall_cycles_;
      return;
    }
    fifo_.push_back(sipo_);
    ++words_pushed_;
    sipo_fill_ = 0;
  }
  sipo_[static_cast<std::size_t>(sipo_fill_++)] = static_cast<std::uint8_t>(raw_drop_bit());
  if (sipo_fill_ == config_.pf && static_cast<int>(fifo_.size()) < config_.fifo_depth) {
    fifo_.push_back(sipo_);
    ++words_pushed_;
    sipo_fill_ = 0;
  }
}

bool BernoulliSampler::pop_word(std::vector<std::uint8_t>& word) {
  if (fifo_.empty()) return false;
  word = std::move(fifo_.front());
  fifo_.pop_front();
  return true;
}

}  // namespace bnn::core
