// Automatic optimization framework (paper Section IV, Fig. 5).
//
// Two-stage greedy optimization:
//   1. Hardware optimization: pick {PC, PF, PV} from the paper's domains
//      maximizing parallelism under the resource model on the target device
//      (ties broken by modelled workload latency, then logic cost).
//   2. Algorithmic optimization: sweep {L, S} over the paper's grids, read
//      latency from the performance model and algorithmic metrics from a
//      MetricsProvider, filter by the user's minimum requirements, and pick
//      the best point for the chosen optimization mode.
#ifndef BNN_CORE_DSE_H
#define BNN_CORE_DSE_H

#include <optional>
#include <string>
#include <vector>

#include "core/perf_model.h"
#include "core/resource_model.h"
#include "nn/netdesc.h"

namespace bnn::core {

enum class OptMode { latency, accuracy, uncertainty, confidence };
std::string opt_mode_name(OptMode mode);

struct MetricPoint {
  double accuracy = 0.0;  // fraction
  double ape = 0.0;       // nats, on noise inputs
  double ece = 0.0;       // fraction
};

// Supplies the software-evaluated metrics for a {L, S} configuration (the
// framework's "algorithm optimization" inputs). Implementations typically
// wrap a trained model + test/noise datasets and should cache.
class MetricsProvider {
 public:
  virtual ~MetricsProvider() = default;
  virtual MetricPoint evaluate(int bayes_layers, int num_samples) = 0;
};

struct Requirements {
  std::optional<double> max_latency_ms;
  std::optional<double> min_accuracy;
  std::optional<double> min_ape;
  std::optional<double> max_ece;
};

struct Candidate {
  int bayes_layers = 0;
  int num_samples = 0;
  double latency_ms = 0.0;
  MetricPoint metrics;
  bool feasible = true;  // meets all stated requirements
};

struct DseOptions {
  OptMode mode = OptMode::latency;
  Requirements requirements;
  FpgaDevice device = arria10_sx660();
  DdrModel ddr;
  double clock_mhz = 225.0;
  int sampler_fifo_depth = 16;
  int num_lfsrs = 2;  // p = 0.25
  bool use_intermediate_caching = true;
  // Empty grids default to the paper's L and S grids for the network.
  std::vector<int> bayes_grid;
  std::vector<int> sample_grid;
};

struct DseResult {
  NneConfig hardware;
  ResourceUsage resources;
  std::vector<Candidate> candidates;
  int best_index = -1;  // -1 when no candidate satisfies the requirements

  const Candidate& best() const;
};

// Stage 1 only: maximum-parallelism configuration that fits the device.
NneConfig optimize_hardware(const nn::NetworkDesc& desc, const FpgaDevice& device,
                            double clock_mhz, int sampler_fifo_depth, int num_lfsrs);

// Full framework run (stage 1 + stage 2).
DseResult run_dse(const nn::NetworkDesc& desc, MetricsProvider& metrics,
                  const DseOptions& options);

// Objective comparison: returns true when `a` beats `b` under `mode`.
bool candidate_better(const Candidate& a, const Candidate& b, OptMode mode);

}  // namespace bnn::core

#endif  // BNN_CORE_DSE_H
