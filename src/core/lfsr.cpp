#include "core/lfsr.h"

#include <algorithm>

#include "util/check.h"

namespace bnn::core {

Lfsr::Lfsr(int width, std::vector<int> taps, std::uint64_t seed_lo, std::uint64_t seed_hi)
    : width_(width), taps_(std::move(taps)), state_lo_(seed_lo), state_hi_(seed_hi) {
  util::require(width >= 2 && width <= 128, "lfsr: width must be in [2, 128]");
  util::require(!taps_.empty(), "lfsr: need at least one tap");
  for (int tap : taps_)
    util::require(tap >= 1 && tap <= width, "lfsr: tap out of range");
  util::require(std::find(taps_.begin(), taps_.end(), width) != taps_.end(),
                "lfsr: the output register (tap == width) must be tapped");

  reseed(seed_lo, seed_hi);
}

void Lfsr::reseed(std::uint64_t seed_lo, std::uint64_t seed_hi) {
  state_lo_ = seed_lo;
  state_hi_ = seed_hi;
  // Mask the seed to the register width and forbid the all-zero state.
  if (width_ <= 64) {
    state_lo_ &= width_ == 64 ? ~0ull : ((1ull << width_) - 1);
    state_hi_ = 0;
  } else {
    state_hi_ &= width_ == 128 ? ~0ull : ((1ull << (width_ - 64)) - 1);
  }
  util::require(state_lo_ != 0 || state_hi_ != 0, "lfsr: seed must be non-zero");
}

int Lfsr::bit(int position_1based) const {
  const int index = position_1based - 1;
  if (index < 64) return static_cast<int>((state_lo_ >> index) & 1ull);
  return static_cast<int>((state_hi_ >> (index - 64)) & 1ull);
}

int Lfsr::step() {
  const int out = bit(width_);
  int feedback = 0;
  for (int tap : taps_) feedback ^= bit(tap);

  // Shift the 128-bit register left by one and insert the feedback at R0.
  state_hi_ = (state_hi_ << 1) | (state_lo_ >> 63);
  state_lo_ = (state_lo_ << 1) | static_cast<std::uint64_t>(feedback);
  if (width_ <= 64) {
    state_lo_ &= width_ == 64 ? ~0ull : ((1ull << width_) - 1);
    state_hi_ = 0;
  } else {
    state_hi_ &= width_ == 128 ? ~0ull : ((1ull << (width_ - 64)) - 1);
  }
  return out;
}

Lfsr make_lfsr128(std::uint64_t seed_lo, std::uint64_t seed_hi) {
  return Lfsr(128, {128, 126, 101, 99}, seed_lo, seed_hi);
}

std::vector<int> maximal_taps(int width) {
  // XAPP052 maximal-length tap tables for the widths the tests exercise.
  switch (width) {
    case 3: return {3, 2};
    case 4: return {4, 3};
    case 5: return {5, 3};
    case 7: return {7, 6};
    case 8: return {8, 6, 5, 4};
    case 12: return {12, 6, 4, 1};
    case 16: return {16, 15, 13, 4};
    case 20: return {20, 17};
    case 24: return {24, 23, 22, 17};
    case 128: return {128, 126, 101, 99};
    default:
      util::require(false, "maximal_taps: width not in table");
      return {};
  }
}

}  // namespace bnn::core
