#include "core/nne.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "nn/gemm_kernels.h"
#include "util/check.h"

namespace bnn::core {

const std::vector<int>& pc_domain() {
  static const std::vector<int> domain{8, 16, 32, 64, 128};
  return domain;
}
const std::vector<int>& pf_domain() {
  static const std::vector<int> domain{8, 16, 32, 64, 128};
  return domain;
}
const std::vector<int>& pv_domain() {
  static const std::vector<int> domain{1, 4, 8, 16};
  return domain;
}

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

}  // namespace

std::int64_t estimate_layer_cycles(const nn::HwLayer& layer, const NneConfig& config) {
  util::require(config.pc >= 1 && config.pf >= 1 && config.pv >= 1,
                "nne: parallelism degrees must be positive");
  const std::int64_t filter_tiles = ceil_div(layer.out_c, config.pf);
  const std::int64_t term_tiles =
      ceil_div(static_cast<std::int64_t>(layer.in_c) * layer.kernel * layer.kernel, config.pc);
  const std::int64_t position_tiles =
      ceil_div(static_cast<std::int64_t>(layer.conv_out_h) * layer.conv_out_w, config.pv);
  return filter_tiles * term_tiles * position_tiles;
}

NneLayerResult nne_run_layer(const quant::QLayer& layer, const quant::QTensor& input,
                             const quant::QTensor* shortcut, bool site_active,
                             nn::MaskSource* masks, quant::FixedMultiplier dropout_keep,
                             const NneConfig& config) {
  const nn::HwLayer& g = layer.geom;
  const std::int32_t zp_in = layer.in.zero_point;
  const std::int32_t zp_out = layer.out.zero_point;
  util::require(!g.has_shortcut || shortcut != nullptr, "nne: missing shortcut operand");
  util::require(!site_active || masks != nullptr, "nne: active site requires a mask source");

  NneLayerResult result;
  result.macs_retired = g.macs();

  const int positions = g.conv_out_h * g.conv_out_w;
  const int terms = g.in_c * g.kernel * g.kernel;
  const std::int64_t filter_tiles = ceil_div(g.out_c, config.pf);
  const std::int64_t term_tiles = ceil_div(terms, config.pc);
  const std::int64_t position_tiles = ceil_div(positions, config.pv);

  quant::QTensor pre({g.out_c, g.conv_out_h, g.conv_out_w}, layer.out);
  const bool is_linear = g.op == nn::HwLayer::Op::linear;
  if (is_linear)
    util::require(input.numel() == g.in_c, "nne: linear input size mismatch");
  else
    util::require(input.channels() == g.in_c && input.height() == g.in_h &&
                      input.width() == g.in_w,
                  "nne: conv input shape mismatch");

  // Accumulators: one per (PU filter lane, PV position lane).
  std::vector<std::int32_t> acc(static_cast<std::size_t>(config.pf) * config.pv, 0);

  // Hoisted conv index math: term t addresses input channel t/(k*k) at
  // kernel offset (rem/k, rem%k). Precomputing these once per layer keeps
  // the per-term divisions out of the channel-tile inner loop; term_off[t]
  // is the flat input offset of term t relative to the position's top-left
  // input element, valid wherever the window is in bounds.
  std::vector<std::int32_t> term_dh, term_dw, term_off;
  if (!is_linear) {
    term_dh.resize(static_cast<std::size_t>(terms));
    term_dw.resize(static_cast<std::size_t>(terms));
    term_off.resize(static_cast<std::size_t>(terms));
    const int kk2 = g.kernel * g.kernel;
    for (int t = 0; t < terms; ++t) {
      const int ch = t / kk2;
      const int rem = t % kk2;
      const int dh = rem / g.kernel;
      const int dw = rem % g.kernel;
      term_dh[static_cast<std::size_t>(t)] = dh;
      term_dw[static_cast<std::size_t>(t)] = dw;
      term_off[static_cast<std::size_t>(t)] = (ch * g.in_h + dh) * g.in_w + dw;
    }
  }
  const std::int8_t* in_data = input.data.data();

  for (std::int64_t ft = 0; ft < filter_tiles; ++ft) {
    const int f_base = static_cast<int>(ft) * config.pf;
    const int f_count = std::min(config.pf, g.out_c - f_base);
    for (std::int64_t pt = 0; pt < position_tiles; ++pt) {
      const int p_base = static_cast<int>(pt) * config.pv;
      const int p_count = std::min(config.pv, positions - p_base);

      // Bias preload into the accumulators.
      for (int fl = 0; fl < f_count; ++fl)
        for (int vl = 0; vl < p_count; ++vl)
          acc[static_cast<std::size_t>(fl) * config.pv + vl] =
              layer.bias[static_cast<std::size_t>(f_base + fl)];

      // Channel-tile loop: one cycle per tile — PC multipliers + adder tree
      // per (filter, position) lane.
      for (std::int64_t ct = 0; ct < term_tiles; ++ct) {
        const int t_base = static_cast<int>(ct) * config.pc;
        const int t_count = std::min(config.pc, terms - t_base);
        for (int fl = 0; fl < f_count; ++fl) {
          const std::int8_t* w = layer.weight_row(f_base + fl);
          for (int vl = 0; vl < p_count; ++vl) {
            const int position = p_base + vl;
            // Adder-tree partial sum for this cycle. int32 accumulation is
            // exact, so routing through the vectorized dot kernels is
            // bit-identical to the original per-term loop.
            std::int32_t tree = 0;
            if (is_linear) {
              tree = nn::kernels::dot_i8_zp(in_data + t_base, w + t_base, t_count, zp_in);
            } else {
              const int oh = position / g.conv_out_w;
              const int ow = position % g.conv_out_w;
              const int ih0 = oh * g.stride - g.pad;
              const int iw0 = ow * g.stride - g.pad;
              if (ih0 >= 0 && iw0 >= 0 && ih0 + g.kernel <= g.in_h &&
                  iw0 + g.kernel <= g.in_w) {
                // Interior window: every term is in bounds, gather through
                // the precomputed offset table.
                tree = nn::kernels::dot_i8_zp_gather(
                    in_data + static_cast<std::size_t>(ih0) * g.in_w + iw0,
                    term_off.data() + t_base, w + t_base, t_count, zp_in);
              } else {
                // Border window: padding terms contribute zero.
                for (int t = t_base; t < t_base + t_count; ++t) {
                  const int ih = ih0 + term_dh[static_cast<std::size_t>(t)];
                  const int iw = iw0 + term_dw[static_cast<std::size_t>(t)];
                  if (ih < 0 || ih >= g.in_h || iw < 0 || iw >= g.in_w) continue;
                  tree += (static_cast<std::int32_t>(
                               in_data[term_off[static_cast<std::size_t>(t)] +
                                       static_cast<std::ptrdiff_t>(ih0) * g.in_w + iw0]) -
                           zp_in) *
                          static_cast<std::int32_t>(w[t]);
                }
              }
            }
            acc[static_cast<std::size_t>(fl) * config.pv + vl] += tree;
          }
        }
        ++result.compute_cycles;
      }

      // FU chain on the retiring accumulators: BN requant -> SC -> ReLU.
      for (int fl = 0; fl < f_count; ++fl) {
        const int f = f_base + fl;
        for (int vl = 0; vl < p_count; ++vl) {
          const int position = p_base + vl;
          const int oh = position / g.conv_out_w;
          const int ow = position % g.conv_out_w;
          std::int32_t q =
              quant::fixed_multiply(acc[static_cast<std::size_t>(fl) * config.pv + vl],
                                    layer.requant[static_cast<std::size_t>(f)]) +
              layer.post_add[static_cast<std::size_t>(f)] + zp_out;
          if (g.has_shortcut)
            q += quant::fixed_multiply(
                static_cast<std::int32_t>(shortcut->at(f, oh, ow)) -
                    shortcut->params.zero_point,
                layer.shortcut_rescale);
          if (g.has_relu) q = std::max(q, zp_out);
          pre.at(f, oh, ow) = quant::saturate_int8(q);
        }
      }
    }
  }

  // FU pool stage (pipelined; adds no throughput cycles).
  quant::QTensor out({g.out_c, g.out_h, g.out_w}, layer.out);
  if (g.pool_is_global) {
    const std::int64_t area = static_cast<std::int64_t>(g.conv_out_h) * g.conv_out_w;
    for (int f = 0; f < g.out_c; ++f) {
      std::int64_t sum = 0;
      for (int h = 0; h < g.conv_out_h; ++h)
        for (int w = 0; w < g.conv_out_w; ++w) sum += pre.at(f, h, w);
      out.at(f, 0, 0) = quant::saturate_int8(quant::rounded_div(sum, area));
    }
  } else if (g.pool_kernel > 0) {
    for (int f = 0; f < g.out_c; ++f) {
      for (int oh = 0; oh < g.out_h; ++oh) {
        for (int ow = 0; ow < g.out_w; ++ow) {
          if (g.pool_is_max) {
            std::int8_t best = std::numeric_limits<std::int8_t>::min();
            for (int kh = 0; kh < g.pool_kernel; ++kh)
              for (int kw = 0; kw < g.pool_kernel; ++kw)
                best = std::max(
                    best, pre.at(f, oh * g.pool_stride + kh, ow * g.pool_stride + kw));
            out.at(f, oh, ow) = best;
          } else {
            std::int64_t sum = 0;
            for (int kh = 0; kh < g.pool_kernel; ++kh)
              for (int kw = 0; kw < g.pool_kernel; ++kw)
                sum += pre.at(f, oh * g.pool_stride + kh, ow * g.pool_stride + kw);
            out.at(f, oh, ow) = quant::saturate_int8(quant::rounded_div(
                sum, static_cast<std::int64_t>(g.pool_kernel) * g.pool_kernel));
          }
        }
      }
    }
  } else {
    out = std::move(pre);
  }

  // DU stage: one drop bit per output filter, ascending filter order.
  if (site_active) {
    const int plane = out.height() * out.width();
    for (int f = 0; f < g.out_c; ++f) {
      const bool drop = masks->next_drop();
      ++result.mask_bits_consumed;
      std::int8_t* row = out.data.data() + static_cast<std::size_t>(f) * plane;
      if (drop) {
        std::fill(row, row + plane, quant::saturate_int8(zp_out));
      } else {
        for (int i = 0; i < plane; ++i)
          row[i] = quant::saturate_int8(
              quant::fixed_multiply(static_cast<std::int32_t>(row[i]) - zp_out, dropout_keep) +
              zp_out);
      }
    }
  }

  result.output = std::move(out);
  return result;
}

}  // namespace bnn::core
