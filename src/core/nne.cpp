#include "core/nne.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "nn/bitpack_kernels.h"
#include "nn/gemm_kernels.h"
#include "util/check.h"

namespace bnn::core {

const std::vector<int>& pc_domain() {
  static const std::vector<int> domain{8, 16, 32, 64, 128};
  return domain;
}
const std::vector<int>& pf_domain() {
  static const std::vector<int> domain{8, 16, 32, 64, 128};
  return domain;
}
const std::vector<int>& pv_domain() {
  static const std::vector<int> domain{1, 4, 8, 16};
  return domain;
}

namespace {

using nn::kernels::Tier;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

// Cycle cost of the layer's term reduction per (filter tile, position tile).
// A PURE function of geometry and configuration — never of the tier that
// actually executed (see the header: annotation drives the model, runtime
// activation values drive the execution, and the two may disagree).
std::int64_t modelled_term_tiles(const nn::HwLayer& layer, const NneConfig& config) {
  const std::int64_t terms =
      static_cast<std::int64_t>(layer.in_c) * layer.kernel * layer.kernel;
  const std::int64_t lane_terms =
      static_cast<std::int64_t>(config.pc) *
      (layer.weights_binarizable ? config.binary_term_parallelism : 1);
  return ceil_div(terms, lane_terms);
}

// Grows a vector to `n` elements, counting capacity growths (allocations).
template <typename T>
void grow_to(std::vector<T>& vec, std::size_t n, std::uint64_t& grow_events) {
  if (n > vec.capacity()) ++grow_events;
  vec.resize(n);
}

}  // namespace

std::int64_t estimate_layer_cycles(const nn::HwLayer& layer, const NneConfig& config) {
  util::require(config.pc >= 1 && config.pf >= 1 && config.pv >= 1,
                "nne: parallelism degrees must be positive");
  util::require(config.binary_term_parallelism >= 1,
                "nne: binary_term_parallelism must be positive");
  const std::int64_t filter_tiles = ceil_div(layer.out_c, config.pf);
  const std::int64_t term_tiles = modelled_term_tiles(layer, config);
  const std::int64_t position_tiles =
      ceil_div(static_cast<std::int64_t>(layer.conv_out_h) * layer.conv_out_w, config.pv);
  return filter_tiles * term_tiles * position_tiles;
}

NneLayerStats nne_run_layer_into(const quant::QLayer& layer, const quant::LayerExecPlan& plan,
                                 const quant::QTensor& input, const quant::QTensor* shortcut,
                                 bool site_active, nn::MaskSource* masks,
                                 quant::FixedMultiplier dropout_keep, const NneConfig& config,
                                 nn::kernels::Tier tier, NneScratch& scratch,
                                 quant::QTensor& out) {
  const nn::HwLayer& g = layer.geom;
  const std::int32_t zp_in = layer.in.zero_point;
  const std::int32_t zp_out = layer.out.zero_point;
  util::require(!g.has_shortcut || shortcut != nullptr, "nne: missing shortcut operand");
  util::require(!site_active || masks != nullptr, "nne: active site requires a mask source");
  util::require(config.binary_term_parallelism >= 1,
                "nne: binary_term_parallelism must be positive");

  NneLayerStats stats;
  stats.macs_retired = g.macs();

  const int positions = g.conv_out_h * g.conv_out_w;
  const int terms = plan.terms;
  const std::int64_t filter_tiles = ceil_div(g.out_c, config.pf);
  const std::int64_t term_tiles = ceil_div(terms, config.pc);
  const std::int64_t position_tiles = ceil_div(positions, config.pv);
  const std::int64_t model_tiles = modelled_term_tiles(g, config);

  const bool is_linear = g.op == nn::HwLayer::Op::linear;
  if (is_linear)
    util::require(input.numel() == g.in_c, "nne: linear input size mismatch");
  else
    util::require(input.channels() == g.in_c && input.height() == g.in_h &&
                      input.width() == g.in_w,
                  "nne: conv input shape mismatch");

  // Resolve the tier cap against this (layer, input) pair.
  std::int8_t lo = 0, hi = 0;
  if (tier == Tier::bitpack &&
      !(plan.weights_binarizable && quant::two_valued_activations(input, &lo, &hi)))
    tier = Tier::int8;
  const std::int32_t base = static_cast<std::int32_t>(lo) - zp_in;
  const std::int32_t delta = static_cast<std::int32_t>(hi) - lo;

  // The FU chain writes the pre-pool map; when there is no pool stage that
  // map IS the stored output, so write it there directly and keep
  // scratch.pre untouched (no buffer churn in the arena).
  const bool has_pool = g.pool_is_global || g.pool_kernel > 0;
  if (out.reset({g.out_c, g.out_h, g.out_w}, layer.out)) ++scratch.grow_events;
  quant::QTensor& pre = has_pool ? scratch.pre : out;
  if (has_pool &&
      scratch.pre.reset({g.out_c, g.conv_out_h, g.conv_out_w}, layer.out))
    ++scratch.grow_events;

  // Accumulators: one per (PU filter lane, PV position lane).
  grow_to(scratch.acc, static_cast<std::size_t>(config.pf) * config.pv, scratch.grow_events);
  std::int32_t* acc = scratch.acc.data();

  const std::int8_t* in_data = input.data.data();
  const std::int32_t* term_dh = plan.term_dh.data();
  const std::int32_t* term_dw = plan.term_dw.data();
  const std::int32_t* term_off = plan.term_off.data();

  // Packed-weight layers dropped their byte rows. The bitpack interior path
  // reads only the masks, but the int8/scalar tiers and conv border windows
  // still need byte rows — materialize them into the arena once per layer
  // call (exact reconstruction, so bits are unchanged).
  const bool has_border =
      !is_linear &&
      (g.pad > 0 || (g.conv_out_h - 1) * g.stride + g.kernel > g.in_h ||
       (g.conv_out_w - 1) * g.stride + g.kernel > g.in_w);
  const std::int8_t* wmatrix = layer.weights.data();
  if (layer.weights_packed && (tier != Tier::bitpack || has_border)) {
    grow_to(scratch.wrows, static_cast<std::size_t>(g.out_c) * terms, scratch.grow_events);
    for (int f = 0; f < g.out_c; ++f)
      layer.materialize_weight_row(f, scratch.wrows.data() +
                                          static_cast<std::size_t>(f) * terms);
    wmatrix = scratch.wrows.data();
  }
  const auto weight_row = [&](int f) {
    return wmatrix + static_cast<std::size_t>(f) * terms;
  };

  // Packed-activation prepass (bitpack tier only): sign-pack the input once
  // per layer so every filter row reuses the same window words. Linear
  // layers pack the whole input vector; conv layers pack each INTERIOR
  // window (border windows keep the checked scalar loop in every tier, so
  // border bits agree across tiers by construction).
  std::int32_t x_pop_linear = 0;
  if (tier == Tier::bitpack) {
    if (is_linear) {
      grow_to(scratch.xbits, static_cast<std::size_t>(plan.words), scratch.grow_events);
      x_pop_linear = nn::kernels::pack_eq_bits(in_data, terms, hi, scratch.xbits.data());
    } else {
      grow_to(scratch.xbits, static_cast<std::size_t>(positions) * plan.words,
              scratch.grow_events);
      grow_to(scratch.x_pop, static_cast<std::size_t>(positions), scratch.grow_events);
      for (int p = 0; p < positions; ++p) {
        const int oh = p / g.conv_out_w;
        const int ow = p % g.conv_out_w;
        const int ih0 = oh * g.stride - g.pad;
        const int iw0 = ow * g.stride - g.pad;
        if (ih0 >= 0 && iw0 >= 0 && ih0 + g.kernel <= g.in_h && iw0 + g.kernel <= g.in_w)
          scratch.x_pop[static_cast<std::size_t>(p)] = nn::kernels::pack_eq_bits_gather(
              in_data + static_cast<std::size_t>(ih0) * g.in_w + iw0, term_off, terms, hi,
              scratch.xbits.data() + static_cast<std::size_t>(p) * plan.words);
      }
    }
  }

  // Border window: padding terms contribute zero; every term bound-checked.
  const auto border_dot = [&](const std::int8_t* w, int ih0, int iw0, int t_begin,
                              int t_end) {
    std::int32_t sum = 0;
    for (int t = t_begin; t < t_end; ++t) {
      const int ih = ih0 + term_dh[static_cast<std::size_t>(t)];
      const int iw = iw0 + term_dw[static_cast<std::size_t>(t)];
      if (ih < 0 || ih >= g.in_h || iw < 0 || iw >= g.in_w) continue;
      sum += (static_cast<std::int32_t>(
                  in_data[term_off[static_cast<std::size_t>(t)] +
                          static_cast<std::ptrdiff_t>(ih0) * g.in_w + iw0]) -
              zp_in) *
             static_cast<std::int32_t>(w[t]);
    }
    return sum;
  };

  for (std::int64_t ft = 0; ft < filter_tiles; ++ft) {
    const int f_base = static_cast<int>(ft) * config.pf;
    const int f_count = std::min(config.pf, g.out_c - f_base);
    for (std::int64_t pt = 0; pt < position_tiles; ++pt) {
      const int p_base = static_cast<int>(pt) * config.pv;
      const int p_count = std::min(config.pv, positions - p_base);

      // Bias preload into the accumulators.
      for (int fl = 0; fl < f_count; ++fl)
        for (int vl = 0; vl < p_count; ++vl)
          acc[static_cast<std::size_t>(fl) * config.pv + vl] =
              layer.bias[static_cast<std::size_t>(f_base + fl)];

      if (tier == Tier::bitpack) {
        // Packed reduction: whole term range in one closed form per
        // (filter, position) lane — int32 addition is associative, so
        // skipping the channel-tile partial sums is bit-exact.
        for (int fl = 0; fl < f_count; ++fl) {
          const int f = f_base + fl;
          for (int vl = 0; vl < p_count; ++vl) {
            const int position = p_base + vl;
            std::int32_t tree;
            if (is_linear) {
              tree = quant::packed_row_dot(plan, f, scratch.xbits.data(), x_pop_linear, base,
                                           delta);
            } else {
              const int oh = position / g.conv_out_w;
              const int ow = position % g.conv_out_w;
              const int ih0 = oh * g.stride - g.pad;
              const int iw0 = ow * g.stride - g.pad;
              if (ih0 >= 0 && iw0 >= 0 && ih0 + g.kernel <= g.in_h &&
                  iw0 + g.kernel <= g.in_w) {
                tree = quant::packed_row_dot(
                    plan, f,
                    scratch.xbits.data() + static_cast<std::size_t>(position) * plan.words,
                    scratch.x_pop[static_cast<std::size_t>(position)], base, delta);
              } else {
                tree = border_dot(weight_row(f), ih0, iw0, 0, terms);
              }
            }
            acc[static_cast<std::size_t>(fl) * config.pv + vl] += tree;
          }
        }
      } else {
        // Channel-tile loop: PC multipliers + adder tree per (filter,
        // position) lane.
        for (std::int64_t ct = 0; ct < term_tiles; ++ct) {
          const int t_base = static_cast<int>(ct) * config.pc;
          const int t_count = std::min(config.pc, terms - t_base);
          for (int fl = 0; fl < f_count; ++fl) {
            const std::int8_t* w = weight_row(f_base + fl);
            for (int vl = 0; vl < p_count; ++vl) {
              const int position = p_base + vl;
              // Adder-tree partial sum for this cycle. int32 accumulation is
              // exact, so routing through the vectorized dot kernels is
              // bit-identical to the original per-term loop.
              std::int32_t tree = 0;
              if (is_linear) {
                if (tier == Tier::int8) {
                  tree = nn::kernels::dot_i8_zp(in_data + t_base, w + t_base, t_count, zp_in);
                } else {
                  for (int t = t_base; t < t_base + t_count; ++t)
                    tree += (static_cast<std::int32_t>(in_data[t]) - zp_in) *
                            static_cast<std::int32_t>(w[t]);
                }
              } else {
                const int oh = position / g.conv_out_w;
                const int ow = position % g.conv_out_w;
                const int ih0 = oh * g.stride - g.pad;
                const int iw0 = ow * g.stride - g.pad;
                if (tier == Tier::int8 && ih0 >= 0 && iw0 >= 0 &&
                    ih0 + g.kernel <= g.in_h && iw0 + g.kernel <= g.in_w) {
                  // Interior window: every term is in bounds, gather through
                  // the precomputed offset table. The scalar tier takes the
                  // checked loop for every window instead.
                  tree = nn::kernels::dot_i8_zp_gather(
                      in_data + static_cast<std::size_t>(ih0) * g.in_w + iw0,
                      term_off + t_base, w + t_base, t_count, zp_in);
                } else {
                  tree = border_dot(w, ih0, iw0, t_base, t_base + t_count);
                }
              }
              acc[static_cast<std::size_t>(fl) * config.pv + vl] += tree;
            }
          }
        }
      }
      // Cycle charge for the term reduction of this (ft, pt) tile — the
      // modelled count, independent of which tier actually executed.
      stats.compute_cycles += model_tiles;

      // FU chain on the retiring accumulators: BN requant -> SC -> ReLU.
      for (int fl = 0; fl < f_count; ++fl) {
        const int f = f_base + fl;
        for (int vl = 0; vl < p_count; ++vl) {
          const int position = p_base + vl;
          const int oh = position / g.conv_out_w;
          const int ow = position % g.conv_out_w;
          std::int32_t q =
              quant::fixed_multiply(acc[static_cast<std::size_t>(fl) * config.pv + vl],
                                    layer.requant[static_cast<std::size_t>(f)]) +
              layer.post_add[static_cast<std::size_t>(f)] + zp_out;
          if (g.has_shortcut)
            q += quant::fixed_multiply(
                static_cast<std::int32_t>(shortcut->at(f, oh, ow)) -
                    shortcut->params.zero_point,
                layer.shortcut_rescale);
          if (g.has_relu) q = std::max(q, zp_out);
          pre.at(f, oh, ow) = quant::saturate_int8(q);
        }
      }
    }
  }

  // FU pool stage (pipelined; adds no throughput cycles).
  if (g.pool_is_global) {
    const std::int64_t area = static_cast<std::int64_t>(g.conv_out_h) * g.conv_out_w;
    for (int f = 0; f < g.out_c; ++f) {
      std::int64_t sum = 0;
      for (int h = 0; h < g.conv_out_h; ++h)
        for (int w = 0; w < g.conv_out_w; ++w) sum += pre.at(f, h, w);
      out.at(f, 0, 0) = quant::saturate_int8(quant::rounded_div(sum, area));
    }
  } else if (g.pool_kernel > 0) {
    for (int f = 0; f < g.out_c; ++f) {
      for (int oh = 0; oh < g.out_h; ++oh) {
        for (int ow = 0; ow < g.out_w; ++ow) {
          if (g.pool_is_max) {
            std::int8_t best = std::numeric_limits<std::int8_t>::min();
            for (int kh = 0; kh < g.pool_kernel; ++kh)
              for (int kw = 0; kw < g.pool_kernel; ++kw)
                best = std::max(
                    best, pre.at(f, oh * g.pool_stride + kh, ow * g.pool_stride + kw));
            out.at(f, oh, ow) = best;
          } else {
            std::int64_t sum = 0;
            for (int kh = 0; kh < g.pool_kernel; ++kh)
              for (int kw = 0; kw < g.pool_kernel; ++kw)
                sum += pre.at(f, oh * g.pool_stride + kh, ow * g.pool_stride + kw);
            out.at(f, oh, ow) = quant::saturate_int8(quant::rounded_div(
                sum, static_cast<std::int64_t>(g.pool_kernel) * g.pool_kernel));
          }
        }
      }
    }
  }
  // No pool: the FU chain already wrote `out` (pre aliases it).

  // DU stage: one drop bit per output filter, ascending filter order.
  if (site_active) {
    const int plane = out.height() * out.width();
    for (int f = 0; f < g.out_c; ++f) {
      const bool drop = masks->next_drop();
      ++stats.mask_bits_consumed;
      std::int8_t* row = out.data.data() + static_cast<std::size_t>(f) * plane;
      if (drop) {
        std::fill(row, row + plane, quant::saturate_int8(zp_out));
      } else {
        for (int i = 0; i < plane; ++i)
          row[i] = quant::saturate_int8(
              quant::fixed_multiply(static_cast<std::int32_t>(row[i]) - zp_out, dropout_keep) +
              zp_out);
      }
    }
  }

  return stats;
}

NneLayerResult nne_run_layer(const quant::QLayer& layer, const quant::QTensor& input,
                             const quant::QTensor* shortcut, bool site_active,
                             nn::MaskSource* masks, quant::FixedMultiplier dropout_keep,
                             const NneConfig& config) {
  const quant::LayerExecPlan plan = quant::build_layer_exec_plan(layer);
  NneScratch scratch;
  NneLayerResult result;
  const NneLayerStats stats =
      nne_run_layer_into(layer, plan, input, shortcut, site_active, masks, dropout_keep,
                         config, nn::kernels::Tier::bitpack, scratch, result.output);
  result.compute_cycles = stats.compute_cycles;
  result.macs_retired = stats.macs_retired;
  result.mask_bits_consumed = stats.mask_bits_consumed;
  return result;
}

}  // namespace bnn::core
