// Neural Network Engine model (paper Fig. 2).
//
// The NNE executes one layer at a time. Its Processing Engine exposes three
// axes of fine-grained parallelism:
//   PF — filter parallelism: PF processing units, one output filter each,
//   PV — vector parallelism: PV multiply-add modules per PU, one output
//        position each,
//   PC — channel parallelism: PC multipliers + an adder tree per module,
//        reducing PC input-channel/kernel terms per cycle.
// One PE pass therefore retires PC*PF*PV MACs per cycle and a layer takes
//   ceil(F/PF) * ceil(C*K*K/PC) * ceil(Hout*Wout/PV)
// compute cycles plus a pipeline fill. The Functional Unit chain
// (BN -> SC -> ReLU -> Pool) and the Dropout Unit are pipelined behind the
// PE and add only fill latency.
//
// `nne_run_layer_into` is the cycle-counted FUNCTIONAL implementation: it
// executes the exact tiled loop structure of the hardware on int8 data and
// must match the untiled reference executor (quant/qops.h) bit-for-bit —
// int32 accumulation is order-independent, which is the invariant the
// equivalence tests pin down. `estimate_layer_cycles` is the closed-form
// cycle count used for networks too large to execute functionally; the two
// are asserted equal in tests.
//
// Kernel tiers: the inner product dispatches through nn::kernels::Tier. The
// tier changes only HOW the int32 accumulators are computed (scalar loops,
// vectorized int8 dot kernels, or the packed popcount path of quant/qplan.h)
// — never WHAT they contain, so outputs are bit-identical across tiers.
// Cycle counts are likewise tier-independent at runtime: a layer is charged
// by the closed-form formula below, which credits binary term parallelism
// from the STATIC HwLayer::weights_binarizable annotation alone. An
// un-annotated net that happens to hit the packed path simply runs faster
// than modelled; an annotated net that falls back (three-valued
// activations) is modelled as binary hardware would be — the modelled
// machine has the popcount datapath either way.
#ifndef BNN_CORE_NNE_H
#define BNN_CORE_NNE_H

#include <cstdint>

#include "nn/dropout.h"
#include "nn/gemm_kernels.h"
#include "nn/netdesc.h"
#include "quant/qnetwork.h"
#include "quant/qplan.h"
#include "quant/qtensor.h"

namespace bnn::core {

struct NneConfig {
  int pc = 64;   // channel parallelism
  int pf = 64;   // filter parallelism
  int pv = 1;    // vector parallelism
  double clock_mhz = 225.0;
  int data_width_bits = 8;
  // Pipeline depth of PE + FU + DU, charged once per layer.
  int pipeline_fill_cycles = 24;
  // Extra term parallelism for weights-binarizable layers: the XNOR/popcount
  // datapath reduces this many more terms per multiplier lane per cycle
  // (single-bit products cost ~1/8 of an 8-bit MAC in LUTs, so the same
  // fabric fits 8x the reducers). Credited per layer by the STATIC
  // HwLayer::weights_binarizable annotation; see the header comment.
  int binary_term_parallelism = 8;

  std::int64_t macs_per_cycle() const {
    return static_cast<std::int64_t>(pc) * pf * pv;
  }
  // Peak arithmetic throughput in GOP/s (1 MAC = 2 ops).
  double peak_gops() const {
    return static_cast<double>(macs_per_cycle()) * 2.0 * clock_mhz / 1e3;
  }
};

// The paper's hardware design space (Section IV-A).
const std::vector<int>& pc_domain();  // {8, 16, 32, 64, 128}
const std::vector<int>& pf_domain();  // {8, 16, 32, 64, 128}
const std::vector<int>& pv_domain();  // {1, 4, 8, 16}

// Closed-form PE cycle count for one layer (compute only, no memory).
std::int64_t estimate_layer_cycles(const nn::HwLayer& layer, const NneConfig& config);

struct NneLayerResult {
  quant::QTensor output;
  std::int64_t compute_cycles = 0;  // counted by the tiled execution
  std::int64_t macs_retired = 0;    // useful MACs (excludes tile padding)
  int mask_bits_consumed = 0;
};

// Counters alone — the allocation-free entry point writes its output into a
// caller-owned tensor instead.
struct NneLayerStats {
  std::int64_t compute_cycles = 0;
  std::int64_t macs_retired = 0;
  int mask_bits_consumed = 0;
};

// Reusable per-lane working memory. All buffers grow monotonically and are
// fully overwritten each call, so after one pass over a network's largest
// layer every subsequent nne_run_layer_into is allocation-free;
// `grow_events` counts the capacity growths that did happen (the
// accelerator's steady-state-zero-allocation test watches it).
struct NneScratch {
  quant::QTensor pre;                // pre-pool position map (pooled layers)
  std::vector<std::int32_t> acc;     // PF x PV retiring accumulators
  std::vector<std::uint64_t> xbits;  // packed activation windows, [positions][words]
  std::vector<std::int32_t> x_pop;   // per-position popcounts of xbits
  std::vector<std::int8_t> wrows;    // materialized byte rows of packed-weight layers
  std::uint64_t grow_events = 0;
};

// Executes one layer with the hardware tiling into `out` (resized in place,
// capacity reused; must not alias `input`/`shortcut`). `plan` must be
// build_layer_exec_plan(layer). `tier` is a CAP (see nn/gemm_kernels.h):
// bitpack falls back to int8 unless the layer's weights are binarizable and
// this input is two-valued. `shortcut` must be non-null iff the layer has a
// shortcut; `masks` must be non-null when `site_active`.
NneLayerStats nne_run_layer_into(const quant::QLayer& layer, const quant::LayerExecPlan& plan,
                                 const quant::QTensor& input, const quant::QTensor* shortcut,
                                 bool site_active, nn::MaskSource* masks,
                                 quant::FixedMultiplier dropout_keep, const NneConfig& config,
                                 nn::kernels::Tier tier, NneScratch& scratch,
                                 quant::QTensor& out);

// Convenience form: builds the plan and scratch per call and runs at the
// bitpack cap (identical bits to every other tier by the contract above).
NneLayerResult nne_run_layer(const quant::QLayer& layer, const quant::QTensor& input,
                             const quant::QTensor* shortcut, bool site_active,
                             nn::MaskSource* masks, quant::FixedMultiplier dropout_keep,
                             const NneConfig& config);

}  // namespace bnn::core

#endif  // BNN_CORE_NNE_H
