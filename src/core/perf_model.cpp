#include "core/perf_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bnn::core {

namespace {

// Weight traffic: int8 weights plus per-output-channel parameters (int32
// bias, requantization multiplier+shift, post-add) ~ 12 bytes per channel.
std::int64_t weight_bytes(const nn::HwLayer& layer) {
  return static_cast<std::int64_t>(layer.out_c) * layer.in_c * layer.kernel * layer.kernel +
         12ll * layer.out_c;
}

}  // namespace

RunStats estimate_pass(const nn::NetworkDesc& desc, const PerfConfig& config, int first_layer,
                       int last_layer, bool input_from_chip, bool keep_last_on_chip) {
  util::require(first_layer >= 0 && last_layer < desc.num_layers() &&
                    first_layer <= last_layer,
                "estimate_pass: bad layer range");
  RunStats stats;
  for (int i = first_layer; i <= last_layer; ++i) {
    const nn::HwLayer& layer = desc.layers[static_cast<std::size_t>(i)];
    LayerTiming timing;
    timing.label = layer.label;
    timing.macs = layer.macs();
    timing.compute_cycles = static_cast<double>(estimate_layer_cycles(layer, config.nne)) +
                            config.nne.pipeline_fill_cycles;

    std::int64_t read = weight_bytes(layer) + layer.shortcut_elems();
    if (!(i == first_layer && input_from_chip)) read += layer.in_elems();
    std::int64_t write = layer.out_elems();
    if (i == last_layer && keep_last_on_chip) write = 0;

    timing.ddr_read_bytes = read;
    timing.ddr_write_bytes = write;
    timing.memory_cycles = config.ddr.transfer_cycles(read, config.nne.clock_mhz) +
                           config.ddr.transfer_cycles(write, config.nne.clock_mhz);
    timing.cycles = std::max(timing.compute_cycles, timing.memory_cycles);

    stats.total_cycles += timing.cycles;
    stats.macs += timing.macs;
    stats.ddr_bytes += read + write;
    stats.per_layer.push_back(std::move(timing));
  }
  stats.latency_ms = stats.total_cycles / (config.nne.clock_mhz * 1e3);
  return stats;
}

PerfCalibration calibrate_perf(double measured_wall_ms, double modelled_ms) {
  util::require(std::isfinite(measured_wall_ms) && measured_wall_ms > 0.0,
                "calibrate_perf: measured wall time must be positive and finite");
  util::require(std::isfinite(modelled_ms) && modelled_ms > 0.0,
                "calibrate_perf: modelled latency must be positive and finite");
  return PerfCalibration{measured_wall_ms / modelled_ms};
}

double calibrated_wall_ms(const RunStats& stats, const PerfCalibration& calibration) {
  return stats.latency_ms * calibration.wall_ms_per_modelled_ms;
}

std::int64_t mask_bits_per_sample(const nn::NetworkDesc& desc, int bayes_layers) {
  const int sites = desc.num_sites();
  util::require(bayes_layers >= 0 && bayes_layers <= sites,
                "mask_bits_per_sample: bayes_layers out of range");
  const int first_active_site = sites - bayes_layers;
  std::int64_t bits = 0;
  for (const nn::HwLayer& layer : desc.layers)
    if (layer.is_bayes_site && layer.site_index >= first_active_site) bits += layer.out_c;
  return bits;
}

RunStats estimate_mc(const nn::NetworkDesc& desc, const PerfConfig& config, int bayes_layers,
                     int num_samples, bool use_intermediate_caching) {
  util::require(num_samples >= 1, "estimate_mc: need at least one sample");
  const int last = desc.num_layers() - 1;

  // Deterministic network: a single pass regardless of S.
  if (bayes_layers == 0) {
    RunStats stats = estimate_pass(desc, config, 0, last, false, false);
    stats.per_layer.clear();
    return stats;
  }

  RunStats stats;
  if (!use_intermediate_caching) {
    const RunStats full = estimate_pass(desc, config, 0, last, false, false);
    stats.total_cycles = full.total_cycles * num_samples;
    stats.macs = full.macs * num_samples;
    stats.ddr_bytes = full.ddr_bytes * num_samples;
  } else {
    const int cut = desc.cut_layer_for(bayes_layers);
    if (cut == last) {
      // The whole network is the suffix-carrying layer... only possible when
      // the final layer carries the first active site; prefix is everything.
      const RunStats full = estimate_pass(desc, config, 0, last, false, false);
      stats.total_cycles = full.total_cycles +
                           0.0;  // masks on the cached output are pipelined
      stats.macs = full.macs;
      stats.ddr_bytes = full.ddr_bytes;
    } else {
      const RunStats prefix =
          estimate_pass(desc, config, 0, cut, false, /*keep_last_on_chip=*/true);
      const RunStats suffix = estimate_pass(desc, config, cut + 1, last,
                                            /*input_from_chip=*/true, false);
      stats.total_cycles = prefix.total_cycles + suffix.total_cycles * num_samples;
      stats.macs = prefix.macs + suffix.macs * num_samples;
      stats.ddr_bytes = prefix.ddr_bytes + suffix.ddr_bytes * num_samples;
    }
  }
  stats.mask_bits =
      mask_bits_per_sample(desc, bayes_layers) * static_cast<std::int64_t>(num_samples);
  stats.latency_ms = stats.total_cycles / (config.nne.clock_mhz * 1e3);
  return stats;
}

}  // namespace bnn::core
