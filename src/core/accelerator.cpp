#include "core/accelerator.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>

#include "nn/activations.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace bnn::core {

namespace {

// Reusable per-worker storage for predict lanes — the quantized analogue of
// the float path's ReplayArena. Thread-local so lanes never contend: a lane
// keeps every layer output, the NNE scratch (accumulators, packed windows)
// and its Bernoulli sampler across (image, sample) pairs, predict calls and
// accelerator instances. All buffers grow to the largest shapes seen and
// are fully overwritten per use, so steady-state lanes are allocation-free;
// grow_events counts the warmup growths (plus NneScratch's own counter).
struct LaneArena {
  NneScratch scratch;
  std::vector<quant::QTensor> outputs;  // indexed by TRUE layer index
  std::optional<BernoulliSampler> sampler;
  std::uint64_t grow_events = 0;
};

LaneArena& lane_arena() {
  thread_local LaneArena arena;
  return arena;
}

quant::QuantNetwork annotate(quant::QuantNetwork network) {
  quant::annotate_weight_tiers(network);
  return network;
}

}  // namespace

std::uint64_t Accelerator::lane_arena_grow_events() {
  const LaneArena& arena = lane_arena();
  return arena.grow_events + arena.scratch.grow_events;
}

Accelerator::Accelerator(quant::QuantNetwork network, AcceleratorConfig config)
    : Accelerator(std::make_shared<const quant::QuantNetwork>(annotate(std::move(network))),
                  config) {}

Accelerator::Accelerator(std::shared_ptr<const quant::QuantNetwork> network,
                         AcceleratorConfig config)
    : network_(std::move(network)), config_(config) {
  util::require(network_ != nullptr, "accelerator: null network");
  plan_ = std::make_shared<const quant::NetworkExecPlan>(
      quant::build_network_exec_plan(*network_));
  desc_ = network_->describe();
  // Fail fast on a non-realizable dropout probability instead of at the
  // first predict() (each (image, sample) lane builds its own sampler).
  (void)lfsrs_for_probability(network_->dropout_p);
}

Accelerator::Accelerator(std::shared_ptr<const quant::QuantNetwork> network,
                         std::shared_ptr<const quant::NetworkExecPlan> plan,
                         AcceleratorConfig config)
    : network_(std::move(network)), plan_(std::move(plan)), config_(config) {
  util::require(network_ != nullptr, "accelerator: null network");
  util::require(plan_ != nullptr, "accelerator: null execution plan");
  util::require(plan_->layers.size() == network_->layers.size(),
                "accelerator: plan does not match the network");
  desc_ = network_->describe();
  (void)lfsrs_for_probability(network_->dropout_p);
}

Accelerator::Accelerator(std::shared_ptr<const quant::QuantNetwork> network,
                         std::shared_ptr<quant::PlanSource> source,
                         AcceleratorConfig config)
    : network_(std::move(network)), source_(std::move(source)), config_(config) {
  util::require(network_ != nullptr, "accelerator: null network");
  util::require(source_ != nullptr, "accelerator: null plan source");
  util::require(source_->num_layers() == static_cast<int>(network_->layers.size()),
                "accelerator: plan source does not match the network");
  desc_ = network_->describe();
  (void)lfsrs_for_probability(network_->dropout_p);
}

std::uint64_t Accelerator::sample_stream_seed(std::uint64_t base_seed,
                                              std::uint64_t stream_id, int sample) {
  return util::Rng(base_seed)
      .fork(stream_id)
      .fork(static_cast<std::uint64_t>(sample))
      .seed();
}

Accelerator::Prediction Accelerator::predict(const nn::Tensor& images, int bayes_layers,
                                             int num_samples) {
  util::require(images.dim() == 4, "accelerator: expects NCHW images");
  const int batch = images.size(0);
  std::vector<ImageRequest> requests(static_cast<std::size_t>(batch));
  for (int n = 0; n < batch; ++n) {
    requests[static_cast<std::size_t>(n)] = ImageRequest{
        bayes_layers, num_samples, static_cast<std::uint64_t>(n)};
  }

  BatchPrediction batched = predict_batch(images, requests);
  Prediction prediction;
  prediction.probs = std::move(batched.probs);
  // Uniform knobs: every per-image estimate is the same one-image cost.
  prediction.stats = batched.stats.front();
  return prediction;
}

Accelerator::BatchPrediction Accelerator::predict_batch(
    const nn::Tensor& images, const std::vector<ImageRequest>& requests) {
  util::require(images.dim() == 4, "accelerator: expects NCHW images");
  const int batch = images.size(0);
  util::require(batch >= 1, "accelerator: empty image batch");
  util::require(static_cast<int>(requests.size()) == batch,
                "accelerator: need exactly one ImageRequest per image");

  // Per-image schedule resolved up front: the pair space is the union of
  // every image's sample range.
  struct ImagePlan {
    int samples = 1;            // 1 when L == 0 (deterministic single pass)
    int cut = 0;                // last prefix layer (IC boundary)
    int first_active_site = 0;  // sites >= this draw masks
    bool use_ic = false;
    std::int64_t pair_offset = 0;  // first flattened index of this image
  };
  std::vector<ImagePlan> plans(static_cast<std::size_t>(batch));
  std::int64_t total_pairs = 0;
  for (int n = 0; n < batch; ++n) {
    const ImageRequest& request = requests[static_cast<std::size_t>(n)];
    util::require(request.num_samples >= 1, "accelerator: need at least one sample");
    util::require(request.sample_offset >= 0, "accelerator: sample_offset must be >= 0");
    util::require(request.bayes_layers >= 0 && request.bayes_layers <= network_->num_sites,
                  "accelerator: bayes_layers out of range");
    ImagePlan& plan = plans[static_cast<std::size_t>(n)];
    plan.samples = request.bayes_layers == 0 ? 1 : request.num_samples;
    plan.cut = network_->cut_layer_for(request.bayes_layers);
    plan.first_active_site = network_->num_sites - request.bayes_layers;
    plan.use_ic = config_.use_intermediate_caching && request.bayes_layers > 0;
    plan.pair_offset = total_pairs;
    total_pairs += plan.samples;
  }
  std::vector<int> pair_image(static_cast<std::size_t>(total_pairs));
  for (int n = 0; n < batch; ++n) {
    const ImagePlan& plan = plans[static_cast<std::size_t>(n)];
    for (int s = 0; s < plan.samples; ++s)
      pair_image[static_cast<std::size_t>(plan.pair_offset + s)] = n;
  }

  // Lazily-shared per-image steps: whichever lane first touches image n
  // quantizes it and (under IC) runs its deterministic prefix; later lanes
  // of the same image wait on the once_flag and then read it read-only.
  struct ImageState {
    std::once_flag once;
    quant::QTensor qimage;
    std::vector<quant::QTensor> prefix;
    std::int64_t prefix_cycles = 0;
  };
  std::unique_ptr<ImageState[]> states(new ImageState[static_cast<std::size_t>(batch)]);

  // One preallocated probability row per (image, sample) pair: lanes write
  // logits into their row and softmax it in place (nn::softmax_row — the
  // exact per-row computation of nn::softmax_rows), so the per-sample path
  // allocates nothing.
  const int num_classes = network_->num_classes;
  nn::Tensor all_probs({static_cast<int>(total_pairs), num_classes});
  std::vector<std::int64_t> pair_cycles(static_cast<std::size_t>(total_pairs), 0);

  // Each (image, sample) lane runs on its own decorrelated sampler stream,
  // so a sample's masks never depend on which thread (or in which order)
  // the other samples ran. The lane arena's sampler is REUSED via reseed()
  // (bit-identical to a fresh sampler) whenever its structural knobs match.
  auto lane_sampler = [this](LaneArena& arena, std::uint64_t stream_id,
                             int sample) -> BernoulliSampler& {
    const std::uint64_t seed = sample_stream_seed(config_.sampler_seed, stream_id, sample);
    if (arena.sampler && arena.sampler->p() == network_->dropout_p &&
        arena.sampler->pf() == config_.nne.pf &&
        arena.sampler->fifo_depth() == config_.sampler_fifo_depth) {
      arena.sampler->reseed(seed);
    } else {
      BernoulliSamplerConfig sampler_config;
      sampler_config.p = network_->dropout_p;
      sampler_config.pf = config_.nne.pf;
      sampler_config.fifo_depth = config_.sampler_fifo_depth;
      sampler_config.seed = seed;
      arena.sampler.emplace(sampler_config);
      ++arena.grow_events;
    }
    return *arena.sampler;
  };

  // `stored(i)` resolves layer i's retained output in whatever storage the
  // calling lane uses (the arena's output slots, or shared prefix + arena
  // suffix slots). `out` must be the slot layer `index` retires into.
  auto run_layer = [this](int index, const auto& stored, const quant::QTensor& image,
                          bool site_active, nn::MaskSource* masks, std::int64_t& cycles,
                          NneScratch& scratch, quant::QTensor& out) {
    const quant::QLayer& layer = network_->layers[static_cast<std::size_t>(index)];
    const quant::QTensor& input =
        layer.input_source < 0 ? image : stored(layer.input_source);
    const quant::QTensor* shortcut =
        layer.geom.has_shortcut ? &stored(layer.shortcut_source) : nullptr;
    // Streaming path: hint the NEXT layer's segment before resolving this
    // one (the double-buffer overlap — layer k+1's modelled reload starts
    // while layer k computes), then hold segment k for the duration of the
    // kernel call. Fully-resident path reads the prebuilt plan directly.
    quant::PlanSegment streamed;
    if (source_ != nullptr) {
      if (index + 1 < source_->num_layers()) source_->prefetch(index + 1);
      streamed = source_->segment(index);
    }
    const quant::LayerExecPlan& plan_layer =
        source_ != nullptr ? *streamed : plan_->layer(index);
    const NneLayerStats stats = nne_run_layer_into(
        layer, plan_layer, input, shortcut, site_active, masks, network_->dropout_keep,
        config_.nne, config_.kernel_tier, scratch, out);
    cycles += stats.compute_cycles;
  };

  // Dequantized logits of the final layer into a preallocated row, then
  // softmax in place — same float operations as
  // softmax_rows(ref_logits(net, last)), without the temporaries.
  auto store_probs = [this, num_classes](const quant::QTensor& last, float* row) {
    util::require(last.numel() == num_classes, "accelerator: wrong final output size");
    for (int k = 0; k < num_classes; ++k)
      row[k] = last.params.scale *
               static_cast<float>(last.data[static_cast<std::size_t>(k)] -
                                  last.params.zero_point);
    nn::softmax_row(row, row, num_classes);
  };

  runtime::ThreadPool& pool = config_.pool ? *config_.pool : runtime::shared_pool();
  pool.parallel_for(
      total_pairs,
      [&](std::int64_t pair) {
        const int n = pair_image[static_cast<std::size_t>(pair)];
        const ImagePlan& plan = plans[static_cast<std::size_t>(n)];
        const ImageRequest& request = requests[static_cast<std::size_t>(n)];
        const int s = static_cast<int>(pair - plan.pair_offset);
        ImageState& state = states[static_cast<std::size_t>(n)];

        std::call_once(state.once, [&] {
          state.qimage = quant::quantize_image(images, n, network_->input);
          if (!plan.use_ic) return;
          // Prefix once, shared read-only across lanes: the cut layer's
          // pre-DU output is the on-chip boundary of the IC schedule. The
          // prefix tensors are call-local shared state, so they use a local
          // scratch — their one-off allocations are per-image warmup, not
          // lane steady state, and stay out of the arena's growth counter.
          NneScratch prefix_scratch;
          state.prefix.reserve(static_cast<std::size_t>(plan.cut + 1));
          const auto stored_prefix = [&state](int index) -> const quant::QTensor& {
            return state.prefix[static_cast<std::size_t>(index)];
          };
          for (int l = 0; l <= plan.cut; ++l) {
            quant::QTensor out;
            run_layer(l, stored_prefix, state.qimage, /*site_active=*/false, nullptr,
                      state.prefix_cycles, prefix_scratch, out);
            state.prefix.push_back(std::move(out));
          }
        });

        LaneArena& arena = lane_arena();
        if (arena.outputs.size() < network_->layers.size()) {
          arena.outputs.resize(network_->layers.size());
          ++arena.grow_events;
        }
        BernoulliSampler& sampler =
            lane_sampler(arena, request.stream_id, request.sample_offset + s);
        std::int64_t cycles = 0;
        float* prob_row = all_probs.data() + all_probs.index2(static_cast<int>(pair), 0);

        if (!plan.use_ic) {
          const auto stored = [&arena](int index) -> const quant::QTensor& {
            return arena.outputs[static_cast<std::size_t>(index)];
          };
          for (int l = 0; l < network_->num_layers(); ++l) {
            const quant::QLayer& layer = network_->layers[static_cast<std::size_t>(l)];
            const bool active = request.bayes_layers > 0 && layer.geom.is_bayes_site &&
                                layer.geom.site_index >= plan.first_active_site;
            run_layer(l, stored, state.qimage, active, &sampler, cycles, arena.scratch,
                      arena.outputs[static_cast<std::size_t>(l)]);
          }
          store_probs(arena.outputs[static_cast<std::size_t>(network_->num_layers() - 1)],
                      prob_row);
        } else {
          const quant::QTensor& boundary = state.prefix.back();
          const int cut = plan.cut;

          // DU pass over the cached boundary with this sample's fresh mask,
          // into the cut layer's arena slot (copy-assign reuses capacity).
          quant::QTensor& masked = arena.outputs[static_cast<std::size_t>(cut)];
          if (boundary.data.size() > masked.data.capacity()) ++arena.grow_events;
          masked = boundary;
          {
            const quant::QLayer& cut_layer =
                network_->layers[static_cast<std::size_t>(cut)];
            const std::int32_t zp = cut_layer.out.zero_point;
            const int plane = masked.height() * masked.width();
            for (int f = 0; f < masked.channels(); ++f) {
              const bool drop = sampler.next_drop();
              std::int8_t* row =
                  masked.data.data() + static_cast<std::size_t>(f) * plane;
              if (drop) {
                std::fill(row, row + plane, quant::saturate_int8(zp));
              } else {
                for (int i = 0; i < plane; ++i)
                  row[i] = quant::saturate_int8(
                      quant::fixed_multiply(static_cast<std::int32_t>(row[i]) - zp,
                                            network_->dropout_keep) +
                      zp);
              }
            }
          }

          // Suffix layers into the arena's true-index slots; inputs before
          // the cut resolve against the shared prefix, the cut itself to
          // this sample's masked boundary.
          const auto stored = [&state, &arena, cut](int index) -> const quant::QTensor& {
            return index < cut ? state.prefix[static_cast<std::size_t>(index)]
                               : arena.outputs[static_cast<std::size_t>(index)];
          };
          for (int l = cut + 1; l < network_->num_layers(); ++l) {
            const quant::QLayer& layer = network_->layers[static_cast<std::size_t>(l)];
            const bool active = layer.geom.is_bayes_site &&
                                layer.geom.site_index >= plan.first_active_site;
            run_layer(l, stored, state.qimage, active, &sampler, cycles, arena.scratch,
                      arena.outputs[static_cast<std::size_t>(l)]);
          }
          store_probs(arena.outputs[static_cast<std::size_t>(network_->num_layers() - 1)],
                      prob_row);
        }
        pair_cycles[static_cast<std::size_t>(pair)] = cycles;
      },
      runtime::resolve_thread_count(config_.num_threads));

  // Fixed-order reduction per image: rows summed in ascending sample order
  // then scaled — the same per-element float operation sequence as the
  // historical add_/scale_ reduction, so results are bit-identical for
  // every thread count and every batch composition.
  BatchPrediction out;
  out.probs = nn::Tensor({batch, num_classes});
  out.stats.reserve(static_cast<std::size_t>(batch));
  functional_cycles_ = 0;
  for (int n = 0; n < batch; ++n) {
    const ImagePlan& plan = plans[static_cast<std::size_t>(n)];
    const ImageRequest& request = requests[static_cast<std::size_t>(n)];
    const float inv_samples = 1.0f / static_cast<float>(plan.samples);
    for (int k = 0; k < num_classes; ++k) {
      float acc = all_probs.v2(static_cast<int>(plan.pair_offset), k);
      for (int s = 1; s < plan.samples; ++s)
        acc += all_probs.v2(static_cast<int>(plan.pair_offset + s), k);
      out.probs.v2(n, k) = acc * inv_samples;
    }

    functional_cycles_ += states[static_cast<std::size_t>(n)].prefix_cycles;
    for (int s = 0; s < plan.samples; ++s)
      functional_cycles_ += pair_cycles[static_cast<std::size_t>(plan.pair_offset + s)];
    out.stats.push_back(estimate(request.bayes_layers, request.num_samples));
  }
  return out;
}

RunStats Accelerator::estimate(int bayes_layers, int num_samples) const {
  PerfConfig perf{config_.nne, config_.ddr};
  return estimate_mc(desc_, perf, bayes_layers, num_samples,
                     config_.use_intermediate_caching);
}

ResourceUsage Accelerator::resources(const FpgaDevice& device) const {
  return estimate_resources(config_.nne, desc_, device, config_.sampler_fifo_depth,
                            lfsrs_for_probability(network_->dropout_p));
}

}  // namespace bnn::core
