#include "core/accelerator.h"

#include "nn/activations.h"
#include "util/check.h"

namespace bnn::core {

Accelerator::Accelerator(quant::QuantNetwork network, AcceleratorConfig config)
    : network_(std::move(network)), config_(config), desc_(network_.describe()) {
  BernoulliSamplerConfig sampler_config;
  sampler_config.p = network_.dropout_p;
  sampler_config.pf = config_.nne.pf;
  sampler_config.fifo_depth = config_.sampler_fifo_depth;
  sampler_config.seed = config_.sampler_seed;
  sampler_ = std::make_unique<BernoulliSampler>(sampler_config);
}

Accelerator::Prediction Accelerator::predict(const nn::Tensor& images, int bayes_layers,
                                             int num_samples) {
  util::require(images.dim() == 4, "accelerator: expects NCHW images");
  util::require(num_samples >= 1, "accelerator: need at least one sample");
  util::require(bayes_layers >= 0 && bayes_layers <= network_.num_sites,
                "accelerator: bayes_layers out of range");

  const int batch = images.size(0);
  nn::Tensor probs({batch, network_.num_classes});
  functional_cycles_ = 0;

  const int cut = network_.cut_layer_for(bayes_layers);
  const int first_active_site = network_.num_sites - bayes_layers;
  const bool use_ic = config_.use_intermediate_caching && bayes_layers > 0;

  auto run_layer = [this](int index, const std::vector<quant::QTensor>& outputs,
                          const quant::QTensor& image, bool site_active) {
    const quant::QLayer& layer = network_.layers[static_cast<std::size_t>(index)];
    const quant::QTensor& input =
        layer.input_source < 0 ? image
                               : outputs[static_cast<std::size_t>(layer.input_source)];
    const quant::QTensor* shortcut =
        layer.geom.has_shortcut
            ? &outputs[static_cast<std::size_t>(layer.shortcut_source)]
            : nullptr;
    NneLayerResult result =
        nne_run_layer(layer, input, shortcut, site_active, sampler_.get(),
                      network_.dropout_keep, config_.nne);
    functional_cycles_ += result.compute_cycles;
    return result;
  };

  for (int n = 0; n < batch; ++n) {
    const quant::QTensor image = quantize_image(images, n, network_.input);
    nn::Tensor accumulated({1, network_.num_classes});
    const int samples = bayes_layers == 0 ? 1 : num_samples;

    std::vector<quant::QTensor> outputs;
    outputs.reserve(network_.layers.size());

    if (!use_ic || bayes_layers == 0) {
      for (int s = 0; s < samples; ++s) {
        outputs.clear();
        for (int l = 0; l < network_.num_layers(); ++l) {
          const quant::QLayer& layer = network_.layers[static_cast<std::size_t>(l)];
          const bool active = bayes_layers > 0 && layer.geom.is_bayes_site &&
                              layer.geom.site_index >= first_active_site;
          outputs.push_back(run_layer(l, outputs, image, active).output);
        }
        accumulated.add_(nn::softmax_rows(quant::ref_logits(network_, outputs.back())));
      }
    } else {
      // Prefix once: the cut layer's pre-DU output is the on-chip boundary.
      for (int l = 0; l <= cut; ++l)
        outputs.push_back(run_layer(l, outputs, image, /*site_active=*/false).output);
      const quant::QTensor boundary = outputs.back();

      for (int s = 0; s < samples; ++s) {
        outputs.resize(static_cast<std::size_t>(cut + 1));
        // DU pass over the cached boundary with a fresh mask.
        quant::QTensor masked = boundary;
        {
          const quant::QLayer& cut_layer = network_.layers[static_cast<std::size_t>(cut)];
          const std::int32_t zp = cut_layer.out.zero_point;
          const int plane = masked.height() * masked.width();
          for (int f = 0; f < masked.channels(); ++f) {
            const bool drop = sampler_->next_drop();
            std::int8_t* row = masked.data.data() + static_cast<std::size_t>(f) * plane;
            if (drop) {
              std::fill(row, row + plane, quant::saturate_int8(zp));
            } else {
              for (int i = 0; i < plane; ++i)
                row[i] = quant::saturate_int8(
                    quant::fixed_multiply(static_cast<std::int32_t>(row[i]) - zp,
                                          network_.dropout_keep) +
                    zp);
            }
          }
        }
        outputs[static_cast<std::size_t>(cut)] = std::move(masked);
        for (int l = cut + 1; l < network_.num_layers(); ++l) {
          const quant::QLayer& layer = network_.layers[static_cast<std::size_t>(l)];
          const bool active = layer.geom.is_bayes_site &&
                              layer.geom.site_index >= first_active_site;
          outputs.push_back(run_layer(l, outputs, image, active).output);
        }
        accumulated.add_(nn::softmax_rows(quant::ref_logits(network_, outputs.back())));
      }
    }

    accumulated.scale_(1.0f / static_cast<float>(samples));
    for (int k = 0; k < network_.num_classes; ++k) probs.v2(n, k) = accumulated.v2(0, k);
  }

  Prediction prediction;
  prediction.probs = std::move(probs);
  prediction.stats = estimate(bayes_layers, num_samples);
  return prediction;
}

RunStats Accelerator::estimate(int bayes_layers, int num_samples) const {
  PerfConfig perf{config_.nne, config_.ddr};
  return estimate_mc(desc_, perf, bayes_layers, num_samples,
                     config_.use_intermediate_caching);
}

ResourceUsage Accelerator::resources(const FpgaDevice& device) const {
  return estimate_resources(config_.nne, desc_, device, config_.sampler_fifo_depth,
                            lfsrs_for_probability(network_.dropout_p));
}

}  // namespace bnn::core
