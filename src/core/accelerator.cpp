#include "core/accelerator.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "nn/activations.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace bnn::core {

Accelerator::Accelerator(quant::QuantNetwork network, AcceleratorConfig config)
    : Accelerator(std::make_shared<const quant::QuantNetwork>(std::move(network)), config) {}

Accelerator::Accelerator(std::shared_ptr<const quant::QuantNetwork> network,
                         AcceleratorConfig config)
    : network_(std::move(network)), config_(config) {
  util::require(network_ != nullptr, "accelerator: null network");
  desc_ = network_->describe();
  // Fail fast on a non-realizable dropout probability instead of at the
  // first predict() (each (image, sample) lane builds its own sampler).
  (void)lfsrs_for_probability(network_->dropout_p);
}

std::uint64_t Accelerator::sample_stream_seed(std::uint64_t base_seed,
                                              std::uint64_t stream_id, int sample) {
  return util::Rng(base_seed)
      .fork(stream_id)
      .fork(static_cast<std::uint64_t>(sample))
      .seed();
}

Accelerator::Prediction Accelerator::predict(const nn::Tensor& images, int bayes_layers,
                                             int num_samples) {
  util::require(images.dim() == 4, "accelerator: expects NCHW images");
  const int batch = images.size(0);
  std::vector<ImageRequest> requests(static_cast<std::size_t>(batch));
  for (int n = 0; n < batch; ++n) {
    requests[static_cast<std::size_t>(n)] = ImageRequest{
        bayes_layers, num_samples, static_cast<std::uint64_t>(n)};
  }

  BatchPrediction batched = predict_batch(images, requests);
  Prediction prediction;
  prediction.probs = std::move(batched.probs);
  // Uniform knobs: every per-image estimate is the same one-image cost.
  prediction.stats = batched.stats.front();
  return prediction;
}

Accelerator::BatchPrediction Accelerator::predict_batch(
    const nn::Tensor& images, const std::vector<ImageRequest>& requests) {
  util::require(images.dim() == 4, "accelerator: expects NCHW images");
  const int batch = images.size(0);
  util::require(batch >= 1, "accelerator: empty image batch");
  util::require(static_cast<int>(requests.size()) == batch,
                "accelerator: need exactly one ImageRequest per image");

  // Per-image schedule resolved up front: the pair space is the union of
  // every image's sample range.
  struct ImagePlan {
    int samples = 1;            // 1 when L == 0 (deterministic single pass)
    int cut = 0;                // last prefix layer (IC boundary)
    int first_active_site = 0;  // sites >= this draw masks
    bool use_ic = false;
    std::int64_t pair_offset = 0;  // first flattened index of this image
  };
  std::vector<ImagePlan> plans(static_cast<std::size_t>(batch));
  std::int64_t total_pairs = 0;
  for (int n = 0; n < batch; ++n) {
    const ImageRequest& request = requests[static_cast<std::size_t>(n)];
    util::require(request.num_samples >= 1, "accelerator: need at least one sample");
    util::require(request.bayes_layers >= 0 && request.bayes_layers <= network_->num_sites,
                  "accelerator: bayes_layers out of range");
    ImagePlan& plan = plans[static_cast<std::size_t>(n)];
    plan.samples = request.bayes_layers == 0 ? 1 : request.num_samples;
    plan.cut = network_->cut_layer_for(request.bayes_layers);
    plan.first_active_site = network_->num_sites - request.bayes_layers;
    plan.use_ic = config_.use_intermediate_caching && request.bayes_layers > 0;
    plan.pair_offset = total_pairs;
    total_pairs += plan.samples;
  }
  std::vector<int> pair_image(static_cast<std::size_t>(total_pairs));
  for (int n = 0; n < batch; ++n) {
    const ImagePlan& plan = plans[static_cast<std::size_t>(n)];
    for (int s = 0; s < plan.samples; ++s)
      pair_image[static_cast<std::size_t>(plan.pair_offset + s)] = n;
  }

  // Lazily-shared per-image steps: whichever lane first touches image n
  // quantizes it and (under IC) runs its deterministic prefix; later lanes
  // of the same image wait on the once_flag and then read it read-only.
  struct ImageState {
    std::once_flag once;
    quant::QTensor qimage;
    std::vector<quant::QTensor> prefix;
    std::int64_t prefix_cycles = 0;
  };
  std::unique_ptr<ImageState[]> states(new ImageState[static_cast<std::size_t>(batch)]);

  std::vector<nn::Tensor> pair_probs(static_cast<std::size_t>(total_pairs));
  std::vector<std::int64_t> pair_cycles(static_cast<std::size_t>(total_pairs), 0);

  // Each (image, sample) lane runs on its own decorrelated sampler stream,
  // so a sample's masks never depend on which thread (or in which order)
  // the other samples ran.
  auto make_sampler = [this](std::uint64_t stream_id, int sample) {
    BernoulliSamplerConfig sampler_config;
    sampler_config.p = network_->dropout_p;
    sampler_config.pf = config_.nne.pf;
    sampler_config.fifo_depth = config_.sampler_fifo_depth;
    sampler_config.seed = sample_stream_seed(config_.sampler_seed, stream_id, sample);
    return BernoulliSampler(sampler_config);
  };

  // `stored(i)` resolves layer i's retained output in whatever storage the
  // calling lane uses (one local vector, or shared prefix + lane-local
  // suffix).
  auto run_layer = [this](int index, const auto& stored, const quant::QTensor& image,
                          bool site_active, nn::MaskSource* masks, std::int64_t& cycles) {
    const quant::QLayer& layer = network_->layers[static_cast<std::size_t>(index)];
    const quant::QTensor& input =
        layer.input_source < 0 ? image : stored(layer.input_source);
    const quant::QTensor* shortcut =
        layer.geom.has_shortcut ? &stored(layer.shortcut_source) : nullptr;
    NneLayerResult result = nne_run_layer(layer, input, shortcut, site_active, masks,
                                          network_->dropout_keep, config_.nne);
    cycles += result.compute_cycles;
    return std::move(result.output);
  };

  runtime::ThreadPool& pool = config_.pool ? *config_.pool : runtime::shared_pool();
  pool.parallel_for(
      total_pairs,
      [&](std::int64_t pair) {
        const int n = pair_image[static_cast<std::size_t>(pair)];
        const ImagePlan& plan = plans[static_cast<std::size_t>(n)];
        const ImageRequest& request = requests[static_cast<std::size_t>(n)];
        const int s = static_cast<int>(pair - plan.pair_offset);
        ImageState& state = states[static_cast<std::size_t>(n)];

        std::call_once(state.once, [&] {
          state.qimage = quant::quantize_image(images, n, network_->input);
          if (!plan.use_ic) return;
          // Prefix once, shared read-only across lanes: the cut layer's
          // pre-DU output is the on-chip boundary of the IC schedule.
          state.prefix.reserve(static_cast<std::size_t>(plan.cut + 1));
          const auto stored_prefix = [&state](int index) -> const quant::QTensor& {
            return state.prefix[static_cast<std::size_t>(index)];
          };
          for (int l = 0; l <= plan.cut; ++l)
            state.prefix.push_back(run_layer(l, stored_prefix, state.qimage,
                                             /*site_active=*/false, nullptr,
                                             state.prefix_cycles));
        });

        BernoulliSampler sampler = make_sampler(request.stream_id, s);
        std::int64_t cycles = 0;

        if (!plan.use_ic) {
          std::vector<quant::QTensor> outputs;
          outputs.reserve(network_->layers.size());
          const auto stored = [&outputs](int index) -> const quant::QTensor& {
            return outputs[static_cast<std::size_t>(index)];
          };
          for (int l = 0; l < network_->num_layers(); ++l) {
            const quant::QLayer& layer = network_->layers[static_cast<std::size_t>(l)];
            const bool active = request.bayes_layers > 0 && layer.geom.is_bayes_site &&
                                layer.geom.site_index >= plan.first_active_site;
            outputs.push_back(
                run_layer(l, stored, state.qimage, active, &sampler, cycles));
          }
          pair_probs[static_cast<std::size_t>(pair)] =
              nn::softmax_rows(quant::ref_logits(*network_, outputs.back()));
        } else {
          const quant::QTensor& boundary = state.prefix.back();

          // DU pass over the cached boundary with this sample's fresh mask.
          quant::QTensor masked = boundary;
          {
            const quant::QLayer& cut_layer =
                network_->layers[static_cast<std::size_t>(plan.cut)];
            const std::int32_t zp = cut_layer.out.zero_point;
            const int plane = masked.height() * masked.width();
            for (int f = 0; f < masked.channels(); ++f) {
              const bool drop = sampler.next_drop();
              std::int8_t* row =
                  masked.data.data() + static_cast<std::size_t>(f) * plane;
              if (drop) {
                std::fill(row, row + plane, quant::saturate_int8(zp));
              } else {
                for (int i = 0; i < plane; ++i)
                  row[i] = quant::saturate_int8(
                      quant::fixed_multiply(static_cast<std::int32_t>(row[i]) - zp,
                                            network_->dropout_keep) +
                      zp);
              }
            }
          }

          // Suffix layers into lane-local storage; inputs before the cut
          // resolve against the shared prefix, the cut itself to this
          // sample's masked boundary.
          std::vector<quant::QTensor> suffix;
          suffix.reserve(network_->layers.size() - static_cast<std::size_t>(plan.cut));
          suffix.push_back(std::move(masked));
          const int cut = plan.cut;
          const auto stored = [&state, &suffix, cut](int index) -> const quant::QTensor& {
            return index < cut ? state.prefix[static_cast<std::size_t>(index)]
                               : suffix[static_cast<std::size_t>(index - cut)];
          };
          for (int l = cut + 1; l < network_->num_layers(); ++l) {
            const quant::QLayer& layer = network_->layers[static_cast<std::size_t>(l)];
            const bool active = layer.geom.is_bayes_site &&
                                layer.geom.site_index >= plan.first_active_site;
            suffix.push_back(
                run_layer(l, stored, state.qimage, active, &sampler, cycles));
          }
          pair_probs[static_cast<std::size_t>(pair)] =
              nn::softmax_rows(quant::ref_logits(*network_, suffix.back()));
        }
        pair_cycles[static_cast<std::size_t>(pair)] = cycles;
      },
      runtime::resolve_thread_count(config_.num_threads));

  // Fixed-order reduction per image: bit-identical for every thread count
  // and every batch composition.
  BatchPrediction out;
  out.probs = nn::Tensor({batch, network_->num_classes});
  out.stats.reserve(static_cast<std::size_t>(batch));
  functional_cycles_ = 0;
  for (int n = 0; n < batch; ++n) {
    const ImagePlan& plan = plans[static_cast<std::size_t>(n)];
    const ImageRequest& request = requests[static_cast<std::size_t>(n)];
    nn::Tensor accumulated =
        std::move(pair_probs[static_cast<std::size_t>(plan.pair_offset)]);
    for (int s = 1; s < plan.samples; ++s)
      accumulated.add_(pair_probs[static_cast<std::size_t>(plan.pair_offset + s)]);
    accumulated.scale_(1.0f / static_cast<float>(plan.samples));
    for (int k = 0; k < network_->num_classes; ++k)
      out.probs.v2(n, k) = accumulated.v2(0, k);

    functional_cycles_ += states[static_cast<std::size_t>(n)].prefix_cycles;
    for (int s = 0; s < plan.samples; ++s)
      functional_cycles_ += pair_cycles[static_cast<std::size_t>(plan.pair_offset + s)];
    out.stats.push_back(estimate(request.bayes_layers, request.num_samples));
  }
  return out;
}

RunStats Accelerator::estimate(int bayes_layers, int num_samples) const {
  PerfConfig perf{config_.nne, config_.ddr};
  return estimate_mc(desc_, perf, bayes_layers, num_samples,
                     config_.use_intermediate_caching);
}

ResourceUsage Accelerator::resources(const FpgaDevice& device) const {
  return estimate_resources(config_.nne, desc_, device, config_.sampler_fifo_depth,
                            lfsrs_for_probability(network_->dropout_p));
}

}  // namespace bnn::core
