#include "core/accelerator.h"

#include <algorithm>
#include <numeric>

#include "nn/activations.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace bnn::core {

Accelerator::Accelerator(quant::QuantNetwork network, AcceleratorConfig config)
    : network_(std::move(network)), config_(config), desc_(network_.describe()) {
  // Fail fast on a non-realizable dropout probability instead of at the
  // first predict() (each (image, sample) lane builds its own sampler).
  (void)lfsrs_for_probability(network_.dropout_p);
}

std::uint64_t Accelerator::sample_stream_seed(std::uint64_t base_seed, int image,
                                              int sample) {
  return util::Rng(base_seed)
      .fork(static_cast<std::uint64_t>(image))
      .fork(static_cast<std::uint64_t>(sample))
      .seed();
}

Accelerator::Prediction Accelerator::predict(const nn::Tensor& images, int bayes_layers,
                                             int num_samples) {
  util::require(images.dim() == 4, "accelerator: expects NCHW images");
  util::require(num_samples >= 1, "accelerator: need at least one sample");
  util::require(bayes_layers >= 0 && bayes_layers <= network_.num_sites,
                "accelerator: bayes_layers out of range");

  const int batch = images.size(0);
  nn::Tensor probs({batch, network_.num_classes});
  functional_cycles_ = 0;

  const int cut = network_.cut_layer_for(bayes_layers);
  const int first_active_site = network_.num_sites - bayes_layers;
  const bool use_ic = config_.use_intermediate_caching && bayes_layers > 0;
  const int samples = bayes_layers == 0 ? 1 : num_samples;

  // Each (image, sample) lane runs on its own decorrelated sampler stream,
  // so a sample's masks never depend on which thread (or in which order)
  // the other samples ran.
  auto make_sampler = [this](int image, int sample) {
    BernoulliSamplerConfig sampler_config;
    sampler_config.p = network_.dropout_p;
    sampler_config.pf = config_.nne.pf;
    sampler_config.fifo_depth = config_.sampler_fifo_depth;
    sampler_config.seed = sample_stream_seed(config_.sampler_seed, image, sample);
    return BernoulliSampler(sampler_config);
  };

  // `stored(i)` resolves layer i's retained output in whatever storage the
  // calling loop uses (one shared vector, or prefix + worker-local suffix).
  auto run_layer = [this](int index, const auto& stored, const quant::QTensor& image,
                          bool site_active, nn::MaskSource* masks, std::int64_t& cycles) {
    const quant::QLayer& layer = network_.layers[static_cast<std::size_t>(index)];
    const quant::QTensor& input =
        layer.input_source < 0 ? image : stored(layer.input_source);
    const quant::QTensor* shortcut =
        layer.geom.has_shortcut ? &stored(layer.shortcut_source) : nullptr;
    NneLayerResult result = nne_run_layer(layer, input, shortcut, site_active, masks,
                                          network_.dropout_keep, config_.nne);
    cycles += result.compute_cycles;
    return std::move(result.output);
  };

  runtime::ThreadPool pool(
      std::min(runtime::resolve_thread_count(config_.num_threads), samples));

  for (int n = 0; n < batch; ++n) {
    const quant::QTensor image = quantize_image(images, n, network_.input);
    std::vector<nn::Tensor> sample_probs(static_cast<std::size_t>(samples));
    std::vector<std::int64_t> sample_cycles(static_cast<std::size_t>(samples), 0);

    if (!use_ic) {
      pool.parallel_for(samples, [&](std::int64_t s) {
        BernoulliSampler sampler = make_sampler(n, static_cast<int>(s));
        std::int64_t cycles = 0;
        std::vector<quant::QTensor> outputs;
        outputs.reserve(network_.layers.size());
        const auto stored = [&outputs](int index) -> const quant::QTensor& {
          return outputs[static_cast<std::size_t>(index)];
        };
        for (int l = 0; l < network_.num_layers(); ++l) {
          const quant::QLayer& layer = network_.layers[static_cast<std::size_t>(l)];
          const bool active = bayes_layers > 0 && layer.geom.is_bayes_site &&
                              layer.geom.site_index >= first_active_site;
          outputs.push_back(run_layer(l, stored, image, active, &sampler, cycles));
        }
        sample_probs[static_cast<std::size_t>(s)] =
            nn::softmax_rows(quant::ref_logits(network_, outputs.back()));
        sample_cycles[static_cast<std::size_t>(s)] = cycles;
      });
    } else {
      // Prefix once, shared read-only across workers: the cut layer's
      // pre-DU output is the on-chip boundary of the IC schedule.
      std::int64_t prefix_cycles = 0;
      std::vector<quant::QTensor> prefix;
      prefix.reserve(static_cast<std::size_t>(cut + 1));
      const auto stored_prefix = [&prefix](int index) -> const quant::QTensor& {
        return prefix[static_cast<std::size_t>(index)];
      };
      for (int l = 0; l <= cut; ++l)
        prefix.push_back(run_layer(l, stored_prefix, image, /*site_active=*/false,
                                   nullptr, prefix_cycles));
      functional_cycles_ += prefix_cycles;
      const quant::QTensor& boundary = prefix.back();

      pool.parallel_for(samples, [&](std::int64_t s) {
        BernoulliSampler sampler = make_sampler(n, static_cast<int>(s));
        std::int64_t cycles = 0;

        // DU pass over the cached boundary with this sample's fresh mask.
        quant::QTensor masked = boundary;
        {
          const quant::QLayer& cut_layer = network_.layers[static_cast<std::size_t>(cut)];
          const std::int32_t zp = cut_layer.out.zero_point;
          const int plane = masked.height() * masked.width();
          for (int f = 0; f < masked.channels(); ++f) {
            const bool drop = sampler.next_drop();
            std::int8_t* row = masked.data.data() + static_cast<std::size_t>(f) * plane;
            if (drop) {
              std::fill(row, row + plane, quant::saturate_int8(zp));
            } else {
              for (int i = 0; i < plane; ++i)
                row[i] = quant::saturate_int8(
                    quant::fixed_multiply(static_cast<std::int32_t>(row[i]) - zp,
                                          network_.dropout_keep) +
                    zp);
            }
          }
        }

        // Suffix layers into worker-local storage; inputs before the cut
        // resolve against the shared prefix, the cut itself to this
        // sample's masked boundary.
        std::vector<quant::QTensor> suffix;
        suffix.reserve(network_.layers.size() - static_cast<std::size_t>(cut));
        suffix.push_back(std::move(masked));
        const auto stored = [&prefix, &suffix, cut](int index) -> const quant::QTensor& {
          return index < cut ? prefix[static_cast<std::size_t>(index)]
                             : suffix[static_cast<std::size_t>(index - cut)];
        };
        for (int l = cut + 1; l < network_.num_layers(); ++l) {
          const quant::QLayer& layer = network_.layers[static_cast<std::size_t>(l)];
          const bool active = layer.geom.is_bayes_site &&
                              layer.geom.site_index >= first_active_site;
          suffix.push_back(run_layer(l, stored, image, active, &sampler, cycles));
        }
        sample_probs[static_cast<std::size_t>(s)] =
            nn::softmax_rows(quant::ref_logits(network_, suffix.back()));
        sample_cycles[static_cast<std::size_t>(s)] = cycles;
      });
    }

    // Fixed-order reduction: bit-identical for every thread count.
    nn::Tensor accumulated = std::move(sample_probs.front());
    for (int s = 1; s < samples; ++s)
      accumulated.add_(sample_probs[static_cast<std::size_t>(s)]);
    accumulated.scale_(1.0f / static_cast<float>(samples));
    for (int k = 0; k < network_.num_classes; ++k) probs.v2(n, k) = accumulated.v2(0, k);
    functional_cycles_ +=
        std::accumulate(sample_cycles.begin(), sample_cycles.end(), std::int64_t{0});
  }

  Prediction prediction;
  prediction.probs = std::move(probs);
  prediction.stats = estimate(bayes_layers, num_samples);
  return prediction;
}

RunStats Accelerator::estimate(int bayes_layers, int num_samples) const {
  PerfConfig perf{config_.nne, config_.ddr};
  return estimate_mc(desc_, perf, bayes_layers, num_samples,
                     config_.use_intermediate_caching);
}

ResourceUsage Accelerator::resources(const FpgaDevice& device) const {
  return estimate_resources(config_.nne, desc_, device, config_.sampler_fifo_depth,
                            lfsrs_for_probability(network_.dropout_p));
}

}  // namespace bnn::core
