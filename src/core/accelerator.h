// Top-level accelerator simulator: ties the quantized network, the NNE
// datapath, the Bernoulli sampler and the IC schedule together.
//
// `predict` / `predict_batch` are the functional path — they execute every
// layer with the hardware tiling (bit-exact against quant/qops) while
// drawing Dropout-Unit masks from the simulated LFSR sampler, and report
// the modelled latency. `estimate` is the timing-only path for networks too
// large to execute.
#ifndef BNN_CORE_ACCELERATOR_H
#define BNN_CORE_ACCELERATOR_H

#include <memory>

#include "core/bernoulli_sampler.h"
#include "core/perf_model.h"
#include "core/resource_model.h"
#include "nn/gemm_kernels.h"
#include "quant/qnetwork.h"
#include "quant/qops.h"
#include "quant/qplan.h"

namespace bnn::runtime {
class ThreadPool;
}

namespace bnn::core {

struct AcceleratorConfig {
  NneConfig nne;  // paper final design: PC=64, PF=64, PV=1 @ 225 MHz
  DdrModel ddr;
  int sampler_fifo_depth = 16;
  std::uint64_t sampler_seed = 1;
  bool use_intermediate_caching = true;
  double board_power_watts = 45.0;  // paper's total board power
  /// Worker-lane cap for the flattened (image, sample) loop of predict()
  /// (0 = hardware concurrency). Output is bit-identical for every thread
  /// count: each (image, sample) pair consumes its own sampler stream
  /// seeded with sample_stream_seed(sampler_seed, stream_id, sample), and
  /// per-sample softmax outputs are reduced in ascending sample order.
  int num_threads = 1;
  /// Executor for the flattened loop (non-owning; must outlive the
  /// accelerator's predict calls). nullptr selects the process-wide
  /// runtime::shared_pool(); num_threads still caps how many of its lanes
  /// this accelerator uses. Supplying a pool lets a serving layer share one
  /// set of worker threads across many accelerators and requests.
  runtime::ThreadPool* pool = nullptr;
  /// Kernel-tier CAP for the NNE inner product (see nn/gemm_kernels.h).
  /// bitpack (the default) routes weights-binarizable layers with two-valued
  /// activations through the XNOR/popcount path and falls back to int8
  /// everywhere else; outputs are bit-identical for every setting, so this
  /// knob trades host simulation speed only.
  nn::kernels::Tier kernel_tier = nn::kernels::Tier::bitpack;
};

/// Simulated BNN accelerator. Thread-safety: a given Accelerator must be
/// driven from one thread at a time (predict mutates the functional cycle
/// counter); distinct Accelerators may run concurrently and may share one
/// runtime::ThreadPool.
///
/// Replication: the quantized network is held through a shared_ptr-const,
/// so COPYING an Accelerator shares the weights and layer schedule
/// read-only instead of duplicating them — a serving layer can stand up R
/// replicas of one accelerator at the cost of R config structs. Each copy
/// keeps its own functional cycle counter and executor knobs, and the
/// per-call IC prefix state of predict_batch is call-local, so replicas
/// never observe each other.
class Accelerator {
 public:
  /// Takes ownership of the network. Runs quant::annotate_weight_tiers on it
  /// first, so the timing/cost models see binarizable layers even for
  /// hand-assembled networks (quantize_model output is already annotated).
  Accelerator(quant::QuantNetwork network, AcceleratorConfig config);

  /// Shares an already-wrapped network (no copy). The network must not be
  /// mutated for the accelerator's lifetime. Callers wanting the binary
  /// cycle model should annotate before wrapping (quantize_model does).
  Accelerator(std::shared_ptr<const quant::QuantNetwork> network, AcceleratorConfig config);

  /// Shares both the network AND a prebuilt execution plan (which must be
  /// build_network_exec_plan(*network) or equivalent). The registry-serving
  /// path uses this to bind many (replica, model) accelerators without
  /// rebuilding per-layer plans each time.
  Accelerator(std::shared_ptr<const quant::QuantNetwork> network,
              std::shared_ptr<const quant::NetworkExecPlan> plan, AcceleratorConfig config);

  /// Streams exec-plan segments from `source` instead of holding a whole
  /// prebuilt plan: each layer's segment is resolved on first use, and the
  /// NEXT layer's segment is prefetched (double-buffer style) while the
  /// current layer computes. Because segments are pure functions of the
  /// network constants, output is bit-identical to the whole-plan ctor —
  /// only the modelled weight-residency timeline differs. The registry's
  /// streamed cold-start path binds replicas this way.
  Accelerator(std::shared_ptr<const quant::QuantNetwork> network,
              std::shared_ptr<quant::PlanSource> source, AcceleratorConfig config);

  /// Per-image knobs of one batched prediction — the request-level unit of
  /// the serving layer. The paper's L (Bayesian depth) and S (MC samples)
  /// are free per image; `stream_id` names the sampler-lane family so a
  /// request's masks do not depend on where in a batch it lands.
  struct ImageRequest {
    int bayes_layers = 0;         ///< L: last-L sites active (0 = deterministic)
    int num_samples = 1;          ///< S: MC samples averaged for this image
    std::uint64_t stream_id = 0;  ///< lane family fed to sample_stream_seed
    /// First sample index of this request's lane range: sample s draws from
    /// sample_stream_seed(seed, stream_id, sample_offset + s). Lets a caller
    /// split one logical S-sample prediction across multiple requests with
    /// non-overlapping sample windows (the serving layer's escalation-reuse
    /// mode): {offset 0, S1 samples} followed by {offset S1, S - S1 samples}
    /// consumes exactly the mask streams a single {offset 0, S} request
    /// would. The AVERAGES then differ from the single-request result only
    /// in float summation order (each window is averaged before merging) —
    /// deterministic, but not bit-identical to the unsplit reduction.
    int sample_offset = 0;
  };

  struct Prediction {
    nn::Tensor probs;  // (N, K) averaged predictive distribution
    RunStats stats;    // modelled latency/traffic for ONE image's S samples
  };

  /// Result of predict_batch: averaged predictive rows plus the modelled
  /// per-image hardware cost of each request's {L, S}.
  struct BatchPrediction {
    nn::Tensor probs;             ///< (N, K)
    std::vector<RunStats> stats;  ///< one entry per image/request
  };

  /// Runs Monte Carlo inference over a batch of float images (N, C, H, W)
  /// with the last `bayes_layers` sites active and `num_samples` samples
  /// per image. Functional output is bit-exact with the reference executor.
  /// Equivalent to predict_batch with uniform knobs and stream_id = image
  /// index.
  Prediction predict(const nn::Tensor& images, int bayes_layers, int num_samples);

  /// Flattened batched prediction: the (image, sample) pair space of the
  /// whole batch runs as ONE parallel_for over N×S lanes, so small-S /
  /// large-N serving workloads still fill every pool lane. Per-image
  /// deterministic prefixes (the IC cache) are computed lazily by whichever
  /// lane needs them first and shared read-only. `requests` carries one
  /// entry per image. Output row n is a pure function of (weights, image n,
  /// sampler_seed, requests[n]) — independent of batch composition, order,
  /// and thread count.
  BatchPrediction predict_batch(const nn::Tensor& images,
                                const std::vector<ImageRequest>& requests);

  /// Timing-only estimate for one image's full MC inference.
  RunStats estimate(int bayes_layers, int num_samples) const;

  /// Resource footprint of this configuration on `device` for this network.
  ResourceUsage resources(const FpgaDevice& device) const;

  const quant::QuantNetwork& network() const { return *network_; }

  /// The shared network handle (for standing up further replicas).
  const std::shared_ptr<const quant::QuantNetwork>& shared_network() const {
    return network_;
  }

  /// The shared execution-plan handle (for binding further accelerators to
  /// the same model without a plan rebuild).
  const std::shared_ptr<const quant::NetworkExecPlan>& shared_plan() const { return plan_; }

  /// The segment source when this accelerator streams its plan (null for
  /// the whole-plan ctors).
  const std::shared_ptr<quant::PlanSource>& plan_source() const { return source_; }
  const AcceleratorConfig& config() const { return config_; }

  /// Replaces the executor used by subsequent predict calls (see
  /// AcceleratorConfig::pool). Non-owning; nullptr = process-wide pool.
  void set_thread_pool(runtime::ThreadPool* pool) { config_.pool = pool; }

  /// Adjusts the worker-lane cap of subsequent predict calls (see
  /// AcceleratorConfig::num_threads). Scheduling only — results are
  /// bit-identical for every value.
  void set_num_threads(int num_threads) { config_.num_threads = num_threads; }

  /// Functional compute-cycle total of the last predict() call, summed over
  /// all layer executions (used by the model-vs-simulation cycle tests).
  std::int64_t last_functional_compute_cycles() const { return functional_cycles_; }

  /// Cumulative allocation (capacity-growth) count of THIS THREAD's lane
  /// arena — the reusable per-worker storage (layer outputs, NNE scratch,
  /// packed-activation buffers, sampler) that predict lanes run out of.
  /// After a warmup predict over a network's largest shapes, further
  /// predicts on the same thread leave it unchanged: steady-state lanes are
  /// allocation-free (pinned by tests). Thread-local by design — call it
  /// from the thread that ran the lanes (num_threads = 1 runs them on the
  /// caller).
  static std::uint64_t lane_arena_grow_events();

  /// Seed of the LFSR sampler stream that lane (stream_id, sample) consumes
  /// inside predict() — the software analogue of giving every concurrent
  /// sampling lane its own decorrelated LFSR bank. predict() uses the batch
  /// index as stream_id; predict_batch takes it from the ImageRequest.
  /// Exposed so reference executors and tests can reproduce the exact mask
  /// streams.
  static std::uint64_t sample_stream_seed(std::uint64_t base_seed, std::uint64_t stream_id,
                                          int sample);

 private:
  std::shared_ptr<const quant::QuantNetwork> network_;
  // Prebuilt kernel execution plans (index tables, packed weight masks),
  // one per layer — shared read-only by every lane and every replica copy.
  std::shared_ptr<const quant::NetworkExecPlan> plan_;
  // On-demand segment source for the streaming ctor (null when plan_ was
  // supplied whole). Exactly one of plan_/source_ drives run_layer.
  std::shared_ptr<quant::PlanSource> source_;
  AcceleratorConfig config_;
  nn::NetworkDesc desc_;
  std::int64_t functional_cycles_ = 0;
};

}  // namespace bnn::core

#endif  // BNN_CORE_ACCELERATOR_H
