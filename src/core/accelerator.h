// Top-level accelerator simulator: ties the quantized network, the NNE
// datapath, the Bernoulli sampler and the IC schedule together.
//
// `predict` is the functional path — it executes every layer with the
// hardware tiling (bit-exact against quant/qops) while drawing Dropout-Unit
// masks from the simulated LFSR sampler, and reports the modelled latency.
// `estimate` is the timing-only path for networks too large to execute.
#ifndef BNN_CORE_ACCELERATOR_H
#define BNN_CORE_ACCELERATOR_H

#include "core/bernoulli_sampler.h"
#include "core/perf_model.h"
#include "core/resource_model.h"
#include "quant/qnetwork.h"
#include "quant/qops.h"

namespace bnn::core {

struct AcceleratorConfig {
  NneConfig nne;  // paper final design: PC=64, PF=64, PV=1 @ 225 MHz
  DdrModel ddr;
  int sampler_fifo_depth = 16;
  std::uint64_t sampler_seed = 1;
  bool use_intermediate_caching = true;
  double board_power_watts = 45.0;  // paper's total board power
  // Worker threads for the S-sample loop of predict() (0 = hardware
  // concurrency). Output is bit-identical for every thread count: each
  // (image, sample) pair consumes its own sampler stream seeded with
  // sample_stream_seed(sampler_seed, image, sample), and per-sample softmax
  // outputs are reduced in ascending sample order.
  int num_threads = 1;
};

class Accelerator {
 public:
  Accelerator(quant::QuantNetwork network, AcceleratorConfig config);

  struct Prediction {
    nn::Tensor probs;  // (N, K) averaged predictive distribution
    RunStats stats;    // modelled latency/traffic for ONE image's S samples
  };

  // Runs Monte Carlo inference over a batch of float images (N, C, H, W)
  // with the last `bayes_layers` sites active and `num_samples` samples per
  // image. Functional output is bit-exact with the reference executor.
  Prediction predict(const nn::Tensor& images, int bayes_layers, int num_samples);

  // Timing-only estimate for one image's full MC inference.
  RunStats estimate(int bayes_layers, int num_samples) const;

  // Resource footprint of this configuration on `device` for this network.
  ResourceUsage resources(const FpgaDevice& device) const;

  const quant::QuantNetwork& network() const { return network_; }
  const AcceleratorConfig& config() const { return config_; }

  // Functional compute-cycle total of the last predict() call, summed over
  // all layer executions (used by the model-vs-simulation cycle tests).
  std::int64_t last_functional_compute_cycles() const { return functional_cycles_; }

  // Seed of the LFSR sampler stream that (image, sample) consumes inside
  // predict() — the software analogue of giving every concurrent sampling
  // lane its own decorrelated LFSR bank. Exposed so reference executors and
  // tests can reproduce the exact mask streams.
  static std::uint64_t sample_stream_seed(std::uint64_t base_seed, int image, int sample);

 private:
  quant::QuantNetwork network_;
  AcceleratorConfig config_;
  nn::NetworkDesc desc_;
  std::int64_t functional_cycles_ = 0;
};

}  // namespace bnn::core

#endif  // BNN_CORE_ACCELERATOR_H
