#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace bnn::data {

Dataset::Dataset(nn::Tensor images, std::vector<int> labels, int num_classes)
    : images_(std::move(images)), labels_(std::move(labels)), num_classes_(num_classes) {
  util::require(images_.dim() == 4, "dataset images must be NCHW");
  util::require(images_.size(0) == static_cast<int>(labels_.size()),
                "dataset: image/label count mismatch");
  util::require(num_classes_ > 0, "dataset: num_classes must be positive");
  for (int label : labels_)
    util::require(label >= 0 && label < num_classes_, "dataset: label out of range");
}

std::vector<int> Dataset::image_shape() const {
  util::require(size() > 0, "dataset: empty");
  return {images_.size(1), images_.size(2), images_.size(3)};
}

void Dataset::shuffle(util::Rng& rng) {
  const int n = size();
  const std::int64_t stride = images_.numel() / std::max(n, 1);
  std::vector<float> tmp(static_cast<std::size_t>(stride));
  for (int i = n - 1; i > 0; --i) {
    const int j = rng.uniform_int(0, i);
    if (i == j) continue;
    std::swap(labels_[static_cast<std::size_t>(i)], labels_[static_cast<std::size_t>(j)]);
    float* a = images_.data() + static_cast<std::int64_t>(i) * stride;
    float* b = images_.data() + static_cast<std::int64_t>(j) * stride;
    std::memcpy(tmp.data(), a, sizeof(float) * static_cast<std::size_t>(stride));
    std::memcpy(a, b, sizeof(float) * static_cast<std::size_t>(stride));
    std::memcpy(b, tmp.data(), sizeof(float) * static_cast<std::size_t>(stride));
  }
}

Dataset Dataset::subset(int start, int count) const {
  util::require(start >= 0 && count >= 0 && start + count <= size(),
                "dataset: subset range out of bounds");
  nn::Tensor images({count, images_.size(1), images_.size(2), images_.size(3)});
  const std::int64_t stride = images_.numel() / size();
  std::memcpy(images.data(), images_.data() + static_cast<std::int64_t>(start) * stride,
              sizeof(float) * static_cast<std::size_t>(static_cast<std::int64_t>(count) * stride));
  std::vector<int> labels(labels_.begin() + start, labels_.begin() + start + count);
  return Dataset(std::move(images), std::move(labels), num_classes_);
}

std::pair<Dataset, Dataset> Dataset::split(int train_count) const {
  return {subset(0, train_count), subset(train_count, size() - train_count)};
}

Batch Dataset::batch(int start, int batch_size) const {
  util::require(start >= 0 && start < size(), "dataset: batch start out of bounds");
  const int count = std::min(batch_size, size() - start);
  Dataset sub = subset(start, count);
  return Batch{std::move(sub.images_), std::move(sub.labels_)};
}

void Dataset::channel_stats(std::vector<float>& means, std::vector<float>& stds) const {
  const int channels = images_.size(1);
  const std::int64_t per_channel =
      static_cast<std::int64_t>(size()) * images_.size(2) * images_.size(3);
  means.assign(static_cast<std::size_t>(channels), 0.0f);
  stds.assign(static_cast<std::size_t>(channels), 0.0f);
  for (int c = 0; c < channels; ++c) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int n = 0; n < size(); ++n) {
      const float* plane = images_.data() + images_.index4(n, c, 0, 0);
      for (int i = 0; i < images_.size(2) * images_.size(3); ++i) {
        sum += plane[i];
        sum_sq += static_cast<double>(plane[i]) * plane[i];
      }
    }
    const double mean = sum / static_cast<double>(per_channel);
    const double var = std::max(0.0, sum_sq / static_cast<double>(per_channel) - mean * mean);
    means[static_cast<std::size_t>(c)] = static_cast<float>(mean);
    stds[static_cast<std::size_t>(c)] = static_cast<float>(std::sqrt(var));
  }
}

std::vector<int> Dataset::class_histogram() const {
  std::vector<int> histogram(static_cast<std::size_t>(num_classes_), 0);
  for (int label : labels_) ++histogram[static_cast<std::size_t>(label)];
  return histogram;
}

}  // namespace bnn::data
