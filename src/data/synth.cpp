#include "data/synth.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bnn::data {

namespace {

// 7x5 bitmap font for the ten digits; '#' marks lit pixels.
constexpr int glyph_rows = 7;
constexpr int glyph_cols = 5;
const char* const digit_font[10][glyph_rows] = {
    {" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "},  // 0
    {"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "},  // 1
    {" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"},  // 2
    {" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "},  // 3
    {"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "},  // 4
    {"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "},  // 5
    {" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "},  // 6
    {"#####", "    #", "   # ", "  #  ", "  #  ", "  #  ", "  #  "},  // 7
    {" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "},  // 8
    {" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "},  // 9
};

// Bilinear sample of the glyph bitmap at fractional (row, col); outside the
// bitmap reads as 0.
float glyph_sample(int digit, float row, float col) {
  auto texel = [digit](int r, int c) -> float {
    if (r < 0 || r >= glyph_rows || c < 0 || c >= glyph_cols) return 0.0f;
    return digit_font[digit][r][c] == '#' ? 1.0f : 0.0f;
  };
  const int r0 = static_cast<int>(std::floor(row));
  const int c0 = static_cast<int>(std::floor(col));
  const float fr = row - static_cast<float>(r0);
  const float fc = col - static_cast<float>(c0);
  return texel(r0, c0) * (1 - fr) * (1 - fc) + texel(r0 + 1, c0) * fr * (1 - fc) +
         texel(r0, c0 + 1) * (1 - fr) * fc + texel(r0 + 1, c0 + 1) * fr * fc;
}

}  // namespace

void render_digit(float* plane, int image, int digit, float scale, float angle_rad,
                  float shift_x, float shift_y, float intensity) {
  util::require(digit >= 0 && digit <= 9, "render_digit: digit out of range");
  const float centre = static_cast<float>(image - 1) / 2.0f;
  const float cos_a = std::cos(angle_rad);
  const float sin_a = std::sin(angle_rad);
  // Pixels per glyph cell: the glyph occupies ~scale fraction of the canvas.
  const float cell = scale * static_cast<float>(image) / static_cast<float>(glyph_rows + 1);
  for (int y = 0; y < image; ++y) {
    for (int x = 0; x < image; ++x) {
      // Map canvas coordinates back into glyph space (inverse rotation).
      const float dx = static_cast<float>(x) - centre - shift_x;
      const float dy = static_cast<float>(y) - centre - shift_y;
      const float gx = (cos_a * dx + sin_a * dy) / cell + static_cast<float>(glyph_cols - 1) / 2.0f;
      const float gy = (-sin_a * dx + cos_a * dy) / cell + static_cast<float>(glyph_rows - 1) / 2.0f;
      const float v = glyph_sample(digit, gy, gx) * intensity;
      float& px = plane[y * image + x];
      px = std::max(px, v);
    }
  }
}

Dataset make_synth_digits(int count, util::Rng& rng) {
  util::require(count > 0, "make_synth_digits: count must be positive");
  const int image = 28;
  nn::Tensor images({count, 1, image, image});
  std::vector<int> labels(static_cast<std::size_t>(count));
  for (int n = 0; n < count; ++n) {
    const int digit = n % 10;
    labels[static_cast<std::size_t>(n)] = digit;
    float* plane = images.data() + images.index4(n, 0, 0, 0);
    render_digit(plane, image, digit,
                 /*scale=*/static_cast<float>(rng.uniform(0.55, 0.8)),
                 /*angle=*/static_cast<float>(rng.uniform(-0.26, 0.26)),
                 /*shift_x=*/static_cast<float>(rng.uniform(-3.0, 3.0)),
                 /*shift_y=*/static_cast<float>(rng.uniform(-3.0, 3.0)),
                 /*intensity=*/static_cast<float>(rng.uniform(0.7, 1.0)));
    const float sigma = static_cast<float>(rng.uniform(0.02, 0.08));
    for (int i = 0; i < image * image; ++i) {
      plane[i] += static_cast<float>(rng.normal(0.0, sigma));
      plane[i] = std::clamp(plane[i], 0.0f, 1.0f);
    }
  }
  return Dataset(std::move(images), std::move(labels), 10);
}

Dataset make_synth_digits_small(int count, util::Rng& rng) {
  const Dataset digits = make_synth_digits(count, rng);
  nn::Tensor small({count, 1, 12, 12});
  for (int n = 0; n < count; ++n)
    for (int y = 0; y < 12; ++y)
      for (int x = 0; x < 12; ++x)
        small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
  return Dataset(std::move(small), digits.labels(), 10);
}

Dataset make_synth_svhn(int count, util::Rng& rng) {
  util::require(count > 0, "make_synth_svhn: count must be positive");
  const int image = 32;
  nn::Tensor images({count, 3, image, image});
  std::vector<int> labels(static_cast<std::size_t>(count));
  std::vector<float> mask(static_cast<std::size_t>(image) * image);
  for (int n = 0; n < count; ++n) {
    const int digit = n % 10;
    labels[static_cast<std::size_t>(n)] = digit;

    // Background: smooth two-corner gradient per channel plus clutter boxes.
    float bg0[3], bg1[3];
    for (int c = 0; c < 3; ++c) {
      bg0[c] = static_cast<float>(rng.uniform(0.1, 0.9));
      bg1[c] = static_cast<float>(rng.uniform(0.1, 0.9));
    }
    for (int c = 0; c < 3; ++c) {
      float* plane = images.data() + images.index4(n, c, 0, 0);
      for (int y = 0; y < image; ++y)
        for (int x = 0; x < image; ++x) {
          const float t = static_cast<float>(x + y) / static_cast<float>(2 * image - 2);
          plane[y * image + x] = bg0[c] * (1 - t) + bg1[c] * t;
        }
    }
    const int clutter = rng.uniform_int(2, 5);
    for (int b = 0; b < clutter; ++b) {
      const int bw = rng.uniform_int(4, 12);
      const int bh = rng.uniform_int(4, 12);
      const int bx = rng.uniform_int(0, image - bw);
      const int by = rng.uniform_int(0, image - bh);
      float color[3] = {static_cast<float>(rng.uniform(0.0, 1.0)),
                        static_cast<float>(rng.uniform(0.0, 1.0)),
                        static_cast<float>(rng.uniform(0.0, 1.0))};
      const float alpha = static_cast<float>(rng.uniform(0.3, 0.7));
      for (int c = 0; c < 3; ++c) {
        float* plane = images.data() + images.index4(n, c, 0, 0);
        for (int y = by; y < by + bh; ++y)
          for (int x = bx; x < bx + bw; ++x)
            plane[y * image + x] = (1 - alpha) * plane[y * image + x] + alpha * color[c];
      }
    }

    // Foreground digit rendered into a mask, then blended in a digit color
    // chosen to contrast with the mean background.
    std::fill(mask.begin(), mask.end(), 0.0f);
    render_digit(mask.data(), image, digit,
                 static_cast<float>(rng.uniform(0.5, 0.75)),
                 static_cast<float>(rng.uniform(-0.2, 0.2)),
                 static_cast<float>(rng.uniform(-4.0, 4.0)),
                 static_cast<float>(rng.uniform(-4.0, 4.0)), 1.0f);
    float fg[3];
    for (int c = 0; c < 3; ++c) {
      const float bg_mean = 0.5f * (bg0[c] + bg1[c]);
      fg[c] = bg_mean > 0.5f ? static_cast<float>(rng.uniform(0.0, 0.3))
                             : static_cast<float>(rng.uniform(0.7, 1.0));
    }
    for (int c = 0; c < 3; ++c) {
      float* plane = images.data() + images.index4(n, c, 0, 0);
      for (int i = 0; i < image * image; ++i)
        plane[i] = (1 - mask[static_cast<std::size_t>(i)]) * plane[i] +
                   mask[static_cast<std::size_t>(i)] * fg[c];
    }

    // Sensor noise.
    const float sigma = static_cast<float>(rng.uniform(0.01, 0.05));
    for (int c = 0; c < 3; ++c) {
      float* plane = images.data() + images.index4(n, c, 0, 0);
      for (int i = 0; i < image * image; ++i)
        plane[i] = std::clamp(plane[i] + static_cast<float>(rng.normal(0.0, sigma)), 0.0f, 1.0f);
    }
  }
  return Dataset(std::move(images), std::move(labels), 10);
}

namespace {

// Fills a (3, image, image) sample with one of the ten parametric object
// classes. fg/bg are per-channel colors.
void render_object(float* planes, int image, int cls, const float* fg, const float* bg,
                   util::Rng& rng) {
  const float cx = static_cast<float>(image) / 2.0f + static_cast<float>(rng.uniform(-3.0, 3.0));
  const float cy = static_cast<float>(image) / 2.0f + static_cast<float>(rng.uniform(-3.0, 3.0));
  const float radius = static_cast<float>(image) * static_cast<float>(rng.uniform(0.22, 0.38));
  const int period = rng.uniform_int(4, 8);

  for (int c = 0; c < 3; ++c) {
    float* plane = planes + static_cast<std::size_t>(c) * image * image;
    for (int i = 0; i < image * image; ++i) plane[i] = bg[c];
  }

  auto set_fg = [&](int x, int y, float weight) {
    if (x < 0 || x >= image || y < 0 || y >= image || weight <= 0.0f) return;
    for (int c = 0; c < 3; ++c) {
      float* plane = planes + static_cast<std::size_t>(c) * image * image;
      float& px = plane[y * image + x];
      px = (1 - weight) * px + weight * fg[c];
    }
  };

  for (int y = 0; y < image; ++y) {
    for (int x = 0; x < image; ++x) {
      const float dx = static_cast<float>(x) - cx;
      const float dy = static_cast<float>(y) - cy;
      const float r = std::sqrt(dx * dx + dy * dy);
      bool on = false;
      switch (cls) {
        case 0: on = r <= radius; break;                                   // disc
        case 1: on = r <= radius && r >= radius * 0.55f; break;            // ring
        case 2: on = std::max(std::fabs(dx), std::fabs(dy)) <= radius * 0.85f; break;  // square
        case 3:  // triangle: below the apex, inside the slanted sides
          on = dy >= -radius && dy <= radius * 0.8f &&
               std::fabs(dx) <= (dy + radius) * 0.6f;
          break;
        case 4:  // plus
          on = (std::fabs(dx) <= radius * 0.3f && std::fabs(dy) <= radius) ||
               (std::fabs(dy) <= radius * 0.3f && std::fabs(dx) <= radius);
          break;
        case 5: on = (y / period) % 2 == 0; break;                          // h-stripes
        case 6: on = (x / period) % 2 == 0; break;                          // v-stripes
        case 7: on = ((x / period) + (y / period)) % 2 == 0; break;         // checkerboard
        case 8: {  // diagonal gradient: blend instead of binary
          const float t = static_cast<float>(x + y) / static_cast<float>(2 * image - 2);
          set_fg(x, y, t);
          continue;
        }
        case 9: on = std::fabs(dx) + std::fabs(dy) <= radius * 1.1f; break;  // diamond
        default: break;
      }
      if (on) set_fg(x, y, 1.0f);
    }
  }
}

}  // namespace

Dataset make_synth_objects(int count, util::Rng& rng) {
  util::require(count > 0, "make_synth_objects: count must be positive");
  const int image = 32;
  nn::Tensor images({count, 3, image, image});
  std::vector<int> labels(static_cast<std::size_t>(count));
  for (int n = 0; n < count; ++n) {
    const int cls = n % 10;
    labels[static_cast<std::size_t>(n)] = cls;
    float fg[3], bg[3];
    for (int c = 0; c < 3; ++c) {
      bg[c] = static_cast<float>(rng.uniform(0.0, 0.45));
      fg[c] = static_cast<float>(rng.uniform(0.55, 1.0));
    }
    // Occasionally swap for inverted-contrast variants.
    if (rng.bernoulli(0.25)) std::swap(fg[rng.uniform_int(0, 2)], bg[rng.uniform_int(0, 2)]);
    render_object(images.data() + images.index4(n, 0, 0, 0), image, cls, fg, bg, rng);
    const float sigma = static_cast<float>(rng.uniform(0.01, 0.06));
    for (int c = 0; c < 3; ++c) {
      float* plane = images.data() + images.index4(n, c, 0, 0);
      for (int i = 0; i < image * image; ++i)
        plane[i] = std::clamp(plane[i] + static_cast<float>(rng.normal(0.0, sigma)), 0.0f, 1.0f);
    }
  }
  return Dataset(std::move(images), std::move(labels), 10);
}

Dataset make_gaussian_noise(int count, const Dataset& reference, util::Rng& rng) {
  util::require(count > 0, "make_gaussian_noise: count must be positive");
  const std::vector<int> shape = reference.image_shape();
  std::vector<float> means;
  std::vector<float> stds;
  reference.channel_stats(means, stds);

  nn::Tensor images({count, shape[0], shape[1], shape[2]});
  for (int n = 0; n < count; ++n) {
    for (int c = 0; c < shape[0]; ++c) {
      float* plane = images.data() + images.index4(n, c, 0, 0);
      for (int i = 0; i < shape[1] * shape[2]; ++i)
        plane[i] = static_cast<float>(
            rng.normal(means[static_cast<std::size_t>(c)], stds[static_cast<std::size_t>(c)]));
    }
  }
  std::vector<int> labels(static_cast<std::size_t>(count), 0);
  return Dataset(std::move(images), std::move(labels), reference.num_classes());
}

}  // namespace bnn::data
