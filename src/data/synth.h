// Procedural synthetic datasets standing in for the paper's MNIST / SVHN /
// CIFAR-10 (see DESIGN.md for the substitution rationale). All three are
// image-classification tasks of increasing difficulty with deterministic
// seeded generation:
//
//   synth_digits   1x28x28 grayscale digit glyphs, affine jitter + noise
//   synth_svhn     3x32x32 colored digits over cluttered color backgrounds
//   synth_objects  3x32x32 ten parametric shape/texture classes
//
// plus the Gaussian-noise set used by the paper's uncertainty experiments
// (noise with the mean/std of the training data).
#ifndef BNN_DATA_SYNTH_H
#define BNN_DATA_SYNTH_H

#include "data/dataset.h"

namespace bnn::data {

// Balanced over the 10 digit classes (label i -> digit i).
Dataset make_synth_digits(int count, util::Rng& rng);

// 1x12x12 variant of make_synth_digits — every other pixel of the 28x28
// canvas starting at offset 2. This is the fast tiny-CNN workload shared
// by tests, benches and examples (pairs with nn::make_tiny_cnn's default
// 12x12 input).
Dataset make_synth_digits_small(int count, util::Rng& rng);

// Balanced over the 10 digit classes, colored, cluttered background.
Dataset make_synth_svhn(int count, util::Rng& rng);

// Balanced over 10 shape/texture classes:
// 0 disc, 1 ring, 2 square, 3 triangle, 4 plus, 5 horizontal stripes,
// 6 vertical stripes, 7 checkerboard, 8 diagonal gradient, 9 diamond.
Dataset make_synth_objects(int count, util::Rng& rng);

// Per-channel Gaussian noise images N(mean_c, std_c^2); labels are dummy 0.
// `reference` supplies the channel statistics (pass the training set).
Dataset make_gaussian_noise(int count, const Dataset& reference, util::Rng& rng);

// Renders one digit glyph (0-9) into an existing plane of size `image` x
// `image` with the given affine jitter. Exposed for tests.
void render_digit(float* plane, int image, int digit, float scale, float angle_rad,
                  float shift_x, float shift_y, float intensity);

}  // namespace bnn::data

#endif  // BNN_DATA_SYNTH_H
