// In-memory labelled image dataset (NCHW float images + integer labels)
// with the split/shuffle/minibatch plumbing the trainer and the evaluation
// harnesses need.
#ifndef BNN_DATA_DATASET_H
#define BNN_DATA_DATASET_H

#include <utility>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace bnn::data {

struct Batch {
  nn::Tensor images;        // (B, C, H, W)
  std::vector<int> labels;  // size B
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(nn::Tensor images, std::vector<int> labels, int num_classes);

  int size() const { return static_cast<int>(labels_.size()); }
  int num_classes() const { return num_classes_; }
  const nn::Tensor& images() const { return images_; }
  const std::vector<int>& labels() const { return labels_; }
  std::vector<int> image_shape() const;  // {C, H, W}

  // In-place Fisher-Yates shuffle of the sample order.
  void shuffle(util::Rng& rng);

  // Copy of samples [start, start+count).
  Dataset subset(int start, int count) const;

  // Splits off the first `train_count` samples as train, rest as test.
  std::pair<Dataset, Dataset> split(int train_count) const;

  // Minibatch starting at `start`, clipped to the dataset end.
  Batch batch(int start, int batch_size) const;

  // Per-channel mean and standard deviation over all pixels.
  void channel_stats(std::vector<float>& means, std::vector<float>& stds) const;

  // Count of samples per class (diagnostics / balance tests).
  std::vector<int> class_histogram() const;

 private:
  nn::Tensor images_;
  std::vector<int> labels_;
  int num_classes_ = 0;
};

}  // namespace bnn::data

#endif  // BNN_DATA_DATASET_H
