#include "nn/batchnorm.h"

#include <cmath>

#include "util/check.h"

namespace bnn::nn {

BatchNorm2d::BatchNorm2d(int channels, float eps, float momentum)
    : channels_(channels), eps_(eps), momentum_(momentum) {
  util::require(channels > 0, "batch_norm: channels must be positive");
  util::require(eps > 0.0f, "batch_norm: eps must be positive");
  gamma_.value = Tensor::full({channels_}, 1.0f);
  beta_.value = Tensor({channels_});
  running_mean_ = Tensor({channels_});
  running_var_ = Tensor::full({channels_}, 1.0f);
}

std::vector<int> BatchNorm2d::out_shape(const std::vector<int>& in_shape) const {
  util::require(in_shape.size() == 4, "batch_norm expects NCHW input");
  util::require(in_shape[1] == channels_, "batch_norm: channel mismatch");
  return in_shape;
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  (void)out_shape(x.shape());
  const int batch = x.size(0);
  const int height = x.size(2);
  const int width = x.size(3);
  const int plane = height * width;
  const std::int64_t per_channel = static_cast<std::int64_t>(batch) * plane;

  Tensor y(x.shape());
  if (training_) {
    cached_xhat_ = Tensor(x.shape());
    cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
    for (int c = 0; c < channels_; ++c) {
      double sum = 0.0;
      double sum_sq = 0.0;
      for (int n = 0; n < batch; ++n) {
        const float* src = x.data() + x.index4(n, c, 0, 0);
        for (int i = 0; i < plane; ++i) {
          sum += src[i];
          sum_sq += static_cast<double>(src[i]) * src[i];
        }
      }
      const double mean = sum / static_cast<double>(per_channel);
      const double var = sum_sq / static_cast<double>(per_channel) - mean * mean;
      const double inv_std = 1.0 / std::sqrt(var + eps_);
      cached_inv_std_[static_cast<std::size_t>(c)] = static_cast<float>(inv_std);

      // Running stats use the unbiased variance estimate, PyTorch-style.
      const double unbiased =
          per_channel > 1 ? var * static_cast<double>(per_channel) / (per_channel - 1) : var;
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * static_cast<float>(mean);
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * static_cast<float>(unbiased);

      const float g = gamma_.value[c];
      const float b = beta_.value[c];
      for (int n = 0; n < batch; ++n) {
        const float* src = x.data() + x.index4(n, c, 0, 0);
        float* xhat = cached_xhat_.data() + cached_xhat_.index4(n, c, 0, 0);
        float* dst = y.data() + y.index4(n, c, 0, 0);
        for (int i = 0; i < plane; ++i) {
          xhat[i] = static_cast<float>((src[i] - mean) * inv_std);
          dst[i] = g * xhat[i] + b;
        }
      }
    }
  } else {
    forward_into(x, y);
  }
  return y;
}

void BatchNorm2d::forward_into(const Tensor& x, Tensor& y) {
  util::require(!training_, "batch_norm: forward_into is eval-mode only");
  (void)out_shape(x.shape());
  const int batch = x.size(0);
  const int plane = x.size(2) * x.size(3);
  y.reset(x.shape());
  // Per-thread affine scratch (replay calls this per (image, sample) pair).
  thread_local std::vector<float> scale;
  thread_local std::vector<float> shift;
  inference_affine(scale, shift);
  for (int c = 0; c < channels_; ++c) {
    const float a = scale[static_cast<std::size_t>(c)];
    const float b = shift[static_cast<std::size_t>(c)];
    for (int n = 0; n < batch; ++n) {
      const float* src = x.data() + x.index4(n, c, 0, 0);
      float* dst = y.data() + y.index4(n, c, 0, 0);
      for (int i = 0; i < plane; ++i) dst[i] = a * src[i] + b;
    }
  }
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  util::ensure(!cached_xhat_.empty(), "batch_norm backward without cached training forward");
  const int batch = grad_out.size(0);
  const int plane = grad_out.size(2) * grad_out.size(3);
  const double per_channel = static_cast<double>(batch) * plane;

  if (!gamma_.grad.same_shape(gamma_.value)) gamma_.zero_grad();
  if (!beta_.grad.same_shape(beta_.value)) beta_.zero_grad();

  Tensor grad_in(grad_out.shape());
  for (int c = 0; c < channels_; ++c) {
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (int n = 0; n < batch; ++n) {
      const float* dy = grad_out.data() + grad_out.index4(n, c, 0, 0);
      const float* xhat = cached_xhat_.data() + cached_xhat_.index4(n, c, 0, 0);
      for (int i = 0; i < plane; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xhat[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    const double g_inv_std =
        static_cast<double>(gamma_.value[c]) * cached_inv_std_[static_cast<std::size_t>(c)];
    for (int n = 0; n < batch; ++n) {
      const float* dy = grad_out.data() + grad_out.index4(n, c, 0, 0);
      const float* xhat = cached_xhat_.data() + cached_xhat_.index4(n, c, 0, 0);
      float* dx = grad_in.data() + grad_in.index4(n, c, 0, 0);
      for (int i = 0; i < plane; ++i) {
        dx[i] = static_cast<float>(
            g_inv_std * (dy[i] - sum_dy / per_channel - xhat[i] * sum_dy_xhat / per_channel));
      }
    }
  }
  return grad_in;
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

void BatchNorm2d::inference_affine(std::vector<float>& scale, std::vector<float>& shift) const {
  scale.assign(static_cast<std::size_t>(channels_), 0.0f);
  shift.assign(static_cast<std::size_t>(channels_), 0.0f);
  for (int c = 0; c < channels_; ++c) {
    const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
    scale[static_cast<std::size_t>(c)] = gamma_.value[c] * inv_std;
    shift[static_cast<std::size_t>(c)] = beta_.value[c] - gamma_.value[c] * running_mean_[c] * inv_std;
  }
}

}  // namespace bnn::nn
