// Model zoo: the paper's three evaluation networks, built as float reference
// Networks with Monte Carlo Dropout sites at every position the paper allows
// ("always following a convolutional, BN and ReLU layers, and optionally
// pooling", plus after hidden fully-connected layers).
//
// A Model owns the Network plus the list of dropout sites; partial Bayesian
// inference ("last L of N") is configured with set_bayesian_last().
#ifndef BNN_NN_MODELS_H
#define BNN_NN_MODELS_H

#include <memory>
#include <string>
#include <vector>

#include "nn/dropout.h"
#include "nn/netdesc.h"
#include "nn/network.h"
#include "util/rng.h"

namespace bnn::nn {

class Model {
 public:
  Model(std::string name, std::unique_ptr<Network> net,
        std::vector<Network::NodeId> dropout_sites, std::vector<int> input_chw,
        int num_classes);

  const std::string& name() const { return name_; }
  Network& net() { return *net_; }
  const Network& net() const { return *net_; }
  const std::vector<int>& input_shape() const { return input_chw_; }
  int num_classes() const { return num_classes_; }

  // The paper's N: number of candidate Bayesian (MCD) sites.
  int num_sites() const { return static_cast<int>(sites_.size()); }
  const std::vector<Network::NodeId>& site_nodes() const { return sites_; }

  // Activates the last `bayes_layers` dropout sites (0 = deterministic
  // point network, num_sites() = full BNN) and deactivates the rest.
  void set_bayesian_last(int bayes_layers);
  int bayesian_layers() const { return bayes_layers_; }

  // Node id of the first active dropout site, or -1 when none is active.
  // This is the replay cut for software intermediate-layer caching.
  Network::NodeId first_active_site() const;

  // Drop probability at every site (the paper fixes p = 0.25).
  void set_dropout_p(double p);
  double dropout_p() const { return p_; }

  // Deterministically reseeds all site mask sources (fork per site).
  void reseed_sites(std::uint64_t seed);

  McDropout& site(int index);

  // Hardware description of this model (see netdesc.h).
  NetworkDesc describe() const;

 private:
  std::string name_;
  std::unique_ptr<Network> net_;
  std::vector<Network::NodeId> sites_;
  std::vector<int> input_chw_;
  int num_classes_;
  int bayes_layers_ = 0;
  double p_ = 0.25;
};

// LeNet-5 for 1x28x28 inputs: conv blocks (with BN) + 3 FC layers; 4 sites.
Model make_lenet5(util::Rng& rng, int num_classes = 10);

// Channel-reduced VGG-11 for 3x32x32 inputs (the paper reduces channels to
// fit memory); width_divisor scales all conv widths; 9 sites.
Model make_vgg11(util::Rng& rng, int num_classes = 10, int width_divisor = 4);

// Channel-reduced CIFAR-style ResNet-18 for 3x32x32 inputs; base_width is
// the stem width (the canonical network uses 64); 9 sites.
Model make_resnet18(util::Rng& rng, int num_classes = 10, int base_width = 16);

// Tiny two-conv + two-fc network used by fast tests and the Fig. 4 example.
Model make_tiny_cnn(util::Rng& rng, int num_classes = 10, int in_channels = 1,
                    int image = 12);

enum class MlpActivation { relu, quadratic };

// Three-layer fully-connected network of the kind VIBNN / BYNQNet evaluate
// on: Flatten -> FC(hidden) -> act -> FC(hidden) -> act -> FC(classes).
// With `with_mcd_sites` an MCD site follows each hidden activation (2
// sites); the quadratic variant is the BYNQNet substrate.
Model make_mlp3(util::Rng& rng, int in_features, int hidden, int num_classes,
                MlpActivation activation = MlpActivation::relu,
                bool with_mcd_sites = false);

}  // namespace bnn::nn

#endif  // BNN_NN_MODELS_H
