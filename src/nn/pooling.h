// Spatial pooling layers: max, average, and global average pooling.
#ifndef BNN_NN_POOLING_H
#define BNN_NN_POOLING_H

#include "nn/layer.h"

namespace bnn::nn {

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(int kernel, int stride = -1);  // stride -1 -> kernel

  LayerKind kind() const override { return LayerKind::max_pool; }

  Tensor forward(const Tensor& x) override;
  // Eval mode only (replay path): no argmax caching.
  void forward_into(const Tensor& x, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;

  int kernel() const { return kernel_; }
  int stride() const { return stride_; }

 private:
  int kernel_;
  int stride_;
  std::vector<int> cached_in_shape_;
  std::vector<std::int64_t> cached_argmax_;  // flat input index of each output element
};

class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(int kernel, int stride = -1);

  LayerKind kind() const override { return LayerKind::avg_pool; }

  Tensor forward(const Tensor& x) override;
  void forward_into(const Tensor& x, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;

  int kernel() const { return kernel_; }
  int stride() const { return stride_; }

 private:
  int kernel_;
  int stride_;
  std::vector<int> cached_in_shape_;
};

// (N, C, H, W) -> (N, C, 1, 1) mean over the spatial extent; the head of the
// ResNet family.
class GlobalAvgPool final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::global_avg_pool; }

  Tensor forward(const Tensor& x) override;
  void forward_into(const Tensor& x, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;

 private:
  std::vector<int> cached_in_shape_;
};

}  // namespace bnn::nn

#endif  // BNN_NN_POOLING_H
