#include "nn/pooling.h"

#include <algorithm>

#include "nn/gemm.h"
#include "util/check.h"

namespace bnn::nn {

MaxPool2d::MaxPool2d(int kernel, int stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {
  util::require(kernel_ >= 1 && stride_ >= 1, "max_pool: bad geometry");
}

std::vector<int> MaxPool2d::out_shape(const std::vector<int>& in_shape) const {
  util::require(in_shape.size() == 4, "max_pool expects NCHW input");
  return {in_shape[0], in_shape[1], conv_out_extent(in_shape[2], kernel_, stride_, 0),
          conv_out_extent(in_shape[3], kernel_, stride_, 0)};
}

void MaxPool2d::forward_into(const Tensor& x, Tensor& y) {
  util::require(!training_, "max_pool: forward_into is eval-mode only");
  const std::vector<int> out_dims = out_shape(x.shape());
  y.reset(out_dims);
  const int batch = out_dims[0];
  const int channels = out_dims[1];
  const int out_h = out_dims[2];
  const int out_w = out_dims[3];
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      for (int oh = 0; oh < out_h; ++oh) {
        for (int ow = 0; ow < out_w; ++ow) {
          float best = x.v4(n, c, oh * stride_, ow * stride_);
          for (int kh = 0; kh < kernel_; ++kh)
            for (int kw = 0; kw < kernel_; ++kw)
              best = std::max(best, x.v4(n, c, oh * stride_ + kh, ow * stride_ + kw));
          y.v4(n, c, oh, ow) = best;
        }
      }
    }
  }
}

Tensor MaxPool2d::forward(const Tensor& x) {
  if (!training_) {
    Tensor y;
    forward_into(x, y);
    return y;
  }
  // Training path (the eval path returned above): cache the argmax map.
  const std::vector<int> out_dims = out_shape(x.shape());
  Tensor y(out_dims);
  cached_in_shape_ = x.shape();
  cached_argmax_.assign(static_cast<std::size_t>(y.numel()), 0);
  const int batch = out_dims[0];
  const int channels = out_dims[1];
  const int out_h = out_dims[2];
  const int out_w = out_dims[3];
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      for (int oh = 0; oh < out_h; ++oh) {
        for (int ow = 0; ow < out_w; ++ow) {
          float best = x.v4(n, c, oh * stride_, ow * stride_);
          std::int64_t best_index = x.index4(n, c, oh * stride_, ow * stride_);
          for (int kh = 0; kh < kernel_; ++kh) {
            for (int kw = 0; kw < kernel_; ++kw) {
              const float v = x.v4(n, c, oh * stride_ + kh, ow * stride_ + kw);
              if (v > best) {
                best = v;
                best_index = x.index4(n, c, oh * stride_ + kh, ow * stride_ + kw);
              }
            }
          }
          const std::int64_t out_index = y.index4(n, c, oh, ow);
          y[out_index] = best;
          cached_argmax_[static_cast<std::size_t>(out_index)] = best_index;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  util::ensure(!cached_argmax_.empty(), "max_pool backward without cached forward");
  Tensor grad_in(cached_in_shape_);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i)
    grad_in[cached_argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  return grad_in;
}

AvgPool2d::AvgPool2d(int kernel, int stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {
  util::require(kernel_ >= 1 && stride_ >= 1, "avg_pool: bad geometry");
}

std::vector<int> AvgPool2d::out_shape(const std::vector<int>& in_shape) const {
  util::require(in_shape.size() == 4, "avg_pool expects NCHW input");
  return {in_shape[0], in_shape[1], conv_out_extent(in_shape[2], kernel_, stride_, 0),
          conv_out_extent(in_shape[3], kernel_, stride_, 0)};
}

Tensor AvgPool2d::forward(const Tensor& x) {
  Tensor y;
  forward_into(x, y);
  if (training_) cached_in_shape_ = x.shape();
  return y;
}

void AvgPool2d::forward_into(const Tensor& x, Tensor& y) {
  const std::vector<int> out_dims = out_shape(x.shape());
  y.reset(out_dims);
  const float inv_area = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (int n = 0; n < out_dims[0]; ++n) {
    for (int c = 0; c < out_dims[1]; ++c) {
      for (int oh = 0; oh < out_dims[2]; ++oh) {
        for (int ow = 0; ow < out_dims[3]; ++ow) {
          float acc = 0.0f;
          for (int kh = 0; kh < kernel_; ++kh)
            for (int kw = 0; kw < kernel_; ++kw)
              acc += x.v4(n, c, oh * stride_ + kh, ow * stride_ + kw);
          y.v4(n, c, oh, ow) = acc * inv_area;
        }
      }
    }
  }
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  util::ensure(!cached_in_shape_.empty(), "avg_pool backward without cached forward");
  Tensor grad_in(cached_in_shape_);
  const float inv_area = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (int n = 0; n < grad_out.size(0); ++n) {
    for (int c = 0; c < grad_out.size(1); ++c) {
      for (int oh = 0; oh < grad_out.size(2); ++oh) {
        for (int ow = 0; ow < grad_out.size(3); ++ow) {
          const float g = grad_out.v4(n, c, oh, ow) * inv_area;
          for (int kh = 0; kh < kernel_; ++kh)
            for (int kw = 0; kw < kernel_; ++kw)
              grad_in.v4(n, c, oh * stride_ + kh, ow * stride_ + kw) += g;
        }
      }
    }
  }
  return grad_in;
}

std::vector<int> GlobalAvgPool::out_shape(const std::vector<int>& in_shape) const {
  util::require(in_shape.size() == 4, "global_avg_pool expects NCHW input");
  return {in_shape[0], in_shape[1], 1, 1};
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  Tensor y;
  forward_into(x, y);
  if (training_) cached_in_shape_ = x.shape();
  return y;
}

void GlobalAvgPool::forward_into(const Tensor& x, Tensor& y) {
  const std::vector<int> out_dims = out_shape(x.shape());
  y.reset(out_dims);
  const int plane = x.size(2) * x.size(3);
  const float inv_area = 1.0f / static_cast<float>(plane);
  for (int n = 0; n < x.size(0); ++n) {
    for (int c = 0; c < x.size(1); ++c) {
      const float* src = x.data() + x.index4(n, c, 0, 0);
      float acc = 0.0f;
      for (int i = 0; i < plane; ++i) acc += src[i];
      y.v4(n, c, 0, 0) = acc * inv_area;
    }
  }
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  util::ensure(!cached_in_shape_.empty(), "global_avg_pool backward without cached forward");
  Tensor grad_in(cached_in_shape_);
  const int plane = cached_in_shape_[2] * cached_in_shape_[3];
  const float inv_area = 1.0f / static_cast<float>(plane);
  for (int n = 0; n < grad_out.size(0); ++n) {
    for (int c = 0; c < grad_out.size(1); ++c) {
      const float g = grad_out.v4(n, c, 0, 0) * inv_area;
      float* dst = grad_in.data() + grad_in.index4(n, c, 0, 0);
      for (int i = 0; i < plane; ++i) dst[i] = g;
    }
  }
  return grad_in;
}

}  // namespace bnn::nn
