// Minimal binary serialization of a Model's learnable state (parameters +
// BatchNorm running statistics). Used by the benchmark harnesses to cache
// trained weights across binaries; not a general interchange format.
#ifndef BNN_NN_SERIALIZE_H
#define BNN_NN_SERIALIZE_H

#include <string>

#include "nn/models.h"

namespace bnn::nn {

// Writes all parameters and BN running statistics in topological order.
void save_model_state(Model& model, const std::string& path);

// Restores state written by save_model_state. Returns false (leaving the
// model untouched) when the file is missing or does not match the model's
// architecture; throws on a corrupt file.
bool load_model_state(Model& model, const std::string& path);

}  // namespace bnn::nn

#endif  // BNN_NN_SERIALIZE_H
