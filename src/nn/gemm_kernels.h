// Micro-kernel layer under the float GEMM front end and the int8 NNE /
// reference-executor inner loops: register-blocked, cache-tiled,
// compiler-vectorizable kernels with no external dependencies.
//
// Bit-identity contract (enforced by tests/test_gemm.cpp and the
// bench/gemm_microbench smoke run): every blocked float kernel produces the
// SAME BITS as its scalar reference. This holds by construction, not by
// tolerance: blocking and vectorization only ever run along the output
// (i, j) axes, so each c[i,j] still accumulates its k-terms sequentially,
// in ascending k, into a single accumulator — the exact floating-point
// operation sequence of the scalar loop. See docs/ARCHITECTURE.md
// ("Micro-kernel layer") for the full argument.
//
// The int8 kernels accumulate in int32, which is associative, so they may
// reorder freely and are exact by arithmetic rather than by ordering.
#ifndef BNN_NN_GEMM_KERNELS_H
#define BNN_NN_GEMM_KERNELS_H

#include <cstdint>

namespace bnn::nn::kernels {

// --- kernel tiers -----------------------------------------------------------
// The quantized compute path (core/nne.cpp and quant/qops.cpp) dispatches
// its inner product through one of three tiers. The tier a caller passes is
// a CAP, not a demand: Tier::bitpack routes a layer through the packed
// popcount path only when the layer's weights are binarizable AND the pass's
// activations are two-valued (quant/qplan.h), and falls back to Tier::int8
// otherwise — so outputs are bit-identical across tiers unconditionally.
enum class Tier {
  scalar,   // plain per-term reference loops (the specification)
  int8,     // vectorized dot_i8_zp / dot_i8_zp_gather kernels
  bitpack,  // bit-packed XNOR/popcount (+ ternary pass/negate/zero) tier
};

const char* tier_name(Tier tier);

// Register-block geometry lives inside gemm_kernels.cpp: the output-tile
// width is chosen per target ISA (4x16 with AVX, 4x8 with baseline SSE2) so
// the accumulator tile plus operands fit the vector register file without
// spilling. The translation unit is optionally compiled with -march=native
// (CMake option BNN_KERNEL_NATIVE, default ON) — the ISA choice never
// leaks: callers only see the C interface below, and bit-identity between
// blocked and scalar variants is a within-TU property enforced by tests.

// --- scalar references ------------------------------------------------------
// The plain triple loops the blocked kernels must match bit-for-bit. These
// deliberately have no zero-skip branch: skipping a_ik == 0 would drop
// NaN/Inf propagation from B (0 * NaN must stay NaN) and make runtime
// data-dependent.

// C[M,N] (+)= A[M,K] * B[K,N]; all row-major.
void gemm_scalar(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate);

// C[M,N] (+)= A[K,M]^T * B[K,N].
void gemm_at_scalar(int m, int n, int k, const float* a, const float* b, float* c,
                    bool accumulate);

// C[M,N] (+)= A[M,K] * B[N,K]^T.
void gemm_bt_scalar(int m, int n, int k, const float* a, const float* b, float* c,
                    bool accumulate);

// --- blocked float kernels --------------------------------------------------
// Same contracts as the scalar references, same bits, faster: kMr x kNr
// register tiles, kKc cache panels, restrict-qualified pointers and
// fixed-trip inner loops the compiler vectorizes along j.

void gemm_blocked(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate);

void gemm_at_blocked(int m, int n, int k, const float* a, const float* b, float* c,
                     bool accumulate);

void gemm_bt_blocked(int m, int n, int k, const float* a, const float* b, float* c,
                     bool accumulate);

// --- int8 -> int32 dot kernels ----------------------------------------------
// The NNE channel-tile inner product: sum_t (x[t] - zero_point) * w[t],
// accumulated exactly in int32. Shared by src/core/nne.cpp and the
// src/quant/qops.cpp reference executor so both sides of the bit-exactness
// check run the same arithmetic.

std::int32_t dot_i8_zp(const std::int8_t* x, const std::int8_t* w, int len,
                       std::int32_t zero_point);

// Gather variant for convolution tiles: x is indexed through a precomputed
// offset table (the hoisted per-term t/(k*k), t%(k*k) index math), w is
// read contiguously. Callers guarantee every offset is in bounds (interior
// positions only; border positions take the checked path).
std::int32_t dot_i8_zp_gather(const std::int8_t* x, const std::int32_t* offsets,
                              const std::int8_t* w, int len, std::int32_t zero_point);

}  // namespace bnn::nn::kernels

#endif  // BNN_NN_GEMM_KERNELS_H
