// Fully-connected layer: y = x W^T + b on (N, in_features) inputs.
#ifndef BNN_NN_LINEAR_H
#define BNN_NN_LINEAR_H

#include "nn/layer.h"

namespace bnn::nn {

class Linear final : public Layer {
 public:
  Linear(int in_features, int out_features, bool has_bias = true);

  LayerKind kind() const override { return LayerKind::linear; }

  // He/Kaiming-normal initialization (fan-in), biases zero.
  void init_kaiming(util::Rng& rng);

  Tensor forward(const Tensor& x) override;
  void forward_into(const Tensor& x, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;

  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;
  std::int64_t macs(const std::vector<int>& in_shape) const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  bool has_bias() const { return has_bias_; }

  // Weight tensor [out_features, in_features].
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }
  const Param& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

}  // namespace bnn::nn

#endif  // BNN_NN_LINEAR_H
