#include "nn/layer.h"

#include "util/check.h"

namespace bnn::nn {

std::string layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::conv2d: return "conv2d";
    case LayerKind::linear: return "linear";
    case LayerKind::batch_norm: return "batch_norm";
    case LayerKind::relu: return "relu";
    case LayerKind::quadratic: return "quadratic";
    case LayerKind::max_pool: return "max_pool";
    case LayerKind::avg_pool: return "avg_pool";
    case LayerKind::global_avg_pool: return "global_avg_pool";
    case LayerKind::flatten: return "flatten";
    case LayerKind::add: return "add";
    case LayerKind::mc_dropout: return "mc_dropout";
    case LayerKind::softmax: return "softmax";
  }
  return "unknown";
}

Tensor Layer::forward2(const Tensor& a, const Tensor& b) {
  (void)a;
  (void)b;
  util::ensure(false, name() + " is not a two-input layer");
  return {};
}

std::pair<Tensor, Tensor> Layer::backward2(const Tensor& grad_out) {
  (void)grad_out;
  util::ensure(false, name() + " is not a two-input layer");
  return {};
}

}  // namespace bnn::nn
