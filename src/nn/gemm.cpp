#include "nn/gemm.h"

#include <cstring>

#include "util/check.h"

namespace bnn::nn {

void gemm(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    const float* a_row = a + static_cast<std::size_t>(i) * k;
    float* c_row = c + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float a_ik = a_row[kk];
      if (a_ik == 0.0f) continue;
      const float* b_row = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
    }
  }
}

void gemm_at(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  for (int kk = 0; kk < k; ++kk) {
    const float* a_row = a + static_cast<std::size_t>(kk) * m;
    const float* b_row = b + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float a_ki = a_row[i];
      if (a_ki == 0.0f) continue;
      float* c_row = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) c_row[j] += a_ki * b_row[j];
    }
  }
}

void gemm_bt(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate) {
  for (int i = 0; i < m; ++i) {
    const float* a_row = a + static_cast<std::size_t>(i) * k;
    float* c_row = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* b_row = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      if (accumulate)
        c_row[j] += acc;
      else
        c_row[j] = acc;
    }
  }
}

int conv_out_extent(int in_extent, int kernel, int stride, int pad) {
  util::require(kernel >= 1 && stride >= 1 && pad >= 0, "bad convolution geometry");
  const int extent = (in_extent + 2 * pad - kernel) / stride + 1;
  util::require(extent >= 1, "convolution window does not fit input");
  return extent;
}

void im2col(const float* image, int channels, int height, int width, int kernel, int stride,
            int pad, int out_h, int out_w, float* columns) {
  const int patch = kernel * kernel;
  for (int c = 0; c < channels; ++c) {
    const float* plane = image + static_cast<std::size_t>(c) * height * width;
    for (int p = 0; p < patch; ++p) {
      const int kh = p / kernel;
      const int kw = p % kernel;
      float* col_row = columns + (static_cast<std::size_t>(c) * patch + p) * out_h * out_w;
      for (int oh = 0; oh < out_h; ++oh) {
        const int ih = oh * stride - pad + kh;
        if (ih < 0 || ih >= height) {
          std::memset(col_row + static_cast<std::size_t>(oh) * out_w, 0,
                      sizeof(float) * static_cast<std::size_t>(out_w));
          continue;
        }
        const float* img_row = plane + static_cast<std::size_t>(ih) * width;
        float* dst = col_row + static_cast<std::size_t>(oh) * out_w;
        for (int ow = 0; ow < out_w; ++ow) {
          const int iw = ow * stride - pad + kw;
          dst[ow] = (iw >= 0 && iw < width) ? img_row[iw] : 0.0f;
        }
      }
    }
  }
}

void col2im(const float* columns, int channels, int height, int width, int kernel, int stride,
            int pad, int out_h, int out_w, float* image) {
  const int patch = kernel * kernel;
  for (int c = 0; c < channels; ++c) {
    float* plane = image + static_cast<std::size_t>(c) * height * width;
    for (int p = 0; p < patch; ++p) {
      const int kh = p / kernel;
      const int kw = p % kernel;
      const float* col_row = columns + (static_cast<std::size_t>(c) * patch + p) * out_h * out_w;
      for (int oh = 0; oh < out_h; ++oh) {
        const int ih = oh * stride - pad + kh;
        if (ih < 0 || ih >= height) continue;
        float* img_row = plane + static_cast<std::size_t>(ih) * width;
        const float* src = col_row + static_cast<std::size_t>(oh) * out_w;
        for (int ow = 0; ow < out_w; ++ow) {
          const int iw = ow * stride - pad + kw;
          if (iw >= 0 && iw < width) img_row[iw] += src[ow];
        }
      }
    }
  }
}

}  // namespace bnn::nn
