#include "nn/gemm.h"

#include <cstring>

#include "nn/gemm_kernels.h"
#include "util/check.h"

namespace bnn::nn {

// The public GEMM entry points route to the blocked micro-kernels in
// gemm_kernels.{h,cpp}; kernels::*_scalar are the bit-identical plain-loop
// references they are tested and benchmarked against. Historical note: the
// scalar loops here once skipped a_ik == 0.0f terms, which silently dropped
// NaN/Inf propagation from B (0 * NaN must stay NaN) and made runtime
// data-dependent — neither the references nor the kernels do that.

void gemm(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate) {
  kernels::gemm_blocked(m, n, k, a, b, c, accumulate);
}

void gemm_at(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate) {
  kernels::gemm_at_blocked(m, n, k, a, b, c, accumulate);
}

void gemm_bt(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate) {
  kernels::gemm_bt_blocked(m, n, k, a, b, c, accumulate);
}

int conv_out_extent(int in_extent, int kernel, int stride, int pad) {
  util::require(kernel >= 1 && stride >= 1 && pad >= 0, "bad convolution geometry");
  const int extent = (in_extent + 2 * pad - kernel) / stride + 1;
  util::require(extent >= 1, "convolution window does not fit input");
  return extent;
}

void im2col(const float* image, int channels, int height, int width, int kernel, int stride,
            int pad, int out_h, int out_w, float* columns) {
  const int patch = kernel * kernel;
  for (int c = 0; c < channels; ++c) {
    const float* plane = image + static_cast<std::size_t>(c) * height * width;
    for (int p = 0; p < patch; ++p) {
      const int kh = p / kernel;
      const int kw = p % kernel;
      float* col_row = columns + (static_cast<std::size_t>(c) * patch + p) * out_h * out_w;
      for (int oh = 0; oh < out_h; ++oh) {
        const int ih = oh * stride - pad + kh;
        if (ih < 0 || ih >= height) {
          std::memset(col_row + static_cast<std::size_t>(oh) * out_w, 0,
                      sizeof(float) * static_cast<std::size_t>(out_w));
          continue;
        }
        const float* img_row = plane + static_cast<std::size_t>(ih) * width;
        float* dst = col_row + static_cast<std::size_t>(oh) * out_w;
        for (int ow = 0; ow < out_w; ++ow) {
          const int iw = ow * stride - pad + kw;
          dst[ow] = (iw >= 0 && iw < width) ? img_row[iw] : 0.0f;
        }
      }
    }
  }
}

void col2im(const float* columns, int channels, int height, int width, int kernel, int stride,
            int pad, int out_h, int out_w, float* image) {
  const int patch = kernel * kernel;
  for (int c = 0; c < channels; ++c) {
    float* plane = image + static_cast<std::size_t>(c) * height * width;
    for (int p = 0; p < patch; ++p) {
      const int kh = p / kernel;
      const int kw = p % kernel;
      const float* col_row = columns + (static_cast<std::size_t>(c) * patch + p) * out_h * out_w;
      for (int oh = 0; oh < out_h; ++oh) {
        const int ih = oh * stride - pad + kh;
        if (ih < 0 || ih >= height) continue;
        float* img_row = plane + static_cast<std::size_t>(ih) * width;
        const float* src = col_row + static_cast<std::size_t>(oh) * out_w;
        for (int ow = 0; ow < out_w; ++ow) {
          const int iw = ow * stride - pad + kw;
          if (iw >= 0 && iw < width) img_row[iw] += src[ow];
        }
      }
    }
  }
}

}  // namespace bnn::nn
