#include "nn/models.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/elementwise.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "util/check.h"

namespace bnn::nn {

Model::Model(std::string name, std::unique_ptr<Network> net,
             std::vector<Network::NodeId> dropout_sites, std::vector<int> input_chw,
             int num_classes)
    : name_(std::move(name)),
      net_(std::move(net)),
      sites_(std::move(dropout_sites)),
      input_chw_(std::move(input_chw)),
      num_classes_(num_classes) {
  util::require(net_ != nullptr, "model: null network");
  for (Network::NodeId id : sites_)
    util::require(net_->layer(id)->kind() == LayerKind::mc_dropout,
                  "model: site node is not mc_dropout");
  set_dropout_p(p_);
}

void Model::set_bayesian_last(int bayes_layers) {
  util::require(bayes_layers >= 0 && bayes_layers <= num_sites(),
                "model: bayes_layers out of range");
  bayes_layers_ = bayes_layers;
  const int first_active = num_sites() - bayes_layers;
  for (int i = 0; i < num_sites(); ++i) site(i).set_active(i >= first_active);
}

Network::NodeId Model::first_active_site() const {
  if (bayes_layers_ == 0) return -1;
  return sites_[static_cast<std::size_t>(num_sites() - bayes_layers_)];
}

void Model::set_dropout_p(double p) {
  p_ = p;
  for (int i = 0; i < num_sites(); ++i) site(i).set_p(p);
}

void Model::reseed_sites(std::uint64_t seed) {
  util::Rng root(seed);
  for (int i = 0; i < num_sites(); ++i)
    site(i).reseed(root.fork(static_cast<std::uint64_t>(i)).seed());
}

McDropout& Model::site(int index) {
  util::require(index >= 0 && index < num_sites(), "model: site index out of range");
  auto* layer = dynamic_cast<McDropout*>(net_->layer(sites_[static_cast<std::size_t>(index)]));
  util::ensure(layer != nullptr, "model: site node is not mc_dropout");
  return *layer;
}

NetworkDesc Model::describe() const {
  return describe_network(*net_, input_chw_, name_, num_classes_);
}

namespace {

// Helper accumulating the usual conv -> BN -> ReLU [-> pool] -> dropout
// block and recording the dropout node as a Bayesian site.
struct Builder {
  Network& net;
  util::Rng& rng;
  std::vector<Network::NodeId>& sites;

  Network::NodeId conv_bn_relu(Network::NodeId in, int in_c, int out_c, int k, int stride,
                               int pad) {
    auto conv = std::make_unique<Conv2d>(in_c, out_c, k, stride, pad, /*has_bias=*/false);
    conv->init_kaiming(rng);
    Network::NodeId id = net.add(std::move(conv), in);
    id = net.add(std::make_unique<BatchNorm2d>(out_c), id);
    id = net.add(std::make_unique<ReLU>(), id);
    return id;
  }

  Network::NodeId site(Network::NodeId in, double p = 0.25) {
    const Network::NodeId id = net.add(std::make_unique<McDropout>(p), in);
    sites.push_back(id);
    return id;
  }
};

}  // namespace

Model make_lenet5(util::Rng& rng, int num_classes) {
  auto net = std::make_unique<Network>();
  std::vector<Network::NodeId> sites;
  Builder b{*net, rng, sites};

  // conv1: 1x28x28 -> 6x28x28 -> pool -> 6x14x14
  Network::NodeId id = b.conv_bn_relu(Network::input_id, 1, 6, 5, 1, 2);
  id = net->add(std::make_unique<MaxPool2d>(2), id);
  id = b.site(id);
  // conv2: -> 16x10x10 -> pool -> 16x5x5
  id = b.conv_bn_relu(id, 6, 16, 5, 1, 0);
  id = net->add(std::make_unique<MaxPool2d>(2), id);
  id = b.site(id);

  id = net->add(std::make_unique<Flatten>(), id);
  auto fc1 = std::make_unique<Linear>(16 * 5 * 5, 120);
  fc1->init_kaiming(rng);
  id = net->add(std::move(fc1), id);
  id = net->add(std::make_unique<ReLU>(), id);
  id = b.site(id);
  auto fc2 = std::make_unique<Linear>(120, 84);
  fc2->init_kaiming(rng);
  id = net->add(std::move(fc2), id);
  id = net->add(std::make_unique<ReLU>(), id);
  id = b.site(id);
  auto fc3 = std::make_unique<Linear>(84, num_classes);
  fc3->init_kaiming(rng);
  net->add(std::move(fc3), id);

  return Model("lenet5", std::move(net), std::move(sites), {1, 28, 28}, num_classes);
}

Model make_vgg11(util::Rng& rng, int num_classes, int width_divisor) {
  util::require(width_divisor >= 1, "vgg11: width_divisor must be >= 1");
  auto net = std::make_unique<Network>();
  std::vector<Network::NodeId> sites;
  Builder b{*net, rng, sites};

  // VGG-11 configuration: value = conv width, 0 = 2x2 max pool.
  const int cfg[] = {64, 0, 128, 0, 256, 256, 0, 512, 512, 0, 512, 512, 0};
  int in_c = 3;
  Network::NodeId id = Network::input_id;
  for (int entry : cfg) {
    if (entry == 0) {
      id = net->add(std::make_unique<MaxPool2d>(2), id);
      continue;
    }
    const int out_c = std::max(entry / width_divisor, 4);
    id = b.conv_bn_relu(id, in_c, out_c, 3, 1, 1);
    in_c = out_c;
    // Channel-wise masks with non-negative scaling commute with max pooling
    // on post-ReLU maps, so placing every site directly after ReLU (before
    // an eventual pool) matches the paper's "optionally pooling" placement.
    id = b.site(id);
  }

  id = net->add(std::make_unique<Flatten>(), id);
  const int feat = std::max(512 / width_divisor, 4);
  auto fc1 = std::make_unique<Linear>(feat, 128);
  fc1->init_kaiming(rng);
  id = net->add(std::move(fc1), id);
  id = net->add(std::make_unique<ReLU>(), id);
  id = b.site(id);
  auto fc2 = std::make_unique<Linear>(128, num_classes);
  fc2->init_kaiming(rng);
  net->add(std::move(fc2), id);

  return Model("vgg11", std::move(net), std::move(sites), {3, 32, 32}, num_classes);
}

Model make_resnet18(util::Rng& rng, int num_classes, int base_width) {
  util::require(base_width >= 4, "resnet18: base_width must be >= 4");
  auto net = std::make_unique<Network>();
  std::vector<Network::NodeId> sites;
  Builder b{*net, rng, sites};

  // Stem (CIFAR-style: 3x3, no initial pooling).
  Network::NodeId id = b.conv_bn_relu(Network::input_id, 3, base_width, 3, 1, 1);
  id = b.site(id);

  auto basic_block = [&](Network::NodeId in, int in_c, int out_c,
                         int stride) -> Network::NodeId {
    Network::NodeId main = b.conv_bn_relu(in, in_c, out_c, 3, stride, 1);
    auto conv2 = std::make_unique<Conv2d>(out_c, out_c, 3, 1, 1, /*has_bias=*/false);
    conv2->init_kaiming(rng);
    main = net->add(std::move(conv2), main);
    main = net->add(std::make_unique<BatchNorm2d>(out_c), main);

    Network::NodeId shortcut = in;
    if (stride != 1 || in_c != out_c) {
      auto proj = std::make_unique<Conv2d>(in_c, out_c, 1, stride, 0, /*has_bias=*/false);
      proj->init_kaiming(rng);
      shortcut = net->add(std::move(proj), in);
      shortcut = net->add(std::make_unique<BatchNorm2d>(out_c), shortcut);
    }
    Network::NodeId out = net->add(std::make_unique<Add>(), main, shortcut);
    out = net->add(std::make_unique<ReLU>(), out);
    return b.site(out);
  };

  int in_c = base_width;
  const int stage_width[4] = {base_width, base_width * 2, base_width * 4, base_width * 8};
  for (int stage = 0; stage < 4; ++stage) {
    const int out_c = stage_width[stage];
    const int first_stride = stage == 0 ? 1 : 2;
    id = basic_block(id, in_c, out_c, first_stride);
    id = basic_block(id, out_c, out_c, 1);
    in_c = out_c;
  }

  id = net->add(std::make_unique<GlobalAvgPool>(), id);
  id = net->add(std::make_unique<Flatten>(), id);
  auto fc = std::make_unique<Linear>(in_c, num_classes);
  fc->init_kaiming(rng);
  net->add(std::move(fc), id);

  return Model("resnet18", std::move(net), std::move(sites), {3, 32, 32}, num_classes);
}

Model make_tiny_cnn(util::Rng& rng, int num_classes, int in_channels, int image) {
  auto net = std::make_unique<Network>();
  std::vector<Network::NodeId> sites;
  Builder b{*net, rng, sites};

  Network::NodeId id = b.conv_bn_relu(Network::input_id, in_channels, 8, 3, 1, 1);
  id = net->add(std::make_unique<MaxPool2d>(2), id);
  id = b.site(id);
  id = b.conv_bn_relu(id, 8, 16, 3, 1, 1);
  id = net->add(std::make_unique<MaxPool2d>(2), id);
  id = b.site(id);

  id = net->add(std::make_unique<Flatten>(), id);
  const int feat = 16 * (image / 4) * (image / 4);
  auto fc1 = std::make_unique<Linear>(feat, 32);
  fc1->init_kaiming(rng);
  id = net->add(std::move(fc1), id);
  id = net->add(std::make_unique<ReLU>(), id);
  id = b.site(id);
  auto fc2 = std::make_unique<Linear>(32, num_classes);
  fc2->init_kaiming(rng);
  net->add(std::move(fc2), id);

  return Model("tiny_cnn", std::move(net), std::move(sites),
               {in_channels, image, image}, num_classes);
}

Model make_mlp3(util::Rng& rng, int in_features, int hidden, int num_classes,
                MlpActivation activation, bool with_mcd_sites) {
  util::require(in_features > 0 && hidden > 0 && num_classes > 0,
                "mlp3: sizes must be positive");
  auto net = std::make_unique<Network>();
  std::vector<Network::NodeId> sites;

  auto activation_layer = [activation]() -> std::unique_ptr<Layer> {
    if (activation == MlpActivation::quadratic) return std::make_unique<Quadratic>();
    return std::make_unique<ReLU>();
  };

  Network::NodeId id = net->add(std::make_unique<Flatten>(), Network::input_id);
  auto fc1 = std::make_unique<Linear>(in_features, hidden);
  fc1->init_kaiming(rng);
  id = net->add(std::move(fc1), id);
  id = net->add(activation_layer(), id);
  if (with_mcd_sites) {
    id = net->add(std::make_unique<McDropout>(0.25), id);
    sites.push_back(id);
  }
  auto fc2 = std::make_unique<Linear>(hidden, hidden);
  fc2->init_kaiming(rng);
  id = net->add(std::move(fc2), id);
  id = net->add(activation_layer(), id);
  if (with_mcd_sites) {
    id = net->add(std::make_unique<McDropout>(0.25), id);
    sites.push_back(id);
  }
  auto fc3 = std::make_unique<Linear>(hidden, num_classes);
  fc3->init_kaiming(rng);
  net->add(std::move(fc3), id);

  // The flattened input is declared as a {features, 1, 1} image.
  return Model("mlp3", std::move(net), std::move(sites), {in_features, 1, 1}, num_classes);
}

}  // namespace bnn::nn
