// Monte Carlo Dropout (Gal & Ghahramani 2016), filter-wise as in the paper:
// one Bernoulli drop decision per output channel, dropped channels zeroed,
// survivors scaled by 1/(1-p). Unlike standard dropout it stays active at
// inference when the layer is marked active, which is what turns a point
// network into an MCD Bayesian network.
//
// The drop decisions come from a MaskSource so the same layer can be driven
// either by a software RNG (float reference path) or by the simulated
// LFSR-based hardware Bernoulli sampler (src/core/bernoulli_sampler.h).
#ifndef BNN_NN_DROPOUT_H
#define BNN_NN_DROPOUT_H

#include <memory>

#include "nn/layer.h"
#include "util/rng.h"

namespace bnn::nn {

// Stream of drop decisions; next_drop() is true with probability p.
class MaskSource {
 public:
  virtual ~MaskSource() = default;
  virtual bool next_drop() = 0;
};

// Draws one filter-wise MCD mask of shape (batch, channels) from `source`:
// 0 for dropped channels, 1/(1-p) for kept ones. Decisions are drawn
// channel-minor, matching the hardware sampler's filter-serial stream.
Tensor draw_mc_dropout_mask(int batch, int channels, MaskSource& source, double p);

// As draw_mc_dropout_mask, writing into `mask` (Tensor::reset — reuses
// capacity, so a replay arena's mask scratch stops churning the allocator).
void draw_mc_dropout_mask_into(int batch, int channels, MaskSource& source, double p,
                               Tensor& mask);

// Applies a (batch, channels) mask to a (N, C, H, W) or (N, F) tensor.
// Pure function of its inputs — the thread-safe replay path uses this pair
// instead of McDropout::forward so concurrent samples never touch shared
// layer state.
Tensor apply_mc_dropout_mask(const Tensor& x, const Tensor& mask);

// As apply_mc_dropout_mask, writing into `out` (must not alias `x`).
void apply_mc_dropout_mask_into(const Tensor& x, const Tensor& mask, Tensor& out);

// Software mask source backed by the deterministic Rng.
class RngMaskSource final : public MaskSource {
 public:
  RngMaskSource(double p, util::Rng rng) : p_(p), rng_(rng) {}
  bool next_drop() override { return rng_.bernoulli(p_); }
  double p() const { return p_; }

 private:
  double p_;
  util::Rng rng_;
};

class McDropout final : public Layer {
 public:
  // `p` is the drop probability (the paper uses p = 0.25 everywhere).
  explicit McDropout(double p, std::uint64_t seed = 1);

  LayerKind kind() const override { return LayerKind::mc_dropout; }

  // Accepts (N, C, H, W) — channel-wise mask — or (N, F) — feature-wise.
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override {
    return in_shape;
  }

  // Inactive dropout is the identity: a partial BNN disables the sites in
  // the deterministic prefix.
  void set_active(bool active) { active_ = active; }
  bool active() const { return active_; }

  double p() const { return p_; }
  void set_p(double p);

  // Re-seed the built-in software source (used to decorrelate MC samples
  // across repeats deterministically).
  void reseed(std::uint64_t seed);

  // Seed of the built-in source; root of this site's per-sample stream
  // family in the parallel Monte Carlo runner (bayes::mc_predict derives
  // sample s's stream as Rng(seed()).fork(s)).
  std::uint64_t seed() const { return seed_; }

  // Use an external mask source (e.g. the simulated hardware sampler); the
  // caller keeps ownership. Pass nullptr to return to the built-in source.
  // Note: bayes::mc_predict refuses sites with an external source — its
  // parallel per-sample streams derive from seed(), not from source().
  void set_mask_source(MaskSource* source) { external_source_ = source; }
  bool has_external_mask_source() const { return external_source_ != nullptr; }

  // Scaled mask of the last active forward, shape (N, C): 0 for dropped
  // channels, 1/(1-p) for kept ones.
  const Tensor& last_mask() const { return mask_; }

 private:
  MaskSource& source();

  double p_;
  bool active_ = false;
  std::uint64_t seed_;
  std::unique_ptr<RngMaskSource> owned_source_;
  MaskSource* external_source_ = nullptr;
  Tensor mask_;
  bool forward_was_active_ = false;
};

}  // namespace bnn::nn

#endif  // BNN_NN_DROPOUT_H
