// Hardware-facing network description.
//
// The accelerator processes the network as a sequence of "hardware layers":
// each is one pass through the NNE pipeline — matrix multiply in the PE,
// then the Functional Unit chain (BatchNorm, ReLU, Pool, Shortcut), then the
// Dropout Unit. A HwLayer therefore bundles a conv/linear op with the FU
// stages that follow it. The performance and resource models (src/core)
// consume NetworkDesc, which keeps them decoupled from the float reference
// Network — large networks (ResNet-101) can be described analytically
// without allocating weights.
#ifndef BNN_NN_NETDESC_H
#define BNN_NN_NETDESC_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.h"

namespace bnn::nn {

struct HwLayer {
  enum class Op { conv, linear };

  std::string label;
  Op op = Op::conv;

  // Input feature map (linear: in_h = in_w = 1, in_c = features).
  int in_c = 0, in_h = 1, in_w = 1;
  // PE output positions before pooling.
  int conv_out_h = 1, conv_out_w = 1;
  int out_c = 0;
  // Stored output map after the FU pool stage.
  int out_h = 1, out_w = 1;

  int kernel = 1, stride = 1, pad = 0;
  bool has_bias = true;

  // Functional Unit chain flags.
  bool has_bn = false;
  bool has_relu = false;
  int pool_kernel = 0;  // 0: none
  int pool_stride = 0;
  bool pool_is_global = false;
  bool pool_is_max = true;
  bool has_shortcut = false;  // SC stage adds a second (residual) operand

  // Dropout Unit: is a Monte Carlo Dropout mask applied to this output?
  bool is_bayes_site = false;
  int site_index = -1;

  // Kernel-tier annotation: the layer's quantized weights admit the packed
  // binary/ternary tier (every row two/three-valued with one shared
  // magnitude — see quant/qplan.h). A STATIC weight-only property set by
  // quant::annotate_weight_tiers (quantize_model does it), never a runtime
  // activation fact, so modelled cycle counts stay deterministic. The cycle
  // model (core::estimate_layer_cycles) credits such a layer with
  // NneConfig::binary_term_parallelism extra term parallelism.
  bool weights_binarizable = false;

  std::int64_t macs() const {
    return static_cast<std::int64_t>(out_c) * in_c * kernel * kernel * conv_out_h * conv_out_w;
  }
  std::int64_t weight_count() const {
    return static_cast<std::int64_t>(out_c) * in_c * kernel * kernel + (has_bias ? out_c : 0);
  }
  std::int64_t in_elems() const { return static_cast<std::int64_t>(in_c) * in_h * in_w; }
  std::int64_t out_elems() const { return static_cast<std::int64_t>(out_c) * out_h * out_w; }
  // Extra operand streamed for the shortcut addition.
  std::int64_t shortcut_elems() const { return has_shortcut ? out_elems() : 0; }
};

struct NetworkDesc {
  std::string name;
  std::vector<int> input_shape;  // {C, H, W}
  int num_classes = 0;
  std::vector<HwLayer> layers;

  int num_layers() const { return static_cast<int>(layers.size()); }
  // Number of Monte Carlo Dropout sites (the paper's N in "last L of N").
  int num_sites() const;
  std::int64_t total_macs() const;
  std::int64_t total_weight_count() const;

  // Index of the hardware layer whose output carries the first active site
  // when the last `bayes_layers` sites are Bayesian. With intermediate-layer
  // caching, layers [0 .. cut] run once and layers (cut .. end) run per
  // sample. Returns num_layers()-1 in the degenerate bayes_layers == 0 case.
  int cut_layer_for(int bayes_layers) const;

  // Largest input feature map over all layers, in elements — sizes the
  // accelerator's input buffer (paper's MEM_in).
  std::int64_t max_input_elems() const;
  // Largest per-filter weight slice, in elements — sizes the weight buffer
  // (paper's MEM_weight is this times PF).
  std::int64_t max_filter_weight_elems() const;
  // Largest per-layer filter count — sizes the per-layer mask words.
  int max_out_channels() const;
};

// Extracts the hardware description from a float Network: conv/linear nodes
// open a new HwLayer; BN/ReLU/Pool/Add/MCDropout nodes that follow attach to
// it as FU/DU stages; Flatten and Softmax are host-side and ignored.
NetworkDesc describe_network(const Network& net, const std::vector<int>& chw_input,
                             const std::string& name, int num_classes);

// Analytic descriptions of the paper's comparison networks (no weights).
NetworkDesc describe_resnet101(int image_size = 224, int num_classes = 1000);
// Three-layer MLP of the kind VIBNN / BYNQNet evaluate on (for context in
// the Table IV bench).
NetworkDesc describe_mlp3(int in_features, int hidden, int num_classes);

}  // namespace bnn::nn

#endif  // BNN_NN_NETDESC_H
