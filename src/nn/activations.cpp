#include "nn/activations.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bnn::nn {

void ReLU::forward_into(const Tensor& x, Tensor& out) {
  out.reset(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

Tensor ReLU::forward(const Tensor& x) {
  Tensor y;
  forward_into(x, y);
  if (training_) cached_input_ = x;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  util::ensure(!cached_input_.empty(), "relu backward without cached forward");
  Tensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i)
    grad_in[i] = cached_input_[i] > 0.0f ? grad_out[i] : 0.0f;
  return grad_in;
}

void Quadratic::forward_into(const Tensor& x, Tensor& out) {
  out.reset(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) out[i] = x[i] * x[i];
}

Tensor Quadratic::forward(const Tensor& x) {
  Tensor y;
  forward_into(x, y);
  if (training_) cached_input_ = x;
  return y;
}

Tensor Quadratic::backward(const Tensor& grad_out) {
  util::ensure(!cached_input_.empty(), "quadratic backward without cached forward");
  Tensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i)
    grad_in[i] = 2.0f * cached_input_[i] * grad_out[i];
  return grad_in;
}

void softmax_row(const float* logits, float* out, int classes) {
  // Aliasing-safe in-place: the max pass reads all of `logits` before any
  // write, the exp pass overwrites out[k] from logits[k] position-by-position,
  // and the divide pass touches only `out`.
  const float row_max = *std::max_element(logits, logits + classes);
  float denom = 0.0f;
  for (int k = 0; k < classes; ++k) {
    out[k] = std::exp(logits[k] - row_max);
    denom += out[k];
  }
  for (int k = 0; k < classes; ++k) out[k] /= denom;
}

void softmax_rows_into(const Tensor& logits, Tensor& probs) {
  util::require(logits.dim() == 2, "softmax expects (N, K) input");
  const int batch = logits.size(0);
  const int classes = logits.size(1);
  probs.reset(logits.shape());
  for (int n = 0; n < batch; ++n)
    softmax_row(logits.data() + logits.index2(n, 0), probs.data() + probs.index2(n, 0), classes);
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor probs;
  softmax_rows_into(logits, probs);
  return probs;
}

std::vector<int> Softmax::out_shape(const std::vector<int>& in_shape) const {
  util::require(in_shape.size() == 2, "softmax expects (N, K) input");
  return in_shape;
}

void Softmax::forward_into(const Tensor& x, Tensor& out) { softmax_rows_into(x, out); }

Tensor Softmax::forward(const Tensor& x) {
  Tensor y = softmax_rows(x);
  if (training_) cached_output_ = y;
  return y;
}

Tensor Softmax::backward(const Tensor& grad_out) {
  util::ensure(!cached_output_.empty(), "softmax backward without cached forward");
  const Tensor& y = cached_output_;
  const int batch = y.size(0);
  const int classes = y.size(1);
  Tensor grad_in(y.shape());
  for (int n = 0; n < batch; ++n) {
    float dot = 0.0f;
    for (int k = 0; k < classes; ++k) dot += grad_out.v2(n, k) * y.v2(n, k);
    for (int k = 0; k < classes; ++k)
      grad_in.v2(n, k) = (grad_out.v2(n, k) - dot) * y.v2(n, k);
  }
  return grad_in;
}

}  // namespace bnn::nn
