#include "nn/gemm_kernels.h"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace bnn::nn::kernels {

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::scalar: return "scalar";
    case Tier::int8: return "int8";
    case Tier::bitpack: return "bitpack";
  }
  return "unknown";
}

namespace {

// Register-block geometry. An MR x NR output tile is held in registers
// across a KC-deep k-panel; NR is sized so the accumulator tile plus the
// A broadcasts and one B row fit the vector register file (16 registers on
// x86-64). KC bounds the panel so the B block a tile streams through stays
// L1-resident.
//
// The micro kernel uses GCC/Clang generic vector types instead of relying
// on the auto-vectorizer (which SLP-shreds the 2-D accumulator array into
// slow shuffle soup) and instead of intrinsics (which would pin an ISA).
// The vector width follows the strongest ISA the TU is compiled for; every
// lane still performs one rounded multiply and one rounded add per k-term
// (-ffp-contract=off in this TU), so the bits match the scalar references
// and are independent of the chosen width.
#if defined(__AVX__)
#define BNN_KERNEL_VEC_BYTES 32
#else
#define BNN_KERNEL_VEC_BYTES 16
#endif
typedef float vf __attribute__((vector_size(BNN_KERNEL_VEC_BYTES)));
constexpr int VL = BNN_KERNEL_VEC_BYTES / static_cast<int>(sizeof(float));
constexpr int MR = 4;
constexpr int NV = 2;        // vector registers per accumulator row
constexpr int NR = NV * VL;  // 16 with AVX, 8 with baseline SSE2
constexpr int KC = 256;

inline vf splat(float v) {
  vf out;
  for (int l = 0; l < VL; ++l) out[l] = v;
  return out;
}

inline vf loadu(const float* p) {
  vf out;
  __builtin_memcpy(&out, p, sizeof(vf));
  return out;
}

inline void storeu(float* p, vf v) { __builtin_memcpy(p, &v, sizeof(vf)); }

// gemm_bt tiles are square: the dot-product form has no unit-stride output
// axis to vectorize without splitting the per-(i,j) accumulator (which
// would change the float reduction order), so the win is MR_BT * NR_BT
// independent accumulator chains the CPU overlaps, versus the scalar
// loop's one latency-bound chain.
constexpr int MR_BT = 4;
constexpr int NR_BT = 4;

}  // namespace

// --- scalar references ------------------------------------------------------

void gemm_scalar(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate) {
  if (!accumulate)
    std::fill(c, c + static_cast<std::size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    const float* a_row = a + static_cast<std::size_t>(i) * k;
    float* c_row = c + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float a_ik = a_row[kk];
      const float* b_row = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
    }
  }
}

void gemm_at_scalar(int m, int n, int k, const float* a, const float* b, float* c,
                    bool accumulate) {
  if (!accumulate)
    std::fill(c, c + static_cast<std::size_t>(m) * n, 0.0f);
  for (int kk = 0; kk < k; ++kk) {
    const float* a_row = a + static_cast<std::size_t>(kk) * m;
    const float* b_row = b + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float a_ki = a_row[i];
      float* c_row = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) c_row[j] += a_ki * b_row[j];
    }
  }
}

void gemm_bt_scalar(int m, int n, int k, const float* a, const float* b, float* c,
                    bool accumulate) {
  for (int i = 0; i < m; ++i) {
    const float* a_row = a + static_cast<std::size_t>(i) * k;
    float* c_row = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* b_row = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      if (accumulate)
        c_row[j] += acc;
      else
        c_row[j] = acc;
    }
  }
}

// --- blocked float kernels --------------------------------------------------

namespace {

// Both micro kernels read PACKED panels: A as MR-interleaved tiles
// (pa[kk][mi], stride MR) and B as contiguous KC x NR rows (stride NR).
//
// `load_c` distinguishes the first k-panel of a non-accumulating call (the
// tile starts from zero and overwrites C) from every later panel (C holds
// the running sum). Either way each c[i,j] receives its k-terms one at a
// time in ascending k — the scalar reference's exact operation sequence.

// Full MR x NR register tile over one k-panel: 8 vector accumulators plus
// one broadcast and NV B-row loads live per iteration.
inline void micro_full(int kc, const float* __restrict a, const float* __restrict b,
                       float* __restrict c, int ldc, bool load_c) {
  vf acc[MR][NV];
  for (int mi = 0; mi < MR; ++mi)
    for (int v = 0; v < NV; ++v)
      acc[mi][v] =
          load_c ? loadu(c + static_cast<std::size_t>(mi) * ldc + v * VL) : splat(0.0f);
  for (int kk = 0; kk < kc; ++kk) {
    vf bv[NV];
    for (int v = 0; v < NV; ++v) bv[v] = loadu(b + v * VL);
    for (int mi = 0; mi < MR; ++mi) {
      const vf av = splat(a[mi]);
      for (int v = 0; v < NV; ++v) acc[mi][v] += av * bv[v];
    }
    a += MR;
    b += NR;
  }
  for (int mi = 0; mi < MR; ++mi)
    for (int v = 0; v < NV; ++v)
      storeu(c + static_cast<std::size_t>(mi) * ldc + v * VL, acc[mi][v]);
}

// Remainder tile with runtime extents mr <= MR, nr <= NR (scalar: edges are
// a vanishing fraction of the work on any non-tiny shape).
inline void micro_edge(int mr, int nr, int kc, const float* __restrict a,
                       const float* __restrict b, float* __restrict c, int ldc, bool load_c) {
  float acc[MR][NR];
  for (int mi = 0; mi < mr; ++mi)
    for (int ni = 0; ni < nr; ++ni)
      acc[mi][ni] = load_c ? c[static_cast<std::size_t>(mi) * ldc + ni] : 0.0f;
  for (int kk = 0; kk < kc; ++kk) {
    for (int mi = 0; mi < mr; ++mi) {
      const float av = a[mi];
      for (int ni = 0; ni < nr; ++ni) acc[mi][ni] += av * b[ni];
    }
    a += MR;
    b += NR;
  }
  for (int mi = 0; mi < mr; ++mi)
    for (int ni = 0; ni < nr; ++ni) c[static_cast<std::size_t>(mi) * ldc + ni] = acc[mi][ni];
}

// Shared driver for gemm / gemm_at. Both operands are repacked panel by
// panel (pure data movement — it cannot change any floating-point result):
//
//  - A's k-panel is packed once per k0 into MR-interleaved tiles
//    (pa[tile][kk][mi], contiguous), read back sequentially by every j-tile
//    sweep. This also makes gemm and gemm_at identical from the micro
//    kernel's point of view.
//  - B's KC x NR block is packed per (k0, j0) into a contiguous scratch
//    (at most KC*NR floats = 16 KiB, L1-resident). Without this, layer
//    shapes with power-of-two N (e.g. the VGG im2col GEMM, N=1024) put
//    every row of the block in the same L1 set — a 4 KiB-aliasing conflict
//    storm that makes the tiled loop *slower* than the streaming scalar
//    one.
//
// Packing buffers are thread-local so repeated layer calls reuse their
// high-water allocation; lanes of the (image, sample) pair loop each carry
// their own.
void gemm_panels(int m, int n, int k, const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
                 const float* b, float* c, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) std::fill(c, c + static_cast<std::size_t>(m) * n, 0.0f);
    return;
  }
  static thread_local std::vector<float> pa_buf, pb_buf;
  const int i_tiles = (m + MR - 1) / MR;
  pa_buf.resize(static_cast<std::size_t>(i_tiles) * MR * std::min(KC, k));
  pb_buf.resize(static_cast<std::size_t>(std::min(KC, k)) * NR);

  for (int k0 = 0; k0 < k; k0 += KC) {  // ascending: preserves each c[i,j]'s k-order
    const int kc = std::min(KC, k - k0);
    const bool load_c = accumulate || k0 > 0;

    // Pack A(:, k0:k0+kc) as MR-interleaved tiles; rows past m pad with
    // zeros that only feed accumulator lanes no tile ever stores.
    for (int ti = 0; ti < i_tiles; ++ti) {
      float* pa = pa_buf.data() + static_cast<std::size_t>(ti) * MR * kc;
      for (int kk = 0; kk < kc; ++kk) {
        for (int mi = 0; mi < MR; ++mi) {
          const int row = ti * MR + mi;
          pa[static_cast<std::size_t>(kk) * MR + mi] =
              row < m ? a[row * a_rs + static_cast<std::ptrdiff_t>(k0 + kk) * a_cs] : 0.0f;
        }
      }
    }

    for (int j0 = 0; j0 < n; j0 += NR) {
      const int nr = std::min(NR, n - j0);
      // Pack B(k0:k0+kc, j0:j0+nr) contiguously (zero-pad partial widths).
      for (int kk = 0; kk < kc; ++kk) {
        const float* b_row = b + static_cast<std::size_t>(k0 + kk) * n + j0;
        float* pb_row = pb_buf.data() + static_cast<std::size_t>(kk) * NR;
        for (int ni = 0; ni < nr; ++ni) pb_row[ni] = b_row[ni];
        for (int ni = nr; ni < NR; ++ni) pb_row[ni] = 0.0f;
      }

      for (int ti = 0; ti < i_tiles; ++ti) {
        const float* pa = pa_buf.data() + static_cast<std::size_t>(ti) * MR * kc;
        const int mr = std::min(MR, m - ti * MR);
        float* c_tile = c + static_cast<std::size_t>(ti) * MR * n + j0;
        if (mr == MR && nr == NR)
          micro_full(kc, pa, pb_buf.data(), c_tile, n, load_c);
        else
          micro_edge(mr, nr, kc, pa, pb_buf.data(), c_tile, n, load_c);
      }
    }
  }
}

}  // namespace

void gemm_blocked(int m, int n, int k, const float* a, const float* b, float* c,
                  bool accumulate) {
  gemm_panels(m, n, k, a, /*a_rs=*/k, /*a_cs=*/1, b, c, accumulate);
}

void gemm_at_blocked(int m, int n, int k, const float* a, const float* b, float* c,
                     bool accumulate) {
  gemm_panels(m, n, k, a, /*a_rs=*/1, /*a_cs=*/m, b, c, accumulate);
}

void gemm_bt_blocked(int m, int n, int k, const float* __restrict a, const float* __restrict b,
                     float* __restrict c, bool accumulate) {
  // Overwriting calls can transpose B (pure data movement) and take the
  // vectorized panel path: its per-(i,j) chain ((0+t0)+t1)+... is exactly
  // the scalar gemm_bt accumulator chain, so the bits are unchanged. An
  // accumulating call cannot — it would fold c in at the start of the
  // chain instead of adding the finished dot product onto it — and tiny m
  // cannot amortize the transpose; both fall through to the ILP form.
  if (!accumulate && m >= 8 && k >= 2) {
    static thread_local std::vector<float> bt_buf;
    bt_buf.resize(static_cast<std::size_t>(k) * n);
    for (int j = 0; j < n; ++j) {
      const float* b_row = b + static_cast<std::size_t>(j) * k;
      for (int kk = 0; kk < k; ++kk) bt_buf[static_cast<std::size_t>(kk) * n + j] = b_row[kk];
    }
    gemm_panels(m, n, k, a, /*a_rs=*/k, /*a_cs=*/1, bt_buf.data(), c, false);
    return;
  }
  for (int i0 = 0; i0 < m; i0 += MR_BT) {
    const int mr = std::min(MR_BT, m - i0);
    for (int j0 = 0; j0 < n; j0 += NR_BT) {
      const int nr = std::min(NR_BT, n - j0);
      float acc[MR_BT][NR_BT] = {};
      if (mr == MR_BT && nr == NR_BT) {
        for (int kk = 0; kk < k; ++kk) {
          float av[MR_BT];
          for (int mi = 0; mi < MR_BT; ++mi)
            av[mi] = a[static_cast<std::size_t>(i0 + mi) * k + kk];
          for (int ni = 0; ni < NR_BT; ++ni) {
            const float bv = b[static_cast<std::size_t>(j0 + ni) * k + kk];
            for (int mi = 0; mi < MR_BT; ++mi) acc[mi][ni] += av[mi] * bv;
          }
        }
      } else {
        for (int kk = 0; kk < k; ++kk) {
          for (int mi = 0; mi < mr; ++mi) {
            const float av = a[static_cast<std::size_t>(i0 + mi) * k + kk];
            for (int ni = 0; ni < nr; ++ni)
              acc[mi][ni] += av * b[static_cast<std::size_t>(j0 + ni) * k + kk];
          }
        }
      }
      for (int mi = 0; mi < mr; ++mi) {
        float* c_row = c + static_cast<std::size_t>(i0 + mi) * n + j0;
        for (int ni = 0; ni < nr; ++ni) {
          if (accumulate)
            c_row[ni] += acc[mi][ni];
          else
            c_row[ni] = acc[mi][ni];
        }
      }
    }
  }
}

// --- int8 -> int32 dot kernels ----------------------------------------------
// Plain single-accumulator reductions: integer addition is associative, so
// the auto-vectorizer is free to widen these (and does — the manual
// multi-accumulator unroll this replaced actually defeated it).

std::int32_t dot_i8_zp(const std::int8_t* __restrict x, const std::int8_t* __restrict w, int len,
                       std::int32_t zero_point) {
  std::int32_t acc = 0;
  for (int t = 0; t < len; ++t)
    acc += (static_cast<std::int32_t>(x[t]) - zero_point) * static_cast<std::int32_t>(w[t]);
  return acc;
}

std::int32_t dot_i8_zp_gather(const std::int8_t* __restrict x, const std::int32_t* __restrict offsets,
                              const std::int8_t* __restrict w, int len, std::int32_t zero_point) {
  // Indexed loads do not vectorize on the baseline ISA; two independent
  // chains keep the win from hoisting the index math without hurting ILP.
  std::int32_t acc0 = 0, acc1 = 0;
  int t = 0;
  for (; t + 2 <= len; t += 2) {
    acc0 += (static_cast<std::int32_t>(x[offsets[t]]) - zero_point) *
            static_cast<std::int32_t>(w[t]);
    acc1 += (static_cast<std::int32_t>(x[offsets[t + 1]]) - zero_point) *
            static_cast<std::int32_t>(w[t + 1]);
  }
  if (t < len)
    acc0 += (static_cast<std::int32_t>(x[offsets[t]]) - zero_point) *
            static_cast<std::int32_t>(w[t]);
  return acc0 + acc1;
}

}  // namespace bnn::nn::kernels
