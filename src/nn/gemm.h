// Single-threaded GEMM and im2col used by the float reference convolution /
// linear layers. The three variants route to the register-blocked,
// cache-tiled micro-kernels in gemm_kernels.h, which are bit-identical to
// the plain i/k/j scalar loops by construction (blocking runs along the
// output axes only; every c[i,j] accumulates its k-terms in ascending
// order).
#ifndef BNN_NN_GEMM_H
#define BNN_NN_GEMM_H

namespace bnn::nn {

// C[M,N] (+)= A[M,K] * B[K,N]; all row-major. When `accumulate` is false the
// destination is overwritten.
void gemm(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate);

// C[M,N] (+)= A[K,M]^T * B[K,N].
void gemm_at(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate);

// C[M,N] (+)= A[M,K] * B[N,K]^T.
void gemm_bt(int m, int n, int k, const float* a, const float* b, float* c, bool accumulate);

// Expands one image (C,H,W) into columns for a KxK convolution with the
// given stride/padding: out has shape [C*K*K, Hout*Wout], row-major.
void im2col(const float* image, int channels, int height, int width, int kernel, int stride,
            int pad, int out_h, int out_w, float* columns);

// Reverse of im2col: scatters column gradients back onto the image
// (accumulating where patches overlap). `image` must be zeroed by the caller.
void col2im(const float* columns, int channels, int height, int width, int kernel, int stride,
            int pad, int out_h, int out_w, float* image);

// Output spatial extent of a convolution/pooling window.
int conv_out_extent(int in_extent, int kernel, int stride, int pad);

}  // namespace bnn::nn

#endif  // BNN_NN_GEMM_H
