// Compiled with BNN_KERNEL_OPTIONS (optionally -march=native, see
// CMakeLists.txt): __builtin_popcountll lowers to a single POPCNT where the
// ISA has it and to the compiler's SWAR sequence otherwise — integer
// results are identical either way, so the bit-identity contract is
// independent of the build flags.
#include "nn/bitpack_kernels.h"

namespace bnn::nn::kernels {

std::int32_t pack_eq_bits(const std::int8_t* x, int len, std::int8_t hi, std::uint64_t* out) {
  const int words = bit_words(len);
  std::int32_t pop = 0;
  for (int w = 0; w < words; ++w) {
    const int t0 = w * kBitWordBits;
    const int count = len - t0 < kBitWordBits ? len - t0 : kBitWordBits;
    std::uint64_t bits = 0;
    for (int i = 0; i < count; ++i)
      bits |= static_cast<std::uint64_t>(x[t0 + i] == hi) << i;
    out[w] = bits;  // tail bits of the last word stay zero
    pop += __builtin_popcountll(bits);
  }
  return pop;
}

std::int32_t pack_eq_bits_gather(const std::int8_t* x, const std::int32_t* offsets, int len,
                                 std::int8_t hi, std::uint64_t* out) {
  const int words = bit_words(len);
  std::int32_t pop = 0;
  for (int w = 0; w < words; ++w) {
    const int t0 = w * kBitWordBits;
    const int count = len - t0 < kBitWordBits ? len - t0 : kBitWordBits;
    std::uint64_t bits = 0;
    for (int i = 0; i < count; ++i)
      bits |= static_cast<std::uint64_t>(x[offsets[t0 + i]] == hi) << i;
    out[w] = bits;
    pop += __builtin_popcountll(bits);
  }
  return pop;
}

std::int32_t popcount_words(const std::uint64_t* a, int words) {
  std::int32_t pop = 0;
  for (int w = 0; w < words; ++w) pop += __builtin_popcountll(a[w]);
  return pop;
}

std::int32_t popcount_xor(const std::uint64_t* __restrict a, const std::uint64_t* __restrict b,
                          int words) {
  std::int32_t pop = 0;
  for (int w = 0; w < words; ++w) pop += __builtin_popcountll(a[w] ^ b[w]);
  return pop;
}

std::int32_t popcount_and(const std::uint64_t* __restrict a, const std::uint64_t* __restrict b,
                          int words) {
  std::int32_t pop = 0;
  for (int w = 0; w < words; ++w) pop += __builtin_popcountll(a[w] & b[w]);
  return pop;
}

void popcount_and2(const std::uint64_t* __restrict x, const std::uint64_t* __restrict plus,
                   const std::uint64_t* __restrict minus, int words, std::int32_t* pb,
                   std::int32_t* mb) {
  std::int32_t p = 0, m = 0;
  for (int w = 0; w < words; ++w) {
    const std::uint64_t xv = x[w];
    p += __builtin_popcountll(xv & plus[w]);
    m += __builtin_popcountll(xv & minus[w]);
  }
  *pb = p;
  *mb = m;
}

}  // namespace bnn::nn::kernels
