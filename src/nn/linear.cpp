#include "nn/linear.h"

#include <cmath>

#include "nn/gemm.h"
#include "util/check.h"

namespace bnn::nn {

Linear::Linear(int in_features, int out_features, bool has_bias)
    : in_features_(in_features), out_features_(out_features), has_bias_(has_bias) {
  util::require(in_features > 0 && out_features > 0, "linear: features must be positive");
  weight_.value = Tensor({out_features_, in_features_});
  if (has_bias_) bias_.value = Tensor({out_features_});
}

void Linear::init_kaiming(util::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_features_));
  for (std::int64_t i = 0; i < weight_.value.numel(); ++i)
    weight_.value[i] = static_cast<float>(rng.normal(0.0, stddev));
  if (has_bias_) bias_.value.fill(0.0f);
}

std::vector<int> Linear::out_shape(const std::vector<int>& in_shape) const {
  util::require(in_shape.size() == 2, "linear expects (N, features) input");
  util::require(in_shape[1] == in_features_, "linear: feature mismatch");
  return {in_shape[0], out_features_};
}

std::int64_t Linear::macs(const std::vector<int>& in_shape) const {
  util::require(in_shape.size() == 2, "linear expects (N, features) input");
  return static_cast<std::int64_t>(in_shape[0]) * in_features_ * out_features_;
}

void Linear::forward_into(const Tensor& x, Tensor& y) {
  const std::vector<int> out_dims = out_shape(x.shape());
  const int batch = x.size(0);
  y.reset(out_dims);
  // y[N, out] = x[N, in] * W[out, in]^T (overwriting, so stale slot
  // contents never matter)
  gemm_bt(batch, out_features_, in_features_, x.data(), weight_.value.data(), y.data(),
          /*accumulate=*/false);
  if (has_bias_) {
    for (int n = 0; n < batch; ++n)
      for (int f = 0; f < out_features_; ++f) y.v2(n, f) += bias_.value[f];
  }
}

Tensor Linear::forward(const Tensor& x) {
  Tensor y;
  forward_into(x, y);
  if (training_) cached_input_ = x;
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  util::ensure(!cached_input_.empty(), "linear backward without cached forward");
  const Tensor& x = cached_input_;
  const int batch = x.size(0);

  if (!weight_.grad.same_shape(weight_.value)) weight_.zero_grad();
  if (has_bias_ && !bias_.grad.same_shape(bias_.value)) bias_.zero_grad();

  // dW[out, in] += dY[N, out]^T * X[N, in]
  gemm_at(out_features_, in_features_, batch, grad_out.data(), x.data(), weight_.grad.data(),
          /*accumulate=*/true);
  // dX[N, in] = dY[N, out] * W[out, in]
  Tensor grad_in(x.shape());
  gemm(batch, in_features_, out_features_, grad_out.data(), weight_.value.data(), grad_in.data(),
       /*accumulate=*/false);
  if (has_bias_) {
    for (int n = 0; n < batch; ++n)
      for (int f = 0; f < out_features_; ++f) bias_.grad[f] += grad_out.v2(n, f);
  }
  return grad_in;
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

}  // namespace bnn::nn
