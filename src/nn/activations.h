// Pointwise activations: ReLU and (row-wise) Softmax.
#ifndef BNN_NN_ACTIVATIONS_H
#define BNN_NN_ACTIVATIONS_H

#include "nn/layer.h"

namespace bnn::nn {

class ReLU final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::relu; }

  Tensor forward(const Tensor& x) override;
  void forward_into(const Tensor& x, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override {
    return in_shape;
  }

 private:
  Tensor cached_input_;
};

// Numerically-stable softmax over the last axis of a (N, K) tensor. Used to
// turn logits into the predictive probabilities that the Bayesian runner
// averages; training uses the fused softmax-cross-entropy loss instead.
class Softmax final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::softmax; }

  Tensor forward(const Tensor& x) override;
  void forward_into(const Tensor& x, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;

 private:
  Tensor cached_output_;
};

// Elementwise square, y = x^2 — the polynomial nonlinearity BYNQNet
// (Awano & Hashimoto, DATE'20) relies on for sampling-free moment
// propagation. Used by the functional BYNQNet baseline, not by the
// accelerator's FU chain.
class Quadratic final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::quadratic; }

  Tensor forward(const Tensor& x) override;
  void forward_into(const Tensor& x, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override {
    return in_shape;
  }

 private:
  Tensor cached_input_;
};

// Free-function softmax over rows of a (N, K) tensor.
Tensor softmax_rows(const Tensor& logits);

// As softmax_rows, writing into `probs` (Tensor::reset — reuses capacity).
// `probs` must not alias `logits`.
void softmax_rows_into(const Tensor& logits, Tensor& probs);

// One row of the same computation, allocation-free: softmax of logits[0, k)
// into out[0, k). `out` MAY alias `logits` (in-place). softmax_rows and
// softmax_rows_into route every row through this function, so a caller
// computing rows directly into preallocated storage (the accelerator's lane
// arena) is bit-identical to softmax_rows by construction.
void softmax_row(const float* logits, float* out, int classes);

}  // namespace bnn::nn

#endif  // BNN_NN_ACTIVATIONS_H
