// Structural layers: residual addition (the paper's Shortcut/SC functional
// unit stage) and flattening.
#ifndef BNN_NN_ELEMENTWISE_H
#define BNN_NN_ELEMENTWISE_H

#include "nn/layer.h"

namespace bnn::nn {

// Two-input elementwise addition; realizes residual shortcuts.
class Add final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::add; }

  Tensor forward(const Tensor& x) override;  // throws: Add needs two inputs
  Tensor forward2(const Tensor& a, const Tensor& b) override;
  void forward2_into(const Tensor& a, const Tensor& b, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;  // throws
  std::pair<Tensor, Tensor> backward2(const Tensor& grad_out) override;

  std::vector<int> out_shape(const std::vector<int>& in_shape) const override {
    return in_shape;
  }
};

// (N, C, H, W) -> (N, C*H*W); identity on already-2-D input.
class Flatten final : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::flatten; }

  Tensor forward(const Tensor& x) override;
  void forward_into(const Tensor& x, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;

 private:
  std::vector<int> cached_in_shape_;
};

}  // namespace bnn::nn

#endif  // BNN_NN_ELEMENTWISE_H
