#include "nn/network.h"

#include "nn/dropout.h"
#include "util/check.h"

namespace bnn::nn {

Network::Network() {
  nodes_.push_back(Node{});  // input pseudo-node
}

Network::NodeId Network::add(std::unique_ptr<Layer> layer, NodeId input) {
  util::require(layer != nullptr, "network: null layer");
  util::require(input >= 0 && input < num_nodes(), "network: unknown input node");
  nodes_.push_back(Node{std::move(layer), {input}});
  return num_nodes() - 1;
}

Network::NodeId Network::add(std::unique_ptr<Layer> layer, NodeId input_a, NodeId input_b) {
  util::require(layer != nullptr, "network: null layer");
  util::require(input_a >= 0 && input_a < num_nodes(), "network: unknown input node");
  util::require(input_b >= 0 && input_b < num_nodes(), "network: unknown input node");
  nodes_.push_back(Node{std::move(layer), {input_a, input_b}});
  return num_nodes() - 1;
}

Layer* Network::layer(NodeId id) {
  util::require(id >= 0 && id < num_nodes(), "network: node id out of range");
  return nodes_[static_cast<std::size_t>(id)].layer.get();
}

const Layer* Network::layer(NodeId id) const {
  util::require(id >= 0 && id < num_nodes(), "network: node id out of range");
  return nodes_[static_cast<std::size_t>(id)].layer.get();
}

const std::vector<Network::NodeId>& Network::inputs_of(NodeId id) const {
  util::require(id >= 1 && id < num_nodes(), "network: node id out of range");
  return nodes_[static_cast<std::size_t>(id)].inputs;
}

Tensor Network::run_node(NodeId id) {
  Node& node = nodes_[static_cast<std::size_t>(id)];
  if (node.inputs.size() == 1)
    return node.layer->forward(activations_[static_cast<std::size_t>(node.inputs[0])]);
  return node.layer->forward2(activations_[static_cast<std::size_t>(node.inputs[0])],
                              activations_[static_cast<std::size_t>(node.inputs[1])]);
}

Tensor Network::forward(const Tensor& x) {
  util::require(num_nodes() > 1, "network: no layers");
  activations_.assign(static_cast<std::size_t>(num_nodes()), Tensor{});
  activations_[0] = x;
  for (NodeId id = 1; id < num_nodes(); ++id)
    activations_[static_cast<std::size_t>(id)] = run_node(id);
  has_forward_ = true;
  return activations_.back();
}

Tensor Network::replay_from(NodeId first_node) {
  util::require(has_forward_, "network: replay_from requires a prior forward");
  util::require(first_node >= 1 && first_node < num_nodes(),
                "network: replay start out of range");
  for (NodeId id = first_node; id < num_nodes(); ++id)
    activations_[static_cast<std::size_t>(id)] = run_node(id);
  return activations_.back();
}

void Network::prepare_replay(const Tensor& x, NodeId first_node) {
  util::require(num_nodes() > 1, "network: no layers");
  util::require(first_node >= 1 && first_node < num_nodes(),
                "network: replay start out of range");
  activations_.assign(static_cast<std::size_t>(num_nodes()), Tensor{});
  activations_[0] = x;
  for (NodeId id = 1; id < first_node; ++id) {
    util::require(!nodes_[static_cast<std::size_t>(id)].layer->training(),
                  "network: prepare_replay requires eval mode");
    activations_[static_cast<std::size_t>(id)] = run_node(id);
  }
  has_forward_ = true;
}

Tensor Network::replay_suffix(NodeId first_node,
                              const std::vector<MaskSource*>& site_masks) const {
  return replay_suffix_row(first_node, site_masks, /*row=*/-1);
}

Network::ReplayRowCache::ReplayRowCache(int num_nodes)
    : rows_(static_cast<std::size_t>(num_nodes)),
      once_(new std::once_flag[static_cast<std::size_t>(num_nodes)]) {}

Tensor Network::replay_suffix_row(NodeId first_node,
                                  const std::vector<MaskSource*>& site_masks,
                                  int row, ReplayRowCache* cache,
                                  ReplayArena* arena) const {
  util::require(has_forward_, "network: replay_suffix requires a prior forward");
  util::require(first_node >= 1 && first_node < num_nodes(),
                "network: replay start out of range");
  util::require(site_masks.size() == static_cast<std::size_t>(num_nodes()),
                "network: site_masks must carry one entry per node");
  util::require(cache == nullptr ||
                    cache->rows_.size() == static_cast<std::size_t>(num_nodes()),
                "network: replay cache sized for a different network");

  // Suffix output slots: the caller's arena (slots and their float storage
  // persist across calls, so each node's buffer stabilizes at its
  // high-water size) or call-local storage. Every slot is fully rewritten
  // before it is read — topological order — so stale arena contents never
  // leak into a replay.
  std::vector<Tensor> call_local;
  std::vector<Tensor>* slots = &call_local;
  if (arena) {
    arena->nodes_.resize(static_cast<std::size_t>(num_nodes()));
    slots = &arena->nodes_;
  } else {
    call_local.resize(static_cast<std::size_t>(num_nodes()));
  }
  std::vector<Tensor>& local = *slots;
  Tensor local_mask;
  Tensor& mask_scratch = arena ? arena->mask_ : local_mask;

  // Prefix reads: the whole retained activation (row < 0), or its single
  // batch row — cut once into the shared cache when one is supplied,
  // otherwise into call-local storage (still reused across shortcut
  // fan-out within this call).
  std::vector<Tensor> sliced(
      row < 0 || cache ? 0 : static_cast<std::size_t>(first_node));
  auto value_of = [this, first_node, row, cache, &local,
                   &sliced](NodeId id) -> const Tensor& {
    if (id >= first_node) return local[static_cast<std::size_t>(id)];
    if (row < 0) return activations_[static_cast<std::size_t>(id)];
    if (cache) {
      Tensor& shared = cache->rows_[static_cast<std::size_t>(id)];
      std::call_once(cache->once_[static_cast<std::size_t>(id)], [&] {
        shared = activations_[static_cast<std::size_t>(id)].batch_row(row);
      });
      return shared;
    }
    Tensor& slice = sliced[static_cast<std::size_t>(id)];
    if (slice.empty()) slice = activations_[static_cast<std::size_t>(id)].batch_row(row);
    return slice;
  };

  for (NodeId id = first_node; id < num_nodes(); ++id) {
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    Layer* layer = node.layer.get();
    util::require(!layer->training(), "network: replay_suffix requires eval mode");
    Tensor& out = local[static_cast<std::size_t>(id)];
    if (layer->kind() == LayerKind::mc_dropout) {
      const auto* site = static_cast<const McDropout*>(layer);
      const Tensor& x = value_of(node.inputs[0]);
      if (!site->active()) {
        out = x;  // inactive site is the identity (capacity-reusing copy)
        continue;
      }
      MaskSource* masks = site_masks[static_cast<std::size_t>(id)];
      util::require(masks != nullptr, "network: active site replayed without a mask source");
      draw_mc_dropout_mask_into(x.size(0), x.size(1), *masks, site->p(), mask_scratch);
      apply_mc_dropout_mask_into(x, mask_scratch, out);
    } else if (node.inputs.size() == 1) {
      layer->forward_into(value_of(node.inputs[0]), out);
    } else {
      layer->forward2_into(value_of(node.inputs[0]), value_of(node.inputs[1]), out);
    }
  }
  // Moving the back slot steals that one buffer from the arena (it regrows
  // next call); every other node's storage stays put for reuse.
  return std::move(local.back());
}

Tensor Network::backward(const Tensor& grad_out) {
  util::require(has_forward_, "network: backward requires a prior forward");
  std::vector<Tensor> grads(static_cast<std::size_t>(num_nodes()));
  grads.back() = grad_out;

  auto accumulate = [&grads](NodeId id, Tensor&& grad) {
    Tensor& slot = grads[static_cast<std::size_t>(id)];
    if (slot.empty())
      slot = std::move(grad);
    else
      slot.add_(grad);
  };

  for (NodeId id = num_nodes() - 1; id >= 1; --id) {
    Tensor& grad = grads[static_cast<std::size_t>(id)];
    if (grad.empty()) continue;  // node does not influence the output
    Node& node = nodes_[static_cast<std::size_t>(id)];
    if (node.inputs.size() == 1) {
      accumulate(node.inputs[0], node.layer->backward(grad));
    } else {
      auto [ga, gb] = node.layer->backward2(grad);
      accumulate(node.inputs[0], std::move(ga));
      accumulate(node.inputs[1], std::move(gb));
    }
    grad = Tensor{};  // free as we go
  }
  util::ensure(!grads[0].empty(), "network: input received no gradient");
  return grads[0];
}

void Network::set_training(bool training) {
  for (NodeId id = 1; id < num_nodes(); ++id)
    nodes_[static_cast<std::size_t>(id)].layer->set_training(training);
}

void Network::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::vector<Param*> Network::params() {
  std::vector<Param*> out;
  for (NodeId id = 1; id < num_nodes(); ++id)
    for (Param* p : nodes_[static_cast<std::size_t>(id)].layer->params()) out.push_back(p);
  return out;
}

std::vector<Network::NodeId> Network::find_nodes(LayerKind kind) const {
  std::vector<NodeId> out;
  for (NodeId id = 1; id < num_nodes(); ++id)
    if (nodes_[static_cast<std::size_t>(id)].layer->kind() == kind) out.push_back(id);
  return out;
}

std::vector<std::vector<int>> Network::infer_shapes(const std::vector<int>& in_shape) const {
  std::vector<std::vector<int>> shapes(static_cast<std::size_t>(num_nodes()));
  shapes[0] = in_shape;
  for (NodeId id = 1; id < num_nodes(); ++id) {
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    // Shape inference uses the first input; Add requires equal shapes anyway.
    shapes[static_cast<std::size_t>(id)] =
        node.layer->out_shape(shapes[static_cast<std::size_t>(node.inputs[0])]);
  }
  return shapes;
}

std::vector<int> Network::output_shape(const std::vector<int>& in_shape) const {
  return infer_shapes(in_shape).back();
}

std::int64_t Network::total_macs(const std::vector<int>& in_shape) const {
  const auto shapes = infer_shapes(in_shape);
  std::int64_t total = 0;
  for (NodeId id = 1; id < num_nodes(); ++id) {
    const Node& node = nodes_[static_cast<std::size_t>(id)];
    total += node.layer->macs(shapes[static_cast<std::size_t>(node.inputs[0])]);
  }
  return total;
}

const Tensor& Network::activation(NodeId id) const {
  util::require(has_forward_, "network: no retained activations");
  util::require(id >= 0 && id < num_nodes(), "network: node id out of range");
  return activations_[static_cast<std::size_t>(id)];
}

}  // namespace bnn::nn
