// Bit-plane primitives of the packed binary/ternary kernel tier (see
// nn/gemm_kernels.h for the Tier enum and docs/ARCHITECTURE.md for the
// tier-selection rules).
//
// Layout: an activation row of `len` int8 terms is packed into
// ceil(len / 64) little-endian 64-bit words, one bit per term — bit t of
// the plane is (x[t] == hi) for a two-valued activation tensor {lo, hi}.
// Tail bits past `len` are always ZERO; every popcount identity below
// relies on that (an XOR against a weight mask whose tail is also zero
// contributes nothing), so packers must clear the last partial word.
//
// Exactness: these are integer bit-counting kernels — no rounding anywhere.
// The composed inner product (quant/qplan.h packed_row_dot) equals the int8
// dot_i8_zp result exactly whenever its preconditions hold, which is the
// bit-identity contract of the bitpack tier (hard-gated by
// tests/test_bitpack.cpp and the bench.bitpack_smoke ctest entry).
#ifndef BNN_NN_BITPACK_KERNELS_H
#define BNN_NN_BITPACK_KERNELS_H

#include <cstdint>

namespace bnn::nn::kernels {

inline constexpr int kBitWordBits = 64;

// Packed words needed for a row of `len` terms.
inline int bit_words(int len) { return (len + kBitWordBits - 1) / kBitWordBits; }

// Reads bit t of a packed plane (test/reference helper).
inline bool get_bit(const std::uint64_t* bits, int t) {
  return ((bits[t / kBitWordBits] >> (t % kBitWordBits)) & 1ull) != 0;
}

// Packs bits[t] = (x[t] == hi) for t in [0, len); clears tail bits.
// Returns the popcount of the packed plane.
std::int32_t pack_eq_bits(const std::int8_t* x, int len, std::int8_t hi, std::uint64_t* out);

// Gather form: term t reads x[offsets[t]] (the hoisted conv window offsets;
// callers guarantee every offset is in bounds — interior positions only).
std::int32_t pack_eq_bits_gather(const std::int8_t* x, const std::int32_t* offsets, int len,
                                 std::int8_t hi, std::uint64_t* out);

// Total set bits of a plane.
std::int32_t popcount_words(const std::uint64_t* a, int words);

// popcount(a ^ b): the binary-tier XNOR inner product core (Hamming
// distance between the activation plane and a weight sign plane).
std::int32_t popcount_xor(const std::uint64_t* a, const std::uint64_t* b, int words);

// popcount(a & b).
std::int32_t popcount_and(const std::uint64_t* a, const std::uint64_t* b, int words);

// Fused ternary form: *pb = popcount(x & plus), *mb = popcount(x & minus)
// in one pass over the planes (the pass/negate/zero weight encoding).
void popcount_and2(const std::uint64_t* x, const std::uint64_t* plus,
                   const std::uint64_t* minus, int words, std::int32_t* pb, std::int32_t* mb);

}  // namespace bnn::nn::kernels

#endif  // BNN_NN_BITPACK_KERNELS_H
