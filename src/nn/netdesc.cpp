#include "nn/netdesc.h"

#include <algorithm>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/gemm.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "util/check.h"

namespace bnn::nn {

int NetworkDesc::num_sites() const {
  int count = 0;
  for (const HwLayer& layer : layers) count += layer.is_bayes_site ? 1 : 0;
  return count;
}

std::int64_t NetworkDesc::total_macs() const {
  std::int64_t total = 0;
  for (const HwLayer& layer : layers) total += layer.macs();
  return total;
}

std::int64_t NetworkDesc::total_weight_count() const {
  std::int64_t total = 0;
  for (const HwLayer& layer : layers) total += layer.weight_count();
  return total;
}

int NetworkDesc::cut_layer_for(int bayes_layers) const {
  const int sites = num_sites();
  util::require(bayes_layers >= 0 && bayes_layers <= sites,
                "cut_layer_for: bayes_layers out of range");
  if (bayes_layers == 0) return num_layers() - 1;
  const int first_active_site = sites - bayes_layers;
  int seen = 0;
  for (int i = 0; i < num_layers(); ++i) {
    if (!layers[static_cast<std::size_t>(i)].is_bayes_site) continue;
    if (seen == first_active_site) return i;
    ++seen;
  }
  util::ensure(false, "cut_layer_for: site bookkeeping inconsistent");
  return -1;
}

std::int64_t NetworkDesc::max_input_elems() const {
  std::int64_t best = 0;
  for (const HwLayer& layer : layers) best = std::max(best, layer.in_elems());
  return best;
}

std::int64_t NetworkDesc::max_filter_weight_elems() const {
  std::int64_t best = 0;
  for (const HwLayer& layer : layers)
    best = std::max(best, static_cast<std::int64_t>(layer.in_c) * layer.kernel * layer.kernel);
  return best;
}

int NetworkDesc::max_out_channels() const {
  int best = 0;
  for (const HwLayer& layer : layers) best = std::max(best, layer.out_c);
  return best;
}

NetworkDesc describe_network(const Network& net, const std::vector<int>& chw_input,
                             const std::string& name, int num_classes) {
  util::require(chw_input.size() == 3, "describe_network expects a {C,H,W} input shape");
  NetworkDesc desc;
  desc.name = name;
  desc.input_shape = chw_input;
  desc.num_classes = num_classes;

  const std::vector<int> batched{1, chw_input[0], chw_input[1], chw_input[2]};
  const auto shapes = net.infer_shapes(batched);

  int site_counter = 0;
  for (Network::NodeId id = 1; id < net.num_nodes(); ++id) {
    const Layer* layer = net.layer(id);
    const std::vector<int>& in_shape =
        shapes[static_cast<std::size_t>(net.inputs_of(id)[0])];
    const std::vector<int>& out_shape = shapes[static_cast<std::size_t>(id)];

    switch (layer->kind()) {
      case LayerKind::conv2d: {
        const auto* conv = static_cast<const Conv2d*>(layer);
        HwLayer hw;
        hw.label = "conv" + std::to_string(desc.layers.size());
        hw.op = HwLayer::Op::conv;
        hw.in_c = in_shape[1];
        hw.in_h = in_shape[2];
        hw.in_w = in_shape[3];
        hw.out_c = out_shape[1];
        hw.conv_out_h = out_shape[2];
        hw.conv_out_w = out_shape[3];
        hw.out_h = out_shape[2];
        hw.out_w = out_shape[3];
        hw.kernel = conv->kernel();
        hw.stride = conv->stride();
        hw.pad = conv->pad();
        hw.has_bias = conv->has_bias();
        desc.layers.push_back(hw);
        break;
      }
      case LayerKind::linear: {
        const auto* linear = static_cast<const Linear*>(layer);
        HwLayer hw;
        hw.label = "fc" + std::to_string(desc.layers.size());
        hw.op = HwLayer::Op::linear;
        hw.in_c = linear->in_features();
        hw.out_c = linear->out_features();
        hw.has_bias = linear->has_bias();
        desc.layers.push_back(hw);
        break;
      }
      case LayerKind::batch_norm:
        util::require(!desc.layers.empty(), "describe_network: BN before any conv/linear");
        desc.layers.back().has_bn = true;
        break;
      case LayerKind::relu:
        util::require(!desc.layers.empty(), "describe_network: ReLU before any conv/linear");
        desc.layers.back().has_relu = true;
        break;
      case LayerKind::quadratic:
        // Polynomial activation (BYNQNet substrate): same PE cost, executed
        // in place of ReLU in that design's functional unit; no flag needed
        // for the cycle model.
        util::require(!desc.layers.empty(),
                      "describe_network: activation before any conv/linear");
        break;
      case LayerKind::max_pool:
      case LayerKind::avg_pool: {
        util::require(!desc.layers.empty(), "describe_network: pool before any conv/linear");
        HwLayer& hw = desc.layers.back();
        if (layer->kind() == LayerKind::max_pool) {
          const auto* pool = static_cast<const MaxPool2d*>(layer);
          hw.pool_kernel = pool->kernel();
          hw.pool_stride = pool->stride();
          hw.pool_is_max = true;
        } else {
          const auto* pool = static_cast<const AvgPool2d*>(layer);
          hw.pool_kernel = pool->kernel();
          hw.pool_stride = pool->stride();
          hw.pool_is_max = false;
        }
        hw.out_h = out_shape[2];
        hw.out_w = out_shape[3];
        break;
      }
      case LayerKind::global_avg_pool: {
        util::require(!desc.layers.empty(), "describe_network: pool before any conv/linear");
        HwLayer& hw = desc.layers.back();
        hw.pool_is_global = true;
        hw.pool_is_max = false;
        hw.out_h = 1;
        hw.out_w = 1;
        break;
      }
      case LayerKind::add:
        util::require(!desc.layers.empty(), "describe_network: add before any conv/linear");
        desc.layers.back().has_shortcut = true;
        break;
      case LayerKind::mc_dropout:
        util::require(!desc.layers.empty(), "describe_network: dropout before any conv/linear");
        desc.layers.back().is_bayes_site = true;
        desc.layers.back().site_index = site_counter++;
        break;
      case LayerKind::flatten:
      case LayerKind::softmax:
        break;  // host-side bookkeeping, no hardware pass
    }
  }
  return desc;
}

namespace {

HwLayer make_conv_desc(const std::string& label, int in_c, int in_h, int in_w, int out_c,
                       int kernel, int stride, int pad, bool bn, bool relu) {
  HwLayer hw;
  hw.label = label;
  hw.op = HwLayer::Op::conv;
  hw.in_c = in_c;
  hw.in_h = in_h;
  hw.in_w = in_w;
  hw.out_c = out_c;
  hw.kernel = kernel;
  hw.stride = stride;
  hw.pad = pad;
  hw.conv_out_h = conv_out_extent(in_h, kernel, stride, pad);
  hw.conv_out_w = conv_out_extent(in_w, kernel, stride, pad);
  hw.out_h = hw.conv_out_h;
  hw.out_w = hw.conv_out_w;
  hw.has_bias = false;  // conv+BN layers carry no separate bias
  hw.has_bn = bn;
  hw.has_relu = relu;
  return hw;
}

}  // namespace

NetworkDesc describe_resnet101(int image_size, int num_classes) {
  NetworkDesc desc;
  desc.name = "resnet101";
  desc.input_shape = {3, image_size, image_size};
  desc.num_classes = num_classes;

  int site = 0;
  auto push = [&desc, &site](HwLayer hw, bool is_site) {
    if (is_site) {
      hw.is_bayes_site = true;
      hw.site_index = site++;
    }
    desc.layers.push_back(hw);
  };

  // Stem: 7x7/2 conv + BN + ReLU + 3x3/2 max pool.
  HwLayer stem = make_conv_desc("stem", 3, image_size, image_size, 64, 7, 2, 3, true, true);
  stem.pool_kernel = 3;
  stem.pool_stride = 2;
  stem.pool_is_max = true;
  stem.out_h = (stem.conv_out_h - 1) / 2;  // 3x3/2 pool with pad 1: halves the map
  stem.out_w = (stem.conv_out_w - 1) / 2;
  push(stem, true);

  // Bottleneck stages: {blocks, width} with expansion 4.
  const int stage_blocks[4] = {3, 4, 23, 3};
  const int stage_width[4] = {64, 128, 256, 512};
  int h = stem.out_h;
  int w = stem.out_w;
  int in_c = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const int width = stage_width[stage];
    const int out_c = width * 4;
    for (int block = 0; block < stage_blocks[stage]; ++block) {
      const int stride = (stage > 0 && block == 0) ? 2 : 1;
      const std::string base =
          "s" + std::to_string(stage + 1) + "b" + std::to_string(block + 1);
      push(make_conv_desc(base + "_reduce", in_c, h, w, width, 1, 1, 0, true, true), true);
      const int mid_h = h;
      const int mid_w = w;
      push(make_conv_desc(base + "_3x3", width, mid_h, mid_w, width, 3, stride, 1, true, true),
           true);
      h = conv_out_extent(mid_h, 3, stride, 1);
      w = conv_out_extent(mid_w, 3, stride, 1);
      if (block == 0) {
        // Projection shortcut for the stage transition.
        push(make_conv_desc(base + "_proj", in_c, mid_h, mid_w, out_c, 1, stride, 0, true,
                            false),
             true);
      }
      HwLayer expand = make_conv_desc(base + "_expand", width, h, w, out_c, 1, 1, 0, true, true);
      expand.has_shortcut = true;
      push(expand, true);
      in_c = out_c;
    }
  }

  // Head: global average pool folds into the last conv pass in our schedule,
  // so model it as a standalone linear layer on the pooled vector.
  HwLayer fc;
  fc.label = "fc";
  fc.op = HwLayer::Op::linear;
  fc.in_c = in_c;
  fc.out_c = num_classes;
  fc.has_bias = true;
  push(fc, true);

  // Apply the GAP to the previous layer's stored output.
  HwLayer& last_conv = desc.layers[desc.layers.size() - 2];
  last_conv.pool_is_global = true;
  last_conv.pool_is_max = false;
  last_conv.out_h = 1;
  last_conv.out_w = 1;
  return desc;
}

NetworkDesc describe_mlp3(int in_features, int hidden, int num_classes) {
  NetworkDesc desc;
  desc.name = "mlp3";
  desc.input_shape = {in_features, 1, 1};
  desc.num_classes = num_classes;
  int site = 0;
  auto linear = [&site](const std::string& label, int in, int out, bool relu) {
    HwLayer hw;
    hw.label = label;
    hw.op = HwLayer::Op::linear;
    hw.in_c = in;
    hw.out_c = out;
    hw.has_bias = true;
    hw.has_relu = relu;
    hw.is_bayes_site = true;
    hw.site_index = site++;
    return hw;
  };
  desc.layers.push_back(linear("fc1", in_features, hidden, true));
  desc.layers.push_back(linear("fc2", hidden, hidden, true));
  desc.layers.push_back(linear("fc3", hidden, num_classes, false));
  return desc;
}

}  // namespace bnn::nn
