#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "nn/batchnorm.h"
#include "util/check.h"

namespace bnn::nn {

namespace {

constexpr std::uint32_t magic = 0x424E4E57;  // "BNNW"

// All mutable tensors of the model in a deterministic order.
std::vector<Tensor*> state_tensors(Model& model) {
  std::vector<Tensor*> tensors;
  Network& net = model.net();
  for (Network::NodeId id = 1; id < net.num_nodes(); ++id) {
    Layer* layer = net.layer(id);
    for (Param* param : layer->params()) tensors.push_back(&param->value);
    if (layer->kind() == LayerKind::batch_norm) {
      auto* bn = static_cast<BatchNorm2d*>(layer);
      tensors.push_back(&bn->running_mean());
      tensors.push_back(&bn->running_var());
    }
  }
  return tensors;
}

}  // namespace

void save_model_state(Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  util::require(out.good(), "save_model_state: cannot open " + path);

  const std::vector<Tensor*> tensors = state_tensors(model);
  const auto count = static_cast<std::uint32_t>(tensors.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (Tensor* tensor : tensors) {
    const auto numel = static_cast<std::uint64_t>(tensor->numel());
    out.write(reinterpret_cast<const char*>(&numel), sizeof(numel));
    out.write(reinterpret_cast<const char*>(tensor->data()),
              static_cast<std::streamsize>(sizeof(float) * numel));
  }
  util::ensure(out.good(), "save_model_state: write failed for " + path);
}

bool load_model_state(Model& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;

  std::uint32_t file_magic = 0;
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&file_magic), sizeof(file_magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good() || file_magic != magic) return false;

  const std::vector<Tensor*> tensors = state_tensors(model);
  if (count != tensors.size()) return false;

  // Stage into temporaries first so a short file cannot half-update.
  std::vector<std::vector<float>> staged(tensors.size());
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    std::uint64_t numel = 0;
    in.read(reinterpret_cast<char*>(&numel), sizeof(numel));
    if (!in.good() || numel != static_cast<std::uint64_t>(tensors[i]->numel())) return false;
    staged[i].resize(numel);
    in.read(reinterpret_cast<char*>(staged[i].data()),
            static_cast<std::streamsize>(sizeof(float) * numel));
    util::require(in.good(), "load_model_state: truncated file " + path);
  }
  for (std::size_t i = 0; i < tensors.size(); ++i)
    std::copy(staged[i].begin(), staged[i].end(), tensors[i]->data());
  return true;
}

}  // namespace bnn::nn
