#include "nn/conv2d.h"

#include <cmath>

#include "nn/gemm.h"
#include "util/check.h"

namespace bnn::nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad, bool has_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(has_bias) {
  util::require(in_channels > 0 && out_channels > 0, "conv2d: channels must be positive");
  util::require(kernel >= 1 && stride >= 1 && pad >= 0, "conv2d: bad geometry");
  weight_.value = Tensor({out_channels_, in_channels_, kernel_, kernel_});
  if (has_bias_) bias_.value = Tensor({out_channels_});
}

void Conv2d::init_kaiming(util::Rng& rng) {
  const double fan_in = static_cast<double>(in_channels_) * kernel_ * kernel_;
  const double stddev = std::sqrt(2.0 / fan_in);
  for (std::int64_t i = 0; i < weight_.value.numel(); ++i)
    weight_.value[i] = static_cast<float>(rng.normal(0.0, stddev));
  if (has_bias_) bias_.value.fill(0.0f);
}

std::vector<int> Conv2d::out_shape(const std::vector<int>& in_shape) const {
  util::require(in_shape.size() == 4, "conv2d expects NCHW input");
  util::require(in_shape[1] == in_channels_, "conv2d: channel mismatch");
  const int out_h = conv_out_extent(in_shape[2], kernel_, stride_, pad_);
  const int out_w = conv_out_extent(in_shape[3], kernel_, stride_, pad_);
  return {in_shape[0], out_channels_, out_h, out_w};
}

std::int64_t Conv2d::macs(const std::vector<int>& in_shape) const {
  const std::vector<int> out = out_shape(in_shape);
  return static_cast<std::int64_t>(in_shape[0]) * out_channels_ * in_channels_ * kernel_ *
         kernel_ * out[2] * out[3];
}

void Conv2d::forward_into(const Tensor& x, Tensor& y) {
  const std::vector<int> out_dims = out_shape(x.shape());
  const int batch = x.size(0);
  const int in_h = x.size(2);
  const int in_w = x.size(3);
  const int out_h = out_dims[2];
  const int out_w = out_dims[3];
  const int patch = in_channels_ * kernel_ * kernel_;
  const int positions = out_h * out_w;

  y.reset(out_dims);
  // Per-thread im2col scratch: the replay arena path calls forward_into for
  // every (image, sample) pair, and this buffer dominates the per-call
  // allocations. im2col writes every element (padding included), so reuse
  // across calls — and across Conv2d instances on this thread — is safe.
  thread_local std::vector<float> columns;
  columns.resize(static_cast<std::size_t>(patch) * positions);
  for (int n = 0; n < batch; ++n) {
    im2col(x.data() + x.index4(n, 0, 0, 0), in_channels_, in_h, in_w, kernel_, stride_, pad_,
           out_h, out_w, columns.data());
    gemm(out_channels_, positions, patch, weight_.value.data(), columns.data(),
         y.data() + y.index4(n, 0, 0, 0), /*accumulate=*/false);
    if (has_bias_) {
      for (int f = 0; f < out_channels_; ++f) {
        float* plane = y.data() + y.index4(n, f, 0, 0);
        const float b = bias_.value[f];
        for (int i = 0; i < positions; ++i) plane[i] += b;
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& x) {
  Tensor y;
  forward_into(x, y);
  if (training_) cached_input_ = x;
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  util::ensure(!cached_input_.empty(), "conv2d backward without cached forward");
  const Tensor& x = cached_input_;
  const int batch = x.size(0);
  const int in_h = x.size(2);
  const int in_w = x.size(3);
  const int out_h = grad_out.size(2);
  const int out_w = grad_out.size(3);
  const int patch = in_channels_ * kernel_ * kernel_;
  const int positions = out_h * out_w;

  if (!weight_.grad.same_shape(weight_.value)) weight_.zero_grad();
  if (has_bias_ && !bias_.grad.same_shape(bias_.value)) bias_.zero_grad();

  Tensor grad_in(x.shape());
  std::vector<float> columns(static_cast<std::size_t>(patch) * positions);
  std::vector<float> grad_columns(static_cast<std::size_t>(patch) * positions);
  for (int n = 0; n < batch; ++n) {
    im2col(x.data() + x.index4(n, 0, 0, 0), in_channels_, in_h, in_w, kernel_, stride_, pad_,
           out_h, out_w, columns.data());
    const float* dy = grad_out.data() + grad_out.index4(n, 0, 0, 0);
    // dW[F, patch] += dY[F, positions] * col[patch, positions]^T
    gemm_bt(out_channels_, patch, positions, dy, columns.data(), weight_.grad.data(),
            /*accumulate=*/true);
    // dcol[patch, positions] = W[F, patch]^T * dY[F, positions]
    gemm_at(patch, positions, out_channels_, weight_.value.data(), dy, grad_columns.data(),
            /*accumulate=*/false);
    col2im(grad_columns.data(), in_channels_, in_h, in_w, kernel_, stride_, pad_, out_h, out_w,
           grad_in.data() + grad_in.index4(n, 0, 0, 0));
    if (has_bias_) {
      for (int f = 0; f < out_channels_; ++f) {
        const float* plane = dy + static_cast<std::size_t>(f) * positions;
        float acc = 0.0f;
        for (int i = 0; i < positions; ++i) acc += plane[i];
        bias_.grad[f] += acc;
      }
    }
  }
  return grad_in;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

}  // namespace bnn::nn
