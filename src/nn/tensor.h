// Dense float32 tensor, row-major contiguous, NCHW convention for 4-D data.
//
// This is the numeric workhorse of the float reference path (training and
// the software BNN baseline). It is deliberately a concrete regular type:
// value semantics, no views, no lazy evaluation — the hardware-simulator
// path has its own int8 QTensor in src/quant.
#ifndef BNN_NN_TENSOR_H
#define BNN_NN_TENSOR_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.h"

namespace bnn::nn {

class Tensor {
 public:
  Tensor() = default;
  // Allocates zero-initialized storage of the given shape.
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape);
  static Tensor full(std::vector<int> shape, float value);
  static Tensor randn(std::vector<int> shape, util::Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  static Tensor uniform(std::vector<int> shape, util::Rng& rng, float lo, float hi);
  // Builds a 1-D tensor from explicit values (test convenience).
  static Tensor from_values(std::vector<int> shape, std::vector<float> values);

  int dim() const { return static_cast<int>(shape_.size()); }
  const std::vector<int>& shape() const { return shape_; }
  // Size along `axis`; negative axes count from the back (Python-style).
  int size(int axis) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::int64_t flat_index) { return data_[static_cast<std::size_t>(flat_index)]; }
  float operator[](std::int64_t flat_index) const {
    return data_[static_cast<std::size_t>(flat_index)];
  }

  // Checked multi-dimensional accessors.
  float& at(std::initializer_list<int> index);
  float at(std::initializer_list<int> index) const;

  // Unchecked fast accessors for the hot loops.
  std::int64_t index4(int n, int c, int h, int w) const {
    return ((static_cast<std::int64_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }
  std::int64_t index2(int n, int f) const {
    return static_cast<std::int64_t>(n) * shape_[1] + f;
  }
  float& v4(int n, int c, int h, int w) { return data_[static_cast<std::size_t>(index4(n, c, h, w))]; }
  float v4(int n, int c, int h, int w) const {
    return data_[static_cast<std::size_t>(index4(n, c, h, w))];
  }
  float& v2(int n, int f) { return data_[static_cast<std::size_t>(index2(n, f))]; }
  float v2(int n, int f) const { return data_[static_cast<std::size_t>(index2(n, f))]; }

  // Returns a copy with a new shape of equal element count. One dimension may
  // be -1 (inferred).
  Tensor reshaped(std::vector<int> new_shape) const;

  // Reshapes IN PLACE to a shape of equal element count (no -1 inference,
  // no copy). The storage is untouched.
  void reshape_(std::vector<int> new_shape);

  // Re-targets this tensor to `new_shape`, reusing the existing float
  // storage when its capacity suffices (no allocation). Contents are
  // unspecified afterwards — callers must overwrite every element. This is
  // the allocation-free slot primitive of the replay arena
  // (nn::ReplayArena): a worker's per-node output tensors stabilize at
  // their high-water sizes instead of churning the allocator every sample.
  void reset(std::vector<int> new_shape);

  // Copy of batch row `n` with a leading dimension of 1 (shape {1, ...}).
  // Rows are contiguous under the row-major layout, so this is one memcpy;
  // the per-(image, sample) Monte Carlo lanes use it to read a single
  // image's slice of a batch-wide cached activation.
  Tensor batch_row(int n) const;

  void fill(float value);
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  // Elementwise in-place helpers.
  Tensor& add_(const Tensor& other);
  Tensor& scale_(float factor);

  // Reductions.
  float min() const;
  float max() const;
  float sum() const;
  float mean() const;

  // Largest absolute elementwise difference; shapes must match.
  float max_abs_diff(const Tensor& other) const;

  std::string shape_string() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

// Number of elements implied by a shape.
std::int64_t shape_numel(const std::vector<int>& shape);

}  // namespace bnn::nn

#endif  // BNN_NN_TENSOR_H
