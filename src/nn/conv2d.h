// 2-D convolution (NCHW, square kernel) via im2col + GEMM, with backprop.
#ifndef BNN_NN_CONV2D_H
#define BNN_NN_CONV2D_H

#include "nn/layer.h"

namespace bnn::nn {

class Conv2d final : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride = 1, int pad = 0,
         bool has_bias = true);

  LayerKind kind() const override { return LayerKind::conv2d; }

  // He/Kaiming-normal initialization (fan-in), biases zero.
  void init_kaiming(util::Rng& rng);

  Tensor forward(const Tensor& x) override;
  void forward_into(const Tensor& x, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;

  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;
  std::int64_t macs(const std::vector<int>& in_shape) const override;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }
  bool has_bias() const { return has_bias_; }

  // Weight tensor [F, C, K, K]; contiguous layout doubles as the row-major
  // [F, C*K*K] GEMM operand.
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }
  const Param& bias() const { return bias_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;  // retained in training mode for backward
};

}  // namespace bnn::nn

#endif  // BNN_NN_CONV2D_H
