#include "nn/dropout.h"

#include "util/check.h"

namespace bnn::nn {

McDropout::McDropout(double p, std::uint64_t seed) : p_(p), seed_(seed) {
  util::require(p >= 0.0 && p < 1.0, "mc_dropout: p must be in [0, 1)");
  owned_source_ = std::make_unique<RngMaskSource>(p_, util::Rng(seed_));
}

void McDropout::set_p(double p) {
  util::require(p >= 0.0 && p < 1.0, "mc_dropout: p must be in [0, 1)");
  if (p != p_) {
    p_ = p;
    owned_source_ = std::make_unique<RngMaskSource>(p_, util::Rng(seed_));
  }
}

void McDropout::reseed(std::uint64_t seed) {
  seed_ = seed;
  owned_source_ = std::make_unique<RngMaskSource>(p_, util::Rng(seed_));
}

MaskSource& McDropout::source() {
  return external_source_ != nullptr ? *external_source_ : *owned_source_;
}

void draw_mc_dropout_mask_into(int batch, int channels, MaskSource& source, double p,
                               Tensor& mask) {
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p));
  // One decision per (sample, channel), channel-minor so the order matches
  // the hardware sampler's filter-serial mask stream.
  mask.reset({batch, channels});
  for (int n = 0; n < batch; ++n)
    for (int c = 0; c < channels; ++c)
      mask.v2(n, c) = source.next_drop() ? 0.0f : keep_scale;
}

Tensor draw_mc_dropout_mask(int batch, int channels, MaskSource& source, double p) {
  Tensor mask;
  draw_mc_dropout_mask_into(batch, channels, source, p, mask);
  return mask;
}

void apply_mc_dropout_mask_into(const Tensor& x, const Tensor& mask, Tensor& y) {
  util::require(x.dim() == 4 || x.dim() == 2, "mc_dropout expects NCHW or (N, F) input");
  const int batch = x.size(0);
  const int channels = x.size(1);
  util::require(mask.dim() == 2 && mask.size(0) == batch && mask.size(1) == channels,
                "mc_dropout: mask shape must be (batch, channels)");
  y.reset(x.shape());
  if (x.dim() == 2) {
    for (int n = 0; n < batch; ++n)
      for (int c = 0; c < channels; ++c) y.v2(n, c) = x.v2(n, c) * mask.v2(n, c);
  } else {
    const int plane = x.size(2) * x.size(3);
    for (int n = 0; n < batch; ++n) {
      for (int c = 0; c < channels; ++c) {
        const float m = mask.v2(n, c);
        const float* src_plane = x.data() + x.index4(n, c, 0, 0);
        float* dst_plane = y.data() + y.index4(n, c, 0, 0);
        for (int i = 0; i < plane; ++i) dst_plane[i] = src_plane[i] * m;
      }
    }
  }
}

Tensor apply_mc_dropout_mask(const Tensor& x, const Tensor& mask) {
  Tensor y;
  apply_mc_dropout_mask_into(x, mask, y);
  return y;
}

Tensor McDropout::forward(const Tensor& x) {
  util::require(x.dim() == 4 || x.dim() == 2, "mc_dropout expects NCHW or (N, F) input");
  forward_was_active_ = active_;
  if (!active_) return x;
  mask_ = draw_mc_dropout_mask(x.size(0), x.size(1), source(), p_);
  return apply_mc_dropout_mask(x, mask_);
}

Tensor McDropout::backward(const Tensor& grad_out) {
  if (!forward_was_active_) return grad_out;
  util::ensure(!mask_.empty(), "mc_dropout backward without cached forward");
  const int batch = grad_out.size(0);
  const int channels = grad_out.size(1);
  Tensor grad_in(grad_out.shape());
  if (grad_out.dim() == 2) {
    for (int n = 0; n < batch; ++n)
      for (int c = 0; c < channels; ++c)
        grad_in.v2(n, c) = grad_out.v2(n, c) * mask_.v2(n, c);
  } else {
    const int plane = grad_out.size(2) * grad_out.size(3);
    for (int n = 0; n < batch; ++n) {
      for (int c = 0; c < channels; ++c) {
        const float m = mask_.v2(n, c);
        const float* src_plane = grad_out.data() + grad_out.index4(n, c, 0, 0);
        float* dst_plane = grad_in.data() + grad_in.index4(n, c, 0, 0);
        for (int i = 0; i < plane; ++i) dst_plane[i] = src_plane[i] * m;
      }
    }
  }
  return grad_in;
}

}  // namespace bnn::nn
