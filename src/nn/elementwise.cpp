#include "nn/elementwise.h"

#include "util/check.h"

namespace bnn::nn {

Tensor Add::forward(const Tensor& x) {
  (void)x;
  util::ensure(false, "add requires two inputs; use forward2");
  return {};
}

Tensor Add::forward2(const Tensor& a, const Tensor& b) {
  util::require(a.same_shape(b), "add: operand shape mismatch");
  Tensor y = a;
  y.add_(b);
  return y;
}

void Add::forward2_into(const Tensor& a, const Tensor& b, Tensor& out) {
  util::require(a.same_shape(b), "add: operand shape mismatch");
  // Copy-assign reuses out's capacity (vector copy assignment), then add in
  // place: same ascending-index sum order as forward2.
  out = a;
  out.add_(b);
}

Tensor Add::backward(const Tensor& grad_out) {
  (void)grad_out;
  util::ensure(false, "add requires two inputs; use backward2");
  return {};
}

std::pair<Tensor, Tensor> Add::backward2(const Tensor& grad_out) {
  return {grad_out, grad_out};
}

std::vector<int> Flatten::out_shape(const std::vector<int>& in_shape) const {
  util::require(!in_shape.empty(), "flatten: empty shape");
  int rest = 1;
  for (std::size_t i = 1; i < in_shape.size(); ++i) rest *= in_shape[i];
  return {in_shape[0], rest};
}

Tensor Flatten::forward(const Tensor& x) {
  if (training_) cached_in_shape_ = x.shape();
  return x.reshaped(out_shape(x.shape()));
}

void Flatten::forward_into(const Tensor& x, Tensor& out) {
  out = x;  // capacity-reusing copy assignment
  out.reshape_(out_shape(x.shape()));
}

Tensor Flatten::backward(const Tensor& grad_out) {
  util::ensure(!cached_in_shape_.empty(), "flatten backward without cached forward");
  return grad_out.reshaped(cached_in_shape_);
}

}  // namespace bnn::nn
