// Batch normalization over NCHW feature maps (per-channel statistics).
//
// Training mode normalizes with batch statistics and maintains running
// estimates; evaluation mode uses the running estimates, which is the affine
// y = a*x + b form the accelerator's Functional Unit implements.
#ifndef BNN_NN_BATCHNORM_H
#define BNN_NN_BATCHNORM_H

#include "nn/layer.h"

namespace bnn::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(int channels, float eps = 1e-5f, float momentum = 0.1f);

  LayerKind kind() const override { return LayerKind::batch_norm; }

  Tensor forward(const Tensor& x) override;
  // Eval mode only (replay path): normalizes with the running statistics.
  void forward_into(const Tensor& x, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;

  std::vector<int> out_shape(const std::vector<int>& in_shape) const override;

  int channels() const { return channels_; }
  float eps() const { return eps_; }

  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

  // Inference-time per-channel affine coefficients: y = scale*x + shift.
  // Only valid outside training (uses running statistics).
  void inference_affine(std::vector<float>& scale, std::vector<float>& shift) const;

 private:
  int channels_;
  float eps_;
  float momentum_;
  Param gamma_;
  Param beta_;
  Tensor running_mean_;
  Tensor running_var_;
  // Backward caches (training mode).
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
};

}  // namespace bnn::nn

#endif  // BNN_NN_BATCHNORM_H
