// Single-input DAG of layers executed in insertion (topological) order.
//
// The node list doubles as the layer-by-layer schedule the accelerator
// follows, and retained per-node activations enable `replay_from`, the
// software analogue of the paper's intermediate-layer caching: recompute
// only the stochastic suffix for each Monte Carlo sample.
#ifndef BNN_NN_NETWORK_H
#define BNN_NN_NETWORK_H

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace bnn::nn {

class MaskSource;

class Network {
 public:
  using NodeId = int;

  // The implicit network input behaves as node 0; real layers get ids >= 1.
  static constexpr NodeId input_id = 0;

  Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  // Appends a single-input layer; returns its node id. Inputs must refer to
  // already-added nodes (insertion order is the topological order).
  NodeId add(std::unique_ptr<Layer> layer, NodeId input);
  // Appends a two-input layer (Add).
  NodeId add(std::unique_ptr<Layer> layer, NodeId input_a, NodeId input_b);

  // Full forward pass; per-node activations are retained for replay_from /
  // backward. Returns the output of the last node.
  Tensor forward(const Tensor& x);

  // Recomputes nodes with id >= first_node using the activations retained by
  // the previous forward() for everything earlier. Stochastic layers draw
  // fresh masks, so repeated replays yield fresh Monte Carlo samples.
  Tensor replay_from(NodeId first_node);

  // Computes and retains only the activations replay_suffix(first_node, ..)
  // needs: the input plus nodes [1, first_node). Nodes from first_node on
  // are left empty instead of being computed and thrown away — this is the
  // IC prefix pass, without the wasted suffix of a full forward(). Requires
  // eval mode (stochastic prefix sites must be inactive so the retained
  // prefix is deterministic).
  void prepare_replay(const Tensor& x, NodeId first_node);

  // Stateless, thread-safe variant of replay_from for the parallel Monte
  // Carlo runner: recomputes nodes with id >= first_node into caller-local
  // scratch, reading the retained activations (shared, read-only) for
  // everything earlier. Active MCD sites draw their masks from
  // site_masks[node] (one entry per node, required non-null exactly at the
  // active sites being replayed) instead of the layers' own sources, so
  // concurrent replays on the same network never touch shared mutable
  // state. Requires eval mode; every non-stochastic layer's eval forward is
  // a pure function of its input and parameters.
  Tensor replay_suffix(NodeId first_node, const std::vector<MaskSource*>& site_masks) const;

  // Shared slice store for replay_suffix_row: each prefix node's row is
  // cut once (by whichever caller needs it first) and reused, so the S
  // samples of one image do not re-copy the same boundary rows. One
  // instance per (prepared input, row); safe to share across concurrent
  // replay_suffix_row calls for that row.
  class ReplayRowCache {
   public:
    explicit ReplayRowCache(int num_nodes);

   private:
    friend class Network;
    std::vector<Tensor> rows_;
    std::unique_ptr<std::once_flag[]> once_;
  };

  // Per-worker reusable scratch for replay_suffix_row: the node output
  // slots, the dropout-mask scratch, and the layer-internal buffers
  // (Layer::forward_into + Tensor::reset) all stabilize at their high-water
  // sizes, so a worker replaying a deep suffix (VGG-11/ResNet-18 at L = N)
  // stops churning the allocator once per node per sample. One arena per
  // worker (thread_local or pool-slot keyed) — it must NOT be shared by
  // concurrent replay calls. Results are bit-identical with and without an
  // arena (the in-place layer paths run the exact same arithmetic).
  class ReplayArena {
   public:
    ReplayArena() = default;

   private:
    friend class Network;
    std::vector<Tensor> nodes_;  // suffix output slot per node
    Tensor mask_;                // MCD mask scratch (one site at a time)
  };

  // As replay_suffix, but replays the suffix for ONE batch row of the
  // prepared input: retained prefix activations are read as their
  // (contiguous) row `row` slice, so the suffix runs on batch size 1. This
  // is the unit of the flattened (image, sample) Monte Carlo pair loop —
  // every pair replays exactly one image, whatever batch the prefix was
  // prepared with. `cache`, when non-null, shares the prefix slices across
  // calls for the same row. `arena`, when non-null, supplies this worker's
  // reusable scratch (see ReplayArena); output is bit-identical either
  // way. Same thread-safety contract as replay_suffix.
  Tensor replay_suffix_row(NodeId first_node, const std::vector<MaskSource*>& site_masks,
                           int row, ReplayRowCache* cache = nullptr,
                           ReplayArena* arena = nullptr) const;

  // Backpropagates grad_out (gradient w.r.t. the network output) through the
  // DAG; parameter gradients accumulate in each layer. Returns the gradient
  // w.r.t. the network input. Requires a forward() in training mode.
  Tensor backward(const Tensor& grad_out);

  void set_training(bool training);
  void zero_grad();
  std::vector<Param*> params();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  NodeId output_node() const { return num_nodes() - 1; }
  // nullptr for the input pseudo-node (id 0).
  Layer* layer(NodeId id);
  const Layer* layer(NodeId id) const;
  const std::vector<NodeId>& inputs_of(NodeId id) const;

  // Node ids of all layers of the given kind, in topological order.
  std::vector<NodeId> find_nodes(LayerKind kind) const;

  // Per-node output shapes for a given network input shape (index 0 is the
  // input itself).
  std::vector<std::vector<int>> infer_shapes(const std::vector<int>& in_shape) const;

  // Output shape of the whole network.
  std::vector<int> output_shape(const std::vector<int>& in_shape) const;

  // Total multiply-accumulates of one forward pass.
  std::int64_t total_macs(const std::vector<int>& in_shape) const;

  // Retained activation of a node from the last forward()/replay_from().
  const Tensor& activation(NodeId id) const;

 private:
  struct Node {
    std::unique_ptr<Layer> layer;  // null for the input pseudo-node
    std::vector<NodeId> inputs;
  };

  Tensor run_node(NodeId id);

  std::vector<Node> nodes_;
  std::vector<Tensor> activations_;
  bool has_forward_ = false;
};

}  // namespace bnn::nn

#endif  // BNN_NN_NETWORK_H
