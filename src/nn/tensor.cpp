#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.h"

namespace bnn::nn {

std::int64_t shape_numel(const std::vector<int>& shape) {
  std::int64_t n = 1;
  for (int s : shape) {
    util::require(s > 0, "tensor shape entries must be positive");
    n *= s;
  }
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0f);
}

Tensor Tensor::zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::uniform(std::vector<int> shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from_values(std::vector<int> shape, std::vector<float> values) {
  Tensor t(std::move(shape));
  util::require(static_cast<std::int64_t>(values.size()) == t.numel(),
                "from_values: element count does not match shape");
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::batch_row(int n) const {
  util::require(dim() >= 1, "batch_row: needs at least one dimension");
  util::require(n >= 0 && n < size(0), "batch_row: row out of range");
  std::vector<int> row_shape = shape_;
  row_shape[0] = 1;
  Tensor row(std::move(row_shape));
  const std::int64_t stride = numel() / size(0);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(n * stride),
            data_.begin() + static_cast<std::ptrdiff_t>((n + 1) * stride), row.data());
  return row;
}

int Tensor::size(int axis) const {
  const int d = dim();
  if (axis < 0) axis += d;
  util::require(axis >= 0 && axis < d, "tensor axis out of range");
  return shape_[static_cast<std::size_t>(axis)];
}

float& Tensor::at(std::initializer_list<int> index) {
  util::require(static_cast<int>(index.size()) == dim(), "at(): rank mismatch");
  std::int64_t flat = 0;
  int axis = 0;
  for (int i : index) {
    util::require(i >= 0 && i < shape_[static_cast<std::size_t>(axis)], "at(): index out of range");
    flat = flat * shape_[static_cast<std::size_t>(axis)] + i;
    ++axis;
  }
  return data_[static_cast<std::size_t>(flat)];
}

float Tensor::at(std::initializer_list<int> index) const {
  return const_cast<Tensor*>(this)->at(index);
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  // Resolve at most one -1 dimension.
  std::int64_t known = 1;
  int infer_axis = -1;
  for (std::size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      util::require(infer_axis == -1, "reshaped: more than one -1 dimension");
      infer_axis = static_cast<int>(i);
    } else {
      util::require(new_shape[i] > 0, "reshaped: dimensions must be positive or -1");
      known *= new_shape[i];
    }
  }
  if (infer_axis >= 0) {
    util::require(known != 0 && numel() % known == 0, "reshaped: cannot infer dimension");
    new_shape[static_cast<std::size_t>(infer_axis)] = static_cast<int>(numel() / known);
  }
  util::require(shape_numel(new_shape) == numel(), "reshaped: element count mismatch");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::reshape_(std::vector<int> new_shape) {
  util::require(shape_numel(new_shape) == numel(), "reshape_: element count mismatch");
  shape_ = std::move(new_shape);
}

void Tensor::reset(std::vector<int> new_shape) {
  const std::int64_t count = shape_numel(new_shape);
  shape_ = std::move(new_shape);
  // On a regrow past capacity, clear first so the vector does not copy the
  // stale contents into the new allocation.
  if (static_cast<std::int64_t>(data_.capacity()) < count) data_.clear();
  data_.resize(static_cast<std::size_t>(count));
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor& Tensor::add_(const Tensor& other) {
  util::require(same_shape(other), "add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float factor) {
  for (float& v : data_) v *= factor;
  return *this;
}

float Tensor::min() const {
  util::require(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  util::require(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0f); }

float Tensor::mean() const {
  util::require(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::max_abs_diff(const Tensor& other) const {
  util::require(same_shape(other), "max_abs_diff: shape mismatch");
  float worst = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  return worst;
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) out << 'x';
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace bnn::nn
