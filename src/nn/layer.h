// Layer abstraction for the float reference path.
//
// Layers are stateful objects owning their parameters and, while in training
// mode, the activations cached for backprop. The Network (network.h) wires
// them into a DAG; layers themselves are single-input except Add, which
// overrides the two-input entry points.
#ifndef BNN_NN_LAYER_H
#define BNN_NN_LAYER_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.h"

namespace bnn::nn {

// Learnable parameter: value plus (lazily allocated) gradient.
struct Param {
  Tensor value;
  Tensor grad;

  // Allocates/zeros the gradient to match the value's shape.
  void zero_grad() {
    if (!grad.same_shape(value)) grad = Tensor(value.shape());
    grad.fill(0.0f);
  }
};

enum class LayerKind {
  conv2d,
  linear,
  batch_norm,
  relu,
  quadratic,
  max_pool,
  avg_pool,
  global_avg_pool,
  flatten,
  add,
  mc_dropout,
  softmax,
};

// Human-readable name of a layer kind ("conv2d", "relu", ...).
std::string layer_kind_name(LayerKind kind);

class Layer {
 public:
  virtual ~Layer() = default;

  virtual LayerKind kind() const = 0;
  virtual std::string name() const { return layer_kind_name(kind()); }

  // Single-input forward. Two-input layers (Add) throw here.
  virtual Tensor forward(const Tensor& x) = 0;
  // Two-input forward; only Add implements it.
  virtual Tensor forward2(const Tensor& a, const Tensor& b);

  // Eval-mode forward writing into caller-owned storage: `out` is re-shaped
  // with Tensor::reset, which reuses its float capacity when large enough —
  // the allocation-free hot path of Network::replay_suffix_row's per-worker
  // replay arena. Exactly the same arithmetic as forward() (bit-identical
  // results); no training-mode caching happens. The default falls back to
  // `out = forward(x)` for layers without a dedicated in-place path. `out`
  // must not alias `x` (or `a`/`b`).
  virtual void forward_into(const Tensor& x, Tensor& out) { out = forward(x); }
  virtual void forward2_into(const Tensor& a, const Tensor& b, Tensor& out) {
    out = forward2(a, b);
  }

  // Gradient of the loss w.r.t. this layer's input, given the gradient
  // w.r.t. its output. Requires a preceding forward() in training mode.
  // Parameter gradients are accumulated into params()[i]->grad.
  virtual Tensor backward(const Tensor& grad_out) = 0;
  virtual std::pair<Tensor, Tensor> backward2(const Tensor& grad_out);

  virtual std::vector<Param*> params() { return {}; }

  // Shape inference: output shape for a given input shape (batch included).
  virtual std::vector<int> out_shape(const std::vector<int>& in_shape) const = 0;
  // Multiply-accumulate count for one forward pass at the given input shape
  // (0 for layers with no MACs). Used by the op-count bookkeeping.
  virtual std::int64_t macs(const std::vector<int>& in_shape) const {
    (void)in_shape;
    return 0;
  }

  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

 protected:
  bool training_ = false;
};

}  // namespace bnn::nn

#endif  // BNN_NN_LAYER_H
