// Intermediate-layer caching (paper Fig. 4 / Section III-C) in action:
// sweep the Bayesian portion L and sample count S on the performance model
// and show where IC wins — and that it never changes the prediction (the
// functional accelerator is run both ways on a real quantized network).
//
// Build & run:  ./build/examples/partial_bayes_ic
#include <cstdio>

#include "core/accelerator.h"
#include "data/synth.h"
#include "nn/models.h"
#include "train/trainer.h"
#include "util/table.h"

int main() {
  using namespace bnn;

  // --- Modelled latencies on the paper's LeNet-5 geometry (no training
  // needed: the performance model only reads shapes).
  util::Rng rng(1);
  nn::Model lenet = nn::make_lenet5(rng);
  const nn::NetworkDesc desc = lenet.describe();

  core::PerfConfig perf;  // PC=64, PF=64, PV=1 @ 225 MHz
  util::TextTable table(
      "LeNet-5 on the modelled accelerator: latency [ms] with / without IC");
  table.set_header({"L", "S", "w/ IC", "w/o IC", "speedup", "DDR saved"});
  for (int bayes_layers : {1, 2, 4}) {
    for (int samples : {10, 50, 100}) {
      const core::RunStats with_ic =
          core::estimate_mc(desc, perf, bayes_layers, samples, true);
      const core::RunStats without_ic =
          core::estimate_mc(desc, perf, bayes_layers, samples, false);
      table.add_row({std::to_string(bayes_layers), std::to_string(samples),
                     util::fixed(with_ic.latency_ms, 3),
                     util::fixed(without_ic.latency_ms, 3),
                     util::fixed(without_ic.total_cycles / with_ic.total_cycles, 2) + "x",
                     util::fixed(100.0 * (1.0 - static_cast<double>(with_ic.ddr_bytes) /
                                                    static_cast<double>(without_ic.ddr_bytes)),
                                 1) +
                         "%"});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading the table: IC pays the deterministic prefix once instead of S\n"
              "times, so the win is largest for small L and large S, and shrinks as\n"
              "more of the network turns Bayesian - the paper's Table III trend.\n\n");

  // --- Functional proof on a real (small) quantized network.
  std::printf("Functional check on a trained tiny CNN (int8, simulated NNE):\n");
  util::Rng model_rng(2);
  nn::Model model = nn::make_tiny_cnn(model_rng, 10, 1, 12);
  util::Rng data_rng(3);
  data::Dataset digits = data::make_synth_digits(400, data_rng);
  nn::Tensor small({digits.size(), 1, 12, 12});
  for (int n = 0; n < digits.size(); ++n)
    for (int y = 0; y < 12; ++y)
      for (int x = 0; x < 12; ++x)
        small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
  data::Dataset dataset(std::move(small), digits.labels(), 10);

  model.set_bayesian_last(0);
  train::TrainConfig config;
  config.epochs = 3;
  config.batch_size = 16;
  train::fit(model, dataset, config);
  quant::QuantNetwork qnet = quant::quantize_model(model, dataset);

  core::AcceleratorConfig with_ic_config;
  with_ic_config.sampler_seed = 2024;
  core::AcceleratorConfig without_ic_config = with_ic_config;
  without_ic_config.use_intermediate_caching = false;

  core::Accelerator accel_ic(qnet, with_ic_config);
  core::Accelerator accel_plain(qnet, without_ic_config);
  const data::Batch batch = dataset.batch(0, 8);
  const auto a = accel_ic.predict(batch.images, /*bayes_layers=*/2, /*num_samples=*/20);
  const auto b = accel_plain.predict(batch.images, 2, 20);

  std::printf("  max |prob difference| IC vs no-IC : %g (bit-exact)\n",
              static_cast<double>(a.probs.max_abs_diff(b.probs)));
  std::printf("  modelled latency                  : %.3f ms vs %.3f ms\n",
              a.stats.latency_ms, b.stats.latency_ms);
  std::printf("  functional PE cycles executed     : %lld vs %lld\n",
              static_cast<long long>(accel_ic.last_functional_compute_cycles()),
              static_cast<long long>(accel_plain.last_functional_compute_cycles()));
  return 0;
}
