// Serving demo: the batched request-level front end in one file.
//
//   1. train + quantize a tiny CNN (as in quickstart),
//   2. start a serve::Server over the simulated accelerator and the
//      process-wide shared thread pool,
//   3. submit a mixed wave of requests — different per-request S and L,
//      some routed through the Opt-Uncertainty screening pass,
//   4. read predictions, entropy, escalation decisions and modelled
//      hardware latency per request, plus the server's counters.
//
// Build & run:  ./build/examples/serving_demo
#include <cstdio>
#include <future>
#include <vector>

#include "data/synth.h"
#include "nn/models.h"
#include "serve/server.h"
#include "train/trainer.h"
#include "util/table.h"

int main() {
  using namespace bnn;

  std::printf("== 1. Train + quantize the tiny CNN ==\n");
  util::Rng rng(42);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  util::Rng data_rng(7);
  data::Dataset dataset = data::make_synth_digits_small(600, data_rng);
  auto [train_set, test_set] = dataset.split(480);

  model.set_bayesian_last(0);
  train::TrainConfig train_config;
  train_config.epochs = 4;
  train_config.batch_size = 16;
  train::fit(model, train_set, train_config);
  quant::QuantNetwork qnet = quant::quantize_model(model, train_set);
  std::printf("quantized %d hardware layers, %d Bayesian sites\n", qnet.num_layers(),
              qnet.num_sites);

  std::printf("\n== 2. Start the serving front end ==\n");
  core::AcceleratorConfig accel_config;
  accel_config.num_threads = 0;  // use every lane of the shared pool
  serve::ServerConfig server_config;
  server_config.max_batch = 8;
  serve::Server server(core::Accelerator(qnet, accel_config), server_config);
  std::printf("server up: coalescing up to %d requests per accelerator batch\n",
              server_config.max_batch);

  std::printf("\n== 3. Submit a mixed wave of requests ==\n");
  // Three traffic classes, interleaved: fast-and-cheap (small S, shallow L),
  // full-quality (large S, all sites), and routed (screen at S=2, escalate
  // only high-entropy inputs to S=20).
  serve::RequestOptions cheap;
  cheap.num_samples = 3;
  cheap.bayes_layers = 1;

  serve::RequestOptions quality;
  quality.num_samples = 20;
  quality.bayes_layers = -1;  // all sites

  serve::RequestOptions routed;
  routed.num_samples = 20;
  routed.bayes_layers = 2;
  routed.use_uncertainty_router = true;
  routed.screening_samples = 2;
  routed.entropy_threshold_nats = 1.0;

  const serve::RequestOptions* classes[] = {&cheap, &quality, &routed};
  const char* class_names[] = {"cheap", "quality", "routed"};

  const int wave = 12;
  std::vector<std::future<serve::Response>> futures;
  for (int r = 0; r < wave; ++r) {
    serve::Request request;
    request.image = test_set.images().batch_row(r % test_set.size());
    request.options = *classes[r % 3];
    futures.push_back(server.submit(std::move(request)));
  }

  util::TextTable table("responses (submission order)");
  table.set_header({"req", "class", "L", "S used", "pred", "label", "entropy[nats]",
                    "escalated", "model ms"});
  for (int r = 0; r < wave; ++r) {
    const serve::Response response = futures[static_cast<std::size_t>(r)].get();
    table.add_row({std::to_string(r), class_names[r % 3],
                   std::to_string(response.bayes_layers),
                   std::to_string(response.samples_used),
                   std::to_string(response.predicted_class),
                   std::to_string(test_set.labels()[static_cast<std::size_t>(
                       r % test_set.size())]),
                   util::fixed(response.entropy_nats, 3),
                   response.escalated ? "yes" : "-",
                   util::fixed(response.stats.latency_ms, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const serve::ServerStats stats = server.stats();
  std::printf("server counters: %llu requests in %llu batches, %llu screened, "
              "%llu escalated\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.screened),
              static_cast<unsigned long long>(stats.escalations));
  std::printf("\nDeterminism: each request's masks derive from its stream id (its\n"
              "submission ticket here), so re-running this demo — with any batch\n"
              "size, thread count or traffic mix — reproduces these numbers.\n");
  return 0;
}
