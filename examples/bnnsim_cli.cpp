// bnnsim — command-line front end for the accelerator models.
//
// Estimates latency, throughput, traffic and resources for any of the
// built-in networks under a chosen hardware configuration and Bayesian
// setup, with an optional per-layer breakdown. Everything goes through the
// public API, so this doubles as an integration example.
//
//   bnnsim_cli --net resnet18 --layers            # per-layer breakdown
//   bnnsim_cli --net resnet101 --L 105 --S 10     # the Table IV workload
//   bnnsim_cli --net vgg11 --L 6 --S 50 --no-ic --pc 32 --pf 128 --pv 1
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/perf_model.h"
#include "core/resource_model.h"
#include "nn/models.h"
#include "util/table.h"

namespace {

using namespace bnn;

void usage() {
  std::printf(
      "bnnsim - BNN FPGA accelerator model (DAC'21 reproduction)\n\n"
      "  --net NAME    lenet5 | vgg11 | resnet18 | resnet101 | mlp3 (default lenet5)\n"
      "  --L N         Bayesian sites, counted from the back (default: all)\n"
      "  --S N         Monte Carlo samples (default 10)\n"
      "  --pc/--pf/--pv N   parallelism (default 64/64/1)\n"
      "  --clock MHZ   clock in MHz (default 225)\n"
      "  --no-ic       disable intermediate-layer caching\n"
      "  --layers      print the per-layer breakdown of one pass\n"
      "  --help        this text\n");
}

nn::NetworkDesc make_desc(const std::string& name) {
  util::Rng rng(1);
  if (name == "lenet5") return nn::make_lenet5(rng).describe();
  if (name == "vgg11") return nn::make_vgg11(rng, 10, 8).describe();
  if (name == "resnet18") return nn::make_resnet18(rng, 10, 8).describe();
  if (name == "resnet101") return nn::describe_resnet101();
  if (name == "mlp3") return nn::describe_mlp3(784, 256, 10);
  std::fprintf(stderr, "unknown network '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string net = "lenet5";
  int bayes_layers = -1;
  int samples = 10;
  core::NneConfig nne;
  bool use_ic = true;
  bool show_layers = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int& out) {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      out = std::atoi(argv[++i]);
    };
    if (arg == "--net" && i + 1 < argc) {
      net = argv[++i];
    } else if (arg == "--L") {
      next_int(bayes_layers);
    } else if (arg == "--S") {
      next_int(samples);
    } else if (arg == "--pc") {
      next_int(nne.pc);
    } else if (arg == "--pf") {
      next_int(nne.pf);
    } else if (arg == "--pv") {
      next_int(nne.pv);
    } else if (arg == "--clock") {
      int clock = 225;
      next_int(clock);
      nne.clock_mhz = clock;
    } else if (arg == "--no-ic") {
      use_ic = false;
    } else if (arg == "--layers") {
      show_layers = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n\n", arg.c_str());
      usage();
      return 2;
    }
  }

  const nn::NetworkDesc desc = make_desc(net);
  if (bayes_layers < 0) bayes_layers = desc.num_sites();
  if (bayes_layers > desc.num_sites()) {
    std::fprintf(stderr, "--L %d exceeds the network's %d sites\n", bayes_layers,
                 desc.num_sites());
    return 2;
  }

  core::PerfConfig perf;
  perf.nne = nne;
  std::printf("network   : %s (%d hw layers, %d MCD sites, %.2f GMAC/pass)\n",
              desc.name.c_str(), desc.num_layers(), desc.num_sites(),
              static_cast<double>(desc.total_macs()) / 1e9);
  std::printf("hardware  : PC=%d PF=%d PV=%d @ %.0f MHz (peak %.0f GOP/s)\n", nne.pc, nne.pf,
              nne.pv, nne.clock_mhz, nne.peak_gops());
  std::printf("inference : L=%d, S=%d, IC %s\n\n", bayes_layers, samples,
              use_ic ? "on" : "off");

  const core::RunStats stats =
      core::estimate_mc(desc, perf, bayes_layers, samples, use_ic);
  std::printf("latency              : %.4f ms\n", stats.latency_ms);
  std::printf("effective throughput : %.1f GOP/s\n", stats.throughput_gops());
  std::printf("DDR traffic          : %.1f KB\n", static_cast<double>(stats.ddr_bytes) / 1024.0);
  std::printf("mask bits consumed   : %lld\n", static_cast<long long>(stats.mask_bits));

  const core::FpgaDevice device = core::arria10_sx660();
  const core::ResourceUsage usage = core::estimate_resources(nne, desc, device, 16, 2);
  std::printf("resources (SX660)    : %d DSP / %lld ALM / %d M20K -> %s\n", usage.dsps_used,
              static_cast<long long>(usage.alms_used), usage.m20k_used,
              core::fits(usage, device) ? "fits" : "DOES NOT FIT");

  if (show_layers) {
    const core::RunStats pass =
        core::estimate_pass(desc, perf, 0, desc.num_layers() - 1, false, false);
    util::TextTable table("\nper-layer breakdown (single pass)");
    table.set_header({"layer", "MACs", "compute cyc", "memory cyc", "bound", "read B",
                      "write B"});
    for (const core::LayerTiming& t : pass.per_layer)
      table.add_row({t.label, std::to_string(t.macs), util::fixed(t.compute_cycles, 0),
                     util::fixed(t.memory_cycles, 0),
                     t.compute_cycles >= t.memory_cycles ? "compute" : "memory",
                     std::to_string(t.ddr_read_bytes), std::to_string(t.ddr_write_bytes)});
    std::printf("%s", table.to_string().c_str());
  }
  return 0;
}
