// The LFSR-based Bernoulli sampler (paper Fig. 3) as a standalone demo:
// shows the 128-bit register stream, the AND-tree probability ladder, the
// SIPO word assembly and the FIFO's behaviour under backpressure.
//
// Build & run:  ./build/examples/sampler_stream
#include <cstdio>

#include "core/bernoulli_sampler.h"
#include "core/lfsr.h"

int main() {
  using namespace bnn::core;

  std::printf("== 128-bit 4-tap LFSR (taps 128,126,101,99) ==\n");
  Lfsr lfsr = make_lfsr128(0xB0BA'FE77ull);
  std::printf("first 64 output bits: ");
  for (int i = 0; i < 64; ++i) std::printf("%d", lfsr.step());
  std::printf("\n");
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += lfsr.step();
  std::printf("ones over %d steps: %.4f (ideal 0.5)\n\n", n,
              static_cast<double>(ones) / n);

  std::printf("== AND-tree probability ladder ==\n");
  for (double p : {0.5, 0.25, 0.125, 0.0625}) {
    BernoulliSamplerConfig config;
    config.p = p;
    config.seed = 7;
    BernoulliSampler sampler(config);
    int drops = 0;
    for (int i = 0; i < n; ++i) drops += sampler.next_drop() ? 1 : 0;
    std::printf("  p=%-7.4f -> %d LFSR(s), measured drop rate %.4f\n", p,
                sampler.num_lfsrs(), static_cast<double>(drops) / n);
  }

  std::printf("\n== SIPO + FIFO under backpressure (PF=16, depth=4) ==\n");
  BernoulliSamplerConfig config;
  config.p = 0.25;
  config.pf = 16;
  config.fifo_depth = 4;
  config.seed = 21;
  BernoulliSampler sampler(config);

  // Produce for 200 cycles without consuming: the FIFO fills and stalls.
  for (int i = 0; i < 200; ++i) sampler.step_cycle();
  std::printf("after 200 produce-only cycles: fifo=%d/%d words, stalls=%llu\n",
              sampler.fifo_occupancy(), config.fifo_depth,
              static_cast<unsigned long long>(sampler.stall_cycles()));

  // Drain one mask word and print it the way the Dropout Unit sees it.
  std::vector<std::uint8_t> word;
  if (sampler.pop_word(word)) {
    std::printf("popped PF-bit mask word (1 = drop that filter): ");
    for (std::uint8_t bit : word) std::printf("%d", bit);
    std::printf("\n");
  }

  // Normal operation: the NNE pops a word every few hundred cycles, so the
  // FIFO never starves the Dropout Unit.
  int starved = 0;
  for (int layer = 0; layer < 64; ++layer) {
    for (int i = 0; i < 300; ++i) sampler.step_cycle();
    if (!sampler.pop_word(word)) ++starved;
  }
  std::printf("64 simulated layer mask pops at 300-cycle spacing: %d starved\n",
              starved);
  std::printf("words pushed in total: %llu, bits produced: %llu\n",
              static_cast<unsigned long long>(sampler.words_pushed()),
              static_cast<unsigned long long>(sampler.bits_produced()));
  return 0;
}
