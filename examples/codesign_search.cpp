// The paper's stated future work: "explore neural architecture search on
// BNN, and co-develop the hardware design". This example is a miniature of
// that loop — a random architecture search where every candidate is scored
// by BOTH its algorithmic metrics (trained + evaluated in software) and the
// latency/resources the DSE framework assigns it on the target FPGA.
//
// Build & run:  ./build/examples/codesign_search
#include <cstdio>

#include "core/dse.h"
#include "core/software_metrics.h"
#include "data/synth.h"
#include "nn/models.h"
#include "train/trainer.h"
#include "util/table.h"

int main() {
  using namespace bnn;
  std::printf("=== Hardware/architecture co-design search (paper future work) ===\n\n");

  util::Rng data_rng(91);
  data::Dataset digits = data::make_synth_digits(700, data_rng);
  nn::Tensor small({digits.size(), 1, 12, 12});
  for (int n = 0; n < digits.size(); ++n)
    for (int y = 0; y < 12; ++y)
      for (int x = 0; x < 12; ++x)
        small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
  data::Dataset dataset(std::move(small), digits.labels(), 10);
  auto [train_set, test_set] = dataset.split(560);
  util::Rng noise_rng(92);
  data::Dataset noise = data::make_gaussian_noise(80, train_set, noise_rng);

  // Candidate architectures: MLPs of varying width (the search space kept
  // tiny so the example runs in seconds; the loop is the point).
  util::TextTable table("candidates scored by accuracy AND modelled hardware cost");
  table.set_header({"arch", "hidden", "accuracy [%]", "aPE [nats]", "latency [ms]",
                    "DSPs", "score"});

  struct Scored {
    int hidden;
    double score;
    core::Candidate pick;
  };
  Scored best{0, -1e9, {}};

  core::DseOptions options;
  options.mode = core::OptMode::confidence;
  options.sample_grid = {3, 10, 30};

  for (int hidden : {16, 32, 64, 128}) {
    util::Rng rng(1000 + static_cast<std::uint64_t>(hidden));
    nn::Model model =
        nn::make_mlp3(rng, 144, hidden, 10, nn::MlpActivation::relu, /*sites=*/true);
    model.set_bayesian_last(0);
    train::TrainConfig config;
    config.epochs = 5;
    config.batch_size = 16;
    train::fit(model, train_set, config);
    model.set_bayesian_last(model.num_sites());

    core::SoftwareMetricsProvider metrics(model, test_set, noise);
    const nn::NetworkDesc desc = model.describe();
    const core::DseResult result = run_dse(desc, metrics, options);
    const core::Candidate& pick = result.best();

    // Co-design objective: accuracy and uncertainty per millisecond.
    const double score = pick.metrics.accuracy * 100.0 + 5.0 * pick.metrics.ape -
                         20.0 * pick.latency_ms;
    table.add_row({"mlp3", std::to_string(hidden),
                   util::fixed(pick.metrics.accuracy * 100.0, 1),
                   util::fixed(pick.metrics.ape, 3), util::fixed(pick.latency_ms, 4),
                   std::to_string(result.resources.dsps_used), util::fixed(score, 1)});
    if (score > best.score) best = {hidden, score, pick};
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("co-design winner: hidden=%d with {L=%d, S=%d} (score %.1f)\n", best.hidden,
              best.pick.bayes_layers, best.pick.num_samples, best.score);
  std::printf("\nThe loop demonstrates the future-work direction: architecture and\n"
              "hardware configuration are optimized against one joint objective,\n"
              "with the DSE framework supplying the hardware half of the score.\n");
  return 0;
}
