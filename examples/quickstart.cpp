// Quickstart: the full pipeline in one file.
//
//   1. build a small CNN with Monte Carlo Dropout sites,
//   2. train it on the synthetic digit dataset,
//   3. post-training-quantize it to 8 bits,
//   4. run Bayesian inference on the simulated FPGA accelerator,
//   5. read predictions, uncertainty, modelled latency and resources.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/accelerator.h"
#include "data/synth.h"
#include "metrics/metrics.h"
#include "nn/models.h"
#include "train/trainer.h"
#include "util/stopwatch.h"

int main() {
  using namespace bnn;

  std::printf("== 1. Build a model with MCD sites ==\n");
  util::Rng rng(42);
  nn::Model model = nn::make_tiny_cnn(rng, /*num_classes=*/10, /*in_channels=*/1,
                                      /*image=*/12);
  std::printf("model '%s': %d candidate Bayesian sites (the paper's N)\n",
              model.name().c_str(), model.num_sites());

  std::printf("\n== 2. Train on synthetic digits ==\n");
  util::Rng data_rng(7);
  data::Dataset digits = data::make_synth_digits(600, data_rng);
  // The tiny model takes 12x12 inputs: subsample the 28x28 canvas.
  nn::Tensor small({digits.size(), 1, 12, 12});
  for (int n = 0; n < digits.size(); ++n)
    for (int y = 0; y < 12; ++y)
      for (int x = 0; x < 12; ++x)
        small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
  data::Dataset dataset(std::move(small), digits.labels(), 10);
  auto [train_set, test_set] = dataset.split(480);

  model.set_bayesian_last(0);  // train the deterministic feature extractor
  train::TrainConfig train_config;
  train_config.epochs = 4;
  train_config.batch_size = 16;
  util::Stopwatch watch;
  const auto history = train::fit(model, train_set, train_config);
  std::printf("trained %d epochs in %.1fs, final train accuracy %.1f%%\n",
              train_config.epochs, watch.elapsed_seconds(),
              history.back().train_accuracy * 100.0);

  std::printf("\n== 3. 8-bit linear quantization ==\n");
  quant::QuantNetwork qnet = quant::quantize_model(model, train_set);
  std::printf("quantized %d hardware layers; input scale %.4f zero-point %d\n",
              qnet.num_layers(), qnet.input.scale, qnet.input.zero_point);

  std::printf("\n== 4. Simulated accelerator (PC=64, PF=64, PV=1 @ 225 MHz) ==\n");
  core::AcceleratorConfig accel_config;  // paper defaults
  core::Accelerator accelerator(qnet, accel_config);

  const int bayes_layers = 2;  // partial BNN: last 2 of 3 sites Bayesian
  const int num_samples = 10;
  const data::Batch batch = test_set.batch(0, 16);
  const auto prediction = accelerator.predict(batch.images, bayes_layers, num_samples);

  std::printf("\n== 5. Results ==\n");
  std::printf("batch accuracy      : %.1f%%\n",
              metrics::accuracy(prediction.probs, batch.labels) * 100.0);
  std::printf("mean confidence     : %.3f\n", metrics::mean_confidence(prediction.probs));
  std::printf("predictive entropy  : %.3f nats\n",
              metrics::average_predictive_entropy(prediction.probs));
  std::printf("modelled latency    : %.3f ms per image (L=%d, S=%d, with IC)\n",
              prediction.stats.latency_ms, bayes_layers, num_samples);
  std::printf("DDR traffic         : %.1f KB per image\n",
              static_cast<double>(prediction.stats.ddr_bytes) / 1024.0);

  const core::ResourceUsage usage = accelerator.resources(core::arria10_sx660());
  std::printf("resources (Arria 10): %d DSPs, %ld ALMs, %d M20K -> %s\n",
              usage.dsps_used, static_cast<long>(usage.alms_used), usage.m20k_used,
              core::fits(usage, core::arria10_sx660()) ? "fits" : "does NOT fit");

  // Show the single most uncertain sample: the BNN's selling point.
  int most_uncertain = 0;
  double best_entropy = -1.0;
  for (int n = 0; n < prediction.probs.size(0); ++n) {
    double entropy = 0.0;
    for (int k = 0; k < 10; ++k) {
      const double p = prediction.probs.v2(n, k);
      if (p > 0) entropy -= p * std::log(p);
    }
    if (entropy > best_entropy) {
      best_entropy = entropy;
      most_uncertain = n;
    }
  }
  std::printf("most uncertain image: #%d (true label %d, entropy %.3f nats)\n",
              most_uncertain, batch.labels[static_cast<std::size_t>(most_uncertain)],
              best_entropy);
  return 0;
}
