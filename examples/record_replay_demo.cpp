// Record/replay walkthrough: journal a burst of requests to a trace file,
// replay it under a DIFFERENT serving configuration (more replicas, more
// threads), and show the checksum gate catching a corrupted golden value.
//
//   ./build/examples/record_replay_demo
//
// Steps:
//   1. train + quantize the tiny CNN fixture (deterministic seeds),
//   2. serve a burst scenario with ServerConfig::trace_path set — every
//      request lands in the journal with a golden FNV-1a response checksum,
//   3. read the trace back and replay it at R=2/threads=2 under cost-aware
//      dispatch — bit-identity makes every checksum match,
//   4. corrupt one recorded checksum in memory and replay again — the gate
//      reports exactly that request as divergent.
#include <cstdio>

#include "bench/serve_fixture.h"
#include "serve/replay.h"
#include "serve/scenario.h"
#include "serve/server.h"
#include "serve/trace.h"

using namespace bnn;

int main() {
  const char* trace_path = "record_replay_demo.trace";

  std::printf("== 1. fixture: tiny quantized CNN on 12x12 synthetic digits ==\n");
  const bench::ServeFixture fixture = bench::make_cnn12_fixture();

  std::printf("== 2. record: burst scenario through a traced server ==\n");
  serve::ScenarioSpec spec;
  spec.kind = serve::ScenarioKind::burst;
  spec.num_requests = 12;
  spec.num_samples = 4;
  spec.burst_size = 4;
  const auto events = serve::generate_scenario(spec);
  {
    serve::ServerConfig config;
    config.max_batch = 4;
    config.num_replicas = 1;
    config.num_threads = 1;
    config.trace_path = trace_path;
    config.trace_workload_id = fixture.workload_id;
    serve::Server server(core::Accelerator(fixture.qnet, bench::serve_accel_config()),
                         config);
    const auto responses = serve::play_scenario(
        server, events,
        [&](const serve::ScenarioEvent& event) {
          return bench::fixture_image(fixture, event);
        },
        /*as_fast_as_possible=*/true);
    std::printf("   served %zu requests at R=1/threads=1\n", responses.size());
  }  // shutdown finalizes the journal

  serve::Trace trace = serve::read_trace(trace_path);
  std::printf("   trace: %zu records, fingerprint %016llx, sampler seed %llu\n",
              trace.records.size(),
              static_cast<unsigned long long>(trace.meta.network_fingerprint),
              static_cast<unsigned long long>(trace.meta.sampler_seed));

  std::printf("== 3. replay under a DIFFERENT configuration (R=2, threads=2) ==\n");
  const core::Accelerator accelerator(fixture.qnet, bench::serve_accel_config());
  serve::ReplayConfig replay_config;
  replay_config.num_replicas = 2;
  replay_config.num_threads = 2;
  replay_config.dispatch_mode = serve::DispatchMode::cost_aware;
  const serve::ReplayReport clean = serve::replay_trace(trace, accelerator, replay_config);
  std::printf("   %s\n", serve::replay_summary(clean).c_str());
  if (!clean.ok() || clean.matched != trace.records.size()) {
    std::fprintf(stderr, "FATAL: clean replay diverged — bit-identity broken\n");
    return 1;
  }

  std::printf("== 4. corrupt one golden checksum: the gate must catch it ==\n");
  const std::size_t victim = trace.records.size() / 2;
  trace.records[victim].checksum ^= 0xdeadbeefull;
  const serve::ReplayReport corrupted =
      serve::replay_trace(trace, accelerator, replay_config);
  std::printf("   %s\n", serve::replay_summary(corrupted).c_str());
  if (corrupted.divergences.size() != 1 ||
      corrupted.divergences.front().seq != trace.records[victim].seq) {
    std::fprintf(stderr, "FATAL: corrupted checksum not pinpointed\n");
    return 1;
  }
  std::printf("   divergence correctly pinned to request seq=%llu\n",
              static_cast<unsigned long long>(corrupted.divergences.front().seq));

  std::printf("\nrecord/replay round trip OK: checksums gate bit-identity across "
              "serving configurations\n");
  return 0;
}
