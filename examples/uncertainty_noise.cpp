// Fig. 1 scenario as a runnable example: a Bayesian network knows when it is
// being fooled. Train the same LeNet-5 twice — once as a point network and
// once as a full MCD BNN — and feed both pure Gaussian noise. The point
// network answers with high confidence; the BNN's confidence collapses.
//
// Build & run:  ./build/examples/uncertainty_noise
#include <cstdio>
#include <string>

#include "bayes/predictive.h"
#include "data/synth.h"
#include "metrics/metrics.h"
#include "nn/models.h"
#include "train/trainer.h"

namespace {

void print_histogram(const char* title, const std::vector<double>& histogram, double lo) {
  std::printf("%s\n", title);
  const double width = (1.0 - lo) / static_cast<double>(histogram.size());
  for (std::size_t b = 0; b < histogram.size(); ++b) {
    const double from = lo + width * static_cast<double>(b);
    const int bar = static_cast<int>(histogram[b] * 60.0 + 0.5);
    std::printf("  conf %.2f-%.2f | %-60s %5.1f%%\n", from, from + width,
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                histogram[b] * 100.0);
  }
}

}  // namespace

int main() {
  using namespace bnn;

  std::printf("Training two LeNet-5s on synthetic digits (takes ~1 min)...\n");
  util::Rng rng_nn(3);
  nn::Model point_net = nn::make_lenet5(rng_nn);
  util::Rng rng_bnn(3);
  nn::Model bnn = nn::make_lenet5(rng_bnn);

  util::Rng data_rng(4);
  data::Dataset digits = data::make_synth_digits(1300, data_rng);
  auto [train_set, test_set] = digits.split(1100);

  train::TrainConfig config;
  config.epochs = 6;
  config.batch_size = 32;
  config.verbose = true;

  // The standard NN: no dropout anywhere, trained to be sharp.
  std::printf("-- standard NN --\n");
  point_net.set_bayesian_last(0);
  train::fit(point_net, train_set, config);

  // The full BNN: MCD active at every site during training AND inference.
  std::printf("-- Bayesian NN --\n");
  bnn.set_bayesian_last(bnn.num_sites());
  train::fit(bnn, train_set, config);

  // Gaussian noise with the training data's channel statistics (Sec. V-A).
  util::Rng noise_rng(5);
  data::Dataset noise = data::make_gaussian_noise(300, train_set, noise_rng);

  bayes::PredictiveOptions options;
  options.num_samples = 50;

  const nn::Tensor nn_probs = bayes::mc_predict(point_net, noise.images(), options);
  bnn.reseed_sites(99);
  const nn::Tensor bnn_probs = bayes::mc_predict(bnn, noise.images(), options);

  const int bins = 8;
  const double lo = 1.0 / 10.0;
  std::printf("\nConfidence histograms on pure Gaussian noise (%d images):\n\n",
              noise.size());
  print_histogram("Standard neural network (L=0):",
                  metrics::confidence_histogram(nn_probs, bins), lo);
  std::printf("\n");
  print_histogram("Bayesian neural network (L=N, S=50):",
                  metrics::confidence_histogram(bnn_probs, bins), lo);

  std::printf("\nOn-noise behaviour (higher entropy / lower confidence = better):\n");
  std::printf("  standard NN : aPE %.3f nats, mean confidence %.3f\n",
              metrics::average_predictive_entropy(nn_probs),
              metrics::mean_confidence(nn_probs));
  std::printf("  BNN         : aPE %.3f nats, mean confidence %.3f  (max aPE = ln 10 = %.3f)\n",
              metrics::average_predictive_entropy(bnn_probs),
              metrics::mean_confidence(bnn_probs), std::log(10.0));

  // Sanity on real data: both should still classify digits well.
  const nn::Tensor nn_test = bayes::mc_predict(point_net, test_set.images(), options);
  bnn.reseed_sites(123);
  const nn::Tensor bnn_test = bayes::mc_predict(bnn, test_set.images(), options);
  std::printf("\nHeld-out digit accuracy: standard NN %.1f%%, BNN %.1f%%\n",
              metrics::accuracy(nn_test, test_set.labels()) * 100.0,
              metrics::accuracy(bnn_test, test_set.labels()) * 100.0);
  return 0;
}
