// The optimization framework (paper Section IV / Fig. 5) end to end:
// hardware optimization picks {PC, PF, PV} for the Arria 10, then the
// algorithmic stage sweeps {L, S}, evaluates latency / accuracy / aPE / ECE,
// filters by user requirements and reports the best point per mode.
//
// Build & run:  ./build/examples/design_space_exploration
#include <cstdio>

#include "core/dse.h"
#include "core/software_metrics.h"
#include "data/synth.h"
#include "nn/models.h"
#include "train/trainer.h"
#include "util/table.h"

int main() {
  using namespace bnn;

  std::printf("Training a small CNN for the exploration (a few seconds)...\n");
  util::Rng rng(11);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);

  util::Rng data_rng(12);
  data::Dataset digits = data::make_synth_digits(700, data_rng);
  nn::Tensor small({digits.size(), 1, 12, 12});
  for (int n = 0; n < digits.size(); ++n)
    for (int y = 0; y < 12; ++y)
      for (int x = 0; x < 12; ++x)
        small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
  data::Dataset dataset(std::move(small), digits.labels(), 10);
  auto [train_set, test_set] = dataset.split(560);

  model.set_bayesian_last(model.num_sites());
  train::TrainConfig train_config;
  train_config.epochs = 4;
  train_config.batch_size = 16;
  train::fit(model, train_set, train_config);

  util::Rng noise_rng(13);
  data::Dataset noise = data::make_gaussian_noise(100, train_set, noise_rng);
  core::SoftwareMetricsProvider metrics(model, test_set, noise);

  const nn::NetworkDesc desc = model.describe();
  core::DseOptions options;
  options.sample_grid = {3, 5, 10, 30, 100};

  // Stage 1 result is mode-independent; show it once.
  const core::NneConfig hw =
      core::optimize_hardware(desc, options.device, options.clock_mhz,
                              options.sampler_fifo_depth, options.num_lfsrs);
  std::printf("\nHardware optimization on %s: PC=%d PF=%d PV=%d (%.0f GOP/s peak)\n",
              options.device.name.c_str(), hw.pc, hw.pf, hw.pv, hw.peak_gops());

  util::TextTable table("\nBest {L, S} per optimization mode (no user constraints):");
  table.set_header({"Mode", "L", "S", "Latency [ms]", "Accuracy [%]", "aPE [nats]",
                    "ECE [%]"});
  for (core::OptMode mode : {core::OptMode::latency, core::OptMode::accuracy,
                             core::OptMode::uncertainty, core::OptMode::confidence}) {
    options.mode = mode;
    const core::DseResult result = run_dse(desc, metrics, options);
    const core::Candidate& best = result.best();
    table.add_row({core::opt_mode_name(mode), std::to_string(best.bayes_layers),
                   std::to_string(best.num_samples), util::fixed(best.latency_ms, 3),
                   util::fixed(best.metrics.accuracy * 100.0, 2),
                   util::fixed(best.metrics.ape, 3),
                   util::fixed(best.metrics.ece * 100.0, 2)});
  }
  std::printf("%s", table.to_string().c_str());

  // Constrained run, Fig. 6-style: optimize confidence subject to latency,
  // accuracy and uncertainty floors.
  options.mode = core::OptMode::confidence;
  options.requirements.max_latency_ms = 0.1;
  options.requirements.min_accuracy = 0.35;
  options.requirements.min_ape = 1.0;
  const core::DseResult constrained = run_dse(desc, metrics, options);
  std::printf("\nConstrained Opt-Confidence (latency <= 0.1 ms, accuracy >= 35%%, "
              "aPE >= 1.0):\n");
  if (constrained.best_index < 0) {
    std::printf("  no feasible configuration - constraints are too tight.\n");
  } else {
    const core::Candidate& best = constrained.best();
    std::printf("  chose {L=%d, S=%d}: %.3f ms, %.1f%% accuracy, %.3f nats, ECE %.2f%%\n",
                best.bayes_layers, best.num_samples, best.latency_ms,
                best.metrics.accuracy * 100.0, best.metrics.ape,
                best.metrics.ece * 100.0);
  }
  int feasible = 0;
  for (const core::Candidate& candidate : constrained.candidates)
    feasible += candidate.feasible ? 1 : 0;
  std::printf("  (%d of %zu candidate points were feasible)\n", feasible,
              constrained.candidates.size());
  return 0;
}
