// Trace replayer CLI: re-serves a recorded request trace (bench/scenario_gen
// or any ServerConfig::trace_path journal over the shared bench fixtures)
// under an arbitrary serving configuration and exits non-zero on the first
// checksum divergence, naming the divergent request.
//
//   ./build/tools/trace_replay --trace PATH_OR_GLOB
//       [--replicas R] [--threads T] [--max-batch B] [--dispatch fifo|cost]
//       [--timed] [--no-verify] [--matrix]
//   ./build/tools/trace_replay --diff PATH_A PATH_B
//
// --trace also accepts a shell glob (quote it!) matching the size-rotated
// segment files a ServerConfig::trace_max_bytes recorder emits
// (foo.trace.000, foo.trace.001, ...). Each segment is a complete,
// independently valid trace — every matching file is replayed on its own
// (sorted by name, i.e. in rotation order) and the process exits non-zero
// if ANY segment diverges.
//
// --timed paces submissions to the recorded arrival offsets instead of
// replaying as fast as possible. --matrix runs the full acceptance grid —
// R in {1,2,4} x threads in {1,2,8} x both dispatch modes (18 replays) —
// the gate that a trace recorded at R=1/threads=1 replays checksum-clean
// under every serving configuration. A multi-model (v2) trace is replayed
// through a ModelRegistry rebuilt from its model table: each table entry's
// workload id names a shared bench fixture, published under the recorded
// tenant name, and every record routes back to its recorded tenant.
//
// --diff compares two recorded traces record-by-record (outcome, model,
// stream id, golden checksum) without serving anything, and names the
// first divergent seq — the A/B tool for "did this change alter any
// response bit?".
#include <glob.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/serve_fixture.h"
#include "serve/replay.h"
#include "serve/trace.h"

namespace {

using namespace bnn;

const char* dispatch_name(serve::DispatchMode mode) {
  return mode == serve::DispatchMode::fifo ? "fifo" : "cost";
}

int report_result(const serve::ReplayReport& report, const serve::ReplayConfig& config) {
  std::printf("R=%d threads=%d dispatch=%-4s : %s\n", config.num_replicas,
              config.num_threads, dispatch_name(config.dispatch_mode),
              serve::replay_summary(report).c_str());
  for (const serve::ReplayDivergence& divergence : report.divergences) {
    std::fprintf(stderr,
                 "DIVERGENT: request seq=%llu stream=%llu expected=%016llx "
                 "actual=%016llx\n",
                 static_cast<unsigned long long>(divergence.seq),
                 static_cast<unsigned long long>(divergence.stream_id),
                 static_cast<unsigned long long>(divergence.expected),
                 static_cast<unsigned long long>(divergence.actual));
  }
  if (report.admission_mismatches > 0)
    std::fprintf(stderr, "ADMISSION MISMATCH: %llu of %llu recorded decisions\n",
                 static_cast<unsigned long long>(report.admission_mismatches),
                 static_cast<unsigned long long>(report.admission_records));
  return report.ok() ? 0 : 1;
}

// Expands a --trace argument: a literal path maps to itself; a pattern
// holding glob metacharacters (* ? [) expands via glob(3), sorted — the
// natural order for zero-padded rotation suffixes. Throws when a pattern
// matches nothing (a silent empty replay would read as success).
std::vector<std::string> expand_trace_paths(const std::string& pattern) {
  if (pattern.find_first_of("*?[") == std::string::npos) return {pattern};
  glob_t matches;
  const int rc = ::glob(pattern.c_str(), GLOB_ERR, nullptr, &matches);
  std::vector<std::string> paths;
  if (rc == 0) {
    paths.reserve(matches.gl_pathc);
    for (std::size_t i = 0; i < matches.gl_pathc; ++i)
      paths.emplace_back(matches.gl_pathv[i]);
  }
  ::globfree(&matches);
  if (paths.empty())
    throw std::runtime_error("--trace glob matched no files: " + pattern);
  return paths;
}

int replay_one_trace(const std::string& trace_path, const serve::ReplayConfig& config,
                     bool matrix) {
  const serve::Trace trace = serve::read_trace(trace_path);
  std::printf("trace %s: workload %u, %zu records, %zu admission decisions, "
              "seed %llu, fingerprint %016llx, %zu model(s)%s\n",
              trace_path.c_str(), trace.meta.workload_id, trace.records.size(),
              trace.admission.size(),
              static_cast<unsigned long long>(trace.meta.sampler_seed),
              static_cast<unsigned long long>(trace.meta.network_fingerprint),
              trace.meta.models.size(),
              trace.meta.reuse_screening_samples ? ", escalation reuse" : "");

  // The header (or, multi-model, each model-table entry) names the
  // fixture; the sampler seed travels with the trace so the replaying
  // accelerator consumes identical mask streams.
  core::AcceleratorConfig accel_config = bench::serve_accel_config();
  accel_config.sampler_seed = trace.meta.sampler_seed;

  const bool multi_model = trace.meta.models.size() > 1;
  std::shared_ptr<serve::ModelRegistry> registry;
  std::unique_ptr<core::Accelerator> accelerator;
  if (multi_model) {
    registry = std::make_shared<serve::ModelRegistry>();
    for (const serve::TraceModelInfo& info : trace.meta.models) {
      bench::ServeFixture fixture = bench::make_workload_fixture(info.workload_id);
      serve::ModelConfig model_config;
      model_config.workload_id = fixture.workload_id;
      registry->publish(info.name, std::move(fixture.qnet), model_config);
      std::printf("  tenant '%s' (key %u, version %llu): workload %u rebuilt\n",
                  info.name.c_str(), info.model_key,
                  static_cast<unsigned long long>(info.model_version),
                  info.workload_id);
    }
  } else {
    bench::ServeFixture fixture =
        bench::make_workload_fixture(trace.meta.workload_id);
    accelerator = std::make_unique<core::Accelerator>(std::move(fixture.qnet),
                                                      accel_config);
  }

  const auto replay_cell = [&](const serve::ReplayConfig& cell) {
    return multi_model ? serve::replay_trace(trace, registry, accel_config, cell)
                       : serve::replay_trace(trace, *accelerator, cell);
  };

  if (!matrix) return report_result(replay_cell(config), config);

  int status = 0;
  for (const int replicas : {1, 2, 4}) {
    for (const int threads : {1, 2, 8}) {
      for (const serve::DispatchMode mode :
           {serve::DispatchMode::fifo, serve::DispatchMode::cost_aware}) {
        serve::ReplayConfig cell = config;
        cell.num_replicas = replicas;
        cell.num_threads = threads;
        cell.dispatch_mode = mode;
        status |= report_result(replay_cell(cell), cell);
      }
    }
  }
  if (status == 0)
    std::printf("matrix clean: every R x threads x dispatch cell matched the "
                "recorded checksums\n");
  return status;
}

int run_diff(const std::string& path_a, const std::string& path_b) {
  const serve::Trace a = serve::read_trace(path_a);
  const serve::Trace b = serve::read_trace(path_b);
  const serve::TraceDiff diff = serve::diff_traces(a, b);
  std::printf("A %s: %zu records; B %s: %zu records\n", path_a.c_str(),
              a.records.size(), path_b.c_str(), b.records.size());
  std::printf("%s\n", serve::diff_summary(diff).c_str());
  return diff.identical() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string diff_a, diff_b;
  serve::ReplayConfig config;
  bool matrix = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else if (std::strcmp(argv[i], "--diff") == 0 && i + 2 < argc) {
      diff_a = argv[++i];
      diff_b = argv[++i];
    } else if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc)
      config.num_replicas = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      config.num_threads = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--max-batch") == 0 && i + 1 < argc)
      config.max_batch = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--dispatch") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (std::strcmp(name, "fifo") == 0)
        config.dispatch_mode = serve::DispatchMode::fifo;
      else if (std::strcmp(name, "cost") == 0 || std::strcmp(name, "cost_aware") == 0)
        config.dispatch_mode = serve::DispatchMode::cost_aware;
      else {
        std::fprintf(stderr, "trace_replay: unknown --dispatch '%s'\n", name);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--timed") == 0)
      config.as_fast_as_possible = false;
    else if (std::strcmp(argv[i], "--no-verify") == 0)
      config.verify_fingerprint = false;
    else if (std::strcmp(argv[i], "--matrix") == 0)
      matrix = true;
    else {
      std::fprintf(stderr, "trace_replay: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (trace_path.empty() && diff_a.empty()) {
    std::fprintf(stderr,
                 "usage: trace_replay --trace PATH [options] | --diff A B\n");
    return 2;
  }

  try {
    if (!diff_a.empty()) return run_diff(diff_a, diff_b);

    const std::vector<std::string> paths = expand_trace_paths(trace_path);
    if (paths.size() > 1)
      std::printf("replaying %zu trace segments matching %s\n", paths.size(),
                  trace_path.c_str());
    int status = 0;
    for (const std::string& path : paths)
      status |= replay_one_trace(path, config, matrix);
    if (status == 0 && paths.size() > 1)
      std::printf("all %zu segments replayed clean\n", paths.size());
    return status;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trace_replay: %s\n", error.what());
    return 1;
  }
}
