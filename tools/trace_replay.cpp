// Trace replayer CLI: re-serves a recorded request trace (bench/scenario_gen
// or any ServerConfig::trace_path journal over the shared bench fixtures)
// under an arbitrary serving configuration and exits non-zero on the first
// checksum divergence, naming the divergent request.
//
//   ./build/tools/trace_replay --trace PATH
//       [--replicas R] [--threads T] [--max-batch B] [--dispatch fifo|cost]
//       [--timed] [--no-verify] [--matrix]
//
// --timed paces submissions to the recorded arrival offsets instead of
// replaying as fast as possible. --matrix runs the full acceptance grid —
// R in {1,2,4} x threads in {1,2,8} x both dispatch modes (18 replays) —
// the gate that a trace recorded at R=1/threads=1 replays checksum-clean
// under every serving configuration.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/serve_fixture.h"
#include "serve/replay.h"
#include "serve/trace.h"

namespace {

using namespace bnn;

const char* dispatch_name(serve::DispatchMode mode) {
  return mode == serve::DispatchMode::fifo ? "fifo" : "cost";
}

int report_result(const serve::ReplayReport& report, const serve::ReplayConfig& config) {
  std::printf("R=%d threads=%d dispatch=%-4s : %s\n", config.num_replicas,
              config.num_threads, dispatch_name(config.dispatch_mode),
              serve::replay_summary(report).c_str());
  for (const serve::ReplayDivergence& divergence : report.divergences) {
    std::fprintf(stderr,
                 "DIVERGENT: request seq=%llu stream=%llu expected=%016llx "
                 "actual=%016llx\n",
                 static_cast<unsigned long long>(divergence.seq),
                 static_cast<unsigned long long>(divergence.stream_id),
                 static_cast<unsigned long long>(divergence.expected),
                 static_cast<unsigned long long>(divergence.actual));
  }
  if (report.admission_mismatches > 0)
    std::fprintf(stderr, "ADMISSION MISMATCH: %llu of %llu recorded decisions\n",
                 static_cast<unsigned long long>(report.admission_mismatches),
                 static_cast<unsigned long long>(report.admission_records));
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  serve::ReplayConfig config;
  bool matrix = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc)
      config.num_replicas = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      config.num_threads = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--max-batch") == 0 && i + 1 < argc)
      config.max_batch = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--dispatch") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (std::strcmp(name, "fifo") == 0)
        config.dispatch_mode = serve::DispatchMode::fifo;
      else if (std::strcmp(name, "cost") == 0 || std::strcmp(name, "cost_aware") == 0)
        config.dispatch_mode = serve::DispatchMode::cost_aware;
      else {
        std::fprintf(stderr, "trace_replay: unknown --dispatch '%s'\n", name);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--timed") == 0)
      config.as_fast_as_possible = false;
    else if (std::strcmp(argv[i], "--no-verify") == 0)
      config.verify_fingerprint = false;
    else if (std::strcmp(argv[i], "--matrix") == 0)
      matrix = true;
    else {
      std::fprintf(stderr, "trace_replay: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr, "usage: trace_replay --trace PATH [options]\n");
    return 2;
  }

  try {
    const serve::Trace trace = serve::read_trace(trace_path);
    std::printf("trace %s: workload %u, %zu records, %zu admission decisions, "
                "seed %llu, fingerprint %016llx%s\n",
                trace_path.c_str(), trace.meta.workload_id, trace.records.size(),
                trace.admission.size(),
                static_cast<unsigned long long>(trace.meta.sampler_seed),
                static_cast<unsigned long long>(trace.meta.network_fingerprint),
                trace.meta.reuse_screening_samples ? ", escalation reuse" : "");

    // The header names the fixture; the sampler seed travels with the trace
    // so the replaying accelerator consumes identical mask streams.
    bench::ServeFixture fixture = bench::make_workload_fixture(trace.meta.workload_id);
    core::AcceleratorConfig accel_config = bench::serve_accel_config();
    accel_config.sampler_seed = trace.meta.sampler_seed;
    const core::Accelerator accelerator(std::move(fixture.qnet), accel_config);

    if (!matrix) return report_result(serve::replay_trace(trace, accelerator, config), config);

    int status = 0;
    for (const int replicas : {1, 2, 4}) {
      for (const int threads : {1, 2, 8}) {
        for (const serve::DispatchMode mode :
             {serve::DispatchMode::fifo, serve::DispatchMode::cost_aware}) {
          serve::ReplayConfig cell = config;
          cell.num_replicas = replicas;
          cell.num_threads = threads;
          cell.dispatch_mode = mode;
          status |= report_result(serve::replay_trace(trace, accelerator, cell), cell);
        }
      }
    }
    if (status == 0)
      std::printf("matrix clean: every R x threads x dispatch cell matched the "
                  "recorded checksums\n");
    return status;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trace_replay: %s\n", error.what());
    return 1;
  }
}
