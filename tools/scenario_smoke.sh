#!/bin/sh
# Scenario smoke gate: generate a scenario, record it through a traced
# server at R=1/threads=1, then replay the trace under two different
# serving configurations — any checksum divergence fails the run.
#
#   scenario_smoke.sh BUILD_DIR
set -eu

BUILD_DIR="${1:?usage: scenario_smoke.sh BUILD_DIR}"
OUT="$BUILD_DIR/scenario_smoke"
mkdir -p "$OUT"

"$BUILD_DIR/bench/scenario_gen" --scenario burst --requests 12 --S 4 \
    --out "$OUT/burst.trace"

"$BUILD_DIR/tools/trace_replay" --trace "$OUT/burst.trace" \
    --replicas 2 --threads 2 --dispatch cost
"$BUILD_DIR/tools/trace_replay" --trace "$OUT/burst.trace" \
    --replicas 1 --threads 1 --dispatch fifo

echo "scenario smoke OK: recorded trace replayed checksum-clean"
