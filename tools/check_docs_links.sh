#!/bin/sh
# Docs link checker (run by ctest as `docs.links` and by CI).
#
# Fails when README.md or docs/*.md reference something that does not exist
# in the repository:
#   - relative markdown links [text](path)          -> path must exist
#   - build-target references ./build/bench/NAME or
#     ./build/examples/NAME                          -> NAME.cpp must exist
#
# POSIX sh only; no dependencies beyond grep/sed/cut.
set -u
cd "$(dirname "$0")/.."

fail=0
note() {
  printf 'docs-link-check: %s\n' "$1" >&2
  fail=1
}

for md in README.md docs/*.md; do
  [ -f "$md" ] || continue

  # Relative markdown links (skip absolute URLs and pure anchors),
  # resolved against the linking file's directory.
  md_dir=$(dirname "$md")
  for target in $(grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//'); do
    case "$target" in
      http://* | https://* | mailto:* | \#*) continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    [ -e "$md_dir/$path" ] || note "$md links to missing file '$path'"
  done

  # Build-target references must have a matching source file.
  for ref in $(grep -oE '\./build/(bench|examples)/[A-Za-z0-9_]+' "$md" | sort -u); do
    dir=$(printf '%s' "$ref" | cut -d/ -f3)
    name=$(printf '%s' "$ref" | cut -d/ -f4)
    [ -f "$dir/$name.cpp" ] || note "$md references $ref but $dir/$name.cpp does not exist"
  done
done

if [ "$fail" -eq 0 ]; then
  echo "docs-link-check: OK"
fi
exit "$fail"
