// The NNE's tiled datapath must be bit-exact against the untiled reference
// executor for every parallelism configuration in the paper's design space.
#include "core/nne.h"

#include <gtest/gtest.h>

#include "data/synth.h"
#include "nn/models.h"
#include "quant/qops.h"
#include "train/trainer.h"

namespace bnn::core {
namespace {

struct QuantizedFixture {
  QuantizedFixture() {
    util::Rng rng(21);
    model = std::make_unique<nn::Model>(nn::make_tiny_cnn(rng, 10, 1, 12));
    util::Rng data_rng(22);
    data::Dataset digits = data::make_synth_digits(120, data_rng);
    nn::Tensor small({digits.size(), 1, 12, 12});
    for (int n = 0; n < digits.size(); ++n)
      for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x)
          small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
    dataset = std::make_unique<data::Dataset>(std::move(small), digits.labels(), 10);

    model->set_bayesian_last(0);
    train::TrainConfig config;
    config.epochs = 2;
    config.batch_size = 16;
    train::fit(*model, *dataset, config);
    qnet = std::make_unique<quant::QuantNetwork>(quant::quantize_model(*model, *dataset));
  }

  std::unique_ptr<nn::Model> model;
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<quant::QuantNetwork> qnet;
};

QuantizedFixture& fixture() {
  static QuantizedFixture instance;
  return instance;
}

TEST(NneCycles, FormulaHandChecked) {
  nn::HwLayer layer;
  layer.op = nn::HwLayer::Op::conv;
  layer.in_c = 16;
  layer.out_c = 32;
  layer.kernel = 3;
  layer.conv_out_h = 10;
  layer.conv_out_w = 10;
  NneConfig config;
  config.pc = 64;
  config.pf = 64;
  config.pv = 1;
  // ceil(32/64)=1 filter tile, ceil(16*9/64)=ceil(144/64)=3 term tiles,
  // ceil(100/1)=100 position tiles -> 300 cycles.
  EXPECT_EQ(estimate_layer_cycles(layer, config), 300);

  config.pv = 4;  // ceil(100/4)=25 -> 75 cycles
  EXPECT_EQ(estimate_layer_cycles(layer, config), 75);
  config.pf = 8;  // ceil(32/8)=4 filter tiles -> 300
  EXPECT_EQ(estimate_layer_cycles(layer, config), 300);
}

TEST(NneCycles, LinearLayerIsKernelOneCase) {
  nn::HwLayer layer;
  layer.op = nn::HwLayer::Op::linear;
  layer.in_c = 400;
  layer.out_c = 120;
  NneConfig config;
  config.pc = 64;
  config.pf = 64;
  config.pv = 1;
  // ceil(120/64)=2, ceil(400/64)=7, 1 position -> 14 cycles.
  EXPECT_EQ(estimate_layer_cycles(layer, config), 14);
}

TEST(NneCycles, PeakGopsFromParallelism) {
  NneConfig config;
  config.pc = 64;
  config.pf = 64;
  config.pv = 1;
  config.clock_mhz = 225.0;
  EXPECT_EQ(config.macs_per_cycle(), 4096);
  EXPECT_NEAR(config.peak_gops(), 4096.0 * 2.0 * 225.0 / 1e3, 1e-9);  // 1843.2
}

struct TilingCase {
  int pc, pf, pv;
};

class NneTiling : public ::testing::TestWithParam<TilingCase> {};

// For every layer of the quantized network, the tiled NNE execution must
// reproduce the reference executor's int8 output exactly and its counted
// cycles must equal the closed-form estimate.
TEST_P(NneTiling, BitExactAgainstReferenceAndFormula) {
  const TilingCase tc = GetParam();
  NneConfig config;
  config.pc = tc.pc;
  config.pf = tc.pf;
  config.pv = tc.pv;

  auto& fx = fixture();
  const quant::QuantNetwork& qnet = *fx.qnet;
  const quant::QTensor image = quant::quantize_image(fx.dataset->images(), 0, qnet.input);

  // Reference chain (deterministic).
  const std::vector<quant::QTensor> ref = quant::ref_forward(qnet, image, 0, nullptr);

  // Tiled execution layer by layer, feeding reference inputs so each layer
  // is compared in isolation as well as in composition.
  const quant::QTensor* input = &image;
  for (int l = 0; l < qnet.num_layers(); ++l) {
    const quant::QLayer& layer = qnet.layers[static_cast<std::size_t>(l)];
    const quant::QTensor* shortcut =
        layer.geom.has_shortcut ? &ref[static_cast<std::size_t>(layer.shortcut_source)]
                                : nullptr;
    const NneLayerResult result = nne_run_layer(layer, *input, shortcut, false, nullptr,
                                                qnet.dropout_keep, config);
    EXPECT_EQ(result.output.data, ref[static_cast<std::size_t>(l)].data)
        << "layer " << l << " diverges at PC=" << tc.pc << " PF=" << tc.pf
        << " PV=" << tc.pv;
    EXPECT_EQ(result.compute_cycles, estimate_layer_cycles(layer.geom, config))
        << "cycle count mismatch at layer " << l;
    EXPECT_EQ(result.macs_retired, layer.geom.macs());
    input = &ref[static_cast<std::size_t>(l)];
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperDesignSpace, NneTiling,
    ::testing::Values(TilingCase{8, 8, 1}, TilingCase{16, 8, 4}, TilingCase{32, 16, 1},
                      TilingCase{64, 64, 1}, TilingCase{128, 128, 16},
                      TilingCase{8, 128, 8}, TilingCase{128, 8, 1}));

TEST(NneDropout, SameMaskStreamGivesSameOutputs) {
  auto& fx = fixture();
  const quant::QuantNetwork& qnet = *fx.qnet;
  const quant::QTensor image = quant::quantize_image(fx.dataset->images(), 1, qnet.input);

  NneConfig config;
  config.pc = 16;
  config.pf = 8;
  config.pv = 4;

  nn::RngMaskSource masks_ref(qnet.dropout_p, util::Rng(7));
  nn::RngMaskSource masks_nne(qnet.dropout_p, util::Rng(7));

  const std::vector<quant::QTensor> ref =
      quant::ref_forward(qnet, image, qnet.num_sites, &masks_ref);

  const quant::QTensor* input = &image;
  std::vector<quant::QTensor> outputs;
  for (int l = 0; l < qnet.num_layers(); ++l) {
    const quant::QLayer& layer = qnet.layers[static_cast<std::size_t>(l)];
    const quant::QTensor* shortcut =
        layer.geom.has_shortcut ? &outputs[static_cast<std::size_t>(layer.shortcut_source)]
                                : nullptr;
    NneLayerResult result =
        nne_run_layer(layer, *input, shortcut, layer.geom.is_bayes_site, &masks_nne,
                      qnet.dropout_keep, config);
    if (layer.geom.is_bayes_site) {
      EXPECT_EQ(result.mask_bits_consumed, layer.geom.out_c);
    }
    outputs.push_back(std::move(result.output));
    EXPECT_EQ(outputs.back().data, ref[static_cast<std::size_t>(l)].data) << "layer " << l;
    input = &outputs.back();
  }
}

TEST(NneValidation, RejectsBadArguments) {
  auto& fx = fixture();
  const quant::QuantNetwork& qnet = *fx.qnet;
  const quant::QLayer& first = qnet.layers.front();
  const quant::QTensor image = quant::quantize_image(fx.dataset->images(), 0, qnet.input);
  NneConfig config;
  // Active site without a mask source.
  EXPECT_THROW(
      nne_run_layer(first, image, nullptr, true, nullptr, qnet.dropout_keep, config),
      std::invalid_argument);
  // Wrong input shape.
  quant::QTensor wrong({3, 5, 5}, qnet.input);
  EXPECT_THROW(
      nne_run_layer(first, wrong, nullptr, false, nullptr, qnet.dropout_keep, config),
      std::invalid_argument);
}

}  // namespace
}  // namespace bnn::core
