#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bayes/predictive.h"
#include "data/synth.h"
#include "metrics/metrics.h"
#include "quant/fixed_point.h"
#include "quant/qnetwork.h"
#include "quant/qops.h"
#include "quant/qtensor.h"
#include "train/trainer.h"

namespace bnn::quant {
namespace {

TEST(FixedPoint, MultiplierRoundTrip) {
  for (double value : {1.0, 0.5, 0.1234, 1.0 / 0.75, 0.0003, 7.25, -0.4, -1.5}) {
    const FixedMultiplier m = quantize_multiplier(value);
    EXPECT_NEAR(multiplier_value(m), value, std::fabs(value) * 1e-8 + 1e-12) << value;
  }
  const FixedMultiplier zero = quantize_multiplier(0.0);
  EXPECT_EQ(zero.mult, 0);
}

TEST(FixedPoint, FixedMultiplyApproximatesRealProduct) {
  util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const double m_real = rng.uniform(-4.0, 4.0);
    if (std::fabs(m_real) < 1e-6) continue;
    const FixedMultiplier m = quantize_multiplier(m_real);
    const auto x = static_cast<std::int32_t>(rng.uniform_int(-100000, 100000));
    const double expected = static_cast<double>(x) * m_real;
    EXPECT_NEAR(fixed_multiply(x, m), expected, 1.0 + std::fabs(expected) * 1e-6);
  }
}

TEST(FixedPoint, RoundingDivideByPotMatchesNearestTiesAway) {
  EXPECT_EQ(rounding_divide_by_pot(5, 1), 3);    // 2.5 -> 3
  EXPECT_EQ(rounding_divide_by_pot(4, 2), 1);    // 1.0
  EXPECT_EQ(rounding_divide_by_pot(6, 2), 2);    // 1.5 -> 2
  EXPECT_EQ(rounding_divide_by_pot(-5, 1), -3);  // -2.5 -> -3 (ties away from zero)
  EXPECT_EQ(rounding_divide_by_pot(-6, 2), -2);  // -1.5 -> -2
  EXPECT_EQ(rounding_divide_by_pot(-7, 2), -2);  // -1.75 -> -2
  EXPECT_EQ(rounding_divide_by_pot(100, 0), 100);
}

TEST(FixedPoint, SaturateInt8Clamps) {
  EXPECT_EQ(saturate_int8(300), 127);
  EXPECT_EQ(saturate_int8(-300), -128);
  EXPECT_EQ(saturate_int8(-5), -5);
}

TEST(FixedPoint, RoundedDivTiesAwayFromZero) {
  EXPECT_EQ(rounded_div(5, 2), 3);
  EXPECT_EQ(rounded_div(-5, 2), -3);
  EXPECT_EQ(rounded_div(4, 2), 2);
  EXPECT_EQ(rounded_div(7, 3), 2);
  EXPECT_THROW(rounded_div(4, 0), std::invalid_argument);
}

TEST(QuantParams, CoversRangeAndZeroIsExact) {
  const QuantParams p = choose_activation_params(-1.0f, 3.0f);
  // Real zero must map to an integer zero point.
  const float zero_real = p.scale * static_cast<float>(0 - p.zero_point + p.zero_point);
  EXPECT_EQ(zero_real, 0.0f);
  // Range endpoints representable within one step.
  const float lo = p.scale * static_cast<float>(-128 - p.zero_point);
  const float hi = p.scale * static_cast<float>(127 - p.zero_point);
  EXPECT_LE(lo, -1.0f + p.scale);
  EXPECT_GE(hi, 3.0f - p.scale);
}

TEST(QuantParams, PurelyPositiveRangePinsZeroPoint) {
  const QuantParams p = choose_activation_params(0.0f, 6.0f);
  EXPECT_EQ(p.zero_point, -128);
  EXPECT_NEAR(p.scale, 6.0f / 255.0f, 1e-6f);
}

TEST(QuantParams, DegenerateRangeIsSafe) {
  const QuantParams p = choose_activation_params(0.0f, 0.0f);
  EXPECT_GT(p.scale, 0.0f);
}

TEST(QTensorTest, QuantizeDequantizeRoundTrip) {
  util::Rng rng(2);
  nn::Tensor image = nn::Tensor::uniform({1, 3, 8, 8}, rng, -1.0f, 2.0f);
  const QuantParams p = choose_activation_params(-1.0f, 2.0f);
  const QTensor q = quantize_image(image, 0, p);
  const nn::Tensor back = dequantize(q);
  for (std::int64_t i = 0; i < image.numel(); ++i)
    EXPECT_NEAR(back[i], image[i], p.scale * 0.51f);
}

TEST(QTensorTest, WeightScaleSymmetric) {
  const float weights[] = {-0.5f, 0.2f, 0.4f};
  const float scale = choose_weight_scale(weights, 3);
  EXPECT_NEAR(scale, 0.5f / 127.0f, 1e-7f);
}

// Shared fixture: a small trained-ish model and its quantization.
class QuantizedModel : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng(7);
    model_ = new nn::Model(nn::make_tiny_cnn(rng, 10, 1, 12));
    util::Rng data_rng(8);
    data::Dataset digits = data::make_synth_digits(160, data_rng);
    nn::Tensor small({digits.size(), 1, 12, 12});
    for (int n = 0; n < digits.size(); ++n)
      for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x)
          small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
    dataset_ = new data::Dataset(std::move(small), digits.labels(), 10);

    model_->set_bayesian_last(0);
    train::TrainConfig config;
    config.epochs = 3;
    config.batch_size = 16;
    train::fit(*model_, *dataset_, config);
    qnet_ = new QuantNetwork(quantize_model(*model_, *dataset_));
  }
  static void TearDownTestSuite() {
    delete qnet_;
    delete dataset_;
    delete model_;
    qnet_ = nullptr;
    dataset_ = nullptr;
    model_ = nullptr;
  }

  static nn::Model* model_;
  static data::Dataset* dataset_;
  static QuantNetwork* qnet_;
};

nn::Model* QuantizedModel::model_ = nullptr;
data::Dataset* QuantizedModel::dataset_ = nullptr;
QuantNetwork* QuantizedModel::qnet_ = nullptr;

TEST_F(QuantizedModel, StructureMatchesFloatModel) {
  EXPECT_EQ(qnet_->num_layers(), model_->describe().num_layers());
  EXPECT_EQ(qnet_->num_sites, model_->num_sites());
  EXPECT_EQ(qnet_->num_classes, 10);
  for (const QLayer& layer : qnet_->layers) {
    EXPECT_EQ(static_cast<int>(layer.weight_scales.size()), layer.geom.out_c);
    EXPECT_EQ(static_cast<int>(layer.requant.size()), layer.geom.out_c);
    EXPECT_EQ(static_cast<int>(layer.bias.size()), layer.geom.out_c);
  }
}

TEST_F(QuantizedModel, ChainedQuantParams) {
  EXPECT_EQ(qnet_->layers.front().in, qnet_->input);
  for (std::size_t l = 1; l < qnet_->layers.size(); ++l)
    EXPECT_EQ(qnet_->layers[l].in, qnet_->layers[l - 1].out);
}

TEST_F(QuantizedModel, IntegerLogitsTrackFloatLogits) {
  model_->set_bayesian_last(0);
  model_->net().set_training(false);
  const data::Batch batch = dataset_->batch(0, 16);
  const nn::Tensor float_logits = model_->net().forward(batch.images);

  int argmax_agreement = 0;
  for (int n = 0; n < 16; ++n) {
    const QTensor image = quantize_image(batch.images, n, qnet_->input);
    const auto outputs = ref_forward(*qnet_, image, 0, nullptr);
    const nn::Tensor q_logits = ref_logits(*qnet_, outputs.back());
    int float_best = 0;
    int q_best = 0;
    for (int k = 1; k < 10; ++k) {
      if (float_logits.v2(n, k) > float_logits.v2(n, float_best)) float_best = k;
      if (q_logits.v2(0, k) > q_logits.v2(0, q_best)) q_best = k;
    }
    argmax_agreement += float_best == q_best ? 1 : 0;
  }
  EXPECT_GE(argmax_agreement, 14) << "int8 inference diverges from float reference";
}

TEST_F(QuantizedModel, QuantizedAccuracyCloseToFloat) {
  model_->set_bayesian_last(0);
  const double float_acc = train::evaluate_accuracy(*model_, *dataset_);

  nn::Tensor probs({dataset_->size(), 10});
  for (int n = 0; n < dataset_->size(); ++n) {
    const QTensor image = quantize_image(dataset_->images(), n, qnet_->input);
    const auto outputs = ref_forward(*qnet_, image, 0, nullptr);
    const nn::Tensor logits = ref_logits(*qnet_, outputs.back());
    for (int k = 0; k < 10; ++k) probs.v2(n, k) = logits.v2(0, k);
  }
  const double q_acc = metrics::accuracy(probs, dataset_->labels());
  EXPECT_NEAR(q_acc, float_acc, 0.08) << "8-bit quantization accuracy drop too large";
}

TEST_F(QuantizedModel, DeterministicForwardIsRepeatable) {
  const QTensor image = quantize_image(dataset_->images(), 0, qnet_->input);
  const auto a = ref_forward(*qnet_, image, 0, nullptr);
  const auto b = ref_forward(*qnet_, image, 0, nullptr);
  for (std::size_t l = 0; l < a.size(); ++l) EXPECT_EQ(a[l].data, b[l].data);
}

TEST_F(QuantizedModel, DropoutMasksZeroWholeFilters) {
  nn::RngMaskSource masks(0.5, util::Rng(3));
  const QTensor image = quantize_image(dataset_->images(), 0, qnet_->input);
  const auto outputs = ref_forward(*qnet_, image, qnet_->num_sites, &masks);
  // Check the first conv layer: each filter plane is either all-zp (dropped)
  // or untouched-by-zeroing (kept).
  const QLayer& first = qnet_->layers.front();
  const QTensor& out0 = outputs.front();
  int dropped = 0;
  for (int f = 0; f < out0.channels(); ++f) {
    bool all_zp = true;
    for (int h = 0; h < out0.height(); ++h)
      for (int w = 0; w < out0.width(); ++w)
        if (out0.at(f, h, w) != first.out.zero_point) all_zp = false;
    dropped += all_zp ? 1 : 0;
  }
  EXPECT_GT(dropped, 0);  // with p=0.5 over 8 filters, overwhelmingly likely
}

TEST_F(QuantizedModel, IcEquivalentToFullRecomputeBitExactly) {
  const data::Batch batch = dataset_->batch(0, 4);
  for (int bayes_layers : {1, 2, 3}) {
    nn::RngMaskSource masks_a(qnet_->dropout_p, util::Rng(42));
    nn::RngMaskSource masks_b(qnet_->dropout_p, util::Rng(42));
    const nn::Tensor with_ic =
        ref_mc_predict(*qnet_, batch.images, bayes_layers, 6, masks_a, true);
    const nn::Tensor without_ic =
        ref_mc_predict(*qnet_, batch.images, bayes_layers, 6, masks_b, false);
    EXPECT_EQ(with_ic.max_abs_diff(without_ic), 0.0f)
        << "integer-domain IC must be bit-exact (L=" << bayes_layers << ")";
  }
}

TEST_F(QuantizedModel, McPredictRowsNormalized) {
  nn::RngMaskSource masks(qnet_->dropout_p, util::Rng(5));
  const data::Batch batch = dataset_->batch(0, 3);
  const nn::Tensor probs = ref_mc_predict(*qnet_, batch.images, 2, 8, masks, true);
  for (int n = 0; n < 3; ++n) {
    float sum = 0.0f;
    for (int k = 0; k < 10; ++k) sum += probs.v2(n, k);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST_F(QuantizedModel, CutLayerMatchesDescription) {
  const nn::NetworkDesc desc = qnet_->describe();
  for (int bayes = 0; bayes <= qnet_->num_sites; ++bayes)
    EXPECT_EQ(qnet_->cut_layer_for(bayes), desc.cut_layer_for(bayes));
}

// The historical conv reference loop of qops.cpp, kept verbatim as the
// regression oracle: plain per-position (c, kh, kw) accumulation with
// bounds-checked padding, then requant/shortcut/ReLU. The production loop
// now routes interior windows through nn::kernels::dot_i8_zp_gather; int32
// accumulation is exact, so the two must agree bit-for-bit.
QTensor plain_conv_pre_pool(const QLayer& layer, const QTensor& input,
                            const QTensor* shortcut) {
  const nn::HwLayer& g = layer.geom;
  const std::int32_t zp_in = layer.in.zero_point;
  const std::int32_t zp_out = layer.out.zero_point;
  const std::int32_t zp_sc = g.has_shortcut ? shortcut->params.zero_point : 0;
  QTensor pre({g.out_c, g.conv_out_h, g.conv_out_w}, layer.out);
  for (int f = 0; f < g.out_c; ++f) {
    const std::int8_t* w = layer.weight_row(f);
    for (int oh = 0; oh < g.conv_out_h; ++oh) {
      for (int ow = 0; ow < g.conv_out_w; ++ow) {
        std::int32_t acc = layer.bias[static_cast<std::size_t>(f)];
        for (int c = 0; c < g.in_c; ++c) {
          for (int kh = 0; kh < g.kernel; ++kh) {
            const int ih = oh * g.stride - g.pad + kh;
            if (ih < 0 || ih >= g.in_h) continue;  // padding contributes zero
            for (int kw = 0; kw < g.kernel; ++kw) {
              const int iw = ow * g.stride - g.pad + kw;
              if (iw < 0 || iw >= g.in_w) continue;
              acc += (static_cast<std::int32_t>(input.at(c, ih, iw)) - zp_in) *
                     static_cast<std::int32_t>(w[(c * g.kernel + kh) * g.kernel + kw]);
            }
          }
        }
        std::int32_t q = fixed_multiply(acc, layer.requant[static_cast<std::size_t>(f)]) +
                         layer.post_add[static_cast<std::size_t>(f)] + zp_out;
        if (g.has_shortcut)
          q += fixed_multiply(static_cast<std::int32_t>(shortcut->at(f, oh, ow)) - zp_sc,
                              layer.shortcut_rescale);
        if (g.has_relu) q = std::max(q, zp_out);
        pre.at(f, oh, ow) = saturate_int8(q);
      }
    }
  }
  return pre;
}

TEST(QuantConvGather, MatchesPlainLoopBitExactlyOnStridedPaddedShapes) {
  // Reduced ResNet-18 exercises the interesting conv geometries in one
  // network: 3x3 stride-1 and stride-2 convs with pad 1 (border windows),
  // 1x1 stride-2 pad-0 projections, and shortcut adds.
  util::Rng rng(17);
  nn::Model model = nn::make_resnet18(rng, 10, /*base_width=*/4);
  model.set_bayesian_last(0);
  util::Rng data_rng(18);
  data::Dataset objects = data::make_synth_objects(32, data_rng);
  QuantNetwork qnet = quantize_model(model, objects, {16});

  const QTensor image = quantize_image(objects.images(), 1, qnet.input);
  const std::vector<QTensor> outputs = ref_forward(qnet, image, 0, nullptr);

  int checked = 0;
  bool saw_strided = false, saw_padded = false, saw_pointwise = false;
  for (int l = 0; l < qnet.num_layers(); ++l) {
    const QLayer& layer = qnet.layers[static_cast<std::size_t>(l)];
    const nn::HwLayer& g = layer.geom;
    if (g.op != nn::HwLayer::Op::conv) continue;
    // Without pooling (and with no active site), the stored output IS the
    // pre-pool map the conv loop produced.
    if (g.pool_kernel != 0 || g.pool_is_global) continue;
    const QTensor& input =
        layer.input_source < 0 ? image
                               : outputs[static_cast<std::size_t>(layer.input_source)];
    const QTensor* shortcut =
        g.has_shortcut ? &outputs[static_cast<std::size_t>(layer.shortcut_source)]
                       : nullptr;
    const QTensor expected = plain_conv_pre_pool(layer, input, shortcut);
    EXPECT_EQ(expected.data, outputs[static_cast<std::size_t>(l)].data)
        << "layer " << l << " (" << g.label << "): gather-routed conv diverged "
        << "from the plain per-position loop";
    ++checked;
    saw_strided = saw_strided || g.stride > 1;
    saw_padded = saw_padded || g.pad > 0;
    saw_pointwise = saw_pointwise || g.kernel == 1;
  }
  EXPECT_GE(checked, 8);
  EXPECT_TRUE(saw_strided) << "fixture lost its stride-2 conv coverage";
  EXPECT_TRUE(saw_padded) << "fixture lost its padded conv coverage";
  EXPECT_TRUE(saw_pointwise) << "fixture lost its 1x1 projection coverage";
}

// Residual topologies must quantize and execute too.
TEST(QuantResidual, ResNetQuantizesAndRuns) {
  util::Rng rng(11);
  nn::Model model = nn::make_resnet18(rng, 10, /*base_width=*/4);
  model.set_bayesian_last(0);
  util::Rng data_rng(12);
  data::Dataset objects = data::make_synth_objects(32, data_rng);
  QuantNetwork qnet = quantize_model(model, objects, {16});

  int shortcut_layers = 0;
  for (const QLayer& layer : qnet.layers)
    if (layer.geom.has_shortcut) {
      ++shortcut_layers;
      EXPECT_GE(layer.shortcut_source, 0);
      EXPECT_LT(layer.shortcut_source, qnet.num_layers());
    }
  EXPECT_EQ(shortcut_layers, 8);

  const QTensor image = quantize_image(objects.images(), 0, qnet.input);
  const auto outputs = ref_forward(qnet, image, 0, nullptr);
  EXPECT_EQ(outputs.back().numel(), 10);

  // Stochastic end-to-end with all sites active.
  nn::RngMaskSource masks(0.25, util::Rng(13));
  const auto stochastic = ref_forward(qnet, image, qnet.num_sites, &masks);
  EXPECT_EQ(stochastic.back().numel(), 10);
}

}  // namespace
}  // namespace bnn::quant
