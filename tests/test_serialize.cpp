#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "nn/models.h"

namespace bnn::nn {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, RoundTripRestoresOutputs) {
  util::Rng rng_a(1);
  Model a = make_tiny_cnn(rng_a, 10, 1, 12);
  util::Rng rng_b(2);  // different init
  Model b = make_tiny_cnn(rng_b, 10, 1, 12);
  a.set_bayesian_last(0);
  b.set_bayesian_last(0);

  util::Rng input_rng(3);
  Tensor x = Tensor::randn({2, 1, 12, 12}, input_rng);
  const Tensor out_a = a.net().forward(x);
  EXPECT_GT(out_a.max_abs_diff(b.net().forward(x)), 0.0f);

  const std::string path = temp_path("bnn_serialize_roundtrip.weights");
  save_model_state(a, path);
  ASSERT_TRUE(load_model_state(b, path));
  EXPECT_EQ(out_a.max_abs_diff(b.net().forward(x)), 0.0f);
  std::remove(path.c_str());
}

TEST(Serialize, PreservesBatchNormRunningStats) {
  util::Rng rng(4);
  Model a = make_tiny_cnn(rng, 10, 1, 12);
  // Push running stats off their defaults with a training pass.
  a.set_bayesian_last(0);
  a.net().set_training(true);
  util::Rng x_rng(5);
  (void)a.net().forward(Tensor::randn({4, 1, 12, 12}, x_rng, 3.0f, 2.0f));
  a.net().set_training(false);

  const std::string path = temp_path("bnn_serialize_bn.weights");
  save_model_state(a, path);
  util::Rng rng_b(4);
  Model b = make_tiny_cnn(rng_b, 10, 1, 12);
  b.set_bayesian_last(0);
  ASSERT_TRUE(load_model_state(b, path));

  // Eval-mode outputs depend on running stats; equality proves they moved.
  util::Rng probe_rng(6);
  Tensor probe = Tensor::randn({1, 1, 12, 12}, probe_rng);
  EXPECT_EQ(a.net().forward(probe).max_abs_diff(b.net().forward(probe)), 0.0f);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileReturnsFalse) {
  util::Rng rng(7);
  Model model = make_tiny_cnn(rng, 10, 1, 12);
  EXPECT_FALSE(load_model_state(model, temp_path("definitely_missing.weights")));
}

TEST(Serialize, ArchitectureMismatchRejected) {
  util::Rng rng(8);
  Model small = make_tiny_cnn(rng, 10, 1, 12);
  const std::string path = temp_path("bnn_serialize_mismatch.weights");
  save_model_state(small, path);

  util::Rng rng_b(9);
  Model lenet = make_lenet5(rng_b);
  EXPECT_FALSE(load_model_state(lenet, path));
  std::remove(path.c_str());
}

TEST(Serialize, GarbageFileRejected) {
  const std::string path = temp_path("bnn_serialize_garbage.weights");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a weights file";
  }
  util::Rng rng(10);
  Model model = make_tiny_cnn(rng, 10, 1, 12);
  EXPECT_FALSE(load_model_state(model, path));
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileDoesNotHalfLoad) {
  util::Rng rng(11);
  Model model = make_tiny_cnn(rng, 10, 1, 12);
  const std::string path = temp_path("bnn_serialize_trunc.weights");
  save_model_state(model, path);

  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);

  util::Rng rng_b(12);
  Model fresh = make_tiny_cnn(rng_b, 10, 1, 12);
  util::Rng probe_rng(13);
  Tensor probe = Tensor::randn({1, 1, 12, 12}, probe_rng);
  fresh.set_bayesian_last(0);
  const Tensor before = fresh.net().forward(probe);
  bool loaded = false;
  try {
    loaded = load_model_state(fresh, path);
  } catch (const std::exception&) {
    loaded = false;
  }
  EXPECT_FALSE(loaded);
  // The model must be untouched after the failed load.
  EXPECT_EQ(before.max_abs_diff(fresh.net().forward(probe)), 0.0f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bnn::nn
