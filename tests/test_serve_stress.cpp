// Stress and property tests over the serving layer's concurrency surface:
//   - N concurrent submitters x mixed shapes x random {S, L, router} x
//     shutdown-while-queued: every accepted request resolves exactly once
//     with a value that matches a single-threaded replay bit-for-bit,
//   - backpressure properties: the queue never exceeds max_queue_depth,
//     fail-fast rejections carry the distinct QueueFullError, blocked
//     submitters are released by shutdown, and the ServerStats counters
//     stay consistent (requests + rejected == submitted) under replicas.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/accelerator.h"
#include "data/synth.h"
#include "nn/models.h"
#include "train/trainer.h"

namespace bnn {
namespace {

// Tiny quantized CNN on 12x12 synthetic digits (the shared test workload;
// trained once per process).
struct StressCnnFixture {
  StressCnnFixture() {
    util::Rng rng(71);
    nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
    util::Rng data_rng(72);
    dataset = std::make_unique<data::Dataset>(data::make_synth_digits_small(96, data_rng));

    model.set_bayesian_last(0);
    train::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    train::fit(model, *dataset, config);
    qnet = std::make_unique<quant::QuantNetwork>(quant::quantize_model(model, *dataset));
  }

  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<quant::QuantNetwork> qnet;
};

StressCnnFixture& cnn_fixture() {
  static StressCnnFixture instance;
  return instance;
}

// Linear-first network: two (C,H,W) views of equal numel are both valid
// inputs, which is what makes genuinely mixed-shape waves possible.
struct StressMlpFixture {
  StressMlpFixture() {
    util::Rng rng(91);
    nn::Model model = nn::make_mlp3(rng, 49, 24, 10, nn::MlpActivation::relu,
                                    /*with_mcd_sites=*/true);
    util::Rng data_rng(92);
    data::Dataset digits = data::make_synth_digits(96, data_rng);
    nn::Tensor small({digits.size(), 49, 1, 1});
    for (int n = 0; n < digits.size(); ++n)
      for (int y = 0; y < 7; ++y)
        for (int x = 0; x < 7; ++x)
          small.v4(n, y * 7 + x, 0, 0) = digits.images().v4(n, 0, 4 * y + 2, 4 * x + 2);
    dataset = std::make_unique<data::Dataset>(std::move(small), digits.labels(), 10);

    train::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    train::fit(model, *dataset, config);
    qnet = std::make_unique<quant::QuantNetwork>(quant::quantize_model(model, *dataset));
  }

  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<quant::QuantNetwork> qnet;
};

StressMlpFixture& mlp_fixture() {
  static StressMlpFixture instance;
  return instance;
}

core::AcceleratorConfig accel_config(int num_threads) {
  core::AcceleratorConfig config;
  config.nne.pc = 16;
  config.nne.pf = 8;
  config.nne.pv = 4;
  config.sampler_seed = 4321;
  config.num_threads = num_threads;
  return config;
}

// Deterministic per-submitter request generator: random-ish {S, L, router}
// knobs drawn from a seeded Rng, stream id pinned to a globally unique
// ticket so the single-threaded replay reproduces the exact response.
serve::Request random_request(const data::Dataset& dataset, util::Rng& rng,
                              std::uint64_t stream_id, int max_sites) {
  serve::Request request;
  request.image = dataset.images().batch_row(rng.uniform_int(0, dataset.size() - 1));
  request.options.num_samples = rng.uniform_int(1, 6);
  request.options.bayes_layers = rng.uniform_int(0, max_sites);
  if (rng.uniform_int(0, 2) == 0) {
    request.options.use_uncertainty_router = true;
    request.options.screening_samples = rng.uniform_int(1, 3);
    // Below 0 escalates everything, above ln(10) nothing, 0.9 splits.
    const double thresholds[3] = {-1.0, 0.9, 100.0};
    request.options.entropy_threshold_nats =
        thresholds[rng.uniform_int(0, 2)];
  }
  request.stream_id = stream_id;
  return request;
}

// --- concurrent submitters vs single-threaded replay ------------------------

TEST(ServeStress, ConcurrentRandomTrafficMatchesSingleThreadedReplay) {
  auto& fx = cnn_fixture();
  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 8;

  struct Issued {
    serve::Request request;  // image/options copy for the replay
    std::future<serve::Response> future;
  };
  std::vector<std::vector<Issued>> issued(kSubmitters);

  {
    serve::ServerConfig config;
    config.max_batch = 4;
    config.num_replicas = 2;
    config.max_queue_depth = 16;
    config.overload_policy = serve::OverloadPolicy::block;  // nothing rejected
    serve::Server server(core::Accelerator(*fx.qnet, accel_config(0)), config);

    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        util::Rng rng(1000 + static_cast<std::uint64_t>(t));
        for (int i = 0; i < kPerThread; ++i) {
          const std::uint64_t stream_id =
              static_cast<std::uint64_t>(t) * 1000 + static_cast<std::uint64_t>(i);
          serve::Request request = random_request(*fx.dataset, rng, stream_id, 2);
          Issued entry;
          entry.request.image = request.image;  // keep a copy for the replay
          entry.request.options = request.options;
          entry.request.stream_id = request.stream_id;
          entry.future = server.submit(std::move(request));
          issued[static_cast<std::size_t>(t)].push_back(std::move(entry));
        }
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
    // Destructor drains: every accepted request is served before join.
  }

  // Single-threaded replay: one replica, one-request batches, sequential
  // pair loop. Same stream ids -> bit-identical responses required.
  serve::ServerConfig replay_config;
  replay_config.max_batch = 1;
  replay_config.num_threads = 1;
  serve::Server replay(core::Accelerator(*fx.qnet, accel_config(1)), replay_config);

  int resolved = 0;
  for (auto& thread_issued : issued) {
    for (Issued& entry : thread_issued) {
      ASSERT_EQ(entry.future.wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
      const serve::Response live = entry.future.get();  // exactly-once: get() after ready
      ++resolved;
      const serve::Response ref = replay.infer(std::move(entry.request));
      EXPECT_EQ(live.probs.max_abs_diff(ref.probs), 0.0f)
          << "stream " << live.stream_id;
      EXPECT_EQ(live.escalated, ref.escalated) << "stream " << live.stream_id;
      EXPECT_EQ(live.samples_used, ref.samples_used) << "stream " << live.stream_id;
      EXPECT_EQ(live.predicted_class, ref.predicted_class)
          << "stream " << live.stream_id;
    }
  }
  EXPECT_EQ(resolved, kSubmitters * kPerThread);
}

TEST(ServeStress, MixedShapeConcurrentWaveWithShutdownWhileQueued) {
  auto& fx = mlp_fixture();
  constexpr int kSubmitters = 3;

  struct Issued {
    serve::Request request;
    std::future<serve::Response> future;
  };
  std::mutex issued_mutex;
  std::vector<Issued> issued;
  std::atomic<int> shutdown_rejections{0};

  auto server = std::make_unique<serve::Server>(
      core::Accelerator(*fx.qnet, accel_config(1)), [] {
        serve::ServerConfig config;
        config.max_batch = 8;
        config.num_replicas = 2;
        config.batch_linger = std::chrono::milliseconds(5);  // keep a queue alive
        return config;
      }());

  // Submitters push mixed flat/square views until the server shuts down
  // under them; a submit() racing shutdown must throw, never hang or leak.
  std::atomic<bool> go{true};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      util::Rng rng(500 + static_cast<std::uint64_t>(t));
      // Bounded wave: enough traffic to keep the queue populated when the
      // shutdown lands, small enough that the replay stays cheap.
      for (int i = 0; i < 40 && go.load(); ++i) {
        const std::uint64_t stream_id =
            static_cast<std::uint64_t>(t) * 10000 + static_cast<std::uint64_t>(i);
        serve::Request request = random_request(*fx.dataset, rng, stream_id, 2);
        if (rng.uniform_int(0, 1) == 1) {
          // Same pixels under the square view: a genuinely mixed-shape wave.
          request.image = request.image.reshaped({1, 1, 7, 7});
        }
        Issued entry;
        entry.request.image = request.image;
        entry.request.options = request.options;
        entry.request.stream_id = request.stream_id;
        try {
          entry.future = server->submit(std::move(request));
        } catch (const std::runtime_error&) {
          shutdown_rejections.fetch_add(1);  // shutdown raced the submit
          break;
        }
        std::lock_guard<std::mutex> lock(issued_mutex);
        issued.push_back(std::move(entry));
      }
    });
  }

  // Let traffic build up, then shut down with requests still queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server->shutdown();
  go.store(false);
  for (std::thread& submitter : submitters) submitter.join();

  const serve::ServerStats stats = server->stats();
  ASSERT_FALSE(issued.empty());
  EXPECT_EQ(stats.requests, issued.size());  // every accepted request served
  EXPECT_EQ(stats.submitted, issued.size());
  EXPECT_EQ(stats.rejected, 0u);

  // Every accepted future resolves exactly once with a value matching the
  // single-threaded replay (flat and square views of the same pixels are
  // the same request to a linear-first network).
  serve::ServerConfig replay_config;
  replay_config.max_batch = 1;
  replay_config.num_threads = 1;
  serve::Server replay(core::Accelerator(*fx.qnet, accel_config(1)), replay_config);
  for (Issued& entry : issued) {
    ASSERT_EQ(entry.future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const serve::Response live = entry.future.get();
    const serve::Response ref = replay.infer(std::move(entry.request));
    EXPECT_EQ(live.probs.max_abs_diff(ref.probs), 0.0f) << "stream " << live.stream_id;
    EXPECT_EQ(live.escalated, ref.escalated) << "stream " << live.stream_id;
  }

  // Submitting after shutdown keeps throwing.
  serve::Request late;
  late.image = fx.dataset->images().batch_row(0);
  EXPECT_THROW(server->submit(std::move(late)), std::runtime_error);
}

// --- backpressure properties ------------------------------------------------

serve::Request slow_request(const data::Dataset& dataset, int n, int num_samples,
                            std::uint64_t stream_id) {
  serve::Request request;
  request.image = dataset.images().batch_row(n);
  request.options.num_samples = num_samples;
  request.options.bayes_layers = 2;
  request.stream_id = stream_id;
  return request;
}

TEST(ServeBackpressure, FailFastRejectsWithDistinctErrorAndConsistentCounters) {
  auto& fx = cnn_fixture();
  serve::ServerConfig config;
  config.max_batch = 1;
  config.num_threads = 1;
  config.max_queue_depth = 2;
  config.overload_policy = serve::OverloadPolicy::fail_fast;
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), config);

  // A slow head request keeps the single replica busy while the rest of
  // the wave lands: at most max_queue_depth of them can be queued, the
  // remainder must fail fast with the distinct QueueFullError.
  std::vector<std::future<serve::Response>> futures;
  futures.push_back(server.submit(slow_request(*fx.dataset, 0, 400, 0)));
  for (int i = 1; i <= 6; ++i)
    futures.push_back(server.submit(slow_request(*fx.dataset, i, 400, i)));

  int served = 0;
  int rejected = 0;
  for (auto& future : futures) {
    try {
      (void)future.get();
      ++served;
    } catch (const serve::QueueFullError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(served + rejected, 7);
  // The head request was in flight (or about to be) while the wave of six
  // arrived, so at least 6 - max_queue_depth - 1 of them had no room.
  EXPECT_GE(rejected, 3);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 7u);
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(served));
  EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(stats.requests + stats.rejected, stats.submitted);
  EXPECT_LE(stats.peak_queue_depth, 2u);

  // A rejection is not a failure state: later traffic still serves.
  EXPECT_EQ(server.infer(slow_request(*fx.dataset, 0, 2, 99)).probs.shape(),
            (std::vector<int>{1, 10}));
}

TEST(ServeBackpressure, BlockPolicyBoundsQueueAndNeverDeadlocks) {
  auto& fx = cnn_fixture();
  serve::ServerConfig config;
  config.max_batch = 2;
  config.num_replicas = 2;
  config.max_queue_depth = 2;
  config.overload_policy = serve::OverloadPolicy::block;
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), config);

  // More submitters than queue slots: every submission eventually lands
  // (blocking, never rejecting) and the queue bound holds throughout.
  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 6;
  std::atomic<int> served{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t stream_id =
            static_cast<std::uint64_t>(t) * 100 + static_cast<std::uint64_t>(i);
        (void)server.infer(slow_request(*fx.dataset, (t + i) % fx.dataset->size(), 3,
                                        stream_id));
        served.fetch_add(1);
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();

  EXPECT_EQ(served.load(), kSubmitters * kPerThread);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kSubmitters * kPerThread));
  EXPECT_EQ(stats.requests, stats.submitted);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_LE(stats.peak_queue_depth, 2u);
}

TEST(ServeBackpressure, ShutdownReleasesBlockedSubmitters) {
  auto& fx = cnn_fixture();
  serve::ServerConfig config;
  config.max_batch = 1;
  config.num_threads = 1;
  config.max_queue_depth = 1;
  config.overload_policy = serve::OverloadPolicy::block;
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), config);

  // Occupy the replica and fill the queue, then point extra submitters at
  // the full queue; shutdown must release every blocked one with the
  // shutdown error (or serve it, if a replica freed space first) — never
  // leave it waiting forever.
  std::vector<std::future<serve::Response>> accepted;
  accepted.push_back(server.submit(slow_request(*fx.dataset, 0, 400, 0)));
  accepted.push_back(server.submit(slow_request(*fx.dataset, 1, 400, 1)));

  std::atomic<int> blocked_outcomes{0};
  std::atomic<int> wrong_error{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      try {
        (void)server.infer(slow_request(*fx.dataset, 2 + t, 400,
                                        static_cast<std::uint64_t>(10 + t)));
      } catch (const serve::ShutdownError&) {
        // shutdown released this submitter with the DISTINCT error — a
        // woken submitter must fail this way, never enqueue post-stop.
      } catch (const std::exception&) {
        wrong_error.fetch_add(1);  // any other failure type is a bug
      }
      blocked_outcomes.fetch_add(1);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.shutdown();
  for (std::thread& submitter : submitters) submitter.join();
  EXPECT_EQ(blocked_outcomes.load(), 2);
  EXPECT_EQ(wrong_error.load(), 0);

  // Accepted-before-shutdown requests were drained, not dropped.
  for (auto& future : accepted)
    EXPECT_EQ(future.get().probs.shape(), (std::vector<int>{1, 10}));

  // Post-shutdown submissions carry the same distinct error.
  EXPECT_THROW((void)server.submit(slow_request(*fx.dataset, 0, 2, 99)),
               serve::ShutdownError);
}

// Shutdown racing an ADAPTIVE-policy wave: every submission must land in
// exactly one of {served, QueueFullError (shed), ShutdownError at submit},
// the counters must balance, and the decision log must replay exactly —
// even with the shutdown arriving mid-flood.
TEST(ServeBackpressure, AdaptiveShutdownRaceResolvesEveryOutcomeExactlyOnce) {
  auto& fx = cnn_fixture();
  serve::ServerConfig config;
  config.max_batch = 2;
  config.num_threads = 1;
  config.num_replicas = 2;
  config.max_queue_depth = 3;
  config.overload_policy = serve::OverloadPolicy::adaptive;
  config.latency_target_ms = 1e-9;  // sheds as soon as the window is warm
  config.calibrate_cost_model = false;
  config.admission_log_capacity = 256;
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), config);

  // Warm the window so the shedding path is live during the race.
  (void)server.infer(slow_request(*fx.dataset, 0, 2, 1000));

  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 12;
  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> shutdown_errors{0};
  std::atomic<int> wrong_outcome{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t stream_id =
            static_cast<std::uint64_t>(t) * 100 + static_cast<std::uint64_t>(i);
        serve::Request request =
            slow_request(*fx.dataset, (t + i) % fx.dataset->size(), 12, stream_id);
        if (i % 2 == 0) {
          request.options.use_uncertainty_router = true;  // downgrade-eligible
          request.options.screening_samples = 2;
        }
        try {
          (void)server.submit(std::move(request)).get();
          served.fetch_add(1);
        } catch (const serve::QueueFullError&) {
          shed.fetch_add(1);
        } catch (const serve::ShutdownError&) {
          shutdown_errors.fetch_add(1);
          break;  // server is gone; later submits would throw the same
        } catch (const std::exception&) {
          wrong_outcome.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.shutdown();
  for (std::thread& submitter : submitters) submitter.join();

  EXPECT_EQ(wrong_outcome.load(), 0);
  const serve::ServerStats stats = server.stats();
  // Everything accepted was served (+1 for the warm request), everything
  // shed got its QueueFullError, and the books balance.
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(served.load()) + 1);
  EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(shed.load()));
  EXPECT_EQ(stats.requests + stats.rejected, stats.submitted);
  EXPECT_EQ(stats.submitted,
            (stats.requests - stats.shed_downgraded) + stats.shed_downgraded +
                stats.rejected);
  EXPECT_LE(stats.peak_queue_depth, 3u);

  // Single-threaded replay of the recorded admission inputs reproduces
  // every decision the adaptive policy made during the race.
  for (const serve::AdmissionRecord& record : server.admission_log())
    EXPECT_EQ(serve::adaptive_admission(record.inputs), record.action);
}

}  // namespace
}  // namespace bnn
