// Extension modules: the CLT Gaussian sampler and the functional VIBNN /
// BYNQNet baseline algorithms (the paper only quotes their numbers; we
// implement them).
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bynqnet_model.h"
#include "baseline/vibnn_model.h"
#include "core/gaussian_sampler.h"
#include "data/synth.h"
#include "metrics/metrics.h"
#include "nn/activations.h"
#include "train/loss.h"

namespace bnn {
namespace {

TEST(GaussianSampler, RejectsBadConfig) {
  core::GaussianSamplerConfig config;
  config.clt_terms = 2;
  EXPECT_THROW(core::GaussianSampler{config}, std::invalid_argument);
  config.clt_terms = 12;
  config.uniform_bits = 40;
  EXPECT_THROW(core::GaussianSampler{config}, std::invalid_argument);
}

TEST(GaussianSampler, StandardMoments) {
  core::GaussianSamplerConfig config;
  config.seed = 5;
  core::GaussianSampler sampler(config);
  const int n = 40000;
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0, sum4 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = sampler.next();
    sum += z;
    sum2 += z * z;
    sum3 += z * z * z;
    sum4 += z * z * z * z;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
  EXPECT_NEAR(sum3 / n, 0.0, 0.05);        // symmetric
  EXPECT_NEAR(sum4 / n, 3.0, 0.25);        // near-Gaussian kurtosis
  EXPECT_EQ(sampler.samples_produced(), static_cast<std::uint64_t>(n));
  // Hardware cost: K uniforms of W bits per sample.
  EXPECT_EQ(sampler.lfsr_steps(),
            static_cast<std::uint64_t>(n) * config.clt_terms * config.uniform_bits);
}

TEST(GaussianSampler, TailProbabilityReasonable) {
  core::GaussianSamplerConfig config;
  config.seed = 9;
  core::GaussianSampler sampler(config);
  const int n = 40000;
  int beyond_two_sigma = 0;
  for (int i = 0; i < n; ++i)
    beyond_two_sigma += std::fabs(sampler.next()) > 2.0 ? 1 : 0;
  // True value 4.55%; CLT-12 is slightly light-tailed, allow [2.5%, 6%].
  const double rate = static_cast<double>(beyond_two_sigma) / n;
  EXPECT_GT(rate, 0.025);
  EXPECT_LT(rate, 0.06);
}

TEST(GaussianSampler, AffineTransform) {
  core::GaussianSamplerConfig config;
  config.seed = 11;
  core::GaussianSampler sampler(config);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = sampler.next(3.0, 0.5);
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.02);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 0.5, 0.02);
}

TEST(GaussianSampler, DeterministicPerSeed) {
  core::GaussianSamplerConfig config;
  config.seed = 21;
  core::GaussianSampler a(config);
  core::GaussianSampler b(config);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(QuadraticLayer, ForwardAndGradient) {
  nn::Quadratic layer;
  layer.set_training(true);
  nn::Tensor x = nn::Tensor::from_values({1, 3}, {-2.0f, 0.5f, 3.0f});
  nn::Tensor y = layer.forward(x);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[1], 0.25f);
  EXPECT_FLOAT_EQ(y[2], 9.0f);
  nn::Tensor grad = layer.backward(nn::Tensor::full({1, 3}, 1.0f));
  EXPECT_FLOAT_EQ(grad[0], -4.0f);  // 2x
  EXPECT_FLOAT_EQ(grad[2], 6.0f);
}

TEST(Mlp3Builder, ShapesAndSites) {
  util::Rng rng(1);
  nn::Model plain = nn::make_mlp3(rng, 49, 32, 10);
  EXPECT_EQ(plain.num_sites(), 0);
  nn::Tensor x = nn::Tensor::randn({2, 49, 1, 1}, rng);
  EXPECT_EQ(plain.net().forward(x).shape(), (std::vector<int>{2, 10}));

  nn::Model mcd = nn::make_mlp3(rng, 49, 32, 10, nn::MlpActivation::relu, true);
  EXPECT_EQ(mcd.num_sites(), 2);
  nn::Model quad = nn::make_mlp3(rng, 49, 32, 10, nn::MlpActivation::quadratic);
  EXPECT_EQ(quad.net().find_nodes(nn::LayerKind::quadratic).size(), 2u);
}

// Shared small digit task for the baseline models (7x7 downsample keeps the
// MLPs small).
struct BaselineData {
  BaselineData() {
    util::Rng data_rng(71);
    data::Dataset digits = data::make_synth_digits(400, data_rng);
    nn::Tensor small({digits.size(), 49, 1, 1});
    for (int n = 0; n < digits.size(); ++n)
      for (int y = 0; y < 7; ++y)
        for (int x = 0; x < 7; ++x)
          small.v4(n, y * 7 + x, 0, 0) = digits.images().v4(n, 0, 4 * y + 2, 4 * x + 2);
    dataset = std::make_unique<data::Dataset>(std::move(small), digits.labels(), 10);
  }
  std::unique_ptr<data::Dataset> dataset;
};

BaselineData& baseline_data() {
  static BaselineData instance;
  return instance;
}

TEST(Vibnn, TrainsAndPredictsAboveChance) {
  auto& data = baseline_data();
  baseline::VibnnConfig config;
  config.hidden = 64;
  baseline::VibnnBnn vibnn(49, 10, config);
  vibnn.fit(*data.dataset, /*epochs=*/5, /*learning_rate=*/0.05);

  const nn::Tensor mean_probs = vibnn.mean_predict(data.dataset->images());
  EXPECT_GT(metrics::accuracy(mean_probs, data.dataset->labels()), 0.5);

  core::GaussianSamplerConfig sampler_config;
  sampler_config.seed = 3;
  core::GaussianSampler sampler(sampler_config);
  const nn::Tensor mc_probs = vibnn.mc_predict(data.dataset->images(), 8, sampler);
  EXPECT_GT(metrics::accuracy(mc_probs, data.dataset->labels()), 0.4);
  // Sampling injects weight noise: predictions soften but stay close.
  EXPECT_GE(metrics::average_predictive_entropy(mc_probs),
            metrics::average_predictive_entropy(mean_probs) - 1e-6);
}

TEST(Vibnn, MeanRestoredAfterSampling) {
  auto& data = baseline_data();
  baseline::VibnnConfig config;
  config.hidden = 32;
  baseline::VibnnBnn vibnn(49, 10, config);
  vibnn.fit(*data.dataset, 2, 0.05);
  const nn::Tensor before = vibnn.mean_predict(data.dataset->images());
  core::GaussianSamplerConfig sampler_config;
  core::GaussianSampler sampler(sampler_config);
  (void)vibnn.mc_predict(data.dataset->images(), 3, sampler);
  const nn::Tensor after = vibnn.mean_predict(data.dataset->images());
  EXPECT_EQ(before.max_abs_diff(after), 0.0f);
}

TEST(Bynqnet, MomentPropagationMatchesMonteCarlo) {
  // Untrained net, small hidden width: the algebra must match MC sampling.
  baseline::BynqnetConfig config;
  config.hidden = 16;
  config.seed = 4;
  baseline::BynqNet net(49, 10, config);

  auto& data = baseline_data();
  const data::Batch batch = data.dataset->batch(0, 3);
  const baseline::MomentOutput analytic = net.propagate_moments(batch.images);
  util::Rng mc_rng(5);
  const baseline::MomentOutput empirical =
      net.monte_carlo_moments(batch.images, 3000, mc_rng);

  for (int n = 0; n < 3; ++n) {
    for (int k = 0; k < 10; ++k) {
      const double m_a = analytic.mean.v2(n, k);
      const double m_e = empirical.mean.v2(n, k);
      const double v_a = analytic.variance.v2(n, k);
      const double v_e = empirical.variance.v2(n, k);
      EXPECT_NEAR(m_a, m_e, 0.05 * std::max(1.0, std::fabs(m_e)))
          << "mean mismatch at n=" << n << " k=" << k;
      EXPECT_NEAR(v_a, v_e, 0.25 * std::max(0.05, v_e))
          << "variance mismatch at n=" << n << " k=" << k;
    }
  }
}

TEST(Bynqnet, TrainsWithQuadraticActivations) {
  auto& data = baseline_data();
  baseline::BynqnetConfig config;
  config.hidden = 48;
  baseline::BynqNet net(49, 10, config);

  // Loss before vs after a short fit.
  auto current_loss = [&net, &data] {
    net.model().net().set_training(false);
    const nn::Tensor logits = net.model().net().forward(data.dataset->images());
    return train::softmax_cross_entropy(logits, data.dataset->labels()).loss;
  };
  const double before = current_loss();
  net.fit(*data.dataset, 10, 0.05);
  EXPECT_LT(current_loss(), before);

  util::Rng rng(6);
  const nn::Tensor probs = net.predictive(data.dataset->images(), 50, rng);
  EXPECT_GT(metrics::accuracy(probs, data.dataset->labels()), 0.3);
}

TEST(Bynqnet, PredictiveRowsNormalized) {
  baseline::BynqnetConfig config;
  config.hidden = 16;
  baseline::BynqNet net(49, 10, config);
  auto& data = baseline_data();
  util::Rng rng(7);
  const nn::Tensor probs = net.predictive(data.dataset->batch(0, 4).images, 20, rng);
  for (int n = 0; n < 4; ++n) {
    float sum = 0.0f;
    for (int k = 0; k < 10; ++k) sum += probs.v2(n, k);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

}  // namespace
}  // namespace bnn
