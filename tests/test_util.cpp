#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/check.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace bnn::util {
namespace {

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "bad input"), std::invalid_argument);
  try {
    require(false, "specific message");
  } catch (const std::invalid_argument& error) {
    EXPECT_STREQ(error.what(), "specific message");
  }
}

TEST(Check, EnsureThrowsLogicError) {
  EXPECT_NO_THROW(ensure(true, "fine"));
  EXPECT_THROW(ensure(false, "broken invariant"), std::logic_error);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, ForkProducesDecorrelatedStreams) {
  Rng root(7);
  Rng fork_a = root.fork(0);
  Rng fork_b = root.fork(1);
  Rng fork_a2 = root.fork(0);
  int equal_ab = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t a = fork_a.next_u64();
    EXPECT_EQ(a, fork_a2.next_u64());  // same id -> same stream
    if (a == fork_b.next_u64()) ++equal_ab;
  }
  EXPECT_EQ(equal_ab, 0);  // different id -> (almost surely) disjoint
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Optimization barrier without `volatile` compound assignment (deprecated
  // in C++20): accumulate locally, then publish through an atomic store.
  std::atomic<double> sink{0.0};
  double acc = 0.0;
  for (int i = 0; i < 100000; ++i) acc += i;
  sink.store(acc, std::memory_order_relaxed);
  const double seconds = watch.elapsed_seconds();
  EXPECT_GE(seconds, 0.0);
  EXPECT_GE(watch.elapsed_ms(), seconds * 1e3);  // monotone clock
  watch.reset();
  EXPECT_LT(watch.elapsed_seconds(), 1.0);
}

TEST(TextTableTest, AlignsColumnsAndCountsRows) {
  TextTable table("title line");
  table.set_header({"a", "long-header", "c"});
  table.add_row({"1", "2", "3"});
  table.add_separator();
  table.add_row({"wide-cell", "x", "y"});
  EXPECT_EQ(table.num_rows(), 3u);  // separator counts as a row entry

  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("title line"), std::string::npos);
  EXPECT_NE(rendered.find("long-header"), std::string::npos);
  EXPECT_NE(rendered.find("wide-cell"), std::string::npos);
  // Every body line must be equally wide (alignment check).
  std::size_t expected_width = std::string::npos;
  std::size_t pos = rendered.find('\n') + 1;  // skip title
  while (pos < rendered.size()) {
    const std::size_t end = rendered.find('\n', pos);
    if (end == std::string::npos) break;
    const std::size_t width = end - pos;
    if (expected_width == std::string::npos) expected_width = width;
    EXPECT_EQ(width, expected_width);
    pos = end + 1;
  }
}

TEST(TextTableTest, HandlesRaggedRows) {
  TextTable table;
  table.set_header({"a", "b"});
  table.add_row({"only-one"});
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("only-one"), std::string::npos);
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
  EXPECT_EQ(fixed(-1.005, 1), "-1.0");
}

TEST(Format, MeanStd) {
  EXPECT_EQ(mean_std(1.25, 0.5, 2), "1.25 +/- 0.50");
}

}  // namespace
}  // namespace bnn::util
