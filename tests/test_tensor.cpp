#include "nn/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bnn::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.dim(), 0);
}

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(2), 4);
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, RejectsNonPositiveShape) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(Tensor({-1, 3}), std::invalid_argument);
}

TEST(Tensor, FullFillsValue) {
  Tensor t = Tensor::full({2, 2}, 3.5f);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 3.5f);
}

TEST(Tensor, AtChecksBounds) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t.at({1, 2}), 7.0f);
  EXPECT_THROW(t.at({2, 0}), std::invalid_argument);
  EXPECT_THROW(t.at({0, 3}), std::invalid_argument);
  EXPECT_THROW(t.at({0}), std::invalid_argument);
}

TEST(Tensor, Index4MatchesAt) {
  Tensor t({2, 3, 4, 5});
  t.at({1, 2, 3, 4}) = 9.0f;
  EXPECT_EQ(t.v4(1, 2, 3, 4), 9.0f);
  EXPECT_EQ(t[t.index4(1, 2, 3, 4)], 9.0f);
}

TEST(Tensor, ReshapeKeepsData) {
  Tensor t = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.size(0), 3);
  EXPECT_EQ(r.at({2, 1}), 6.0f);
}

TEST(Tensor, ReshapeInfersDimension) {
  Tensor t({4, 6});
  Tensor r = t.reshaped({-1, 8});
  EXPECT_EQ(r.size(0), 3);
  EXPECT_EQ(r.size(1), 8);
  EXPECT_THROW(t.reshaped({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshaped({5, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, AddAndScaleInPlace) {
  Tensor a = Tensor::from_values({3}, {1, 2, 3});
  Tensor b = Tensor::from_values({3}, {10, 20, 30});
  a.add_(b).scale_(2.0f);
  EXPECT_EQ(a[0], 22.0f);
  EXPECT_EQ(a[2], 66.0f);
  Tensor c({4});
  EXPECT_THROW(a.add_(c), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from_values({4}, {-1, 3, 0, 2});
  EXPECT_EQ(t.min(), -1.0f);
  EXPECT_EQ(t.max(), 3.0f);
  EXPECT_EQ(t.sum(), 4.0f);
  EXPECT_EQ(t.mean(), 1.0f);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a = Tensor::from_values({3}, {1, 2, 3});
  Tensor b = Tensor::from_values({3}, {1, 2.5f, 2});
  EXPECT_FLOAT_EQ(a.max_abs_diff(b), 1.0f);
}

TEST(Tensor, RandnApproximatesMoments) {
  util::Rng rng(7);
  Tensor t = Tensor::randn({100, 100}, rng, 1.0f, 2.0f);
  const double mean = t.mean();
  EXPECT_NEAR(mean, 1.0, 0.1);
  double var = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i)
    var += (t[i] - mean) * (t[i] - mean);
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Tensor, UniformRange) {
  util::Rng rng(9);
  Tensor t = Tensor::uniform({1000}, rng, -2.0f, 5.0f);
  EXPECT_GE(t.min(), -2.0f);
  EXPECT_LT(t.max(), 5.0f);
  EXPECT_NEAR(t.mean(), 1.5, 0.3);
}

TEST(Tensor, FromValuesValidatesCount) {
  EXPECT_THROW(Tensor::from_values({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ShapeString) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.shape_string(), "[2x3x4]");
}

}  // namespace
}  // namespace bnn::nn
