// The request-trace format (serve/trace.h):
//   - FNV-1a matches the published test vectors and hashes VALUES (explicit
//     little-endian encodings), so digests are stable across hosts,
//   - write_trace/read_trace round-trip a trace bit-exactly and the written
//     bytes are a pure function of the in-memory trace,
//   - a reader rejects bad magic, unsupported versions, truncation at every
//     prefix, trailing bytes, and out-of-range fields with TraceFormatError,
//   - TraceRecorder journals out-of-order completions in submission order,
//     completes idempotently, marks stragglers failed, and leaves a
//     valid-but-empty file until the first flush,
//   - network_fingerprint pins the quantized weights: any flipped constant
//     changes the digest.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench/serve_fixture.h"
#include "nn/tensor.h"
#include "serve/server.h"
#include "serve/trace.h"

namespace bnn {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<unsigned char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// A trace exercising every field: routed + direct options, an infinite
// entropy threshold, a nonzero sample offset, a record with no response
// (rejected, checksum 0), and an admission trailer.
serve::Trace sample_trace() {
  serve::Trace trace;
  trace.meta.workload_id = 7;
  trace.meta.sampler_seed = 99;
  trace.meta.network_fingerprint = 0x1234abcd5678ef01ull;
  trace.meta.reuse_screening_samples = true;

  serve::TraceRecord served;
  served.seq = 0;
  served.arrival_us = 17;
  served.stream_id = 1000;
  served.options.num_samples = 10;
  served.options.bayes_layers = 2;
  served.options.use_uncertainty_router = true;
  served.options.screening_samples = 2;
  served.options.entropy_threshold_nats = std::numeric_limits<double>::infinity();
  served.options.sample_offset = 4;
  served.image_c = 1;
  served.image_h = 2;
  served.image_w = 3;
  served.image = {0.0f, -1.5f, 2.25f, 3.0f, -0.0f, 1e-7f};
  served.outcome = serve::TraceOutcome::served;
  served.escalated = true;
  served.samples_used = 10;
  served.predicted_class = 3;
  served.checksum = 0xfeedface12345678ull;
  trace.records.push_back(served);

  serve::TraceRecord rejected;
  rejected.seq = 1;
  rejected.arrival_us = 42;
  rejected.stream_id = 1001;
  rejected.options.num_samples = 1;
  rejected.options.bayes_layers = -1;
  rejected.image_c = 2;
  rejected.image_h = 1;
  rejected.image_w = 2;
  rejected.image = {5.0f, 6.0f, 7.0f, 8.0f};
  rejected.outcome = serve::TraceOutcome::rejected;
  rejected.predicted_class = -1;
  rejected.checksum = 0;
  trace.records.push_back(rejected);

  serve::AdmissionRecord decision;
  decision.submit_seq = 2;
  decision.inputs.queue_full = false;
  decision.inputs.p99_ms = 3.5;
  decision.inputs.latency_target_ms = 1.0;
  decision.inputs.backlog_ms = 0.25;
  decision.inputs.request_ms = 9.75;
  decision.inputs.downgrade_eligible = true;
  decision.action = serve::AdmissionAction::downgrade;
  trace.admission.push_back(decision);
  return trace;
}

void expect_traces_equal(const serve::Trace& a, const serve::Trace& b) {
  EXPECT_EQ(a.meta.workload_id, b.meta.workload_id);
  EXPECT_EQ(a.meta.sampler_seed, b.meta.sampler_seed);
  EXPECT_EQ(a.meta.network_fingerprint, b.meta.network_fingerprint);
  EXPECT_EQ(a.meta.reuse_screening_samples, b.meta.reuse_screening_samples);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const serve::TraceRecord& x = a.records[i];
    const serve::TraceRecord& y = b.records[i];
    EXPECT_EQ(x.seq, y.seq);
    EXPECT_EQ(x.arrival_us, y.arrival_us);
    EXPECT_EQ(x.stream_id, y.stream_id);
    EXPECT_EQ(x.options.num_samples, y.options.num_samples);
    EXPECT_EQ(x.options.bayes_layers, y.options.bayes_layers);
    EXPECT_EQ(x.options.use_uncertainty_router, y.options.use_uncertainty_router);
    EXPECT_EQ(x.options.screening_samples, y.options.screening_samples);
    // Bitwise (not value) equality: +inf and NaN thresholds must survive.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(x.options.entropy_threshold_nats),
              std::bit_cast<std::uint64_t>(y.options.entropy_threshold_nats));
    EXPECT_EQ(x.options.sample_offset, y.options.sample_offset);
    EXPECT_EQ(x.image_c, y.image_c);
    EXPECT_EQ(x.image_h, y.image_h);
    EXPECT_EQ(x.image_w, y.image_w);
    ASSERT_EQ(x.image.size(), y.image.size());
    for (std::size_t j = 0; j < x.image.size(); ++j)
      EXPECT_EQ(std::bit_cast<std::uint32_t>(x.image[j]),
                std::bit_cast<std::uint32_t>(y.image[j]));
    EXPECT_EQ(x.outcome, y.outcome);
    EXPECT_EQ(x.escalated, y.escalated);
    EXPECT_EQ(x.samples_used, y.samples_used);
    EXPECT_EQ(x.predicted_class, y.predicted_class);
    EXPECT_EQ(x.checksum, y.checksum);
  }
  ASSERT_EQ(a.admission.size(), b.admission.size());
  for (std::size_t i = 0; i < a.admission.size(); ++i) {
    const serve::AdmissionRecord& x = a.admission[i];
    const serve::AdmissionRecord& y = b.admission[i];
    EXPECT_EQ(x.submit_seq, y.submit_seq);
    EXPECT_EQ(x.inputs.queue_full, y.inputs.queue_full);
    EXPECT_DOUBLE_EQ(x.inputs.p99_ms, y.inputs.p99_ms);
    EXPECT_DOUBLE_EQ(x.inputs.latency_target_ms, y.inputs.latency_target_ms);
    EXPECT_DOUBLE_EQ(x.inputs.backlog_ms, y.inputs.backlog_ms);
    EXPECT_DOUBLE_EQ(x.inputs.request_ms, y.inputs.request_ms);
    EXPECT_EQ(x.inputs.downgrade_eligible, y.inputs.downgrade_eligible);
    EXPECT_EQ(x.action, y.action);
  }
}

// --- FNV-1a ------------------------------------------------------------------

TEST(Fnv1a64, MatchesPublishedTestVectors) {
  serve::Fnv1a64 empty;
  EXPECT_EQ(empty.digest(), 0xcbf29ce484222325ull);  // offset basis

  serve::Fnv1a64 a;
  a.bytes("a", 1);
  EXPECT_EQ(a.digest(), 0xaf63dc4c8601ec8cull);

  serve::Fnv1a64 foobar;
  foobar.bytes("foobar", 6);
  EXPECT_EQ(foobar.digest(), 0x85944171f73967e8ull);
}

TEST(Fnv1a64, ValueHelpersEncodeLittleEndian) {
  // u32/u64/f32/f64 must hash exactly their little-endian byte sequence —
  // the property that makes digests host-independent.
  serve::Fnv1a64 via_value;
  via_value.u32(0x01020304u);
  serve::Fnv1a64 via_bytes;
  for (const std::uint8_t byte : {0x04, 0x03, 0x02, 0x01})
    via_bytes.byte(byte);
  EXPECT_EQ(via_value.digest(), via_bytes.digest());

  serve::Fnv1a64 f;
  f.f32(1.0f);  // 0x3f800000
  serve::Fnv1a64 f_bytes;
  for (const std::uint8_t byte : {0x00, 0x00, 0x80, 0x3f})
    f_bytes.byte(byte);
  EXPECT_EQ(f.digest(), f_bytes.digest());

  serve::Fnv1a64 i;
  i.i32(-1);
  serve::Fnv1a64 i_bytes;
  for (int k = 0; k < 4; ++k) i_bytes.byte(0xff);
  EXPECT_EQ(i.digest(), i_bytes.digest());
}

// --- round trip --------------------------------------------------------------

TEST(TraceFormat, RoundTripsBitExactly) {
  const std::string path = temp_path("roundtrip.trace");
  const serve::Trace original = sample_trace();
  serve::write_trace(path, original);
  const serve::Trace loaded = serve::read_trace(path);
  expect_traces_equal(original, loaded);
}

TEST(TraceFormat, WrittenBytesAreAPureFunctionOfTheTrace) {
  const std::string path_a = temp_path("stable_a.trace");
  const std::string path_b = temp_path("stable_b.trace");
  const serve::Trace trace = sample_trace();
  serve::write_trace(path_a, trace);
  serve::write_trace(path_b, trace);
  EXPECT_EQ(file_bytes(path_a), file_bytes(path_b));
  // And a read-then-rewrite reproduces the identical file.
  const std::string path_c = temp_path("stable_c.trace");
  serve::write_trace(path_c, serve::read_trace(path_a));
  EXPECT_EQ(file_bytes(path_a), file_bytes(path_c));
}

TEST(TraceFormat, EmptyTraceRoundTrips) {
  const std::string path = temp_path("empty.trace");
  serve::write_trace(path, serve::Trace{});
  const serve::Trace loaded = serve::read_trace(path);
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_TRUE(loaded.admission.empty());
}

// --- error paths -------------------------------------------------------------

TEST(TraceFormat, MissingFileIsAnIoErrorNotAFormatError) {
  EXPECT_THROW(serve::read_trace(temp_path("does_not_exist.trace")),
               std::runtime_error);
}

TEST(TraceFormat, RejectsBadMagic) {
  const std::string path = temp_path("bad_magic.trace");
  serve::write_trace(path, sample_trace());
  std::vector<unsigned char> bytes = file_bytes(path);
  bytes[0] ^= 0xff;
  write_bytes(path, bytes);
  EXPECT_THROW(serve::read_trace(path), serve::TraceFormatError);
}

TEST(TraceFormat, RejectsUnsupportedVersion) {
  const std::string path = temp_path("bad_version.trace");
  serve::write_trace(path, sample_trace());
  std::vector<unsigned char> bytes = file_bytes(path);
  bytes[8] = static_cast<unsigned char>(serve::kTraceVersion + 1);  // version u32 at 8
  write_bytes(path, bytes);
  try {
    serve::read_trace(path);
    FAIL() << "version mismatch not rejected";
  } catch (const serve::TraceFormatError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
}

TEST(TraceFormat, RejectsTruncationAtEveryPrefix) {
  const std::string path = temp_path("full.trace");
  serve::write_trace(path, sample_trace());
  const std::vector<unsigned char> bytes = file_bytes(path);
  // Every strict prefix is either a header cut (truncated) or a record cut
  // (truncated): never a crash, never a silent success.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{12}, std::size_t{51},
        bytes.size() / 2, bytes.size() - 1}) {
    ASSERT_LT(keep, bytes.size());
    const std::string cut = temp_path("truncated.trace");
    write_bytes(cut, std::vector<unsigned char>(bytes.begin(),
                                                bytes.begin() + static_cast<long>(keep)));
    EXPECT_THROW(serve::read_trace(cut), serve::TraceFormatError) << "keep=" << keep;
  }
}

TEST(TraceFormat, RejectsTrailingBytes) {
  const std::string path = temp_path("trailing.trace");
  serve::write_trace(path, sample_trace());
  std::vector<unsigned char> bytes = file_bytes(path);
  bytes.push_back(0x00);
  write_bytes(path, bytes);
  EXPECT_THROW(serve::read_trace(path), serve::TraceFormatError);
}

TEST(TraceFormat, RejectsOutOfRangeOutcomeAndAbsurdDimensions) {
  // Corrupt the outcome byte of the first record: locate it by rewriting
  // the record with a known-bad value through the in-memory struct. The
  // writer trusts its caller, so smuggle the corruption in via raw bytes:
  // write a minimal one-record trace and patch the outcome field, which
  // sits 3 bytes before the end of (escalated u8, samples u32, class i32,
  // checksum u64) ... simpler and robust to layout drift: binary-search the
  // byte whose corruption triggers the outcome check.
  const std::string path = temp_path("bad_outcome.trace");
  serve::Trace trace;
  serve::TraceRecord record = sample_trace().records[0];
  trace.records.push_back(record);
  serve::write_trace(path, trace);
  const std::vector<unsigned char> good = file_bytes(path);

  // Patch every byte to 0xee in turn; at least one position must trip the
  // "bad outcome" / dimension-sanity validation (TraceFormatError), and NO
  // position may crash or be accepted with different record content
  // silently... we only assert the absence of crashes plus at least one
  // format rejection: content changes are legitimate for image bytes.
  int format_rejections = 0;
  for (std::size_t i = 52; i < good.size(); ++i) {  // past the header
    std::vector<unsigned char> bad = good;
    bad[i] = 0xee;
    write_bytes(path, bad);
    try {
      (void)serve::read_trace(path);
    } catch (const serve::TraceFormatError&) {
      ++format_rejections;
    }
  }
  EXPECT_GT(format_rejections, 0);

  // Absurd dimensions specifically: image_c lives right after the options
  // block; setting all four of its bytes drives C*H*W past the sanity
  // bound. Find it deterministically by writing a record with a unique
  // (C, H, W) = (1, 2, 3) and flipping the u32 equal to 2 into 0xffffffff.
  std::vector<unsigned char> bad = good;
  bool patched = false;
  for (std::size_t i = 52; i + 12 < bad.size() && !patched; ++i) {
    const auto u32_at = [&](std::size_t at) {
      return static_cast<std::uint32_t>(bad[at]) |
             static_cast<std::uint32_t>(bad[at + 1]) << 8 |
             static_cast<std::uint32_t>(bad[at + 2]) << 16 |
             static_cast<std::uint32_t>(bad[at + 3]) << 24;
    };
    if (u32_at(i) == 1 && u32_at(i + 4) == 2 && u32_at(i + 8) == 3) {
      bad[i + 4] = bad[i + 5] = bad[i + 6] = bad[i + 7] = 0xff;
      patched = true;
    }
  }
  ASSERT_TRUE(patched) << "could not locate the (C, H, W) field";
  write_bytes(path, bad);
  EXPECT_THROW(serve::read_trace(path), serve::TraceFormatError);
}

// --- TraceRecorder -----------------------------------------------------------

serve::Response synthetic_response(int predicted_class) {
  serve::Response response;
  response.probs = nn::Tensor::from_values(
      {1, 4}, {0.1f, 0.2f, 0.3f, 0.4f});
  response.predicted_class = predicted_class;
  response.entropy_nats = 1.25;
  response.escalated = predicted_class % 2 == 0;
  response.samples_used = 6;
  response.bayes_layers = 2;
  return response;
}

TEST(TraceRecorder, UnfinalizedFileReadsAsAValidEmptyTrace) {
  const std::string path = temp_path("unfinalized.trace");
  serve::TraceMeta meta;
  meta.workload_id = 3;
  serve::TraceRecorder recorder(path, meta);
  serve::TraceRecord record;
  record.image_c = record.image_h = record.image_w = 1;
  record.image = {1.0f};
  (void)recorder.begin(std::move(record));
  // Header counts are still zero: a concurrent reader sees a valid trace
  // with the right meta and no records yet.
  const serve::Trace snapshot = serve::read_trace(path);
  EXPECT_EQ(snapshot.meta.workload_id, 3u);
  EXPECT_TRUE(snapshot.records.empty());
  recorder.finalize();
}

TEST(TraceRecorder, JournalsOutOfOrderCompletionsInSubmissionOrder) {
  const std::string path = temp_path("out_of_order.trace");
  serve::TraceRecorder recorder(path, serve::TraceMeta{});
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < 3; ++i) {
    serve::TraceRecord record;
    record.stream_id = static_cast<std::uint64_t>(100 + i);
    record.image_c = record.image_h = record.image_w = 1;
    record.image = {static_cast<float>(i)};
    seqs.push_back(recorder.begin(std::move(record)));
  }
  EXPECT_EQ(recorder.begun(), 3u);

  // Complete 2, then 0, then 1 — the flushes in between may only ever emit
  // the contiguous completed prefix, so the file stays in seq order.
  const serve::Response response = synthetic_response(1);
  recorder.complete(seqs[2], serve::TraceOutcome::served, &response);
  recorder.flush();
  EXPECT_TRUE(serve::read_trace(path).records.empty());  // 0 still pending
  recorder.complete(seqs[0], serve::TraceOutcome::served, &response);
  recorder.flush();
  // Record 0 is flushed now but the header counts still read zero: the
  // file is visibly in-progress (trailing bytes) until finalize patches
  // them — a half-written trace can never masquerade as a complete one.
  EXPECT_THROW((void)serve::read_trace(path), serve::TraceFormatError);
  recorder.complete(seqs[1], serve::TraceOutcome::downgraded, &response);
  recorder.finalize();

  const serve::Trace trace = serve::read_trace(path);
  ASSERT_EQ(trace.records.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(trace.records[i].seq, seqs[i]);
    EXPECT_EQ(trace.records[i].stream_id, 100 + i);
    EXPECT_EQ(trace.records[i].checksum, serve::response_checksum(response));
  }
  EXPECT_EQ(trace.records[1].outcome, serve::TraceOutcome::downgraded);
}

TEST(TraceRecorder, FirstCompletionSticksAndStragglersFail) {
  const std::string path = temp_path("idempotent.trace");
  serve::TraceRecorder recorder(path, serve::TraceMeta{});
  serve::TraceRecord a;
  a.image_c = a.image_h = a.image_w = 1;
  a.image = {1.0f};
  serve::TraceRecord b = a;
  const std::uint64_t seq_a = recorder.begin(std::move(a));
  const std::uint64_t seq_b = recorder.begin(std::move(b));

  const serve::Response response = synthetic_response(2);
  recorder.complete(seq_a, serve::TraceOutcome::served, &response);
  // A second completion of the same seq (e.g. the catch-all failure path
  // racing the success path) must not overwrite the first.
  recorder.complete(seq_a, serve::TraceOutcome::failed, nullptr);
  // seq_b is never completed: finalize journals it as failed.
  (void)seq_b;
  recorder.finalize();
  recorder.finalize();  // idempotent

  const serve::Trace trace = serve::read_trace(path);
  ASSERT_EQ(trace.records.size(), 2u);
  EXPECT_EQ(trace.records[0].outcome, serve::TraceOutcome::served);
  EXPECT_EQ(trace.records[0].checksum, serve::response_checksum(response));
  EXPECT_EQ(trace.records[1].outcome, serve::TraceOutcome::failed);
  EXPECT_EQ(trace.records[1].checksum, 0u);
}

TEST(TraceRecorder, AdmissionTrailerSurvivesTheRoundTrip) {
  const std::string path = temp_path("admission.trace");
  {
    serve::TraceRecorder recorder(path, serve::TraceMeta{});
    serve::AdmissionRecord decision;
    decision.submit_seq = 5;
    decision.inputs.p99_ms = 2.0;
    decision.inputs.latency_target_ms = 1.0;
    decision.inputs.downgrade_eligible = true;
    decision.action = serve::AdmissionAction::downgrade;
    recorder.record_admission(decision);
    // Destructor finalizes.
  }
  const serve::Trace trace = serve::read_trace(path);
  EXPECT_TRUE(trace.records.empty());
  ASSERT_EQ(trace.admission.size(), 1u);
  EXPECT_EQ(trace.admission[0].submit_seq, 5u);
  EXPECT_EQ(trace.admission[0].action, serve::AdmissionAction::downgrade);
}

// --- checksums and fingerprints ----------------------------------------------

TEST(ResponseChecksum, IsAFunctionOfTheResponseValuesOnly) {
  const serve::Response a = synthetic_response(1);
  serve::Response b = synthetic_response(1);
  EXPECT_EQ(serve::response_checksum(a), serve::response_checksum(b));

  // stream_id and shed_downgraded are deliberately EXCLUDED: the replayer
  // re-serves a downgraded record as a plain never-escalating request, so
  // the checksum must not distinguish the two.
  b.stream_id = 777;
  b.shed_downgraded = true;
  EXPECT_EQ(serve::response_checksum(a), serve::response_checksum(b));

  // Every covered field moves the digest.
  serve::Response flipped = a;
  flipped.predicted_class = 2;
  EXPECT_NE(serve::response_checksum(a), serve::response_checksum(flipped));
  flipped = a;
  flipped.probs = nn::Tensor::from_values({1, 4}, {0.1f, 0.2f, 0.3f, 0.41f});
  EXPECT_NE(serve::response_checksum(a), serve::response_checksum(flipped));
  flipped = a;
  flipped.escalated = !flipped.escalated;
  EXPECT_NE(serve::response_checksum(a), serve::response_checksum(flipped));
  flipped = a;
  flipped.samples_used += 1;
  EXPECT_NE(serve::response_checksum(a), serve::response_checksum(flipped));
}

TEST(NetworkFingerprint, PinsTheQuantizedConstants) {
  const bench::ServeFixture& fixture = bench::shared_cnn12_fixture();
  const std::uint64_t base = serve::network_fingerprint(fixture.qnet);
  EXPECT_EQ(base, serve::network_fingerprint(fixture.qnet));  // deterministic

  quant::QuantNetwork flipped_weight = fixture.qnet;
  flipped_weight.layers[0].weights[0] ^= 1;
  EXPECT_NE(base, serve::network_fingerprint(flipped_weight));

  quant::QuantNetwork flipped_bias = fixture.qnet;
  flipped_bias.layers.back().bias[0] += 1;
  EXPECT_NE(base, serve::network_fingerprint(flipped_bias));

  quant::QuantNetwork flipped_scale = fixture.qnet;
  flipped_scale.input.scale *= 1.0000001f;
  EXPECT_NE(base, serve::network_fingerprint(flipped_scale));
}

// Recording the same deterministic workload through two separate servers
// yields identical golden checksums — the stability that makes a committed
// trace a cross-process, cross-run regression asset (arrival timestamps are
// wall clock and excluded from the comparison).
TEST(TraceRecorder, RecordedChecksumsAreStableAcrossServerInstances) {
  const bench::ServeFixture& fixture = bench::shared_cnn12_fixture();
  const auto record_once = [&](const std::string& path) {
    serve::ServerConfig config;
    config.max_batch = 2;
    config.num_threads = 1;
    config.trace_path = path;
    config.trace_workload_id = fixture.workload_id;
    serve::Server server(core::Accelerator(fixture.qnet, bench::serve_accel_config()),
                         config);
    std::vector<std::future<serve::Response>> futures;
    for (int i = 0; i < 4; ++i) {
      serve::Request request;
      request.image = fixture.dataset.images().batch_row(i);
      request.options.num_samples = 3;
      request.options.bayes_layers = 1;
      request.stream_id = static_cast<std::uint64_t>(i);
      futures.push_back(server.submit(std::move(request)));
    }
    for (auto& future : futures) (void)future.get();
    server.shutdown();
    return serve::read_trace(path);
  };

  const serve::Trace first = record_once(temp_path("stable_run_a.trace"));
  const serve::Trace second = record_once(temp_path("stable_run_b.trace"));
  ASSERT_EQ(first.records.size(), 4u);
  ASSERT_EQ(second.records.size(), 4u);
  EXPECT_EQ(first.meta.network_fingerprint, second.meta.network_fingerprint);
  EXPECT_NE(first.meta.network_fingerprint, 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(first.records[i].seq, second.records[i].seq);
    EXPECT_EQ(first.records[i].stream_id, second.records[i].stream_id);
    EXPECT_EQ(first.records[i].outcome, serve::TraceOutcome::served);
    EXPECT_NE(first.records[i].checksum, 0u);
    EXPECT_EQ(first.records[i].checksum, second.records[i].checksum);
  }
}

}  // namespace
}  // namespace bnn
