#include "core/bernoulli_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace bnn::core {
namespace {

TEST(SamplerConfig, LfsrCountFromProbability) {
  EXPECT_EQ(lfsrs_for_probability(0.5), 1);
  EXPECT_EQ(lfsrs_for_probability(0.25), 2);
  EXPECT_EQ(lfsrs_for_probability(0.125), 3);
  EXPECT_EQ(lfsrs_for_probability(1.0 / 256.0), 8);
  EXPECT_THROW(lfsrs_for_probability(0.3), std::invalid_argument);
  EXPECT_THROW(lfsrs_for_probability(0.0), std::invalid_argument);
  EXPECT_THROW(lfsrs_for_probability(1.0), std::invalid_argument);
  EXPECT_THROW(lfsrs_for_probability(1.0 / 512.0), std::invalid_argument);
}

class SamplerBias : public ::testing::TestWithParam<double> {};

TEST_P(SamplerBias, DropRateWithinBinomialBounds) {
  const double p = GetParam();
  BernoulliSamplerConfig config;
  config.p = p;
  config.seed = 99;
  BernoulliSampler sampler(config);
  const int n = 40000;
  int drops = 0;
  for (int i = 0; i < n; ++i) drops += sampler.next_drop() ? 1 : 0;
  const double rate = static_cast<double>(drops) / n;
  const double bound = 4.5 * std::sqrt(p * (1 - p) / n);
  EXPECT_NEAR(rate, p, bound) << "drop rate off for p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Probabilities, SamplerBias, ::testing::Values(0.5, 0.25, 0.125));

TEST(Sampler, AndTreeUsesConfiguredLfsrCount) {
  BernoulliSamplerConfig config;
  config.p = 0.25;
  BernoulliSampler sampler(config);
  EXPECT_EQ(sampler.num_lfsrs(), 2);
}

TEST(Sampler, DeterministicPerSeed) {
  BernoulliSamplerConfig config;
  config.seed = 7;
  BernoulliSampler a(config);
  BernoulliSampler b(config);
  config.seed = 8;
  BernoulliSampler c(config);
  bool diverged = false;
  for (int i = 0; i < 2000; ++i) {
    const bool bit = a.next_drop();
    EXPECT_EQ(bit, b.next_drop());
    if (bit != c.next_drop()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Sampler, SipoAssemblesWordsFromTheRawBitStream) {
  BernoulliSamplerConfig config;
  config.p = 0.5;
  config.pf = 16;
  config.fifo_depth = 8;
  config.seed = 3;
  BernoulliSampler cycle_sampler(config);
  BernoulliSampler functional_sampler(config);  // identical seed -> same bits

  // Produce 4 words cycle-by-cycle.
  for (int i = 0; i < 4 * config.pf; ++i) cycle_sampler.step_cycle();
  EXPECT_EQ(cycle_sampler.words_pushed(), 4u);

  for (int w = 0; w < 4; ++w) {
    std::vector<std::uint8_t> word;
    ASSERT_TRUE(cycle_sampler.pop_word(word));
    ASSERT_EQ(static_cast<int>(word.size()), config.pf);
    for (int i = 0; i < config.pf; ++i)
      EXPECT_EQ(word[static_cast<std::size_t>(i)],
                functional_sampler.next_drop() ? 1 : 0)
          << "word " << w << " bit " << i;
  }
}

TEST(Sampler, FifoFullStallsWithoutLosingBits) {
  BernoulliSamplerConfig config;
  config.p = 0.5;
  config.pf = 8;
  config.fifo_depth = 2;
  config.seed = 5;
  BernoulliSampler sampler(config);
  BernoulliSampler reference(config);

  // Enough cycles to fill the FIFO (2 words) + SIPO (1 word) and stall.
  for (int i = 0; i < 100; ++i) sampler.step_cycle();
  EXPECT_EQ(sampler.fifo_occupancy(), 2);
  EXPECT_GT(sampler.stall_cycles(), 0u);

  // Drain and refill; the stream must continue without losing any bit.
  std::vector<std::uint8_t> word;
  std::vector<std::uint8_t> produced;
  for (int round = 0; round < 6; ++round) {
    while (sampler.pop_word(word))
      produced.insert(produced.end(), word.begin(), word.end());
    for (int i = 0; i < 40; ++i) sampler.step_cycle();
  }
  while (sampler.pop_word(word))
    produced.insert(produced.end(), word.begin(), word.end());

  for (std::uint8_t bit : produced)
    EXPECT_EQ(bit, reference.next_drop() ? 1 : 0);
  EXPECT_GE(produced.size(), 5u * config.pf);
}

TEST(Sampler, PopOnEmptyFifoFails) {
  BernoulliSamplerConfig config;
  BernoulliSampler sampler(config);
  std::vector<std::uint8_t> word;
  EXPECT_FALSE(sampler.pop_word(word));
}

TEST(Sampler, RejectsBadConfig) {
  BernoulliSamplerConfig config;
  config.pf = 0;
  EXPECT_THROW(BernoulliSampler{config}, std::invalid_argument);
  config.pf = 8;
  config.fifo_depth = 0;
  EXPECT_THROW(BernoulliSampler{config}, std::invalid_argument);
}

TEST(Sampler, MaskSourceInterfaceDrivesDropout) {
  // The sampler plugs into the float-path dropout layer, replacing the
  // software RNG with the hardware bit stream.
  BernoulliSamplerConfig config;
  config.p = 0.5;
  config.seed = 11;
  BernoulliSampler sampler(config);

  nn::McDropout dropout(0.5);
  dropout.set_active(true);
  dropout.set_mask_source(&sampler);
  util::Rng rng(1);
  nn::Tensor x = nn::Tensor::randn({1, 64, 2, 2}, rng, 5.0f, 0.1f);
  nn::Tensor y = dropout.forward(x);
  int dropped = 0;
  for (int c = 0; c < 64; ++c) dropped += y.v4(0, c, 0, 0) == 0.0f ? 1 : 0;
  EXPECT_GT(dropped, 10);
  EXPECT_LT(dropped, 54);
  EXPECT_EQ(sampler.bits_produced(), 64u);
}

}  // namespace
}  // namespace bnn::core
