#include "core/lfsr.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bnn::core {
namespace {

TEST(Lfsr, RejectsBadConstruction) {
  EXPECT_THROW(Lfsr(1, {1}, 1), std::invalid_argument);            // too narrow
  EXPECT_THROW(Lfsr(8, {}, 1), std::invalid_argument);             // no taps
  EXPECT_THROW(Lfsr(8, {9, 8}, 1), std::invalid_argument);         // tap out of range
  EXPECT_THROW(Lfsr(8, {6, 5, 4}, 1), std::invalid_argument);      // output not tapped
  EXPECT_THROW(Lfsr(8, {8, 6, 5, 4}, 0), std::invalid_argument);   // zero seed
  EXPECT_THROW(Lfsr(64, {64, 63}, 0, 5), std::invalid_argument);   // zero after masking
}

// Walks the register until the state returns to the seed; for a maximal
// tap set the period must be exactly 2^width - 1.
class LfsrPeriod : public ::testing::TestWithParam<int> {};

TEST_P(LfsrPeriod, MaximalTapsGiveFullPeriod) {
  const int width = GetParam();
  Lfsr lfsr(width, maximal_taps(width), /*seed=*/1);
  const std::uint64_t seed_lo = lfsr.state_lo();
  const std::uint64_t expected_period = (1ull << width) - 1;
  std::uint64_t steps = 0;
  do {
    lfsr.step();
    ++steps;
  } while (lfsr.state_lo() != seed_lo && steps <= expected_period);
  EXPECT_EQ(steps, expected_period);
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, LfsrPeriod, ::testing::Values(3, 4, 5, 7, 8, 12, 16));

TEST(Lfsr, OutputBalancedOverPeriod) {
  const int width = 12;
  Lfsr lfsr(width, maximal_taps(width), 1);
  const std::uint64_t period = (1ull << width) - 1;
  std::uint64_t ones = 0;
  for (std::uint64_t i = 0; i < period; ++i) ones += static_cast<std::uint64_t>(lfsr.step());
  // A maximal-length sequence has exactly 2^(n-1) ones per period.
  EXPECT_EQ(ones, 1ull << (width - 1));
}

TEST(Lfsr, DeterministicPerSeed) {
  Lfsr a = make_lfsr128(42, 7);
  Lfsr b = make_lfsr128(42, 7);
  Lfsr c = make_lfsr128(43, 7);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const int bit_a = a.step();
    EXPECT_EQ(bit_a, b.step());
    if (bit_a != c.step()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Lfsr, Lfsr128UsesPaperTaps) {
  Lfsr lfsr = make_lfsr128(1);
  EXPECT_EQ(lfsr.width(), 128);
  EXPECT_EQ(lfsr.taps(), (std::vector<int>{128, 126, 101, 99}));
}

TEST(Lfsr, Lfsr128StateDoesNotRepeatQuickly) {
  Lfsr lfsr = make_lfsr128(0xDEADBEEFull, 0xFEEDFACEull);
  const std::uint64_t lo0 = lfsr.state_lo();
  const std::uint64_t hi0 = lfsr.state_hi();
  for (int i = 0; i < 200000; ++i) {
    lfsr.step();
    ASSERT_FALSE(lfsr.state_lo() == lo0 && lfsr.state_hi() == hi0)
        << "128-bit LFSR state repeated after " << i << " steps";
  }
}

TEST(Lfsr, Lfsr128BitsRoughlyBalanced) {
  Lfsr lfsr = make_lfsr128(0x1234567890ABCDEFull);
  const int n = 100000;
  int ones = 0;
  for (int i = 0; i < n; ++i) ones += lfsr.step();
  const double rate = static_cast<double>(ones) / n;
  EXPECT_NEAR(rate, 0.5, 0.01);
}

TEST(Lfsr, Lfsr128SuccessivePairsUncorrelated) {
  Lfsr lfsr = make_lfsr128(0xCAFEBABEull);
  const int n = 100000;
  int prev = lfsr.step();
  int agree = 0;
  for (int i = 0; i < n; ++i) {
    const int bit = lfsr.step();
    agree += bit == prev ? 1 : 0;
    prev = bit;
  }
  EXPECT_NEAR(static_cast<double>(agree) / n, 0.5, 0.01);
}

TEST(Lfsr, MaximalTapsTableRejectsUnknownWidth) {
  EXPECT_THROW(maximal_taps(9), std::invalid_argument);
}

}  // namespace
}  // namespace bnn::core
