// Per-layer plan segments and the residency state machine threaded through
// quant/qplan -> core/accelerator -> serve/model_registry -> serve/cost_model:
//   - a streaming PlanSource accelerator is bit-identical to the monolithic
//     whole-plan accelerator and actually prefetches ahead,
//   - segment byte accounting sums to the whole-plan footprint,
//   - forced partial-residency states (evict_segments) stay bit-identical
//     across stream modes x replicas x threads x dispatch — the extension of
//     the R x threads x dispatch acceptance matrix,
//   - concurrent resolve() of one evicted tenant builds its segment set
//     EXACTLY once (counter-pinned) in both materializing and streaming
//     modes,
//   - CostModel::streamed_reload_ms charges only the non-overlapped reload
//     remainder and never exceeds the flat whole-plan price,
//   - size-rotated trace segments are each independently valid and
//     replayable, and ticket aging never changes a served bit.
#include "quant/qplan.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/serve_fixture.h"
#include "core/accelerator.h"
#include "serve/cost_model.h"
#include "serve/model_registry.h"
#include "serve/replay.h"
#include "serve/scenario.h"
#include "serve/server.h"
#include "serve/trace.h"

namespace bnn {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + std::to_string(::getpid()) +
         "_" + name;
}

core::AcceleratorConfig accel_config(int num_threads = 1) {
  core::AcceleratorConfig config = bench::serve_accel_config();
  config.num_threads = num_threads;
  return config;
}

// A prebuilt segment source that counts pulls and prefetches — the probe
// for the accelerator's double-buffer consumption pattern.
class CountingSource final : public quant::PlanSource {
 public:
  explicit CountingSource(const quant::QuantNetwork& network) {
    for (const quant::QLayer& layer : network.layers)
      segments_.push_back(quant::build_plan_segment(layer));
  }
  int num_layers() const override { return static_cast<int>(segments_.size()); }
  quant::PlanSegment segment(int index) override {
    ++acquired;
    return segments_[static_cast<std::size_t>(index)];
  }
  void prefetch(int index) override {
    (void)index;
    ++prefetched;
  }

  std::atomic<int> acquired{0};
  std::atomic<int> prefetched{0};

 private:
  std::vector<quant::PlanSegment> segments_;
};

// --- qplan: segment accounting and streamed execution ------------------------

TEST(PlanSegments, AccountingSumsToWholePlanFootprint) {
  const bench::ServeFixture& fixture = bench::shared_cnn12_fixture();
  const quant::NetworkExecPlan plan = quant::build_network_exec_plan(fixture.qnet);
  ASSERT_EQ(plan.num_layers(), static_cast<int>(fixture.qnet.layers.size()));
  std::uint64_t summed = 0;
  for (int i = 0; i < plan.num_layers(); ++i) {
    EXPECT_EQ(plan.layer(i).weight_bytes,
              fixture.qnet.layers[static_cast<std::size_t>(i)].resident_weight_bytes());
    summed += plan.layer(i).weight_bytes;
  }
  EXPECT_EQ(summed, plan.weight_bytes());
  EXPECT_EQ(summed, fixture.qnet.resident_weight_bytes());

  // An independently rebuilt segment accounts identically — rebuilds are
  // pure functions of the layer constants.
  const quant::PlanSegment rebuilt = quant::build_plan_segment(fixture.qnet.layers[0]);
  EXPECT_EQ(rebuilt->weight_bytes, plan.layer(0).weight_bytes);
}

TEST(PlanSegments, StreamingAcceleratorMatchesMonolithicAndPrefetchesAhead) {
  const bench::ServeFixture& fixture = bench::shared_cnn12_fixture();
  core::Accelerator whole(fixture.qnet, accel_config(2));
  auto source = std::make_shared<CountingSource>(fixture.qnet);
  // The streaming ctor shares an immutable network handle.
  core::Accelerator streamed(std::make_shared<const quant::QuantNetwork>(fixture.qnet),
                             source, accel_config(2));

  const int sites = fixture.qnet.num_sites;
  for (int image = 0; image < 3; ++image) {
    const nn::Tensor input = fixture.dataset.images().batch_row(image);
    const auto a = whole.predict(input, sites, 4);
    const auto b = streamed.predict(input, sites, 4);
    EXPECT_EQ(a.probs.max_abs_diff(b.probs), 0.0f) << "image " << image;
  }
  // Every layer run pulled its segment, and every non-final layer kicked a
  // prefetch of its successor while computing.
  EXPECT_GT(source->acquired.load(), 0);
  EXPECT_GT(source->prefetched.load(), 0);
  EXPECT_LT(source->prefetched.load(), source->acquired.load());
}

// --- registry: segment-granular residency ------------------------------------

TEST(SegmentResidency, ForcedEvictionWalksResidentPartialColdAndRebuilds) {
  serve::ModelRegistry registry;
  registry.publish("m", bench::shared_cnn12_fixture().qnet);
  const auto version = registry.current("m");
  const int num_layers = static_cast<int>(version->segment_bytes.size());
  ASSERT_GT(num_layers, 2);
  EXPECT_TRUE(registry.hot("m"));
  EXPECT_EQ(registry.stats().resident_segments,
            static_cast<std::uint64_t>(num_layers));

  // RESIDENT -> PARTIAL: drop the back half.
  const int keep = num_layers / 2;
  EXPECT_EQ(registry.evict_segments("m", keep), num_layers - keep);
  EXPECT_FALSE(registry.hot("m"));
  EXPECT_EQ(registry.stats().resident_segments, static_cast<std::uint64_t>(keep));
  EXPECT_EQ(registry.stats().segment_evictions,
            static_cast<std::uint64_t>(num_layers - keep));
  EXPECT_EQ(registry.stats().evictions, 1u);  // one fully->partial transition

  // PARTIAL -> COLD.
  EXPECT_EQ(registry.evict_segments("m"), keep);
  EXPECT_EQ(registry.stats().resident_segments, 0u);

  // COLD -> RESIDENT via resolve: the missing list names every layer, the
  // resolve counts as a reload, and (materializing mode) the plan is usable.
  const auto bound = registry.resolve("m");
  EXPECT_TRUE(bound.cold_start);
  EXPECT_EQ(bound.missing.size(), static_cast<std::size_t>(num_layers));
  ASSERT_NE(bound.plan, nullptr);
  EXPECT_EQ(bound.plan->weight_bytes(), version->weight_bytes);
  EXPECT_TRUE(registry.hot("m"));
  EXPECT_EQ(registry.stats().reloads, 1u);
  EXPECT_EQ(registry.stats().segment_builds,
            static_cast<std::uint64_t>(2 * num_layers));  // publish + rebuild
}

TEST(SegmentResidency, ConcurrentColdResolveBuildsSegmentSetExactlyOnce) {
  for (const bool streaming : {false, true}) {
    serve::RegistryConfig config;
    config.stream_cold_plans = streaming;
    serve::ModelRegistry registry(config);
    registry.publish("m", bench::shared_cnn12_fixture().qnet);
    const int num_layers =
        static_cast<int>(registry.current("m")->segment_bytes.size());
    registry.evict_segments("m");
    const std::uint64_t builds_before = registry.stats().segment_builds;

    // A start barrier so every thread's resolve races the same cold state.
    constexpr int kThreads = 6;
    std::promise<void> go;
    std::shared_future<void> start = go.get_future().share();
    std::vector<std::thread> threads;
    std::vector<serve::ModelRegistry::Bound> bounds(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        start.wait();
        serve::ModelRegistry::Bound bound = registry.resolve("m");
        // Streaming mode hands back a lazy source; pull every segment the
        // way a replica's accelerator would.
        for (int i = 0; i < bound.source->num_layers(); ++i)
          (void)bound.source->segment(i);
        bounds[static_cast<std::size_t>(t)] = std::move(bound);
      });
    }
    go.set_value();
    for (std::thread& thread : threads) thread.join();

    // The counter-pinned guarantee: N racing replicas, one build per layer.
    EXPECT_EQ(registry.stats().segment_builds - builds_before,
              static_cast<std::uint64_t>(num_layers))
        << (streaming ? "streaming" : "materializing");
    EXPECT_TRUE(registry.hot("m"));
    // Whoever resolved first saw the cold state; racers arriving after the
    // rebuild legitimately resolve warm. Everyone gets a servable bound.
    int cold_resolves = 0;
    for (const auto& bound : bounds) {
      if (bound.cold_start) ++cold_resolves;
      if (!streaming) {
        ASSERT_NE(bound.plan, nullptr);
      }
    }
    EXPECT_GT(cold_resolves, 0);

    // The rebuilt segments serve bit-identically to a never-evicted net.
    core::Accelerator reference(bench::shared_cnn12_fixture().qnet, accel_config());
    core::Accelerator rebuilt =
        bounds[0].plan != nullptr
            ? core::Accelerator(bounds[0].version->network, bounds[0].plan,
                                accel_config())
            : core::Accelerator(bounds[0].version->network, bounds[0].source,
                                accel_config());
    const nn::Tensor image =
        bench::shared_cnn12_fixture().dataset.images().batch_row(0);
    const int sites = bench::shared_cnn12_fixture().qnet.num_sites;
    EXPECT_EQ(reference.predict(image, sites, 3)
                  .probs.max_abs_diff(rebuilt.predict(image, sites, 3).probs),
              0.0f);
  }
}

// --- the partial-residency acceptance matrix ---------------------------------

TEST(SegmentResidency, PartialResidencyMatrixStaysBitIdentical) {
  const bench::MultiTenantFixture multi = bench::make_multi_tenant_fixture(3);
  const int num_requests = 12;
  const int num_samples = 3;

  struct Stimulus {
    nn::Tensor image;
    std::uint64_t stream_id;
    int tenant;
  };
  std::vector<Stimulus> stimuli;
  for (int r = 0; r < num_requests; ++r) {
    serve::ScenarioEvent event;
    event.image_index = r;
    stimuli.push_back({bench::fixture_image(
                           multi.fixtures[static_cast<std::size_t>(r % 3)], event),
                       static_cast<std::uint64_t>(r), r % 3});
  }

  // Per-tenant single-model baselines at R=1 / max_batch=1.
  std::vector<std::vector<serve::Response>> baselines(3);
  for (int m = 0; m < 3; ++m) {
    serve::ServerConfig config;
    config.max_batch = 1;
    serve::Server server(
        core::Accelerator(multi.fixtures[static_cast<std::size_t>(m)].qnet,
                          accel_config(1)),
        config);
    for (const Stimulus& stimulus : stimuli) {
      if (stimulus.tenant != m) continue;
      serve::Request request;
      request.image = stimulus.image;
      request.options.num_samples = num_samples;
      request.stream_id = stimulus.stream_id;
      baselines[static_cast<std::size_t>(m)].push_back(
          server.infer(std::move(request)));
    }
  }

  enum class Residency { full, partial, cold };
  for (const Residency residency :
       {Residency::full, Residency::partial, Residency::cold}) {
    for (const bool streaming : {false, true}) {
      for (const int replicas : {1, 2}) {
        for (const int threads : {1, 2}) {
          for (const serve::DispatchMode mode :
               {serve::DispatchMode::fifo, serve::DispatchMode::cost_aware}) {
            serve::RegistryConfig registry_config;
            registry_config.stream_cold_plans = streaming;
            auto registry =
                std::make_shared<serve::ModelRegistry>(registry_config);
            for (int m = 0; m < 3; ++m) {
              serve::ModelConfig model_config;
              model_config.workload_id =
                  multi.fixtures[static_cast<std::size_t>(m)].workload_id;
              registry->publish(multi.names[static_cast<std::size_t>(m)],
                                multi.fixtures[static_cast<std::size_t>(m)].qnet,
                                model_config);
            }
            serve::ServerConfig server_config;
            server_config.max_batch = 4;
            server_config.num_replicas = replicas;
            server_config.num_threads = threads;
            server_config.dispatch_mode = mode;
            server_config.default_model = multi.names[0];
            serve::Server server(registry, accel_config(threads), server_config);

            // Pin the forced residency state AFTER server construction so
            // the wave itself crosses it.
            if (residency != Residency::full) {
              for (const std::string& name : multi.names) {
                const int num_layers = static_cast<int>(
                    registry->current(name)->segment_bytes.size());
                registry->evict_segments(
                    name, residency == Residency::partial ? num_layers / 2 : 0);
              }
              EXPECT_GT(registry->stats().segment_evictions, 0u);
            }

            std::vector<std::future<serve::Response>> futures;
            for (const Stimulus& stimulus : stimuli) {
              serve::Request request;
              request.image = stimulus.image;
              request.options.num_samples = num_samples;
              request.model = multi.names[static_cast<std::size_t>(stimulus.tenant)];
              request.stream_id = stimulus.stream_id;
              futures.push_back(server.submit(std::move(request)));
            }
            int cold_responses = 0;
            for (int r = 0; r < num_requests; ++r) {
              const serve::Response response =
                  futures[static_cast<std::size_t>(r)].get();
              if (response.cold_start) ++cold_responses;
              const serve::Response& reference =
                  baselines[static_cast<std::size_t>(r % 3)]
                           [static_cast<std::size_t>(r / 3)];
              EXPECT_EQ(response.probs.max_abs_diff(reference.probs), 0.0f)
                  << "request " << r << " residency "
                  << static_cast<int>(residency) << " streaming " << streaming
                  << " R=" << replicas << " threads=" << threads << " dispatch="
                  << static_cast<int>(mode);
            }
            if (residency != Residency::full) {
              EXPECT_GT(cold_responses, 0);
            }
          }
        }
      }
    }
  }
}

// --- cost model: non-overlapped reload charging ------------------------------

TEST(StreamedReloadCost, ChargesOnlyTheNonOverlappedRemainder) {
  const bench::ServeFixture& fixture = bench::shared_cnn12_fixture();
  serve::ModelRegistry probe;
  const auto version = probe.publish("m", fixture.qnet);
  ASSERT_GT(version->segment_bytes.size(), 1u);

  const core::AcceleratorConfig config = accel_config();
  serve::CostModel cost(core::PerfConfig{config.nne, config.ddr},
                        config.use_intermediate_caching);
  cost.bind_model(0, version->network->describe(), version->weight_bytes, nullptr,
                  version->segment_bytes);
  // Key 1: same model bound WITHOUT segment accounting — the flat fallback.
  cost.bind_model(1, version->network->describe(), version->weight_bytes);

  std::vector<int> all;
  for (int i = 0; i < static_cast<int>(version->segment_bytes.size()); ++i)
    all.push_back(i);

  EXPECT_EQ(cost.streamed_reload_ms(0, {}), 0.0);
  // Layer 0 has no compute window ahead of it: its reload charges in full.
  EXPECT_GT(cost.streamed_reload_ms(0, {0}), 0.0);
  // Monotone in the missing set, and the overlap makes the full-missing
  // streamed price STRICTLY cheaper than the flat whole-plan reload.
  EXPECT_LE(cost.streamed_reload_ms(0, {0}), cost.streamed_reload_ms(0, all));
  EXPECT_LT(cost.streamed_reload_ms(0, all), cost.cold_reload_ms(0));
  // Without per-segment bytes the streamed price degrades to the flat one.
  EXPECT_DOUBLE_EQ(cost.streamed_reload_ms(1, all), cost.cold_reload_ms(1));
  // Out-of-range segment indices are a caller bug, not a silent zero.
  EXPECT_ANY_THROW(cost.streamed_reload_ms(
      0, {static_cast<int>(version->segment_bytes.size())}));
}

// --- trace rotation ----------------------------------------------------------

TEST(TraceRotation, SegmentsAreIndependentlyValidAndReplayable) {
  const bench::ServeFixture& fixture = bench::shared_cnn12_fixture();
  const std::string base = temp_path("rotated.trace");
  const int num_requests = 10;

  serve::ScenarioSpec spec;
  spec.kind = serve::ScenarioKind::uniform;
  spec.num_requests = num_requests;
  spec.num_samples = 3;
  {
    serve::ServerConfig config;
    config.max_batch = 2;
    config.trace_path = base;
    config.trace_workload_id = fixture.workload_id;
    // Small enough that a handful of ~700-byte records overflows it: the
    // recorder must roll several times across the wave.
    config.trace_max_bytes = 2048;
    serve::Server server(core::Accelerator(fixture.qnet, accel_config()), config);
    (void)serve::play_scenario(
        server, serve::generate_scenario(spec),
        [&fixture](const serve::ScenarioEvent& event) {
          return bench::fixture_image(fixture, event);
        },
        /*as_fast_as_possible=*/true);
  }  // shutdown finalizes the open segment

  // Collect foo.trace.000, .001, ... in rotation order.
  std::vector<std::string> segment_paths;
  for (int i = 0;; ++i) {
    char suffix[16];
    std::snprintf(suffix, sizeof suffix, ".%03d", i);
    const std::string path = base + suffix;
    if (!std::ifstream(path).good()) break;
    segment_paths.push_back(path);
  }
  ASSERT_GE(segment_paths.size(), 2u) << "trace_max_bytes never rolled";

  core::Accelerator replayer(fixture.qnet, accel_config());
  std::size_t total_records = 0;
  std::uint64_t last_seq = 0;
  for (std::size_t s = 0; s < segment_paths.size(); ++s) {
    const serve::Trace trace = serve::read_trace(segment_paths[s]);  // valid alone
    EXPECT_EQ(trace.meta.workload_id, fixture.workload_id);
    EXPECT_FALSE(trace.records.empty()) << segment_paths[s];
    for (const serve::TraceRecord& record : trace.records) {
      if (total_records > 0) {
        EXPECT_GT(record.seq, last_seq);  // global order
      }
      last_seq = record.seq;
      ++total_records;
    }
    // Each segment replays checksum-clean on its own.
    const serve::ReplayReport report = serve::replay_trace(trace, replayer);
    EXPECT_TRUE(report.ok()) << segment_paths[s] << ": "
                             << serve::replay_summary(report);
  }
  EXPECT_EQ(total_records, static_cast<std::size_t>(num_requests));
}

// --- ticket aging ------------------------------------------------------------

TEST(TicketAging, NeverChangesAServedBit) {
  const bench::ServeFixture& fixture = bench::shared_mlp49_fixture();
  serve::ScenarioSpec spec;
  spec.kind = serve::ScenarioKind::mixed_shapes;
  spec.num_requests = 12;
  spec.num_samples = 4;
  const std::vector<serve::ScenarioEvent> events = serve::generate_scenario(spec);
  const auto image_for = [&fixture](const serve::ScenarioEvent& event) {
    return bench::fixture_image(fixture, event);
  };

  serve::ServerConfig reference_config;
  reference_config.max_batch = 1;
  serve::Server reference_server(core::Accelerator(fixture.qnet, accel_config(1)),
                                 reference_config);
  const auto reference =
      serve::play_scenario(reference_server, events, image_for, true);

  // aging_weight 0 is pure LPT; a huge weight makes queue age dominate any
  // cost difference (effectively FIFO-by-ticket). Neither may change a bit
  // — aging reorders WHEN a group is served, never WHAT it computes.
  for (const double aging_weight : {0.0, 1e6}) {
    serve::ServerConfig config;
    config.max_batch = 4;
    config.num_replicas = 2;
    config.num_threads = 2;
    config.dispatch_mode = serve::DispatchMode::cost_aware;
    config.aging_weight = aging_weight;
    serve::Server server(core::Accelerator(fixture.qnet, accel_config(2)), config);
    const auto responses = serve::play_scenario(server, events, image_for, true);
    ASSERT_EQ(responses.size(), reference.size());
    for (std::size_t r = 0; r < responses.size(); ++r) {
      ASSERT_TRUE(responses[r].has_value());
      ASSERT_TRUE(reference[r].has_value());
      EXPECT_EQ(responses[r]->probs.max_abs_diff(reference[r]->probs), 0.0f)
          << "request " << r << " aging_weight " << aging_weight;
    }
  }
}

}  // namespace
}  // namespace bnn
