// Serving front end + flattened (image, sample) pair loop:
//   - predict_batch with per-image {L, S, stream_id} knobs is bit-identical
//     to one-image-at-a-time prediction for every thread count,
//   - mc_predict's flattened float path has the same batching-independence,
//   - serve::Server responses are pure functions of (image, options,
//     stream id) — independent of batch composition and submission order,
//   - the uncertainty router never escalates below threshold, always above,
//     and an escalated response equals a direct full-S request bit-exactly.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "bayes/predictive.h"
#include "core/accelerator.h"
#include "data/synth.h"
#include "metrics/metrics.h"
#include "nn/models.h"
#include "runtime/thread_pool.h"
#include "train/trainer.h"

namespace bnn {
namespace {

// Tiny quantized CNN on 12x12 synthetic digits (mirrors the runtime-test
// fixture; trained once per process).
struct ServeFixture {
  ServeFixture() {
    util::Rng rng(71);
    nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
    util::Rng data_rng(72);
    dataset = std::make_unique<data::Dataset>(data::make_synth_digits_small(96, data_rng));

    model.set_bayesian_last(0);
    train::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    train::fit(model, *dataset, config);
    qnet = std::make_unique<quant::QuantNetwork>(quant::quantize_model(model, *dataset));
  }

  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<quant::QuantNetwork> qnet;
};

ServeFixture& fixture() {
  static ServeFixture instance;
  return instance;
}

core::AcceleratorConfig accel_config(int num_threads) {
  core::AcceleratorConfig config;
  config.nne.pc = 16;
  config.nne.pf = 8;
  config.nne.pv = 4;
  config.sampler_seed = 4321;
  config.num_threads = num_threads;
  return config;
}

using ImageRequest = core::Accelerator::ImageRequest;

// --- flattened accelerator pair loop --------------------------------------

TEST(PredictBatch, BatchedEqualsOneImageAtATimeAcrossThreadCounts) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 4);

  // Heterogeneous per-image knobs: different L, S and stream ids.
  const std::vector<ImageRequest> requests{
      {2, 9, 100}, {1, 3, 17}, {2, 1, 100}, {0, 5, 2}};

  // One-image-at-a-time reference, sequential.
  core::Accelerator reference(*fx.qnet, accel_config(1));
  std::vector<nn::Tensor> rows;
  for (int n = 0; n < 4; ++n) {
    rows.push_back(reference
                       .predict_batch(batch.images.batch_row(n),
                                      {requests[static_cast<std::size_t>(n)]})
                       .probs);
  }

  for (int threads : {1, 2, 8}) {
    core::Accelerator accelerator(*fx.qnet, accel_config(threads));
    const auto prediction = accelerator.predict_batch(batch.images, requests);
    ASSERT_EQ(prediction.probs.shape(), (std::vector<int>{4, 10}));
    ASSERT_EQ(prediction.stats.size(), 4u);
    for (int n = 0; n < 4; ++n) {
      EXPECT_EQ(prediction.probs.batch_row(n).max_abs_diff(
                    rows[static_cast<std::size_t>(n)]),
                0.0f)
          << "image " << n << ", threads=" << threads;
    }
  }
}

TEST(PredictBatch, WrapperIsUniformBatchWithBatchIndexStreams) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 3);

  core::Accelerator a(*fx.qnet, accel_config(2));
  const auto via_predict = a.predict(batch.images, 2, 6);
  const std::int64_t cycles = a.last_functional_compute_cycles();

  core::Accelerator b(*fx.qnet, accel_config(2));
  std::vector<ImageRequest> uniform;
  for (int n = 0; n < 3; ++n)
    uniform.push_back({2, 6, static_cast<std::uint64_t>(n)});
  const auto via_batch = b.predict_batch(batch.images, uniform);

  EXPECT_EQ(via_predict.probs.max_abs_diff(via_batch.probs), 0.0f);
  EXPECT_EQ(b.last_functional_compute_cycles(), cycles);
}

TEST(PredictBatch, RejectsMismatchedRequestCount) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 2);
  core::Accelerator accelerator(*fx.qnet, accel_config(1));
  EXPECT_THROW(accelerator.predict_batch(batch.images, {{2, 3, 0}}),
               std::invalid_argument);
}

// --- flattened float pair loop --------------------------------------------

TEST(McPredictFlattened, BatchedEqualsOneImageAtATimeAcrossThreadCounts) {
  util::Rng rng(17);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  model.set_bayesian_last(2);
  model.reseed_sites(4242);
  nn::Tensor x = nn::Tensor::randn({4, 1, 12, 12}, rng);

  // One-image-at-a-time reference: image n served alone with stream base n.
  std::vector<nn::Tensor> rows;
  for (int n = 0; n < 4; ++n) {
    bayes::PredictiveOptions options;
    options.num_samples = 5;
    options.image_stream_base = static_cast<std::uint64_t>(n);
    rows.push_back(bayes::mc_predict(model, x.batch_row(n), options));
  }

  for (int threads : {1, 2, 8}) {
    bayes::PredictiveOptions options;
    options.num_samples = 5;
    options.num_threads = threads;
    const nn::Tensor probs = bayes::mc_predict(model, x, options);
    for (int n = 0; n < 4; ++n) {
      EXPECT_EQ(probs.batch_row(n).max_abs_diff(rows[static_cast<std::size_t>(n)]), 0.0f)
          << "image " << n << ", threads=" << threads;
    }
  }
}

// --- serving front end ----------------------------------------------------

serve::Request request_for(const data::Batch& batch, int n, serve::RequestOptions options,
                           std::optional<std::uint64_t> stream_id = std::nullopt) {
  serve::Request request;
  request.image = batch.images.batch_row(n);
  request.options = options;
  request.stream_id = stream_id;
  return request;
}

TEST(Server, ResponsesMatchDirectPredictBatchAndIgnoreBatchingOrder) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 4);

  serve::RequestOptions options;
  options.num_samples = 6;
  options.bayes_layers = 2;

  // Direct reference rows, one image at a time.
  core::Accelerator reference(*fx.qnet, accel_config(1));
  std::vector<nn::Tensor> rows;
  for (int n = 0; n < 4; ++n)
    rows.push_back(reference
                       .predict_batch(batch.images.batch_row(n),
                                      {{2, 6, static_cast<std::uint64_t>(10 + n)}})
                       .probs);

  // Coalesced into one batch...
  {
    serve::ServerConfig config;
    config.max_batch = 4;
    serve::Server server(core::Accelerator(*fx.qnet, accel_config(0)), config);
    std::vector<std::future<serve::Response>> futures;
    for (int n = 0; n < 4; ++n)
      futures.push_back(server.submit(
          request_for(batch, n, options, static_cast<std::uint64_t>(10 + n))));
    for (int n = 0; n < 4; ++n) {
      const serve::Response response = futures[static_cast<std::size_t>(n)].get();
      EXPECT_EQ(response.probs.max_abs_diff(rows[static_cast<std::size_t>(n)]), 0.0f);
      EXPECT_FALSE(response.escalated);
      EXPECT_EQ(response.samples_used, 6);
      EXPECT_EQ(response.bayes_layers, 2);
      EXPECT_EQ(response.stream_id, static_cast<std::uint64_t>(10 + n));
    }
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, 4u);
    EXPECT_GE(stats.batches, 1u);
  }

  // ...or forced one-per-batch in reverse submission order: same responses.
  {
    serve::ServerConfig config;
    config.max_batch = 1;
    serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), config);
    for (int n = 3; n >= 0; --n) {
      const serve::Response response = server.infer(
          request_for(batch, n, options, static_cast<std::uint64_t>(10 + n)));
      EXPECT_EQ(response.probs.max_abs_diff(rows[static_cast<std::size_t>(n)]), 0.0f)
          << "image " << n;
    }
    EXPECT_EQ(server.stats().batches, 4u);
  }
}

TEST(Server, RouterNeverEscalatesBelowThresholdAlwaysAbove) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 3);

  // Threshold above ln(K): screening entropy can never cross it.
  {
    serve::RequestOptions options;
    options.num_samples = 8;
    options.bayes_layers = 2;
    options.use_uncertainty_router = true;
    options.screening_samples = 2;
    options.entropy_threshold_nats = 100.0;
    serve::Server server(core::Accelerator(*fx.qnet, accel_config(0)), {});
    for (int n = 0; n < 3; ++n) {
      const serve::Response response = server.infer(request_for(batch, n, options));
      EXPECT_FALSE(response.escalated);
      EXPECT_EQ(response.samples_used, 2);  // screening pass answered
    }
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.screened, 3u);
    EXPECT_EQ(stats.escalations, 0u);
  }

  // Threshold below 0: entropy is always positive, everything escalates,
  // and the escalated response is bit-identical to a direct full-S request
  // with the same stream id.
  {
    serve::RequestOptions routed;
    routed.num_samples = 8;
    routed.bayes_layers = 2;
    routed.use_uncertainty_router = true;
    routed.screening_samples = 2;
    routed.entropy_threshold_nats = -1.0;

    serve::RequestOptions direct;
    direct.num_samples = 8;
    direct.bayes_layers = 2;

    serve::Server server(core::Accelerator(*fx.qnet, accel_config(0)), {});
    for (int n = 0; n < 3; ++n) {
      const serve::Response escalated =
          server.infer(request_for(batch, n, routed, 55u + n));
      const serve::Response reference =
          server.infer(request_for(batch, n, direct, 55u + n));
      EXPECT_TRUE(escalated.escalated);
      EXPECT_EQ(escalated.samples_used, 8);
      EXPECT_EQ(escalated.probs.max_abs_diff(reference.probs), 0.0f) << "image " << n;
      EXPECT_EQ(escalated.predicted_class, reference.predicted_class);
    }
    EXPECT_EQ(server.stats().escalations, 3u);
  }
}

TEST(Server, EscalationReuseMergesScreeningWithTheTailSampleWindow) {
  auto& fx = fixture();
  EXPECT_FALSE(serve::ServerConfig{}.reuse_screening_samples);  // opt-in knob
  const data::Batch batch = fx.dataset->batch(0, 3);

  serve::RequestOptions routed;
  routed.num_samples = 8;
  routed.bayes_layers = 2;
  routed.use_uncertainty_router = true;
  routed.screening_samples = 3;
  routed.entropy_threshold_nats = -1.0;  // always escalate

  serve::ServerConfig config;
  config.reuse_screening_samples = true;
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(0)), config);

  core::Accelerator direct(*fx.qnet, accel_config(1));
  for (int n = 0; n < 3; ++n) {
    const std::uint64_t stream = 70u + static_cast<std::uint64_t>(n);
    const serve::Response response = server.infer(request_for(batch, n, routed, stream));
    EXPECT_TRUE(response.escalated);
    EXPECT_EQ(response.samples_used, 8);
    EXPECT_EQ(response.bayes_layers, 2);

    // The escalation pass must run only the 8 - 3 NEW samples, at
    // sample_offset 3 of the same lane family, and merge with the server's
    // exact float weights: p = screen * (3/8) + tail * (5/8).
    const auto screening =
        direct.predict_batch(batch.images.batch_row(n), {{2, 3, stream, 0}});
    const auto tail =
        direct.predict_batch(batch.images.batch_row(n), {{2, 5, stream, 3}});
    const float screen_weight = static_cast<float>(3) / static_cast<float>(8);
    const float tail_weight = static_cast<float>(5) / static_cast<float>(8);
    for (int k = 0; k < 10; ++k) {
      const float expected = screening.probs.data()[k] * screen_weight +
                             tail.probs.data()[k] * tail_weight;
      EXPECT_EQ(response.probs.data()[k], expected) << "image " << n << " class " << k;
    }
    // Reported hardware cost = screening pass + tail pass (not a full S).
    EXPECT_EQ(response.stats.macs, screening.stats[0].macs + tail.stats[0].macs);
    EXPECT_DOUBLE_EQ(response.stats.total_cycles,
                     screening.stats[0].total_cycles + tail.stats[0].total_cycles);

    // Deterministic: repeating the request reproduces the response bit for
    // bit (merged windows are a pure function of image, options, stream).
    const serve::Response again = server.infer(request_for(batch, n, routed, stream));
    EXPECT_EQ(response.probs.max_abs_diff(again.probs), 0.0f);
    EXPECT_EQ(response.predicted_class, again.predicted_class);
  }
  EXPECT_EQ(server.stats().escalations, 6u);
}

TEST(Server, RouterPartitionsExactlyByScreeningEntropy) {
  auto& fx = fixture();
  const int count = 6;
  const data::Batch batch = fx.dataset->batch(0, count);

  // Screening entropies straight from the accelerator.
  core::Accelerator probe(*fx.qnet, accel_config(1));
  std::vector<double> entropy(count);
  for (int n = 0; n < count; ++n) {
    const nn::Tensor probs =
        probe
            .predict_batch(batch.images.batch_row(n),
                           {{2, 3, static_cast<std::uint64_t>(n)}})
            .probs;
    entropy[static_cast<std::size_t>(n)] = metrics::average_predictive_entropy(probs);
  }
  // A threshold between the observed min and max splits the batch.
  const auto [lo, hi] = std::minmax_element(entropy.begin(), entropy.end());
  ASSERT_LT(*lo, *hi) << "fixture images should differ in screening entropy";
  const double threshold = 0.5 * (*lo + *hi);

  serve::RequestOptions options;
  options.num_samples = 10;
  options.bayes_layers = 2;
  options.use_uncertainty_router = true;
  options.screening_samples = 3;
  options.entropy_threshold_nats = threshold;

  serve::ServerConfig config;
  config.max_batch = count;
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(0)), config);
  std::vector<std::future<serve::Response>> futures;
  for (int n = 0; n < count; ++n)
    futures.push_back(
        server.submit(request_for(batch, n, options, static_cast<std::uint64_t>(n))));
  for (int n = 0; n < count; ++n) {
    const serve::Response response = futures[static_cast<std::size_t>(n)].get();
    EXPECT_EQ(response.escalated, entropy[static_cast<std::size_t>(n)] > threshold)
        << "image " << n;
  }
}

// --- replica scale-out ------------------------------------------------------

TEST(Server, ReplicasBitIdenticalAcrossCountsAndThreadCounts) {
  auto& fx = fixture();
  const int count = 6;
  const data::Batch batch = fx.dataset->batch(0, count);

  // Heterogeneous traffic: direct requests and always-escalating routed
  // ones (threshold < 0), so replicas exercise both passes. Stream ids are
  // pinned, making every response a pure function of its own request.
  std::vector<serve::RequestOptions> options(static_cast<std::size_t>(count));
  for (int n = 0; n < count; ++n) {
    serve::RequestOptions& o = options[static_cast<std::size_t>(n)];
    o.num_samples = 3 + n % 3;
    o.bayes_layers = n % 2 == 0 ? 2 : 1;
    if (n % 3 == 0) {
      o.use_uncertainty_router = true;
      o.screening_samples = 2;
      o.entropy_threshold_nats = -1.0;  // always escalate to full S
    }
  }

  // Direct one-image-at-a-time reference (an escalated routed response is
  // bit-identical to a direct full-S request by the router contract).
  core::Accelerator reference(*fx.qnet, accel_config(1));
  std::vector<nn::Tensor> rows;
  for (int n = 0; n < count; ++n) {
    const serve::RequestOptions& o = options[static_cast<std::size_t>(n)];
    rows.push_back(reference
                       .predict_batch(batch.images.batch_row(n),
                                      {{o.bayes_layers, o.num_samples,
                                        static_cast<std::uint64_t>(40 + n)}})
                       .probs);
  }

  for (int replicas : {1, 2, 4}) {
    for (int threads : {1, 2, 8}) {
      serve::ServerConfig config;
      config.max_batch = 3;  // forces several batch groups per wave
      config.num_replicas = replicas;
      config.num_threads = threads;
      serve::Server server(core::Accelerator(*fx.qnet, accel_config(0)), config);
      std::vector<std::future<serve::Response>> futures;
      for (int n = 0; n < count; ++n)
        futures.push_back(server.submit(request_for(
            batch, n, options[static_cast<std::size_t>(n)],
            static_cast<std::uint64_t>(40 + n))));
      for (int n = 0; n < count; ++n) {
        const serve::Response response = futures[static_cast<std::size_t>(n)].get();
        EXPECT_EQ(response.probs.max_abs_diff(rows[static_cast<std::size_t>(n)]), 0.0f)
            << "image " << n << ", replicas=" << replicas << ", threads=" << threads;
        EXPECT_EQ(response.escalated,
                  options[static_cast<std::size_t>(n)].use_uncertainty_router)
            << "image " << n << ", replicas=" << replicas << ", threads=" << threads;
      }
      const serve::ServerStats stats = server.stats();
      EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(count));
      EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(count));
      EXPECT_EQ(stats.rejected, 0u);
    }
  }
}

// Dispatcher determinism suite: mixed S/L traffic (cheap shallow, heavy
// full-depth, and always-escalating routed requests) served under BOTH
// dispatch modes at R in {1,2,4} x threads in {1,2,8} must be bit-identical
// to direct single-threaded evaluation at the same stream ids — cost-aware
// LPT group selection changes which replica serves a group and when, never
// what any request's response is.
TEST(Server, CostAwareDispatchBitIdenticalAcrossModesReplicasAndThreads) {
  auto& fx = fixture();
  const int count = 8;
  const data::Batch batch = fx.dataset->batch(0, count);

  // Mixed S/L: heavy {4S-ish, all sites} every fourth request, routed
  // always-escalate every third, cheap {S=2, L=1} otherwise.
  std::vector<serve::RequestOptions> options(static_cast<std::size_t>(count));
  for (int n = 0; n < count; ++n) {
    serve::RequestOptions& o = options[static_cast<std::size_t>(n)];
    if (n % 4 == 3) {
      o.num_samples = 8;
      o.bayes_layers = -1;  // every site
    } else {
      o.num_samples = 2;
      o.bayes_layers = 1;
    }
    if (n % 3 == 0) {
      o.use_uncertainty_router = true;
      o.screening_samples = 2;
      o.entropy_threshold_nats = -1.0;  // always escalate to full S
    }
  }

  // Direct one-image-at-a-time reference (an escalated routed response is
  // bit-identical to a direct full-S request by the router contract).
  core::Accelerator reference(*fx.qnet, accel_config(1));
  const int num_sites = fx.qnet->num_sites;
  std::vector<nn::Tensor> rows;
  for (int n = 0; n < count; ++n) {
    const serve::RequestOptions& o = options[static_cast<std::size_t>(n)];
    const int resolved = o.bayes_layers < 0 ? num_sites : o.bayes_layers;
    rows.push_back(reference
                       .predict_batch(batch.images.batch_row(n),
                                      {{resolved, o.num_samples,
                                        static_cast<std::uint64_t>(70 + n)}})
                       .probs);
  }

  for (const serve::DispatchMode mode :
       {serve::DispatchMode::fifo, serve::DispatchMode::cost_aware}) {
    for (int replicas : {1, 2, 4}) {
      for (int threads : {1, 2, 8}) {
        serve::ServerConfig config;
        config.max_batch = 3;  // several groups per wave
        config.num_replicas = replicas;
        config.num_threads = threads;
        config.dispatch_mode = mode;
        serve::Server server(core::Accelerator(*fx.qnet, accel_config(0)), config);
        EXPECT_EQ(server.cost_model() != nullptr,
                  mode == serve::DispatchMode::cost_aware);
        std::vector<std::future<serve::Response>> futures;
        for (int n = 0; n < count; ++n)
          futures.push_back(server.submit(request_for(
              batch, n, options[static_cast<std::size_t>(n)],
              static_cast<std::uint64_t>(70 + n))));
        for (int n = 0; n < count; ++n) {
          const serve::Response response = futures[static_cast<std::size_t>(n)].get();
          EXPECT_EQ(response.probs.max_abs_diff(rows[static_cast<std::size_t>(n)]), 0.0f)
              << "image " << n << ", dispatch "
              << (mode == serve::DispatchMode::fifo ? "fifo" : "cost") << ", replicas "
              << replicas << ", threads " << threads;
          EXPECT_FALSE(response.shed_downgraded);
        }
        const serve::ServerStats stats = server.stats();
        EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(count));
        EXPECT_EQ(stats.rejected, 0u);
      }
    }
  }
}

TEST(Server, ReplicasShareOneNetworkCopy) {
  auto& fx = fixture();
  serve::ServerConfig config;
  config.num_replicas = 4;
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), config);
  // The registry publishes the accelerator's network HANDLE — no deep copy
  // of the weights on the way in.
  EXPECT_EQ(server.registry()->current("")->network.get(),
            server.accelerator().shared_network().get());
  // Replica binds share that same handle: after serving, the network has
  // extra shared references (anchor + registry + the serving bind), never
  // a duplicated weight set.
  serve::Request request;
  request.image = fx.dataset->images().batch_row(0);
  request.options.num_samples = 4;
  (void)server.infer(std::move(request));
  EXPECT_GE(server.accelerator().shared_network().use_count(), 3);
}

TEST(Server, ValidatesReplicaAndQueueDepthConfig) {
  auto& fx = fixture();
  {
    serve::ServerConfig config;
    config.num_replicas = 0;
    EXPECT_THROW(serve::Server(core::Accelerator(*fx.qnet, accel_config(1)), config),
                 std::invalid_argument);
  }
  {
    serve::ServerConfig config;
    config.max_queue_depth = -1;
    EXPECT_THROW(serve::Server(core::Accelerator(*fx.qnet, accel_config(1)), config),
                 std::invalid_argument);
  }
}

TEST(Server, ValidatesRequestsAndRejectsAfterShutdown) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 1);
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), {});

  serve::RequestOptions bad_samples;
  bad_samples.num_samples = 0;
  EXPECT_THROW(server.submit(request_for(batch, 0, bad_samples)), std::invalid_argument);

  serve::RequestOptions bad_layers;
  bad_layers.bayes_layers = fx.qnet->num_sites + 1;
  EXPECT_THROW(server.submit(request_for(batch, 0, bad_layers)), std::invalid_argument);

  serve::Request wrong_shape;
  wrong_shape.image = nn::Tensor({1, 1, 5, 5});
  EXPECT_THROW(server.submit(std::move(wrong_shape)), std::invalid_argument);

  server.shutdown();
  EXPECT_THROW(server.submit(request_for(batch, 0, serve::RequestOptions{})),
               std::runtime_error);
}

// --- mixed-shape traffic and dispatcher survival ---------------------------

// Linear-first network: submit() can only constrain the element count, so
// two different (C,H,W) shapes with equal numel are both accepted — the
// regression scenario for the dispatcher-killing mixed-shape batch.
struct MlpServeFixture {
  MlpServeFixture() {
    util::Rng rng(91);
    nn::Model model = nn::make_mlp3(rng, 49, 24, 10, nn::MlpActivation::relu,
                                    /*with_mcd_sites=*/true);
    util::Rng data_rng(92);
    data::Dataset digits = data::make_synth_digits(96, data_rng);
    nn::Tensor small({digits.size(), 49, 1, 1});
    for (int n = 0; n < digits.size(); ++n)
      for (int y = 0; y < 7; ++y)
        for (int x = 0; x < 7; ++x)
          small.v4(n, y * 7 + x, 0, 0) = digits.images().v4(n, 0, 4 * y + 2, 4 * x + 2);
    dataset = std::make_unique<data::Dataset>(std::move(small), digits.labels(), 10);

    train::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    train::fit(model, *dataset, config);
    qnet = std::make_unique<quant::QuantNetwork>(quant::quantize_model(model, *dataset));
  }

  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<quant::QuantNetwork> qnet;
};

MlpServeFixture& mlp_fixture() {
  static MlpServeFixture instance;
  return instance;
}

TEST(Server, MixedShapeWaveIsSplitPerShapeAndEveryRequestResolves) {
  auto& fx = mlp_fixture();

  serve::ServerConfig config;
  config.max_batch = 8;
  config.batch_linger = std::chrono::milliseconds(20);  // force coalescing
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), config);

  serve::RequestOptions options;
  options.num_samples = 3;
  options.bayes_layers = 1;

  // The same flat pixels under two different (C,H,W) views with equal
  // numel, interleaved so both land in one linger window. With fixed
  // stream ids the responses must be identical pairwise: the linear-first
  // network flattens its input, so only the batch split differs.
  std::vector<std::future<serve::Response>> futures;
  for (int n = 0; n < 4; ++n) {
    serve::Request flat;
    flat.image = fx.dataset->images().batch_row(n);  // (1, 49, 1, 1)
    flat.options = options;
    flat.stream_id = static_cast<std::uint64_t>(n);
    futures.push_back(server.submit(std::move(flat)));

    serve::Request square;
    square.image = fx.dataset->images().batch_row(n).reshaped({1, 1, 7, 7});
    square.options = options;
    square.stream_id = static_cast<std::uint64_t>(n);
    futures.push_back(server.submit(std::move(square)));
  }
  for (int n = 0; n < 4; ++n) {
    const serve::Response flat = futures[static_cast<std::size_t>(2 * n)].get();
    const serve::Response square = futures[static_cast<std::size_t>(2 * n + 1)].get();
    EXPECT_EQ(flat.probs.shape(), (std::vector<int>{1, 10}));
    EXPECT_EQ(flat.probs.max_abs_diff(square.probs), 0.0f) << "image " << n;
  }

  // The dispatcher survived the mixed wave: a later request still serves.
  serve::Request after;
  after.image = fx.dataset->images().batch_row(5);
  after.options = options;
  EXPECT_EQ(server.infer(std::move(after)).probs.shape(), (std::vector<int>{1, 10}));
  EXPECT_EQ(server.stats().requests, 9u);
}

// Mixed-SHAPE mixed-cost traffic (the linear-first MLP accepts flat and
// square views of equal numel): cost-aware group selection ranks real
// multi-shape groups, and both modes still serve every request bit-equal
// to a single-threaded one-at-a-time replay at the same stream id.
TEST(Server, CostAwareDispatchHandlesMixedShapeGroups) {
  auto& fx = mlp_fixture();

  for (const serve::DispatchMode mode :
       {serve::DispatchMode::fifo, serve::DispatchMode::cost_aware}) {
    serve::ServerConfig config;
    config.max_batch = 4;
    config.num_replicas = 2;
    config.batch_linger = std::chrono::milliseconds(10);  // force coalescing
    config.dispatch_mode = mode;
    serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), config);

    // Flat/square views of the same pixels, with the square half heavy
    // (S=6, L=2) and the flat half cheap (S=2, L=1): the cost-aware
    // dispatcher ranks the heavy shape group first without ever changing a
    // response.
    std::vector<std::future<serve::Response>> futures;
    for (int n = 0; n < 4; ++n) {
      serve::Request flat;
      flat.image = fx.dataset->images().batch_row(n);  // (1, 49, 1, 1)
      flat.options.num_samples = 2;
      flat.options.bayes_layers = 1;
      flat.stream_id = static_cast<std::uint64_t>(n);
      futures.push_back(server.submit(std::move(flat)));

      serve::Request square;
      square.image = fx.dataset->images().batch_row(n).reshaped({1, 1, 7, 7});
      square.options.num_samples = 6;
      square.options.bayes_layers = 2;
      square.stream_id = static_cast<std::uint64_t>(n);
      futures.push_back(server.submit(std::move(square)));
    }
    // Reference: single-threaded one-at-a-time replay of the same requests.
    serve::ServerConfig replay_config;
    replay_config.max_batch = 1;
    replay_config.num_threads = 1;
    serve::Server replay(core::Accelerator(*fx.qnet, accel_config(1)), replay_config);
    for (int n = 0; n < 4; ++n) {
      const serve::Response flat = futures[static_cast<std::size_t>(2 * n)].get();
      const serve::Response square = futures[static_cast<std::size_t>(2 * n + 1)].get();
      serve::Request ref_flat;
      ref_flat.image = fx.dataset->images().batch_row(n);
      ref_flat.options.num_samples = 2;
      ref_flat.options.bayes_layers = 1;
      ref_flat.stream_id = static_cast<std::uint64_t>(n);
      serve::Request ref_square;
      ref_square.image = fx.dataset->images().batch_row(n).reshaped({1, 1, 7, 7});
      ref_square.options.num_samples = 6;
      ref_square.options.bayes_layers = 2;
      ref_square.stream_id = static_cast<std::uint64_t>(n);
      EXPECT_EQ(flat.probs.max_abs_diff(replay.infer(std::move(ref_flat)).probs), 0.0f)
          << "flat image " << n;
      EXPECT_EQ(square.probs.max_abs_diff(replay.infer(std::move(ref_square)).probs),
                0.0f)
          << "square image " << n;
    }
  }
}

TEST(Server, KeepsServingAfterARejectedSubmission) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 2);
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), {});

  serve::Request wrong_shape;
  wrong_shape.image = nn::Tensor({1, 1, 5, 5});
  EXPECT_THROW(server.submit(std::move(wrong_shape)), std::invalid_argument);

  // The bad request failed on the caller thread; the dispatcher never saw
  // it and keeps serving.
  for (int n = 0; n < 2; ++n) {
    const serve::Response response =
        server.infer(request_for(batch, n, serve::RequestOptions{}));
    EXPECT_EQ(response.probs.shape(), (std::vector<int>{1, 10}));
  }
  EXPECT_EQ(server.stats().requests, 2u);
}

// --- latency percentiles ---------------------------------------------------

TEST(LatencyPercentile, InterpolatesBetweenClosestRanks) {
  EXPECT_DOUBLE_EQ(serve::latency_percentile({5.0}, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(serve::latency_percentile({5.0}, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(serve::latency_percentile({5.0}, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(serve::latency_percentile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(serve::latency_percentile({1.0, 2.0, 3.0, 4.0}, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(serve::latency_percentile({1.0, 2.0, 3.0, 4.0}, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(serve::latency_percentile({1.0, 2.0, 3.0, 4.0}, 25.0), 1.75);
  // Unsorted input is sorted internally.
  EXPECT_DOUBLE_EQ(serve::latency_percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(serve::latency_percentile({10.0, 0.0}, 95.0), 9.5);
  EXPECT_THROW(serve::latency_percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(serve::latency_percentile({1.0}, 101.0), std::invalid_argument);
  EXPECT_THROW(serve::latency_percentile({1.0}, -1.0), std::invalid_argument);
}

TEST(Server, StatsReportOrderedLatencyPercentiles) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 3);
  serve::Server server(core::Accelerator(*fx.qnet, accel_config(1)), {});

  EXPECT_EQ(server.stats().latency_p50_ms, 0.0);  // no traffic yet

  for (int n = 0; n < 3; ++n)
    server.infer(request_for(batch, n, serve::RequestOptions{}));

  const serve::ServerStats stats = server.stats();
  EXPECT_GT(stats.latency_p50_ms, 0.0);
  EXPECT_LE(stats.latency_p50_ms, stats.latency_p95_ms);
  EXPECT_LE(stats.latency_p95_ms, stats.latency_p99_ms);
}

TEST(Server, DestructorDrainsAcceptedRequests) {
  auto& fx = fixture();
  const data::Batch batch = fx.dataset->batch(0, 3);
  std::vector<std::future<serve::Response>> futures;
  {
    serve::ServerConfig config;
    config.max_batch = 2;
    serve::Server server(core::Accelerator(*fx.qnet, accel_config(0)), config);
    for (int n = 0; n < 3; ++n)
      futures.push_back(server.submit(request_for(batch, n, serve::RequestOptions{})));
  }  // destructor joins after serving everything accepted
  for (auto& future : futures) {
    const serve::Response response = future.get();
    EXPECT_EQ(response.probs.shape(), (std::vector<int>{1, 10}));
  }
}

}  // namespace
}  // namespace bnn
