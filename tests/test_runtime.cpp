// Thread-pool runtime and the parallel Monte Carlo determinism contract:
// mc_predict and Accelerator::predict must produce bit-identical
// predictions for every thread count at a fixed seed.
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bayes/predictive.h"
#include "core/accelerator.h"
#include "data/synth.h"
#include "nn/models.h"
#include "train/trainer.h"

namespace bnn {
namespace {

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_GE(runtime::resolve_thread_count(0), 1);  // auto
  EXPECT_EQ(runtime::resolve_thread_count(1), 1);
  EXPECT_EQ(runtime::resolve_thread_count(7), 7);
  EXPECT_THROW(runtime::resolve_thread_count(-1), std::invalid_argument);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    runtime::ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    const int count = 100;
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, [&hits](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (int i = 0; i < count; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossJobsAndEmptyJobIsNoop) {
  runtime::ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(0, [&total](std::int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 0);
  for (int repeat = 0; repeat < 3; ++repeat)
    pool.parallel_for(10, [&total](std::int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 30);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  for (int threads : {1, 4}) {
    runtime::ThreadPool pool(threads);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallel_for(16,
                                   [&ran](std::int64_t i) {
                                     ran.fetch_add(1);
                                     if (i == 3) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 16);  // remaining indices still run
    // The pool stays usable after a throwing job.
    std::atomic<int> again{0};
    pool.parallel_for(4, [&again](std::int64_t) { again.fetch_add(1); });
    EXPECT_EQ(again.load(), 4);
  }
}

TEST(ThreadPool, MaxWorkersCapsConcurrency) {
  runtime::ThreadPool pool(8);
  for (int cap : {1, 2}) {
    std::atomic<int> active{0};
    std::atomic<int> high_water{0};
    pool.parallel_for(
        64,
        [&](std::int64_t) {
          const int now = active.fetch_add(1) + 1;
          int seen = high_water.load();
          while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          active.fetch_sub(1);
        },
        cap);
    EXPECT_LE(high_water.load(), cap) << "cap=" << cap;
  }
  // Cap larger than the pool is clamped, not an error; 0 means "all".
  std::atomic<int> total{0};
  pool.parallel_for(16, [&total](std::int64_t) { total.fetch_add(1); }, 99);
  pool.parallel_for(16, [&total](std::int64_t) { total.fetch_add(1); }, 0);
  EXPECT_EQ(total.load(), 32);
  EXPECT_THROW(pool.parallel_for(1, [](std::int64_t) {}, -1), std::invalid_argument);
}

TEST(ThreadPool, SharedPoolIsProcessWideAndReusable) {
  runtime::ThreadPool& a = runtime::shared_pool();
  runtime::ThreadPool& b = runtime::shared_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), runtime::resolve_thread_count(0));
  std::atomic<int> total{0};
  a.parallel_for(10, [&total](std::int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, ConcurrentSubmittersShareWorkersSafely) {
  runtime::ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&pool, &total] {
      for (int repeat = 0; repeat < 5; ++repeat)
        pool.parallel_for(20, [&total](std::int64_t) { total.fetch_add(1); });
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(total.load(), 4 * 5 * 20);
}

// --- Monte Carlo determinism across thread counts -------------------------

TEST(ParallelMcPredict, BitIdenticalAcrossThreadCounts) {
  util::Rng rng(17);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  model.set_bayesian_last(2);
  model.reseed_sites(4242);
  nn::Tensor x = nn::Tensor::randn({3, 1, 12, 12}, rng);

  bayes::PredictiveOptions options;
  options.num_samples = 16;
  options.num_threads = 1;
  const nn::Tensor reference = bayes::mc_predict(model, x, options);

  for (int threads : {2, 8, 0 /* auto */}) {
    options.num_threads = threads;
    const nn::Tensor probs = bayes::mc_predict(model, x, options);
    EXPECT_EQ(probs.max_abs_diff(reference), 0.0f) << "threads=" << threads;
  }

  // Purity: masks derive from the site seeds, not live RNG state, so a
  // repeated call agrees with the first one.
  options.num_threads = 1;
  EXPECT_EQ(bayes::mc_predict(model, x, options).max_abs_diff(reference), 0.0f);

  // ... and IC off keeps the bit-exact result at any thread count.
  options.use_intermediate_caching = false;
  options.num_threads = 8;
  EXPECT_EQ(bayes::mc_predict(model, x, options).max_abs_diff(reference), 0.0f);
}

TEST(ParallelMcPredict, ReseedChangesTheResult) {
  util::Rng rng(18);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  model.set_bayesian_last(model.num_sites());
  nn::Tensor x = nn::Tensor::randn({1, 1, 12, 12}, rng);
  bayes::PredictiveOptions options;
  options.num_samples = 4;

  model.reseed_sites(1);
  const nn::Tensor a = bayes::mc_predict(model, x, options);
  model.reseed_sites(2);
  const nn::Tensor b = bayes::mc_predict(model, x, options);
  EXPECT_GT(a.max_abs_diff(b), 0.0f);
}

struct AcceleratorFixture {
  AcceleratorFixture() {
    util::Rng rng(71);
    nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
    util::Rng data_rng(72);
    data::Dataset digits = data::make_synth_digits(96, data_rng);
    nn::Tensor small({digits.size(), 1, 12, 12});
    for (int n = 0; n < digits.size(); ++n)
      for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x)
          small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
    dataset = std::make_unique<data::Dataset>(std::move(small), digits.labels(), 10);

    model.set_bayesian_last(0);
    train::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 16;
    train::fit(model, *dataset, config);
    qnet = std::make_unique<quant::QuantNetwork>(quant::quantize_model(model, *dataset));
  }

  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<quant::QuantNetwork> qnet;
};

AcceleratorFixture& accel_fixture() {
  static AcceleratorFixture instance;
  return instance;
}

core::AcceleratorConfig small_config(int num_threads, bool use_ic = true) {
  core::AcceleratorConfig config;
  config.nne.pc = 16;
  config.nne.pf = 8;
  config.nne.pv = 4;
  config.sampler_seed = 1234;
  config.use_intermediate_caching = use_ic;
  config.num_threads = num_threads;
  return config;
}

TEST(ParallelAccelerator, BitIdenticalAcrossThreadCounts) {
  auto& fx = accel_fixture();
  const data::Batch batch = fx.dataset->batch(0, 2);

  core::Accelerator reference(*fx.qnet, small_config(1));
  const auto expected = reference.predict(batch.images, 2, 12);
  const std::int64_t expected_cycles = reference.last_functional_compute_cycles();

  for (int threads : {2, 8, 0 /* auto */}) {
    core::Accelerator accelerator(*fx.qnet, small_config(threads));
    const auto prediction = accelerator.predict(batch.images, 2, 12);
    EXPECT_EQ(prediction.probs.max_abs_diff(expected.probs), 0.0f)
        << "threads=" << threads;
    EXPECT_EQ(accelerator.last_functional_compute_cycles(), expected_cycles)
        << "threads=" << threads;
  }

  // Without IC the parallel path recomputes everything per sample and must
  // still land on the same distribution bit-for-bit.
  core::Accelerator without_ic(*fx.qnet, small_config(8, /*use_ic=*/false));
  const auto no_ic = without_ic.predict(batch.images, 2, 12);
  EXPECT_EQ(no_ic.probs.max_abs_diff(expected.probs), 0.0f);
}

TEST(ParallelAccelerator, SamplerSeedSelectsTheStreamFamily) {
  auto& fx = accel_fixture();
  const data::Batch batch = fx.dataset->batch(0, 1);

  core::AcceleratorConfig config_a = small_config(4);
  core::AcceleratorConfig config_b = small_config(4);
  config_b.sampler_seed = 999;
  core::Accelerator a(*fx.qnet, config_a);
  core::Accelerator b(*fx.qnet, config_b);
  EXPECT_GT(a.predict(batch.images, 2, 8)
                .probs.max_abs_diff(b.predict(batch.images, 2, 8).probs),
            0.0f);

  // Distinct (image, sample) lanes get distinct seeds.
  EXPECT_NE(core::Accelerator::sample_stream_seed(1, 0, 0),
            core::Accelerator::sample_stream_seed(1, 0, 1));
  EXPECT_NE(core::Accelerator::sample_stream_seed(1, 0, 0),
            core::Accelerator::sample_stream_seed(1, 1, 0));
}

}  // namespace
}  // namespace bnn
