#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/summary.h"

namespace bnn::metrics {
namespace {

nn::Tensor one_hot_probs(const std::vector<int>& classes, int k, float confidence = 1.0f) {
  nn::Tensor probs({static_cast<int>(classes.size()), k});
  const float rest = (1.0f - confidence) / static_cast<float>(k - 1);
  for (int n = 0; n < probs.size(0); ++n)
    for (int j = 0; j < k; ++j)
      probs.v2(n, j) = j == classes[static_cast<std::size_t>(n)] ? confidence : rest;
  return probs;
}

TEST(Accuracy, CountsArgmaxHits) {
  nn::Tensor probs = one_hot_probs({0, 1, 2, 1}, 3, 0.9f);
  EXPECT_DOUBLE_EQ(accuracy(probs, {0, 1, 2, 1}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(probs, {0, 1, 0, 0}), 0.5);
  EXPECT_THROW(accuracy(probs, {0, 1}), std::invalid_argument);
}

TEST(ArgmaxRows, PicksLargest) {
  nn::Tensor probs = nn::Tensor::from_values({2, 3}, {0.2f, 0.5f, 0.3f, 0.7f, 0.1f, 0.2f});
  EXPECT_EQ(argmax_rows(probs), (std::vector<int>{1, 0}));
}

TEST(PredictiveEntropy, UniformIsLogK) {
  const int k = 10;
  nn::Tensor probs = nn::Tensor::full({5, k}, 1.0f / k);
  EXPECT_NEAR(average_predictive_entropy(probs), std::log(static_cast<double>(k)), 1e-6);
}

TEST(PredictiveEntropy, OneHotIsZero) {
  nn::Tensor probs = one_hot_probs({1, 3}, 5, 1.0f);
  EXPECT_NEAR(average_predictive_entropy(probs), 0.0, 1e-9);
}

TEST(PredictiveEntropy, MonotoneInSharpness) {
  nn::Tensor sharp = one_hot_probs({0, 1}, 4, 0.95f);
  nn::Tensor soft = one_hot_probs({0, 1}, 4, 0.55f);
  EXPECT_LT(average_predictive_entropy(sharp), average_predictive_entropy(soft));
}

TEST(Ece, PerfectlyConfidentAndCorrectIsZero) {
  nn::Tensor probs = one_hot_probs({0, 1, 2}, 3, 1.0f);
  EXPECT_NEAR(expected_calibration_error(probs, {0, 1, 2}), 0.0, 1e-9);
}

TEST(Ece, ConfidentButWrongIsLarge) {
  nn::Tensor probs = one_hot_probs({0, 0, 0, 0}, 3, 0.99f);
  // Accuracy 0, confidence 0.99 -> ECE ~= 0.99.
  EXPECT_NEAR(expected_calibration_error(probs, {1, 1, 1, 1}), 0.99, 1e-6);
}

TEST(Ece, CalibratedPredictionsScoreLow) {
  // 70%-confident predictions correct exactly 70% of the time.
  const int n = 1000;
  nn::Tensor probs({n, 2});
  std::vector<int> labels(static_cast<std::size_t>(n));
  util::Rng rng(5);
  for (int i = 0; i < n; ++i) {
    probs.v2(i, 0) = 0.7f;
    probs.v2(i, 1) = 0.3f;
    labels[static_cast<std::size_t>(i)] = rng.bernoulli(0.7) ? 0 : 1;
  }
  EXPECT_LT(expected_calibration_error(probs, labels), 0.05);
}

TEST(Ece, MatchesHandComputedBins) {
  // Two samples in bin (0.5,0.6]: conf .55/.55, one right one wrong.
  nn::Tensor probs = nn::Tensor::from_values({2, 2}, {0.55f, 0.45f, 0.55f, 0.45f});
  const double ece = expected_calibration_error(probs, {0, 1}, 10);
  EXPECT_NEAR(ece, std::fabs(0.5 - 0.55), 1e-6);
}

TEST(ReliabilityDiagram, BinBookkeeping) {
  nn::Tensor probs = nn::Tensor::from_values({3, 2}, {0.95f, 0.05f, 0.62f, 0.38f, 0.58f, 0.42f});
  const auto bins = reliability_diagram(probs, {0, 0, 1}, 10);
  ASSERT_EQ(bins.size(), 10u);
  EXPECT_EQ(bins[9].count, 1);  // 0.95
  EXPECT_EQ(bins[6].count, 1);  // 0.62
  EXPECT_EQ(bins[5].count, 1);  // 0.58 (prediction 0, label 1 -> wrong)
  EXPECT_DOUBLE_EQ(bins[5].accuracy, 0.0);
  EXPECT_DOUBLE_EQ(bins[9].accuracy, 1.0);
}

TEST(ConfidenceHistogram, NormalizedAndLocalized) {
  nn::Tensor probs = one_hot_probs({0, 1, 0, 1}, 2, 0.98f);
  const auto histogram = confidence_histogram(probs, 10);
  double total = 0.0;
  for (double v : histogram) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // All mass in the top bin (confidence 0.98 with K=2 spans [0.5, 1]).
  EXPECT_NEAR(histogram.back(), 1.0, 1e-9);
}

TEST(MeanConfidence, Averages) {
  nn::Tensor probs = nn::Tensor::from_values({2, 2}, {0.9f, 0.1f, 0.6f, 0.4f});
  EXPECT_NEAR(mean_confidence(probs), 0.75, 1e-6);
}

TEST(MeanStdAccumulator, WelfordMatchesDefinition) {
  util::MeanStd acc;
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : values) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_NEAR(acc.mean(), 5.0, 1e-12);
  // Sample std of the classic dataset is sqrt(32/7).
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MeanStdAccumulator, SingleSampleHasZeroStd) {
  util::MeanStd acc;
  acc.add(3.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

}  // namespace
}  // namespace bnn::metrics
