#include "core/dse.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/models.h"

namespace bnn::core {
namespace {

nn::NetworkDesc lenet_desc() {
  util::Rng rng(1);
  nn::Model model = nn::make_lenet5(rng);
  return model.describe();
}

// Deterministic synthetic metrics with the qualitative shapes the paper
// reports: accuracy rises with S and peaks at moderate L; aPE rises with
// both L and S; ECE is best at moderate L with enough samples.
class FakeMetrics final : public MetricsProvider {
 public:
  MetricPoint evaluate(int bayes_layers, int num_samples) override {
    MetricPoint point;
    const double l = bayes_layers;
    const double s_gain = 1.0 - std::exp(-num_samples / 10.0);
    point.accuracy = 0.90 + 0.05 * s_gain - 0.01 * std::fabs(l - 2.0);
    point.ape = 0.2 + 0.2 * l + 0.3 * s_gain;
    point.ece = 0.05 - 0.015 * s_gain + 0.01 * std::fabs(l - 3.0);
    return point;
  }
};

DseOptions base_options() {
  DseOptions options;
  options.device = arria10_sx660();
  return options;
}

TEST(Dse, CandidateGridIsFullCrossProduct) {
  const nn::NetworkDesc desc = lenet_desc();
  FakeMetrics metrics;
  DseOptions options = base_options();
  const DseResult result = run_dse(desc, metrics, options);
  // LeNet-5 has 4 sites -> L grid {1,2,3,4}; S grid has 11 entries.
  EXPECT_EQ(result.candidates.size(), 4u * 11u);
  EXPECT_GE(result.best_index, 0);
}

TEST(Dse, OptLatencyPicksCheapestPoint) {
  const nn::NetworkDesc desc = lenet_desc();
  FakeMetrics metrics;
  DseOptions options = base_options();
  options.mode = OptMode::latency;
  const DseResult result = run_dse(desc, metrics, options);
  const Candidate& best = result.best();
  for (const Candidate& candidate : result.candidates)
    EXPECT_GE(candidate.latency_ms, best.latency_ms);
  // Cheapest point of the paper's grids: L=1, S=3.
  EXPECT_EQ(best.bayes_layers, 1);
  EXPECT_EQ(best.num_samples, 3);
}

TEST(Dse, OptUncertaintyPicksFullBnnManySamples) {
  const nn::NetworkDesc desc = lenet_desc();
  FakeMetrics metrics;
  DseOptions options = base_options();
  options.mode = OptMode::uncertainty;
  const DseResult result = run_dse(desc, metrics, options);
  // aPE grows with L and S in the fake model -> L=N, S=100.
  EXPECT_EQ(result.best().bayes_layers, 4);
  EXPECT_EQ(result.best().num_samples, 100);
}

TEST(Dse, OptAccuracyAndConfidenceFollowTheirObjectives) {
  const nn::NetworkDesc desc = lenet_desc();
  FakeMetrics metrics;
  DseOptions options = base_options();

  options.mode = OptMode::accuracy;
  const DseResult acc = run_dse(desc, metrics, options);
  for (const Candidate& candidate : acc.candidates)
    EXPECT_LE(candidate.metrics.accuracy, acc.best().metrics.accuracy + 1e-12);

  options.mode = OptMode::confidence;
  const DseResult ece = run_dse(desc, metrics, options);
  for (const Candidate& candidate : ece.candidates)
    EXPECT_GE(candidate.metrics.ece, ece.best().metrics.ece - 1e-12);
}

TEST(Dse, RequirementsFilterCandidates) {
  const nn::NetworkDesc desc = lenet_desc();
  FakeMetrics metrics;
  DseOptions options = base_options();
  options.mode = OptMode::confidence;
  options.requirements.max_latency_ms = 1.0;
  options.requirements.min_accuracy = 0.9;
  const DseResult result = run_dse(desc, metrics, options);
  const Candidate& best = result.best();
  EXPECT_LE(best.latency_ms, 1.0);
  EXPECT_GE(best.metrics.accuracy, 0.9);
  // Everything feasible satisfies the constraints; infeasible points exist.
  bool saw_infeasible = false;
  for (const Candidate& candidate : result.candidates) {
    if (candidate.feasible) {
      EXPECT_LE(candidate.latency_ms, 1.0);
      EXPECT_GE(candidate.metrics.accuracy, 0.9);
    } else {
      saw_infeasible = true;
    }
  }
  EXPECT_TRUE(saw_infeasible);
}

TEST(Dse, ImpossibleRequirementsYieldNoBest) {
  const nn::NetworkDesc desc = lenet_desc();
  FakeMetrics metrics;
  DseOptions options = base_options();
  options.requirements.min_accuracy = 1.5;  // unattainable
  const DseResult result = run_dse(desc, metrics, options);
  EXPECT_EQ(result.best_index, -1);
  EXPECT_THROW(result.best(), std::invalid_argument);
}

TEST(Dse, CustomGridsRespected) {
  const nn::NetworkDesc desc = lenet_desc();
  FakeMetrics metrics;
  DseOptions options = base_options();
  options.bayes_grid = {2};
  options.sample_grid = {5, 10};
  const DseResult result = run_dse(desc, metrics, options);
  ASSERT_EQ(result.candidates.size(), 2u);
  EXPECT_EQ(result.candidates[0].bayes_layers, 2);
  EXPECT_EQ(result.candidates[0].num_samples, 5);
  EXPECT_EQ(result.candidates[1].num_samples, 10);
}

TEST(Dse, HardwareStageReportsResources) {
  const nn::NetworkDesc desc = lenet_desc();
  FakeMetrics metrics;
  DseOptions options = base_options();
  const DseResult result = run_dse(desc, metrics, options);
  EXPECT_EQ(result.hardware.macs_per_cycle(), 4096);
  EXPECT_TRUE(fits(result.resources, options.device));
}

TEST(Dse, CandidateBetterComparesPerMode) {
  Candidate a;
  a.latency_ms = 1.0;
  a.metrics = {0.95, 1.2, 0.02};
  Candidate b;
  b.latency_ms = 2.0;
  b.metrics = {0.90, 1.5, 0.05};
  EXPECT_TRUE(candidate_better(a, b, OptMode::latency));
  EXPECT_TRUE(candidate_better(a, b, OptMode::accuracy));
  EXPECT_FALSE(candidate_better(a, b, OptMode::uncertainty));
  EXPECT_TRUE(candidate_better(a, b, OptMode::confidence));
}

TEST(Dse, ModeNames) {
  EXPECT_EQ(opt_mode_name(OptMode::latency), "Opt-Latency");
  EXPECT_EQ(opt_mode_name(OptMode::accuracy), "Opt-Accuracy");
  EXPECT_EQ(opt_mode_name(OptMode::uncertainty), "Opt-Uncertainty");
  EXPECT_EQ(opt_mode_name(OptMode::confidence), "Opt-Confidence");
}

}  // namespace
}  // namespace bnn::core
