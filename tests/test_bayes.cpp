#include "bayes/predictive.h"

#include <gtest/gtest.h>

#include "data/synth.h"
#include "metrics/metrics.h"
#include "nn/activations.h"

namespace bnn::bayes {
namespace {

TEST(PaperGrids, SampleGridMatchesPaper) {
  const auto& grid = paper_sample_grid();
  EXPECT_EQ(grid, (std::vector<int>{3, 4, 5, 6, 7, 8, 9, 10, 20, 50, 100}));
}

TEST(PaperGrids, BayesGridResolvesFractions) {
  // N=9 (VGG-11 / ResNet-18 sites): {1, 3, 5 (round 4.5), 6, 9}.
  EXPECT_EQ(paper_bayes_grid(9), (std::vector<int>{1, 3, 5, 6, 9}));
  // N=4 (LeNet-5 sites): thirds/halves collapse -> {1, 2, 3, 4}.
  EXPECT_EQ(paper_bayes_grid(4), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(paper_bayes_grid(1), (std::vector<int>{1}));
}

TEST(McPredict, RowsAreProbabilityDistributions) {
  util::Rng rng(1);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  model.set_bayesian_last(2);
  nn::Tensor x = nn::Tensor::randn({4, 1, 12, 12}, rng);
  PredictiveOptions options;
  options.num_samples = 5;
  nn::Tensor probs = mc_predict(model, x, options);
  ASSERT_EQ(probs.shape(), (std::vector<int>{4, 10}));
  for (int n = 0; n < 4; ++n) {
    float row = 0.0f;
    for (int k = 0; k < 10; ++k) {
      row += probs.v2(n, k);
      EXPECT_GE(probs.v2(n, k), 0.0f);
    }
    EXPECT_NEAR(row, 1.0f, 1e-5f);
  }
}

TEST(McPredict, DeterministicModelIgnoresSampleCount) {
  util::Rng rng(2);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  model.set_bayesian_last(0);
  nn::Tensor x = nn::Tensor::randn({2, 1, 12, 12}, rng);
  PredictiveOptions one;
  one.num_samples = 1;
  PredictiveOptions many;
  many.num_samples = 20;
  nn::Tensor p1 = mc_predict(model, x, one);
  nn::Tensor p2 = mc_predict(model, x, many);
  EXPECT_EQ(p1.max_abs_diff(p2), 0.0f);
}

// The core intermediate-layer-caching equivalence claim: with identical mask
// streams, replaying only the Bayesian suffix gives bit-identical
// predictions to recomputing the whole network every sample.
TEST(McPredict, CachingIsExactlyEquivalentToFullRecompute) {
  util::Rng rng(3);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  nn::Tensor x = nn::Tensor::randn({3, 1, 12, 12}, rng);

  for (int bayes_layers : {1, 2, 3}) {
    model.set_bayesian_last(bayes_layers);
    PredictiveOptions with_ic;
    with_ic.num_samples = 7;
    with_ic.use_intermediate_caching = true;
    PredictiveOptions without_ic;
    without_ic.num_samples = 7;
    without_ic.use_intermediate_caching = false;

    model.reseed_sites(1234);
    nn::Tensor cached = mc_predict(model, x, with_ic);
    model.reseed_sites(1234);
    nn::Tensor recomputed = mc_predict(model, x, without_ic);
    EXPECT_EQ(cached.max_abs_diff(recomputed), 0.0f)
        << "IC must not change the predictive distribution (L=" << bayes_layers << ")";
  }
}

TEST(McPredict, MoreSamplesReduceVariance) {
  util::Rng rng(4);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  model.set_bayesian_last(model.num_sites());
  nn::Tensor x = nn::Tensor::randn({1, 1, 12, 12}, rng);

  auto spread = [&model, &x](int samples, std::uint64_t seed_base) {
    PredictiveOptions options;
    options.num_samples = samples;
    double max_diff = 0.0;
    model.reseed_sites(seed_base);
    nn::Tensor reference = mc_predict(model, x, options);
    for (int repeat = 1; repeat < 6; ++repeat) {
      model.reseed_sites(seed_base + static_cast<std::uint64_t>(repeat) * 1000);
      nn::Tensor probs = mc_predict(model, x, options);
      max_diff = std::max(max_diff, static_cast<double>(probs.max_abs_diff(reference)));
    }
    return max_diff;
  };

  const double few = spread(2, 10);
  const double many = spread(64, 20);
  EXPECT_LT(many, few);
}

TEST(McPredict, BayesianPredictionsAreSofterOnNoise) {
  // Untrained nets already show the effect qualitatively: MC averaging over
  // masks smooths the predictive distribution, raising entropy.
  util::Rng rng(5);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  nn::Tensor noise = nn::Tensor::randn({16, 1, 12, 12}, rng, 0.5f, 0.3f);

  model.set_bayesian_last(0);
  PredictiveOptions options;
  options.num_samples = 50;
  nn::Tensor point_probs = mc_predict(model, noise, options);

  model.set_bayesian_last(model.num_sites());
  model.reseed_sites(77);
  nn::Tensor bayes_probs = mc_predict(model, noise, options);

  EXPECT_GT(metrics::average_predictive_entropy(bayes_probs),
            metrics::average_predictive_entropy(point_probs));
}

TEST(McPredict, RejectsBadArguments) {
  util::Rng rng(6);
  nn::Model model = nn::make_tiny_cnn(rng, 10, 1, 12);
  nn::Tensor x = nn::Tensor::randn({1, 1, 12, 12}, rng);
  PredictiveOptions options;
  options.num_samples = 0;
  EXPECT_THROW(mc_predict(model, x, options), std::invalid_argument);
}

}  // namespace
}  // namespace bnn::bayes
