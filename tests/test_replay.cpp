// Record/replay (serve/replay.h) and the scenario generator:
//   - a mixed S/L escalation workload recorded at R=1/threads=1 replays
//     checksum-clean at R in {2,4} x threads in {2,8} under both dispatch
//     modes (and with original timing) — the fleet-level form of the
//     bit-identity invariant,
//   - mutating one recorded checksum makes the replayer report EXACTLY that
//     request,
//   - an adaptive-shedding recording carries downgrade/reject outcomes plus
//     the full admission trailer; the replayed AdmissionInputs decisions
//     match the recorded admission log outcome-for-outcome, and downgraded
//     records replay checksum-clean as never-escalating requests,
//   - the fingerprint/seed guard fails fast against the wrong weights,
//   - generate_scenario is deterministic and each kind has its documented
//     structure.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <string>
#include <vector>

#include "bench/serve_fixture.h"
#include "serve/replay.h"
#include "serve/scenario.h"
#include "serve/server.h"
#include "serve/trace.h"

namespace bnn {
namespace {

// Per-process path: ctest runs each TEST in its own process, and several of
// them record the same trace — a shared name would race under ctest -j.
std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + std::to_string(::getpid()) +
         "_" + name;
}

// Records `spec` through a traced server at the canonical recording
// configuration (R=1, threads=1) and returns the journal.
serve::Trace record_scenario(const bench::ServeFixture& fixture,
                             const serve::ScenarioSpec& spec, const char* name,
                             serve::ServerConfig config = {}) {
  const std::string path = temp_path(name);
  config.num_replicas = 1;
  config.num_threads = 1;
  config.trace_path = path;
  config.trace_workload_id = fixture.workload_id;
  {
    serve::Server server(core::Accelerator(fixture.qnet, bench::serve_accel_config()),
                         config);
    (void)serve::play_scenario(
        server, serve::generate_scenario(spec),
        [&fixture](const serve::ScenarioEvent& event) {
          return bench::fixture_image(fixture, event);
        },
        /*as_fast_as_possible=*/true);
  }  // shutdown finalizes the journal
  return serve::read_trace(path);
}

// The mixed S/L escalation workload of the acceptance criteria: two image
// shapes, 1-in-4 heavy direct {4S, all-L} requests, light requests routed
// with an always-escalate threshold.
serve::Trace record_mixed_escalation_trace() {
  serve::ScenarioSpec spec;
  spec.kind = serve::ScenarioKind::mixed_shapes;
  spec.num_requests = 12;
  spec.num_samples = 4;
  spec.screening_samples = 2;
  spec.routed = true;
  spec.entropy_threshold_nats = -1.0;  // every routed request escalates
  serve::ServerConfig config;
  config.max_batch = 4;
  return record_scenario(bench::shared_mlp49_fixture(), spec, "mixed_escalation.trace",
                         config);
}

const serve::Trace& mixed_escalation_trace() {
  static const serve::Trace trace = record_mixed_escalation_trace();
  return trace;
}

core::Accelerator replay_accelerator(const bench::ServeFixture& fixture) {
  return core::Accelerator(fixture.qnet, bench::serve_accel_config());
}

// --- the acceptance matrix ---------------------------------------------------

TEST(Replay, RecordedTraceCarriesTheMixedEscalationWorkload) {
  const serve::Trace& trace = mixed_escalation_trace();
  ASSERT_EQ(trace.records.size(), 12u);
  int escalated = 0, heavy = 0;
  for (const serve::TraceRecord& record : trace.records) {
    EXPECT_EQ(record.outcome, serve::TraceOutcome::served);
    EXPECT_NE(record.checksum, 0u);
    if (record.escalated) ++escalated;
    if (!record.options.use_uncertainty_router) {
      ++heavy;
      EXPECT_EQ(record.options.num_samples, 16);  // 4x S
      EXPECT_EQ(record.options.bayes_layers, -1);
    }
  }
  EXPECT_EQ(heavy, 3);            // 1-in-4 of 12
  EXPECT_EQ(escalated, 12 - 3);   // every routed light escalated
  EXPECT_NE(trace.meta.network_fingerprint, 0u);
  EXPECT_EQ(trace.meta.workload_id, bench::kWorkloadMlp49);
}

TEST(Replay, ChecksumCleanAcrossReplicasThreadsAndDispatchModes) {
  const serve::Trace& trace = mixed_escalation_trace();
  const core::Accelerator accelerator = replay_accelerator(bench::shared_mlp49_fixture());
  struct Cell {
    int replicas, threads;
    serve::DispatchMode mode;
  };
  const Cell cells[] = {
      {2, 2, serve::DispatchMode::fifo},       {2, 8, serve::DispatchMode::cost_aware},
      {4, 2, serve::DispatchMode::cost_aware}, {4, 8, serve::DispatchMode::fifo},
  };
  for (const Cell& cell : cells) {
    serve::ReplayConfig config;
    config.num_replicas = cell.replicas;
    config.num_threads = cell.threads;
    config.dispatch_mode = cell.mode;
    const serve::ReplayReport report = serve::replay_trace(trace, accelerator, config);
    EXPECT_TRUE(report.ok()) << serve::replay_summary(report);
    EXPECT_EQ(report.replayed, trace.records.size());
    EXPECT_EQ(report.matched, trace.records.size());
    EXPECT_EQ(report.skipped, 0u);
  }
}

TEST(Replay, OriginalTimingModeReplaysClean) {
  const serve::Trace& trace = mixed_escalation_trace();
  serve::ReplayConfig config;
  config.num_replicas = 2;
  config.num_threads = 2;
  config.as_fast_as_possible = false;  // pace to the recorded arrival_us
  const serve::ReplayReport report = serve::replay_trace(
      trace, replay_accelerator(bench::shared_mlp49_fixture()), config);
  EXPECT_TRUE(report.ok()) << serve::replay_summary(report);
  EXPECT_EQ(report.matched, trace.records.size());
}

TEST(Replay, MutatedChecksumIsReportedAsExactlyThatRequest) {
  serve::Trace trace = mixed_escalation_trace();  // copy
  const std::size_t victim = trace.records.size() / 3;
  trace.records[victim].checksum ^= 0x1ull;
  const serve::ReplayReport report =
      serve::replay_trace(trace, replay_accelerator(bench::shared_mlp49_fixture()));
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.divergences.size(), 1u);
  EXPECT_EQ(report.divergences[0].seq, trace.records[victim].seq);
  EXPECT_EQ(report.divergences[0].stream_id, trace.records[victim].stream_id);
  EXPECT_EQ(report.divergences[0].expected, trace.records[victim].checksum);
  EXPECT_EQ(report.divergences[0].actual, trace.records[victim].checksum ^ 0x1ull);
  EXPECT_EQ(report.matched, trace.records.size() - 1);
  // The one-line summary names the failure for humans.
  EXPECT_NE(serve::replay_summary(report).find("divergent 1"), std::string::npos);
}

// --- fingerprint / seed guard ------------------------------------------------

TEST(Replay, WrongWeightsOrSeedFailFastUnlessDisabled) {
  serve::Trace trace = mixed_escalation_trace();
  const bench::ServeFixture& fixture = bench::shared_mlp49_fixture();

  serve::Trace wrong_weights = trace;
  wrong_weights.meta.network_fingerprint ^= 0xabcdull;
  EXPECT_THROW((void)serve::replay_trace(wrong_weights, replay_accelerator(fixture)),
               std::runtime_error);

  serve::Trace wrong_seed = trace;
  wrong_seed.meta.sampler_seed += 1;
  EXPECT_THROW((void)serve::replay_trace(wrong_seed, replay_accelerator(fixture)),
               std::runtime_error);

  // verify_fingerprint=false replays anyway; an accelerator REALLY built
  // with a different sampler seed then shows up the honest way — as
  // checksum divergences on every record (different mask streams).
  core::AcceleratorConfig off_seed_config = bench::serve_accel_config();
  off_seed_config.sampler_seed += 1;
  const core::Accelerator off_seed(fixture.qnet, off_seed_config);
  serve::ReplayConfig no_verify;
  no_verify.verify_fingerprint = false;
  const serve::ReplayReport report = serve::replay_trace(trace, off_seed, no_verify);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.divergences.size(), 0u);

  // A zero fingerprint (caller-supplied network, no recorded metadata)
  // skips the guard entirely.
  serve::Trace unverified = trace;
  unverified.meta.network_fingerprint = 0;
  EXPECT_TRUE(serve::replay_trace(unverified, replay_accelerator(fixture)).ok());
}

// --- escalation-reuse flag ---------------------------------------------------

TEST(Replay, ReuseScreeningSamplesFlagTravelsInTheHeaderAndReplaysClean) {
  serve::ScenarioSpec spec;
  spec.kind = serve::ScenarioKind::adversarial_escalate;
  spec.num_requests = 6;
  spec.num_samples = 4;
  spec.screening_samples = 2;
  serve::ServerConfig config;
  config.max_batch = 2;
  config.reuse_screening_samples = true;
  const serve::Trace trace =
      record_scenario(bench::shared_cnn12_fixture(), spec, "reuse.trace", config);
  EXPECT_TRUE(trace.meta.reuse_screening_samples);
  ASSERT_EQ(trace.records.size(), 6u);
  for (const serve::TraceRecord& record : trace.records)
    EXPECT_TRUE(record.escalated);  // adversarial: everything escalates

  serve::ReplayConfig replay_config;
  replay_config.num_replicas = 2;
  replay_config.num_threads = 2;
  const serve::ReplayReport report = serve::replay_trace(
      trace, replay_accelerator(bench::shared_cnn12_fixture()), replay_config);
  EXPECT_TRUE(report.ok()) << serve::replay_summary(report);
  EXPECT_EQ(report.matched, 6u);
}

// --- adaptive shedding traces ------------------------------------------------

// Mirrors the deterministic overload fixture of test_serve_cost: a
// microscopic latency target makes every post-warm admission take the
// shedding path, so the trace must carry one served, one downgraded, and
// one rejected record plus the complete admission trailer.
TEST(Replay, AdaptiveSheddingTraceReplaysDecisionsOutcomeForOutcome) {
  const bench::ServeFixture& fixture = bench::shared_cnn12_fixture();
  const std::string path = temp_path("shed.trace");

  serve::ServerConfig config;
  config.max_batch = 1;
  config.num_threads = 1;
  config.num_replicas = 1;
  config.overload_policy = serve::OverloadPolicy::adaptive;
  config.latency_target_ms = 1e-9;  // always "overloaded" once warm
  config.calibrate_cost_model = false;
  config.admission_log_capacity = 2;  // ring smaller than the trailer
  config.trace_path = path;
  config.trace_workload_id = fixture.workload_id;

  std::vector<serve::AdmissionRecord> live_log;
  {
    serve::Server server(core::Accelerator(fixture.qnet, bench::serve_accel_config()),
                         config);
    const auto request_for = [&](int n, serve::RequestOptions options,
                                 std::uint64_t stream_id) {
      serve::Request request;
      request.image = fixture.dataset.images().batch_row(n);
      request.options = options;
      request.stream_id = stream_id;
      return request;
    };
    serve::RequestOptions warm;
    warm.num_samples = 2;
    warm.bayes_layers = 1;
    EXPECT_FALSE(server.infer(request_for(0, warm, 100)).shed_downgraded);

    serve::RequestOptions routed;
    routed.num_samples = 10;
    routed.bayes_layers = 2;
    routed.use_uncertainty_router = true;
    routed.screening_samples = 2;
    routed.entropy_threshold_nats = -1.0;
    EXPECT_TRUE(server.infer(request_for(1, routed, 101)).shed_downgraded);

    serve::RequestOptions costly;
    costly.num_samples = 10;
    costly.bayes_layers = 2;
    EXPECT_THROW(server.submit(request_for(2, costly, 102)).get(),
                 serve::QueueFullError);
    live_log = server.admission_log();
  }

  const serve::Trace trace = serve::read_trace(path);
  ASSERT_EQ(trace.records.size(), 3u);
  EXPECT_EQ(trace.records[0].outcome, serve::TraceOutcome::served);
  EXPECT_EQ(trace.records[1].outcome, serve::TraceOutcome::downgraded);
  EXPECT_EQ(trace.records[2].outcome, serve::TraceOutcome::rejected);
  EXPECT_EQ(trace.records[2].checksum, 0u);  // no response to hash
  EXPECT_EQ(trace.records[1].stream_id, 101u);
  EXPECT_EQ(trace.records[2].stream_id, 102u);

  // The trailer keeps EVERY decision even though the in-memory ring
  // (capacity 2) only kept the newest two.
  ASSERT_EQ(trace.admission.size(), 3u);
  EXPECT_EQ(live_log.size(), 2u);
  EXPECT_EQ(trace.admission[0].action, serve::AdmissionAction::admit);
  EXPECT_EQ(trace.admission[1].action, serve::AdmissionAction::downgrade);
  EXPECT_EQ(trace.admission[2].action, serve::AdmissionAction::reject);
  // The ring's survivors are the trailer's tail, field for field.
  for (std::size_t i = 0; i < live_log.size(); ++i) {
    const serve::AdmissionRecord& ring = live_log[i];
    const serve::AdmissionRecord& trail = trace.admission[1 + i];
    EXPECT_EQ(ring.submit_seq, trail.submit_seq);
    EXPECT_EQ(ring.action, trail.action);
    EXPECT_DOUBLE_EQ(ring.inputs.p99_ms, trail.inputs.p99_ms);
    EXPECT_DOUBLE_EQ(ring.inputs.request_ms, trail.inputs.request_ms);
  }
  // Replaying the recorded AdmissionInputs through the pure rule reproduces
  // every recorded decision — outcome for outcome.
  for (const serve::AdmissionRecord& record : trace.admission)
    EXPECT_EQ(serve::adaptive_admission(record.inputs), record.action);

  // And the full replay: served + downgraded re-serve checksum-clean (the
  // downgrade transform), the rejected record is skipped, the admission
  // trailer re-derives clean.
  serve::ReplayConfig replay_config;
  replay_config.num_replicas = 2;
  replay_config.num_threads = 2;
  const serve::ReplayReport report =
      serve::replay_trace(trace, replay_accelerator(fixture), replay_config);
  EXPECT_TRUE(report.ok()) << serve::replay_summary(report);
  EXPECT_EQ(report.replayed, 2u);
  EXPECT_EQ(report.matched, 2u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.admission_records, 3u);
  EXPECT_EQ(report.admission_mismatches, 0u);

  // A tampered admission record is a mismatch, not a silent pass.
  serve::Trace tampered = trace;
  tampered.admission[2].action = serve::AdmissionAction::admit;
  const serve::ReplayReport bad =
      serve::replay_trace(tampered, replay_accelerator(fixture), replay_config);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.admission_mismatches, 1u);
}

// --- the scenario generator --------------------------------------------------

TEST(Scenario, GenerationIsDeterministicAndValidated) {
  serve::ScenarioSpec spec;
  spec.kind = serve::ScenarioKind::diurnal;
  spec.num_requests = 16;
  spec.arrival_gap_ms = 0.5;
  const auto a = serve::generate_scenario(spec);
  const auto b = serve::generate_scenario(spec);
  ASSERT_EQ(a.size(), 16u);
  ASSERT_EQ(b.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].stream_id, i);
    EXPECT_EQ(a[i].image_index, static_cast<int>(i));
  }
  // Arrival offsets never run backwards, whatever the load curve does.
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_GE(a[i].arrival_ms, a[i - 1].arrival_ms);

  spec.num_requests = 0;
  EXPECT_THROW((void)serve::generate_scenario(spec), std::invalid_argument);
  spec.num_requests = 16;
  spec.diurnal_amplitude = 1.0;
  EXPECT_THROW((void)serve::generate_scenario(spec), std::invalid_argument);
}

TEST(Scenario, KindsHaveTheirDocumentedStructure) {
  serve::ScenarioSpec spec;
  spec.num_requests = 16;
  spec.num_samples = 4;

  spec.kind = serve::ScenarioKind::mixed_shapes;
  const auto mixed = serve::generate_scenario(spec);
  int heavy = 0;
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    EXPECT_EQ(mixed[i].shape_variant, static_cast<int>(i % 2));
    if (!mixed[i].options.use_uncertainty_router &&
        mixed[i].options.num_samples == 16) {
      ++heavy;
      EXPECT_EQ(mixed[i].options.bayes_layers, -1);
    }
  }
  EXPECT_EQ(heavy, 4);  // 1-in-4

  spec.kind = serve::ScenarioKind::adversarial_escalate;
  for (const auto& event : serve::generate_scenario(spec)) {
    EXPECT_TRUE(event.options.use_uncertainty_router);
    EXPECT_LT(event.options.entropy_threshold_nats, 0.0);  // always escalate
    EXPECT_EQ(event.options.bayes_layers, -1);
  }

  spec.kind = serve::ScenarioKind::two_phase_overload;
  spec.warm_requests = -1;  // default split: num_requests / 4
  const auto overload = serve::generate_scenario(spec);
  for (std::size_t i = 0; i < overload.size(); ++i)
    EXPECT_EQ(overload[i].closed_loop_warm, i < 4) << i;

  spec.kind = serve::ScenarioKind::burst;
  spec.burst_size = 4;
  spec.burst_quiet_ms = 2.0;
  const auto burst = serve::generate_scenario(spec);
  // Within a burst arrivals coincide; bursts are separated by the quiet gap.
  EXPECT_EQ(burst[1].arrival_ms, burst[0].arrival_ms);
  EXPECT_GE(burst[4].arrival_ms, burst[3].arrival_ms + 2.0);

  EXPECT_THROW((void)serve::scenario_kind_from_name("no_such_kind"),
               std::invalid_argument);
  EXPECT_EQ(std::string("burst"),
            serve::scenario_kind_name(serve::scenario_kind_from_name("burst")));
  EXPECT_EQ(serve::all_scenario_kinds().size(), 6u);
}

// --- multi-model traces ------------------------------------------------------

// Records a 3-tenant round-robin wave through a registry-backed server and
// returns the journal (v2, 3-entry model table).
const serve::Trace& multi_model_trace() {
  static const serve::Trace trace = [] {
    const std::string path = temp_path("multi_model.trace");
    const bench::MultiTenantFixture multi = bench::make_multi_tenant_fixture(3);
    serve::ScenarioSpec spec;
    spec.num_requests = 12;
    spec.num_samples = 4;
    spec.num_models = 3;
    serve::ServerConfig config;
    config.max_batch = 2;
    config.default_model = multi.names.front();
    config.trace_path = path;
    {
      serve::Server server(multi.registry, bench::serve_accel_config(), config);
      (void)serve::play_scenario(
          server, serve::generate_scenario(spec), multi.names,
          [&multi](const serve::ScenarioEvent& event) {
            return bench::multi_fixture_image(multi, event);
          },
          /*as_fast_as_possible=*/true);
    }
    return serve::read_trace(path);
  }();
  return trace;
}

TEST(Replay, MultiModelTraceReplaysThroughARebuiltRegistry) {
  const serve::Trace& trace = multi_model_trace();
  ASSERT_EQ(trace.meta.models.size(), 3u);
  for (const serve::TraceRecord& record : trace.records)
    EXPECT_EQ(record.model_key, record.seq % 3);

  // The single-model overload refuses a multi-model trace outright.
  const bench::ServeFixture cnn = bench::make_cnn12_fixture();
  EXPECT_THROW((void)serve::replay_trace(trace, replay_accelerator(cnn), {}),
               std::invalid_argument);

  // Registry replay: rebuild every tenant from its model-table workload id
  // (exactly what tools/trace_replay does) and re-serve under a scaled-up
  // configuration. Checksum-clean, per the core invariant.
  auto registry = std::make_shared<serve::ModelRegistry>();
  for (const serve::TraceModelInfo& info : trace.meta.models) {
    bench::ServeFixture fixture = bench::make_workload_fixture(info.workload_id);
    serve::ModelConfig model_config;
    model_config.workload_id = fixture.workload_id;
    registry->publish(info.name, std::move(fixture.qnet), model_config);
  }
  serve::ReplayConfig replay_config;
  replay_config.num_replicas = 2;
  replay_config.num_threads = 2;
  const serve::ReplayReport report =
      serve::replay_trace(trace, registry, bench::serve_accel_config(), replay_config);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.replayed, 12u);
  EXPECT_EQ(report.matched, 12u);

  // Per-model fingerprint guard: hot-swap one tenant and the replay fails
  // fast, naming it — unless verification is disabled.
  bench::ServeFixture other = bench::make_cnn12b_fixture();
  registry->publish(trace.meta.models.front().name, std::move(other.qnet), {});
  EXPECT_THROW((void)serve::replay_trace(trace, registry,
                                         bench::serve_accel_config(), replay_config),
               std::runtime_error);

  // A trace spanning a hot-swap (two versions of one key in the table) is
  // not replayable against a single registry state.
  serve::Trace swapped = trace;
  serve::TraceModelInfo second = swapped.meta.models.front();
  second.model_version = 2;
  swapped.meta.models.push_back(second);
  EXPECT_THROW((void)serve::replay_trace(swapped, registry,
                                         bench::serve_accel_config(), replay_config),
               std::invalid_argument);
}

// --- trace diffing -----------------------------------------------------------

TEST(Replay, DiffTracesNamesTheFirstDivergentRecord) {
  const serve::Trace& trace = mixed_escalation_trace();

  serve::TraceDiff same = serve::diff_traces(trace, trace);
  EXPECT_TRUE(same.identical());
  EXPECT_EQ(same.compared, trace.records.size());
  EXPECT_EQ(same.equal, trace.records.size());
  EXPECT_NE(serve::diff_summary(same).find("identical"), std::string::npos);

  // One flipped checksum: exactly that seq, labelled as a checksum diff.
  serve::Trace mutated = trace;
  mutated.records[5].checksum ^= 1;
  serve::TraceDiff diff = serve::diff_traces(trace, mutated);
  EXPECT_FALSE(diff.identical());
  EXPECT_EQ(diff.equal, trace.records.size() - 1);
  EXPECT_EQ(diff.first_divergent_seq, trace.records[5].seq);
  EXPECT_EQ(diff.first_divergence, "checksum");
  EXPECT_NE(serve::diff_summary(diff).find("first divergence"), std::string::npos);

  // A truncated trace counts trailing extras on the longer side.
  serve::Trace shorter = trace;
  shorter.records.pop_back();
  diff = serve::diff_traces(trace, shorter);
  EXPECT_FALSE(diff.identical());
  EXPECT_EQ(diff.extra_a, 1u);
  EXPECT_EQ(diff.extra_b, 0u);
  EXPECT_EQ(diff.first_divergence, "record count");

  // Metadata divergence (different sampler seed) fails even when every
  // record pair happens to agree.
  serve::Trace reseeded = trace;
  reseeded.meta.sampler_seed += 1;
  diff = serve::diff_traces(trace, reseeded);
  EXPECT_FALSE(diff.meta_matches);
  EXPECT_FALSE(diff.identical());
}

}  // namespace
}  // namespace bnn
