#include "core/resource_model.h"

#include <gtest/gtest.h>

#include "core/dse.h"
#include "nn/models.h"

namespace bnn::core {
namespace {

nn::NetworkDesc lenet_desc() {
  util::Rng rng(1);
  nn::Model model = nn::make_lenet5(rng);
  return model.describe();
}

TEST(Devices, Arria10Totals) {
  const FpgaDevice device = arria10_sx660();
  EXPECT_EQ(device.alms, 427200);
  EXPECT_EQ(device.registers, 1708800);
  EXPECT_EQ(device.dsps, 1518);
  EXPECT_EQ(device.m20k_blocks, 2713);
}

TEST(Resources, PaperDspFormula) {
  // DSP = PC*PF*PV/2 (two 8-bit multipliers per DSP).
  const nn::NetworkDesc desc = lenet_desc();
  for (int pc : {8, 16, 32}) {
    for (int pf : {8, 16}) {
      NneConfig config;
      config.pc = pc;
      config.pf = pf;
      config.pv = 1;
      const ResourceUsage usage =
          estimate_resources(config, desc, arria10_sx660(), 16, 2);
      EXPECT_EQ(usage.multipliers, static_cast<std::int64_t>(pc) * pf);
      EXPECT_EQ(usage.dsps_required, pc * pf / 2);
      EXPECT_EQ(usage.dsps_used, pc * pf / 2);  // small configs fit entirely
      EXPECT_EQ(usage.soft_multipliers, 0);
    }
  }
}

TEST(Resources, FifoMemoryFormula) {
  // MEM_fifo = D * PF * DW.
  const nn::NetworkDesc desc = lenet_desc();
  NneConfig config;
  config.pc = 8;
  config.pf = 32;
  config.pv = 1;
  const ResourceUsage a = estimate_resources(config, desc, arria10_sx660(), 16, 2);
  const ResourceUsage b = estimate_resources(config, desc, arria10_sx660(), 32, 2);
  EXPECT_EQ(a.mem_bits_fifo, 16 * 32 * 8);
  EXPECT_EQ(b.mem_bits_fifo - a.mem_bits_fifo, 16 * 32 * 8);
}

TEST(Resources, InputAndWeightBuffersTrackWorkload) {
  // MEM_in = max(Ci*Hi*Wi)*DW; MEM_weight = max(Ci*Ki*Ki)*PF*DW.
  const nn::NetworkDesc desc = lenet_desc();
  NneConfig config;
  config.pc = 8;
  config.pf = 16;
  config.pv = 1;
  const ResourceUsage usage = estimate_resources(config, desc, arria10_sx660(), 16, 2);
  const MappingCalibration cal;
  EXPECT_EQ(usage.mem_bits_input,
            static_cast<std::int64_t>(desc.max_input_elems() * 8 * cal.buffer_replication));
  EXPECT_EQ(usage.mem_bits_weight,
            static_cast<std::int64_t>(desc.max_filter_weight_elems() * 16 * 8 *
                                      cal.buffer_replication));
}

TEST(Resources, PaperConfigurationLandsNearTableTwo) {
  // PC=PF=64, PV=1 on the Arria 10: Table II reports 1473/1518 DSPs (97%),
  // 71% ALMs, 52% registers, 86% M20K. The mapping model should land in
  // that neighbourhood (DSP overflow spilling to ALM logic).
  const nn::NetworkDesc desc = nn::describe_resnet101();
  NneConfig config;
  config.pc = 64;
  config.pf = 64;
  config.pv = 1;
  const FpgaDevice device = arria10_sx660();
  const ResourceUsage usage = estimate_resources(config, desc, device, 16, 2);

  EXPECT_EQ(usage.dsps_required, 2048);
  EXPECT_GT(usage.dsps_used, 1400);
  EXPECT_LE(usage.dsps_used, device.dsps);
  EXPECT_GT(usage.soft_multipliers, 0);

  const double alm_util = static_cast<double>(usage.alms_used) / device.alms;
  EXPECT_GT(alm_util, 0.55);
  EXPECT_LT(alm_util, 0.90);
  const double reg_util = static_cast<double>(usage.registers_used) / device.registers;
  EXPECT_GT(reg_util, 0.35);
  EXPECT_LT(reg_util, 0.70);
  const double m20k_util = static_cast<double>(usage.m20k_used) / device.m20k_blocks;
  EXPECT_GT(m20k_util, 0.4);
  EXPECT_LT(m20k_util, 1.0);
  EXPECT_TRUE(fits(usage, device));
}

TEST(Resources, OversizedConfigurationDoesNotFit) {
  const nn::NetworkDesc desc = lenet_desc();
  NneConfig config;
  config.pc = 128;
  config.pf = 128;
  config.pv = 16;
  const ResourceUsage usage = estimate_resources(config, desc, arria10_sx660(), 16, 2);
  EXPECT_FALSE(fits(usage, arria10_sx660()));
}

TEST(Resources, MonotoneInParallelism) {
  const nn::NetworkDesc desc = lenet_desc();
  NneConfig small;
  small.pc = 8;
  small.pf = 8;
  small.pv = 1;
  NneConfig large;
  large.pc = 64;
  large.pf = 64;
  large.pv = 1;
  const ResourceUsage a = estimate_resources(small, desc, arria10_sx660(), 16, 2);
  const ResourceUsage b = estimate_resources(large, desc, arria10_sx660(), 16, 2);
  EXPECT_LT(a.alms_used, b.alms_used);
  EXPECT_LT(a.dsps_used, b.dsps_used);
  EXPECT_LE(a.m20k_used, b.m20k_used);
}

TEST(Resources, RejectsBadArguments) {
  const nn::NetworkDesc desc = lenet_desc();
  NneConfig config;
  EXPECT_THROW(estimate_resources(config, desc, arria10_sx660(), 0, 2),
               std::invalid_argument);
  EXPECT_THROW(estimate_resources(config, desc, arria10_sx660(), 16, 0),
               std::invalid_argument);
}

TEST(HardwareOptimize, PicksMaximalFeasibleParallelism) {
  const nn::NetworkDesc desc = lenet_desc();
  const NneConfig best = optimize_hardware(desc, arria10_sx660(), 225.0, 16, 2);
  // 4096 multipliers is the largest product that still fits the SX660 once
  // the DSP overflow is priced in ALM logic (the paper's 64/64/1 point).
  EXPECT_EQ(best.macs_per_cycle(), 4096);
  const ResourceUsage usage = estimate_resources(best, desc, arria10_sx660(), 16, 2);
  EXPECT_TRUE(fits(usage, arria10_sx660()));
}

TEST(HardwareOptimize, SmallDeviceGetsSmallConfig) {
  const nn::NetworkDesc desc = lenet_desc();
  const NneConfig best = optimize_hardware(desc, zynq_xc7z020(), 200.0, 16, 2);
  EXPECT_LT(best.macs_per_cycle(), 4096);
  EXPECT_TRUE(fits(estimate_resources(best, desc, zynq_xc7z020(), 16, 2), zynq_xc7z020()));
}

}  // namespace
}  // namespace bnn::core
