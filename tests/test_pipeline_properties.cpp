// Cross-cutting property sweeps over the whole pipeline: dropout rate,
// Bayesian portion and sampler seed are varied together through training,
// quantization and the simulated accelerator — the invariants that must
// hold for EVERY configuration, not just the paper's p = 0.25 default.
#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "data/synth.h"
#include "metrics/metrics.h"
#include "nn/models.h"
#include "quant/qops.h"
#include "train/trainer.h"

namespace bnn {
namespace {

struct PipelineFixture {
  PipelineFixture() {
    util::Rng rng(61);
    model = std::make_unique<nn::Model>(nn::make_tiny_cnn(rng, 10, 1, 12));
    util::Rng data_rng(62);
    data::Dataset digits = data::make_synth_digits(160, data_rng);
    nn::Tensor small({digits.size(), 1, 12, 12});
    for (int n = 0; n < digits.size(); ++n)
      for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x)
          small.v4(n, 0, y, x) = digits.images().v4(n, 0, 2 + 2 * y, 2 + 2 * x);
    dataset = std::make_unique<data::Dataset>(std::move(small), digits.labels(), 10);
    model->set_bayesian_last(0);
    train::TrainConfig config;
    config.epochs = 2;
    config.batch_size = 16;
    train::fit(*model, *dataset, config);
  }
  std::unique_ptr<nn::Model> model;
  std::unique_ptr<data::Dataset> dataset;
};

PipelineFixture& fixture() {
  static PipelineFixture instance;
  return instance;
}

// The full stack must hold its invariants for every hardware-realizable
// dropout probability (p = 2^-k), not just the paper's 0.25.
class DropoutRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(DropoutRateSweep, AcceleratorMatchesReferenceAndIcIsExact) {
  const double p = GetParam();
  auto& fx = fixture();
  fx.model->set_dropout_p(p);
  quant::QuantNetwork qnet = quant::quantize_model(*fx.model, *fx.dataset);
  EXPECT_DOUBLE_EQ(qnet.dropout_p, p);

  core::AcceleratorConfig config;
  config.nne.pc = 16;
  config.nne.pf = 8;
  config.nne.pv = 1;
  config.sampler_seed = 99;

  const data::Batch batch = fx.dataset->batch(0, 2);
  core::Accelerator accelerator(qnet, config);
  const auto prediction = accelerator.predict(batch.images, 2, 6);

  const auto lanes = [p, &config](int image, int sample) -> std::unique_ptr<nn::MaskSource> {
    core::BernoulliSamplerConfig sampler_config;
    sampler_config.p = p;
    sampler_config.pf = config.nne.pf;
    sampler_config.seed = core::Accelerator::sample_stream_seed(99, image, sample);
    return std::make_unique<core::BernoulliSampler>(sampler_config);
  };
  const nn::Tensor expected = quant::ref_mc_predict(qnet, batch.images, 2, 6, lanes, true);
  EXPECT_EQ(prediction.probs.max_abs_diff(expected), 0.0f) << "p=" << p;

  // Probability rows stay normalized under every p.
  for (int n = 0; n < prediction.probs.size(0); ++n) {
    float sum = 0.0f;
    for (int k = 0; k < 10; ++k) sum += prediction.probs.v2(n, k);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  fx.model->set_dropout_p(0.25);  // restore for other tests
}

INSTANTIATE_TEST_SUITE_P(HardwareRealizableRates, DropoutRateSweep,
                         ::testing::Values(0.5, 0.25, 0.125));

// Entropy of the predictive distribution grows (weakly) with the Bayesian
// portion L — the mechanism behind the paper's Opt-Uncertainty mode.
TEST(PipelineProperties, EntropyGrowsWithBayesianPortion) {
  auto& fx = fixture();
  util::Rng noise_rng(63);
  const data::Dataset noise = data::make_gaussian_noise(24, *fx.dataset, noise_rng);
  quant::QuantNetwork qnet = quant::quantize_model(*fx.model, *fx.dataset);

  double previous = -1.0;
  int increases = 0;
  const std::vector<int> grid{0, 1, 3};
  for (int bayes_layers : grid) {
    nn::RngMaskSource masks(qnet.dropout_p, util::Rng(7));
    const nn::Tensor probs =
        quant::ref_mc_predict(qnet, noise.images(), bayes_layers, 16, masks, true);
    const double entropy = metrics::average_predictive_entropy(probs);
    if (entropy > previous) ++increases;
    previous = entropy;
  }
  // Strictly monotone is too strong for a tiny net; require the overall
  // trend: at least 2 of the 3 transitions increase and L=N beats L=0.
  EXPECT_GE(increases, 2);
}

// Degenerate calibration input must not crash quantization (all-zero
// images exercise the zero-range path in choose_activation_params).
TEST(PipelineProperties, QuantizationSurvivesDegenerateCalibration) {
  auto& fx = fixture();
  nn::Tensor zeros({8, 1, 12, 12});
  data::Dataset blank(std::move(zeros), std::vector<int>(8, 0), 10);
  const quant::QuantNetwork qnet = quant::quantize_model(*fx.model, blank);
  for (const quant::QLayer& layer : qnet.layers) {
    EXPECT_GT(layer.out.scale, 0.0f);
    EXPECT_GT(layer.in.scale, 0.0f);
  }
  const quant::QTensor image = quant::quantize_image(blank.images(), 0, qnet.input);
  const auto outputs = quant::ref_forward(qnet, image, 0, nullptr);
  EXPECT_EQ(outputs.back().numel(), 10);
}

// Different sampler seeds must change the Monte Carlo details but leave the
// averaged prediction close (the estimator is consistent).
TEST(PipelineProperties, SamplerSeedShiftsSamplesNotTheMean) {
  auto& fx = fixture();
  quant::QuantNetwork qnet = quant::quantize_model(*fx.model, *fx.dataset);
  const data::Batch batch = fx.dataset->batch(0, 2);

  core::AcceleratorConfig config_a;
  config_a.sampler_seed = 1;
  core::AcceleratorConfig config_b;
  config_b.sampler_seed = 2;
  core::Accelerator a(qnet, config_a);
  core::Accelerator b(qnet, config_b);
  const auto pa = a.predict(batch.images, 3, 64);
  const auto pb = b.predict(batch.images, 3, 64);
  EXPECT_GT(pa.probs.max_abs_diff(pb.probs), 0.0f);   // different samples
  EXPECT_LT(pa.probs.max_abs_diff(pb.probs), 0.35f);  // same distribution
}

// The analytic latency and the functional cycle count must agree for every
// parallelism configuration on a non-trivial stochastic run.
TEST(PipelineProperties, CycleAgreementAcrossParallelism) {
  auto& fx = fixture();
  quant::QuantNetwork qnet = quant::quantize_model(*fx.model, *fx.dataset);
  const data::Batch batch = fx.dataset->batch(0, 1);
  const nn::NetworkDesc desc = qnet.describe();

  for (int pc : {8, 64}) {
    for (int pv : {1, 8}) {
      core::AcceleratorConfig config;
      config.nne.pc = pc;
      config.nne.pf = 16;
      config.nne.pv = pv;
      core::Accelerator accelerator(qnet, config);
      const int samples = 3;
      const int bayes_layers = 1;
      (void)accelerator.predict(batch.images, bayes_layers, samples);

      const int cut = desc.cut_layer_for(bayes_layers);
      std::int64_t expected = 0;
      for (int l = 0; l < desc.num_layers(); ++l) {
        const std::int64_t cycles = core::estimate_layer_cycles(
            desc.layers[static_cast<std::size_t>(l)], config.nne);
        expected += l <= cut ? cycles : cycles * samples;
      }
      EXPECT_EQ(accelerator.last_functional_compute_cycles(), expected)
          << "pc=" << pc << " pv=" << pv;
    }
  }
}

}  // namespace
}  // namespace bnn
