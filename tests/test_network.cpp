#include "nn/network.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/elementwise.h"
#include "nn/linear.h"

namespace bnn::nn {
namespace {

std::unique_ptr<Linear> make_identity_linear(int features) {
  auto fc = std::make_unique<Linear>(features, features);
  for (int i = 0; i < features; ++i) fc->weight().value.at({i, i}) = 1.0f;
  return fc;
}

TEST(Network, ForwardRunsInTopologicalOrder) {
  Network net;
  auto fc1 = std::make_unique<Linear>(2, 2, /*has_bias=*/true);
  fc1->weight().value = Tensor::from_values({2, 2}, {1, 0, 0, 1});
  fc1->bias().value = Tensor::from_values({2}, {1, 1});
  const auto id1 = net.add(std::move(fc1), Network::input_id);
  net.add(std::make_unique<ReLU>(), id1);

  Tensor x = Tensor::from_values({1, 2}, {-5.0f, 3.0f});
  Tensor y = net.forward(x);
  EXPECT_FLOAT_EQ(y.v2(0, 0), 0.0f);  // -5 + 1 = -4 -> relu -> 0
  EXPECT_FLOAT_EQ(y.v2(0, 1), 4.0f);
}

TEST(Network, ResidualDagAddsBranches) {
  Network net;
  const auto branch = net.add(make_identity_linear(3), Network::input_id);
  net.add(std::make_unique<Add>(), branch, Network::input_id);

  Tensor x = Tensor::from_values({1, 3}, {1, 2, 3});
  Tensor y = net.forward(x);
  EXPECT_FLOAT_EQ(y.v2(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.v2(0, 2), 6.0f);
}

TEST(Network, RejectsUnknownInputNode) {
  Network net;
  EXPECT_THROW(net.add(std::make_unique<ReLU>(), 5), std::invalid_argument);
  EXPECT_THROW(net.add(nullptr, Network::input_id), std::invalid_argument);
}

TEST(Network, ReplayFromRecomputesSuffixOnly) {
  Network net;
  const auto fc1 = net.add(make_identity_linear(4), Network::input_id);
  auto drop = std::make_unique<McDropout>(0.5, /*seed=*/3);
  drop->set_active(true);
  const auto site = net.add(std::move(drop), fc1);
  net.add(make_identity_linear(4), site);

  Tensor x = Tensor::from_values({1, 4}, {1, 1, 1, 1});
  Tensor first = net.forward(x);
  // Replay from the dropout node: prefix output (fc1) is reused, the mask
  // is redrawn, so outputs vary over replays but remain in {0, 2}.
  bool saw_difference = false;
  for (int s = 0; s < 16; ++s) {
    Tensor y = net.replay_from(site);
    for (int f = 0; f < 4; ++f) {
      const float v = y.v2(0, f);
      EXPECT_TRUE(v == 0.0f || v == 2.0f) << v;
    }
    if (y.max_abs_diff(first) > 0.0f) saw_difference = true;
  }
  EXPECT_TRUE(saw_difference);
}

TEST(Network, ReplayRequiresPriorForward) {
  Network net;
  net.add(make_identity_linear(2), Network::input_id);
  EXPECT_THROW(net.replay_from(1), std::invalid_argument);
}

TEST(Network, MultiConsumerGradientsAccumulate) {
  // y = x + x (both Add operands are the input) => dy/dx = 2.
  Network net;
  net.add(std::make_unique<Add>(), Network::input_id, Network::input_id);
  net.set_training(true);
  Tensor x = Tensor::from_values({1, 3}, {1, 2, 3});
  (void)net.forward(x);
  Tensor grad = net.backward(Tensor::full({1, 3}, 1.0f));
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(grad[i], 2.0f);
}

TEST(Network, FindNodesReturnsKindsInOrder) {
  Network net;
  const auto a = net.add(make_identity_linear(2), Network::input_id);
  const auto r = net.add(std::make_unique<ReLU>(), a);
  const auto b = net.add(make_identity_linear(2), r);
  (void)b;
  const auto linears = net.find_nodes(LayerKind::linear);
  ASSERT_EQ(linears.size(), 2u);
  EXPECT_EQ(linears[0], a);
  EXPECT_EQ(linears[1], b);
}

TEST(Network, InferShapesMatchesExecution) {
  util::Rng rng(8);
  Network net;
  auto conv = std::make_unique<Conv2d>(3, 6, 3, 2, 1);
  conv->init_kaiming(rng);
  const auto c = net.add(std::move(conv), Network::input_id);
  net.add(std::make_unique<Flatten>(), c);

  const std::vector<int> in_shape{2, 3, 8, 8};
  const auto shapes = net.infer_shapes(in_shape);
  Tensor x = Tensor::randn(in_shape, rng);
  Tensor y = net.forward(x);
  EXPECT_EQ(shapes.back(), y.shape());
  EXPECT_EQ(shapes[1], (std::vector<int>{2, 6, 4, 4}));
}

TEST(Network, TotalMacsSumsLayers) {
  util::Rng rng(8);
  Network net;
  auto conv = std::make_unique<Conv2d>(1, 2, 3, 1, 1);
  const auto c = net.add(std::move(conv), Network::input_id);
  auto flat = net.add(std::make_unique<Flatten>(), c);
  net.add(std::make_unique<Linear>(2 * 4 * 4, 5), flat);
  // conv: 2*1*3*3*4*4 = 288; fc: 32*5 = 160
  EXPECT_EQ(net.total_macs({1, 1, 4, 4}), 288 + 160);
}

TEST(Network, ActivationAccessor) {
  Network net;
  const auto a = net.add(make_identity_linear(2), Network::input_id);
  Tensor x = Tensor::from_values({1, 2}, {4, 5});
  (void)net.forward(x);
  EXPECT_FLOAT_EQ(net.activation(a).v2(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(net.activation(Network::input_id).v2(0, 0), 4.0f);
}

// --- replay arena ----------------------------------------------------------

// A deep all-Bayesian suffix (replay from node 1, every layer kind on the
// path: conv, batchnorm-free residual add, pooling, flatten, linear, relu,
// two active MCD sites) replayed with ONE reused arena must be bit-identical
// to arena-free replays, sample for sample and row for row — the arena (and
// the Layer::forward_into in-place paths underneath it) only changes where
// the scratch lives, never the arithmetic.
TEST(Network, ReplayArenaBitIdenticalToFreshScratchAcrossSamplesAndRows) {
  util::Rng rng(2024);
  Network net;
  auto conv = std::make_unique<Conv2d>(1, 4, 3, 1, 1);
  conv->init_kaiming(rng);
  const auto c1 = net.add(std::move(conv), Network::input_id);
  const auto r1 = net.add(std::make_unique<ReLU>(), c1);
  auto site1 = std::make_unique<McDropout>(0.25, 11);
  site1->set_active(true);
  const auto s1 = net.add(std::move(site1), r1);
  auto proj = std::make_unique<Conv2d>(4, 4, 1, 1, 0);
  proj->init_kaiming(rng);
  const auto c2 = net.add(std::move(proj), s1);
  const auto sum = net.add(std::make_unique<Add>(), c2, s1);  // residual
  const auto flat = net.add(std::make_unique<Flatten>(), sum);
  auto fc = std::make_unique<Linear>(4 * 6 * 6, 8);
  fc->init_kaiming(rng);
  const auto l1 = net.add(std::move(fc), flat);
  auto site2 = std::make_unique<McDropout>(0.25, 12);
  site2->set_active(true);
  const auto s2 = net.add(std::move(site2), l1);
  net.add(make_identity_linear(8), s2);
  net.set_training(false);

  Tensor x = Tensor::randn({3, 1, 6, 6}, rng);
  net.prepare_replay(x, /*first_node=*/1);  // L = N: the whole net replays

  Network::ReplayArena arena;  // ONE arena reused across every replay below
  for (int row = 0; row < 3; ++row) {
    for (int sample = 0; sample < 4; ++sample) {
      // Identical mask streams for both replays of this (row, sample).
      const auto masks_for = [&](std::vector<std::unique_ptr<RngMaskSource>>& keep) {
        std::vector<MaskSource*> site_masks(static_cast<std::size_t>(net.num_nodes()),
                                            nullptr);
        for (const Network::NodeId node : {s1, s2}) {
          keep.push_back(std::make_unique<RngMaskSource>(
              0.25, util::Rng(100 + static_cast<std::uint64_t>(node))
                        .fork(static_cast<std::uint64_t>(row))
                        .fork(static_cast<std::uint64_t>(sample))));
          site_masks[static_cast<std::size_t>(node)] = keep.back().get();
        }
        return site_masks;
      };
      std::vector<std::unique_ptr<RngMaskSource>> keep_a, keep_b;
      const Tensor with_arena =
          net.replay_suffix_row(1, masks_for(keep_a), row, nullptr, &arena);
      const Tensor without =
          net.replay_suffix_row(1, masks_for(keep_b), row, nullptr, nullptr);
      ASSERT_EQ(with_arena.shape(), without.shape());
      EXPECT_EQ(with_arena.max_abs_diff(without), 0.0f)
          << "row " << row << ", sample " << sample;
    }
  }
}

// Tensor::reset reuses capacity and never leaks stale element counts.
TEST(Tensor, ResetReusesCapacityAndReshapes) {
  Tensor t({2, 8});
  const float* storage = t.data();
  t.reset({4, 2});  // shrink within capacity: same storage
  EXPECT_EQ(t.data(), storage);
  EXPECT_EQ(t.numel(), 8);
  EXPECT_EQ(t.shape(), (std::vector<int>{4, 2}));
  t.reset({1, 100});  // regrow past capacity: fresh zeroed storage
  EXPECT_EQ(t.numel(), 100);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
  EXPECT_THROW(t.reshape_({3, 3}), std::invalid_argument);
  t.reshape_({10, 10});
  EXPECT_EQ(t.shape(), (std::vector<int>{10, 10}));
}

}  // namespace
}  // namespace bnn::nn
