#include "core/perf_model.h"

#include <gtest/gtest.h>

#include "nn/models.h"

namespace bnn::core {
namespace {

nn::NetworkDesc lenet_desc() {
  util::Rng rng(1);
  nn::Model model = nn::make_lenet5(rng);
  return model.describe();
}

PerfConfig paper_config() {
  PerfConfig config;
  config.nne.pc = 64;
  config.nne.pf = 64;
  config.nne.pv = 1;
  config.nne.clock_mhz = 225.0;
  return config;
}

TEST(PerfPass, SingleLayerHandChecked) {
  nn::NetworkDesc desc;
  desc.name = "one";
  desc.input_shape = {16, 10, 10};
  nn::HwLayer layer;
  layer.label = "conv0";
  layer.op = nn::HwLayer::Op::conv;
  layer.in_c = 16;
  layer.in_h = 10;
  layer.in_w = 10;
  layer.out_c = 32;
  layer.kernel = 3;
  layer.stride = 1;
  layer.pad = 1;
  layer.conv_out_h = 10;
  layer.conv_out_w = 10;
  layer.out_h = 10;
  layer.out_w = 10;
  desc.layers.push_back(layer);

  PerfConfig config = paper_config();
  const RunStats stats = estimate_pass(desc, config, 0, 0, false, false);
  ASSERT_EQ(stats.per_layer.size(), 1u);
  const LayerTiming& timing = stats.per_layer.front();
  // Compute: 1 * ceil(144/64)=3 * 100 = 300 cycles + fill.
  EXPECT_DOUBLE_EQ(timing.compute_cycles, 300.0 + config.nne.pipeline_fill_cycles);
  // Memory: input 1600 B, weights 32*16*9 + 12*32 = 4992 B, output 3200 B.
  EXPECT_EQ(timing.ddr_read_bytes, 1600 + 4608 + 384);
  EXPECT_EQ(timing.ddr_write_bytes, 3200);
  EXPECT_EQ(stats.macs, static_cast<std::int64_t>(32) * 16 * 9 * 100);
  EXPECT_GT(stats.latency_ms, 0.0);
}

TEST(PerfPass, OnChipFlagsRemoveTraffic) {
  nn::NetworkDesc desc = lenet_desc();
  PerfConfig config = paper_config();
  const RunStats normal = estimate_pass(desc, config, 0, desc.num_layers() - 1, false, false);
  const RunStats chip_in = estimate_pass(desc, config, 0, desc.num_layers() - 1, true, false);
  const RunStats keep_out = estimate_pass(desc, config, 0, desc.num_layers() - 1, false, true);
  EXPECT_LT(chip_in.ddr_bytes, normal.ddr_bytes);
  EXPECT_LT(keep_out.ddr_bytes, normal.ddr_bytes);
  EXPECT_EQ(normal.ddr_bytes - chip_in.ddr_bytes, desc.layers.front().in_elems());
  EXPECT_EQ(normal.ddr_bytes - keep_out.ddr_bytes, desc.layers.back().out_elems());
}

TEST(PerfMc, DeterministicNetworkIsOnePass) {
  nn::NetworkDesc desc = lenet_desc();
  PerfConfig config = paper_config();
  const RunStats one = estimate_mc(desc, config, 0, 100, true);
  const RunStats pass = estimate_pass(desc, config, 0, desc.num_layers() - 1, false, false);
  EXPECT_DOUBLE_EQ(one.total_cycles, pass.total_cycles);
}

TEST(PerfMc, WithoutIcScalesLinearlyInSamples) {
  nn::NetworkDesc desc = lenet_desc();
  PerfConfig config = paper_config();
  const RunStats s1 = estimate_mc(desc, config, 2, 1, false);
  const RunStats s10 = estimate_mc(desc, config, 2, 10, false);
  EXPECT_NEAR(s10.total_cycles, 10.0 * s1.total_cycles, 1e-6);
  EXPECT_EQ(s10.macs, 10 * s1.macs);
}

TEST(PerfMc, IcSavesPrefixComputeExactly) {
  // The paper: IC reduces compute by (N-L)*S layer-equivalents — i.e. the
  // prefix MACs are paid once instead of S times.
  nn::NetworkDesc desc = lenet_desc();
  PerfConfig config = paper_config();
  const int samples = 50;
  for (int bayes_layers : {1, 2, 3}) {
    const int cut = desc.cut_layer_for(bayes_layers);
    std::int64_t prefix_macs = 0;
    for (int l = 0; l <= cut; ++l) prefix_macs += desc.layers[static_cast<std::size_t>(l)].macs();
    const RunStats with_ic = estimate_mc(desc, config, bayes_layers, samples, true);
    const RunStats without_ic = estimate_mc(desc, config, bayes_layers, samples, false);
    EXPECT_EQ(without_ic.macs - with_ic.macs,
              static_cast<std::int64_t>(samples - 1) * prefix_macs)
        << "L=" << bayes_layers;
    EXPECT_LT(with_ic.total_cycles, without_ic.total_cycles);
    EXPECT_LT(with_ic.ddr_bytes, without_ic.ddr_bytes);
  }
}

TEST(PerfMc, IcSpeedupShrinksAsBayesPortionGrows) {
  // Table III's trend: the IC speedup goes down when L increases.
  nn::NetworkDesc desc = lenet_desc();
  PerfConfig config = paper_config();
  double previous_speedup = 1e9;
  for (int bayes_layers : {1, 2, 3, 4}) {
    const double with_ic = estimate_mc(desc, config, bayes_layers, 50, true).total_cycles;
    const double without_ic = estimate_mc(desc, config, bayes_layers, 50, false).total_cycles;
    const double speedup = without_ic / with_ic;
    EXPECT_LE(speedup, previous_speedup + 1e-9) << "L=" << bayes_layers;
    previous_speedup = speedup;
  }
}

TEST(PerfMc, LatencyMonotoneInSamples) {
  nn::NetworkDesc desc = lenet_desc();
  PerfConfig config = paper_config();
  double previous = 0.0;
  for (int samples : {1, 3, 10, 50, 100}) {
    const double latency = estimate_mc(desc, config, 2, samples, true).latency_ms;
    EXPECT_GT(latency, previous);
    previous = latency;
  }
}

TEST(PerfMc, MoreParallelismNeverSlower) {
  nn::NetworkDesc desc = lenet_desc();
  PerfConfig narrow = paper_config();
  narrow.nne.pc = 8;
  narrow.nne.pf = 8;
  PerfConfig wide = paper_config();
  const double slow = estimate_mc(desc, narrow, 4, 10, true).total_cycles;
  const double fast = estimate_mc(desc, wide, 4, 10, true).total_cycles;
  EXPECT_LE(fast, slow);
}

TEST(PerfMc, MaskBitsCountActiveSites) {
  nn::NetworkDesc desc = lenet_desc();
  // Sites sit on conv1 (6 filters), conv2 (16), fc1 (120), fc2 (84).
  EXPECT_EQ(mask_bits_per_sample(desc, 4), 6 + 16 + 120 + 84);
  EXPECT_EQ(mask_bits_per_sample(desc, 1), 84);
  EXPECT_EQ(mask_bits_per_sample(desc, 0), 0);
  PerfConfig config = paper_config();
  EXPECT_EQ(estimate_mc(desc, config, 1, 10, true).mask_bits, 10 * 84);
}

TEST(PerfMc, ThroughputBoundedByPeak) {
  util::Rng rng(3);
  nn::Model model = nn::make_resnet18(rng, 10, 16);
  const nn::NetworkDesc desc = model.describe();
  PerfConfig config = paper_config();
  const RunStats stats = estimate_mc(desc, config, desc.num_sites(), 10, false);
  EXPECT_LE(stats.throughput_gops(), config.nne.peak_gops());
  EXPECT_GT(stats.throughput_gops(), 0.0);
}

TEST(PerfMc, ResNet101ThroughputNearPaperMagnitude) {
  // Table IV: 1590 GOP/s on ResNet-101 with MCD on every layer at 225 MHz.
  const nn::NetworkDesc desc = nn::describe_resnet101();
  PerfConfig config = paper_config();
  const RunStats stats = estimate_mc(desc, config, desc.num_sites(), 10, false);
  EXPECT_GT(stats.throughput_gops(), 1000.0);
  EXPECT_LT(stats.throughput_gops(), config.nne.peak_gops());
}

TEST(PerfPass, RejectsBadRanges) {
  nn::NetworkDesc desc = lenet_desc();
  PerfConfig config = paper_config();
  EXPECT_THROW(estimate_pass(desc, config, 3, 1, false, false), std::invalid_argument);
  EXPECT_THROW(estimate_pass(desc, config, 0, 99, false, false), std::invalid_argument);
  EXPECT_THROW(estimate_mc(desc, config, 2, 0, true), std::invalid_argument);
  EXPECT_THROW(mask_bits_per_sample(desc, 9), std::invalid_argument);
}

}  // namespace
}  // namespace bnn::core
