#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace bnn::nn {
namespace {

std::vector<float> random_matrix(int rows, int cols, util::Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (float& v : m) v = static_cast<float>(rng.normal());
  return m;
}

void naive_gemm(int m, int n, int k, const std::vector<float>& a, const std::vector<float>& b,
                std::vector<float>& c) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk)
        acc += a[static_cast<std::size_t>(i) * k + kk] * b[static_cast<std::size_t>(kk) * n + j];
      c[static_cast<std::size_t>(i) * n + j] = acc;
    }
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(m * 100 + n * 10 + k);
  const std::vector<float> a = random_matrix(m, k, rng);
  const std::vector<float> b = random_matrix(k, n, rng);
  std::vector<float> expected(static_cast<std::size_t>(m) * n);
  naive_gemm(m, n, k, a, b, expected);

  std::vector<float> got(static_cast<std::size_t>(m) * n, 1e9f);
  gemm(m, n, k, a.data(), b.data(), got.data(), /*accumulate=*/false);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], expected[i], 1e-4f);
}

TEST_P(GemmShapes, TransposedVariantsMatch) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(m + n + k);
  const std::vector<float> a = random_matrix(m, k, rng);
  const std::vector<float> b = random_matrix(k, n, rng);
  std::vector<float> expected(static_cast<std::size_t>(m) * n);
  naive_gemm(m, n, k, a, b, expected);

  // gemm_at: pass a stored as [K, M] (the transpose of a).
  std::vector<float> a_t(a.size());
  for (int i = 0; i < m; ++i)
    for (int kk = 0; kk < k; ++kk)
      a_t[static_cast<std::size_t>(kk) * m + i] = a[static_cast<std::size_t>(i) * k + kk];
  std::vector<float> got(static_cast<std::size_t>(m) * n);
  gemm_at(m, n, k, a_t.data(), b.data(), got.data(), false);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], expected[i], 1e-4f);

  // gemm_bt: pass b stored as [N, K] (the transpose of b).
  std::vector<float> b_t(b.size());
  for (int kk = 0; kk < k; ++kk)
    for (int j = 0; j < n; ++j)
      b_t[static_cast<std::size_t>(j) * k + kk] = b[static_cast<std::size_t>(kk) * n + j];
  std::fill(got.begin(), got.end(), 0.0f);
  gemm_bt(m, n, k, a.data(), b_t.data(), got.data(), false);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], expected[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemmShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                                           std::make_tuple(8, 8, 8), std::make_tuple(16, 1, 9),
                                           std::make_tuple(1, 17, 4),
                                           std::make_tuple(13, 11, 23)));

TEST(Gemm, AccumulateAddsOntoExisting) {
  util::Rng rng(3);
  const std::vector<float> a = random_matrix(2, 3, rng);
  const std::vector<float> b = random_matrix(3, 2, rng);
  std::vector<float> once(4);
  gemm(2, 2, 3, a.data(), b.data(), once.data(), false);
  std::vector<float> twice(4, 0.0f);
  gemm(2, 2, 3, a.data(), b.data(), twice.data(), true);
  gemm(2, 2, 3, a.data(), b.data(), twice.data(), true);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(twice[static_cast<std::size_t>(i)],
                                          2.0f * once[static_cast<std::size_t>(i)], 1e-4f);
}

TEST(ConvExtent, Formula) {
  EXPECT_EQ(conv_out_extent(28, 5, 1, 2), 28);
  EXPECT_EQ(conv_out_extent(28, 5, 1, 0), 24);
  EXPECT_EQ(conv_out_extent(32, 3, 2, 1), 16);
  EXPECT_EQ(conv_out_extent(4, 2, 2, 0), 2);
}

TEST(ConvExtent, RejectsImpossibleGeometry) {
  EXPECT_THROW(conv_out_extent(2, 5, 1, 0), std::invalid_argument);
  EXPECT_THROW(conv_out_extent(8, 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(conv_out_extent(8, 3, 0, 0), std::invalid_argument);
}

// im2col and col2im must be adjoint linear maps: <im2col(x), y> = <x, col2im(y)>.
TEST(Im2Col, AdjointProperty) {
  util::Rng rng(11);
  const int channels = 3, height = 7, width = 6, kernel = 3, stride = 2, pad = 1;
  const int out_h = conv_out_extent(height, kernel, stride, pad);
  const int out_w = conv_out_extent(width, kernel, stride, pad);
  const int cols = channels * kernel * kernel * out_h * out_w;

  std::vector<float> x(static_cast<std::size_t>(channels) * height * width);
  for (float& v : x) v = static_cast<float>(rng.normal());
  std::vector<float> y(static_cast<std::size_t>(cols));
  for (float& v : y) v = static_cast<float>(rng.normal());

  std::vector<float> col_x(static_cast<std::size_t>(cols));
  im2col(x.data(), channels, height, width, kernel, stride, pad, out_h, out_w, col_x.data());
  std::vector<float> img_y(x.size(), 0.0f);
  col2im(y.data(), channels, height, width, kernel, stride, pad, out_h, out_w, img_y.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_x.size(); ++i) lhs += static_cast<double>(col_x[i]) * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * img_y[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2Col, IdentityKernelCopiesPixels) {
  const int channels = 2, height = 3, width = 3;
  std::vector<float> x(18);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  std::vector<float> col(18);
  im2col(x.data(), channels, height, width, 1, 1, 0, height, width, col.data());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(col[i], x[i]);
}

}  // namespace
}  // namespace bnn::nn
