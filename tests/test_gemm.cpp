#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "nn/gemm_kernels.h"
#include "util/rng.h"

namespace bnn::nn {
namespace {

std::vector<float> random_matrix(int rows, int cols, util::Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (float& v : m) v = static_cast<float>(rng.normal());
  return m;
}

void naive_gemm(int m, int n, int k, const std::vector<float>& a, const std::vector<float>& b,
                std::vector<float>& c) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk)
        acc += a[static_cast<std::size_t>(i) * k + kk] * b[static_cast<std::size_t>(kk) * n + j];
      c[static_cast<std::size_t>(i) * n + j] = acc;
    }
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(m * 100 + n * 10 + k);
  const std::vector<float> a = random_matrix(m, k, rng);
  const std::vector<float> b = random_matrix(k, n, rng);
  std::vector<float> expected(static_cast<std::size_t>(m) * n);
  naive_gemm(m, n, k, a, b, expected);

  std::vector<float> got(static_cast<std::size_t>(m) * n, 1e9f);
  gemm(m, n, k, a.data(), b.data(), got.data(), /*accumulate=*/false);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], expected[i], 1e-4f);
}

TEST_P(GemmShapes, TransposedVariantsMatch) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(m + n + k);
  const std::vector<float> a = random_matrix(m, k, rng);
  const std::vector<float> b = random_matrix(k, n, rng);
  std::vector<float> expected(static_cast<std::size_t>(m) * n);
  naive_gemm(m, n, k, a, b, expected);

  // gemm_at: pass a stored as [K, M] (the transpose of a).
  std::vector<float> a_t(a.size());
  for (int i = 0; i < m; ++i)
    for (int kk = 0; kk < k; ++kk)
      a_t[static_cast<std::size_t>(kk) * m + i] = a[static_cast<std::size_t>(i) * k + kk];
  std::vector<float> got(static_cast<std::size_t>(m) * n);
  gemm_at(m, n, k, a_t.data(), b.data(), got.data(), false);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], expected[i], 1e-4f);

  // gemm_bt: pass b stored as [N, K] (the transpose of b).
  std::vector<float> b_t(b.size());
  for (int kk = 0; kk < k; ++kk)
    for (int j = 0; j < n; ++j)
      b_t[static_cast<std::size_t>(j) * k + kk] = b[static_cast<std::size_t>(kk) * n + j];
  std::fill(got.begin(), got.end(), 0.0f);
  gemm_bt(m, n, k, a.data(), b_t.data(), got.data(), false);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], expected[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemmShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                                           std::make_tuple(8, 8, 8), std::make_tuple(16, 1, 9),
                                           std::make_tuple(1, 17, 4),
                                           std::make_tuple(13, 11, 23)));

TEST(Gemm, AccumulateAddsOntoExisting) {
  util::Rng rng(3);
  const std::vector<float> a = random_matrix(2, 3, rng);
  const std::vector<float> b = random_matrix(3, 2, rng);
  std::vector<float> once(4);
  gemm(2, 2, 3, a.data(), b.data(), once.data(), false);
  std::vector<float> twice(4, 0.0f);
  gemm(2, 2, 3, a.data(), b.data(), twice.data(), true);
  gemm(2, 2, 3, a.data(), b.data(), twice.data(), true);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(twice[static_cast<std::size_t>(i)],
                                          2.0f * once[static_cast<std::size_t>(i)], 1e-4f);
}

// Regression for the removed a_ik == 0.0f zero-skip: a zero row of A times
// a NaN/Inf B must produce NaN (0 * NaN = NaN, 0 * Inf = NaN), not silently
// skip the terms and report 0.
TEST(Gemm, ZeroRowTimesNanInfPropagates) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // A = [[0, 0], [1, 1]] (row 0 all zeros), B = [[nan, inf], [1, 2]].
  const std::vector<float> a{0.0f, 0.0f, 1.0f, 1.0f};
  const std::vector<float> b{nan, inf, 1.0f, 2.0f};

  std::vector<float> c(4, 0.0f);
  gemm(2, 2, 2, a.data(), b.data(), c.data(), false);
  EXPECT_TRUE(std::isnan(c[0])) << "0*NaN swallowed by gemm";
  EXPECT_TRUE(std::isnan(c[1])) << "0*Inf swallowed by gemm";
  EXPECT_TRUE(std::isnan(c[2]));  // 1*nan + 1*1
  EXPECT_TRUE(std::isinf(c[3]) || std::isnan(c[3]));

  // gemm_at: A^T stored [K, M] with column 0 all zeros.
  const std::vector<float> a_t{0.0f, 1.0f, 0.0f, 1.0f};
  std::fill(c.begin(), c.end(), 0.0f);
  gemm_at(2, 2, 2, a_t.data(), b.data(), c.data(), false);
  EXPECT_TRUE(std::isnan(c[0])) << "0*NaN swallowed by gemm_at";
  EXPECT_TRUE(std::isnan(c[1])) << "0*Inf swallowed by gemm_at";

  // gemm_bt: B^T stored [N, K]; row 0 of A is zero, so every dot against a
  // NaN-carrying B row must be NaN.
  const std::vector<float> b_t{nan, 1.0f, inf, 2.0f};
  std::fill(c.begin(), c.end(), 0.0f);
  gemm_bt(2, 2, 2, a.data(), b_t.data(), c.data(), false);
  EXPECT_TRUE(std::isnan(c[0])) << "0*NaN swallowed by gemm_bt";
  EXPECT_TRUE(std::isnan(c[1])) << "0*Inf swallowed by gemm_bt";
}

// --- blocked kernels vs scalar references: exact bit-identity --------------
//
// The micro-kernel layer's contract is bits, not tolerances: blocking and
// vectorization run along the output axes only, so each c[i,j] accumulates
// its k-terms in the scalar order. Shapes cover m/n/k == 1, exact multiples
// of the register block, non-multiples (edge tiles), and k past the cache
// panel depth (multi-panel accumulation), for both accumulate modes.

class GemmKernelBitIdentity : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmKernelBitIdentity, AllVariantsMatchScalarBitForBit) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(m * 1000003 + n * 1009 + k);
  const std::vector<float> a = random_matrix(m, k, rng);   // also read as [K, M] by _at
  const std::vector<float> b = random_matrix(k, n, rng);   // also read as [N, K] by _bt
  const std::vector<float> c0 = random_matrix(m, n, rng);  // accumulate seed

  struct Variant {
    const char* name;
    void (*scalar)(int, int, int, const float*, const float*, float*, bool);
    void (*blocked)(int, int, int, const float*, const float*, float*, bool);
  };
  const Variant variants[] = {
      {"gemm", nn::kernels::gemm_scalar, nn::kernels::gemm_blocked},
      {"gemm_at", nn::kernels::gemm_at_scalar, nn::kernels::gemm_at_blocked},
      {"gemm_bt", nn::kernels::gemm_bt_scalar, nn::kernels::gemm_bt_blocked},
  };
  for (const Variant& v : variants) {
    for (const bool accumulate : {false, true}) {
      std::vector<float> c_scalar = c0;
      std::vector<float> c_blocked = c0;
      v.scalar(m, n, k, a.data(), b.data(), c_scalar.data(), accumulate);
      v.blocked(m, n, k, a.data(), b.data(), c_blocked.data(), accumulate);
      EXPECT_EQ(std::memcmp(c_scalar.data(), c_blocked.data(), c_scalar.size() * sizeof(float)),
                0)
          << v.name << " accumulate=" << accumulate << " m=" << m << " n=" << n << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmKernelBitIdentity,
    ::testing::Values(std::make_tuple(1, 1, 1),      // degenerate
                      std::make_tuple(1, 17, 4),     // single row, edge columns
                      std::make_tuple(16, 1, 9),     // single column
                      std::make_tuple(4, 16, 64),    // exact register blocks
                      std::make_tuple(8, 32, 256),   // exact blocks, full panel
                      std::make_tuple(5, 19, 23),    // edge tiles both axes
                      std::make_tuple(37, 33, 70),   // edge tiles, larger
                      std::make_tuple(12, 48, 300),  // k spans two cache panels
                      std::make_tuple(6, 21, 513))); // panel remainder of 1

// The public entry points must be the blocked kernels (not a copy that
// could drift): routing check against the scalar references.
TEST(Gemm, PublicEntryPointsRouteToKernels) {
  util::Rng rng(99);
  const int m = 9, n = 34, k = 129;
  const std::vector<float> a = random_matrix(m, k, rng);
  const std::vector<float> b = random_matrix(k, n, rng);
  std::vector<float> via_public(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> via_scalar(static_cast<std::size_t>(m) * n, 0.0f);
  gemm(m, n, k, a.data(), b.data(), via_public.data(), false);
  nn::kernels::gemm_scalar(m, n, k, a.data(), b.data(), via_scalar.data(), false);
  EXPECT_EQ(std::memcmp(via_public.data(), via_scalar.data(), via_public.size() * sizeof(float)),
            0);
}

// --- int8 dot kernels ------------------------------------------------------

TEST(DotI8, MatchesPlainLoopForAnyLengthAndZeroPoint) {
  util::Rng rng(7);
  for (const int len : {1, 2, 3, 7, 64, 300, 1152}) {
    std::vector<std::int8_t> x(static_cast<std::size_t>(len)), w(static_cast<std::size_t>(len));
    for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    for (const std::int32_t zp : {-7, 0, 11}) {
      std::int32_t expected = 0;
      for (int t = 0; t < len; ++t)
        expected += (static_cast<std::int32_t>(x[static_cast<std::size_t>(t)]) - zp) *
                    static_cast<std::int32_t>(w[static_cast<std::size_t>(t)]);
      EXPECT_EQ(nn::kernels::dot_i8_zp(x.data(), w.data(), len, zp), expected)
          << "len=" << len << " zp=" << zp;
    }
  }
}

TEST(DotI8, GatherMatchesDirectDotThroughPermutedOffsets) {
  util::Rng rng(8);
  const int len = 53;
  std::vector<std::int8_t> x(500), w(static_cast<std::size_t>(len));
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  std::vector<std::int32_t> offsets(static_cast<std::size_t>(len));
  for (auto& o : offsets) o = rng.uniform_int(0, 499);

  const std::int32_t zp = 4;
  std::int32_t expected = 0;
  for (int t = 0; t < len; ++t)
    expected += (static_cast<std::int32_t>(x[static_cast<std::size_t>(offsets[static_cast<std::size_t>(t)])]) - zp) *
                static_cast<std::int32_t>(w[static_cast<std::size_t>(t)]);
  EXPECT_EQ(nn::kernels::dot_i8_zp_gather(x.data(), offsets.data(), w.data(), len, zp),
            expected);
}

TEST(ConvExtent, Formula) {
  EXPECT_EQ(conv_out_extent(28, 5, 1, 2), 28);
  EXPECT_EQ(conv_out_extent(28, 5, 1, 0), 24);
  EXPECT_EQ(conv_out_extent(32, 3, 2, 1), 16);
  EXPECT_EQ(conv_out_extent(4, 2, 2, 0), 2);
}

TEST(ConvExtent, RejectsImpossibleGeometry) {
  EXPECT_THROW(conv_out_extent(2, 5, 1, 0), std::invalid_argument);
  EXPECT_THROW(conv_out_extent(8, 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(conv_out_extent(8, 3, 0, 0), std::invalid_argument);
}

// im2col and col2im must be adjoint linear maps: <im2col(x), y> = <x, col2im(y)>.
TEST(Im2Col, AdjointProperty) {
  util::Rng rng(11);
  const int channels = 3, height = 7, width = 6, kernel = 3, stride = 2, pad = 1;
  const int out_h = conv_out_extent(height, kernel, stride, pad);
  const int out_w = conv_out_extent(width, kernel, stride, pad);
  const int cols = channels * kernel * kernel * out_h * out_w;

  std::vector<float> x(static_cast<std::size_t>(channels) * height * width);
  for (float& v : x) v = static_cast<float>(rng.normal());
  std::vector<float> y(static_cast<std::size_t>(cols));
  for (float& v : y) v = static_cast<float>(rng.normal());

  std::vector<float> col_x(static_cast<std::size_t>(cols));
  im2col(x.data(), channels, height, width, kernel, stride, pad, out_h, out_w, col_x.data());
  std::vector<float> img_y(x.size(), 0.0f);
  col2im(y.data(), channels, height, width, kernel, stride, pad, out_h, out_w, img_y.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_x.size(); ++i) lhs += static_cast<double>(col_x[i]) * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * img_y[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2Col, IdentityKernelCopiesPixels) {
  const int channels = 2, height = 3, width = 3;
  std::vector<float> x(18);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  std::vector<float> col(18);
  im2col(x.data(), channels, height, width, 1, 1, 0, height, width, col.data());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(col[i], x[i]);
}

}  // namespace
}  // namespace bnn::nn
