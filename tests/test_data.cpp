#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "data/dataset.h"
#include "data/synth.h"

namespace bnn::data {
namespace {

TEST(Dataset, BasicAccessors) {
  nn::Tensor images({6, 1, 4, 4});
  std::vector<int> labels{0, 1, 2, 0, 1, 2};
  Dataset ds(std::move(images), std::move(labels), 3);
  EXPECT_EQ(ds.size(), 6);
  EXPECT_EQ(ds.num_classes(), 3);
  EXPECT_EQ(ds.image_shape(), (std::vector<int>{1, 4, 4}));
  EXPECT_EQ(ds.class_histogram(), (std::vector<int>{2, 2, 2}));
}

TEST(Dataset, RejectsBadConstruction) {
  EXPECT_THROW(Dataset(nn::Tensor({2, 1, 2, 2}), {0}, 2), std::invalid_argument);
  EXPECT_THROW(Dataset(nn::Tensor({1, 1, 2, 2}), {5}, 2), std::invalid_argument);
  EXPECT_THROW(Dataset(nn::Tensor({4, 4}), {0, 0, 0, 0}, 2), std::invalid_argument);
}

TEST(Dataset, ShufflePermutesConsistently) {
  const int n = 20;
  nn::Tensor images({n, 1, 2, 2});
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = i % 5;
    for (int j = 0; j < 4; ++j) images[i * 4 + j] = static_cast<float>(i);
  }
  Dataset ds(std::move(images), std::move(labels), 5);
  util::Rng rng(42);
  ds.shuffle(rng);
  // Image contents still identify the original index; labels must follow.
  std::vector<int> seen;
  for (int i = 0; i < n; ++i) {
    const int original = static_cast<int>(ds.images()[i * 4]);
    EXPECT_EQ(ds.images()[i * 4 + 3], static_cast<float>(original));
    EXPECT_EQ(ds.labels()[static_cast<std::size_t>(i)], original % 5);
    seen.push_back(original);
  }
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < n; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(Dataset, SubsetAndSplit) {
  util::Rng rng(1);
  Dataset ds = make_synth_digits(30, rng);
  Dataset sub = ds.subset(10, 5);
  EXPECT_EQ(sub.size(), 5);
  EXPECT_EQ(sub.labels()[0], ds.labels()[10]);
  const auto [train, test] = ds.split(20);
  EXPECT_EQ(train.size(), 20);
  EXPECT_EQ(test.size(), 10);
  EXPECT_THROW(ds.subset(25, 10), std::invalid_argument);
}

TEST(Dataset, BatchClipsAtEnd) {
  util::Rng rng(2);
  Dataset ds = make_synth_digits(10, rng);
  Batch batch = ds.batch(8, 4);
  EXPECT_EQ(batch.images.size(0), 2);
  EXPECT_EQ(batch.labels.size(), 2u);
}

TEST(SynthDigits, ShapeRangeAndBalance) {
  util::Rng rng(3);
  Dataset ds = make_synth_digits(100, rng);
  EXPECT_EQ(ds.image_shape(), (std::vector<int>{1, 28, 28}));
  EXPECT_GE(ds.images().min(), 0.0f);
  EXPECT_LE(ds.images().max(), 1.0f);
  for (int count : ds.class_histogram()) EXPECT_EQ(count, 10);
}

TEST(SynthDigits, DeterministicForSameSeed) {
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  Dataset a = make_synth_digits(10, rng_a);
  Dataset b = make_synth_digits(10, rng_b);
  EXPECT_EQ(a.images().max_abs_diff(b.images()), 0.0f);
  util::Rng rng_c(8);
  Dataset c = make_synth_digits(10, rng_c);
  EXPECT_GT(a.images().max_abs_diff(c.images()), 0.0f);
}

TEST(SynthDigits, DigitsAreVisible) {
  util::Rng rng(4);
  Dataset ds = make_synth_digits(20, rng);
  for (int n = 0; n < ds.size(); ++n) {
    double mass = 0.0;
    for (int i = 0; i < 28 * 28; ++i)
      mass += ds.images()[static_cast<std::int64_t>(n) * 28 * 28 + i];
    EXPECT_GT(mass, 10.0) << "digit " << ds.labels()[static_cast<std::size_t>(n)]
                          << " rendered almost empty";
  }
}

TEST(RenderDigit, CentredGlyphHasInkNearCentre) {
  std::vector<float> plane(28 * 28, 0.0f);
  render_digit(plane.data(), 28, 8, 0.7f, 0.0f, 0.0f, 0.0f, 1.0f);
  double centre_mass = 0.0;
  for (int y = 10; y < 18; ++y)
    for (int x = 10; x < 18; ++x) centre_mass += plane[y * 28 + x];
  EXPECT_GT(centre_mass, 1.0);
  EXPECT_THROW(render_digit(plane.data(), 28, 11, 0.7f, 0, 0, 0, 1), std::invalid_argument);
}

TEST(SynthSvhn, ShapeAndColorVariety) {
  util::Rng rng(5);
  Dataset ds = make_synth_svhn(40, rng);
  EXPECT_EQ(ds.image_shape(), (std::vector<int>{3, 32, 32}));
  EXPECT_GE(ds.images().min(), 0.0f);
  EXPECT_LE(ds.images().max(), 1.0f);
  // Channels should differ (it is a color dataset).
  float channel_diff = 0.0f;
  for (int n = 0; n < ds.size(); ++n)
    for (int i = 0; i < 32 * 32; ++i) {
      const float r = ds.images()[ds.images().index4(n, 0, i / 32, i % 32)];
      const float g = ds.images()[ds.images().index4(n, 1, i / 32, i % 32)];
      channel_diff = std::max(channel_diff, std::fabs(r - g));
    }
  EXPECT_GT(channel_diff, 0.2f);
}

TEST(SynthObjects, ShapeBalanceAndClassesDiffer) {
  util::Rng rng(6);
  Dataset ds = make_synth_objects(50, rng);
  EXPECT_EQ(ds.image_shape(), (std::vector<int>{3, 32, 32}));
  for (int count : ds.class_histogram()) EXPECT_EQ(count, 5);
  // Mean image of class 0 (disc) and class 5 (stripes) should differ.
  auto class_mean = [&ds](int cls) {
    double mass = 0.0;
    int count = 0;
    for (int n = 0; n < ds.size(); ++n) {
      if (ds.labels()[static_cast<std::size_t>(n)] != cls) continue;
      ++count;
      for (int i = 0; i < 3 * 32 * 32; ++i)
        mass += ds.images()[static_cast<std::int64_t>(n) * 3 * 32 * 32 + i];
    }
    return mass / count;
  };
  EXPECT_NE(class_mean(0), class_mean(5));
}

TEST(GaussianNoise, MatchesReferenceStatistics) {
  util::Rng rng(7);
  Dataset reference = make_synth_svhn(60, rng);
  Dataset noise = make_gaussian_noise(400, reference, rng);
  EXPECT_EQ(noise.image_shape(), reference.image_shape());

  std::vector<float> ref_mean, ref_std, noise_mean, noise_std;
  reference.channel_stats(ref_mean, ref_std);
  noise.channel_stats(noise_mean, noise_std);
  for (std::size_t c = 0; c < ref_mean.size(); ++c) {
    EXPECT_NEAR(noise_mean[c], ref_mean[c], 0.02f);
    EXPECT_NEAR(noise_std[c], ref_std[c], 0.02f);
  }
}

TEST(ChannelStats, HandComputedCase) {
  nn::Tensor images({2, 1, 1, 2});
  images[0] = 1.0f;
  images[1] = 3.0f;
  images[2] = 5.0f;
  images[3] = 7.0f;
  Dataset ds(std::move(images), {0, 0}, 1);
  std::vector<float> mean, std;
  ds.channel_stats(mean, std);
  EXPECT_FLOAT_EQ(mean[0], 4.0f);
  EXPECT_NEAR(std[0], std::sqrt(5.0f), 1e-5f);
}

}  // namespace
}  // namespace bnn::data
